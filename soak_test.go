// Full-scale soak tests: run every paper benchmark at its default scale
// on the base system, verifying the computed answers and the coherence
// invariants. Skipped with -short (several seconds per benchmark).
package pimcache

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"pimcache/internal/bench"
	"pimcache/internal/bench/programs"
	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/machine"
	"pimcache/internal/trace"
)

func TestSoakFullScaleBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale benchmarks take seconds each")
	}
	for _, b := range programs.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			ccfg := bench.BaseCache(cache.OptionsAll())
			ccfg.VerifyDW = true // assert the DW software contract throughout
			rd, _, err := bench.RunLive(b, b.DefaultScale, 8, ccfg, false)
			if err != nil {
				t.Fatal(err)
			}
			if rd.Result.Floating != 0 {
				t.Errorf("%d floating goals at termination", rd.Result.Floating)
			}
			if rd.Result.Emu.Reductions < 10_000 {
				t.Errorf("suspiciously few reductions: %d", rd.Result.Emu.Reductions)
			}
			t.Logf("%s: %d reductions, %d refs, %d bus cycles, miss %.4f",
				b.Name, rd.Result.Emu.Reductions, rd.Cache.TotalRefs(),
				rd.Bus.TotalCycles, rd.Cache.MissRatio())
		})
	}
}

func TestSoakGCFullBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	// Puzzle at default scale with a heap small enough to force many
	// collections; the answer must be unchanged.
	cfg := DefaultConfig()
	cfg.PEs = 4
	cfg.HeapWords = 96 << 10 // per-PE semispace: 12K words
	cfg.EnableGC = true
	b, _ := programs.ByName("Puzzle")
	res, err := Run(b.Source(b.DefaultScale), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("failed: %s", res.FailReason)
	}
	if want := b.Expected(b.DefaultScale); res.Output != want {
		t.Errorf("output %q, want %q", res.Output, want)
	}
}

// TestSoakKillResumeBitIdentical is the crash-safety oracle at full
// scale: a real benchmark trace is replayed with the process "dying"
// immediately after every checkpoint write, resumed from the surviving
// checkpoint file each time until it finishes. The stitched-together
// run must produce bus and cache statistics bit-identical to one
// uninterrupted replay — no reference lost, none replayed twice, no
// state leaking across the crash boundary.
func TestSoakKillResumeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	b, _ := programs.ByName("Tri")
	ccfg := bench.BaseCache(cache.OptionsAll())
	_, tr, err := bench.RunLive(b, b.DefaultScale, 8, ccfg, true)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	timing := bus.DefaultTiming()

	ref, err := replayAll(raw, ccfg, timing, bench.CheckpointOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "soak.ckpt")
	crash := errors.New("simulated crash after checkpoint write")
	// Cadence chosen so a ~15M-ref trace yields a few dozen crash
	// cycles; every attempt re-validates the skipped prefix, so the
	// loop is quadratic in attempts.
	const every = 500_000
	var out *bench.ReplayOutcome
	var lastPos int
	attempts := 0
	for {
		attempts++
		if attempts > 10_000 {
			t.Fatal("kill/resume loop is not converging")
		}
		var snap *machine.Snapshot
		switch s, err := machine.ReadSnapshotFile(ckpt); {
		case err == nil:
			snap = s
			if s.RefsReplayed <= lastPos {
				t.Fatalf("attempt %d: checkpoint position %d did not advance past %d",
					attempts, s.RefsReplayed, lastPos)
			}
			lastPos = s.RefsReplayed
		case os.IsNotExist(err):
			// First attempt: fresh start.
		default:
			t.Fatal(err)
		}
		ck := bench.CheckpointOptions{
			Every: every,
			Path:  ckpt,
			// The write already happened when the hook runs; failing
			// here models a crash between checkpoint and next chunk.
			OnCheckpoint: func(uint64) error { return crash },
		}
		out, err = replayAll(raw, ccfg, timing, ck, snap)
		if err == nil {
			break
		}
		if !errors.Is(err, crash) {
			t.Fatal(err)
		}
	}
	if attempts < 3 {
		t.Fatalf("only %d attempts — the trace is too small to exercise resume", attempts)
	}
	if out.Refs != ref.Refs || out.Cache != ref.Cache || out.Bus != ref.Bus {
		t.Errorf("stitched run diverged from uninterrupted run after %d crashes:\nrefs %d vs %d\nmiss %.6f vs %.6f\nbus %d vs %d",
			attempts-1, out.Refs, ref.Refs,
			out.Cache.MissRatio(), ref.Cache.MissRatio(),
			out.Bus.TotalCycles, ref.Bus.TotalCycles)
	}
	t.Logf("%d refs replayed across %d crash/resume cycles, stats bit-identical", out.Refs, attempts-1)
}

func replayAll(raw []byte, ccfg cache.Config, timing bus.Timing, ck bench.CheckpointOptions, snap *machine.Snapshot) (*bench.ReplayOutcome, error) {
	d, err := trace.NewReader(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	return bench.ReplayReaderResumable(context.Background(), d, ccfg, timing, nil, ck, snap)
}

func TestSoakDeterminismFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	b, _ := programs.ByName("Pascal")
	r1, _, err := bench.RunLive(b, b.DefaultScale, 8, bench.BaseCache(cache.OptionsAll()), false)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := bench.RunLive(b, b.DefaultScale, 8, bench.BaseCache(cache.OptionsAll()), false)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Bus.TotalCycles != r2.Bus.TotalCycles || r1.Result.Steps != r2.Result.Steps {
		t.Errorf("nondeterministic full-scale run: %d/%d vs %d/%d",
			r1.Bus.TotalCycles, r1.Result.Steps, r2.Bus.TotalCycles, r2.Result.Steps)
	}
}
