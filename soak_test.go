// Full-scale soak tests: run every paper benchmark at its default scale
// on the base system, verifying the computed answers and the coherence
// invariants. Skipped with -short (several seconds per benchmark).
package pimcache

import (
	"testing"

	"pimcache/internal/bench"
	"pimcache/internal/bench/programs"
	"pimcache/internal/cache"
)

func TestSoakFullScaleBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale benchmarks take seconds each")
	}
	for _, b := range programs.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			ccfg := bench.BaseCache(cache.OptionsAll())
			ccfg.VerifyDW = true // assert the DW software contract throughout
			rd, _, err := bench.RunLive(b, b.DefaultScale, 8, ccfg, false)
			if err != nil {
				t.Fatal(err)
			}
			if rd.Result.Floating != 0 {
				t.Errorf("%d floating goals at termination", rd.Result.Floating)
			}
			if rd.Result.Emu.Reductions < 10_000 {
				t.Errorf("suspiciously few reductions: %d", rd.Result.Emu.Reductions)
			}
			t.Logf("%s: %d reductions, %d refs, %d bus cycles, miss %.4f",
				b.Name, rd.Result.Emu.Reductions, rd.Cache.TotalRefs(),
				rd.Bus.TotalCycles, rd.Cache.MissRatio())
		})
	}
}

func TestSoakGCFullBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	// Puzzle at default scale with a heap small enough to force many
	// collections; the answer must be unchanged.
	cfg := DefaultConfig()
	cfg.PEs = 4
	cfg.HeapWords = 96 << 10 // per-PE semispace: 12K words
	cfg.EnableGC = true
	b, _ := programs.ByName("Puzzle")
	res, err := Run(b.Source(b.DefaultScale), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("failed: %s", res.FailReason)
	}
	if want := b.Expected(b.DefaultScale); res.Output != want {
		t.Errorf("output %q, want %q", res.Output, want)
	}
}

func TestSoakDeterminismFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	b, _ := programs.ByName("Pascal")
	r1, _, err := bench.RunLive(b, b.DefaultScale, 8, bench.BaseCache(cache.OptionsAll()), false)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := bench.RunLive(b, b.DefaultScale, 8, bench.BaseCache(cache.OptionsAll()), false)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Bus.TotalCycles != r2.Bus.TotalCycles || r1.Result.Steps != r2.Result.Steps {
		t.Errorf("nondeterministic full-scale run: %d/%d vs %d/%d",
			r1.Bus.TotalCycles, r1.Result.Steps, r2.Bus.TotalCycles, r2.Result.Steps)
	}
}
