package pimcache

import (
	"strings"
	"testing"

	"pimcache/internal/cache"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.PEs = 2
	cfg.HeapWords = 1 << 20
	return cfg
}

func TestRunHello(t *testing.T) {
	res, err := Run("main :- true | println(hello).", smallConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed || res.Output != "hello\n" {
		t.Errorf("result %+v", res)
	}
	if res.Reductions == 0 || res.MemoryRefs == 0 {
		t.Error("no work metered")
	}
}

func TestRunParseError(t *testing.T) {
	if _, err := Run("main :- |", smallConfig(), 0); err == nil {
		t.Error("parse error not reported")
	}
}

func TestRunProgramFailure(t *testing.T) {
	res, err := Run("main :- true | X = 1, X = 2.", smallConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed || res.FailReason == "" {
		t.Errorf("failure not surfaced: %+v", res)
	}
}

func TestRunDeadlockSurfaced(t *testing.T) {
	res, err := Run("main :- true | p(X).\np(1) :- true | true.", smallConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Error("suspended goal not reported as deadlock")
	}
}

func TestRunBenchmarkVerifies(t *testing.T) {
	res, err := RunBenchmark("Puzzle", 2, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "11\n" { // 3x4 board has 11 domino tilings
		t.Errorf("output %q", res.Output)
	}
	if res.BusCycles == 0 || res.MissRatio <= 0 {
		t.Errorf("metrics missing: %+v", res)
	}
}

func TestRunBenchmarkUnknown(t *testing.T) {
	if _, err := RunBenchmark("nope", 0, smallConfig()); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.Optimizations = "bogus"
	if _, err := Run("main :- true | true.", cfg, 0); err == nil {
		t.Error("bad optimization set accepted")
	}
	cfg = smallConfig()
	cfg.Protocol = "mesi"
	if _, err := Run("main :- true | true.", cfg, 0); err == nil {
		t.Error("bad protocol accepted")
	}
	cfg = smallConfig()
	cfg.BlockWords = 3
	if _, err := Run("main :- true | true.", cfg, 0); err == nil {
		t.Error("bad geometry accepted")
	}
}

func TestOptimizationsReduceTraffic(t *testing.T) {
	src := `
main :- true | mk(200, L), sum(L, 0, S), println(S).
mk(0, L) :- true | L = [].
mk(N, L) :- N > 0 | L = [N|T], N1 := N - 1, mk(N1, T).
sum([], A, S) :- true | S = A.
sum([H|T], A, S) :- true | A1 := A + H, sum(T, A1, S).
`
	all := smallConfig()
	none := smallConfig()
	none.Optimizations = "none"
	ra, err := Run(src, all, 0)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := Run(src, none, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Output != "20100\n" || rn.Output != ra.Output {
		t.Fatalf("outputs %q / %q", ra.Output, rn.Output)
	}
	if ra.BusCycles >= rn.BusCycles {
		t.Errorf("optimizations did not help: all=%d none=%d", ra.BusCycles, rn.BusCycles)
	}
}

func TestIllinoisProtocolOption(t *testing.T) {
	cfg := smallConfig()
	cfg.Protocol = "illinois"
	res, err := Run("main :- true | println(ok).", cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "ok\n" {
		t.Errorf("output %q", res.Output)
	}
}

// TestEveryRegisteredProtocolRuns checks the facade accepts every name
// in the cache package's protocol registry and produces the same program
// output under each — new protocols are reachable from the public API
// the moment they register.
func TestEveryRegisteredProtocolRuns(t *testing.T) {
	for _, name := range cache.ProtocolNames() {
		cfg := smallConfig()
		cfg.Protocol = name
		res, err := Run("main :- true | println(ok).", cfg, 0)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if res.Output != "ok\n" {
			t.Errorf("%s: output %q", name, res.Output)
		}
	}
}

func TestBenchmarksList(t *testing.T) {
	names := Benchmarks()
	want := []string{"Tri", "Semi", "Puzzle", "Pascal"}
	if len(names) != len(want) {
		t.Fatalf("names %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestEvaluationQuickSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick evaluation takes ~10s")
	}
	out, err := Evaluation(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Table 1", "Table 2", "Table 3", "Table 4", "Table 5",
		"Figure 1a", "Figure 2b", "Figure 3", "Illinois"} {
		if !strings.Contains(out, frag) {
			t.Errorf("evaluation output missing %q", frag)
		}
	}
}

func TestDisassemble(t *testing.T) {
	asm, err := Disassemble(`
main :- true | p(3, R), println(R).
p(N, R) :- N > 0 | R := N * 2.
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"main/0:", "p/2:", "try", "guard", "arith", "spawn"} {
		if !strings.Contains(asm, frag) {
			t.Errorf("disassembly missing %q", frag)
		}
	}
	if _, err := Disassemble("p :- |"); err == nil {
		t.Error("parse error not surfaced")
	}
	if _, err := Disassemble("main :- true | ghost(1)."); err == nil {
		t.Error("compile error not surfaced")
	}
}

func TestRunBenchmarkExtras(t *testing.T) {
	cfg := smallConfig()
	for name, scale := range map[string]int{"BUP": 5, "PuzzleVec": 2} {
		res, err := RunBenchmark(name, scale, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Output == "" || res.BusCycles == 0 {
			t.Errorf("%s: empty result %+v", name, res)
		}
	}
}

func TestRunWithGC(t *testing.T) {
	cfg := smallConfig()
	cfg.HeapWords = 8 << 10
	cfg.EnableGC = true
	res, err := Run(`
main :- true | loop(30, 0, R), println(R).
loop(0, A, R) :- true | R = A.
loop(N, A, R) :- N > 0 | mk(20, L), s(L, 0, S), nx(S, N, A, R).
nx(S, N, A, R) :- wait(S) | A1 := A + S, N1 := N - 1, loop(N1, A1, R).
mk(0, L) :- true | L = [].
mk(N, L) :- N > 0 | L = [N|T], N1 := N - 1, mk(N1, T).
s([], A, S) :- true | S = A.
s([H|T], A, S) :- true | A1 := A + H, s(T, A1, S).
`, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed || res.Output != "6300\n" {
		t.Errorf("result %+v", res)
	}
}

func TestVectorsViaFacade(t *testing.T) {
	res, err := Run(`
main :- true | new_vector(3, V),
               set_vector_element(V, 1, 5, W),
               vector_element(W, 1, E), show(E).
show(E) :- integer(E) | println(E).
`, smallConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "5\n" {
		t.Errorf("output %q", res.Output)
	}
}
