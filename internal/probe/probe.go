// Package probe is the simulator's telemetry layer: a pluggable,
// zero-overhead-when-nil event sink that the bus, the caches, the
// machine and the KL1 emulator feed with cycle-stamped structured
// events — bus transactions, cache state transitions, lock activity,
// PE status changes and scheduler actions.
//
// The probe exists to expose the *temporal* structure the end-of-run
// aggregates (bus.Stats, cache.Stats, emulator.Stats) collapse: lock
// contention bursts, invalidation storms after goal stealing, and
// phase-dependent bus saturation. Three consumers build on it: an
// interval-metrics collector (Intervals), a Perfetto/Chrome
// trace-event exporter (Perfetto), and per-block hot-spot counters
// (HotSpots). Any Sink can be attached; Multi fans one stream out to
// several consumers.
//
// # Clock
//
// Events are stamped with the probe clock, a simulated-cycle counter
// owned by the bus: it advances by one cycle per memory reference a
// PE issues (the cache access itself) and by the transaction's cycle
// cost for every bus transaction. Unlike raw bus-cycle counts this
// clock keeps moving through hit-only phases, so "bus cycles in this
// interval / interval width" is a meaningful utilization. The clock
// is driven entirely by the reference stream and the coherence
// activity it causes, so identical runs — and a live run versus a
// replay of its recorded trace — produce identical timestamps.
//
// # Determinism
//
// The event stream is a pure function of the reference stream and the
// cache configuration. Two identical runs emit byte-identical
// streams; a live run and a replay of its trace emit identical
// memory-system events (kinds for which Kind.Scheduler reports
// false). Scheduler-level events (PE status, goal steal / suspend /
// resume) exist only in live runs, because a trace replay drives the
// cache ports directly without running the KL1 runtime.
package probe

import (
	"fmt"

	"pimcache/internal/kl1/word"
)

// Kind enumerates the event kinds.
type Kind uint8

const (
	// KindRef: a PE issued a memory reference. PE, A=op, Addr. Emitted
	// once per reference, immediately after the clock tick that stamps
	// it.
	KindRef Kind = iota
	// KindMiss: the reference missed in the PE's cache. PE, A=op, Addr.
	KindMiss
	// KindBusBegin: a bus transaction started. PE=requester, A=command
	// (CmdNone for write-backs and word writes, which have no Section
	// 3.3 command), Addr, Arg=remote-holder bitmask at transaction
	// start, N=1 when an LK broadcast rides along.
	KindBusBegin
	// KindBusEnd: the transaction completed. Fields as KindBusBegin
	// plus B=access pattern and N=cycles charged; the transaction
	// occupied the bus during [Cycle-N, Cycle).
	KindBusEnd
	// KindCacheState: a block changed state in a PE's cache. PE,
	// Addr=block base, A=from state, B=to state, Arg=transition reason
	// (the Reason constants).
	KindCacheState
	// KindLockAcquire: the PE's lock directory acquired a word lock.
	// PE, Addr.
	KindLockAcquire
	// KindLockRelease: a word lock was released. PE, Addr, Arg=1 when
	// the release broadcast UL to wake busy-waiters.
	KindLockRelease
	// KindLockSpin: an LR drew the LH response; the PE busy-waits until
	// the matching UL. PE, Addr.
	KindLockSpin
	// KindLockConflict: a bus transaction was answered LH by a remote
	// lock directory (the transaction aborted and will be retried).
	// PE=requester, Addr.
	KindLockConflict
	// KindPEStatus: a PE's scheduler status changed. PE, A=status (the
	// Status constants). Live runs only.
	KindPEStatus
	// KindGoalSteal: the PE received a goal donated by another PE. PE,
	// Arg=victim PE. Live runs only.
	KindGoalSteal
	// KindGoalSuspend: the PE suspended its current goal on unbound
	// variables. PE. Live runs only.
	KindGoalSuspend
	// KindGoalResume: the PE resumed a suspended goal. PE, Addr=goal
	// record. Live runs only.
	KindGoalResume

	// NumKinds sizes per-kind arrays.
	NumKinds
)

var kindNames = [NumKinds]string{
	"ref", "miss", "bus-begin", "bus-end", "cache-state",
	"lock-acquire", "lock-release", "lock-spin", "lock-conflict",
	"pe-status", "goal-steal", "goal-suspend", "goal-resume",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Scheduler reports whether the kind is a scheduler-level event that
// exists only in live runs (a trace replay cannot reproduce it).
func (k Kind) Scheduler() bool {
	switch k {
	case KindPEStatus, KindGoalSteal, KindGoalSuspend, KindGoalResume:
		return true
	}
	return false
}

// CmdNone marks a bus transaction with no Section 3.3 command (dirty
// write-backs and write-through word writes).
const CmdNone uint8 = 0xFF

// Reason values for KindCacheState events (the Arg field).
const (
	// ReasonFetch: the block was installed by a bus fetch (F/FI).
	ReasonFetch uint64 = iota
	// ReasonDirectWrite: the block was allocated by DW without a fetch.
	ReasonDirectWrite
	// ReasonEvict: the block was displaced by a replacement victim.
	ReasonEvict
	// ReasonSnoopInval: a remote FI/I/word-write invalidated the copy.
	ReasonSnoopInval
	// ReasonSnoopShare: a remote F downgraded the copy to a shared
	// state (EM to SM, EC to S; under Illinois a dirty copy also turns
	// clean).
	ReasonSnoopShare
	// ReasonPurge: ER/RP discarded the local copy (dead data).
	ReasonPurge
	// ReasonFlush: Flush emptied the cache (GC or end-of-run; costs no
	// simulated cycles).
	ReasonFlush
	// ReasonWrite: a local write upgraded the state (S/SM/EC toward
	// EM, or SM when a remote lock denies exclusivity).
	ReasonWrite
	// ReasonLock: an LR upgraded the state while taking a lock.
	ReasonLock
	// ReasonAdaptiveDrop: the adaptive update protocol self-invalidated
	// the copy after receiving its threshold of consecutive UP
	// broadcasts with no local access.
	ReasonAdaptiveDrop

	numReasons
)

var reasonNames = [numReasons]string{
	"fetch", "direct-write", "evict", "snoop-inval", "snoop-share",
	"purge", "flush", "write", "lock", "adaptive-drop",
}

// ReasonName names a KindCacheState reason.
func ReasonName(r uint64) string {
	if r < uint64(numReasons) {
		return reasonNames[r]
	}
	return fmt.Sprintf("reason(%d)", r)
}

// Status values for KindPEStatus events (the A field). StatusRunning
// through StatusFailed mirror machine.Status numerically (asserted by
// the cross-package name tests); StatusSpinning is probe-level: the
// machine skips the PE because it busy-waits on a remote lock.
const (
	StatusRunning uint8 = iota
	StatusIdle
	StatusHalted
	StatusFailed
	StatusSpinning

	numStatuses
)

var statusNames = [numStatuses]string{"running", "idle", "halted", "failed", "spinning"}

// StatusName names a KindPEStatus status.
func StatusName(s uint8) string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return fmt.Sprintf("status(%d)", s)
}

// Name tables for enum values carried in events as raw bytes. The
// probe layer cannot import bus or cache (they import probe), so it
// carries fallback copies and lets those packages register the
// authoritative tables from their init functions (SetCmdNames and
// friends below); cross-package tests assert the registered tables
// agree with bus.Command, bus.Pattern, cache.State and cache.Op.
var (
	cmdNames     = []string{"F", "FI", "I", "H", "LK", "UL", "LH", "UP"}
	patternNames = []string{
		"swapin-mem", "swapin-mem+swapout", "c2c", "c2c+swapout",
		"swapout-only", "invalidate", "unlock", "word-write", "update",
	}
	stateNames = []string{"INV", "S", "SM", "EC", "EM", "O"}
	opNames    = []string{"R", "W", "LR", "UW", "U", "DW", "ER", "RP", "RI"}
)

// SetCmdNames registers the authoritative bus-command name table
// (called from the bus package's init so the probe renders whatever
// commands the bus actually defines).
func SetCmdNames(names []string) { cmdNames = names }

// SetPatternNames registers the authoritative bus access-pattern name
// table (called from the bus package's init).
func SetPatternNames(names []string) { patternNames = names }

// SetStateNames registers the authoritative cache-state name table
// (called from the cache package's init so every registered protocol's
// states render).
func SetStateNames(names []string) { stateNames = names }

// SetOpNames registers the authoritative memory-operation name table
// (called from the cache package's init).
func SetOpNames(names []string) { opNames = names }

// CmdName names a bus command byte (CmdNone for command-less
// transactions).
func CmdName(c uint8) string {
	if c == CmdNone {
		return "-"
	}
	if int(c) < len(cmdNames) {
		return cmdNames[c]
	}
	return fmt.Sprintf("cmd(%d)", c)
}

// PatternName names a bus access-pattern byte.
func PatternName(p uint8) string {
	if int(p) < len(patternNames) {
		return patternNames[p]
	}
	return fmt.Sprintf("pattern(%d)", p)
}

// StateName names a cache-state byte.
func StateName(s uint8) string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", s)
}

// OpName names a memory-operation byte.
func OpName(o uint8) string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", o)
}

// NumOps is the number of memory operations (mirrors cache.NumOps).
const NumOps = 9

// OpU is the unlock operation's byte value (mirrors cache.OpU); the
// interval collector excludes it from lookup counts because U touches
// only the lock directory, never the block directory.
const OpU uint8 = 4

// Event is one cycle-stamped simulation event. The struct is flat and
// comparable so that event streams can be compared directly by the
// determinism oracles; kind-specific payloads ride in A, B, N and Arg
// as documented per Kind.
type Event struct {
	// Cycle is the probe-clock timestamp (see the package comment).
	Cycle uint64
	// Arg is a kind-specific payload: holder bitmask (bus events),
	// transition reason (cache-state), victim PE (goal-steal), waiter
	// flag (lock-release).
	Arg uint64
	// Addr is the word or block address the event concerns.
	Addr word.Addr
	// N is a kind-specific count: transaction cycles (bus-end), LK flag
	// (bus-begin).
	N uint32
	// Kind discriminates the payload.
	Kind Kind
	// A and B are kind-specific operand bytes: command, pattern,
	// operation, from/to state, status.
	A, B uint8
	// PE is the processor the event concerns (the requester for bus
	// events), or -1 when no single PE applies.
	PE int16
}

// Sink consumes probe events. Emit is called synchronously from the
// simulation's hot paths, in deterministic order; implementations
// must not retain e past the call unless they copy it (Event is a
// value, so plain assignment copies).
//
// Components hold a Sink in a single nil-checkable field; a nil field
// disables the probe with no allocation and no work beyond one branch
// per emit site.
type Sink interface {
	Emit(e Event)
}

// Buffer collects every event in memory. It is the reference consumer
// the determinism oracles compare, and a convenient base for ad-hoc
// analysis; long runs should prefer the streaming consumers.
type Buffer struct {
	Events []Event
}

// Emit implements Sink.
func (b *Buffer) Emit(e Event) { b.Events = append(b.Events, e) }

// MemoryEvents returns the subsequence of memory-system events (the
// kinds a trace replay reproduces).
func (b *Buffer) MemoryEvents() []Event {
	var out []Event
	for _, e := range b.Events {
		if !e.Kind.Scheduler() {
			out = append(out, e)
		}
	}
	return out
}

// multi fans events out to several sinks in order.
type multi struct {
	sinks []Sink
}

// Multi returns a Sink that forwards every event to each non-nil sink
// in order. With zero or one effective sinks it returns nil or that
// sink directly, preserving the zero-overhead-when-nil contract.
func Multi(sinks ...Sink) Sink {
	var eff []Sink
	for _, s := range sinks {
		if s != nil {
			eff = append(eff, s)
		}
	}
	switch len(eff) {
	case 0:
		return nil
	case 1:
		return eff[0]
	}
	return &multi{sinks: eff}
}

// Emit implements Sink.
func (m *multi) Emit(e Event) {
	for _, s := range m.sinks {
		s.Emit(e)
	}
}

// memoryOnly drops scheduler-level events.
type memoryOnly struct {
	sink Sink
}

// MemoryOnly wraps a sink so it receives only memory-system events —
// the subset a trace replay reproduces, and therefore the subset
// under the live-versus-replay byte-identity guarantee.
func MemoryOnly(s Sink) Sink {
	if s == nil {
		return nil
	}
	return &memoryOnly{sink: s}
}

// Emit implements Sink.
func (m *memoryOnly) Emit(e Event) {
	if !e.Kind.Scheduler() {
		m.sink.Emit(e)
	}
}
