package probe

import (
	"fmt"
	"sort"

	"pimcache/internal/kl1/word"
	"pimcache/internal/mem"
	"pimcache/internal/stats"
)

// BlockCount is one block's contention tally.
type BlockCount struct {
	// Base is the block's base address.
	Base word.Addr
	// Area is the memory area the block lives in.
	Area mem.Area
	// Invals counts copies of the block invalidated by remote activity.
	Invals uint64
	// Conflicts counts lock denials (LH responses) on the block.
	Conflicts uint64
	// BusTxns counts bus transactions addressed to the block.
	BusTxns uint64
}

// HotSpots accumulates per-block-base contention counters —
// invalidations suffered, lock conflicts, and bus transactions — and
// reports the top-K offenders per metric, classified by memory area.
// It is how "which address is everyone fighting over?" gets answered
// without reading a timeline.
type HotSpots struct {
	blockWords int
	areaOf     func(word.Addr) mem.Area
	counts     map[word.Addr]*BlockCount
}

// NewHotSpots counts contention per block of blockWords words,
// classifying addresses with areaOf (pass bounds.AreaOf; nil leaves
// every block in AreaNone).
func NewHotSpots(blockWords int, areaOf func(word.Addr) mem.Area) *HotSpots {
	if blockWords < 1 || blockWords&(blockWords-1) != 0 {
		panic("probe: block size must be a positive power of two")
	}
	if areaOf == nil {
		areaOf = func(word.Addr) mem.Area { return mem.AreaNone }
	}
	return &HotSpots{
		blockWords: blockWords,
		areaOf:     areaOf,
		counts:     make(map[word.Addr]*BlockCount),
	}
}

func (h *HotSpots) at(a word.Addr) *BlockCount {
	base := a &^ word.Addr(h.blockWords-1)
	c := h.counts[base]
	if c == nil {
		c = &BlockCount{Base: base, Area: h.areaOf(base)}
		h.counts[base] = c
	}
	return c
}

// Emit implements Sink.
func (h *HotSpots) Emit(e Event) {
	switch e.Kind {
	case KindBusEnd:
		h.at(e.Addr).BusTxns++
	case KindLockConflict:
		h.at(e.Addr).Conflicts++
	case KindCacheState:
		if e.Arg == ReasonSnoopInval {
			h.at(e.Addr).Invals++
		}
	}
}

// Top returns the k blocks with the highest value of metric, ties
// broken by ascending base address so the ranking is deterministic.
func (h *HotSpots) Top(k int, metric func(*BlockCount) uint64) []BlockCount {
	all := make([]BlockCount, 0, len(h.counts))
	for _, c := range h.counts {
		if metric(c) > 0 {
			all = append(all, *c)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		mi, mj := metric(&all[i]), metric(&all[j])
		if mi != mj {
			return mi > mj
		}
		return all[i].Base < all[j].Base
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// Invals selects the invalidation count (for Top).
func Invals(c *BlockCount) uint64 { return c.Invals }

// Conflicts selects the lock-conflict count (for Top).
func Conflicts(c *BlockCount) uint64 { return c.Conflicts }

// BusTxns selects the bus-transaction count (for Top).
func BusTxns(c *BlockCount) uint64 { return c.BusTxns }

// Table renders the top-k blocks by each metric as one table per
// metric with a non-empty ranking.
func (h *HotSpots) Table(k int) []*stats.Table {
	var out []*stats.Table
	metrics := []struct {
		name   string
		metric func(*BlockCount) uint64
	}{
		{"most invalidated", Invals},
		{"most lock-contended", Conflicts},
		{"most bus transactions", BusTxns},
	}
	for _, m := range metrics {
		top := h.Top(k, m.metric)
		if len(top) == 0 {
			continue
		}
		t := &stats.Table{
			Title:   fmt.Sprintf("hot blocks: %s (top %d)", m.name, k),
			Columns: []string{"block", "area", "invals", "lock-conflicts", "bus-txns"},
		}
		for _, c := range top {
			t.AddRow(fmt.Sprintf("0x%x", uint32(c.Base)),
				c.Area.String(),
				fmt.Sprintf("%d", c.Invals),
				fmt.Sprintf("%d", c.Conflicts),
				fmt.Sprintf("%d", c.BusTxns),
			)
		}
		out = append(out, t)
	}
	return out
}
