package probe

import (
	"testing"

	"pimcache/internal/kl1/word"
	"pimcache/internal/mem"
)

func TestHotSpotsPanicsOnBadBlock(t *testing.T) {
	for _, bad := range []int{0, -4, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHotSpots(%d, nil) did not panic", bad)
				}
			}()
			NewHotSpots(bad, nil)
		}()
	}
}

func TestHotSpotsBlockBaseMasking(t *testing.T) {
	h := NewHotSpots(4, nil)
	// Three addresses inside block 0x10, one in block 0x20.
	for _, a := range []word.Addr{0x10, 0x11, 0x13, 0x21} {
		h.Emit(Event{Kind: KindBusEnd, Addr: a})
	}
	top := h.Top(10, BusTxns)
	if len(top) != 2 {
		t.Fatalf("%d blocks, want 2", len(top))
	}
	if top[0].Base != 0x10 || top[0].BusTxns != 3 {
		t.Errorf("top block = %+v, want base 0x10 with 3 txns", top[0])
	}
	if top[0].Area != mem.AreaNone {
		t.Errorf("nil areaOf should leave Area = AreaNone, got %v", top[0].Area)
	}
}

func TestHotSpotsMetricsAndOrdering(t *testing.T) {
	h := NewHotSpots(4, nil)
	h.Emit(Event{Kind: KindLockConflict, Addr: 0x40})
	h.Emit(Event{Kind: KindLockConflict, Addr: 0x40})
	h.Emit(Event{Kind: KindLockConflict, Addr: 0x80})
	h.Emit(Event{Kind: KindCacheState, Addr: 0x40, Arg: ReasonSnoopInval})
	h.Emit(Event{Kind: KindCacheState, Addr: 0x80, Arg: ReasonEvict}) // not an inval

	if top := h.Top(10, Conflicts); len(top) != 2 || top[0].Base != 0x40 || top[0].Conflicts != 2 {
		t.Errorf("Top(Conflicts) = %+v, want 0x40 first with 2", top)
	}
	// Zero-metric blocks are filtered out entirely.
	if top := h.Top(10, Invals); len(top) != 1 || top[0].Base != 0x40 {
		t.Errorf("Top(Invals) = %+v, want only 0x40", top)
	}
	if top := h.Top(10, BusTxns); len(top) != 0 {
		t.Errorf("Top(BusTxns) = %+v, want empty", top)
	}
	// k truncates.
	if top := h.Top(1, Conflicts); len(top) != 1 {
		t.Errorf("Top(1) returned %d blocks", len(top))
	}
}

// TestHotSpotsEmptyStream: a sink that saw no events (or none of the
// kinds it counts) yields empty rankings and no tables — the CLIs
// print nothing rather than empty headers or a nil-deref.
func TestHotSpotsEmptyStream(t *testing.T) {
	h := NewHotSpots(4, nil)
	for _, m := range []func(*BlockCount) uint64{Invals, Conflicts, BusTxns} {
		if top := h.Top(10, m); len(top) != 0 {
			t.Errorf("Top on empty stream = %+v, want empty", top)
		}
	}
	if tables := h.Table(10); len(tables) != 0 {
		t.Errorf("Table on empty stream produced %d tables, want 0", len(tables))
	}
	// Events of uncounted kinds leave it just as empty.
	h.Emit(Event{Kind: KindRef, Addr: 0x40})
	h.Emit(Event{Kind: KindCacheState, Addr: 0x40, Arg: ReasonEvict})
	if tables := h.Table(10); len(tables) != 0 {
		t.Errorf("Table after uncounted events produced %d tables, want 0", len(tables))
	}
}

func TestHotSpotsTieBreakAndTables(t *testing.T) {
	h := NewHotSpots(8, nil)
	// Equal counts: ascending base order must win for determinism.
	for _, a := range []word.Addr{0x300, 0x100, 0x200} {
		h.Emit(Event{Kind: KindBusEnd, Addr: a})
	}
	top := h.Top(3, BusTxns)
	if top[0].Base != 0x100 || top[1].Base != 0x200 || top[2].Base != 0x300 {
		t.Errorf("tie-break order wrong: %+v", top)
	}
	// Only the bus-transaction table has rows here.
	if tables := h.Table(3); len(tables) != 1 {
		t.Errorf("Table produced %d tables, want 1", len(tables))
	}
}
