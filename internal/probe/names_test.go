package probe_test

// The probe package cannot import bus, cache or machine (they import
// probe), so it carries its own name tables and numeric mirrors for
// the enum bytes that ride in events. These tests pin the two sides
// together: if an enum is renamed, renumbered or extended, they fail
// until the probe copies are updated.

import (
	"testing"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/machine"
	"pimcache/internal/probe"
)

func TestCmdNamesMatchBus(t *testing.T) {
	for c := bus.Command(0); c < bus.NumCommands; c++ {
		if got, want := probe.CmdName(uint8(c)), c.String(); got != want {
			t.Errorf("CmdName(%d) = %q, bus says %q", c, got, want)
		}
	}
}

func TestPatternNamesMatchBus(t *testing.T) {
	for p := bus.Pattern(0); p < bus.NumPatterns; p++ {
		if got, want := probe.PatternName(uint8(p)), p.String(); got != want {
			t.Errorf("PatternName(%d) = %q, bus says %q", p, got, want)
		}
	}
}

func TestStateNamesMatchCache(t *testing.T) {
	for s := cache.INV; s <= cache.O; s++ {
		if got, want := probe.StateName(uint8(s)), s.String(); got != want {
			t.Errorf("StateName(%d) = %q, cache says %q", s, got, want)
		}
	}
	// Both sides format unknown values identically, so O+1 matching
	// confirms O (MOESI's owned state) really is the last state.
	if got, want := probe.StateName(uint8(cache.O)+1), (cache.O + 1).String(); got != want {
		t.Errorf("state beyond O: probe %q, cache %q", got, want)
	}
}

// TestNewProtocolNamesRender pins the names the MOESI and write-update
// protocols introduced: a probe event carrying the UP command, the
// update bus pattern, or the O state renders symbolically, and the
// bus/cache enum values agree with the registered tables.
func TestNewProtocolNamesRender(t *testing.T) {
	if got := probe.CmdName(uint8(bus.CmdUP)); got != "UP" {
		t.Errorf("CmdName(CmdUP) = %q, want UP", got)
	}
	if got := probe.PatternName(uint8(bus.PatUpdate)); got != "update" {
		t.Errorf("PatternName(PatUpdate) = %q, want update", got)
	}
	if got := probe.StateName(uint8(cache.O)); got != "O" {
		t.Errorf("StateName(O) = %q, want O", got)
	}
}

func TestOpNamesMatchCache(t *testing.T) {
	if probe.NumOps != int(cache.NumOps) {
		t.Fatalf("probe.NumOps = %d, cache.NumOps = %d", probe.NumOps, cache.NumOps)
	}
	if probe.OpU != uint8(cache.OpU) {
		t.Fatalf("probe.OpU = %d, cache.OpU = %d", probe.OpU, uint8(cache.OpU))
	}
	for o := cache.Op(0); o < cache.NumOps; o++ {
		if got, want := probe.OpName(uint8(o)), o.String(); got != want {
			t.Errorf("OpName(%d) = %q, cache says %q", o, got, want)
		}
	}
}

func TestStatusesMirrorMachine(t *testing.T) {
	pairs := []struct {
		probe uint8
		mach  machine.Status
	}{
		{probe.StatusRunning, machine.StatusRunning},
		{probe.StatusIdle, machine.StatusIdle},
		{probe.StatusHalted, machine.StatusHalted},
		{probe.StatusFailed, machine.StatusFailed},
	}
	for _, p := range pairs {
		if p.probe != uint8(p.mach) {
			t.Errorf("probe status %d != machine status %d (%s)", p.probe, uint8(p.mach), p.mach)
		}
		if got, want := probe.StatusName(p.probe), p.mach.String(); got != want {
			t.Errorf("StatusName(%d) = %q, machine says %q", p.probe, got, want)
		}
	}
}
