package probe

import (
	"strings"
	"testing"
)

func TestIntervalsPanicsOnZeroWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewIntervals(0) did not panic")
		}
	}()
	NewIntervals(0)
}

func TestIntervalsRefBuckets(t *testing.T) {
	iv := NewIntervals(10)
	iv.Emit(Event{Kind: KindRef, Cycle: 0, A: 0})
	iv.Emit(Event{Kind: KindRef, Cycle: 9, A: OpU}) // counted as ref, not lookup
	iv.Emit(Event{Kind: KindRef, Cycle: 10, A: 1})
	iv.Emit(Event{Kind: KindMiss, Cycle: 10, A: 1})
	iv.Emit(Event{Kind: KindCacheState, Cycle: 25, Arg: ReasonSnoopInval})
	iv.Emit(Event{Kind: KindCacheState, Cycle: 25, Arg: ReasonEvict}) // not an inval
	iv.Emit(Event{Kind: KindGoalSteal, Cycle: 25})
	bk := iv.Buckets()
	if len(bk) != 3 {
		t.Fatalf("%d buckets, want 3", len(bk))
	}
	if bk[0].Refs != 2 || bk[0].Lookups != 1 {
		t.Errorf("bucket 0: refs %d lookups %d, want 2/1", bk[0].Refs, bk[0].Lookups)
	}
	if bk[1].Refs != 1 || bk[1].Misses != 1 {
		t.Errorf("bucket 1: refs %d misses %d, want 1/1", bk[1].Refs, bk[1].Misses)
	}
	if bk[2].Invals != 1 || bk[2].Steals != 1 {
		t.Errorf("bucket 2: invals %d steals %d, want 1/1", bk[2].Invals, bk[2].Steals)
	}
}

func TestIntervalsSpreadAcrossBoundaries(t *testing.T) {
	iv := NewIntervals(10)
	// A 25-cycle bus transaction ending at cycle 30 spans [5, 30):
	// 5 cycles in window 0, 10 in window 1, 10 in window 2.
	iv.Emit(Event{Kind: KindBusEnd, Cycle: 30, N: 25})
	bk := iv.Buckets()
	if len(bk) != 3 {
		t.Fatalf("%d buckets, want 3", len(bk))
	}
	for i, want := range []uint64{5, 10, 10} {
		if bk[i].BusCycles != want {
			t.Errorf("bucket %d: BusCycles %d, want %d", i, bk[i].BusCycles, want)
		}
	}
}

func TestIntervalsLockWait(t *testing.T) {
	iv := NewIntervals(10)
	iv.Emit(Event{Kind: KindLockSpin, Cycle: 5, PE: 2})
	// A second denial before the acquire must not reset the wait start.
	iv.Emit(Event{Kind: KindLockConflict, Cycle: 12, PE: 2})
	iv.Emit(Event{Kind: KindLockAcquire, Cycle: 25, PE: 2})
	// Another PE acquiring without a recorded wait adds nothing.
	iv.Emit(Event{Kind: KindLockAcquire, Cycle: 25, PE: 0})
	bk := iv.Buckets()
	if len(bk) != 3 {
		t.Fatalf("%d buckets, want 3", len(bk))
	}
	for i, want := range []uint64{5, 10, 5} {
		if bk[i].LockWait != want {
			t.Errorf("bucket %d: LockWait %d, want %d", i, bk[i].LockWait, want)
		}
	}
	// The wait was consumed: a fresh acquire adds nothing more.
	iv.Emit(Event{Kind: KindLockAcquire, Cycle: 29, PE: 2})
	if iv.Buckets()[2].LockWait != 5 {
		t.Error("acquire without a pending wait changed LockWait")
	}
}

// TestIntervalsConflictAloneIsNotAWait pins the fix for an accounting
// bug: the bus emits KindLockConflict for every transaction that draws
// LH, including plain R/W fetches that retry immediately via
// FetchForced and never acquire a lock. Treating the conflict as the
// start of a wait left the window open until the PE's next unrelated
// lock acquisition, charging normal execution as lock-wait time. Only
// the cache-side KindLockSpin — the actual start of a busy wait —
// may open the window.
func TestIntervalsConflictAloneIsNotAWait(t *testing.T) {
	iv := NewIntervals(10)
	// Plain R/W draws LH at cycle 2; the retry proceeds with no
	// acquisition. Much later the same PE takes an uncontended lock.
	iv.Emit(Event{Kind: KindLockConflict, Cycle: 2, PE: 1})
	iv.Emit(Event{Kind: KindLockAcquire, Cycle: 95, PE: 1})
	for i, b := range iv.Buckets() {
		if b.LockWait != 0 {
			t.Errorf("bucket %d: LockWait %d from a conflict-only window, want 0", i, b.LockWait)
		}
	}
	// A real busy wait still accounts normally afterwards.
	iv.Emit(Event{Kind: KindLockSpin, Cycle: 100, PE: 1})
	iv.Emit(Event{Kind: KindLockAcquire, Cycle: 104, PE: 1})
	if got := iv.Buckets()[10].LockWait; got != 4 {
		t.Errorf("LockWait after real spin = %d, want 4", got)
	}
}

// TestIntervalsWindowLongerThanRun: with a width wider than the whole
// run, everything lands in one bucket and the renderers emit exactly
// one row.
func TestIntervalsWindowLongerThanRun(t *testing.T) {
	iv := NewIntervals(1_000_000)
	iv.Emit(Event{Kind: KindRef, Cycle: 0})
	iv.Emit(Event{Kind: KindMiss, Cycle: 17})
	iv.Emit(Event{Kind: KindBusEnd, Cycle: 40, N: 12})
	iv.Emit(Event{Kind: KindRef, Cycle: 999})
	bk := iv.Buckets()
	if len(bk) != 1 {
		t.Fatalf("%d buckets, want 1", len(bk))
	}
	if bk[0].Refs != 2 || bk[0].Misses != 1 || bk[0].BusCycles != 12 {
		t.Errorf("bucket = %+v, want refs 2, misses 1, bus 12", bk[0])
	}
	var sb strings.Builder
	if err := iv.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(sb.String(), "\n"); lines != 2 {
		t.Errorf("CSV has %d lines, want header + 1 row", lines)
	}
	if !strings.Contains(iv.Table().String(), "0-1000000") {
		t.Errorf("Table missing the single window:\n%s", iv.Table())
	}
}

// TestIntervalsCSVTrailingNewline: the CSV ends with exactly one
// newline — no missing terminator, no blank trailing record.
func TestIntervalsCSVTrailingNewline(t *testing.T) {
	iv := NewIntervals(10)
	iv.Emit(Event{Kind: KindRef, Cycle: 3})
	iv.Emit(Event{Kind: KindRef, Cycle: 25}) // three windows
	var sb strings.Builder
	if err := iv.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("CSV does not end with a newline: %q", out)
	}
	if strings.HasSuffix(out, "\n\n") {
		t.Fatalf("CSV ends with a blank line: %q", out)
	}
	if rows := strings.Count(out, "\n"); rows != 4 {
		t.Errorf("CSV has %d lines, want header + 3 rows", rows)
	}
}

func TestIntervalsCSV(t *testing.T) {
	iv := NewIntervals(10)
	iv.Emit(Event{Kind: KindRef, Cycle: 3})
	iv.Emit(Event{Kind: KindMiss, Cycle: 3})
	iv.Emit(Event{Kind: KindBusEnd, Cycle: 8, N: 4})
	var sb strings.Builder
	if err := iv.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "start,end,refs,misses,bus_cycles,lock_wait,invals,steals\n" +
		"0,10,1,1,4,0,0,0\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
	if got := iv.Table().String(); !strings.Contains(got, "0-10") {
		t.Errorf("Table missing the 0-10 window:\n%s", got)
	}
}
