package probe

import (
	"strings"
	"testing"
)

func TestIntervalsPanicsOnZeroWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewIntervals(0) did not panic")
		}
	}()
	NewIntervals(0)
}

func TestIntervalsRefBuckets(t *testing.T) {
	iv := NewIntervals(10)
	iv.Emit(Event{Kind: KindRef, Cycle: 0, A: 0})
	iv.Emit(Event{Kind: KindRef, Cycle: 9, A: OpU}) // counted as ref, not lookup
	iv.Emit(Event{Kind: KindRef, Cycle: 10, A: 1})
	iv.Emit(Event{Kind: KindMiss, Cycle: 10, A: 1})
	iv.Emit(Event{Kind: KindCacheState, Cycle: 25, Arg: ReasonSnoopInval})
	iv.Emit(Event{Kind: KindCacheState, Cycle: 25, Arg: ReasonEvict}) // not an inval
	iv.Emit(Event{Kind: KindGoalSteal, Cycle: 25})
	bk := iv.Buckets()
	if len(bk) != 3 {
		t.Fatalf("%d buckets, want 3", len(bk))
	}
	if bk[0].Refs != 2 || bk[0].Lookups != 1 {
		t.Errorf("bucket 0: refs %d lookups %d, want 2/1", bk[0].Refs, bk[0].Lookups)
	}
	if bk[1].Refs != 1 || bk[1].Misses != 1 {
		t.Errorf("bucket 1: refs %d misses %d, want 1/1", bk[1].Refs, bk[1].Misses)
	}
	if bk[2].Invals != 1 || bk[2].Steals != 1 {
		t.Errorf("bucket 2: invals %d steals %d, want 1/1", bk[2].Invals, bk[2].Steals)
	}
}

func TestIntervalsSpreadAcrossBoundaries(t *testing.T) {
	iv := NewIntervals(10)
	// A 25-cycle bus transaction ending at cycle 30 spans [5, 30):
	// 5 cycles in window 0, 10 in window 1, 10 in window 2.
	iv.Emit(Event{Kind: KindBusEnd, Cycle: 30, N: 25})
	bk := iv.Buckets()
	if len(bk) != 3 {
		t.Fatalf("%d buckets, want 3", len(bk))
	}
	for i, want := range []uint64{5, 10, 10} {
		if bk[i].BusCycles != want {
			t.Errorf("bucket %d: BusCycles %d, want %d", i, bk[i].BusCycles, want)
		}
	}
}

func TestIntervalsLockWait(t *testing.T) {
	iv := NewIntervals(10)
	iv.Emit(Event{Kind: KindLockSpin, Cycle: 5, PE: 2})
	// A second denial before the acquire must not reset the wait start.
	iv.Emit(Event{Kind: KindLockConflict, Cycle: 12, PE: 2})
	iv.Emit(Event{Kind: KindLockAcquire, Cycle: 25, PE: 2})
	// Another PE acquiring without a recorded wait adds nothing.
	iv.Emit(Event{Kind: KindLockAcquire, Cycle: 25, PE: 0})
	bk := iv.Buckets()
	if len(bk) != 3 {
		t.Fatalf("%d buckets, want 3", len(bk))
	}
	for i, want := range []uint64{5, 10, 5} {
		if bk[i].LockWait != want {
			t.Errorf("bucket %d: LockWait %d, want %d", i, bk[i].LockWait, want)
		}
	}
	// The wait was consumed: a fresh acquire adds nothing more.
	iv.Emit(Event{Kind: KindLockAcquire, Cycle: 29, PE: 2})
	if iv.Buckets()[2].LockWait != 5 {
		t.Error("acquire without a pending wait changed LockWait")
	}
}

func TestIntervalsCSV(t *testing.T) {
	iv := NewIntervals(10)
	iv.Emit(Event{Kind: KindRef, Cycle: 3})
	iv.Emit(Event{Kind: KindMiss, Cycle: 3})
	iv.Emit(Event{Kind: KindBusEnd, Cycle: 8, N: 4})
	var sb strings.Builder
	if err := iv.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "start,end,refs,misses,bus_cycles,lock_wait,invals,steals\n" +
		"0,10,1,1,4,0,0,0\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
	if got := iv.Table().String(); !strings.Contains(got, "0-10") {
		t.Errorf("Table missing the 0-10 window:\n%s", got)
	}
}
