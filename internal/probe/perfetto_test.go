package probe

import (
	"bytes"
	"encoding/json"
	"testing"
)

// feedPerfetto drives one exporter with a representative event mix and
// returns the finished JSON.
func feedPerfetto(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	p := NewPerfetto(&buf, 2)
	events := []Event{
		{Kind: KindPEStatus, Cycle: 0, PE: 0, A: StatusRunning},
		{Kind: KindPEStatus, Cycle: 0, PE: 1, A: StatusIdle},
		{Kind: KindBusEnd, Cycle: 14, PE: 0, Addr: 0x1000, A: 0, B: 0, N: 12, Arg: 0x2},
		{Kind: KindLockSpin, Cycle: 20, PE: 1, Addr: 0x1004},
		{Kind: KindLockConflict, Cycle: 21, PE: 1, Addr: 0x1004},
		{Kind: KindLockAcquire, Cycle: 30, PE: 1, Addr: 0x1004},
		{Kind: KindLockRelease, Cycle: 40, PE: 1, Addr: 0x1004, Arg: 1},
		{Kind: KindCacheState, Cycle: 44, PE: 0, Addr: 0x1000, A: 4, B: 0, Arg: ReasonSnoopInval},
		{Kind: KindCacheState, Cycle: 44, PE: 0, Addr: 0x1000, A: 0, B: 1, Arg: ReasonFetch}, // not rendered
		{Kind: KindGoalSteal, Cycle: 50, PE: 1, Arg: 0},
		{Kind: KindGoalSuspend, Cycle: 55, PE: 0},
		{Kind: KindGoalResume, Cycle: 60, PE: 0, Addr: 0x2000},
		{Kind: KindPEStatus, Cycle: 70, PE: 0, A: StatusHalted},
		{Kind: KindBusEnd, Cycle: 90, PE: 1, Addr: 0x3000, A: CmdNone, B: 7, N: 2},
	}
	for _, e := range events {
		p.Emit(e)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestPerfettoValidJSONAndSchema(t *testing.T) {
	out := feedPerfetto(t)
	if !json.Valid(out) {
		t.Fatalf("export is not valid JSON:\n%s", out)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	var slices, instants int
	for _, ev := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[key]; !ok && ev["ph"] != "M" {
				t.Errorf("event %v missing %q", ev, key)
			}
		}
		switch ev["ph"] {
		case "X":
			slices++
			if _, ok := ev["dur"]; !ok {
				t.Errorf("complete event %v missing dur", ev)
			}
		case "i":
			instants++
		}
	}
	// 2 bus txns on 2 tracks each, plus PE status slices.
	if slices < 5 {
		t.Errorf("%d slices, want at least 5", slices)
	}
	// 4 lock events + 1 invalidation + 3 scheduler instants.
	if instants != 8 {
		t.Errorf("%d instants, want 8", instants)
	}
}

func TestPerfettoBusSliceSpan(t *testing.T) {
	out := feedPerfetto(t)
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   uint64 `json:"ts"`
			Dur  uint64 `json:"dur"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatal(err)
	}
	// The first bus transaction (command F, pattern swapin-mem, 12 cycles
	// ending at 14) must appear on the bus track (tid 2) and the
	// requester's track (tid 0), spanning [2, 14).
	var onBus, onPE bool
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "F swapin-mem" {
			if ev.Ts != 2 || ev.Dur != 12 {
				t.Errorf("bus slice spans ts=%d dur=%d, want 2/12", ev.Ts, ev.Dur)
			}
			switch ev.Tid {
			case 2:
				onBus = true
			case 0:
				onPE = true
			}
		}
	}
	if !onBus || !onPE {
		t.Errorf("bus txn on bus track: %v, on requester track: %v — want both", onBus, onPE)
	}
	// The command-less word write renders as the bare pattern name.
	var wordWrite bool
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "word-write" {
			wordWrite = true
		}
	}
	if !wordWrite {
		t.Error("CmdNone transaction should be named by its pattern alone")
	}
}

func TestPerfettoDeterministicBytes(t *testing.T) {
	a, b := feedPerfetto(t), feedPerfetto(t)
	if !bytes.Equal(a, b) {
		t.Error("identical event streams produced different exports")
	}
}

func TestPerfettoStatusSlices(t *testing.T) {
	out := feedPerfetto(t)
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
			Ts   uint64 `json:"ts"`
			Dur  uint64 `json:"dur"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatal(err)
	}
	type slice struct {
		name    string
		ts, dur uint64
	}
	var pe0 []slice
	for _, ev := range doc.TraceEvents {
		if ev.Cat == "status" && ev.Tid == 0 {
			pe0 = append(pe0, slice{ev.Name, ev.Ts, ev.Dur})
		}
	}
	// PE 0: running [0,70) then halted [70,90) closed by Close at the
	// last seen cycle.
	want := []slice{{"running", 0, 70}, {"halted", 70, 20}}
	if len(pe0) != len(want) {
		t.Fatalf("PE 0 status slices = %+v, want %+v", pe0, want)
	}
	for i := range want {
		if pe0[i] != want[i] {
			t.Errorf("slice %d = %+v, want %+v", i, pe0[i], want[i])
		}
	}
}
