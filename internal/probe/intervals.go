package probe

import (
	"fmt"
	"io"

	"pimcache/internal/stats"
)

// Interval aggregates activity inside one probe-clock window.
type Interval struct {
	// BusCycles is how many of the window's cycles the bus was busy;
	// transactions spanning a boundary are split proportionally.
	BusCycles uint64
	// Refs counts memory references issued; Lookups excludes U
	// (unlock), which touches only the lock directory.
	Refs, Lookups uint64
	// Misses counts cache misses (block-directory lookups that failed).
	Misses uint64
	// LockWait is cycles PEs spent busy-waiting between a lock denial
	// (LH) and the eventual acquisition, split across windows.
	LockWait uint64
	// Invals counts cache blocks invalidated by remote activity.
	Invals uint64
	// Steals counts goals received from other PEs (live runs only).
	Steals uint64
}

// Intervals buckets probe events into fixed-width windows of the
// simulated clock, yielding bus utilization, miss ratio and lock-wait
// time per window — the temporal detail the end-of-run aggregates
// collapse. Render with Table or WriteCSV after the run.
type Intervals struct {
	width   uint64
	buckets []Interval
	// waitSince tracks, per PE, the cycle its current lock wait began
	// (set on the first denial, cleared on acquisition).
	waitSince map[int16]uint64
}

// NewIntervals collects metrics in windows of width probe-clock
// cycles. Width must be positive.
func NewIntervals(width uint64) *Intervals {
	if width == 0 {
		panic("probe: interval width must be positive")
	}
	return &Intervals{width: width, waitSince: make(map[int16]uint64)}
}

// Width returns the window width in cycles.
func (iv *Intervals) Width() uint64 { return iv.width }

// Buckets returns the collected windows; index i covers cycles
// [i*Width, (i+1)*Width).
func (iv *Intervals) Buckets() []Interval { return iv.buckets }

func (iv *Intervals) bucket(cycle uint64) *Interval {
	i := int(cycle / iv.width)
	for len(iv.buckets) <= i {
		iv.buckets = append(iv.buckets, Interval{})
	}
	return &iv.buckets[i]
}

// spread adds cycles covering [from, to) to per-window counters
// selected by pick, splitting across boundaries.
func (iv *Intervals) spread(from, to uint64, pick func(*Interval) *uint64) {
	for from < to {
		end := (from/iv.width + 1) * iv.width
		if end > to {
			end = to
		}
		*pick(iv.bucket(from)) += end - from
		from = end
	}
}

// Emit implements Sink.
func (iv *Intervals) Emit(e Event) {
	switch e.Kind {
	case KindRef:
		b := iv.bucket(e.Cycle)
		b.Refs++
		if e.A != OpU {
			b.Lookups++
		}
	case KindMiss:
		iv.bucket(e.Cycle).Misses++
	case KindBusEnd:
		iv.spread(e.Cycle-uint64(e.N), e.Cycle, func(b *Interval) *uint64 { return &b.BusCycles })
	case KindLockSpin:
		// Only the cache-side spin event starts a wait window. The bus's
		// KindLockConflict also fires for plain R/W fetches that draw LH,
		// but those retry immediately (FetchForced) without ever
		// acquiring a lock — counting them opened a window that stayed
		// open until the PE's next unrelated KindLockAcquire, charging
		// arbitrary spans of normal execution as lock-wait time.
		if _, pending := iv.waitSince[e.PE]; !pending {
			iv.waitSince[e.PE] = e.Cycle
		}
	case KindLockAcquire:
		if since, pending := iv.waitSince[e.PE]; pending {
			iv.spread(since, e.Cycle, func(b *Interval) *uint64 { return &b.LockWait })
			delete(iv.waitSince, e.PE)
		}
	case KindCacheState:
		if e.Arg == ReasonSnoopInval {
			iv.bucket(e.Cycle).Invals++
		}
	case KindGoalSteal:
		iv.bucket(e.Cycle).Steals++
	}
}

// Table renders the windows as an aligned text table.
func (iv *Intervals) Table() *stats.Table {
	t := &stats.Table{
		Title:   fmt.Sprintf("interval metrics (%d cycles per interval)", iv.width),
		Columns: []string{"cycles", "refs", "miss%", "bus-util%", "lock-wait", "invals", "steals"},
	}
	for i, b := range iv.buckets {
		missPct := 0.0
		if b.Lookups > 0 {
			missPct = 100 * float64(b.Misses) / float64(b.Lookups)
		}
		t.AddRow(fmt.Sprintf("%d-%d", uint64(i)*iv.width, uint64(i+1)*iv.width),
			fmt.Sprintf("%d", b.Refs),
			fmt.Sprintf("%.2f", missPct),
			fmt.Sprintf("%.2f", 100*float64(b.BusCycles)/float64(iv.width)),
			fmt.Sprintf("%d", b.LockWait),
			fmt.Sprintf("%d", b.Invals),
			fmt.Sprintf("%d", b.Steals),
		)
	}
	return t
}

// WriteCSV writes the windows as CSV with a header row, for external
// plotting.
func (iv *Intervals) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "start,end,refs,misses,bus_cycles,lock_wait,invals,steals\n"); err != nil {
		return err
	}
	for i, b := range iv.buckets {
		_, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d\n",
			uint64(i)*iv.width, uint64(i+1)*iv.width,
			b.Refs, b.Misses, b.BusCycles, b.LockWait, b.Invals, b.Steals)
		if err != nil {
			return err
		}
	}
	return nil
}
