package probe

import (
	"bufio"
	"fmt"
	"io"
)

// Perfetto streams probe events into the Chrome trace-event JSON
// format, which ui.perfetto.dev (and chrome://tracing) open directly.
// The export lays out one track per PE (tid 0..PEs-1) plus a bus
// track (tid PEs) inside a single process, on the simulated probe
// clock (1 "microsecond" = 1 cycle):
//
//   - bus transactions become complete ("X") slices on the bus track
//     and, mirrored, on the requester's track, spanning the cycles
//     the transaction occupied;
//   - lock activity, goal scheduling and remote invalidations become
//     instant ("i") markers on the owning PE's track;
//   - PE scheduler status (live runs only) becomes back-to-back
//     slices labelled with the status name.
//
// Output is strictly deterministic: event order follows emit order,
// every number is formatted identically, and no timestamps or
// randomness from the host leak in — so identical runs produce
// byte-identical files. Close flushes open status slices and the
// closing bracket; its error must be checked.
type Perfetto struct {
	w     *bufio.Writer
	err   error
	pes   int
	last  uint64  // highest cycle seen; closes dangling status slices
	stat  []uint8 // current scheduler status per PE
	since []uint64
	known []bool
}

// NewPerfetto starts a trace-event export for a machine with pes
// processors, writing the JSON preamble and track metadata
// immediately.
func NewPerfetto(w io.Writer, pes int) *Perfetto {
	p := &Perfetto{
		w:     bufio.NewWriter(w),
		pes:   pes,
		stat:  make([]uint8, pes),
		since: make([]uint64, pes),
		known: make([]bool, pes),
	}
	p.printf("{\"traceEvents\":[\n")
	p.printf("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"pimcache\"}}")
	for i := 0; i < pes; i++ {
		p.printf(",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"PE %d\"}}", i, i)
	}
	p.printf(",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"bus\"}}", pes)
	return p
}

func (p *Perfetto) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// slice writes a complete event on a track.
func (p *Perfetto) slice(name, cat string, tid int, ts, dur uint64, args string) {
	p.printf(",\n{\"name\":%q,\"cat\":%q,\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":0,\"tid\":%d%s}",
		name, cat, ts, dur, tid, args)
}

// instant writes a thread-scoped instant event on a track.
func (p *Perfetto) instant(name, cat string, tid int, ts uint64, args string) {
	p.printf(",\n{\"name\":%q,\"cat\":%q,\"ph\":\"i\",\"ts\":%d,\"pid\":0,\"tid\":%d,\"s\":\"t\"%s}",
		name, cat, ts, tid, args)
}

// Emit implements Sink.
func (p *Perfetto) Emit(e Event) {
	if e.Cycle > p.last {
		p.last = e.Cycle
	}
	switch e.Kind {
	case KindBusEnd:
		name := PatternName(e.B)
		if e.A != CmdNone {
			name = CmdName(e.A) + " " + name
		}
		args := fmt.Sprintf(",\"args\":{\"addr\":\"0x%x\",\"holders\":\"0x%x\",\"pe\":%d}", uint32(e.Addr), e.Arg, e.PE)
		ts := e.Cycle - uint64(e.N)
		p.slice(name, "bus", p.pes, ts, uint64(e.N), args)
		if int(e.PE) >= 0 && int(e.PE) < p.pes {
			p.slice(name, "bus", int(e.PE), ts, uint64(e.N), args)
		}
	case KindLockAcquire:
		p.instant("lock-acquire", "lock", int(e.PE), e.Cycle, p.addrArgs(e))
	case KindLockRelease:
		name := "lock-release"
		if e.Arg != 0 {
			name = "lock-release+wake"
		}
		p.instant(name, "lock", int(e.PE), e.Cycle, p.addrArgs(e))
	case KindLockSpin:
		p.instant("lock-spin", "lock", int(e.PE), e.Cycle, p.addrArgs(e))
	case KindLockConflict:
		p.instant("lock-conflict", "lock", int(e.PE), e.Cycle, p.addrArgs(e))
	case KindCacheState:
		// Only remote invalidations are rendered; local transitions are
		// too dense for a timeline and live in HotSpots/Intervals.
		if e.Arg == ReasonSnoopInval {
			args := fmt.Sprintf(",\"args\":{\"addr\":\"0x%x\",\"from\":%q}", uint32(e.Addr), StateName(e.A))
			p.instant("invalidated", "coherence", int(e.PE), e.Cycle, args)
		}
	case KindGoalSteal:
		args := fmt.Sprintf(",\"args\":{\"victim\":%d}", e.Arg)
		p.instant("goal-steal", "sched", int(e.PE), e.Cycle, args)
	case KindGoalSuspend:
		p.instant("goal-suspend", "sched", int(e.PE), e.Cycle, "")
	case KindGoalResume:
		p.instant("goal-resume", "sched", int(e.PE), e.Cycle, p.addrArgs(e))
	case KindPEStatus:
		pe := int(e.PE)
		if pe < 0 || pe >= p.pes {
			return
		}
		p.closeStatus(pe, e.Cycle)
		p.stat[pe], p.since[pe], p.known[pe] = e.A, e.Cycle, true
	}
}

func (p *Perfetto) addrArgs(e Event) string {
	return fmt.Sprintf(",\"args\":{\"addr\":\"0x%x\"}", uint32(e.Addr))
}

// closeStatus emits the slice for pe's current status ending at now.
func (p *Perfetto) closeStatus(pe int, now uint64) {
	if !p.known[pe] || now <= p.since[pe] {
		return
	}
	p.slice(StatusName(p.stat[pe]), "status", pe, p.since[pe], now-p.since[pe], "")
}

// Close flushes open status slices and the JSON trailer. The export
// is invalid until Close returns nil.
func (p *Perfetto) Close() error {
	for pe := 0; pe < p.pes; pe++ {
		p.closeStatus(pe, p.last)
	}
	p.printf("\n]}\n")
	if p.err != nil {
		return p.err
	}
	return p.w.Flush()
}
