package probe

import "testing"

func TestKindNamesAndScheduler(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); k < NumKinds; k++ {
		name := k.String()
		if name == "" || seen[name] {
			t.Errorf("kind %d: bad or duplicate name %q", k, name)
		}
		seen[name] = true
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Errorf("out-of-range kind name = %q", got)
	}
	wantSched := map[Kind]bool{
		KindPEStatus: true, KindGoalSteal: true,
		KindGoalSuspend: true, KindGoalResume: true,
	}
	for k := Kind(0); k < NumKinds; k++ {
		if k.Scheduler() != wantSched[k] {
			t.Errorf("%v.Scheduler() = %v, want %v", k, k.Scheduler(), wantSched[k])
		}
	}
}

func TestNameHelpers(t *testing.T) {
	if got := CmdName(CmdNone); got != "-" {
		t.Errorf("CmdName(CmdNone) = %q, want \"-\"", got)
	}
	if got := CmdName(0); got != "F" {
		t.Errorf("CmdName(0) = %q, want F", got)
	}
	if got := PatternName(100); got != "pattern(100)" {
		t.Errorf("PatternName(100) = %q", got)
	}
	if got := ReasonName(ReasonSnoopInval); got != "snoop-inval" {
		t.Errorf("ReasonName(ReasonSnoopInval) = %q", got)
	}
	if got := ReasonName(ReasonAdaptiveDrop); got != "adaptive-drop" {
		t.Errorf("ReasonName(ReasonAdaptiveDrop) = %q", got)
	}
	// The write-update and MOESI additions must render symbolically even
	// from the fallback tables (a decoder that never imports bus or
	// cache still sees these bytes in saved event streams).
	if got := CmdName(uint8(len(cmdNames) - 1)); got != "UP" {
		t.Errorf("last fallback command = %q, want UP", got)
	}
	if got := PatternName(uint8(len(patternNames) - 1)); got != "update" {
		t.Errorf("last fallback pattern = %q, want update", got)
	}
	if got := StateName(uint8(len(stateNames) - 1)); got != "O" {
		t.Errorf("last fallback state = %q, want O", got)
	}
	if got := ReasonName(99); got != "reason(99)" {
		t.Errorf("ReasonName(99) = %q", got)
	}
	if got := StatusName(StatusSpinning); got != "spinning" {
		t.Errorf("StatusName(StatusSpinning) = %q", got)
	}
	if got := StatusName(42); got != "status(42)" {
		t.Errorf("StatusName(42) = %q", got)
	}
}

func TestBufferMemoryEvents(t *testing.T) {
	b := &Buffer{}
	b.Emit(Event{Kind: KindRef, Cycle: 1})
	b.Emit(Event{Kind: KindGoalSteal, Cycle: 2})
	b.Emit(Event{Kind: KindBusEnd, Cycle: 3})
	b.Emit(Event{Kind: KindPEStatus, Cycle: 4})
	if len(b.Events) != 4 {
		t.Fatalf("Buffer holds %d events, want 4", len(b.Events))
	}
	mem := b.MemoryEvents()
	if len(mem) != 2 || mem[0].Kind != KindRef || mem[1].Kind != KindBusEnd {
		t.Errorf("MemoryEvents() = %v, want the ref and bus-end only", mem)
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil {
		t.Error("Multi() should be nil")
	}
	if Multi(nil, nil) != nil {
		t.Error("Multi(nil, nil) should be nil")
	}
	b := &Buffer{}
	if got := Multi(nil, b, nil); got != Sink(b) {
		t.Error("Multi with one effective sink should return it directly")
	}
	b2 := &Buffer{}
	m := Multi(b, b2)
	ev := Event{Kind: KindMiss, Cycle: 7, PE: 3}
	m.Emit(ev)
	if len(b.Events) != 1 || len(b2.Events) != 1 || b.Events[0] != ev || b2.Events[0] != ev {
		t.Error("Multi did not fan the event out to both sinks")
	}
}

func TestMemoryOnly(t *testing.T) {
	if MemoryOnly(nil) != nil {
		t.Error("MemoryOnly(nil) should be nil")
	}
	b := &Buffer{}
	s := MemoryOnly(b)
	s.Emit(Event{Kind: KindGoalSuspend})
	s.Emit(Event{Kind: KindLockSpin})
	s.Emit(Event{Kind: KindPEStatus})
	if len(b.Events) != 1 || b.Events[0].Kind != KindLockSpin {
		t.Errorf("MemoryOnly passed %v, want just the lock-spin", b.Events)
	}
}
