// Package check is the coherence model checker and differential fuzzer
// for the simulated memory system (bus + caches + lock directories).
//
// It closes the gap the example-based protocol tests leave open: those
// tests verify transitions the author thought of, while check verifies
// that *no reachable interleaving* of the software memory operations
// (R/W/DW/ER/RP/RI/LR/UW/U across 1-4 PEs, under tiny direct-mapped
// caches that force constant eviction churn) can violate the protocol.
// Three layers of oracle run on every generated schedule:
//
//  1. A flat sequential reference memory model. The machine's
//     round-robin scheduling is deterministic, so the interleaving of
//     operations is a sequence; applying that same sequence to a flat
//     word array plus a lock map predicts every read value, every lock
//     grant/denial, and the exact memory image at quiescence
//     (post-flush). Any deviation is a coherence bug.
//  2. Per-transition invariant oracles, checked after every single
//     operation: at most one dirty owner per block; an exclusive (EC/EM)
//     copy implies no other copy anywhere; all valid copies of a block
//     hold identical data; with no dirty owner every copy equals shared
//     memory; the bus snoop-filter holder masks equal the ground-truth
//     holder sets; per-PE lock-filter counts equal the lock directories;
//     at most one PE holds any word lock (and it is the PE the model
//     says); no remote cache holds a locked word's block exclusively;
//     and the bus cycle total equals the sum of per-transaction spans
//     reported by the probe layer.
//  3. Differential runs: the same schedule is executed under every
//     protocol x optimization configuration (the optimized commands are
//     value-preserving under the software contracts the generator
//     respects, so all configurations must agree with the model), and
//     the filtered and unfiltered bus must produce bit-identical
//     statistics.
//
// Inputs are raw byte strings (fuzz-friendly); Decode turns any bytes
// into a *legal* schedule, enforcing the software contracts the paper
// assumes (DW only on fresh blocks, ER/RP purges only on read-only
// data, address-ordered lock acquisition so schedules cannot deadlock).
// Shrink minimizes a failing input to a small replayable repro, stored
// in the textual format of WriteRepro under testdata/repro/.
package check

import (
	"fmt"
	"strings"

	"pimcache/internal/cache"
	"pimcache/internal/kl1/word"
	"pimcache/internal/mem"
)

// Geometry of the checked system: caches are kept tiny and direct-mapped
// so that every few operations evict something, and the address pools
// are a few times larger than a cache so blocks constantly migrate
// between caches and memory.
const (
	// BlockWords is the cache block size used by every checked config.
	BlockWords = 4
	// CacheWords gives 8 one-way sets: a 40-block working set over 8
	// frames per PE maximizes conflict-eviction churn.
	CacheWords = 32
	// MaxPEs bounds the generated schedules.
	MaxPEs = 4

	heapBlocks   = 20             // total heap blocks the checker watches
	heapRWBlocks = 8              // shared read/write/lock portion of the heap
	dwPerPE      = 2              // PE-private direct-write blocks (heap blocks 8..15)
	recycleBase  = 16             // per-PE free-list recycle blocks (16..19): see recycle
	goalROBlocks = 8              // initialized, never written: ER/RP roam freely
	goalRWBlocks = 8              // written: ER restricted to non-last words
	commBlocks   = 8              // read/write/RI arena
	lockWords    = 2 * BlockWords // lock pool: the first two heap blocks
	maxHeldLocks = 2              // per PE, well under LockEntries=4
)

// Layout returns the tiny memory layout every checked machine uses.
func Layout() mem.Layout {
	return mem.Layout{InstWords: 64, HeapWords: 256, GoalWords: 256,
		SuspWords: 64, CommWords: 256}
}

// Op is one software memory operation in a schedule.
type Op struct {
	PE   int
	Kind cache.Op
	Addr word.Addr
	Val  int64 // stored payload for W/UW/DW (ignored for reads)
}

func (o Op) String() string {
	if o.Kind.IsWrite() {
		return fmt.Sprintf("PE%d %-2s %#x <- %d", o.PE, o.Kind, o.Addr, o.Val)
	}
	return fmt.Sprintf("PE%d %-2s %#x", o.PE, o.Kind, o.Addr)
}

// Seq is a decoded, contract-legal schedule.
type Seq struct {
	PEs int
	Ops []Op
}

// String renders the schedule one op per line.
func (s *Seq) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d PEs, %d ops\n", s.PEs, len(s.Ops))
	for i, o := range s.Ops {
		fmt.Fprintf(&b, "%4d: %s\n", i, o)
	}
	return b.String()
}

// pools derives the arena base addresses from the layout.
type pools struct {
	heap, goalRO, goalRW, comm word.Addr
}

func arenas() pools {
	b := Layout().Bounds()
	return pools{
		heap:   b.HeapBase,
		goalRO: b.GoalBase,
		goalRW: b.GoalBase + goalROBlocks*BlockWords,
		comm:   b.CommBase,
	}
}

// PoolBlocks lists every block base the generator can touch; the
// invariant oracles scan exactly this set.
func PoolBlocks() []word.Addr {
	p := arenas()
	var out []word.Addr
	add := func(base word.Addr, n int) {
		for i := 0; i < n; i++ {
			out = append(out, base+word.Addr(i*BlockWords))
		}
	}
	add(p.heap, heapBlocks)
	add(p.goalRO, goalROBlocks)
	add(p.goalRW, goalRWBlocks)
	add(p.comm, commBlocks)
	return out
}

// lockPool lists the word addresses LR may target.
func lockPool() []word.Addr {
	p := arenas()
	out := make([]word.Addr, lockWords)
	for i := range out {
		out[i] = p.heap + word.Addr(i)
	}
	return out
}

// decoder state enforcing the software contracts while translating raw
// wish bytes into legal operations.
type decoder struct {
	seq     *Seq
	pool    pools
	touched map[word.Addr]bool // block base -> any op has referenced it
	held    [][]word.Addr      // per PE, ascending lock addresses
}

// Decode turns arbitrary bytes into a legal schedule, or nil when the
// input is too short to contain a header and at least one op group.
// The first byte selects the PE count; each following 3-byte group
// (selector, slot, value) is decoded into at most one operation. The
// mapping is total: every byte string decodes deterministically, and
// contract-violating wishes degrade to plain reads or writes, so fuzzers
// can mutate freely. Trailing lock releases are appended so schedules
// end at quiescence with no lock held.
func Decode(data []byte) *Seq {
	if len(data) < 4 {
		return nil
	}
	d := &decoder{
		seq:     &Seq{PEs: 1 + int(data[0]&3)},
		pool:    arenas(),
		touched: make(map[word.Addr]bool),
		held:    make([][]word.Addr, 4),
	}
	for g := 1; g+2 < len(data); g += 3 {
		d.group(data[g], data[g+1], data[g+2])
	}
	// Release every lock still held so the schedule quiesces; alternate
	// UW (write-and-unlock) and U (plain unlock) deterministically.
	for pe := 0; pe < d.seq.PEs; pe++ {
		for len(d.held[pe]) > 0 {
			a := d.held[pe][len(d.held[pe])-1]
			if a%2 == 1 {
				d.emit(pe, cache.OpUW, a, int64(pe)*1000+999)
			} else {
				d.emit(pe, cache.OpU, a, 0)
			}
		}
	}
	if len(d.seq.Ops) == 0 {
		return nil
	}
	return d.seq
}

func (d *decoder) emit(pe int, k cache.Op, a word.Addr, v int64) {
	d.touched[a&^word.Addr(BlockWords-1)] = true
	switch k {
	case cache.OpLR:
		d.held[pe] = append(d.held[pe], a)
	case cache.OpUW, cache.OpU:
		for i, h := range d.held[pe] {
			if h == a {
				d.held[pe] = append(d.held[pe][:i], d.held[pe][i+1:]...)
				break
			}
		}
	}
	d.seq.Ops = append(d.seq.Ops, Op{PE: pe, Kind: k, Addr: a, Val: v})
}

// blockAddr picks word slot within the n-block arena at base.
func blockAddr(base word.Addr, nBlocks int, slot byte) word.Addr {
	return base + word.Addr(int(slot)%(nBlocks*BlockWords))
}

// group decodes one 3-byte wish. sel picks the op class and PE, slot the
// address, val the written payload.
func (d *decoder) group(sel, slot, val byte) {
	pe := int(sel>>4) % d.seq.PEs
	v := int64(pe)*1000 + int64(val)
	switch sel % 16 {
	case 0, 1: // R anywhere
		d.emit(pe, cache.OpR, d.anyAddr(slot), 0)
	case 2, 3: // W in a writable arena
		d.emit(pe, cache.OpW, d.writableAddr(slot), v)
	case 4, 5, 13: // LR on the lock pool (address-ordered)
		d.lockRead(pe, slot)
	case 6, 15: // UW: release the newest held lock, writing
		d.release(pe, slot, true, v)
	case 7: // U: release without writing
		d.release(pe, slot, false, 0)
	case 8: // DW: fresh-block allocation, or free-list record recycling
		if slot&0x80 != 0 {
			d.recycle(pe, slot, v)
		} else {
			d.directWrite(pe, slot, v)
		}
	case 9: // ER: free in goalRO, non-last-word in goalRW
		if slot%2 == 0 {
			d.emit(pe, cache.OpER, blockAddr(d.pool.goalRO, goalROBlocks, slot), 0)
		} else {
			a := d.pool.goalRW + word.Addr(int(slot)%(goalRWBlocks*BlockWords))
			if a&(BlockWords-1) == BlockWords-1 {
				a-- // never the last word: its purge would drop live dirty data
			}
			d.emit(pe, cache.OpER, a, 0)
		}
	case 10: // RP only on the read-only arena (its purge discards dirty data)
		d.emit(pe, cache.OpRP, blockAddr(d.pool.goalRO, goalROBlocks, slot), 0)
	case 11: // RI in the communication arena
		d.emit(pe, cache.OpRI, blockAddr(d.pool.comm, commBlocks, slot), 0)
	case 12: // W concentrated on the lock-pool blocks: drives the SM/EM
		// grant decision against concurrently held locks
		d.emit(pe, cache.OpW, d.pool.heap+word.Addr(int(slot)%lockWords), v)
	case 14: // R on the lock-pool blocks: keeps shared copies around
		d.emit(pe, cache.OpR, d.pool.heap+word.Addr(int(slot)%lockWords), 0)
	}
}

// anyAddr spreads plain reads over every shared arena (the PE-private
// direct-write blocks stay private: see directWrite).
func (d *decoder) anyAddr(slot byte) word.Addr {
	switch slot % 4 {
	case 0:
		return blockAddr(d.pool.heap, heapRWBlocks, slot/4)
	case 1:
		return blockAddr(d.pool.goalRO, goalROBlocks, slot/4)
	case 2:
		return blockAddr(d.pool.goalRW, goalRWBlocks, slot/4)
	default:
		return blockAddr(d.pool.comm, commBlocks, slot/4)
	}
}

// writableAddr spreads plain writes over the writable arenas (goalRO is
// read-only by contract: ER/RP purge there).
func (d *decoder) writableAddr(slot byte) word.Addr {
	switch slot % 3 {
	case 0:
		return blockAddr(d.pool.heap, heapRWBlocks, slot/3)
	case 1:
		return blockAddr(d.pool.goalRW, goalRWBlocks, slot/3)
	default:
		return blockAddr(d.pool.comm, commBlocks, slot/3)
	}
}

// lockRead emits an LR respecting the deadlock-freedom discipline: a PE
// only ever waits for an address greater than every lock it holds, and
// never re-locks an address it already holds. Illegal wishes degrade to
// a plain read of the same word.
func (d *decoder) lockRead(pe int, slot byte) {
	a := d.pool.heap + word.Addr(int(slot)%lockWords)
	held := d.held[pe]
	if len(held) >= maxHeldLocks || (len(held) > 0 && a <= held[len(held)-1]) {
		d.emit(pe, cache.OpR, a, 0)
		return
	}
	d.emit(pe, cache.OpLR, a, 0)
}

// release frees the newest lock this PE holds (release order does not
// affect deadlock freedom; acquisition order does). With nothing held
// the wish degrades to a read.
func (d *decoder) release(pe int, slot byte, write bool, v int64) {
	held := d.held[pe]
	if len(held) == 0 {
		d.emit(pe, cache.OpR, d.pool.heap+word.Addr(int(slot)%lockWords), 0)
		return
	}
	a := held[len(held)-1]
	if write {
		d.emit(pe, cache.OpUW, a, v)
	} else {
		d.emit(pe, cache.OpU, a, 0)
	}
}

// directWrite emits a DW honouring the software contract ("fresh memory
// no remote cache can hold"). DW candidate blocks are PE-private — heap
// blocks 8..15, two per PE, touched by no other selector — because the
// round-robin scheduler reorders ops across PEs: a shared fresh block
// could see another PE's access execute before the DW that decode order
// placed first. Within one PE program order is preserved, so decode-time
// first-touch equals execution-time first-touch. The applied form is
// emitted only on the boundary word of a block this PE never referenced;
// later wishes exercise the degraded mid-block and already-resident
// forms (both plain fetch-on-write, value-equal on zero memory).
func (d *decoder) directWrite(pe int, slot byte, v int64) {
	blk := heapRWBlocks + pe*dwPerPE + int(slot/2)%dwPerPE
	base := d.pool.heap + word.Addr(blk*BlockWords)
	if d.touched[base] {
		d.emit(pe, cache.OpW, base+word.Addr(slot%BlockWords), v)
		return
	}
	if slot%4 == 3 {
		// Mid-block DW on a fresh block: degrades to fetch-on-write.
		d.emit(pe, cache.OpDW, base+1+word.Addr(int(slot)%(BlockWords-1)), v)
		return
	}
	d.emit(pe, cache.OpDW, base, v)
}

// recycle emits the real runtime's free-list record-recycling pattern
// (mem.FreeList): a remote PE caches a record block, the owner rewrites
// the record, loses its own copy to a same-set conflict eviction, and
// re-creates the record with an applied DW. A guard lock serializes the
// two sections, so no remote access can land between the owner's store
// and its DW — the one interleaving the DW software contract forbids —
// while the remote copy itself legally survives into the DW under the
// write-update protocols, whose stores refresh remote copies instead of
// killing them. That surviving copy forces directWrite's update-protocol
// invalidate; Faults.SkipDWUpdateInval suppresses it and must be caught
// here (this generator gap is how the original live-machine bug slipped
// past the matrix). The owner rewrites every word after the DW because
// the flat model does not see the applied DW's zero-fill — the same
// "whole record written before use" contract real software honours. The
// wish degrades to a plain read when either PE already holds a lock:
// each section must hold the guard alone, which keeps schedules
// deadlock-free (a single-lock holder never blocks, so every wait chain
// terminates).
func (d *decoder) recycle(pe int, slot byte, v int64) {
	reader := (pe + 1) % d.seq.PEs
	if reader == pe || len(d.held[pe]) > 0 || len(d.held[reader]) > 0 {
		d.emit(pe, cache.OpR, d.anyAddr(slot), 0)
		return
	}
	guard := d.pool.heap + word.Addr(lockWords-1)
	base := d.pool.heap + word.Addr((recycleBase+pe)*BlockWords)
	// A goalRO block in base's cache set: reading it evicts the owner's
	// copy (the checked cache is direct-mapped), standing in for the
	// capacity eviction between a record's free and its reallocation.
	sets := CacheWords / BlockWords
	diff := int(base/BlockWords) - int(d.pool.goalRO/BlockWords)
	conflict := d.pool.goalRO + word.Addr((((diff%sets)+sets)%sets)*BlockWords)
	off := word.Addr(slot % BlockWords)

	d.emit(reader, cache.OpLR, guard, 0)
	d.emit(reader, cache.OpR, base+off, 0)
	d.emit(reader, cache.OpU, guard, 0)

	d.emit(pe, cache.OpLR, guard, 0)
	d.emit(pe, cache.OpW, base+off, v)
	d.emit(pe, cache.OpR, conflict, 0)
	d.emit(pe, cache.OpDW, base, v+1)
	for i := 1; i < BlockWords; i++ {
		d.emit(pe, cache.OpW, base+word.Addr(i), v+1+int64(i))
	}
	d.emit(pe, cache.OpU, guard, 0)
}
