package check

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pimcache/internal/cache"
)

// randomInput produces one raw generator input of n op groups.
func randomInput(r *rand.Rand, n int) []byte {
	data := make([]byte, 1+3*n)
	r.Read(data)
	return data
}

// TestDecodeDeterministic pins the decoder's total-function property:
// same bytes, same schedule; every schedule is contract-legal (lock
// discipline, DW first-touch) by construction.
func TestDecodeDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		data := randomInput(r, 1+r.Intn(80))
		a, b := Decode(data), Decode(data)
		if a == nil {
			t.Fatalf("input %d: decode returned nil for %d bytes", i, len(data))
		}
		if a.String() != b.String() {
			t.Fatalf("input %d: decode not deterministic", i)
		}
		// Lock discipline: per-PE ascending acquisition, every lock
		// released, never more than maxHeldLocks held.
		held := map[int][]int{}
		for _, op := range a.Ops {
			switch op.Kind {
			case cache.OpLR:
				hs := held[op.PE]
				if len(hs) > 0 && int(op.Addr) <= hs[len(hs)-1] {
					t.Fatalf("input %d: PE%d locks %#x after %#x (not ascending)",
						i, op.PE, op.Addr, hs[len(hs)-1])
				}
				held[op.PE] = append(hs, int(op.Addr))
				if len(held[op.PE]) > maxHeldLocks {
					t.Fatalf("input %d: PE%d holds %d locks", i, op.PE, len(held[op.PE]))
				}
			case cache.OpUW, cache.OpU:
				hs := held[op.PE]
				found := false
				for j, h := range hs {
					if h == int(op.Addr) {
						held[op.PE] = append(hs[:j], hs[j+1:]...)
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("input %d: PE%d releases unheld %#x", i, op.PE, op.Addr)
				}
			}
		}
		for pe, hs := range held {
			if len(hs) != 0 {
				t.Fatalf("input %d: PE%d ends holding %d locks", i, pe, len(hs))
			}
		}
	}
}

// TestRandomSchedules is the deterministic property-test corpus: a
// seeded stream of generated schedules, each run under the full
// protocol/optimization/filter matrix against the flat model and the
// invariant oracles. Any failure prints a ready-to-commit repro.
func TestRandomSchedules(t *testing.T) {
	n := 400
	if testing.Short() {
		n = 40
	}
	r := rand.New(rand.NewSource(1989)) // the paper's year, for luck
	for i := 0; i < n; i++ {
		data := randomInput(r, 4+r.Intn(60))
		if f := Check(data); f != nil {
			shrunk := Shrink(data, func(d []byte) bool { return Check(d) != nil })
			t.Fatalf("schedule %d failed: %v\n%s", i, f,
				FormatRepro(shrunk, "", Check(shrunk).Error()))
		}
	}
}

// faultFlag maps a repro-file fault name to its cache.Faults knob.
func faultFlag(t *testing.T, name string) *bool {
	t.Helper()
	switch name {
	case "GrantEMOverRemoteLock":
		return &cache.Faults.GrantEMOverRemoteLock
	case "SkipSnoopInvalidate":
		return &cache.Faults.SkipSnoopInvalidate
	case "SkipFilterDrop":
		return &cache.Faults.SkipFilterDrop
	case "MOESIDropOwnedWriteBack":
		return &cache.Faults.MOESIDropOwnedWriteBack
	case "SkipSnoopUpdate":
		return &cache.Faults.SkipSnoopUpdate
	case "AdaptiveDropSkipFilter":
		return &cache.Faults.AdaptiveDropSkipFilter
	case "SkipDWUpdateInval":
		return &cache.Faults.SkipDWUpdateInval
	}
	t.Fatalf("unknown fault %q", name)
	return nil
}

// allFaults lists every fault-injection knob; TestMutationKill and the
// repro-corpus generator iterate it so a knob added to cache.Faults
// without a kill test here fails faultFlag's exhaustiveness at run time.
var allFaults = []string{
	"GrantEMOverRemoteLock", "SkipSnoopInvalidate", "SkipFilterDrop",
	"MOESIDropOwnedWriteBack", "SkipSnoopUpdate", "AdaptiveDropSkipFilter",
	"SkipDWUpdateInval",
}

// TestMutationKill is the checker's self-test: each seeded protocol
// mutation (a wrong exclusivity grant over a remote lock, a skipped
// snoop invalidation, a stale presence-filter entry, a dropped MOESI
// owned write-back, a lost update broadcast, a stale filter bit behind
// an adaptive self-invalidation) must be caught by the checker on a
// generated schedule, and the shrinker must reduce the catch to at most
// 20 operations. With the mutations off the same inputs must pass —
// proving the checker's alarms are the mutations, not noise.
func TestMutationKill(t *testing.T) {
	for _, name := range allFaults {
		t.Run(name, func(t *testing.T) {
			flag := faultFlag(t, name)
			*flag = true
			defer func() { *flag = false }()

			r := rand.New(rand.NewSource(42))
			var caught []byte
			for i := 0; i < 400 && caught == nil; i++ {
				data := randomInput(r, 8+r.Intn(60))
				if Check(data) != nil {
					caught = data
				}
			}
			if caught == nil {
				t.Fatalf("mutation %s survived 400 schedules", name)
			}
			shrunk := Shrink(caught, func(d []byte) bool { return Check(d) != nil })
			s := Decode(shrunk)
			f := Check(shrunk)
			if f == nil {
				t.Fatalf("shrunk input no longer fails")
			}
			t.Logf("%s killed by %d ops (from %d):\n%v", name, len(s.Ops),
				len(Decode(caught).Ops), f)
			if len(s.Ops) > 20 {
				t.Errorf("shrunk repro has %d ops, want <= 20:\n%s", len(s.Ops), s)
			}

			// The same input must pass with the mutation reverted: the
			// checker is detecting the seeded bug, not tripping on its
			// own contracts.
			*flag = false
			if f := Check(shrunk); f != nil {
				t.Errorf("shrunk repro fails even without the mutation: %v", f)
			}
			*flag = true
		})
	}
}

// TestGenerateReproCorpus regenerates testdata/repro when run with
// CHECK_GEN_REPROS=1: one shrunk repro per fault-injection knob, found
// by the same search TestMutationKill performs. Normal runs skip it;
// TestReproCorpus replays the generated files.
func TestGenerateReproCorpus(t *testing.T) {
	if os.Getenv("CHECK_GEN_REPROS") == "" {
		t.Skip("set CHECK_GEN_REPROS=1 to regenerate testdata/repro")
	}
	if err := os.MkdirAll(filepath.Join("testdata", "repro"), 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range allFaults {
		flag := faultFlag(t, name)
		*flag = true
		r := rand.New(rand.NewSource(42))
		var caught []byte
		for i := 0; i < 400 && caught == nil; i++ {
			data := randomInput(r, 8+r.Intn(60))
			if Check(data) != nil {
				caught = data
			}
		}
		if caught == nil {
			*flag = false
			t.Fatalf("mutation %s not caught", name)
		}
		shrunk := Shrink(caught, func(d []byte) bool { return Check(d) != nil })
		text := FormatRepro(shrunk, name, Check(shrunk).Error())
		*flag = false
		file := filepath.Join("testdata", "repro", "fault-"+strings.ToLower(name)+".txt")
		if err := os.WriteFile(file, []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d ops)", file, len(Decode(shrunk).Ops))
	}
}

// TestReproCorpus replays every pinned repro under testdata/repro: a
// plain repro must pass (it records a fixed bug), and a "fault" repro
// must fail under its named mutation and pass without it.
func TestReproCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "repro", "*.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no repro files checked in")
	}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			text, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := ParseRepro(text)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Fault == "" {
				if f := Check(rep.Raw); f != nil {
					t.Fatalf("pinned repro regressed: %v", f)
				}
				return
			}
			flag := faultFlag(t, rep.Fault)
			*flag = true
			f := Check(rep.Raw)
			*flag = false
			if f == nil {
				t.Fatalf("repro no longer fails under fault %s", rep.Fault)
			}
			if f2 := Check(rep.Raw); f2 != nil {
				t.Fatalf("repro fails even without fault %s: %v", rep.Fault, f2)
			}
		})
	}
}

// TestReproRoundTrip pins the repro file format.
func TestReproRoundTrip(t *testing.T) {
	data := []byte{0x03, 0x04, 0x00, 0x07, 0x0c, 0x01, 0x05}
	text := FormatRepro(data, "SkipFilterDrop", "block 0x100: bad mask\nsecond line")
	rep, err := ParseRepro([]byte(text))
	if err != nil {
		t.Fatal(err)
	}
	if string(rep.Raw) != string(data) {
		t.Fatalf("raw bytes: got %x, want %x", rep.Raw, data)
	}
	if rep.Fault != "SkipFilterDrop" {
		t.Fatalf("fault: got %q", rep.Fault)
	}
	if !strings.Contains(text, "# block 0x100: bad mask") {
		t.Fatalf("failure text not commented:\n%s", text)
	}
}

// TestShrinkIsMinimalExample sanity-checks the shrinker on a synthetic
// predicate (input contains at least 5 LR ops): the result must still
// satisfy the predicate and be no larger than the input.
func TestShrinkSynthetic(t *testing.T) {
	pred := func(d []byte) bool {
		s := Decode(d)
		if s == nil {
			return false
		}
		locks := 0
		for _, op := range s.Ops {
			if op.Kind == cache.OpLR {
				locks++
			}
		}
		return locks >= 5
	}
	r := rand.New(rand.NewSource(3))
	var data []byte
	for data == nil {
		c := randomInput(r, 100)
		if pred(c) {
			data = c
		}
	}
	shrunk := Shrink(data, pred)
	if !pred(shrunk) {
		t.Fatal("shrunk input no longer satisfies the predicate")
	}
	if len(shrunk) > len(data) {
		t.Fatalf("shrink grew the input: %d > %d", len(shrunk), len(data))
	}
	// 5 LRs need at most 5 groups plus the header.
	if got := len(Decode(shrunk).Ops); got > 12 {
		t.Errorf("shrunk to %d ops, expected near-minimal (<= 12)", got)
	}
}

// TestScheduleConfigIndependence pins the scheduling argument the
// differential oracle rests on: whether a PE blocks depends only on the
// lock map, which the flat model tracks, so the executed interleaving —
// and therefore the model's predictions — is identical across cache
// configurations. A violation would show up as a model mismatch in one
// configuration only; this test just documents the property by running
// a lock-heavy schedule across the matrix.
func TestScheduleConfigIndependence(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 60; i++ {
		// Bias toward lock traffic: selectors 4,5,13 (LR), 6,7,15
		// (releases), 12 (writes into the lock blocks).
		n := 30 + r.Intn(30)
		data := make([]byte, 1+3*n)
		data[0] = 3 // 4 PEs
		for g := 1; g+2 < len(data); g += 3 {
			sel := []byte{4, 5, 13, 6, 7, 15, 12, 12, 14, 0}[r.Intn(10)]
			data[g] = sel | byte(r.Intn(16))<<4
			data[g+1] = byte(r.Intn(256))
			data[g+2] = byte(r.Intn(256))
		}
		if f := Check(data); f != nil {
			shrunk := Shrink(data, func(d []byte) bool { return Check(d) != nil })
			t.Fatalf("lock-heavy schedule %d failed: %v\n%s", i, f,
				FormatRepro(shrunk, "", Check(shrunk).Error()))
		}
	}
}

func BenchmarkCheck(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	data := randomInput(r, 40)
	if Check(data) != nil {
		b.Fatal("benchmark input fails")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := Check(data); f != nil {
			b.Fatal(f)
		}
	}
}
