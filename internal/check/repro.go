package check

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"fmt"
	"strings"
)

// Repro is a parsed repro file: the authoritative raw input plus the
// fault-injection knob (empty for a plain protocol repro) the failure
// requires.
type Repro struct {
	Raw   []byte
	Fault string
}

// FormatRepro renders a failing input as a replayable repro file: a
// comment block with the failure and the decoded schedule for human
// eyes, one authoritative "raw <hex>" line ParseRepro replays, and —
// for the mutation-kill corpus — a "fault <name>" line naming the
// cache.Faults knob under which the input fails. The decoded listing is
// informational only; the raw bytes are the input.
func FormatRepro(data []byte, fault, failure string) string {
	var b strings.Builder
	b.WriteString("# pimcache coherence repro (replayed by internal/check)\n")
	for _, line := range strings.Split(strings.TrimRight(failure, "\n"), "\n") {
		fmt.Fprintf(&b, "# %s\n", line)
	}
	if fault != "" {
		fmt.Fprintf(&b, "fault %s\n", fault)
	}
	fmt.Fprintf(&b, "raw %s\n", hex.EncodeToString(data))
	if s := Decode(data); s != nil {
		for _, line := range strings.Split(strings.TrimRight(s.String(), "\n"), "\n") {
			fmt.Fprintf(&b, "# %s\n", line)
		}
	}
	return b.String()
}

// ParseRepro extracts the raw input bytes (and the fault name, if any)
// from a repro file.
func ParseRepro(text []byte) (Repro, error) {
	var r Repro
	sc := bufio.NewScanner(bytes.NewReader(text))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if f, ok := strings.CutPrefix(line, "fault "); ok {
			r.Fault = strings.TrimSpace(f)
			continue
		}
		if raw, ok := strings.CutPrefix(line, "raw "); ok {
			data, err := hex.DecodeString(strings.TrimSpace(raw))
			if err != nil {
				return r, fmt.Errorf("repro: bad raw line: %w", err)
			}
			r.Raw = data
		}
	}
	if err := sc.Err(); err != nil {
		return r, err
	}
	if r.Raw == nil {
		return r, fmt.Errorf("repro: no raw line found")
	}
	return r, nil
}
