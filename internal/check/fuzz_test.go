package check

import (
	"math/rand"
	"testing"
)

// FuzzCoherence is the native fuzz entry: any byte string decodes to a
// legal schedule (Decode is total and normalizing), which then runs
// under the full protocol/optimization/filter matrix against the flat
// reference model and every invariant oracle. The checked-in seeds
// under testdata/fuzz/FuzzCoherence cover each op class and the shapes
// that found real bugs; CI runs this target briefly on every push
// (see the fuzz-smoke job), and -fuzz can run it indefinitely.
//
// When this fails, shrink and pin the catch:
//
//	f := Check(data)
//	shrunk := Shrink(data, func(d []byte) bool { return Check(d) != nil })
//	os.WriteFile("testdata/repro/<name>.txt",
//	    []byte(FormatRepro(shrunk, "", Check(shrunk).Error())), 0o644)
func FuzzCoherence(f *testing.F) {
	// The repro that found the LR-upgrade ownership-loss bug.
	f.Add([]byte{0xb5, 0x8c, 0xbf, 0x13, 0x1e, 0x16, 0x28, 0xd4, 0x57, 0x34})
	// A few deterministic pseudo-random schedules of increasing size.
	r := rand.New(rand.NewSource(23))
	for _, n := range []int{4, 12, 30, 60} {
		f.Add(randomInput(r, n))
	}
	// One schedule per op-class selector so coverage starts broad.
	for sel := byte(0); sel < 16; sel++ {
		f.Add([]byte{3, sel, 0x11, 0x42, sel | 0x30, 0x07, 0x99, sel | 0x10, 0x2a, 0x05})
	}
	// Schedules proven (by the mutation-kill search) to reach the
	// write-update transitions: a shared-block write that broadcasts UP
	// under dragon/adaptive, a lock-heavy shape that drives the adaptive
	// self-invalidation, and a MOESI owned-block handoff and eviction.
	f.Add([]byte{0x19, 0x52, 0x09, 0xc9, 0x0d, 0x3b, 0xa5})
	f.Add([]byte{0x91, 0xd5, 0xbc, 0xf7, 0x25, 0xc7, 0xb8, 0xa2, 0x12, 0x95, 0xcc, 0x7f, 0x45})
	f.Add([]byte{0x19, 0x52, 0x09, 0xc9, 0x4d, 0x76, 0x42, 0x9b, 0x61, 0x7a, 0x0d, 0x3b, 0xa5})
	// The free-list recycle wish: a remote copy kept alive by UP
	// refreshes survives into an applied DW, forcing the write-update
	// protocols' direct-write invalidate (the shape of the live Dragon
	// allocator-corruption bug).
	f.Add([]byte{0x46, 0x28, 0xe2, 0x6f})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			return // bound runtime; long inputs add nothing over medium ones
		}
		if fail := Check(data); fail != nil {
			shrunk := Shrink(data, func(d []byte) bool { return Check(d) != nil })
			t.Fatalf("%v\nrepro file:\n%s", fail,
				FormatRepro(shrunk, "", Check(shrunk).Error()))
		}
	})
}
