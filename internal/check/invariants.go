package check

import (
	"fmt"

	"pimcache/internal/bus"
	"pimcache/internal/kl1/word"
	"pimcache/internal/probe"
)

// checkInvariants runs the per-transition oracles over every watched
// block and lock word. It is called after every executed operation, so
// any violation is pinned to the op that introduced it.
func (h *harness) checkInvariants(idx int, op Op) *Failure {
	fail := func(msg string) *Failure { return h.fail(idx, op, msg) }
	for _, base := range PoolBlocks() {
		if f := h.checkBlock(base, fail); f != nil {
			return f
		}
	}
	if f := h.checkLocks(fail); f != nil {
		return f
	}
	return nil
}

// checkBlock verifies the single-block protocol invariants:
//
//   - an exclusive (EC/EM) copy is the only copy anywhere;
//   - at most one dirty (EM/SM) copy exists;
//   - all valid copies hold identical data;
//   - with no dirty owner, every copy equals shared memory (a stale
//     clean copy is unreachable: invalidations kill remote copies
//     before a write commits);
//   - the bus presence filter's holder mask equals the ground-truth
//     scan of every cache.
func (h *harness) checkBlock(base word.Addr, fail func(string) *Failure) *Failure {
	holders, exclusive, dirty := 0, 0, 0
	var refData [BlockWords]word.Word
	refPE := -1
	for pe, c := range h.caches {
		st := c.StateOf(base)
		if !st.Valid() {
			continue
		}
		holders++
		if st.Exclusive() {
			exclusive++
		}
		if st.Dirty() {
			dirty++
		}
		var data [BlockWords]word.Word
		for i := range data {
			data[i], _ = c.PeekWord(base + word.Addr(i))
		}
		if refPE < 0 {
			refData, refPE = data, pe
		} else if data != refData {
			return fail(fmt.Sprintf("block %#x: PE%d holds %v, PE%d holds %v",
				base, refPE, refData, pe, data))
		}
	}
	if exclusive > 0 && holders > 1 {
		return fail(fmt.Sprintf("block %#x: exclusive copy among %d holders", base, holders))
	}
	if dirty > 1 {
		return fail(fmt.Sprintf("block %#x: %d dirty copies", base, dirty))
	}
	// Value invariants are vacuous without a data plane (PeekWord reports
	// zero everywhere and memory holds nothing to compare against); the
	// state, presence-filter and lock invariants below still run.
	if dirty == 0 && holders > 0 && !h.cfg.StatsOnly {
		for i := range refData {
			if mv := h.mem.Read(base + word.Addr(i)); mv != refData[i] {
				return fail(fmt.Sprintf(
					"block %#x word %d: clean copies hold %v but memory holds %v",
					base, i, refData[i], mv))
			}
		}
	}
	if got, want := h.bus.HolderMask(base), h.bus.ScanHolders(base); got != want {
		return fail(fmt.Sprintf(
			"block %#x: presence filter mask %#x, true holder set %#x", base, got, want))
	}
	return nil
}

// checkLocks verifies the lock-layer invariants: at most one holder per
// word (and it is the PE the model names), per-PE lock-filter counts
// match the directories, and no remote cache holds a locked word's
// block exclusively (the invariant that makes the zero-bus LR
// hit-exclusive fast path safe).
func (h *harness) checkLocks(fail func(string) *Failure) *Failure {
	total := 0
	for pe, c := range h.caches {
		inUse := c.LocksInUse()
		total += inUse
		if got := h.bus.LockCount(pe); got != inUse {
			return fail(fmt.Sprintf(
				"PE%d: bus lock filter counts %d, directory holds %d", pe, got, inUse))
		}
	}
	if got := h.bus.TotalLockCount(); got != total {
		return fail(fmt.Sprintf("bus lock filter total %d, directories hold %d", got, total))
	}
	for _, a := range lockPool() {
		holder := -1
		for pe, c := range h.caches {
			if !c.HeldLock(a) {
				continue
			}
			if holder >= 0 {
				return fail(fmt.Sprintf("lock %#x held by both PE%d and PE%d", a, holder, pe))
			}
			holder = pe
		}
		owner, locked := h.md.locks[a]
		switch {
		case locked && holder != owner:
			return fail(fmt.Sprintf("lock %#x: model owner PE%d, directory holder PE%d",
				a, owner, holder))
		case !locked && holder >= 0:
			return fail(fmt.Sprintf("lock %#x held by PE%d but free in the model", a, holder))
		}
		if holder < 0 {
			continue
		}
		base := a &^ word.Addr(BlockWords-1)
		for pe, c := range h.caches {
			if pe == holder {
				continue
			}
			if st := c.StateOf(base); st.Exclusive() {
				return fail(fmt.Sprintf(
					"lock %#x held by PE%d but PE%d holds its block %s", a, holder, pe, st))
			}
		}
	}
	return nil
}

// cycleAudit is a probe sink that accumulates the per-transaction spans
// the telemetry layer reports and checks them against the bus's own
// cycle accounting: total cycles must equal the sum of spans, and each
// pattern's count and cycle subtotal must match. Any pairing bug — a
// transaction accounted but not reported, or reported with the wrong
// span — breaks the equality.
type cycleAudit struct {
	cycles uint64
	byPat  [bus.NumPatterns]uint64
	cntPat [bus.NumPatterns]uint64
}

// Emit implements probe.Sink.
func (a *cycleAudit) Emit(e probe.Event) {
	if e.Kind != probe.KindBusEnd {
		return
	}
	a.cycles += uint64(e.N)
	if int(e.B) < len(a.byPat) {
		a.byPat[e.B] += uint64(e.N)
		a.cntPat[e.B]++
	}
}

func (a *cycleAudit) verify(st bus.Stats) error {
	if a.cycles != st.TotalCycles {
		return fmt.Errorf("probe spans sum to %d cycles, bus accounted %d",
			a.cycles, st.TotalCycles)
	}
	for p := range a.byPat {
		if a.byPat[p] != st.CyclesByPattern[p] {
			return fmt.Errorf("pattern %s: probe spans sum to %d cycles, bus accounted %d",
				bus.Pattern(p), a.byPat[p], st.CyclesByPattern[p])
		}
		if a.cntPat[p] != st.CountByPattern[p] {
			return fmt.Errorf("pattern %s: probe saw %d transactions, bus accounted %d",
				bus.Pattern(p), a.cntPat[p], st.CountByPattern[p])
		}
	}
	return nil
}
