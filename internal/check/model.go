package check

import (
	"fmt"

	"pimcache/internal/kl1/word"
	"pimcache/internal/mem"
)

// model is the flat sequential reference: one word array (represented
// sparsely) and one lock map. The simulated machine executes operations
// in a deterministic global order; applying that same order here
// predicts every read value, every lock grant, and the exact memory
// image at quiescence. The caches, the bus, the protocol states and the
// optimized commands must all be invisible at this level — that
// invisibility is the correctness property being checked.
type model struct {
	mem   map[word.Addr]word.Word
	locks map[word.Addr]int // word address -> owner PE
}

func newModel() *model {
	m := &model{
		mem:   make(map[word.Addr]word.Word),
		locks: make(map[word.Addr]int),
	}
	for a, v := range initPattern() {
		m.mem[a] = v
	}
	return m
}

// initPattern is the deterministic nonzero fill of the read-only goal
// arena (everything else starts zero, which the DW first-touch contract
// relies on). Both the model and the simulated shared memory are
// initialized from it.
func initPattern() map[word.Addr]word.Word {
	p := arenas()
	out := make(map[word.Addr]word.Word, goalROBlocks*BlockWords)
	for i := 0; i < goalROBlocks*BlockWords; i++ {
		out[p.goalRO+word.Addr(i)] = word.Int(0x5A5A0000 + int64(i))
	}
	return out
}

// seedMemory applies initPattern to the simulated shared memory.
func seedMemory(m *mem.Memory) {
	for a, v := range initPattern() {
		m.Write(a, v)
	}
}

func (m *model) read(a word.Addr) word.Word { return m.mem[a] }

func (m *model) write(a word.Addr, v word.Word) { m.mem[a] = v }

// lockedByOther reports whether a PE other than pe holds the word lock.
func (m *model) lockedByOther(pe int, a word.Addr) bool {
	owner, ok := m.locks[a]
	return ok && owner != pe
}

func (m *model) acquire(pe int, a word.Addr) error {
	if owner, ok := m.locks[a]; ok {
		return fmt.Errorf("model: PE%d acquiring %#x already locked by PE%d", pe, a, owner)
	}
	m.locks[a] = pe
	return nil
}

func (m *model) release(pe int, a word.Addr) error {
	owner, ok := m.locks[a]
	if !ok {
		return fmt.Errorf("model: PE%d releasing unlocked %#x", pe, a)
	}
	if owner != pe {
		return fmt.Errorf("model: PE%d releasing %#x locked by PE%d", pe, a, owner)
	}
	delete(m.locks, a)
	return nil
}
