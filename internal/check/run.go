package check

import (
	"fmt"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/kl1/word"
	"pimcache/internal/mem"
)

// RunConfig selects one protocol/optimization/bus configuration for a
// checked run.
type RunConfig struct {
	Label          string
	Protocol       cache.Protocol
	Options        cache.Options
	DisableFilters bool
	// StatsOnly runs the configuration without a data plane. Value
	// predictions (model reads, the flushed-memory image) cannot be
	// checked — there are no values — but every state-derived check
	// still runs, and RunAll requires the stats-only twin's statistics
	// to match the data-carrying run bit for bit.
	StatsOnly bool
}

// configLabel shortens a protocol name for matrix labels (the historic
// "wt" shorthand keeps existing repro corpora and log greps valid).
func configLabel(p cache.CoherenceProtocol) string {
	if p.ID() == cache.ProtocolWriteThrough {
		return "wt"
	}
	return p.Name()
}

// Configs is the differential matrix: every registered protocol with the
// optimized commands off and on. Enumerating the cache package's
// protocol registry means a newly registered FSM joins the matrix — and
// the fuzzer, the mutation gate and the equivalence twins built on it —
// with no change here. The generator's software contracts make every
// configuration agree with the flat model, so they transitively agree
// with each other.
func Configs() []RunConfig {
	var out []RunConfig
	for _, p := range cache.Protocols() {
		out = append(out,
			RunConfig{Label: configLabel(p) + "/none", Protocol: p.ID(), Options: cache.OptionsNone()},
			RunConfig{Label: configLabel(p) + "/all", Protocol: p.ID(), Options: cache.OptionsAll()},
		)
	}
	return out
}

// Result is the observable outcome of a run; it is comparable with ==,
// which is how the filtered and unfiltered bus are required to match
// bit for bit.
type Result struct {
	Cache cache.Stats
	Bus   bus.Stats
}

// Failure describes one checker violation, with enough context to
// pinpoint the offending operation.
type Failure struct {
	Config  string
	OpIndex int // index into Seq.Ops, -1 for end-of-run checks
	Op      string
	Msg     string
}

// Error formats the failure on one line.
func (f *Failure) Error() string {
	if f.OpIndex < 0 {
		return fmt.Sprintf("[%s] at quiescence: %s", f.Config, f.Msg)
	}
	return fmt.Sprintf("[%s] op %d (%s): %s", f.Config, f.OpIndex, f.Op, f.Msg)
}

// harness is one machine under check: the real bus+caches, the flat
// model, and the per-PE op queues the round-robin scheduler drains.
type harness struct {
	cfg    RunConfig
	mem    *mem.Memory
	bus    *bus.Bus
	caches []*cache.Cache
	md     *model
	audit  *cycleAudit
}

func newHarness(pes int, rc RunConfig) *harness {
	var m *mem.Memory
	if rc.StatsOnly {
		// No data plane: seeding (and any later value check) is
		// impossible, which is fine — coherence decisions never read
		// values, the property the stats-only twin exists to pin.
		m = mem.NewStatsOnly(Layout())
	} else {
		m = mem.New(Layout())
		seedMemory(m)
	}
	b := bus.New(bus.Config{
		Timing:          bus.DefaultTiming(),
		BlockWords:      BlockWords,
		DisableFilters:  rc.DisableFilters,
		PoisonFetchData: !rc.StatsOnly,
		StatsOnly:       rc.StatsOnly,
	}, m)
	ccfg := cache.Config{
		SizeWords:         CacheWords,
		BlockWords:        BlockWords,
		Ways:              1,
		LockEntries:       4,
		Options:           rc.Options,
		Protocol:          rc.Protocol,
		VerifyDW:          true,
		DisableBusFilters: rc.DisableFilters,
		PoisonBusData:     !rc.StatsOnly,
		StatsOnly:         rc.StatsOnly,
	}
	if err := ccfg.Validate(); err != nil {
		panic(err)
	}
	caches := make([]*cache.Cache, pes)
	for i := range caches {
		caches[i] = cache.New(ccfg, i, b)
	}
	h := &harness{cfg: rc, mem: m, bus: b, caches: caches,
		md: newModel(), audit: &cycleAudit{}}
	b.SetProbe(h.audit)
	return h
}

// RunSeq executes s on one configuration, checking the model prediction
// of every read and lock grant, and the full invariant set after every
// operation. It returns the run's observable statistics and the first
// failure (nil when the run is clean).
func RunSeq(s *Seq, rc RunConfig) (Result, *Failure) {
	h := newHarness(s.PEs, rc)

	// Split the schedule into per-PE programs; the round-robin scheduler
	// below recreates the machine's deterministic interleaving, skipping
	// busy-waiting PEs exactly as machine.Run does.
	queues := make([][]int, s.PEs)
	for i, op := range s.Ops {
		queues[op.PE] = append(queues[op.PE], i)
	}
	remaining := len(s.Ops)
	maxRounds := 8*len(s.Ops) + 64
	for round := 0; remaining > 0; round++ {
		if round > maxRounds {
			return Result{}, &Failure{Config: rc.Label, OpIndex: -1,
				Msg: fmt.Sprintf("no quiescence after %d rounds: livelock or lost unlock broadcast", round)}
		}
		for pe := 0; pe < s.PEs; pe++ {
			if len(queues[pe]) == 0 || h.caches[pe].Blocked() {
				continue
			}
			idx := queues[pe][0]
			advanced, f := h.exec(idx, s.Ops[idx])
			if f != nil {
				return Result{}, f
			}
			if advanced {
				queues[pe] = queues[pe][1:]
				remaining--
			}
			if f := h.checkInvariants(idx, s.Ops[idx]); f != nil {
				return Result{}, f
			}
		}
	}
	if f := h.quiesce(); f != nil {
		return Result{}, f
	}
	var tot cache.Stats
	for _, c := range h.caches {
		st := c.Stats()
		tot.Add(&st)
	}
	return Result{Cache: tot, Bus: h.bus.Stats()}, nil
}

// exec runs one operation against the real cache and the model.
// advanced is false when an LR drew a lock hit and the PE must retry
// after the unlock broadcast. Panics from the cache layer (protocol
// assertions, DW contract checks, slice faults from poisoned buffers)
// are converted into failures.
func (h *harness) exec(idx int, op Op) (advanced bool, f *Failure) {
	defer func() {
		if r := recover(); r != nil {
			f = h.fail(idx, op, fmt.Sprintf("panic: %v", r))
		}
	}()
	c := h.caches[op.PE]
	switch op.Kind {
	case cache.OpR, cache.OpER, cache.OpRP, cache.OpRI:
		var got word.Word
		switch op.Kind {
		case cache.OpR:
			got = c.Read(op.Addr)
		case cache.OpER:
			got = c.ExclusiveRead(op.Addr)
		case cache.OpRP:
			got = c.ReadPurge(op.Addr)
		case cache.OpRI:
			got = c.ReadInvalidate(op.Addr)
		}
		if want := h.md.read(op.Addr); !h.cfg.StatsOnly && got != want {
			return false, h.fail(idx, op, fmt.Sprintf("read %v, model says %v", got, want))
		}
	case cache.OpW:
		c.Write(op.Addr, word.Int(op.Val))
		h.md.write(op.Addr, word.Int(op.Val))
	case cache.OpDW:
		c.DirectWrite(op.Addr, word.Int(op.Val))
		h.md.write(op.Addr, word.Int(op.Val))
	case cache.OpLR:
		wantBlocked := h.md.lockedByOther(op.PE, op.Addr)
		got, ok := c.LockRead(op.Addr)
		if ok == wantBlocked {
			return false, h.fail(idx, op, fmt.Sprintf(
				"lock grant=%v, model owner map says blocked=%v", ok, wantBlocked))
		}
		if !ok {
			if !c.Blocked() {
				return false, h.fail(idx, op, "LR denied but cache not busy-waiting")
			}
			return false, nil // retry after the unlock broadcast
		}
		if want := h.md.read(op.Addr); !h.cfg.StatsOnly && got != want {
			return false, h.fail(idx, op, fmt.Sprintf("locked read %v, model says %v", got, want))
		}
		if err := h.md.acquire(op.PE, op.Addr); err != nil {
			return false, h.fail(idx, op, err.Error())
		}
	case cache.OpUW:
		c.UnlockWrite(op.Addr, word.Int(op.Val))
		h.md.write(op.Addr, word.Int(op.Val))
		if err := h.md.release(op.PE, op.Addr); err != nil {
			return false, h.fail(idx, op, err.Error())
		}
	case cache.OpU:
		c.Unlock(op.Addr)
		if err := h.md.release(op.PE, op.Addr); err != nil {
			return false, h.fail(idx, op, err.Error())
		}
	default:
		return false, h.fail(idx, op, "unknown op kind")
	}
	return true, nil
}

// quiesce runs the end-of-run checks: no lock or busy-wait survives the
// schedule, flushed memory equals the model image word for word, and
// the probe-observed bus spans sum to the accounted cycle totals.
func (h *harness) quiesce() *Failure {
	for pe, c := range h.caches {
		if c.Blocked() {
			return h.failEnd(fmt.Sprintf("PE%d still busy-waiting on %#x", pe, c.BlockedOn()))
		}
		if n := c.LocksInUse(); n != 0 {
			return h.failEnd(fmt.Sprintf("PE%d still holds %d locks", pe, n))
		}
	}
	if n := h.bus.TotalLockCount(); n != 0 {
		return h.failEnd(fmt.Sprintf("bus lock filter counts %d held locks at quiescence", n))
	}
	if n := len(h.md.locks); n != 0 {
		return h.failEnd(fmt.Sprintf("model still holds %d locks (generator bug)", n))
	}
	for _, c := range h.caches {
		c.Flush()
	}
	if !h.cfg.StatsOnly {
		for _, base := range PoolBlocks() {
			for i := 0; i < BlockWords; i++ {
				a := base + word.Addr(i)
				if got, want := h.mem.Read(a), h.md.read(a); got != want {
					return h.failEnd(fmt.Sprintf(
						"memory[%#x] = %v after flush, model says %v", a, got, want))
				}
			}
		}
	}
	if err := h.audit.verify(h.bus.Stats()); err != nil {
		return h.failEnd(err.Error())
	}
	return nil
}

func (h *harness) fail(idx int, op Op, msg string) *Failure {
	return &Failure{Config: h.cfg.Label, OpIndex: idx, Op: op.String(), Msg: msg}
}

func (h *harness) failEnd(msg string) *Failure {
	return &Failure{Config: h.cfg.Label, OpIndex: -1, Msg: msg}
}

// RunAll runs s under the full configuration matrix, then re-runs the
// copy-back/all configurations with the bus presence filters disabled,
// and every configuration with the data plane removed (stats-only), each
// time requiring bit-identical statistics. It returns the first failure.
func RunAll(s *Seq) *Failure {
	results := make(map[string]Result)
	for _, rc := range Configs() {
		res, f := RunSeq(s, rc)
		if f != nil {
			return f
		}
		results[rc.Label] = res
	}
	for _, rc := range Configs() {
		if rc.Protocol == cache.ProtocolWriteThrough && rc.Options != cache.OptionsAll() {
			continue // one write-through twin is plenty; WT ignores Options
		}
		un := rc
		un.Label = rc.Label + "/unfiltered"
		un.DisableFilters = true
		res, f := RunSeq(s, un)
		if f != nil {
			return f
		}
		if res != results[rc.Label] {
			return &Failure{Config: un.Label, OpIndex: -1, Msg: fmt.Sprintf(
				"filtered and unfiltered runs diverge:\nfiltered:   %+v\nunfiltered: %+v",
				results[rc.Label], res)}
		}
	}
	// Stats-only twins: coherence decisions must never depend on data
	// values, so removing the data plane entirely must leave every
	// statistic untouched. This is the equivalence DESIGN.md §11 argues
	// and the replay engine's fast path relies on.
	for _, rc := range Configs() {
		so := rc
		so.Label = rc.Label + "/statsonly"
		so.StatsOnly = true
		res, f := RunSeq(s, so)
		if f != nil {
			return f
		}
		if res != results[rc.Label] {
			return &Failure{Config: so.Label, OpIndex: -1, Msg: fmt.Sprintf(
				"data-carrying and stats-only runs diverge:\ndata:       %+v\nstats-only: %+v",
				results[rc.Label], res)}
		}
	}
	return nil
}

// Check decodes raw fuzz bytes and runs the full matrix; nil input (too
// short to decode) passes vacuously.
func Check(data []byte) *Failure {
	s := Decode(data)
	if s == nil {
		return nil
	}
	return RunAll(s)
}
