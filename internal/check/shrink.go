package check

// Shrink minimizes a failing raw input with delta debugging over the
// decoder's 3-byte op groups, so every candidate is legal by
// construction (shrinking decoded ops directly could produce schedules
// the generator contracts forbid, turning a protocol bug into a
// contract violation). fails must be a pure predicate; Shrink assumes
// fails(data) and returns the smallest still-failing input it found.
//
// The loop is classic ddmin — remove chunks of groups, halving the
// chunk size down to single groups — followed by an attempt to lower
// the PE count, iterated to a fixpoint.
func Shrink(data []byte, fails func([]byte) bool) []byte {
	cur := append([]byte(nil), data...)
	for {
		next := shrinkGroups(cur, fails)
		next = shrinkPEs(next, fails)
		if len(next) == len(cur) && string(next) == string(cur) {
			return cur
		}
		cur = next
	}
}

// groupsOf splits data into its header byte and complete 3-byte groups
// (the decoder ignores a trailing partial group, so dropping it first
// is always a valid shrink).
func groupsOf(data []byte) (header byte, groups [][]byte) {
	header = data[0]
	for g := 1; g+2 < len(data); g += 3 {
		groups = append(groups, data[g:g+3])
	}
	return header, groups
}

func assemble(header byte, groups [][]byte) []byte {
	out := []byte{header}
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

func shrinkGroups(data []byte, fails func([]byte) bool) []byte {
	header, groups := groupsOf(data)
	if c := assemble(header, groups); len(c) < len(data) && fails(c) {
		data = c // dropped a trailing partial group
	}
	chunk := len(groups) / 2
	for chunk >= 1 {
		removedAny := false
		for start := 0; start+chunk <= len(groups); {
			candidate := make([][]byte, 0, len(groups)-chunk)
			candidate = append(candidate, groups[:start]...)
			candidate = append(candidate, groups[start+chunk:]...)
			c := assemble(header, candidate)
			if Decode(c) != nil && fails(c) {
				groups = candidate
				data = c
				removedAny = true
				// Keep start in place: the next chunk slid into it.
			} else {
				start += chunk
			}
		}
		if !removedAny || chunk == 1 {
			chunk /= 2
		}
	}
	return data
}

// shrinkPEs tries the same op groups with fewer PEs; the decoder remaps
// every group's PE field modulo the new count, which often collapses a
// multi-PE interleaving into a shorter single-PE repro.
func shrinkPEs(data []byte, fails func([]byte) bool) []byte {
	header, groups := groupsOf(data)
	for pes := byte(0); pes < header&3; pes++ {
		c := assemble(header&^3|pes, groups)
		if Decode(c) != nil && fails(c) {
			return c
		}
	}
	return data
}
