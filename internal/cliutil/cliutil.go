// Package cliutil holds the flag validation shared by the pimsim,
// pimbench, pimtable, pimtrace and pimprof commands. The simulator
// core panics on malformed configurations (and some bad values used to
// slip far deeper before surfacing); these helpers turn bad flag
// values into ordinary errors at the command line.
package cliutil

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
)

// ValidatePEs checks a -pes flag: at least one PE, at most the bus's
// presence-filter limit.
func ValidatePEs(pes int) error {
	if pes < 1 {
		return fmt.Errorf("-pes must be at least 1 (got %d)", pes)
	}
	if pes > bus.MaxPEs {
		return fmt.Errorf("-pes must be at most %d (got %d)", bus.MaxPEs, pes)
	}
	return nil
}

// ValidateJobs checks a -jobs flag: non-negative (0 means all cores).
func ValidateJobs(jobs int) error {
	if jobs < 0 {
		return fmt.Errorf("-jobs must be non-negative (got %d)", jobs)
	}
	return nil
}

// ValidateBlock checks a -block flag: a positive power of two, so
// block-base masking works.
func ValidateBlock(block int) error {
	if block < 1 || block&(block-1) != 0 {
		return fmt.Errorf("-block must be a positive power of two (got %d)", block)
	}
	return nil
}

// ParseOptions maps an -opts flag value to the optimized-command set.
func ParseOptions(name string) (cache.Options, error) {
	switch name {
	case "none":
		return cache.OptionsNone(), nil
	case "heap":
		return cache.OptionsHeap(), nil
	case "goal":
		return cache.OptionsGoal(), nil
	case "comm":
		return cache.OptionsComm(), nil
	case "all":
		return cache.OptionsAll(), nil
	}
	return cache.Options{}, fmt.Errorf("unknown -opts %q (want none, heap, goal, comm, or all)", name)
}

// ParseProtocol maps a -protocol flag value to a coherence protocol.
func ParseProtocol(name string) (cache.Protocol, error) {
	switch name {
	case "pim":
		return cache.ProtocolPIM, nil
	case "illinois":
		return cache.ProtocolIllinois, nil
	case "writethrough":
		return cache.ProtocolWriteThrough, nil
	}
	return 0, fmt.Errorf("unknown -protocol %q (want pim, illinois, or writethrough)", name)
}

// BuildCacheConfig assembles and validates a cache configuration from
// the -cache/-block/-ways/-opts/-protocol flags every simulator command
// shares. Geometry errors (non-power-of-two block or set count, sizes
// that don't divide) come back as ordinary errors instead of panics
// deep inside cache construction.
func BuildCacheConfig(sizeWords, blockWords, ways int, optsName, protocolName string) (cache.Config, error) {
	opts, err := ParseOptions(optsName)
	if err != nil {
		return cache.Config{}, err
	}
	proto, err := ParseProtocol(protocolName)
	if err != nil {
		return cache.Config{}, err
	}
	cfg := cache.Config{
		SizeWords:   sizeWords,
		BlockWords:  blockWords,
		Ways:        ways,
		LockEntries: 4,
		Options:     opts,
		Protocol:    proto,
	}
	if err := cfg.Validate(); err != nil {
		return cache.Config{}, err
	}
	return cfg, nil
}

// StartProfiles starts CPU and/or heap profiling per the -cpuprofile and
// -memprofile flags (either may be empty). It returns a stop function the
// command must call on every exit path — typically via defer from main's
// run helper — which stops the CPU profile and writes the heap profile.
// Errors opening or writing the profile files come back as ordinary
// errors; profiling never aborts the simulation it is measuring.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("-cpuprofile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("-memprofile: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("-memprofile: %w", err)
			}
		}
		return nil
	}, nil
}

// FirstError returns the first non-nil error, letting commands
// validate several flags in one statement.
func FirstError(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
