// Package cliutil holds the flag validation shared by the pimsim,
// pimbench, pimtable, pimtrace and pimprof commands. The simulator
// core panics on malformed configurations (and some bad values used to
// slip far deeper before surfacing); these helpers turn bad flag
// values into ordinary errors at the command line.
package cliutil

import (
	"fmt"

	"pimcache/internal/bus"
)

// ValidatePEs checks a -pes flag: at least one PE, at most the bus's
// presence-filter limit.
func ValidatePEs(pes int) error {
	if pes < 1 {
		return fmt.Errorf("-pes must be at least 1 (got %d)", pes)
	}
	if pes > bus.MaxPEs {
		return fmt.Errorf("-pes must be at most %d (got %d)", bus.MaxPEs, pes)
	}
	return nil
}

// ValidateJobs checks a -jobs flag: non-negative (0 means all cores).
func ValidateJobs(jobs int) error {
	if jobs < 0 {
		return fmt.Errorf("-jobs must be non-negative (got %d)", jobs)
	}
	return nil
}

// ValidateBlock checks a -block flag: a positive power of two, so
// block-base masking works.
func ValidateBlock(block int) error {
	if block < 1 || block&(block-1) != 0 {
		return fmt.Errorf("-block must be a positive power of two (got %d)", block)
	}
	return nil
}

// FirstError returns the first non-nil error, letting commands
// validate several flags in one statement.
func FirstError(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
