// Package cliutil holds the flag validation shared by the pimsim,
// pimbench, pimtable, pimtrace and pimprof commands. The simulator
// core panics on malformed configurations (and some bad values used to
// slip far deeper before surfacing); these helpers turn bad flag
// values into ordinary errors at the command line.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
)

// ValidatePEs checks a -pes flag: at least one PE, at most the bus's
// presence-filter limit.
func ValidatePEs(pes int) error {
	if pes < 1 {
		return fmt.Errorf("-pes must be at least 1 (got %d)", pes)
	}
	if pes > bus.MaxPEs {
		return fmt.Errorf("-pes must be at most %d (got %d)", bus.MaxPEs, pes)
	}
	return nil
}

// ValidateJobs checks a -jobs flag: non-negative (0 means all cores).
func ValidateJobs(jobs int) error {
	if jobs < 0 {
		return fmt.Errorf("-jobs must be non-negative (got %d)", jobs)
	}
	return nil
}

// ValidateBlock checks a -block flag: a positive power of two, so
// block-base masking works.
func ValidateBlock(block int) error {
	if block < 1 || block&(block-1) != 0 {
		return fmt.Errorf("-block must be a positive power of two (got %d)", block)
	}
	return nil
}

// ParseOptions maps an -opts flag value to the optimized-command set.
func ParseOptions(name string) (cache.Options, error) {
	switch name {
	case "none":
		return cache.OptionsNone(), nil
	case "heap":
		return cache.OptionsHeap(), nil
	case "goal":
		return cache.OptionsGoal(), nil
	case "comm":
		return cache.OptionsComm(), nil
	case "all":
		return cache.OptionsAll(), nil
	}
	return cache.Options{}, fmt.Errorf("unknown -opts %q (want none, heap, goal, comm, or all)", name)
}

// protocolList renders the registered protocol names as an English
// alternation ("pim, illinois, ..., or adaptive") for help and error
// text, so the flag surface tracks the cache package's registry.
func protocolList() string {
	names := cache.ProtocolNames()
	if len(names) == 1 {
		return names[0]
	}
	return strings.Join(names[:len(names)-1], ", ") + ", or " + names[len(names)-1]
}

// ProtocolFlagHelp is the shared -protocol flag usage string, derived
// from the protocol registry.
func ProtocolFlagHelp() string {
	return "coherence protocol (" + protocolList() + ")"
}

// ParseProtocol maps a -protocol flag value to a coherence protocol.
// Any protocol registered with the cache package parses; the error text
// enumerates the registry.
func ParseProtocol(name string) (cache.Protocol, error) {
	if p, ok := cache.ProtocolByName(name); ok {
		return p, nil
	}
	return 0, fmt.Errorf("unknown -protocol %q (want %s)", name, protocolList())
}

// BuildCacheConfig assembles and validates a cache configuration from
// the -cache/-block/-ways/-opts/-protocol flags every simulator command
// shares. Geometry errors (non-power-of-two block or set count, sizes
// that don't divide) come back as ordinary errors instead of panics
// deep inside cache construction.
func BuildCacheConfig(sizeWords, blockWords, ways int, optsName, protocolName string) (cache.Config, error) {
	opts, err := ParseOptions(optsName)
	if err != nil {
		return cache.Config{}, err
	}
	proto, err := ParseProtocol(protocolName)
	if err != nil {
		return cache.Config{}, err
	}
	cfg := cache.Config{
		SizeWords:   sizeWords,
		BlockWords:  blockWords,
		Ways:        ways,
		LockEntries: 4,
		Options:     opts,
		Protocol:    proto,
	}
	if err := cfg.Validate(); err != nil {
		return cache.Config{}, err
	}
	return cfg, nil
}

// ProfileSpec names the profile outputs a command was asked for. Empty
// paths disable the corresponding profile. Paths() feeds the manifest's
// Timing.Profiles block, so a regression report links straight to the
// profiles of the run that regressed.
type ProfileSpec struct {
	CPU   string // -cpuprofile
	Mem   string // -memprofile
	Block string // -blockprofile (goroutine blocking)
	Mutex string // -mutexprofile (contended mutexes)
}

// ProfileFlags registers the profile flags on fs and returns the spec
// they fill (valid after fs.Parse).
func ProfileFlags(fs *flag.FlagSet) *ProfileSpec {
	var p ProfileSpec
	fs.StringVar(&p.CPU, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.Mem, "memprofile", "", "write a heap profile to this file")
	fs.StringVar(&p.Block, "blockprofile", "", "write a goroutine-blocking profile to this file")
	fs.StringVar(&p.Mutex, "mutexprofile", "", "write a mutex-contention profile to this file")
	return &p
}

// Paths returns the non-empty profile outputs keyed by kind (nil when
// no profiling was requested) — the shape the run manifest records.
func (p ProfileSpec) Paths() map[string]string {
	out := map[string]string{}
	for kind, path := range map[string]string{
		"cpu": p.CPU, "mem": p.Mem, "block": p.Block, "mutex": p.Mutex,
	} {
		if path != "" {
			out[kind] = path
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// StartProfiles starts every profile the spec requests. It returns a
// stop function the command must call on every exit path — typically
// via defer from main's run helper — which stops the CPU profile and
// writes the heap/block/mutex profiles. Errors opening or writing the
// profile files come back as ordinary errors; profiling never aborts
// the simulation it is measuring.
func StartProfiles(spec ProfileSpec) (stop func() error, err error) {
	var cpuFile *os.File
	if spec.CPU != "" {
		cpuFile, err = os.Create(spec.CPU)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	if spec.Block != "" {
		runtime.SetBlockProfileRate(1)
	}
	if spec.Mutex != "" {
		runtime.SetMutexProfileFraction(1)
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("-cpuprofile: %w", err)
			}
		}
		if spec.Mem != "" {
			f, err := os.Create(spec.Mem)
			if err != nil {
				return fmt.Errorf("-memprofile: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("-memprofile: %w", err)
			}
		}
		if spec.Block != "" {
			if err := writeNamedProfile("block", spec.Block); err != nil {
				return fmt.Errorf("-blockprofile: %w", err)
			}
			runtime.SetBlockProfileRate(0)
		}
		if spec.Mutex != "" {
			if err := writeNamedProfile("mutex", spec.Mutex); err != nil {
				return fmt.Errorf("-mutexprofile: %w", err)
			}
			runtime.SetMutexProfileFraction(0)
		}
		return nil
	}, nil
}

// writeNamedProfile dumps one of the runtime's named profiles to path.
func writeNamedProfile(name, path string) error {
	p := pprof.Lookup(name)
	if p == nil {
		return fmt.Errorf("runtime profile %q not found", name)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return p.WriteTo(f, 0)
}

// FirstError returns the first non-nil error, letting commands
// validate several flags in one statement.
func FirstError(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
