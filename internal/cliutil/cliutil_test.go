package cliutil

import (
	"errors"
	"strings"
	"testing"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
)

func TestValidatePEs(t *testing.T) {
	for _, pes := range []int{1, 2, 8, bus.MaxPEs} {
		if err := ValidatePEs(pes); err != nil {
			t.Errorf("ValidatePEs(%d) = %v, want nil", pes, err)
		}
	}
	for _, pes := range []int{0, -1, -8, bus.MaxPEs + 1} {
		if err := ValidatePEs(pes); err == nil {
			t.Errorf("ValidatePEs(%d) = nil, want error", pes)
		}
	}
}

func TestValidateJobs(t *testing.T) {
	for _, jobs := range []int{0, 1, 64} {
		if err := ValidateJobs(jobs); err != nil {
			t.Errorf("ValidateJobs(%d) = %v, want nil", jobs, err)
		}
	}
	if err := ValidateJobs(-1); err == nil {
		t.Error("ValidateJobs(-1) = nil, want error")
	}
}

func TestValidateBlock(t *testing.T) {
	for _, block := range []int{1, 2, 4, 8, 16, 1024} {
		if err := ValidateBlock(block); err != nil {
			t.Errorf("ValidateBlock(%d) = %v, want nil", block, err)
		}
	}
	for _, block := range []int{0, -4, 3, 6, 12, 1000} {
		if err := ValidateBlock(block); err == nil {
			t.Errorf("ValidateBlock(%d) = nil, want error", block)
		}
	}
}

func TestParseOptions(t *testing.T) {
	for name, want := range map[string]cache.Options{
		"none": cache.OptionsNone(),
		"heap": cache.OptionsHeap(),
		"goal": cache.OptionsGoal(),
		"comm": cache.OptionsComm(),
		"all":  cache.OptionsAll(),
	} {
		got, err := ParseOptions(name)
		if err != nil || got != want {
			t.Errorf("ParseOptions(%q) = %v, %v", name, got, err)
		}
	}
	for _, name := range []string{"", "ALL", "everything", "heap,goal"} {
		if _, err := ParseOptions(name); err == nil {
			t.Errorf("ParseOptions(%q) = nil error, want error", name)
		}
	}
}

func TestParseProtocol(t *testing.T) {
	for name, want := range map[string]cache.Protocol{
		"pim":          cache.ProtocolPIM,
		"illinois":     cache.ProtocolIllinois,
		"writethrough": cache.ProtocolWriteThrough,
		"moesi":        cache.ProtocolMOESI,
		"dragon":       cache.ProtocolDragon,
		"adaptive":     cache.ProtocolAdaptive,
	} {
		got, err := ParseProtocol(name)
		if err != nil || got != want {
			t.Errorf("ParseProtocol(%q) = %v, %v", name, got, err)
		}
	}
	for _, name := range []string{"", "PIM", "mesi"} {
		if _, err := ParseProtocol(name); err == nil {
			t.Errorf("ParseProtocol(%q) = nil error, want error", name)
		}
	}
}

// TestParseProtocolAgreesWithRegistry pins the registry round trip:
// every registered protocol name parses back to its own enum value, and
// the help/error text names each of them — so a protocol registered in
// the cache package cannot be silently unreachable from the CLI.
func TestParseProtocolAgreesWithRegistry(t *testing.T) {
	for _, p := range cache.Protocols() {
		got, err := ParseProtocol(p.Name())
		if err != nil || got != p.ID() {
			t.Errorf("ParseProtocol(%q) = %v, %v; want %v", p.Name(), got, err, p.ID())
		}
		if !strings.Contains(ProtocolFlagHelp(), p.Name()) {
			t.Errorf("ProtocolFlagHelp() %q does not mention %q", ProtocolFlagHelp(), p.Name())
		}
		_, err = ParseProtocol("no-such-protocol")
		if err == nil || !strings.Contains(err.Error(), p.Name()) {
			t.Errorf("ParseProtocol error %v does not mention %q", err, p.Name())
		}
	}
}

func TestBuildCacheConfig(t *testing.T) {
	cfg, err := BuildCacheConfig(4<<10, 4, 4, "all", "illinois")
	if err != nil {
		t.Fatalf("BuildCacheConfig(base) = %v", err)
	}
	if cfg.SizeWords != 4<<10 || cfg.BlockWords != 4 || cfg.Ways != 4 ||
		cfg.LockEntries != 4 || cfg.Protocol != cache.ProtocolIllinois ||
		cfg.Options != cache.OptionsAll() {
		t.Fatalf("BuildCacheConfig(base) = %+v", cfg)
	}

	bad := []struct {
		name              string
		size, block, ways int
		opts, proto       string
	}{
		{"bad opts", 4 << 10, 4, 4, "bogus", "pim"},
		{"bad protocol", 4 << 10, 4, 4, "all", "bogus"},
		{"non-pow2 block", 4 << 10, 3, 4, "all", "pim"},
		{"non-pow2 sets", 3000, 4, 4, "all", "pim"},
		{"size not divisible", 100, 8, 4, "all", "pim"},
		{"zero size", 0, 4, 4, "all", "pim"},
		{"negative ways", 4 << 10, 4, -1, "all", "pim"},
	}
	for _, c := range bad {
		if _, err := BuildCacheConfig(c.size, c.block, c.ways, c.opts, c.proto); err == nil {
			t.Errorf("%s: BuildCacheConfig(%d, %d, %d, %q, %q) = nil error, want error",
				c.name, c.size, c.block, c.ways, c.opts, c.proto)
		}
	}
}

func TestFirstError(t *testing.T) {
	if err := FirstError(nil, nil, nil); err != nil {
		t.Errorf("FirstError(nil...) = %v", err)
	}
	want := errors.New("boom")
	if err := FirstError(nil, want, errors.New("later")); err != want {
		t.Errorf("FirstError returned %v, want the first error", err)
	}
}
