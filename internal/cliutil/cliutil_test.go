package cliutil

import (
	"errors"
	"testing"

	"pimcache/internal/bus"
)

func TestValidatePEs(t *testing.T) {
	for _, pes := range []int{1, 2, 8, bus.MaxPEs} {
		if err := ValidatePEs(pes); err != nil {
			t.Errorf("ValidatePEs(%d) = %v, want nil", pes, err)
		}
	}
	for _, pes := range []int{0, -1, -8, bus.MaxPEs + 1} {
		if err := ValidatePEs(pes); err == nil {
			t.Errorf("ValidatePEs(%d) = nil, want error", pes)
		}
	}
}

func TestValidateJobs(t *testing.T) {
	for _, jobs := range []int{0, 1, 64} {
		if err := ValidateJobs(jobs); err != nil {
			t.Errorf("ValidateJobs(%d) = %v, want nil", jobs, err)
		}
	}
	if err := ValidateJobs(-1); err == nil {
		t.Error("ValidateJobs(-1) = nil, want error")
	}
}

func TestValidateBlock(t *testing.T) {
	for _, block := range []int{1, 2, 4, 8, 16, 1024} {
		if err := ValidateBlock(block); err != nil {
			t.Errorf("ValidateBlock(%d) = %v, want nil", block, err)
		}
	}
	for _, block := range []int{0, -4, 3, 6, 12, 1000} {
		if err := ValidateBlock(block); err == nil {
			t.Errorf("ValidateBlock(%d) = nil, want error", block)
		}
	}
}

func TestFirstError(t *testing.T) {
	if err := FirstError(nil, nil, nil); err != nil {
		t.Errorf("FirstError(nil...) = %v", err)
	}
	want := errors.New("boom")
	if err := FirstError(nil, want, errors.New("later")); err != want {
		t.Errorf("FirstError returned %v, want the first error", err)
	}
}
