package cliutil

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"pimcache/internal/obs"
)

// RunSpec holds the run-bounding flags shared by the simulator
// commands: a wall-clock timeout and a stall window for the watchdog.
type RunSpec struct {
	Timeout time.Duration // -timeout: cancel the run after this long (0: none)
	Stall   time.Duration // -stall: dump stacks after this long without progress (0: off)
}

// TimeoutFlags registers -timeout and -stall on fs and returns the
// spec they fill (valid after fs.Parse).
func TimeoutFlags(fs *flag.FlagSet) *RunSpec {
	var s RunSpec
	fs.DurationVar(&s.Timeout, "timeout", 0, "abort the run after this wall-clock duration (e.g. 10m; 0 = no limit)")
	fs.DurationVar(&s.Stall, "stall", 0, "dump goroutine stacks and phase timers after this long without progress (e.g. 2m; 0 = off)")
	return &s
}

// Context builds the run's root context: canceled by SIGINT/SIGTERM
// (so ^C aborts cleanly through the same path as a timeout) and by the
// -timeout deadline when one is set. The returned stop must be called
// on every exit path to release the signal handler.
func (s RunSpec) Context() (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if s.Timeout <= 0 {
		return ctx, stop
	}
	ctx, cancel := context.WithTimeout(ctx, s.Timeout)
	return ctx, func() { cancel(); stop() }
}

// Watchdog builds the run's stall watchdog on stderr, started; nil
// (a no-op) when -stall is unset. Callers Pet it on progress and defer
// Stop.
func (s RunSpec) Watchdog(label string, ph *obs.Phases) *obs.Watchdog {
	return obs.NewWatchdog(os.Stderr, label, s.Stall, ph).Start()
}

// AbortOnDone is the hard backstop behind cooperative cancellation:
// once ctx is done, the process gets grace to unwind through the
// ordinary error paths; if it is still alive after that — a simulation
// phase that does not check the context, a deadlocked pool — the
// backstop dumps every goroutine's stack to w and exits with status
// 124 (the timeout convention). Call it once after building the run
// context; it is inert until ctx fires and never triggers on a clean
// exit (process exit kills the goroutine).
func AbortOnDone(ctx context.Context, grace time.Duration, w io.Writer) {
	if grace <= 0 {
		grace = 30 * time.Second
	}
	go func() {
		<-ctx.Done()
		timer := time.NewTimer(grace)
		defer timer.Stop()
		<-timer.C
		buf := make([]byte, 1<<20)
		for {
			n := runtime.Stack(buf, true)
			if n < len(buf) {
				buf = buf[:n]
				break
			}
			buf = make([]byte, 2*len(buf))
		}
		fmt.Fprintf(w, "\n=== abort: run did not unwind within %s of cancellation (%v) ===\n%s\n",
			grace, ctx.Err(), buf)
		os.Exit(124)
	}()
}
