// Package synth generates synthetic memory-reference streams modelling
// parallel logic programming architectures other than KL1. The paper
// argues (Sections 1-2, citing Tick's Aurora study) that the PIM cache's
// optimizations carry over to WAM-based systems such as OR-parallel
// Prolog; these generators provide workloads with those architectures'
// characteristic access patterns so the claim can be tested by replaying
// them across cache configurations:
//
//   - SeqProlog: a sequential WAM — bursty heap structure creation,
//     LIFO environment locality, and backtracking that rewinds the heap
//     and rewrites reclaimed space (high write bandwidth, the paper's
//     motivation for copy-back).
//   - ORParallel: Aurora-like workers sharing a read-mostly program area,
//     binding privately, taking tasks from a locked shared queue, and
//     copying task state from other workers' caches.
//   - MessageRing: PEs exchanging two-word messages around a ring — the
//     pure RI scenario.
//
// Generators emit legal serialized streams: locks are acquired and
// released in program order and DW is issued only at fresh (never shared)
// block-aligned addresses, so replays satisfy the same software contracts
// the KL1 runtime guarantees.
package synth

import (
	"math/rand"

	"pimcache/internal/cache"
	"pimcache/internal/kl1/word"
	"pimcache/internal/mem"
	"pimcache/internal/trace"
)

// Config parameterizes a generator.
type Config struct {
	// Layout positions the storage areas (areas are used the same way as
	// by the KL1 runtime: heap for terms, goal for task records, comm
	// for messages).
	Layout mem.Layout
	// PEs is the number of processors (SeqProlog uses one).
	PEs int
	// Events is the approximate number of references to generate.
	Events int
	// Seed makes the stream reproducible.
	Seed int64
}

// DefaultConfig returns a moderate workload.
func DefaultConfig() Config {
	return Config{
		Layout: mem.Layout{InstWords: 16 << 10, HeapWords: 1 << 20,
			GoalWords: 128 << 10, SuspWords: 16 << 10, CommWords: 16 << 10},
		PEs:    8,
		Events: 200_000,
		Seed:   1,
	}
}

// builder accumulates a trace while tracking per-PE allocation frontiers
// so direct writes stay on fresh blocks.
type builder struct {
	tr     trace.Trace
	bounds mem.Bounds
	heap   []word.Addr // per-PE bump pointers
	heapHi []word.Addr
	hwm    []word.Addr // all-time high-water marks: only words above the
	// mark have never been touched and qualify for DW
}

func newBuilder(c Config) *builder {
	b := &builder{
		tr:     trace.Trace{PEs: c.PEs, Layout: c.Layout},
		bounds: c.Layout.Bounds(),
	}
	heapBase := b.bounds.HeapBase
	span := (b.bounds.GoalBase - heapBase) / word.Addr(c.PEs)
	for i := 0; i < c.PEs; i++ {
		lo := heapBase + word.Addr(i)*span
		b.heap = append(b.heap, lo)
		b.heapHi = append(b.heapHi, lo+span)
		b.hwm = append(b.hwm, lo)
	}
	return b
}

func (b *builder) emit(pe int, op cache.Op, a word.Addr) {
	b.tr.Refs = append(b.tr.Refs, trace.Ref{PE: uint8(pe), Op: op, Addr: a})
}

// alloc reserves n heap words for pe, wrapping to the segment base when
// it fills (the wrapped region is below the high-water mark, so DW no
// longer applies there).
func (b *builder) alloc(pe, n int) word.Addr {
	base := b.heap[pe]
	if base+word.Addr(n) >= b.heapHi[pe] {
		base = b.heapBase(pe)
		b.heap[pe] = base
	}
	b.heap[pe] += word.Addr(n)
	return base
}

func (b *builder) heapBase(pe int) word.Addr {
	span := (b.bounds.GoalBase - b.bounds.HeapBase) / word.Addr(len(b.heap))
	return b.bounds.HeapBase + word.Addr(pe)*span
}

// createTerm emits the writes building an n-word structure, using DW for
// never-touched words (above the high-water mark — the software contract
// that no cache can hold them) and W for reused space, and returns the
// structure's address.
func (b *builder) createTerm(pe, n int) word.Addr {
	a := b.alloc(pe, n)
	for i := 0; i < n; i++ {
		w := a + word.Addr(i)
		if w >= b.hwm[pe] {
			b.emit(pe, cache.OpDW, w)
		} else {
			b.emit(pe, cache.OpW, w)
		}
	}
	if end := a + word.Addr(n); end > b.hwm[pe] {
		b.hwm[pe] = end
	}
	return a
}

// SeqProlog generates a single-PE WAM-like stream: create structures on
// the heap, dereference recent terms, push/pop environment frames, and
// periodically backtrack — rewinding the allocation frontier and
// rewriting the reclaimed region (which is why DW cannot be used there:
// stale copies may exist, exactly the paper's block-boundary restriction).
func SeqProlog(c Config) *trace.Trace {
	c.PEs = 1
	b := newBuilder(c)
	rng := rand.New(rand.NewSource(c.Seed))
	var recent []word.Addr
	var frames []word.Addr
	envTop := b.bounds.GoalBase // use the goal area as the WAM local stack
	var choicePoints []word.Addr

	for len(b.tr.Refs) < c.Events {
		switch r := rng.Intn(100); {
		case r < 35: // build a structure
			n := 2 + rng.Intn(5)
			a := b.createTerm(0, n)
			recent = append(recent, a)
			if len(recent) > 64 {
				recent = recent[1:]
			}
		case r < 70: // dereference a recent term (temporal locality)
			if len(recent) == 0 {
				continue
			}
			a := recent[len(recent)-1-rng.Intn(min(len(recent), 8))]
			for i := 0; i < 1+rng.Intn(3); i++ {
				b.emit(0, cache.OpR, a+word.Addr(i))
			}
		case r < 85: // push an environment frame (LIFO)
			size := 3 + rng.Intn(4)
			for i := 0; i < size; i++ {
				b.emit(0, cache.OpW, envTop+word.Addr(i))
			}
			frames = append(frames, envTop)
			envTop += word.Addr(size)
		case r < 95: // return: read then pop the frame
			if len(frames) == 0 {
				continue
			}
			f := frames[len(frames)-1]
			frames = frames[:len(frames)-1]
			for a := f; a < envTop; a++ {
				b.emit(0, cache.OpR, a)
			}
			envTop = f
		default: // choice point / backtrack
			if len(choicePoints) == 0 || rng.Intn(2) == 0 {
				choicePoints = append(choicePoints, b.heap[0])
			} else {
				// Backtrack: rewind the heap. The reclaimed region is
				// below the high-water mark, so re-creations there use
				// plain W (stale cached copies may exist — the paper's
				// DW block-boundary restriction).
				b.heap[0] = choicePoints[len(choicePoints)-1]
				choicePoints = choicePoints[:len(choicePoints)-1]
			}
		}
	}
	return &b.tr
}

// ORParallel generates an Aurora-like multi-worker stream: a shared
// read-mostly "program" region, a locked shared task queue, private
// binding writes, and task-state copying between workers.
func ORParallel(c Config) *trace.Trace {
	b := newBuilder(c)
	rng := rand.New(rand.NewSource(c.Seed))
	program := b.bounds.InstBase // shared clauses: read-only region
	programWords := word.Addr(c.Layout.InstWords)
	queue := b.bounds.GoalBase // task queue: lock word + entries

	for len(b.tr.Refs) < c.Events {
		pe := rng.Intn(c.PEs)
		switch r := rng.Intn(100); {
		case r < 40: // clause lookup: shared read-mostly area
			a := program + word.Addr(rng.Intn(int(programWords)))
			b.emit(pe, cache.OpR, a)
		case r < 70: // private binding work: create + read own terms
			a := b.createTerm(pe, 2+rng.Intn(3))
			b.emit(pe, cache.OpR, a)
		case r < 85: // take a task from the locked shared queue
			slot := queue + word.Addr(rng.Intn(16))*4
			b.emit(pe, cache.OpLR, slot)
			b.emit(pe, cache.OpR, slot+1)
			b.emit(pe, cache.OpUW, slot)
		default: // copy task state published by another worker
			victim := rng.Intn(c.PEs)
			if victim == pe {
				continue
			}
			src := b.createTerm(victim, 4) // victim publishes
			for i := 0; i < 4; i++ {
				b.emit(pe, cache.OpR, src+word.Addr(i)) // worker copies in
			}
		}
	}
	return &b.tr
}

// MessageRing generates PEs passing two-word messages around a ring
// through the communication area, the read-invalidate scenario: each slot
// is read and immediately rewritten by the receiver.
func MessageRing(c Config) *trace.Trace {
	b := newBuilder(c)
	slot := func(pe int) word.Addr {
		return b.bounds.CommBase + word.Addr(pe*4)
	}
	for len(b.tr.Refs) < c.Events {
		for pe := 0; pe < c.PEs; pe++ {
			next := (pe + 1) % c.PEs
			// Send: write payload then status into the next PE's slot.
			b.emit(pe, cache.OpW, slot(next)+1)
			b.emit(pe, cache.OpW, slot(next))
			// Receive: RI the status (the block is about to be
			// rewritten), read the payload, reset the status.
			b.emit(next, cache.OpRI, slot(next))
			b.emit(next, cache.OpR, slot(next)+1)
			b.emit(next, cache.OpW, slot(next))
		}
	}
	return &b.tr
}
