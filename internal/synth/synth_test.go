package synth

import (
	"bytes"
	"testing"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/machine"
	"pimcache/internal/mem"
	"pimcache/internal/trace"
)

func replay(t *testing.T, tr *trace.Trace, cfg Config, ccfg cache.Config) (bus.Stats, cache.Stats) {
	t.Helper()
	m := machine.New(machine.Config{
		PEs: tr.PEs, Layout: cfg.Layout, Cache: ccfg, Timing: bus.DefaultTiming(),
	})
	ports := make([]mem.Accessor, tr.PEs)
	for i := range ports {
		ports[i] = m.Port(i)
	}
	if err := trace.Replay(tr, ports); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return m.BusStats(), m.CacheStats()
}

func testCache(opts cache.Options) cache.Config {
	return cache.Config{
		SizeWords: 4 << 10, BlockWords: 4, Ways: 4, LockEntries: 4, Options: opts,
	}
}

func smallConfig(pes int) Config {
	c := DefaultConfig()
	c.PEs = pes
	c.Events = 30_000
	return c
}

func TestGeneratorsAreDeterministic(t *testing.T) {
	c := smallConfig(4)
	for name, gen := range map[string]func(Config) *trace.Trace{
		"seqprolog": SeqProlog, "orparallel": ORParallel, "ring": MessageRing,
	} {
		a, b := gen(c), gen(c)
		if a.Len() != b.Len() {
			t.Fatalf("%s: lengths differ: %d vs %d", name, a.Len(), b.Len())
		}
		for i := range a.Refs {
			if a.Refs[i] != b.Refs[i] {
				t.Fatalf("%s: ref %d differs", name, i)
			}
		}
		if a.Len() < c.Events {
			t.Errorf("%s: generated only %d of %d events", name, a.Len(), c.Events)
		}
	}
}

func TestGeneratedStreamsReplayCleanly(t *testing.T) {
	c := smallConfig(4)
	for name, tr := range map[string]*trace.Trace{
		"seqprolog":  SeqProlog(c),
		"orparallel": ORParallel(c),
		"ring":       MessageRing(c),
	} {
		bs, cs := replay(t, tr, c, testCache(cache.OptionsAll()))
		if bs.TotalCycles == 0 {
			t.Errorf("%s: no bus traffic at all", name)
		}
		if cs.TotalRefs() == 0 {
			t.Errorf("%s: no references", name)
		}
	}
}

// TestSeqPrologBenefitsFromDW checks the paper's claim (via Tick [19])
// that sequential Prolog's high write bandwidth benefits from
// direct-write allocation.
func TestSeqPrologBenefitsFromDW(t *testing.T) {
	c := smallConfig(1)
	c.Events = 60_000
	tr := SeqProlog(c)
	none, _ := replay(t, tr, c, testCache(cache.OptionsNone()))
	var heapOpts cache.Options
	heapOpts.PerArea[mem.AreaHeap] = cache.OptDW
	opt, optCS := replay(t, tr, c, testCache(heapOpts))
	if opt.TotalCycles >= none.TotalCycles {
		t.Errorf("DW did not help sequential Prolog: %d >= %d",
			opt.TotalCycles, none.TotalCycles)
	}
	if optCS.DWApplied == 0 {
		t.Error("no direct writes applied")
	}
	t.Logf("seqprolog: none=%d heap-DW=%d (%.2fx)",
		none.TotalCycles, opt.TotalCycles,
		float64(opt.TotalCycles)/float64(none.TotalCycles))
}

// TestORParallelSharing checks the Aurora-like stream exercises
// cache-to-cache sharing and locking.
func TestORParallelSharing(t *testing.T) {
	c := smallConfig(8)
	tr := ORParallel(c)
	bs, cs := replay(t, tr, c, testCache(cache.OptionsAll()))
	if bs.CountByPattern[bus.PatC2C]+bs.CountByPattern[bus.PatC2CSwapOut] == 0 {
		t.Error("no cache-to-cache transfers in an 8-worker OR-parallel stream")
	}
	if cs.LRTotal() == 0 {
		t.Error("no lock operations")
	}
	// The shared task queue should make some unlocks... conflicts are
	// impossible in a serialized replay, so all unlocks are no-waiter.
	if cs.UnlockNoWaiter == 0 {
		t.Error("no unlocks recorded")
	}
}

// TestMessageRingRIAvoidsInvalidations reproduces the RI rationale on
// the pure messaging workload.
func TestMessageRingRIAvoidsInvalidations(t *testing.T) {
	c := smallConfig(4)
	tr := MessageRing(c)
	var commRI cache.Options
	commRI.PerArea[mem.AreaComm] = cache.OptRI
	none, _ := replay(t, tr, c, testCache(cache.OptionsNone()))
	ri, riCS := replay(t, tr, c, testCache(commRI))
	if ri.Commands[bus.CmdI] >= none.Commands[bus.CmdI] {
		t.Errorf("RI did not avoid invalidations: %d >= %d",
			ri.Commands[bus.CmdI], none.Commands[bus.CmdI])
	}
	if riCS.RIApplied == 0 {
		t.Error("RI never applied")
	}
	t.Logf("ring: I commands none=%d ri=%d", none.Commands[bus.CmdI], ri.Commands[bus.CmdI])
}

func TestSerializationOfSyntheticTrace(t *testing.T) {
	c := smallConfig(2)
	c.Events = 5000
	tr := MessageRing(c)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("round trip lost refs: %d vs %d", got.Len(), tr.Len())
	}
}
