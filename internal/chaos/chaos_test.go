package chaos

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func payload(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)
	}
	return b
}

func TestReadErrorAtOffset(t *testing.T) {
	src := payload(100)
	r := NewReader(bytes.NewReader(src), Fault{Kind: ReadError, Offset: 37})
	got, err := io.ReadAll(r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("error %v, want ErrInjected", err)
	}
	if !bytes.Equal(got, src[:37]) {
		t.Fatalf("delivered %d bytes before the fault, want exactly 37 clean ones", len(got))
	}
}

func TestTruncateAtOffset(t *testing.T) {
	src := payload(100)
	r := NewReader(bytes.NewReader(src), Fault{Kind: Truncate, Offset: 64})
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("truncation must look like clean EOF to ReadAll, got %v", err)
	}
	if !bytes.Equal(got, src[:64]) {
		t.Fatalf("got %d bytes, want the 64-byte prefix", len(got))
	}
}

func TestShortReadDeliversEverythingEventually(t *testing.T) {
	src := payload(100)
	r := NewReader(bytes.NewReader(src), Fault{Kind: ShortRead, Offset: 10})
	// The read crossing offset 10 is cut short, but retries (as
	// io.ReadFull issues) must still drain the whole stream intact.
	got := make([]byte, 100)
	if _, err := io.ReadFull(r, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("short read corrupted the stream")
	}
}

func TestFlipBitFlipsExactlyOne(t *testing.T) {
	src := payload(100)
	r := NewReader(bytes.NewReader(src), Fault{Kind: FlipBit, Offset: 50, Bit: 3})
	got, err := io.ReadAll(r)
	if err != nil || len(got) != 100 {
		t.Fatalf("read: %v (%d bytes)", err, len(got))
	}
	for i := range got {
		want := src[i]
		if i == 50 {
			want ^= 1 << 3
		}
		if got[i] != want {
			t.Fatalf("byte %d: got %#x want %#x", i, got[i], want)
		}
	}
}

func TestTornWritePersistsPrefixThenDies(t *testing.T) {
	var sink bytes.Buffer
	w := NewWriter(&sink, Fault{Kind: TornWrite, Offset: 10})
	n, err := w.Write(payload(6))
	if n != 6 || err != nil {
		t.Fatalf("pre-fault write: n=%d err=%v", n, err)
	}
	n, err = w.Write(payload(6))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("crossing write: err=%v, want ErrInjected", err)
	}
	if n != 4 {
		t.Fatalf("crossing write persisted %d bytes, want the 4-byte prefix", n)
	}
	if sink.Len() != 10 {
		t.Fatalf("sink has %d bytes, want exactly 10 (the torn prefix)", sink.Len())
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after death: %v, want ErrInjected", err)
	}
}

func TestPlanDeterministicAndInBounds(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		a, b := Plan(seed, 1000), Plan(seed, 1000)
		if a != b {
			t.Fatalf("seed %d: plan not deterministic: %v vs %v", seed, a, b)
		}
		if a.Offset < 0 || a.Offset >= 1000 {
			t.Fatalf("seed %d: offset %d out of [0,1000)", seed, a.Offset)
		}
		r := PlanReads(seed, 1000)
		if r.Kind > FlipBit {
			t.Fatalf("seed %d: PlanReads produced writer fault %v", seed, r)
		}
	}
}

func TestKillAfter(t *testing.T) {
	kp := KillAfter(3)
	for i := 0; i < 2; i++ {
		if err := kp(); err != nil {
			t.Fatalf("call %d: %v", i+1, err)
		}
	}
	if err := kp(); !errors.Is(err, ErrKilled) {
		t.Fatalf("third call: %v, want ErrKilled", err)
	}
}
