// Package chaos injects deterministic I/O faults into readers and
// writers, so the toolchain's durability claims are tested instead of
// asserted. Every fault is a (kind, byte offset) pair: the wrapped
// stream behaves normally up to the offset and then misbehaves in the
// chosen way — an injected error, a short read, an early EOF
// (truncation), a flipped bit (silent corruption), or a torn write
// that persists a prefix and then dies, as a crash mid-write does.
//
// Faults are plain data derived from a seed (Plan), so every failing
// schedule is reproducible from one integer. The matrix tests in
// internal/trace and internal/bench drive the artifact formats and
// the resume path through these wrappers and assert the global
// robustness property: every injected fault yields a clean labeled
// error or a bit-identical recovery — never silent corruption, wrong
// statistics, or a hang.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
)

// ErrInjected is the sentinel wrapped by every injected I/O error;
// detect it with errors.Is.
var ErrInjected = errors.New("chaos: injected I/O error")

// ErrKilled is returned by kill-points (see KillAfter): the simulated
// process death at a chosen execution point.
var ErrKilled = errors.New("chaos: killed at kill-point")

// Kind enumerates the injectable fault classes.
type Kind uint8

const (
	// ReadError: Read returns an injected error once the offset is
	// reached; bytes before the offset are delivered normally.
	ReadError Kind = iota
	// ShortRead: the read crossing the offset delivers fewer bytes
	// than asked, without an error — legal io.Reader behaviour that
	// chunked decoders must tolerate. One-shot, then the stream is
	// healthy again.
	ShortRead
	// Truncate: the stream ends (io.EOF) at the offset, as a torn
	// final chunk on disk does.
	Truncate
	// FlipBit: one bit of the byte at the offset is flipped, silently.
	// Checksummed formats must detect this; it is the fault class that
	// motivates them.
	FlipBit
	// WriteError: Write returns an injected error at the offset; the
	// prefix reaches the underlying writer. The writer stays dead
	// afterwards.
	WriteError
	// TornWrite: like WriteError, modeling a crash mid-write — the
	// prefix is durable, everything after is lost, and every later
	// Write fails too.
	TornWrite
	numKinds
)

func (k Kind) String() string {
	switch k {
	case ReadError:
		return "read-error"
	case ShortRead:
		return "short-read"
	case Truncate:
		return "truncate"
	case FlipBit:
		return "flip-bit"
	case WriteError:
		return "write-error"
	case TornWrite:
		return "torn-write"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Fault is one injectable misbehaviour at a byte offset. Bit selects
// the flipped bit for FlipBit (taken mod 8).
type Fault struct {
	Kind   Kind
	Offset int64
	Bit    uint8
}

func (f Fault) String() string {
	return fmt.Sprintf("%s@%d", f.Kind, f.Offset)
}

// reads reports whether the fault applies to a reader.
func (f Fault) reads() bool { return f.Kind <= FlipBit }

// Plan derives one reproducible fault for a stream of size bytes from
// a seed. Consecutive seeds cover the kind × offset-region space:
// offsets cluster on the structurally interesting regions (the first
// bytes, where magics and headers live; chunk-frame granularity in
// the middle; the final bytes, where torn tails hide) as well as
// uniform positions. Size 0 streams get offset 0.
func Plan(seed int64, size int64) Fault {
	rng := rand.New(rand.NewSource(seed))
	f := Fault{
		Kind: Kind(rng.Intn(int(numKinds))),
		Bit:  uint8(rng.Intn(8)),
	}
	if size <= 0 {
		return f
	}
	switch rng.Intn(4) {
	case 0: // head: magic + header bytes
		f.Offset = rng.Int63n(min64(48, size))
	case 1: // tail: torn final chunk territory
		f.Offset = size - 1 - rng.Int63n(min64(64, size))
	default: // anywhere
		f.Offset = rng.Int63n(size)
	}
	if f.Offset < 0 {
		f.Offset = 0
	}
	return f
}

// PlanReads is Plan restricted to reader faults — for matrices that
// exercise a decode path only.
func PlanReads(seed int64, size int64) Fault {
	f := Plan(seed, size)
	f.Kind = Kind(uint8(f.Kind) % uint8(FlipBit+1))
	return f
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// KillAfter returns a kill-point: a function that succeeds n-1 times
// and returns ErrKilled on the nth call. Wire it into a checkpoint
// hook to simulate a process dying right after (or between) durable
// checkpoints.
func KillAfter(n int) func() error {
	calls := 0
	return func() error {
		calls++
		if calls >= n {
			return fmt.Errorf("%w (call %d)", ErrKilled, calls)
		}
		return nil
	}
}

// Reader wraps r, injecting f. The zero Fault (ReadError at offset 0)
// fails the first read.
type Reader struct {
	r     io.Reader
	f     Fault
	off   int64
	armed bool // one-shot faults (ShortRead) disarm after firing
}

// NewReader wraps r with fault f; f must be a reader-side kind.
func NewReader(r io.Reader, f Fault) *Reader {
	if !f.reads() {
		panic(fmt.Sprintf("chaos: %s is not a reader fault", f.Kind))
	}
	return &Reader{r: r, f: f, armed: true}
}

func (c *Reader) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return c.r.Read(p)
	}
	rem := c.f.Offset - c.off // bytes until the fault site
	switch c.f.Kind {
	case ReadError:
		if rem <= 0 {
			return 0, fmt.Errorf("%w (read at byte offset %d)", ErrInjected, c.off)
		}
		if int64(len(p)) > rem {
			p = p[:rem]
		}
	case Truncate:
		if rem <= 0 {
			return 0, io.EOF
		}
		if int64(len(p)) > rem {
			p = p[:rem]
		}
	case ShortRead:
		if c.armed && rem <= 0 {
			// The read that would cross (or start at) the offset
			// delivers a single byte.
			c.armed = false
			p = p[:1]
		}
	}
	n, err := c.r.Read(p)
	if c.f.Kind == FlipBit && c.armed {
		if i := c.f.Offset - c.off; i >= 0 && i < int64(n) {
			p[i] ^= 1 << (c.f.Bit % 8)
			c.armed = false
		}
	}
	c.off += int64(n)
	return n, err
}

// Writer wraps w, injecting f. Once the fault fires, every later
// Write fails too — a dead process does not come back.
type Writer struct {
	w    io.Writer
	f    Fault
	off  int64
	dead bool
}

// NewWriter wraps w with fault f; f must be a writer-side kind.
func NewWriter(w io.Writer, f Fault) *Writer {
	if f.reads() {
		panic(fmt.Sprintf("chaos: %s is not a writer fault", f.Kind))
	}
	return &Writer{w: w, f: f}
}

func (c *Writer) Write(p []byte) (int, error) {
	if c.dead {
		return 0, fmt.Errorf("%w (write after fault, byte offset %d)", ErrInjected, c.off)
	}
	rem := c.f.Offset - c.off
	if rem >= int64(len(p)) {
		n, err := c.w.Write(p)
		c.off += int64(n)
		return n, err
	}
	// The fault fires inside this write: persist the prefix (a torn
	// write's durable half), then die.
	c.dead = true
	n := 0
	if rem > 0 {
		var err error
		n, err = c.w.Write(p[:rem])
		c.off += int64(n)
		if err != nil {
			return n, err
		}
	}
	return n, fmt.Errorf("%w (%s at byte offset %d)", ErrInjected, c.f.Kind, c.f.Offset)
}
