// Package par provides the bounded worker pool that backs every parallel
// phase of the evaluation harness: the benchmark harness fans live runs
// and trace replays out across it (internal/bench), and the protocol
// table derivation fans scenarios out across it (internal/cache via
// cmd/pimtable).
//
// The pool bounds *concurrency*, not submission: Go never blocks, so a
// running task may safely submit follow-up tasks (the record→replay job
// graph depends on this — a replay job is only submitted once the trace
// it consumes exists, so no worker ever sits blocked waiting for an
// upstream result). After the first task error the pool cancels: queued
// tasks are dropped without running, and Wait returns that first error.
package par

import (
	"context"
	"runtime"
	"sync"
)

// Jobs resolves a job-count knob: n if positive, else runtime.NumCPU().
func Jobs(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// Pool runs submitted tasks with at most a fixed number executing at
// once. The zero value is not usable; call New or NewCtx.
type Pool struct {
	sem chan struct{}
	wg  sync.WaitGroup
	ctx context.Context

	mu       sync.Mutex
	err      error
	canceled bool
}

// New returns a pool executing at most Jobs(jobs) tasks concurrently.
func New(jobs int) *Pool {
	return NewCtx(context.Background(), jobs)
}

// NewCtx is New bound to a context: once ctx is done, tasks that have
// not yet started are dropped without running, and Wait returns
// ctx.Err() (unless a task failed first). Running tasks are not
// interrupted — simulations check the context themselves at their own
// safe points.
func NewCtx(ctx context.Context, jobs int) *Pool {
	return &Pool{sem: make(chan struct{}, Jobs(jobs)), ctx: ctx}
}

// Go submits a task. It never blocks; the task waits for a free worker
// slot. Tasks submitted after a failure, a Cancel, or context
// cancellation are dropped.
func (p *Pool) Go(task func() error) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.sem <- struct{}{}
		defer func() { <-p.sem }()
		if err := p.ctx.Err(); err != nil {
			p.mu.Lock()
			if p.err == nil {
				p.err = err
			}
			p.canceled = true
			p.mu.Unlock()
			return
		}
		p.mu.Lock()
		dead := p.canceled
		p.mu.Unlock()
		if dead {
			return
		}
		if err := task(); err != nil {
			p.mu.Lock()
			if p.err == nil {
				p.err = err
			}
			p.canceled = true
			p.mu.Unlock()
		}
	}()
}

// Cancel drops every task that has not yet started. Running tasks finish.
func (p *Pool) Cancel() {
	p.mu.Lock()
	p.canceled = true
	p.mu.Unlock()
}

// Wait blocks until every submitted task has finished or been dropped,
// and returns the first task error. The pool must not be reused after
// Wait returns if any task could still submit more work.
func (p *Pool) Wait() error {
	p.wg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}
