package par

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestJobs(t *testing.T) {
	if Jobs(3) != 3 {
		t.Error("explicit job count not honoured")
	}
	if Jobs(0) < 1 || Jobs(-1) < 1 {
		t.Error("default job count must be at least one")
	}
}

func TestPoolRunsEverything(t *testing.T) {
	p := New(4)
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		p.Go(func() error { n.Add(1); return nil })
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 100 {
		t.Errorf("ran %d tasks, want 100", n.Load())
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const width = 3
	p := New(width)
	var cur, max atomic.Int64
	var mu sync.Mutex
	for i := 0; i < 50; i++ {
		p.Go(func() error {
			c := cur.Add(1)
			mu.Lock()
			if c > max.Load() {
				max.Store(c)
			}
			mu.Unlock()
			cur.Add(-1)
			return nil
		})
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if m := max.Load(); m > width {
		t.Errorf("observed %d concurrent tasks, pool width %d", m, width)
	}
}

func TestPoolErrorReportedAndStopsLaterWork(t *testing.T) {
	p := New(2)
	boom := errors.New("boom")
	p.Go(func() error { return boom })
	p.Go(func() error { return nil })
	if err := p.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want boom", err)
	}
	// After a failure the pool is canceled: new submissions are dropped.
	var ran atomic.Int64
	p.Go(func() error { ran.Add(1); return nil })
	if err := p.Wait(); !errors.Is(err, boom) {
		t.Fatalf("second Wait = %v, want boom", err)
	}
	if ran.Load() != 0 {
		t.Error("task submitted after failure still ran")
	}
}

func TestPoolTasksMaySubmitTasks(t *testing.T) {
	// A width-1 pool must not deadlock when a running task submits
	// follow-up work (Go must not block on the worker slot).
	p := New(1)
	var n atomic.Int64
	p.Go(func() error {
		for i := 0; i < 5; i++ {
			p.Go(func() error { n.Add(1); return nil })
		}
		return nil
	})
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 5 {
		t.Errorf("follow-up tasks ran %d times, want 5", n.Load())
	}
}

func TestPoolCancelDropsPending(t *testing.T) {
	p := New(1)
	release := make(chan struct{})
	var ran atomic.Int64
	p.Go(func() error { <-release; return nil })
	for i := 0; i < 10; i++ {
		p.Go(func() error { ran.Add(1); return nil })
	}
	p.Cancel()
	close(release)
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d pending tasks ran after Cancel", ran.Load())
	}
}

func TestPoolCtxCancelDropsPendingAndReportsErr(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := NewCtx(ctx, 1)
	release := make(chan struct{})
	var ran atomic.Int64
	p.Go(func() error { <-release; return nil })
	for i := 0; i < 10; i++ {
		p.Go(func() error { ran.Add(1); return nil })
	}
	cancel()
	close(release)
	if err := p.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d pending tasks ran after context cancellation", ran.Load())
	}
}

func TestPoolCtxTaskErrorWins(t *testing.T) {
	// A task failure before cancellation is the error Wait reports,
	// not the later context error.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := NewCtx(ctx, 2)
	boom := errors.New("boom")
	p.Go(func() error { return boom })
	if err := p.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want boom", err)
	}
}
