package trace

import (
	"bytes"
	"testing"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/kl1/compile"
	"pimcache/internal/kl1/emulator"
	"pimcache/internal/kl1/parser"
	"pimcache/internal/kl1/word"
	"pimcache/internal/machine"
	"pimcache/internal/mem"
)

func TestRecordingPortForwardsAndRecords(t *testing.T) {
	layout := mem.Layout{InstWords: 64, HeapWords: 256, GoalWords: 64, SuspWords: 32, CommWords: 32}
	m := mem.New(layout)
	rec := NewRecorder(1, layout)
	port := rec.Port(0, mem.DirectAccessor{M: m})
	a := m.Bounds().HeapBase
	port.Write(a, word.Int(7))
	if got := port.Read(a); got.IntVal() != 7 {
		t.Fatalf("forwarding broken: %v", got)
	}
	port.DirectWrite(a+1, word.Int(8))
	port.ExclusiveRead(a + 1)
	port.ReadPurge(a + 2)
	port.ReadInvalidate(a + 3)
	if _, ok := port.LockRead(a); !ok {
		t.Fatal("LockRead failed")
	}
	port.UnlockWrite(a, word.Int(9))
	tr := rec.Trace()
	wantOps := []cache.Op{cache.OpW, cache.OpR, cache.OpDW, cache.OpER,
		cache.OpRP, cache.OpRI, cache.OpLR, cache.OpUW}
	if tr.Len() != len(wantOps) {
		t.Fatalf("recorded %d refs, want %d", tr.Len(), len(wantOps))
	}
	for i, op := range wantOps {
		if tr.Refs[i].Op != op {
			t.Errorf("ref %d op = %v, want %v", i, tr.Refs[i].Op, op)
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	tr := &Trace{PEs: 4, Layout: mem.Layout{InstWords: 1, HeapWords: 2, GoalWords: 3, SuspWords: 4, CommWords: 5}}
	for i := 0; i < 1000; i++ {
		tr.Refs = append(tr.Refs, Ref{
			PE:   uint8(i % 4),
			Op:   cache.Op(i % int(cache.NumOps)),
			Addr: word.Addr(i * 37),
		})
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.PEs != tr.PEs || got.Len() != tr.Len() || got.Layout != tr.Layout {
		t.Fatalf("header mismatch: %d/%d %+v", got.PEs, got.Len(), got.Layout)
	}
	for i := range tr.Refs {
		if got.Refs[i] != tr.Refs[i] {
			t.Fatalf("ref %d: %+v != %+v", i, got.Refs[i], tr.Refs[i])
		}
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("NOTATRACE!\nxxxx")); err == nil {
		t.Error("bad magic accepted")
	}
}

// largeSyntheticTrace builds a deterministic stream big enough to span
// many decode chunks, with addresses exercising all four on-disk bytes.
func largeSyntheticTrace(refs int) *Trace {
	tr := &Trace{PEs: 16, Layout: mem.Layout{InstWords: 1, HeapWords: 2, GoalWords: 3, SuspWords: 4, CommWords: 5}}
	tr.Refs = make([]Ref, refs)
	for i := range tr.Refs {
		tr.Refs[i] = Ref{
			PE:   uint8(i % 16),
			Op:   cache.Op(i % int(cache.NumOps)),
			Addr: word.Addr(uint32(i) * 2654435761), // Fibonacci hashing: hits every byte
		}
	}
	return tr
}

// TestLargeSerializationRoundTrip round-trips a stream that spans many
// read chunks, including a length deliberately not a multiple of the
// chunk size, so the chunked decoder's tail handling is covered.
func TestLargeSerializationRoundTrip(t *testing.T) {
	tr := largeSyntheticTrace(refsPerChunk*3 + 17)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.PEs != tr.PEs || got.Len() != tr.Len() || got.Layout != tr.Layout {
		t.Fatalf("header mismatch: %d/%d %+v", got.PEs, got.Len(), got.Layout)
	}
	for i := range tr.Refs {
		if got.Refs[i] != tr.Refs[i] {
			t.Fatalf("ref %d: %+v != %+v", i, got.Refs[i], tr.Refs[i])
		}
	}
}

// TestReadRejectsTruncatedStream checks the chunked decoder still reports
// a stream cut off mid-chunk instead of returning a short trace.
func TestReadRejectsTruncatedStream(t *testing.T) {
	tr := largeSyntheticTrace(refsPerChunk + 100)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	if _, err := Read(bytes.NewReader(cut)); err == nil {
		t.Error("truncated stream accepted")
	}
}

// TestAddrEncodable pins the Write-side truncation guard: refs are stored
// as four address bytes, so anything above 32 bits must be rejected, not
// silently wrapped. word.Addr is currently 32 bits wide — no legal Addr
// can trip the guard — so the boundary is tested on the helper directly;
// Write routes every address through it.
func TestAddrEncodable(t *testing.T) {
	if !addrEncodable(0) || !addrEncodable(0xFFFFFFFF) {
		t.Error("in-range address rejected")
	}
	if addrEncodable(1 << 32) {
		t.Error("33-bit address accepted: Write would truncate it on disk")
	}
	if addrEncodable(^uint64(0)) {
		t.Error("64-bit address accepted")
	}
	if !addrEncodable(uint64(word.Addr(0)) - 0) { // the conversion Write uses
		t.Error("zero Addr rejected")
	}
}

// BenchmarkTraceDecode measures Read on a large in-memory stream — the
// chunked decoder's target workload.
func BenchmarkTraceDecode(b *testing.B) {
	tr := largeSyntheticTrace(1 << 20)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		b.Fatalf("Write: %v", err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(raw)); err != nil {
			b.Fatalf("Read: %v", err)
		}
	}
}

// BenchmarkTraceEncode is the matching Write benchmark.
func BenchmarkTraceEncode(b *testing.B) {
	tr := largeSyntheticTrace(1 << 20)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		b.Fatalf("Write: %v", err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := tr.Write(&buf); err != nil {
			b.Fatalf("Write: %v", err)
		}
	}
}

// traceCluster runs an FGHC program with recording ports and returns both
// the live machine stats and the trace.
func traceCluster(t *testing.T, src string, pes int, opts cache.Options) (*machine.Machine, *Trace) {
	t.Helper()
	mcfg := machine.Config{
		PEs: pes,
		Layout: mem.Layout{InstWords: 16 << 10, HeapWords: 256 << 10,
			GoalWords: 32 << 10, SuspWords: 8 << 10, CommWords: 4 << 10},
		Cache: cache.Config{SizeWords: 1 << 10, BlockWords: 4, Ways: 4,
			LockEntries: 4, Options: opts, VerifyDW: true},
		Timing: bus.DefaultTiming(),
	}
	m := machine.New(mcfg)
	img := compileSrc(t, src)
	sh, err := emulator.NewShared(img, m.Memory(), pes, emulator.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(pes, mcfg.Layout)
	for i := 0; i < pes; i++ {
		e, err := emulator.NewEngine(sh, i, rec.Port(i, m.Port(i)))
		if err != nil {
			t.Fatal(err)
		}
		m.Attach(i, e)
	}
	res := m.Run(10_000_000)
	if res.Failed || res.HitStepLimit {
		t.Fatalf("live run failed: %+v", res)
	}
	return m, rec.Trace()
}

const testProgram = `
main :- true | produce(30, S), consume(S, 0, R), println(R).
produce(0, S) :- true | S = [].
produce(N, S) :- N > 0 | S = [N|S1], N1 := N - 1, produce(N1, S1).
consume([], Acc, R) :- true | R = Acc.
consume([H|T], Acc, R) :- true | A1 := Acc + H, consume(T, A1, R).
`

// TestReplayReproducesLiveRun is the key property: replaying the trace
// against an identically configured cache stack produces identical bus
// statistics.
func TestReplayReproducesLiveRun(t *testing.T) {
	opts := cache.OptionsAll()
	liveMachine, tr := traceCluster(t, testProgram, 2, opts)
	if tr.Len() == 0 {
		t.Fatal("empty trace")
	}

	replayMachine := machine.New(liveMachine.Config())
	ports := make([]mem.Accessor, 2)
	for i := range ports {
		ports[i] = replayMachine.Port(i)
	}
	if err := Replay(tr, ports); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	live, rep := liveMachine.BusStats(), replayMachine.BusStats()
	if live.TotalCycles != rep.TotalCycles {
		t.Errorf("bus cycles: live %d, replay %d", live.TotalCycles, rep.TotalCycles)
	}
	for p := bus.Pattern(0); p < bus.NumPatterns; p++ {
		if live.CountByPattern[p] != rep.CountByPattern[p] {
			t.Errorf("pattern %v: live %d, replay %d", p,
				live.CountByPattern[p], rep.CountByPattern[p])
		}
	}
	liveCS, repCS := liveMachine.CacheStats(), replayMachine.CacheStats()
	if liveCS.MissRatio() != repCS.MissRatio() {
		t.Errorf("miss ratio: live %v, replay %v", liveCS.MissRatio(), repCS.MissRatio())
	}
}

// TestReplayAcrossConfigs replays one trace against several cache
// configurations, checking the expected qualitative ordering.
func TestReplayAcrossConfigs(t *testing.T) {
	_, tr := traceCluster(t, testProgram, 2, cache.OptionsAll())

	cycles := func(opts cache.Options, blockWords, sizeWords int) uint64 {
		mcfg := machine.Config{
			PEs: 2,
			Layout: mem.Layout{InstWords: 16 << 10, HeapWords: 256 << 10,
				GoalWords: 32 << 10, SuspWords: 8 << 10, CommWords: 4 << 10},
			Cache: cache.Config{SizeWords: sizeWords, BlockWords: blockWords,
				Ways: 4, LockEntries: 4, Options: opts},
			Timing: bus.DefaultTiming(),
		}
		m := machine.New(mcfg)
		ports := []mem.Accessor{m.Port(0), m.Port(1)}
		if err := Replay(tr, ports); err != nil {
			t.Fatalf("Replay: %v", err)
		}
		return m.BusStats().TotalCycles
	}

	all := cycles(cache.OptionsAll(), 4, 1<<10)
	none := cycles(cache.OptionsNone(), 4, 1<<10)
	if all >= none {
		t.Errorf("optimizations did not reduce traffic: all=%d none=%d", all, none)
	}
	big := cycles(cache.OptionsAll(), 4, 4<<10)
	if big > all {
		t.Errorf("larger cache increased traffic: %d > %d", big, all)
	}
}

func compileSrc(t *testing.T, src string) *compile.Image {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	img, err := compile.Compile(prog, word.NewTable())
	if err != nil {
		t.Fatal(err)
	}
	return img
}
