package trace

import (
	"testing"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/machine"
	"pimcache/internal/mem"
)

// opaquePort hides a cache port behind an embedding so cachePorts cannot
// devirtualize it, forcing ReplayRange onto the generic mem.Accessor
// path.
type opaquePort struct{ mem.Accessor }

// TestReplayGenericParity pins the devirtualized fast path against the
// generic accessor path: the switch bodies in replayRefs and
// replayGenericRefs must dispatch every operation identically, so a
// replay of the same trace through raw caches and through wrapped ports
// lands on bit-identical statistics.
func TestReplayGenericParity(t *testing.T) {
	_, tr := traceCluster(t, testProgram, 2, cache.OptionsAll())
	if tr.Len() == 0 {
		t.Fatal("empty trace")
	}

	// Confirm the wrapped run actually takes the generic path.
	if _, ok := cachePorts(2, []mem.Accessor{opaquePort{nil}, opaquePort{nil}}); ok {
		t.Fatal("opaque ports devirtualized; parity test is vacuous")
	}

	replay := func(wrap bool) (bus.Stats, cache.Stats) {
		mcfg := machine.Config{
			PEs: tr.PEs, Layout: tr.Layout,
			Cache: cache.Config{SizeWords: 1 << 10, BlockWords: 4, Ways: 4,
				LockEntries: 4, Options: cache.OptionsAll(), VerifyDW: true},
			Timing: bus.DefaultTiming(),
		}
		m := machine.New(mcfg)
		ports := make([]mem.Accessor, tr.PEs)
		for i := range ports {
			if wrap {
				ports[i] = opaquePort{m.Port(i)}
			} else {
				ports[i] = m.Port(i)
			}
		}
		if err := Replay(tr, ports); err != nil {
			t.Fatalf("wrap=%v: %v", wrap, err)
		}
		return m.BusStats(), m.CacheStats()
	}

	fastBus, fastCache := replay(false)
	genBus, genCache := replay(true)
	if fastBus != genBus {
		t.Errorf("bus stats diverge\nfast:    %+v\ngeneric: %+v", fastBus, genBus)
	}
	if fastCache != genCache {
		t.Errorf("cache stats diverge\nfast:    %+v\ngeneric: %+v", fastCache, genCache)
	}
}
