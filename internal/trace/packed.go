package trace

import (
	"fmt"

	"pimcache/internal/cache"
	"pimcache/internal/kl1/word"
	"pimcache/internal/mem"
)

// Packed is a pre-decoded reference stream: one uint64 per reference
// holding the address (bits 0-31), PE (32-39), op (40-47) and the
// address's area class (48-55). The area classification depends only on
// the trace's layout, so it is computed once here and reused by every
// replay of every sweep configuration — the replay loop walks a flat
// word stream and never runs the per-reference AreaOf branch chain
// (cache.Apply consumes the precomputed class directly).
type Packed struct {
	PEs    int
	Layout mem.Layout
	refs   []uint64
}

const (
	packedPEShift   = 32
	packedOpShift   = 40
	packedAreaShift = 48
)

// Pack pre-decodes t. It validates each reference's PE and op — the
// packed replay loop indexes caches and dispatches ops without
// rechecking them.
func Pack(t *Trace) (*Packed, error) {
	bounds := t.Layout.Bounds()
	p := &Packed{PEs: t.PEs, Layout: t.Layout, refs: make([]uint64, len(t.Refs))}
	for i := range t.Refs {
		r := &t.Refs[i]
		if int(r.PE) >= t.PEs {
			return nil, fmt.Errorf("trace: ref %d: PE %d out of range (trace has %d PEs)", i, r.PE, t.PEs)
		}
		if r.Op >= cache.NumOps {
			return nil, fmt.Errorf("trace: ref %d: unknown op %d", i, r.Op)
		}
		p.refs[i] = uint64(uint32(r.Addr)) |
			uint64(r.PE)<<packedPEShift |
			uint64(r.Op)<<packedOpShift |
			uint64(bounds.AreaOf(r.Addr))<<packedAreaShift
	}
	return p, nil
}

// Len reports the number of references.
func (p *Packed) Len() int { return len(p.refs) }

// Replay drives the packed stream through the caches (one per PE), as
// trace.Replay does for []Ref but with the area class pre-resolved.
func (p *Packed) Replay(caches []*cache.Cache) error {
	return p.ReplayRange(caches, 0, len(p.refs))
}

// ReplayRange replays the half-open packed range [lo, hi).
func (p *Packed) ReplayRange(caches []*cache.Cache, lo, hi int) error {
	if len(caches) < p.PEs {
		return fmt.Errorf("trace: need %d ports, have %d", p.PEs, len(caches))
	}
	if lo < 0 || hi > len(p.refs) || lo > hi {
		return fmt.Errorf("trace: range [%d, %d) outside trace of %d refs", lo, hi, len(p.refs))
	}
	for i, pk := range p.refs[lo:hi] {
		a := word.Addr(uint32(pk))
		op := cache.Op(uint8(pk >> packedOpShift))
		area := mem.Area(uint8(pk >> packedAreaShift))
		if !caches[uint8(pk>>packedPEShift)].Apply(op, a, area) {
			return fmt.Errorf("trace: ref %d: LR %#x blocked during replay", lo+i, a)
		}
	}
	return nil
}
