// Package trace records and replays simulated memory-reference streams.
//
// The KL1 emulator's reference stream — (PE, operation, address) triples
// in global execution order — does not depend on the cache configuration:
// the machine interleaves PEs round-robin regardless of hits and misses,
// and lock conflicts depend only on the lock directories. A stream
// recorded once per workload can therefore be replayed against many cache
// organizations, which is how the block-size, capacity and optimization
// experiments (Figures 1-2, Table 4) run a whole parameter sweep from a
// single emulation. This is classic trace-driven cache simulation, with
// the trace produced by our own execution-driven front end.
package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"pimcache/internal/cache"
	"pimcache/internal/kl1/word"
	"pimcache/internal/mem"
)

// Ref is one recorded memory reference.
type Ref struct {
	PE   uint8
	Op   cache.Op
	Addr word.Addr
}

// Trace is a recorded reference stream. Layout records the memory-area
// geometry the stream was produced under: replays must use the same
// layout or the per-area optimized-command masks would misclassify
// addresses.
type Trace struct {
	PEs    int
	Layout mem.Layout
	Refs   []Ref
}

// Len reports the number of references.
func (t *Trace) Len() int { return len(t.Refs) }

// Recorder collects references from all PEs of one machine in global
// order. Wrap each PE's port with Port before running the workload.
type Recorder struct {
	trace Trace
}

// NewRecorder makes a recorder for a machine with pes processors and the
// given memory layout.
func NewRecorder(pes int, layout mem.Layout) *Recorder {
	return NewRecorderHint(pes, layout, 0)
}

// NewRecorderHint is NewRecorder with a capacity hint: the ref store is
// preallocated for about refsHint references, so recording a stream of
// roughly known length (the harness knows its benchmarks' sizes) does not
// repeatedly regrow and copy a multi-hundred-megabyte backing array. A
// hint of zero (or a low hint) is safe — the store still grows on demand.
func NewRecorderHint(pes int, layout mem.Layout, refsHint int) *Recorder {
	r := &Recorder{trace: Trace{PEs: pes, Layout: layout}}
	if refsHint > 0 {
		r.trace.Refs = make([]Ref, 0, refsHint)
	}
	return r
}

// Trace returns the recorded stream.
func (r *Recorder) Trace() *Trace { return &r.trace }

// Port wraps a PE's accessor so every successful operation is recorded
// before being forwarded. Blocked LockReads are not recorded: the
// eventual successful retry is the reference that matters for replay.
func (r *Recorder) Port(pe int, inner mem.Accessor) mem.Accessor {
	return &recordingPort{rec: r, pe: uint8(pe), inner: inner}
}

type recordingPort struct {
	rec   *Recorder
	pe    uint8
	inner mem.Accessor
}

func (p *recordingPort) add(op cache.Op, a word.Addr) {
	p.rec.trace.Refs = append(p.rec.trace.Refs, Ref{PE: p.pe, Op: op, Addr: a})
}

func (p *recordingPort) Read(a word.Addr) word.Word {
	p.add(cache.OpR, a)
	return p.inner.Read(a)
}

func (p *recordingPort) Write(a word.Addr, w word.Word) {
	p.add(cache.OpW, a)
	p.inner.Write(a, w)
}

func (p *recordingPort) LockRead(a word.Addr) (word.Word, bool) {
	w, ok := p.inner.LockRead(a)
	if ok {
		p.add(cache.OpLR, a)
	}
	return w, ok
}

func (p *recordingPort) UnlockWrite(a word.Addr, w word.Word) {
	p.add(cache.OpUW, a)
	p.inner.UnlockWrite(a, w)
}

func (p *recordingPort) Unlock(a word.Addr) {
	p.add(cache.OpU, a)
	p.inner.Unlock(a)
}

func (p *recordingPort) DirectWrite(a word.Addr, w word.Word) {
	p.add(cache.OpDW, a)
	p.inner.DirectWrite(a, w)
}

func (p *recordingPort) ExclusiveRead(a word.Addr) word.Word {
	p.add(cache.OpER, a)
	return p.inner.ExclusiveRead(a)
}

func (p *recordingPort) ReadPurge(a word.Addr) word.Word {
	p.add(cache.OpRP, a)
	return p.inner.ReadPurge(a)
}

func (p *recordingPort) ReadInvalidate(a word.Addr) word.Word {
	p.add(cache.OpRI, a)
	return p.inner.ReadInvalidate(a)
}

// LockRead ordering note: a recorded LR always precedes its matching
// UW/U, and conflicting LRs were serialized by the live run, so replaying
// in order never blocks.

// Replay drives a trace through the ports of a machine-like set of
// accessors (one per PE). It returns an error if a lock operation blocks,
// which would indicate the trace is not a legal serialized stream.
//
// Replay is the harness's hot path: a full evaluation replays each
// benchmark's stream dozens of times (configuration sweeps), so when
// every port is a concrete *cache.Cache — the case for all machine-backed
// replays — the loop dispatches on the concrete type, avoiding an
// interface-method call per reference.
func Replay(t *Trace, ports []mem.Accessor) error {
	return ReplayRange(t, ports, 0, len(t.Refs))
}

// ReplayRange replays the half-open reference range [lo, hi). It is the
// checkpoint-resume and shard entry point: a resumer restores a machine
// snapshot taken after k references and continues with ReplayRange(t,
// ports, k, t.Len()); the sharded replayer feeds each worker its own
// partition. Reported ref indices in errors are absolute trace positions.
func ReplayRange(t *Trace, ports []mem.Accessor, lo, hi int) error {
	if len(ports) < t.PEs {
		return fmt.Errorf("trace: need %d ports, have %d", t.PEs, len(ports))
	}
	if lo < 0 || hi > len(t.Refs) || lo > hi {
		return fmt.Errorf("trace: range [%d, %d) outside trace of %d refs", lo, hi, len(t.Refs))
	}
	if caches, ok := cachePorts(t.PEs, ports); ok {
		return replayRefs(t.Refs[lo:hi], caches, lo)
	}
	return replayGenericRefs(t.Refs[lo:hi], ports, lo)
}

// cachePorts devirtualizes the port slice when every port is a concrete
// *cache.Cache (the case for all machine-backed replays).
func cachePorts(pes int, ports []mem.Accessor) ([]*cache.Cache, bool) {
	caches := make([]*cache.Cache, pes)
	for i := 0; i < pes; i++ {
		c, ok := ports[i].(*cache.Cache)
		if !ok {
			return nil, false
		}
		caches[i] = c
	}
	return caches, true
}

// replayRefs is the devirtualized fast path. base is the absolute trace
// position of refs[0], used only in error messages.
func replayRefs(refs []Ref, caches []*cache.Cache, base int) error {
	for i := range refs {
		ref := &refs[i]
		port := caches[ref.PE]
		switch ref.Op {
		case cache.OpR:
			port.Read(ref.Addr)
		case cache.OpW:
			port.Write(ref.Addr, 0)
		case cache.OpLR:
			if _, ok := port.LockRead(ref.Addr); !ok {
				return fmt.Errorf("trace: ref %d: LR %#x blocked during replay", base+i, ref.Addr)
			}
		case cache.OpUW:
			port.UnlockWrite(ref.Addr, 0)
		case cache.OpU:
			port.Unlock(ref.Addr)
		case cache.OpDW:
			port.DirectWrite(ref.Addr, 0)
		case cache.OpER:
			port.ExclusiveRead(ref.Addr)
		case cache.OpRP:
			port.ReadPurge(ref.Addr)
		case cache.OpRI:
			port.ReadInvalidate(ref.Addr)
		default:
			return fmt.Errorf("trace: ref %d: unknown op %d", base+i, ref.Op)
		}
	}
	return nil
}

// replayGenericRefs is the interface-dispatch path for non-cache
// accessors (e.g. mem.DirectAccessor in tests). It must stay
// behaviourally identical to replayRefs — the parity test in
// replay_parity_test.go pins the two switch bodies together.
func replayGenericRefs(refs []Ref, ports []mem.Accessor, base int) error {
	for i, ref := range refs {
		port := ports[ref.PE]
		switch ref.Op {
		case cache.OpR:
			port.Read(ref.Addr)
		case cache.OpW:
			port.Write(ref.Addr, 0)
		case cache.OpLR:
			if _, ok := port.LockRead(ref.Addr); !ok {
				return fmt.Errorf("trace: ref %d: LR %#x blocked during replay", base+i, ref.Addr)
			}
		case cache.OpUW:
			port.UnlockWrite(ref.Addr, 0)
		case cache.OpU:
			port.Unlock(ref.Addr)
		case cache.OpDW:
			port.DirectWrite(ref.Addr, 0)
		case cache.OpER:
			port.ExclusiveRead(ref.Addr)
		case cache.OpRP:
			port.ReadPurge(ref.Addr)
		case cache.OpRI:
			port.ReadInvalidate(ref.Addr)
		default:
			return fmt.Errorf("trace: ref %d: unknown op %d", base+i, ref.Op)
		}
	}
	return nil
}

// --- serialization ---

// The on-disk trace format is versioned by its magic string:
//
//	PIMTRACE2: magic, 32-byte header, then a flat run of 6-byte refs.
//	           No checksums — a flipped bit in an address is invisible.
//	PIMTRACE3: magic, 32-byte header, 4-byte CRC32C of the header, then
//	           CRC32C-framed chunks: each chunk is an 8-byte frame
//	           (payload length, payload CRC32C) followed by up to
//	           refsPerChunk refs of payload. Any torn tail, flipped bit
//	           or mangled frame is detected with a byte-offset-labeled
//	           error before a single corrupt reference reaches a replay.
//
// Write produces version 3; Read/NewReader accept both.
const (
	magicV2 = "PIMTRACE2\n"
	magicV3 = "PIMTRACE3\n"
	// magicLen is shared by both versions (and by checkpoints' sniffing).
	magicLen = len(magicV3)
)

// FormatVersion is the trace format Write produces.
const FormatVersion = 3

// refBytes is the on-disk size of one reference: PE, op, and four
// little-endian address bytes.
const refBytes = 6

// refsPerChunk sizes the serialization buffers and the v3 chunk
// framing: one Write/Read syscall moves up to this many references,
// and one CRC covers at most this much payload.
const refsPerChunk = 4096

// frameBytes is the v3 per-chunk frame: u32 payload length, u32
// CRC32C of the payload.
const frameBytes = 8

// headerBytes is the fixed header after the magic (PE count, layout,
// ref count).
const headerBytes = 32

// castagnoli is the CRC32C polynomial table — hardware-accelerated on
// the platforms the replay host runs on.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// addrEncodable reports whether a fits in the four address bytes of the
// on-disk ref format. word.Addr is currently 32 bits wide, so every value
// fits, but the check goes through uint64 so that widening the address
// type can never silently truncate traces on disk.
func addrEncodable(a uint64) bool { return a <= 0xFFFFFFFF }

// header assembles the fixed 32-byte header shared by both versions.
func (t *Trace) header() []byte {
	hdr := make([]byte, headerBytes)
	binary.LittleEndian.PutUint32(hdr[0:], uint32(t.PEs))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(t.Layout.InstWords))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(t.Layout.HeapWords))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(t.Layout.GoalWords))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(t.Layout.SuspWords))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(t.Layout.CommWords))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(len(t.Refs)))
	return hdr
}

// encodeRef appends one reference's 6 on-disk bytes to buf.
func encodeRef(buf []byte, ref *Ref) []byte {
	return append(buf, ref.PE, uint8(ref.Op),
		byte(ref.Addr), byte(ref.Addr>>8), byte(ref.Addr>>16), byte(ref.Addr>>24))
}

// Write serializes the trace in the current format (version 3:
// checksummed chunk framing). It fails — rather than corrupt the
// stream — if any address exceeds the 32-bit on-disk format.
func (t *Trace) Write(w io.Writer) error {
	return t.WriteVersion(w, FormatVersion)
}

// WriteVersion serializes the trace in an explicit format version.
// Version 2 exists for compatibility tests and for producing streams
// older builds can read; everything else should use Write.
func (t *Trace) WriteVersion(w io.Writer, version int) error {
	switch version {
	case 2:
		return t.writeV2(w)
	case 3:
		return t.writeV3(w)
	}
	return fmt.Errorf("trace: unknown format version %d", version)
}

func (t *Trace) writeV2(w io.Writer) error {
	if _, err := io.WriteString(w, magicV2); err != nil {
		return err
	}
	if _, err := w.Write(t.header()); err != nil {
		return err
	}
	buf := make([]byte, 0, refBytes*refsPerChunk)
	for i := range t.Refs {
		ref := &t.Refs[i]
		if !addrEncodable(uint64(ref.Addr)) {
			return fmt.Errorf("trace: ref %d: address %#x exceeds the 32-bit on-disk format", i, uint64(ref.Addr))
		}
		buf = encodeRef(buf, ref)
		if len(buf) == cap(buf) || i == len(t.Refs)-1 {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	return nil
}

func (t *Trace) writeV3(w io.Writer) error {
	if _, err := io.WriteString(w, magicV3); err != nil {
		return err
	}
	hdr := t.header()
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc32.Checksum(hdr, castagnoli))
	if _, err := w.Write(crcb[:]); err != nil {
		return err
	}
	// Each chunk is framed and written in one call: frame header in
	// buf[:frameBytes], payload after it.
	buf := make([]byte, frameBytes, frameBytes+refBytes*refsPerChunk)
	for i := 0; i < len(t.Refs); {
		k := len(t.Refs) - i
		if k > refsPerChunk {
			k = refsPerChunk
		}
		buf = buf[:frameBytes]
		for j := i; j < i+k; j++ {
			ref := &t.Refs[j]
			if !addrEncodable(uint64(ref.Addr)) {
				return fmt.Errorf("trace: ref %d: address %#x exceeds the 32-bit on-disk format", j, uint64(ref.Addr))
			}
			buf = encodeRef(buf, ref)
		}
		payload := buf[frameBytes:]
		binary.LittleEndian.PutUint32(buf[0:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, castagnoli))
		if _, err := w.Write(buf); err != nil {
			return err
		}
		i += k
	}
	return nil
}

// maxPrealloc caps the []Ref capacity Read allocates up front from the
// header's declared ref count. The count is untrusted input: a corrupt
// header must not be able to demand an arbitrary allocation. Beyond the
// cap the slice grows only as fast as actual stream data arrives, so a
// short corrupt stream fails with a clean truncation error instead of an
// out-of-memory abort.
const maxPrealloc = 1 << 20

// Read deserializes a trace written by Write, validating the header and
// every reference (see NewReader). For streams too large to materialize,
// use NewReader with Next or ReplayStream instead.
func Read(r io.Reader) (*Trace, error) {
	d, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	capHint := d.Len()
	if capHint > maxPrealloc {
		capHint = maxPrealloc
	}
	t := &Trace{PEs: d.PEs(), Layout: d.Layout(), Refs: make([]Ref, 0, capHint)}
	buf := make([]Ref, refsPerChunk)
	for {
		n, err := d.Next(buf)
		t.Refs = append(t.Refs, buf[:n]...)
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
	}
}
