package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"

	"pimcache/internal/cache"
	"pimcache/internal/kl1/word"
	"pimcache/internal/machine"
	"pimcache/internal/mem"
)

// encodeTrace serializes tr and returns the raw bytes for mutation.
func encodeTrace(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// readErr runs both decoders (materializing Read and streaming Reader)
// over raw and requires each to fail with a message containing want.
func readErr(t *testing.T, label string, raw []byte, want string) {
	t.Helper()
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Errorf("%s: Read accepted corrupt stream", label)
	} else if !strings.Contains(err.Error(), want) {
		t.Errorf("%s: Read error %q does not mention %q", label, err, want)
	}
	d, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("%s: NewReader error %q does not mention %q", label, err, want)
		}
		return
	}
	buf := make([]Ref, 4096)
	for {
		_, err := d.Next(buf)
		if err == io.EOF {
			t.Errorf("%s: Reader accepted corrupt stream", label)
			return
		}
		if err != nil {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%s: Next error %q does not mention %q", label, err, want)
			}
			return
		}
	}
}

// smallTrace is a valid 4-PE stream for corruption tests.
func smallTrace() *Trace {
	tr := &Trace{PEs: 4, Layout: mem.Layout{InstWords: 16, HeapWords: 64, GoalWords: 16, SuspWords: 8, CommWords: 8}}
	for i := 0; i < 100; i++ {
		tr.Refs = append(tr.Refs, Ref{
			PE:   uint8(i % 4),
			Op:   cache.Op(i % int(cache.NumOps)),
			Addr: word.Addr(i * 3),
		})
	}
	return tr
}

// TestReaderRejectsCorruptHeader covers the header validations: a PE
// count of zero or above the bus limit, and a layout wider than the
// 32-bit address space.
func TestReaderRejectsCorruptHeader(t *testing.T) {
	base := encodeTrace(t, smallTrace())
	hdr := len(magic)

	zeroPE := append([]byte(nil), base...)
	binary.LittleEndian.PutUint32(zeroPE[hdr:], 0)
	readErr(t, "pe=0", zeroPE, "PE count")

	bigPE := append([]byte(nil), base...)
	binary.LittleEndian.PutUint32(bigPE[hdr:], 200)
	readErr(t, "pe=200", bigPE, "PE count")

	hugeLayout := append([]byte(nil), base...)
	for off := 4; off <= 20; off += 4 {
		binary.LittleEndian.PutUint32(hugeLayout[hdr+off:], 0xFFFFFFFF)
	}
	readErr(t, "huge layout", hugeLayout, "address space")
}

// TestReaderRejectsCorruptRefs covers the per-reference validations: a
// PE byte at or above the header's count, and an unknown op byte.
func TestReaderRejectsCorruptRefs(t *testing.T) {
	base := encodeTrace(t, smallTrace())
	ref0 := len(magic) + 32 // first reference: [PE, op, addr x4]

	badPE := append([]byte(nil), base...)
	badPE[ref0] = 9 // header says 4 PEs
	readErr(t, "bad ref PE", badPE, "out of range")

	badOp := append([]byte(nil), base...)
	badOp[ref0+1] = 0xEE
	readErr(t, "bad ref op", badOp, "unknown op")
}

// TestReadHugeDeclaredCount pins the preallocation guard: a header
// declaring 2^40 references over an empty body must fail with a
// truncation error without first attempting a multi-terabyte
// allocation.
func TestReadHugeDeclaredCount(t *testing.T) {
	base := encodeTrace(t, smallTrace())
	raw := append([]byte(nil), base...)
	binary.LittleEndian.PutUint64(raw[len(magic)+24:], 1<<40)
	readErr(t, "huge count", raw, "truncated")
}

// TestReaderTruncatedMidStream checks the streaming decoder reports the
// cut position instead of returning a short stream.
func TestReaderTruncatedMidStream(t *testing.T) {
	raw := encodeTrace(t, smallTrace())
	readErr(t, "truncated", raw[:len(raw)-5], "truncated")
}

// TestReaderHeader checks the streaming decoder surfaces the header
// verbatim.
func TestReaderHeader(t *testing.T) {
	tr := smallTrace()
	d, err := NewReader(bytes.NewReader(encodeTrace(t, tr)))
	if err != nil {
		t.Fatal(err)
	}
	if d.PEs() != tr.PEs || d.Layout() != tr.Layout || d.Len() != uint64(tr.Len()) {
		t.Errorf("header mismatch: %d PEs, %+v, %d refs", d.PEs(), d.Layout(), d.Len())
	}
}

// TestReplayStreamMatchesReplay pins the chunked streaming replay
// against the materialized replay on a real recorded workload.
func TestReplayStreamMatchesReplay(t *testing.T) {
	_, tr := traceCluster(t, testProgram, 2, cache.OptionsAll())
	raw := encodeTrace(t, tr)

	newMachine := func() (*machine.Machine, []mem.Accessor) {
		mcfg := machine.Config{
			PEs: tr.PEs, Layout: tr.Layout,
			Cache: cache.Config{SizeWords: 1 << 10, BlockWords: 4, Ways: 4,
				LockEntries: 4, Options: cache.OptionsAll(), VerifyDW: true},
		}
		mcfg.Timing.MemCycles = 8
		mcfg.Timing.WidthWords = 1
		m := machine.New(mcfg)
		ports := make([]mem.Accessor, tr.PEs)
		for i := range ports {
			ports[i] = m.Port(i)
		}
		return m, ports
	}

	m1, ports1 := newMachine()
	if err := Replay(tr, ports1); err != nil {
		t.Fatal(err)
	}
	d, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	m2, ports2 := newMachine()
	n, err := ReplayStream(d, ports2)
	if err != nil {
		t.Fatal(err)
	}
	if n != tr.Len() {
		t.Errorf("streamed %d refs, trace has %d", n, tr.Len())
	}
	if b1, b2 := m1.BusStats(), m2.BusStats(); b1 != b2 {
		t.Errorf("bus stats diverge\nmaterialized: %+v\nstreamed:     %+v", b1, b2)
	}
	if c1, c2 := m1.CacheStats(), m2.CacheStats(); c1 != c2 {
		t.Errorf("cache stats diverge\nmaterialized: %+v\nstreamed:     %+v", c1, c2)
	}
}

// TestPackValidation pins Pack's pre-replay validation: out-of-range PEs
// and unknown ops must be rejected, since the packed replay loop indexes
// and dispatches without rechecking.
func TestPackValidation(t *testing.T) {
	tr := smallTrace()
	if _, err := Pack(tr); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	badPE := smallTrace()
	badPE.Refs[7].PE = 4
	if _, err := Pack(badPE); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("bad PE accepted: %v", err)
	}
	badOp := smallTrace()
	badOp.Refs[3].Op = cache.NumOps
	if _, err := Pack(badOp); err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Errorf("bad op accepted: %v", err)
	}
}
