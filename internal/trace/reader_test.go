package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"

	"pimcache/internal/cache"
	"pimcache/internal/kl1/word"
	"pimcache/internal/machine"
	"pimcache/internal/mem"
)

// encodeTrace serializes tr in the current format (v3) and returns the
// raw bytes for mutation.
func encodeTrace(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// encodeTraceV2 serializes tr in the legacy flat format, whose fixed
// byte layout the offset-poking corruption tests rely on.
func encodeTraceV2(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteVersion(&buf, 2); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// readErr runs both decoders (materializing Read and streaming Reader)
// over raw and requires each to fail with a message containing want.
func readErr(t *testing.T, label string, raw []byte, want string) {
	t.Helper()
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Errorf("%s: Read accepted corrupt stream", label)
	} else if !strings.Contains(err.Error(), want) {
		t.Errorf("%s: Read error %q does not mention %q", label, err, want)
	}
	d, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("%s: NewReader error %q does not mention %q", label, err, want)
		}
		return
	}
	buf := make([]Ref, 4096)
	for {
		_, err := d.Next(buf)
		if err == io.EOF {
			t.Errorf("%s: Reader accepted corrupt stream", label)
			return
		}
		if err != nil {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%s: Next error %q does not mention %q", label, err, want)
			}
			return
		}
	}
}

// smallTrace is a valid 4-PE stream for corruption tests.
func smallTrace() *Trace {
	tr := &Trace{PEs: 4, Layout: mem.Layout{InstWords: 16, HeapWords: 64, GoalWords: 16, SuspWords: 8, CommWords: 8}}
	for i := 0; i < 100; i++ {
		tr.Refs = append(tr.Refs, Ref{
			PE:   uint8(i % 4),
			Op:   cache.Op(i % int(cache.NumOps)),
			Addr: word.Addr(i * 3),
		})
	}
	return tr
}

// TestReaderRejectsCorruptHeader covers the header validations: a PE
// count of zero or above the bus limit, and a layout wider than the
// 32-bit address space. The pokes target the unchecksummed v2 layout;
// the same pokes on v3 are caught earlier by the header CRC (see
// TestV3HeaderChecksum).
func TestReaderRejectsCorruptHeader(t *testing.T) {
	base := encodeTraceV2(t, smallTrace())
	hdr := len(magicV2)

	zeroPE := append([]byte(nil), base...)
	binary.LittleEndian.PutUint32(zeroPE[hdr:], 0)
	readErr(t, "pe=0", zeroPE, "PE count")

	bigPE := append([]byte(nil), base...)
	binary.LittleEndian.PutUint32(bigPE[hdr:], 200)
	readErr(t, "pe=200", bigPE, "PE count")

	hugeLayout := append([]byte(nil), base...)
	for off := 4; off <= 20; off += 4 {
		binary.LittleEndian.PutUint32(hugeLayout[hdr+off:], 0xFFFFFFFF)
	}
	readErr(t, "huge layout", hugeLayout, "address space")
}

// TestReaderRejectsCorruptRefs covers the per-reference validations: a
// PE byte at or above the header's count, and an unknown op byte.
func TestReaderRejectsCorruptRefs(t *testing.T) {
	base := encodeTraceV2(t, smallTrace())
	ref0 := len(magicV2) + headerBytes // first reference: [PE, op, addr x4]

	badPE := append([]byte(nil), base...)
	badPE[ref0] = 9 // header says 4 PEs
	readErr(t, "bad ref PE", badPE, "out of range")

	badOp := append([]byte(nil), base...)
	badOp[ref0+1] = 0xEE
	readErr(t, "bad ref op", badOp, "unknown op")
}

// TestReadHugeDeclaredCount pins the preallocation guard: a header
// declaring 2^40 references over an empty body must fail with a
// truncation error without first attempting a multi-terabyte
// allocation.
func TestReadHugeDeclaredCount(t *testing.T) {
	base := encodeTraceV2(t, smallTrace())
	raw := append([]byte(nil), base...)
	binary.LittleEndian.PutUint64(raw[len(magicV2)+24:], 1<<40)
	readErr(t, "huge count", raw, "truncated")
}

// TestReaderTruncatedMidStream checks both decoders report the cut
// position instead of returning a short stream, in both formats.
func TestReaderTruncatedMidStream(t *testing.T) {
	rawV2 := encodeTraceV2(t, smallTrace())
	readErr(t, "v2 truncated", rawV2[:len(rawV2)-5], "torn final reference")
	readErr(t, "v2 truncated at ref boundary", rawV2[:len(rawV2)-2*refBytes], "truncated at byte offset")

	rawV3 := encodeTrace(t, smallTrace())
	readErr(t, "v3 torn payload", rawV3[:len(rawV3)-5], "torn chunk")
	readErr(t, "v3 missing chunk", rawV3[:len(magicV3)+headerBytes+4], "next chunk missing")
	readErr(t, "v3 torn frame", rawV3[:len(magicV3)+headerBytes+4+3], "torn chunk frame")
}

// TestV3HeaderChecksum pins the v3 header CRC: any header mutation is
// caught before its fields are even interpreted.
func TestV3HeaderChecksum(t *testing.T) {
	raw := encodeTrace(t, smallTrace())
	for _, off := range []int{0, 4, 24, 31} {
		bad := append([]byte(nil), raw...)
		bad[len(magicV3)+off] ^= 0x01
		readErr(t, "header bit flip", bad, "header checksum mismatch")
	}
}

// TestV3ChunkChecksum is the fault class that motivates v3: a single
// flipped bit anywhere in a chunk payload — even in an address byte a
// v2 decoder would swallow silently — must fail with a checksum error
// naming the byte offset.
func TestV3ChunkChecksum(t *testing.T) {
	raw := encodeTrace(t, largeSyntheticTrace(refsPerChunk+200))
	body := len(magicV3) + headerBytes + 4
	for _, off := range []int{
		body + frameBytes + 2,            // address byte, first ref, first chunk
		body + frameBytes + refBytes*100, // PE byte mid-chunk
		len(raw) - 1,                     // final byte of final chunk
		body + frameBytes + refBytes*refsPerChunk + frameBytes, // first byte of second chunk
	} {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x10
		readErr(t, "payload bit flip", bad, "checksum mismatch")
	}
	// A flipped frame: either the length check or the CRC catches it.
	badFrame := append([]byte(nil), raw...)
	badFrame[body] ^= 0x40
	readErr(t, "frame bit flip", badFrame, "chunk")
}

// TestV3RejectsOversizedChunk covers the frame-length validations: a
// length that is zero, not a multiple of the ref size, beyond the
// chunk cap, or larger than the refs remaining in the stream.
func TestV3RejectsOversizedChunk(t *testing.T) {
	raw := encodeTrace(t, smallTrace())
	frame := len(magicV3) + headerBytes + 4
	for _, plen := range []uint32{0, 7, refBytes*refsPerChunk + refBytes, refBytes * 101} {
		bad := append([]byte(nil), raw...)
		binary.LittleEndian.PutUint32(bad[frame:], plen)
		readErr(t, "bad frame length", bad, "corrupt chunk frame")
	}
}

// TestBothVersionsRoundTrip pins that every written version reads back
// identically and reports its version.
func TestBothVersionsRoundTrip(t *testing.T) {
	tr := largeSyntheticTrace(refsPerChunk*2 + 33)
	for _, version := range []int{2, 3} {
		var buf bytes.Buffer
		if err := tr.WriteVersion(&buf, version); err != nil {
			t.Fatalf("v%d Write: %v", version, err)
		}
		d, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("v%d NewReader: %v", version, err)
		}
		if d.Version() != version {
			t.Errorf("Version() = %d, want %d", d.Version(), version)
		}
		got, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("v%d Read: %v", version, err)
		}
		if got.PEs != tr.PEs || got.Len() != tr.Len() || got.Layout != tr.Layout {
			t.Fatalf("v%d header mismatch: %d/%d %+v", version, got.PEs, got.Len(), got.Layout)
		}
		for i := range tr.Refs {
			if got.Refs[i] != tr.Refs[i] {
				t.Fatalf("v%d ref %d: %+v != %+v", version, i, got.Refs[i], tr.Refs[i])
			}
		}
	}
}

// TestReaderSmallDst checks Next with a destination smaller than a
// chunk: the v3 pending buffer must deliver every ref exactly once.
func TestReaderSmallDst(t *testing.T) {
	tr := largeSyntheticTrace(refsPerChunk + 77)
	for _, version := range []int{2, 3} {
		var buf bytes.Buffer
		if err := tr.WriteVersion(&buf, version); err != nil {
			t.Fatal(err)
		}
		d, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var got []Ref
		dst := make([]Ref, 100) // not a divisor of refsPerChunk
		for {
			n, err := d.Next(dst)
			got = append(got, dst[:n]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("v%d Next: %v", version, err)
			}
		}
		if len(got) != tr.Len() {
			t.Fatalf("v%d delivered %d refs, want %d", version, len(got), tr.Len())
		}
		for i := range got {
			if got[i] != tr.Refs[i] {
				t.Fatalf("v%d ref %d: %+v != %+v", version, i, got[i], tr.Refs[i])
			}
		}
	}
}

// TestSkipTo pins the resume seek: skipping to an arbitrary position
// delivers exactly the suffix, skipped chunks are still CRC-verified,
// and rewinds or beyond-count targets are rejected.
func TestSkipTo(t *testing.T) {
	tr := largeSyntheticTrace(refsPerChunk*2 + 50)
	raw := encodeTrace(t, tr)
	for _, target := range []uint64{0, 1, 100, refsPerChunk, refsPerChunk + 1, uint64(tr.Len()) - 1, uint64(tr.Len())} {
		d, err := NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		if err := d.SkipTo(target); err != nil {
			t.Fatalf("SkipTo(%d): %v", target, err)
		}
		if d.Replayed() != target {
			t.Fatalf("SkipTo(%d): Replayed() = %d", target, d.Replayed())
		}
		var got []Ref
		dst := make([]Ref, 333)
		for {
			n, err := d.Next(dst)
			got = append(got, dst[:n]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("SkipTo(%d) then Next: %v", target, err)
			}
		}
		want := tr.Refs[target:]
		if len(got) != len(want) {
			t.Fatalf("SkipTo(%d): %d refs after skip, want %d", target, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("SkipTo(%d): ref %d: %+v != %+v", target, i, got[i], want[i])
			}
		}
	}

	d, _ := NewReader(bytes.NewReader(raw))
	if err := d.SkipTo(10); err != nil {
		t.Fatal(err)
	}
	if err := d.SkipTo(5); err == nil || !strings.Contains(err.Error(), "rewind") {
		t.Errorf("rewind accepted: %v", err)
	}
	if err := d.SkipTo(uint64(tr.Len()) + 1); err == nil || !strings.Contains(err.Error(), "beyond") {
		t.Errorf("beyond-count skip accepted: %v", err)
	}
}

// TestSkipToDetectsCorruption: a resume seek must not glide over
// damage in the skipped region.
func TestSkipToDetectsCorruption(t *testing.T) {
	raw := encodeTrace(t, largeSyntheticTrace(refsPerChunk*2))
	bad := append([]byte(nil), raw...)
	bad[len(magicV3)+headerBytes+4+frameBytes+10] ^= 0x04 // inside chunk 0
	d, err := NewReader(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	err = d.SkipTo(refsPerChunk + 5) // target inside chunk 1
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Errorf("SkipTo over corrupt chunk: %v, want checksum mismatch", err)
	}
}

// TestVerify pins the stream validator: a clean stream yields its
// summary, a corrupt one the same offset-labeled error a replay gets.
func TestVerify(t *testing.T) {
	tr := largeSyntheticTrace(refsPerChunk + 9)
	raw := encodeTrace(t, tr)
	info, err := Verify(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("Verify clean stream: %v", err)
	}
	if info.Version != 3 || info.PEs != tr.PEs || info.Refs != uint64(tr.Len()) || info.Chunks != 2 || info.Bytes != int64(len(raw)) {
		t.Errorf("VerifyInfo %+v (stream: %d refs, %d bytes)", info, tr.Len(), len(raw))
	}

	bad := append([]byte(nil), raw...)
	bad[len(bad)-3] ^= 0x80
	if _, err := Verify(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Errorf("Verify corrupt stream: %v", err)
	}

	torn := raw[:len(raw)-4]
	if _, err := Verify(bytes.NewReader(torn)); err == nil || !strings.Contains(err.Error(), "torn chunk") {
		t.Errorf("Verify torn stream: %v", err)
	}

	v2 := encodeTraceV2(t, tr)
	info, err = Verify(bytes.NewReader(v2))
	if err != nil {
		t.Fatalf("Verify v2 stream: %v", err)
	}
	if info.Version != 2 || info.Refs != uint64(tr.Len()) {
		t.Errorf("v2 VerifyInfo %+v", info)
	}
}

// TestReaderHeader checks the streaming decoder surfaces the header
// verbatim.
func TestReaderHeader(t *testing.T) {
	tr := smallTrace()
	d, err := NewReader(bytes.NewReader(encodeTrace(t, tr)))
	if err != nil {
		t.Fatal(err)
	}
	if d.PEs() != tr.PEs || d.Layout() != tr.Layout || d.Len() != uint64(tr.Len()) {
		t.Errorf("header mismatch: %d PEs, %+v, %d refs", d.PEs(), d.Layout(), d.Len())
	}
}

// TestReplayStreamMatchesReplay pins the chunked streaming replay
// against the materialized replay on a real recorded workload.
func TestReplayStreamMatchesReplay(t *testing.T) {
	_, tr := traceCluster(t, testProgram, 2, cache.OptionsAll())
	raw := encodeTrace(t, tr)

	newMachine := func() (*machine.Machine, []mem.Accessor) {
		mcfg := machine.Config{
			PEs: tr.PEs, Layout: tr.Layout,
			Cache: cache.Config{SizeWords: 1 << 10, BlockWords: 4, Ways: 4,
				LockEntries: 4, Options: cache.OptionsAll(), VerifyDW: true},
		}
		mcfg.Timing.MemCycles = 8
		mcfg.Timing.WidthWords = 1
		m := machine.New(mcfg)
		ports := make([]mem.Accessor, tr.PEs)
		for i := range ports {
			ports[i] = m.Port(i)
		}
		return m, ports
	}

	m1, ports1 := newMachine()
	if err := Replay(tr, ports1); err != nil {
		t.Fatal(err)
	}
	d, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	m2, ports2 := newMachine()
	n, err := ReplayStream(d, ports2)
	if err != nil {
		t.Fatal(err)
	}
	if n != tr.Len() {
		t.Errorf("streamed %d refs, trace has %d", n, tr.Len())
	}
	if b1, b2 := m1.BusStats(), m2.BusStats(); b1 != b2 {
		t.Errorf("bus stats diverge\nmaterialized: %+v\nstreamed:     %+v", b1, b2)
	}
	if c1, c2 := m1.CacheStats(), m2.CacheStats(); c1 != c2 {
		t.Errorf("cache stats diverge\nmaterialized: %+v\nstreamed:     %+v", c1, c2)
	}
}

// TestPackValidation pins Pack's pre-replay validation: out-of-range PEs
// and unknown ops must be rejected, since the packed replay loop indexes
// and dispatches without rechecking.
func TestPackValidation(t *testing.T) {
	tr := smallTrace()
	if _, err := Pack(tr); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	badPE := smallTrace()
	badPE.Refs[7].PE = 4
	if _, err := Pack(badPE); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("bad PE accepted: %v", err)
	}
	badOp := smallTrace()
	badOp.Refs[3].Op = cache.NumOps
	if _, err := Pack(badOp); err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Errorf("bad op accepted: %v", err)
	}
}
