package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/kl1/word"
	"pimcache/internal/mem"
)

// Reader streams a serialized trace without materializing the whole
// reference slice, so multi-gigabyte streams replay in constant memory.
// It reads both on-disk versions (PIMTRACE2 flat, PIMTRACE3 checksummed
// chunks) and validates everything it decodes: the header's PE count
// and layout (and, for v3, its CRC), every chunk's frame and CRC32C,
// and every reference's PE and op byte. A corrupt or torn stream
// yields a clean error labeled with the byte offset of the damage —
// never an out-of-range index inside the replay loop, and never a
// silently short stream: io.EOF from Next means every declared
// reference was delivered intact.
type Reader struct {
	r       io.Reader
	version int
	pes     int
	layout  mem.Layout
	n       uint64 // declared ref count
	read    uint64 // refs delivered so far
	off     int64  // bytes consumed from r
	chunks  uint64 // decode batches completed (v3: CRC-verified frames)
	buf     []byte // raw chunk bytes (frame + payload for v3)
	pend    []Ref  // v3: decoded refs not yet delivered
	pendBuf []Ref  // backing array for pend, refsPerChunk capacity
	skipBuf []Ref  // lazily allocated by SkipTo

	progress func(n int) // optional decode-progress hook (see SetProgress)
}

// SetProgress installs a hook called after every decoded batch with the
// number of references just decoded. Streaming replays use it to feed a
// heartbeat (obs.Heartbeat.Add); a nil fn disables the hook.
func (d *Reader) SetProgress(fn func(n int)) { d.progress = fn }

// NewReader reads and validates the stream header, leaving r positioned
// at the first reference (v2) or chunk frame (v3).
func NewReader(r io.Reader) (*Reader, error) {
	d := &Reader{r: r}
	got := make([]byte, magicLen)
	if err := d.fill(got); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	switch string(got) {
	case magicV2:
		d.version = 2
	case magicV3:
		d.version = 3
	default:
		return nil, fmt.Errorf("trace: bad magic %q", got)
	}
	hdr := make([]byte, headerBytes)
	if err := d.fill(hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if d.version >= 3 {
		var crcb [4]byte
		if err := d.fill(crcb[:]); err != nil {
			return nil, fmt.Errorf("trace: reading header checksum: %w", err)
		}
		if got, want := crc32.Checksum(hdr, castagnoli), binary.LittleEndian.Uint32(crcb[:]); got != want {
			return nil, fmt.Errorf("trace: header checksum mismatch at byte offset %d (computed %#x, stored %#x)",
				magicLen, got, want)
		}
	}
	pes := int(binary.LittleEndian.Uint32(hdr[0:]))
	if pes < 1 || pes > bus.MaxPEs {
		return nil, fmt.Errorf("trace: header PE count %d outside [1, %d]", pes, bus.MaxPEs)
	}
	var total uint64
	for off := 4; off <= 20; off += 4 {
		total += uint64(binary.LittleEndian.Uint32(hdr[off:]))
	}
	if total > 1<<32 {
		// Addresses are 32 bits on disk; a layout wider than the address
		// space is corrupt (and would demand an absurd memory allocation
		// at replay time).
		return nil, fmt.Errorf("trace: header layout spans %d words, exceeding the 32-bit address space", total)
	}
	d.pes = pes
	d.layout = mem.Layout{
		InstWords: int(binary.LittleEndian.Uint32(hdr[4:])),
		HeapWords: int(binary.LittleEndian.Uint32(hdr[8:])),
		GoalWords: int(binary.LittleEndian.Uint32(hdr[12:])),
		SuspWords: int(binary.LittleEndian.Uint32(hdr[16:])),
		CommWords: int(binary.LittleEndian.Uint32(hdr[20:])),
	}
	d.n = binary.LittleEndian.Uint64(hdr[24:])
	d.buf = make([]byte, frameBytes+refBytes*refsPerChunk)
	return d, nil
}

// fill is io.ReadFull with byte-offset accounting.
func (d *Reader) fill(p []byte) error {
	n, err := io.ReadFull(d.r, p)
	d.off += int64(n)
	return err
}

// PEs reports the header's PE count.
func (d *Reader) PEs() int { return d.pes }

// Layout reports the header's memory layout.
func (d *Reader) Layout() mem.Layout { return d.layout }

// Version reports the stream's on-disk format version (2 or 3).
func (d *Reader) Version() int { return d.version }

// Offset reports the byte offset consumed from the underlying reader —
// the position error labels refer to.
func (d *Reader) Offset() int64 { return d.off }

// Chunks reports how many decode batches (v3: CRC-verified chunk
// frames) have completed.
func (d *Reader) Chunks() uint64 { return d.chunks }

// Replayed reports how many references have been delivered so far.
func (d *Reader) Replayed() uint64 { return d.read }

// Len reports the header's declared reference count. It is validated
// incrementally: a stream shorter than declared fails Next with a
// truncation error, so Len is trustworthy only once Next returned io.EOF.
func (d *Reader) Len() uint64 { return d.n }

// Next decodes up to len(dst) references into dst and returns how many
// were decoded. It returns io.EOF — possibly alongside the final
// references — once all declared references have been delivered; any
// earlier end of stream is an error. Errors are permanent: a Reader
// that returned one delivers no further references.
func (d *Reader) Next(dst []Ref) (int, error) {
	if d.read == d.n {
		return 0, io.EOF
	}
	if len(dst) == 0 {
		return 0, nil
	}
	var n int
	var err error
	if d.version == 2 {
		n, err = d.nextV2(dst)
	} else {
		n, err = d.nextV3(dst)
	}
	if err != nil {
		return n, err
	}
	d.read += uint64(n)
	if d.progress != nil && n > 0 {
		d.progress(n)
	}
	if d.read == d.n {
		return n, io.EOF
	}
	return n, nil
}

// nextV2 decodes up to one chunk of the flat v2 ref run directly into
// dst.
func (d *Reader) nextV2(dst []Ref) (int, error) {
	remaining := d.n - d.read
	n := len(dst)
	if uint64(n) > remaining {
		n = int(remaining)
	}
	if n > refsPerChunk {
		n = refsPerChunk
	}
	start := d.off
	chunk := d.buf[:n*refBytes]
	if err := d.fill(chunk); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			// The shortfall position distinguishes a clean-but-short
			// stream (cut at a reference boundary) from a torn final
			// reference.
			got := d.off - start
			lost := got % refBytes
			if lost != 0 {
				return 0, fmt.Errorf("trace: torn final reference at byte offset %d (ref %d of %d cut after %d of %d bytes)",
					d.off-lost, d.read+uint64(got/refBytes), d.n, lost, refBytes)
			}
			return 0, fmt.Errorf("trace: stream truncated at byte offset %d (ref %d of %d)",
				d.off, d.read+uint64(got/refBytes), d.n)
		}
		return 0, err
	}
	if err := d.decodeRefs(chunk, dst[:n], start); err != nil {
		return 0, err
	}
	d.chunks++
	return n, nil
}

// nextV3 delivers pending decoded references, reading and verifying
// the next chunk frame when none are pending. When dst can hold the
// whole chunk it is decoded straight into dst (the streaming-replay
// fast path copies nothing twice).
func (d *Reader) nextV3(dst []Ref) (int, error) {
	if len(d.pend) > 0 {
		n := copy(dst, d.pend)
		d.pend = d.pend[n:]
		return n, nil
	}
	frameOff := d.off
	frame := d.buf[:frameBytes]
	if err := d.fill(frame); err != nil {
		if err == io.EOF {
			return 0, fmt.Errorf("trace: stream truncated at byte offset %d: %d of %d refs delivered, next chunk missing",
				d.off, d.read, d.n)
		}
		if err == io.ErrUnexpectedEOF {
			return 0, fmt.Errorf("trace: torn chunk frame at byte offset %d (ref %d of %d)", frameOff, d.read, d.n)
		}
		return 0, err
	}
	plen := binary.LittleEndian.Uint32(frame[0:])
	wantCRC := binary.LittleEndian.Uint32(frame[4:])
	remaining := d.n - d.read
	switch {
	case plen == 0 || plen%refBytes != 0 || plen > refBytes*refsPerChunk:
		return 0, fmt.Errorf("trace: corrupt chunk frame at byte offset %d: payload length %d", frameOff, plen)
	case uint64(plen/refBytes) > remaining:
		return 0, fmt.Errorf("trace: corrupt chunk frame at byte offset %d: %d refs in chunk, %d remaining in stream",
			frameOff, plen/refBytes, remaining)
	}
	payloadOff := d.off
	payload := d.buf[frameBytes : frameBytes+int(plen)]
	if err := d.fill(payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, fmt.Errorf("trace: torn chunk at byte offset %d (ref %d of %d: %d of %d payload bytes)",
				payloadOff, d.read, d.n, d.off-payloadOff, plen)
		}
		return 0, err
	}
	if got := crc32.Checksum(payload, castagnoli); got != wantCRC {
		return 0, fmt.Errorf("trace: chunk checksum mismatch at byte offset %d (refs %d..%d of %d: computed %#x, stored %#x)",
			payloadOff, d.read, d.read+uint64(plen/refBytes)-1, d.n, got, wantCRC)
	}
	k := int(plen) / refBytes
	if len(dst) >= k {
		if err := d.decodeRefs(payload, dst[:k], payloadOff); err != nil {
			return 0, err
		}
		d.chunks++
		return k, nil
	}
	if d.pendBuf == nil {
		d.pendBuf = make([]Ref, refsPerChunk)
	}
	if err := d.decodeRefs(payload, d.pendBuf[:k], payloadOff); err != nil {
		return 0, err
	}
	d.chunks++
	n := copy(dst, d.pendBuf[:k])
	d.pend = d.pendBuf[n:k]
	return n, nil
}

// decodeRefs decodes raw (a whole number of 6-byte refs) into dst,
// validating each reference's PE and op. byteOff is raw's position in
// the stream, for error labels.
func (d *Reader) decodeRefs(raw []byte, dst []Ref, byteOff int64) error {
	for j := 0; j < len(dst); j++ {
		b := raw[j*refBytes : j*refBytes+refBytes]
		if int(b[0]) >= d.pes {
			return fmt.Errorf("trace: ref %d (byte offset %d): PE %d out of range (trace has %d PEs)",
				d.read+uint64(j), byteOff+int64(j*refBytes), b[0], d.pes)
		}
		if cache.Op(b[1]) >= cache.NumOps {
			return fmt.Errorf("trace: ref %d (byte offset %d): unknown op %d",
				d.read+uint64(j), byteOff+int64(j*refBytes), b[1])
		}
		dst[j] = Ref{
			PE:   b[0],
			Op:   cache.Op(b[1]),
			Addr: word.Addr(binary.LittleEndian.Uint32(b[2:6])),
		}
	}
	return nil
}

// SkipTo advances the reader so the next delivered reference is the
// one at absolute index target — the checkpoint-resume seek. Skipped
// references are fully decoded and validated (chunk CRCs included), so
// a resume never glides over damage the uninterrupted run would have
// caught. The reader cannot rewind.
func (d *Reader) SkipTo(target uint64) error {
	if target < d.read {
		return fmt.Errorf("trace: cannot rewind from ref %d to %d", d.read, target)
	}
	if target > d.n {
		return fmt.Errorf("trace: skip target %d beyond declared count %d", target, d.n)
	}
	if d.skipBuf == nil {
		d.skipBuf = make([]Ref, refsPerChunk)
	}
	for d.read < target {
		want := target - d.read
		if want > refsPerChunk {
			want = refsPerChunk
		}
		_, err := d.Next(d.skipBuf[:want])
		if err == io.EOF {
			break // d.read == d.n == target
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// ChunkReplayer drives decoded reference chunks through a fixed set of
// ports, devirtualizing once (not per chunk) when every port is a
// concrete *cache.Cache. It is the building block shared by
// ReplayStream and the checkpoint-resume loop in internal/bench.
type ChunkReplayer struct {
	ports  []mem.Accessor
	caches []*cache.Cache
	fast   bool
}

// NewChunkReplayer prepares a replayer for a stream with the given PE
// count over ports (at least pes of them).
func NewChunkReplayer(pes int, ports []mem.Accessor) (*ChunkReplayer, error) {
	if len(ports) < pes {
		return nil, fmt.Errorf("trace: need %d ports, have %d", pes, len(ports))
	}
	caches, fast := cachePorts(pes, ports)
	return &ChunkReplayer{ports: ports, caches: caches, fast: fast}, nil
}

// Replay replays one decoded chunk; base is the absolute trace index
// of refs[0], used in error labels.
func (cr *ChunkReplayer) Replay(refs []Ref, base int) error {
	if cr.fast {
		return replayRefs(refs, cr.caches, base)
	}
	return replayGenericRefs(refs, cr.ports, base)
}

// ReplayStream replays every remaining reference of d through ports in
// chunks, never materializing the full stream. It returns the number of
// references replayed. Ports must match the stream's PE count, as in
// Replay; the layout the ports were built with must equal d.Layout().
func ReplayStream(d *Reader, ports []mem.Accessor) (int, error) {
	cr, err := NewChunkReplayer(d.pes, ports)
	if err != nil {
		return 0, err
	}
	buf := make([]Ref, refsPerChunk)
	total := 0
	for {
		n, err := d.Next(buf)
		if n > 0 {
			if rerr := cr.Replay(buf[:n], total); rerr != nil {
				return total, rerr
			}
			total += n
		}
		if err == io.EOF {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}

// VerifyInfo summarizes a verified artifact stream.
type VerifyInfo struct {
	Version int    // on-disk format version
	PEs     int    // header PE count
	Refs    uint64 // references decoded and validated
	Chunks  uint64 // decode batches (v3: CRC-verified frames)
	Bytes   int64  // bytes consumed
}

// Verify stream-validates a serialized trace end to end — header
// (and its v3 CRC), chunk framing, chunk checksums, and every
// reference's PE and op — without building a machine or replaying.
// The first damage fails with the same byte-offset-labeled error a
// replay would produce.
func Verify(r io.Reader) (*VerifyInfo, error) {
	d, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	buf := make([]Ref, refsPerChunk)
	for {
		_, err := d.Next(buf)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	return &VerifyInfo{
		Version: d.version,
		PEs:     d.pes,
		Refs:    d.read,
		Chunks:  d.chunks,
		Bytes:   d.off,
	}, nil
}
