package trace

import (
	"encoding/binary"
	"fmt"
	"io"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/kl1/word"
	"pimcache/internal/mem"
)

// Reader streams a serialized trace without materializing the whole
// reference slice, so multi-gigabyte streams replay in constant memory.
// It validates everything it decodes: the header's PE count and layout,
// and every reference's PE and op byte — a corrupt stream yields a clean
// error, never an out-of-range index inside the replay loop.
type Reader struct {
	r      io.Reader
	pes    int
	layout mem.Layout
	n      uint64 // declared ref count
	read   uint64 // refs decoded so far
	buf    []byte

	progress func(n int) // optional decode-progress hook (see SetProgress)
}

// SetProgress installs a hook called after every decoded chunk with the
// number of references just decoded. Streaming replays use it to feed a
// heartbeat (obs.Heartbeat.Add); a nil fn disables the hook.
func (d *Reader) SetProgress(fn func(n int)) { d.progress = fn }

// NewReader reads and validates the stream header, leaving r positioned
// at the first reference.
func NewReader(r io.Reader) (*Reader, error) {
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(r, got); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(got) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", got)
	}
	hdr := make([]byte, 32)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	pes := int(binary.LittleEndian.Uint32(hdr[0:]))
	if pes < 1 || pes > bus.MaxPEs {
		return nil, fmt.Errorf("trace: header PE count %d outside [1, %d]", pes, bus.MaxPEs)
	}
	var total uint64
	for off := 4; off <= 20; off += 4 {
		total += uint64(binary.LittleEndian.Uint32(hdr[off:]))
	}
	if total > 1<<32 {
		// Addresses are 32 bits on disk; a layout wider than the address
		// space is corrupt (and would demand an absurd memory allocation
		// at replay time).
		return nil, fmt.Errorf("trace: header layout spans %d words, exceeding the 32-bit address space", total)
	}
	return &Reader{
		r:   r,
		pes: pes,
		layout: mem.Layout{
			InstWords: int(binary.LittleEndian.Uint32(hdr[4:])),
			HeapWords: int(binary.LittleEndian.Uint32(hdr[8:])),
			GoalWords: int(binary.LittleEndian.Uint32(hdr[12:])),
			SuspWords: int(binary.LittleEndian.Uint32(hdr[16:])),
			CommWords: int(binary.LittleEndian.Uint32(hdr[20:])),
		},
		n:   binary.LittleEndian.Uint64(hdr[24:]),
		buf: make([]byte, refBytes*refsPerChunk),
	}, nil
}

// PEs reports the header's PE count.
func (d *Reader) PEs() int { return d.pes }

// Layout reports the header's memory layout.
func (d *Reader) Layout() mem.Layout { return d.layout }

// Len reports the header's declared reference count. It is validated
// incrementally: a stream shorter than declared fails Next with a
// truncation error, so Len is trustworthy only once Next returned io.EOF.
func (d *Reader) Len() uint64 { return d.n }

// Next decodes up to len(dst) references (at most one chunk per call)
// into dst and returns how many were decoded. It returns io.EOF —
// possibly alongside the final references — once all declared references
// have been delivered.
func (d *Reader) Next(dst []Ref) (int, error) {
	remaining := d.n - d.read
	if remaining == 0 {
		return 0, io.EOF
	}
	n := len(dst)
	if uint64(n) > remaining {
		n = int(remaining)
	}
	if n > refsPerChunk {
		n = refsPerChunk
	}
	if n == 0 {
		return 0, nil
	}
	chunk := d.buf[:n*refBytes]
	if _, err := io.ReadFull(d.r, chunk); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, fmt.Errorf("trace: stream truncated at ref %d of %d", d.read, d.n)
		}
		return 0, err
	}
	for j := 0; j < n; j++ {
		b := chunk[j*refBytes : j*refBytes+refBytes]
		if int(b[0]) >= d.pes {
			return 0, fmt.Errorf("trace: ref %d: PE %d out of range (trace has %d PEs)", d.read+uint64(j), b[0], d.pes)
		}
		if cache.Op(b[1]) >= cache.NumOps {
			return 0, fmt.Errorf("trace: ref %d: unknown op %d", d.read+uint64(j), b[1])
		}
		dst[j] = Ref{
			PE:   b[0],
			Op:   cache.Op(b[1]),
			Addr: word.Addr(binary.LittleEndian.Uint32(b[2:6])),
		}
	}
	d.read += uint64(n)
	if d.progress != nil {
		d.progress(n)
	}
	if d.read == d.n {
		return n, io.EOF
	}
	return n, nil
}

// ReplayStream replays every remaining reference of d through ports in
// chunks, never materializing the full stream. It returns the number of
// references replayed. Ports must match the stream's PE count, as in
// Replay; the layout the ports were built with must equal d.Layout().
func ReplayStream(d *Reader, ports []mem.Accessor) (int, error) {
	if len(ports) < d.pes {
		return 0, fmt.Errorf("trace: need %d ports, have %d", d.pes, len(ports))
	}
	caches, fast := cachePorts(d.pes, ports)
	buf := make([]Ref, refsPerChunk)
	total := 0
	for {
		n, err := d.Next(buf)
		if n > 0 {
			var rerr error
			if fast {
				rerr = replayRefs(buf[:n], caches, total)
			} else {
				rerr = replayGenericRefs(buf[:n], ports, total)
			}
			if rerr != nil {
				return total, rerr
			}
			total += n
		}
		if err == io.EOF {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}
