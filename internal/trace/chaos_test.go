package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"pimcache/internal/chaos"
)

// TestChaosMatrixDecode drives the decoder through every planned
// reader fault and asserts the robustness property end to end: each
// injected fault yields either a clean labeled error or a correct,
// complete decode — never a silently short or corrupt trace. The v3
// format must catch every flipped bit; v2 is only required to never
// return wrong refs without an error for the structural faults it can
// see (its known blind spot, FlipBit in an address, is the reason v3
// exists and is asserted as such).
func TestChaosMatrixDecode(t *testing.T) {
	tr := largeSyntheticTrace(refsPerChunk*2 + 123)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	size := int64(len(raw))

	const seeds = 300
	var clean, faulted int
	for seed := int64(0); seed < seeds; seed++ {
		f := chaos.PlanReads(seed, size)
		d, err := NewReader(chaos.NewReader(bytes.NewReader(raw), f))
		if err != nil {
			if errors.Is(err, chaos.ErrInjected) || !isSilent(err) {
				faulted++
				continue
			}
			t.Fatalf("seed %d (%s): unlabeled NewReader error %v", seed, f, err)
		}
		var got []Ref
		dst := make([]Ref, 1000)
		decodeErr := error(nil)
		for {
			n, err := d.Next(dst)
			got = append(got, dst[:n]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				decodeErr = err
				break
			}
		}
		if decodeErr != nil {
			faulted++
			continue
		}
		// The decode claimed success: it must be complete and correct.
		if len(got) != tr.Len() {
			t.Fatalf("seed %d (%s): silent short decode: %d of %d refs", seed, f, len(got), tr.Len())
		}
		for i := range got {
			if got[i] != tr.Refs[i] {
				t.Fatalf("seed %d (%s): silent corruption at ref %d: %+v != %+v", seed, f, i, got[i], tr.Refs[i])
			}
		}
		clean++
	}
	// Sanity: the plan space actually exercised both outcomes.
	if clean == 0 || faulted == 0 {
		t.Fatalf("degenerate matrix: %d clean, %d faulted of %d seeds", clean, faulted, seeds)
	}
}

// isSilent reports whether err carries no context at all — the matrix
// treats any non-empty error as a clean labeled failure, and this
// guard only exists to catch a future decoder returning bare io.EOF
// in disguise.
func isSilent(err error) bool { return err == nil || err.Error() == "" }

// TestChaosV2FlipBitBlindSpot documents why v3 exists: a bit flipped
// in a v2 address byte decodes "successfully" into a wrong reference.
// If this test ever fails, v2's blind spot has been fixed and the
// matrix above can drop its version split.
func TestChaosV2FlipBitBlindSpot(t *testing.T) {
	tr := largeSyntheticTrace(500)
	var buf bytes.Buffer
	if err := tr.WriteVersion(&buf, 2); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip a bit in the address of ref 100.
	off := int64(len(magicV2) + headerBytes + 100*refBytes + 3)
	r := chaos.NewReader(bytes.NewReader(raw), chaos.Fault{Kind: chaos.FlipBit, Offset: off, Bit: 2})
	got, err := Read(r)
	if err != nil {
		t.Fatalf("v2 decode failed (blind spot closed?): %v", err)
	}
	if got.Refs[100] == tr.Refs[100] {
		t.Fatal("flip did not land where expected")
	}

	// The same flip under v3 framing is caught.
	var buf3 bytes.Buffer
	if err := tr.Write(&buf3); err != nil {
		t.Fatal(err)
	}
	off3 := int64(len(magicV3) + headerBytes + 4 + frameBytes + 100*refBytes + 3)
	r3 := chaos.NewReader(bytes.NewReader(buf3.Bytes()), chaos.Fault{Kind: chaos.FlipBit, Offset: off3, Bit: 2})
	if _, err := Read(r3); err == nil {
		t.Fatal("v3 accepted a flipped address bit")
	}
}
