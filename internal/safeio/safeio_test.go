package safeio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "artifact.bin")
	if err := WriteFileBytes(path, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "one" {
		t.Fatalf("content %q, want %q", got, "one")
	}
	if err := WriteFileBytes(path, []byte("two")); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "two" {
		t.Fatalf("content %q, want %q", got, "two")
	}
}

// TestWriteFileFailureLeavesOldContent is the durability contract: a
// failed write must leave the previous file byte-identical and must
// not leak its temporary sibling.
func TestWriteFileFailureLeavesOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.bin")
	if err := WriteFileBytes(path, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("torn write")
	err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "half-writ") // partial content that must never surface
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error %v, want wrapped %v", err, boom)
	}
	if got, _ := os.ReadFile(path); string(got) != "durable" {
		t.Fatalf("old content clobbered: %q", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("leaked temp file %s", e.Name())
		}
	}
}

func TestWriteFileMissingDir(t *testing.T) {
	err := WriteFileBytes(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"))
	if err == nil {
		t.Fatal("want error for missing directory")
	}
}
