// Package safeio is the single atomic-write seam for every artifact
// the toolchain produces: traces, checkpoints, run manifests,
// baselines. The durability contract is all-or-nothing — a reader
// either sees the complete previous file or the complete new one,
// never a torn prefix — which is what makes crash-safe checkpointing
// possible: a kill mid-checkpoint leaves the previous checkpoint
// intact and resumable.
//
// The mechanism is the classic write-temp → fsync → rename sequence:
// the new content is written to a unique temporary file in the
// destination's directory (same filesystem, so the rename is atomic),
// fsynced so the data is durable before it becomes visible, then
// renamed over the destination. On any error the temporary file is
// removed and the destination is untouched.
package safeio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with the bytes write produces.
// write receives a buffered-enough *os.File; it must not assume the
// file's name is path (it is a temporary sibling until the final
// rename). If write (or any durability step) fails, path is left
// exactly as it was.
func WriteFile(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("safeio: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("safeio: writing %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("safeio: sync %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("safeio: close %s: %w", path, err)
	}
	if err = os.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("safeio: chmod %s: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("safeio: %w", err)
	}
	syncDir(dir)
	return nil
}

// WriteFileBytes is WriteFile for callers that already hold the full
// content in memory.
func WriteFileBytes(path string, data []byte) error {
	return WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// syncDir makes the rename itself durable by fsyncing the directory.
// Best-effort: some filesystems (and platforms) refuse to fsync
// directories, and the rename's atomicity does not depend on it —
// only the crash-durability of the *new name*, which matters less
// than never exposing a torn file.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
