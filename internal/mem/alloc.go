package mem

import (
	"fmt"

	"pimcache/internal/kl1/word"
)

// Bump is the heap allocator: per-PE bump allocation over a private
// segment of the shared heap area. KL1 allocates new structures at the
// top of the heap ("an ever-growing stack"); reclamation is only by the
// copying garbage collector, which resets Next.
//
// The allocation pointer itself is processor state (a register in the
// paper's accounting), so Alloc generates no simulated memory references;
// the writes that initialize the allocated cells do.
type Bump struct {
	Base  word.Addr
	Next  word.Addr
	Limit word.Addr

	// Semispace state for stop-and-copy collection. When the allocator
	// was built with NewSemispace, Flip exchanges the active half with
	// [otherBase, otherLimit) and Scan tracks the Cheney gray boundary.
	otherBase  word.Addr
	otherLimit word.Addr
	semispace  bool
	Scan       word.Addr
}

// NewBump returns a bump allocator over [base, limit).
func NewBump(base, limit word.Addr) *Bump {
	return &Bump{Base: base, Next: base, Limit: limit}
}

// NewSemispace splits [base, limit) into two halves and allocates from
// the first; Flip switches to the other for copying collection.
func NewSemispace(base, limit word.Addr) *Bump {
	mid := base + (limit-base)/2
	return &Bump{
		Base: base, Next: base, Limit: mid,
		otherBase: mid, otherLimit: limit,
		semispace: true,
	}
}

// Semispace reports whether the allocator has a flip target.
func (b *Bump) Semispace() bool { return b.semispace }

// OtherBase returns the inactive half's base (semispace allocators only).
func (b *Bump) OtherBase() word.Addr { return b.otherBase }

// OtherLimit returns the inactive half's limit.
func (b *Bump) OtherLimit() word.Addr { return b.otherLimit }

// Flip makes the inactive half active and empty, and resets the Cheney
// scan pointer. The collector then evacuates live objects into it.
func (b *Bump) Flip() {
	if !b.semispace {
		panic("mem: Flip on a non-semispace allocator")
	}
	b.Base, b.otherBase = b.otherBase, b.Base
	b.Limit, b.otherLimit = b.otherLimit, b.Limit
	b.Next = b.Base
	b.Scan = b.Base
}

// Alloc reserves n contiguous words and returns the base address. ok is
// false when the segment is exhausted, signalling that a garbage
// collection is required.
func (b *Bump) Alloc(n int) (a word.Addr, ok bool) {
	if b.Next+word.Addr(n) > b.Limit {
		return 0, false
	}
	a = b.Next
	b.Next += word.Addr(n)
	return a, true
}

// AllocAligned reserves n words starting at the next multiple of align.
// The direct-write command only applies to writes that open a fresh cache
// block, so the runtime block-aligns records it intends to DW.
func (b *Bump) AllocAligned(n, align int) (a word.Addr, ok bool) {
	next := (b.Next + word.Addr(align-1)) &^ word.Addr(align-1)
	if next+word.Addr(n) > b.Limit {
		return 0, false
	}
	b.Next = next + word.Addr(n)
	return next, true
}

// Used reports the number of allocated words.
func (b *Bump) Used() int { return int(b.Next - b.Base) }

// Free reports the remaining capacity in words.
func (b *Bump) Free() int { return int(b.Limit - b.Next) }

// Reset rewinds the allocator to base (used after a copying collection
// has evacuated the segment).
func (b *Bump) Reset() { b.Next = b.Base }

// FreeList manages fixed-size records within one PE's segment of a
// record area (goal, suspension or communication). The paper states these
// areas are "managed with free-lists"; the links live in simulated memory
// (the first word of each free record), so popping and pushing records
// generates real memory traffic, while the list head is processor state.
//
// Records are block-aligned when recordWords is a multiple of the cache
// block size, which lets the runtime create records with DW and consume
// them with ER as described in Section 2.3 of the paper.
type FreeList struct {
	recordWords int
	head        word.Addr // NilAddr when empty
	free        int
	capacity    int
}

// NewFreeList carves [base, limit) into records of recordWords words and
// links them through memory directly (initialization is system boot, not
// program execution, so it is not routed through a cache port).
func NewFreeList(m *Memory, base, limit word.Addr, recordWords int) *FreeList {
	if recordWords < 1 {
		panic(fmt.Sprintf("mem: record size %d too small", recordWords))
	}
	n := int(limit-base) / recordWords
	fl := &FreeList{recordWords: recordWords, free: n, capacity: n}
	fl.head = word.NilAddr
	// Link records last-to-first so allocation proceeds from low
	// addresses upward, which keeps early records block-contiguous.
	for i := n - 1; i >= 0; i-- {
		rec := base + word.Addr(i*recordWords)
		m.Write(rec, word.Free(fl.head))
		fl.head = rec
	}
	return fl
}

// RecordWords reports the record size.
func (fl *FreeList) RecordWords() int { return fl.recordWords }

// Free reports how many records are available.
func (fl *FreeList) Free() int { return fl.free }

// Capacity reports the total number of records.
func (fl *FreeList) Capacity() int { return fl.capacity }

// Alloc pops a record, reading its link word through acc. ok is false
// when the list is empty.
func (fl *FreeList) Alloc(acc Accessor) (a word.Addr, ok bool) {
	if fl.head == word.NilAddr {
		return 0, false
	}
	a = fl.head
	link := acc.Read(a)
	if link.Tag() != word.TagFree {
		panic(fmt.Sprintf("mem: free list corrupted at %#x: %v", a, link))
	}
	fl.head = link.Addr()
	fl.free--
	return a, true
}

// Push returns a record to the list, writing its link word through acc.
// The record need not have been allocated from this list: goal records
// migrate between PEs during load balancing and are freed to the
// consumer's list.
func (fl *FreeList) Push(acc Accessor, a word.Addr) {
	acc.Write(a, word.Free(fl.head))
	fl.head = a
	fl.free++
}
