package mem

import (
	"testing"
	"testing/quick"

	"pimcache/internal/kl1/word"
)

func smallLayout() Layout {
	return Layout{InstWords: 64, HeapWords: 256, GoalWords: 128, SuspWords: 64, CommWords: 32}
}

func TestLayoutBounds(t *testing.T) {
	l := smallLayout()
	b := l.Bounds()
	if b.InstBase != reservedWords {
		t.Fatalf("InstBase = %d", b.InstBase)
	}
	if b.HeapBase != b.InstBase+64 || b.GoalBase != b.HeapBase+256 ||
		b.SuspBase != b.GoalBase+128 || b.CommBase != b.SuspBase+64 ||
		b.End != b.CommBase+32 {
		t.Fatalf("unexpected bounds %+v", b)
	}
	if l.TotalWords() != int(b.End) {
		t.Errorf("TotalWords = %d, want %d", l.TotalWords(), b.End)
	}
}

func TestAreaOf(t *testing.T) {
	b := smallLayout().Bounds()
	cases := []struct {
		a    word.Addr
		want Area
	}{
		{0, AreaNone},
		{reservedWords - 1, AreaNone},
		{b.InstBase, AreaInst},
		{b.HeapBase - 1, AreaInst},
		{b.HeapBase, AreaHeap},
		{b.GoalBase - 1, AreaHeap},
		{b.GoalBase, AreaGoal},
		{b.SuspBase, AreaSusp},
		{b.CommBase, AreaComm},
		{b.End - 1, AreaComm},
		{b.End, AreaNone},
		{b.End + 1000, AreaNone},
	}
	for _, tc := range cases {
		if got := b.AreaOf(tc.a); got != tc.want {
			t.Errorf("AreaOf(%d) = %v, want %v", tc.a, got, tc.want)
		}
	}
}

func TestAreaOfExhaustiveProperty(t *testing.T) {
	// Every address below End maps to exactly the area whose range
	// contains it, and area boundaries are contiguous.
	b := smallLayout().Bounds()
	prev := AreaNone
	transitions := 0
	for a := word.Addr(0); a < b.End; a++ {
		ar := b.AreaOf(a)
		if ar != prev {
			transitions++
			prev = ar
		}
	}
	if transitions != 5 { // none->inst->heap->goal->susp->comm
		t.Errorf("expected 5 area transitions, got %d", transitions)
	}
}

func TestAreaString(t *testing.T) {
	if AreaHeap.String() != "heap" || AreaComm.String() != "comm" {
		t.Error("unexpected area names")
	}
	if Area(99).String() != "area(99)" {
		t.Error("out-of-range area name")
	}
}

func TestMemoryReadWrite(t *testing.T) {
	m := New(smallLayout())
	a := m.Bounds().HeapBase
	m.Write(a, word.Int(7))
	if got := m.Read(a); got.IntVal() != 7 {
		t.Errorf("read back %v", got)
	}
}

func TestMemoryBlockOps(t *testing.T) {
	m := New(smallLayout())
	base := m.Bounds().HeapBase
	src := []word.Word{word.Int(1), word.Int(2), word.Int(3), word.Int(4)}
	m.WriteBlock(base, src)
	dst := make([]word.Word, 4)
	m.ReadBlock(base, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("block word %d = %v, want %v", i, dst[i], src[i])
		}
	}
}

func TestBumpAlloc(t *testing.T) {
	b := NewBump(100, 110)
	a1, ok := b.Alloc(4)
	if !ok || a1 != 100 {
		t.Fatalf("first alloc = %d,%v", a1, ok)
	}
	a2, ok := b.Alloc(4)
	if !ok || a2 != 104 {
		t.Fatalf("second alloc = %d,%v", a2, ok)
	}
	if b.Used() != 8 || b.Free() != 2 {
		t.Errorf("Used=%d Free=%d", b.Used(), b.Free())
	}
	if _, ok := b.Alloc(4); ok {
		t.Error("allocation past limit succeeded")
	}
	// Exact fit must succeed.
	if a3, ok := b.Alloc(2); !ok || a3 != 108 {
		t.Errorf("exact-fit alloc = %d,%v", a3, ok)
	}
	b.Reset()
	if b.Used() != 0 {
		t.Error("Reset did not rewind")
	}
}

func TestBumpAllocAligned(t *testing.T) {
	b := NewBump(101, 200)
	a, ok := b.AllocAligned(4, 4)
	if !ok || a != 104 {
		t.Fatalf("aligned alloc = %d,%v; want 104", a, ok)
	}
	// Already aligned: no padding.
	a, ok = b.AllocAligned(4, 4)
	if !ok || a != 108 {
		t.Fatalf("second aligned alloc = %d, want 108", a)
	}
}

func TestBumpAllocAlignedProperty(t *testing.T) {
	f := func(start uint16, n, align uint8) bool {
		al := 1 << (align % 5) // 1,2,4,8,16
		b := NewBump(word.Addr(start), word.Addr(start)+1<<20)
		a, ok := b.AllocAligned(int(n)+1, al)
		return ok && int(a)%al == 0 && a >= word.Addr(start)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFreeListAllocFree(t *testing.T) {
	m := New(smallLayout())
	base := m.Bounds().GoalBase
	fl := NewFreeList(m, base, base+32, 8)
	if fl.Capacity() != 4 || fl.Free() != 4 {
		t.Fatalf("capacity=%d free=%d", fl.Capacity(), fl.Free())
	}
	acc := DirectAccessor{m}
	a1, ok := fl.Alloc(acc)
	if !ok || a1 != base {
		t.Fatalf("first alloc = %#x,%v; want %#x", a1, ok, base)
	}
	a2, _ := fl.Alloc(acc)
	if a2 != base+8 {
		t.Fatalf("second alloc = %#x, want %#x", a2, base+8)
	}
	fl.Push(acc, a1)
	if fl.Free() != 3 {
		t.Errorf("free = %d, want 3", fl.Free())
	}
	a3, _ := fl.Alloc(acc)
	if a3 != a1 {
		t.Errorf("LIFO violated: got %#x, want %#x", a3, a1)
	}
}

func TestFreeListExhaustion(t *testing.T) {
	m := New(smallLayout())
	base := m.Bounds().SuspBase
	fl := NewFreeList(m, base, base+8, 4)
	acc := DirectAccessor{m}
	if _, ok := fl.Alloc(acc); !ok {
		t.Fatal("alloc 1 failed")
	}
	if _, ok := fl.Alloc(acc); !ok {
		t.Fatal("alloc 2 failed")
	}
	if _, ok := fl.Alloc(acc); ok {
		t.Error("alloc from empty list succeeded")
	}
}

func TestFreeListCrossListFree(t *testing.T) {
	// A record allocated from one PE's list may be freed to another's,
	// as happens when goals migrate during load balancing.
	m := New(smallLayout())
	base := m.Bounds().GoalBase
	acc := DirectAccessor{m}
	flA := NewFreeList(m, base, base+16, 8)
	flB := NewFreeList(m, base+16, base+32, 8)
	a, _ := flA.Alloc(acc)
	flB.Push(acc, a)
	if flB.Free() != 3 {
		t.Fatalf("flB.Free = %d, want 3", flB.Free())
	}
	got, _ := flB.Alloc(acc)
	if got != a {
		t.Errorf("expected migrated record back, got %#x", got)
	}
}

func TestFreeListAllocFreeInvariant(t *testing.T) {
	// Property: after any interleaving of allocs and frees, the number of
	// live records plus Free() equals Capacity(), and no record is handed
	// out twice.
	m := New(smallLayout())
	base := m.Bounds().GoalBase
	fl := NewFreeList(m, base, base+96, 8)
	acc := DirectAccessor{m}
	live := make(map[word.Addr]bool)
	seq := []byte{1, 1, 1, 0, 1, 0, 0, 1, 1, 1, 1, 1, 1, 0, 0, 0, 1}
	for i, op := range seq {
		if op == 1 {
			a, ok := fl.Alloc(acc)
			if !ok {
				continue
			}
			if live[a] {
				t.Fatalf("step %d: record %#x double-allocated", i, a)
			}
			live[a] = true
		} else {
			for a := range live {
				fl.Push(acc, a)
				delete(live, a)
				break
			}
		}
		if len(live)+fl.Free() != fl.Capacity() {
			t.Fatalf("step %d: live %d + free %d != cap %d", i, len(live), fl.Free(), fl.Capacity())
		}
	}
}

func TestDirectAccessor(t *testing.T) {
	m := New(smallLayout())
	acc := DirectAccessor{m}
	a := m.Bounds().HeapBase
	acc.Write(a, word.Int(1))
	acc.DirectWrite(a+1, word.Int(2))
	acc.UnlockWrite(a+2, word.Int(3))
	if acc.Read(a).IntVal() != 1 || acc.ExclusiveRead(a+1).IntVal() != 2 ||
		acc.ReadPurge(a+2).IntVal() != 3 || acc.ReadInvalidate(a).IntVal() != 1 {
		t.Error("direct accessor round trip failed")
	}
	if w, ok := acc.LockRead(a); !ok || w.IntVal() != 1 {
		t.Error("LockRead failed")
	}
	acc.Unlock(a) // no-op, must not panic
}

func TestSemispaceFlip(t *testing.T) {
	b := NewSemispace(100, 300)
	if !b.Semispace() {
		t.Fatal("not marked semispace")
	}
	if b.Base != 100 || b.Limit != 200 || b.OtherBase() != 200 || b.OtherLimit() != 300 {
		t.Fatalf("halves wrong: %+v", b)
	}
	a, ok := b.Alloc(50)
	if !ok || a != 100 {
		t.Fatalf("alloc %d,%v", a, ok)
	}
	b.Flip()
	if b.Base != 200 || b.Limit != 300 || b.Next != 200 || b.Scan != 200 {
		t.Fatalf("post-flip state: %+v", b)
	}
	if b.OtherBase() != 100 || b.OtherLimit() != 200 {
		t.Fatalf("other half wrong after flip: %+v", b)
	}
	// Allocation proceeds in the new half.
	a, ok = b.Alloc(10)
	if !ok || a != 200 {
		t.Fatalf("post-flip alloc %d,%v", a, ok)
	}
	// Flipping back restores the original half, empty.
	b.Flip()
	if b.Base != 100 || b.Next != 100 {
		t.Fatalf("second flip: %+v", b)
	}
}

func TestFlipOnPlainBumpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Flip on plain bump did not panic")
		}
	}()
	NewBump(0, 10).Flip()
}
