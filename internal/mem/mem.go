// Package mem models the shared global memory of the simulated PIM
// cluster: a flat word-addressed space partitioned into the five KL1
// storage areas (instruction, heap, goal, suspension, communication), the
// shared-memory module backing it, and the allocators the KL1 runtime
// uses inside those areas (bump allocation for the heap, free lists for
// the record areas).
package mem

import (
	"fmt"

	"pimcache/internal/kl1/word"
)

// Area identifies one of the KL1 storage areas. The paper's evaluation
// (Tables 2 and 4) attributes memory references and bus cycles to these
// areas, and the optimized cache commands are enabled per area.
type Area uint8

const (
	// AreaNone is returned for addresses outside every area (including
	// the reserved null page).
	AreaNone Area = iota
	// AreaInst holds compiled abstract-machine code.
	AreaInst
	// AreaHeap holds terms: variables, lists, structures.
	AreaHeap
	// AreaGoal holds goal records (free-list managed).
	AreaGoal
	// AreaSusp holds suspension records (free-list managed).
	AreaSusp
	// AreaComm holds inter-PE message buffers (free-list managed).
	AreaComm

	// NumAreas counts the identifiers above (including AreaNone) and
	// sizes per-area statistics arrays.
	NumAreas
)

var areaNames = [NumAreas]string{"none", "inst", "heap", "goal", "susp", "comm"}

// String returns the area's short name as used in the paper's tables.
func (a Area) String() string {
	if int(a) < len(areaNames) {
		return areaNames[a]
	}
	return fmt.Sprintf("area(%d)", uint8(a))
}

// Layout describes the sizes, in words, of the five areas. The areas are
// placed contiguously after a one-word reserved null page so that address
// zero is never a valid cell.
type Layout struct {
	InstWords int
	HeapWords int
	GoalWords int
	SuspWords int
	CommWords int
}

// DefaultLayout returns a layout comfortably sized for the bundled
// benchmarks: the heap dominates, as in the paper (over 80% of shared
// memory for large programs).
func DefaultLayout() Layout {
	return Layout{
		InstWords: 64 << 10,
		HeapWords: 8 << 20,
		GoalWords: 1 << 20,
		SuspWords: 256 << 10,
		CommWords: 64 << 10,
	}
}

const reservedWords = 16 // null page: addresses 0..15 are never valid cells

// Bounds give the half-open address ranges of each area.
type Bounds struct {
	InstBase, HeapBase, GoalBase, SuspBase, CommBase, End word.Addr
}

// Bounds computes the area base addresses for the layout.
func (l Layout) Bounds() Bounds {
	var b Bounds
	b.InstBase = reservedWords
	b.HeapBase = b.InstBase + word.Addr(l.InstWords)
	b.GoalBase = b.HeapBase + word.Addr(l.HeapWords)
	b.SuspBase = b.GoalBase + word.Addr(l.GoalWords)
	b.CommBase = b.SuspBase + word.Addr(l.SuspWords)
	b.End = b.CommBase + word.Addr(l.CommWords)
	return b
}

// TotalWords reports the size of the whole simulated address space.
func (l Layout) TotalWords() int { return int(l.Bounds().End) }

// AreaOf classifies an address.
func (b Bounds) AreaOf(a word.Addr) Area {
	switch {
	case a < b.InstBase:
		return AreaNone
	case a < b.HeapBase:
		return AreaInst
	case a < b.GoalBase:
		return AreaHeap
	case a < b.SuspBase:
		return AreaGoal
	case a < b.CommBase:
		return AreaSusp
	case a < b.End:
		return AreaComm
	default:
		return AreaNone
	}
}

// Memory is the shared global memory module. It stores data only; timing
// (the eight-cycle access latency, bus occupancy) is modelled by the bus
// package. Memory is not safe for concurrent use: the machine serializes
// all accesses, mirroring the single shared bus.
type Memory struct {
	words  []word.Word
	size   int
	bounds Bounds
}

// New allocates a memory for the layout.
func New(l Layout) *Memory {
	return &Memory{
		words:  make([]word.Word, l.TotalWords()),
		size:   l.TotalWords(),
		bounds: l.Bounds(),
	}
}

// NewStatsOnly builds a memory with no word store for stats-only trace
// replay: the layout, bounds and Size are those of a real memory (the bus
// sizes its presence table from Size), but no data is ever stored. Every
// data access panics — coherence decisions never depend on values, so in
// a correctly gated stats-only machine none of these methods is reached;
// a panic here means a data-plane gate is missing, not that the caller
// should tolerate zeros.
func NewStatsOnly(l Layout) *Memory {
	return &Memory{size: l.TotalWords(), bounds: l.Bounds()}
}

// StatsOnly reports whether this memory carries no word store.
func (m *Memory) StatsOnly() bool { return m.words == nil && m.size > 0 }

// Bounds returns the area map.
func (m *Memory) Bounds() Bounds { return m.bounds }

// AreaOf classifies an address against this memory's layout.
func (m *Memory) AreaOf(a word.Addr) Area { return m.bounds.AreaOf(a) }

// Size reports the total number of words.
func (m *Memory) Size() int { return m.size }

func (m *Memory) checkData() {
	if m.words == nil && m.size > 0 {
		panic("mem: data access on a stats-only memory (missing data-plane gate)")
	}
}

// Read returns the word at a. It panics on out-of-range addresses: the
// simulated machine's address arithmetic is supposed to be correct, so a
// wild address is a simulator bug.
func (m *Memory) Read(a word.Addr) word.Word {
	m.checkData()
	return m.words[a]
}

// Write stores w at a.
func (m *Memory) Write(a word.Addr, w word.Word) {
	m.checkData()
	m.words[a] = w
}

// ReadBlock copies the block of n words starting at base into dst.
func (m *Memory) ReadBlock(base word.Addr, dst []word.Word) {
	m.checkData()
	copy(dst, m.words[base:int(base)+len(dst)])
}

// WriteBlock stores src at base.
func (m *Memory) WriteBlock(base word.Addr, src []word.Word) {
	m.checkData()
	copy(m.words[base:int(base)+len(src)], src)
}

// Snapshot returns a copy of the full word store, for machine-level
// checkpoints.
func (m *Memory) Snapshot() []word.Word {
	return append([]word.Word(nil), m.words...)
}

// Restore overwrites the word store from a snapshot of a memory with the
// same layout.
func (m *Memory) Restore(words []word.Word) error {
	if len(words) != len(m.words) {
		return fmt.Errorf("mem: snapshot has %d words, memory has %d", len(words), len(m.words))
	}
	copy(m.words, words)
	return nil
}

// Accessor is the simulated-memory access interface used by the KL1
// runtime. It is implemented by each PE's cache port; every call may
// generate cache and bus activity. The optimized operations degrade to
// plain reads/writes exactly as the paper specifies when their
// preconditions do not hold or when they are disabled for an area.
type Accessor interface {
	// Read performs a normal read (R).
	Read(a word.Addr) word.Word
	// Write performs a normal write (W) with fetch-on-write allocation.
	Write(a word.Addr, w word.Word)
	// LockRead (LR) acquires the word lock and returns the word. ok is
	// false when the word is locked by another PE: the caller must undo
	// any locks it already holds and retry the whole operation after the
	// machine delivers the unlock broadcast (busy wait costs no bus
	// cycles).
	LockRead(a word.Addr) (w word.Word, ok bool)
	// UnlockWrite (UW) writes the word and releases the lock.
	UnlockWrite(a word.Addr, w word.Word)
	// Unlock (U) releases the lock without writing.
	Unlock(a word.Addr)
	// DirectWrite (DW) writes without fetch-on-write. Callers must only
	// use it on fresh memory no remote cache can hold.
	DirectWrite(a word.Addr, w word.Word)
	// ExclusiveRead (ER) reads and purges/invalidates block copies that
	// are dead after the read (write-once/read-once data).
	ExclusiveRead(a word.Addr) word.Word
	// ReadPurge (RP) reads and forcibly purges the block.
	ReadPurge(a word.Addr) word.Word
	// ReadInvalidate (RI) reads, taking the block exclusively so an
	// immediately following write needs no invalidate bus command.
	ReadInvalidate(a word.Addr) word.Word
}

// DirectAccessor adapts a Memory to the Accessor interface with no cache
// or timing model. It is used for loading programs, by tests, and as the
// "infinitely fast memory" baseline. Lock operations always succeed; the
// adapter tracks no lock state.
type DirectAccessor struct{ M *Memory }

// Read implements Accessor.
func (d DirectAccessor) Read(a word.Addr) word.Word { return d.M.Read(a) }

// Write implements Accessor.
func (d DirectAccessor) Write(a word.Addr, w word.Word) { d.M.Write(a, w) }

// LockRead implements Accessor; it always succeeds.
func (d DirectAccessor) LockRead(a word.Addr) (word.Word, bool) { return d.M.Read(a), true }

// UnlockWrite implements Accessor.
func (d DirectAccessor) UnlockWrite(a word.Addr, w word.Word) { d.M.Write(a, w) }

// Unlock implements Accessor.
func (d DirectAccessor) Unlock(word.Addr) {}

// DirectWrite implements Accessor.
func (d DirectAccessor) DirectWrite(a word.Addr, w word.Word) { d.M.Write(a, w) }

// ExclusiveRead implements Accessor.
func (d DirectAccessor) ExclusiveRead(a word.Addr) word.Word { return d.M.Read(a) }

// ReadPurge implements Accessor.
func (d DirectAccessor) ReadPurge(a word.Addr) word.Word { return d.M.Read(a) }

// ReadInvalidate implements Accessor.
func (d DirectAccessor) ReadInvalidate(a word.Addr) word.Word { return d.M.Read(a) }
