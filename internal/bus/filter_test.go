package bus

import (
	"testing"

	"pimcache/internal/kl1/word"
)

// notifySnooper is a cache stand-in that keeps the bus presence filter
// current, the way the real cache does through BlockInstalled/BlockDropped.
type notifySnooper struct {
	bus    *Bus
	pe     int
	words  int
	blocks map[word.Addr][]word.Word
	dirty  map[word.Addr]bool
	snoops int
	invals int
}

func (n *notifySnooper) base(a word.Addr) word.Addr { return a &^ word.Addr(n.words-1) }

func (n *notifySnooper) install(base word.Addr, data []word.Word, dirty bool) {
	n.blocks[base] = append([]word.Word(nil), data...)
	if dirty {
		n.dirty[base] = true
	}
	n.bus.BlockInstalled(n.pe, base)
}

func (n *notifySnooper) drop(base word.Addr) {
	delete(n.blocks, base)
	delete(n.dirty, base)
	n.bus.BlockDropped(n.pe, base)
}

func (n *notifySnooper) SnoopFetch(a word.Addr, inval bool) ([]word.Word, bool, bool, bool, bool) {
	n.snoops++
	base := n.base(a)
	data, ok := n.blocks[base]
	if !ok {
		return nil, false, false, false, false
	}
	dirty := n.dirty[base]
	if inval {
		n.drop(base)
		return data, true, true, dirty, false
	}
	return data, true, true, dirty, true
}

func (n *notifySnooper) SnoopUpdate(a word.Addr, w word.Word) (bool, bool) {
	base := n.base(a)
	data, ok := n.blocks[base]
	if !ok {
		return false, false
	}
	data[a-base] = w
	return true, true
}

func (n *notifySnooper) SnoopInvalidate(a word.Addr) bool {
	n.invals++
	if _, ok := n.blocks[n.base(a)]; ok {
		wasDirty := n.dirty[n.base(a)]
		n.drop(n.base(a))
		return wasDirty
	}
	return false
}

func (n *notifySnooper) Holds(a word.Addr) bool { _, ok := n.blocks[n.base(a)]; return ok }

// notifyLockUnit mirrors the real lock directory's LockAcquired/LockReleased
// notifications.
type notifyLockUnit struct {
	bus     *Bus
	pe      int
	locked  map[word.Addr]bool
	checks  int
	unlocks int
}

func (n *notifyLockUnit) lock(a word.Addr) { n.locked[a] = true; n.bus.LockAcquired(n.pe) }

func (n *notifyLockUnit) unlock(a word.Addr) { delete(n.locked, a); n.bus.LockReleased(n.pe) }

func (n *notifyLockUnit) CheckLocked(a word.Addr) bool { n.checks++; return n.locked[a] }

func (n *notifyLockUnit) LocksInBlock(base word.Addr, words int) bool {
	n.checks++
	for a := range n.locked {
		if a >= base && a < base+word.Addr(words) {
			return true
		}
	}
	return false
}

func (n *notifyLockUnit) ObserveUnlock(word.Addr) { n.unlocks++ }

func newFilterBus(t *testing.T, peers int, disable bool) (*Bus, []*notifySnooper, []*notifyLockUnit) {
	t.Helper()
	b := New(Config{Timing: DefaultTiming(), BlockWords: 4, DisableFilters: disable}, testMemory())
	snoops := make([]*notifySnooper, peers)
	locks := make([]*notifyLockUnit, peers)
	for i := 0; i < peers; i++ {
		snoops[i] = &notifySnooper{bus: b, pe: i, words: 4, blocks: map[word.Addr][]word.Word{}, dirty: map[word.Addr]bool{}}
		locks[i] = &notifyLockUnit{bus: b, pe: i, locked: map[word.Addr]bool{}}
		b.Attach(i, snoops[i], locks[i])
	}
	return b, snoops, locks
}

func block4(v int64) []word.Word {
	return []word.Word{word.Int(v), word.Int(v + 1), word.Int(v + 2), word.Int(v + 3)}
}

// TestFilteredFetchVisitsOnlyHolders pins the tentpole behaviour: with the
// presence filter on, a fetch snoops only the PEs that actually hold the
// block.
func TestFilteredFetchVisitsOnlyHolders(t *testing.T) {
	b, snoops, _ := newFilterBus(t, 8, false)
	base := b.Memory().Bounds().HeapBase
	snoops[5].install(base, block4(70), false)

	res := b.Fetch(0, base+2, false, false, false)
	if !res.FromCache || res.Data[2] != word.Int(72) {
		t.Fatalf("fetch did not return holder data: %+v", res)
	}
	for i, s := range snoops {
		want := 0
		if i == 5 {
			want = 1
		}
		if s.snoops != want {
			t.Errorf("PE %d snooped %d times, want %d", i, s.snoops, want)
		}
	}
	// The unfiltered scan must agree with the filter after the transfer.
	if got, want := b.HolderMask(base), b.ScanHolders(base); got != want {
		t.Errorf("HolderMask = %b, ScanHolders = %b", got, want)
	}
}

// TestFilteredInvalidateVisitsOnlyHolders checks the invalidate path skips
// non-holders and drops the presence bits of the holders it visits.
func TestFilteredInvalidateVisitsOnlyHolders(t *testing.T) {
	b, snoops, _ := newFilterBus(t, 8, false)
	base := b.Memory().Bounds().HeapBase
	snoops[2].install(base, block4(10), false)
	snoops[6].install(base, block4(10), false)

	if ok, _ := b.Invalidate(1, base, false); !ok {
		t.Fatal("invalidate reported lock hit on lock-free system")
	}
	for i, s := range snoops {
		want := 0
		if i == 2 || i == 6 {
			want = 1
		}
		if s.invals != want {
			t.Errorf("PE %d saw %d invalidations, want %d", i, s.invals, want)
		}
	}
	if m := b.HolderMask(base); m != 0 {
		t.Errorf("presence mask %b after full invalidation, want 0", m)
	}
}

// TestDirtySupplierWins pins the Bus.fetch arbitration rule the simplified
// dirty-supplier branch must preserve: when several caches respond H, the
// (unique) modified copy is the one delivered, regardless of responder
// order, and every holder still responds. The fakes deliberately hold
// divergent data — impossible under coherence — to make the choice visible.
func TestDirtySupplierWins(t *testing.T) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"filtered", false}, {"unfiltered", true}} {
		t.Run(mode.name, func(t *testing.T) {
			b, snoops, _ := newFilterBus(t, 4, mode.disable)
			base := b.Memory().Bounds().HeapBase
			snoops[1].install(base, block4(100), false) // clean, responds first
			snoops[2].install(base, block4(200), true)  // dirty: must win
			snoops[3].install(base, block4(300), false) // clean, responds after

			res := b.Fetch(0, base, false, false, false)
			if !res.FromCache || !res.SupplierDirty || !res.Shared {
				t.Fatalf("unexpected result flags: %+v", res)
			}
			for i := 0; i < 4; i++ {
				if res.Data[i] != word.Int(int64(200+i)) {
					t.Fatalf("word %d = %v, want dirty supplier's %v", i, res.Data[i], word.Int(int64(200+i)))
				}
			}
			if got := b.Stats().Commands[CmdH]; got != 3 {
				t.Errorf("H responses = %d, want 3 (every holder answers)", got)
			}
		})
	}
}

// TestFilteredRemoteHolder checks the one-map-probe RemoteHolder agrees
// with the polling implementation.
func TestFilteredRemoteHolder(t *testing.T) {
	b, snoops, _ := newFilterBus(t, 4, false)
	base := b.Memory().Bounds().HeapBase
	if b.RemoteHolder(0, base) {
		t.Error("remote holder reported on empty system")
	}
	snoops[3].install(base, block4(1), false)
	if !b.RemoteHolder(0, base+3) {
		t.Error("remote holder missed")
	}
	// The requester's own copy must not count.
	if b.RemoteHolder(3, base) {
		t.Error("requester's own copy reported as remote")
	}
	snoops[3].drop(base)
	if b.RemoteHolder(0, base) {
		t.Error("stale remote holder after drop")
	}
}

// TestLockFilterSkipsIdlePEs checks lock polls short-circuit when no
// remote PE holds any lock, and otherwise visit only PEs with nonzero
// held-lock counts.
func TestLockFilterSkipsIdlePEs(t *testing.T) {
	b, _, locks := newFilterBus(t, 8, false)
	base := b.Memory().Bounds().HeapBase

	// No locks anywhere: the poll must not reach any directory.
	b.Fetch(0, base, false, false, false)
	for i, lu := range locks {
		if lu.checks != 0 {
			t.Errorf("PE %d polled %d times on lock-free system", i, lu.checks)
		}
	}

	// PE 5 takes a lock: polls reach PE 5 only (and never the requester).
	locks[5].lock(base + 1)
	if got := b.TotalLockCount(); got != 1 {
		t.Fatalf("TotalLockCount = %d, want 1", got)
	}
	res := b.Fetch(0, base+1, true, false, false)
	if !res.LockHit {
		t.Fatal("fetch of remotely locked word did not draw LH")
	}
	for i, lu := range locks {
		if i == 5 {
			if lu.checks == 0 {
				t.Error("lock-holding PE was never polled")
			}
		} else if lu.checks != 0 {
			t.Errorf("idle PE %d polled %d times", i, lu.checks)
		}
	}

	// The holder itself sees no poll for its own request.
	locks[5].checks = 0
	if b.Fetch(5, base+1, true, false, false).LockHit {
		t.Error("requester's own lock drew LH")
	}
	if locks[5].checks != 0 {
		t.Error("requester polled its own directory")
	}

	locks[5].unlock(base + 1)
	if got := b.TotalLockCount(); got != 0 {
		t.Errorf("TotalLockCount = %d after release, want 0", got)
	}
}

// TestUnlockBroadcastUnfiltered pins that UL reaches every PE even with
// filters on: busy-waiters hold no locks and no copy of the block, so no
// filter may prune the broadcast.
func TestUnlockBroadcastUnfiltered(t *testing.T) {
	b, _, locks := newFilterBus(t, 6, false)
	base := b.Memory().Bounds().HeapBase
	b.Unlock(2, base)
	for i, lu := range locks {
		want := 1
		if i == 2 {
			want = 0
		}
		if lu.unlocks != want {
			t.Errorf("PE %d observed %d unlocks, want %d", i, lu.unlocks, want)
		}
	}
}

// TestLockReleaseUnderflowPanics pins the filter's bookkeeping guard.
func TestLockReleaseUnderflowPanics(t *testing.T) {
	b, _, _ := newFilterBus(t, 2, false)
	defer func() {
		if recover() == nil {
			t.Error("lock release underflow did not panic")
		}
	}()
	b.LockReleased(1)
}

// TestAttachBeyondMaxPEsPanics pins the 64-PE holder-mask limit.
func TestAttachBeyondMaxPEsPanics(t *testing.T) {
	b := New(Config{Timing: DefaultTiming(), BlockWords: 4}, testMemory())
	for i := 0; i < MaxPEs; i++ {
		b.Attach(i, &fakeSnooper{data: make([]word.Word, 4)}, &fakeLockUnit{locked: map[word.Addr]bool{}})
	}
	defer func() {
		if recover() == nil {
			t.Error("attaching PE 64 did not panic")
		}
	}()
	b.Attach(MaxPEs, &fakeSnooper{}, &fakeLockUnit{})
}

// TestFetchZeroAllocs pins the acceptance criterion: Bus.fetch performs no
// heap allocations on either the cache-to-cache or the memory-supply path
// (the block rides the reusable bus-owned buffer).
func TestFetchZeroAllocs(t *testing.T) {
	b, snoops, _ := newFilterBus(t, 4, false)
	heap := b.Memory().Bounds().HeapBase
	snoops[1].install(heap, block4(500), false)
	c2cAddr := heap
	memAddr := heap + 64

	if avg := testing.AllocsPerRun(200, func() {
		res := b.Fetch(0, c2cAddr, false, false, false)
		if !res.FromCache {
			t.Fatal("expected cache-to-cache supply")
		}
	}); avg != 0 {
		t.Errorf("cache-to-cache fetch allocates %.1f per run, want 0", avg)
	}

	if avg := testing.AllocsPerRun(200, func() {
		res := b.Fetch(0, memAddr, false, false, false)
		if res.FromCache {
			t.Fatal("expected memory supply")
		}
	}); avg != 0 {
		t.Errorf("memory-supply fetch allocates %.1f per run, want 0", avg)
	}
}

// TestFilterAgreesWithScanAcrossOps drives a mixed sequence of installs,
// fetches, invalidations and drops and cross-checks the presence filter
// against the unfiltered scan after every operation.
func TestFilterAgreesWithScanAcrossOps(t *testing.T) {
	b, snoops, _ := newFilterBus(t, 8, false)
	heap := b.Memory().Bounds().HeapBase
	bases := []word.Addr{heap, heap + 4, heap + 64, heap + 68}
	check := func(step string) {
		t.Helper()
		for _, base := range bases {
			if got, want := b.HolderMask(base), b.ScanHolders(base); got != want {
				t.Fatalf("%s: HolderMask(%d) = %b, ScanHolders = %b", step, base, got, want)
			}
		}
	}

	snoops[0].install(bases[0], block4(1), false)
	snoops[3].install(bases[0], block4(1), false)
	snoops[3].install(bases[1], block4(2), true)
	check("installs")

	b.Fetch(1, bases[0], false, false, false) // F: holders retain
	check("shared fetch")

	b.Fetch(2, bases[1], true, false, false) // FI: holder drops
	check("fetch-invalidate")

	b.Invalidate(0, bases[0], false) // I: remote copies drop
	check("invalidate")

	snoops[0].drop(bases[0]) // eviction
	check("evict")

	b.WordWrite(4, bases[2]+1, word.Int(9)) // write-through store, no holders
	check("word-write")
}
