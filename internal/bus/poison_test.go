package bus

import (
	"testing"

	"pimcache/internal/kl1/word"
)

// newPoisonBus builds an unfiltered 2-PE bus with PoisonFetchData on.
func newPoisonBus(t *testing.T) (*Bus, []*fakeSnooper) {
	t.Helper()
	b := New(Config{Timing: DefaultTiming(), BlockWords: 4,
		DisableFilters: true, PoisonFetchData: true}, testMemory())
	snoops := make([]*fakeSnooper, 2)
	for i := range snoops {
		snoops[i] = &fakeSnooper{data: make([]word.Word, 4)}
		b.Attach(i, snoops[i], &fakeLockUnit{locked: map[word.Addr]bool{}})
	}
	return b, snoops
}

// TestPoisonScribblesRetainedFetchData pins that poison mode actually
// enforces the FetchResult.Data contract: the aliased buffer is dead at
// the start of the next transaction. Without this, the machine-level
// poison-equivalence test could pass vacuously.
func TestPoisonScribblesRetainedFetchData(t *testing.T) {
	b, _ := newPoisonBus(t)
	base := b.Memory().Bounds().HeapBase
	b.Memory().Write(base+1, word.Int(44))

	res := b.Fetch(0, base+1, false, false, false)
	if res.Data[1] != word.Int(44) {
		t.Fatalf("fetched %v, want 44", res.Data[1])
	}
	// Next transaction: the retained slice must now read as poison.
	b.Invalidate(1, base+32, false)
	for i, w := range res.Data {
		if want := PoisonWord | word.Word(i); w != want {
			t.Fatalf("retained Data[%d] = %#x, want poison %#x", i, w, want)
		}
	}
}

// TestPoisonSparesSameTransactionWriteBack pins the other half of the
// contract: the fetched data stays valid across the same transaction's
// hidden victim write-back, which happens after Fetch returns but
// before the requester copies the block out.
func TestPoisonSparesSameTransactionWriteBack(t *testing.T) {
	b, _ := newPoisonBus(t)
	base := b.Memory().Bounds().HeapBase
	b.Memory().Write(base+2, word.Int(77))

	res := b.Fetch(0, base+2, false, true, false)
	victim := []word.Word{word.Int(1), word.Int(2), word.Int(3), word.Int(4)}
	b.SwapOutHidden(base+64, victim) // hidden write-back of the dirty victim
	if res.Data[2] != word.Int(77) {
		t.Fatalf("Data[2] = %v after hidden write-back, want 77", res.Data[2])
	}
	if got := b.Memory().Read(base + 65); got != word.Int(2) {
		t.Fatalf("victim word = %v, want 2", got)
	}
}
