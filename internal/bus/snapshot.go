package bus

import "fmt"

// Snapshot is a copy of the bus's mutable state: statistics, the two
// presence filters, and the probe clock's per-reference tick component.
// Together with the per-cache snapshots it makes a restored machine's
// future behaviour — including probe cycle stamps — bit-identical to the
// uninterrupted run. Attached snoopers, lock units and the probe sink are
// wiring, not state, and are left untouched by Restore.
type Snapshot struct {
	Stats      Stats
	Presence   []uint64
	LockCounts []uint32
	TotalLocks int
	Ticks      uint64
}

// Snapshot captures the bus's mutable state.
func (b *Bus) Snapshot() *Snapshot {
	return &Snapshot{
		Stats:      b.stats,
		Presence:   append([]uint64(nil), b.presence...),
		LockCounts: append([]uint32(nil), b.lockCounts...),
		TotalLocks: b.totalLocks,
		Ticks:      b.ticks,
	}
}

// Restore overwrites the bus's mutable state from a snapshot taken on a
// bus with the same geometry (block size, memory footprint, PE count).
func (b *Bus) Restore(s *Snapshot) error {
	if len(s.Presence) != len(b.presence) {
		return fmt.Errorf("bus: snapshot presence table has %d blocks, bus has %d",
			len(s.Presence), len(b.presence))
	}
	if len(s.LockCounts) != len(b.lockCounts) {
		return fmt.Errorf("bus: snapshot has %d PEs, bus has %d",
			len(s.LockCounts), len(b.lockCounts))
	}
	b.stats = s.Stats
	copy(b.presence, s.Presence)
	copy(b.lockCounts, s.LockCounts)
	b.totalLocks = s.TotalLocks
	b.ticks = s.Ticks
	return nil
}
