package bus

import "fmt"

// Snapshot is a copy of the bus's mutable state: statistics, the two
// presence filters, and the probe clock's per-reference tick component.
// Together with the per-cache snapshots it makes a restored machine's
// future behaviour — including probe cycle stamps — bit-identical to the
// uninterrupted run. Attached snoopers, lock units and the probe sink are
// wiring, not state, and are left untouched by Restore.
type Snapshot struct {
	Stats      Stats
	Presence   []uint64
	LockCounts []uint32
	TotalLocks int
	Ticks      uint64
}

// Snapshot captures the bus's mutable state. The paged presence filter
// is flattened to one mask per block, so the serialized form is
// independent of the in-memory page layout.
func (b *Bus) Snapshot() *Snapshot {
	flat := make([]uint64, b.presenceBlocks)
	for pi, pg := range b.presence {
		if pg != nil {
			copy(flat[pi<<presencePageShift:], pg)
		}
	}
	return &Snapshot{
		Stats:      b.stats,
		Presence:   flat,
		LockCounts: append([]uint32(nil), b.lockCounts...),
		TotalLocks: b.totalLocks,
		Ticks:      b.ticks,
	}
}

// Restore overwrites the bus's mutable state from a snapshot taken on a
// bus with the same geometry (block size, memory footprint, PE count).
func (b *Bus) Restore(s *Snapshot) error {
	if len(s.Presence) != b.presenceBlocks {
		return fmt.Errorf("bus: snapshot presence table has %d blocks, bus has %d",
			len(s.Presence), b.presenceBlocks)
	}
	if len(s.LockCounts) != len(b.lockCounts) {
		return fmt.Errorf("bus: snapshot has %d PEs, bus has %d",
			len(s.LockCounts), len(b.lockCounts))
	}
	b.stats = s.Stats
	for i := range b.presence {
		b.presence[i] = nil
	}
	for idx, m := range s.Presence {
		if m != 0 {
			pg := b.presence[idx>>presencePageShift]
			if pg == nil {
				pg = make([]uint64, presencePageLen)
				b.presence[idx>>presencePageShift] = pg
			}
			pg[idx&presencePageMask] = m
		}
	}
	copy(b.lockCounts, s.LockCounts)
	b.totalLocks = s.TotalLocks
	b.ticks = s.Ticks
	return nil
}
