package bus

import (
	"testing"

	"pimcache/internal/kl1/word"
	"pimcache/internal/mem"
)

func testMemory() *mem.Memory {
	return mem.New(mem.Layout{InstWords: 64, HeapWords: 256, GoalWords: 64, SuspWords: 32, CommWords: 32})
}

// TestPaperCycleCounts pins the six access-pattern costs to the values in
// Section 4.2 for the base parameters: four-word blocks, one-word bus,
// eight-cycle memory.
func TestPaperCycleCounts(t *testing.T) {
	tm := DefaultTiming()
	cases := []struct {
		p    Pattern
		want uint64
	}{
		{PatSwapInMem, 13},
		{PatSwapInMemSwapOut, 13},
		{PatC2CSwapOut, 10},
		{PatC2C, 7},
		{PatSwapOutOnly, 5},
		{PatInval, 2},
		{PatUnlock, 2},
	}
	for _, tc := range cases {
		if got := tm.Cycles(tc.p, 4); got != tc.want {
			t.Errorf("Cycles(%v, 4) = %d, want %d", tc.p, got, tc.want)
		}
	}
}

// TestTwoWordBus checks that doubling the bus width reduces per-transfer
// cycles in the direction Section 4.4 reports (overall traffic falling to
// 62-75% of the one-word bus).
func TestTwoWordBus(t *testing.T) {
	one := Timing{MemCycles: 8, WidthWords: 1}
	two := Timing{MemCycles: 8, WidthWords: 2}
	if got := two.Cycles(PatC2C, 4); got != 5 {
		t.Errorf("two-word c2c = %d, want 5", got)
	}
	if got := two.Cycles(PatSwapInMem, 4); got != 11 {
		t.Errorf("two-word swap-in = %d, want 11", got)
	}
	// Invalidation is a broadcast: width-insensitive.
	if one.Cycles(PatInval, 4) != two.Cycles(PatInval, 4) {
		t.Error("invalidation cost should not depend on bus width")
	}
	// The cache-to-cache ratio 5/7 = 0.71 falls inside the paper's
	// reported 62-75% band.
	ratio := float64(two.Cycles(PatC2C, 4)) / float64(one.Cycles(PatC2C, 4))
	if ratio < 0.62 || ratio > 0.75 {
		t.Errorf("c2c width ratio %.2f outside paper band", ratio)
	}
}

func TestTransferRoundsUp(t *testing.T) {
	tm := Timing{MemCycles: 8, WidthWords: 2}
	// A 1-word block still needs one bus cycle.
	if got := tm.Cycles(PatSwapOutOnly, 1); got != 2 {
		t.Errorf("1-word swap-out on 2-word bus = %d, want 2", got)
	}
}

func TestPatternAndCommandNames(t *testing.T) {
	if PatC2C.String() != "c2c" || PatInval.String() != "invalidate" {
		t.Error("unexpected pattern names")
	}
	if CmdF.String() != "F" || CmdFI.String() != "FI" || CmdLH.String() != "LH" {
		t.Error("unexpected command names")
	}
	if Pattern(200).String() == "" || Command(200).String() == "" {
		t.Error("out-of-range names must not be empty")
	}
}

// fakeSnooper is a scriptable cache stand-in.
type fakeSnooper struct {
	data       []word.Word
	holds      bool
	dirty      bool
	retainOnF  bool
	snoopCount int
	invalCount int
}

func (f *fakeSnooper) SnoopFetch(addr word.Addr, inval bool) ([]word.Word, bool, bool, bool, bool) {
	f.snoopCount++
	if !f.holds {
		return nil, false, false, false, false
	}
	retained := !inval && f.retainOnF
	if inval {
		f.holds = false
	}
	return f.data, true, true, f.dirty, retained
}

func (f *fakeSnooper) SnoopUpdate(word.Addr, word.Word) (bool, bool) {
	return f.holds, f.holds
}

func (f *fakeSnooper) SnoopInvalidate(word.Addr) bool {
	f.invalCount++
	wasDirty := f.holds && f.dirty
	f.holds = false
	return wasDirty
}
func (f *fakeSnooper) Holds(word.Addr) bool { return f.holds }

type fakeLockUnit struct {
	locked   map[word.Addr]bool
	waiters  int
	unlocked []word.Addr
}

func (f *fakeLockUnit) CheckLocked(a word.Addr) bool {
	if f.locked[a] {
		f.waiters++
		return true
	}
	return false
}
func (f *fakeLockUnit) LocksInBlock(base word.Addr, words int) bool {
	for a := range f.locked {
		if a >= base && a < base+word.Addr(words) {
			return true
		}
	}
	return false
}
func (f *fakeLockUnit) ObserveUnlock(a word.Addr) { f.unlocked = append(f.unlocked, a) }

func newTestBus(t *testing.T, peers int) (*Bus, []*fakeSnooper, []*fakeLockUnit) {
	t.Helper()
	// The fakes set holds/locked directly without notifying the presence
	// filters, so these tests exercise the unfiltered broadcast paths.
	// filter_test.go covers the filtered ones with notifying fakes.
	b := New(Config{Timing: DefaultTiming(), BlockWords: 4, DisableFilters: true}, testMemory())
	snoops := make([]*fakeSnooper, peers)
	locks := make([]*fakeLockUnit, peers)
	for i := 0; i < peers; i++ {
		snoops[i] = &fakeSnooper{data: make([]word.Word, 4)}
		locks[i] = &fakeLockUnit{locked: map[word.Addr]bool{}}
		b.Attach(i, snoops[i], locks[i])
	}
	return b, snoops, locks
}

func TestFetchFromMemory(t *testing.T) {
	b, _, _ := newTestBus(t, 2)
	base := b.Memory().Bounds().HeapBase
	b.Memory().Write(base+1, word.Int(99))
	res := b.Fetch(0, base+1, false, false, false)
	if res.LockHit || res.FromCache || res.Shared {
		t.Fatalf("unexpected result %+v", res)
	}
	if res.Data[1].IntVal() != 99 {
		t.Errorf("data[1] = %v", res.Data[1])
	}
	st := b.Stats()
	if st.TotalCycles != 13 || st.CountByPattern[PatSwapInMem] != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.CyclesByArea[mem.AreaHeap] != 13 {
		t.Errorf("heap cycles = %d", st.CyclesByArea[mem.AreaHeap])
	}
	if st.Commands[CmdF] != 1 {
		t.Errorf("F count = %d", st.Commands[CmdF])
	}
}

func TestFetchCacheToCache(t *testing.T) {
	b, snoops, _ := newTestBus(t, 3)
	base := b.Memory().Bounds().HeapBase
	snoops[1].holds = true
	snoops[1].dirty = true
	snoops[1].retainOnF = true
	snoops[1].data[0] = word.Int(7)
	res := b.Fetch(0, base, false, false, false)
	if !res.FromCache || !res.SupplierDirty || !res.Shared {
		t.Fatalf("result %+v", res)
	}
	if res.Data[0].IntVal() != 7 {
		t.Errorf("data = %v", res.Data[0])
	}
	// PIM: memory must NOT have been updated by the transfer.
	if b.Memory().Read(base).IntVal() == 7 {
		t.Error("dirty transfer leaked to memory")
	}
	st := b.Stats()
	if st.CountByPattern[PatC2C] != 1 || st.TotalCycles != 7 {
		t.Errorf("stats %+v", st)
	}
	if st.Commands[CmdH] != 1 {
		t.Errorf("H count = %d", st.Commands[CmdH])
	}
}

func TestFetchInvalidateSupplier(t *testing.T) {
	b, snoops, _ := newTestBus(t, 2)
	base := b.Memory().Bounds().HeapBase
	snoops[1].holds = true
	res := b.Fetch(0, base, true, false, false)
	if snoops[1].holds {
		t.Error("FI did not invalidate the supplier")
	}
	if res.Shared {
		t.Error("FI result should be exclusive")
	}
	if b.Stats().Commands[CmdFI] != 1 {
		t.Error("FI not counted")
	}
}

func TestFetchWithVictimSwapOutPattern(t *testing.T) {
	b, snoops, _ := newTestBus(t, 2)
	base := b.Memory().Bounds().HeapBase
	// Memory-sourced with dirty victim: 13 cycles under the with-swap-out
	// pattern.
	b.Fetch(0, base, false, true, false)
	if b.Stats().CountByPattern[PatSwapInMemSwapOut] != 1 {
		t.Error("swap-in+swap-out pattern not used")
	}
	// Cache-sourced with dirty victim: 10 cycles.
	snoops[1].holds = true
	snoops[1].retainOnF = true
	b.Fetch(0, base+64, false, true, false)
	st := b.Stats()
	if st.CountByPattern[PatC2CSwapOut] != 1 {
		t.Error("c2c+swap-out pattern not used")
	}
	if st.TotalCycles != 13+10 {
		t.Errorf("total cycles = %d, want 23", st.TotalCycles)
	}
}

func TestLockHitAbortsFetch(t *testing.T) {
	b, snoops, locks := newTestBus(t, 2)
	base := b.Memory().Bounds().HeapBase
	locks[1].locked[base+2] = true
	snoops[1].holds = true
	res := b.Fetch(0, base+2, false, false, false)
	if !res.LockHit || res.Data != nil {
		t.Fatalf("expected aborted fetch, got %+v", res)
	}
	if snoops[1].snoopCount != 0 {
		t.Error("snoop ran despite LH")
	}
	if locks[1].waiters != 1 {
		t.Error("waiter not registered (LCK -> LWAIT)")
	}
	if b.Stats().Commands[CmdLH] != 1 {
		t.Error("LH not counted")
	}
	// FetchForced bypasses the lock poll.
	res = b.FetchForced(0, base+2, false, false)
	if res.LockHit || res.Data == nil {
		t.Fatalf("forced fetch failed: %+v", res)
	}
}

func TestLockDeniesExclusiveGrant(t *testing.T) {
	b, _, locks := newTestBus(t, 2)
	base := b.Memory().Bounds().HeapBase
	locks[1].locked[base+3] = true
	// Fetching a DIFFERENT word of the same block must succeed but be
	// granted shared.
	res := b.Fetch(0, base+1, false, false, false)
	if res.LockHit {
		t.Fatal("fetch of unlocked word aborted")
	}
	if !res.Shared {
		t.Error("block containing a remote lock granted exclusively")
	}
	// Same applies to FI.
	res = b.Fetch(0, base+1, true, false, false)
	if !res.Shared {
		t.Error("FI of block containing a remote lock granted exclusively")
	}
	if !b.RemoteLockInBlock(0, base+1) {
		t.Error("RemoteLockInBlock missed the lock")
	}
	if b.RemoteLockInBlock(1, base+1) {
		t.Error("requester's own lock must not count")
	}
}

func TestInvalidate(t *testing.T) {
	b, snoops, locks := newTestBus(t, 3)
	base := b.Memory().Bounds().HeapBase
	snoops[1].holds = true
	snoops[2].holds = true
	if ok, _ := b.Invalidate(0, base, false); !ok {
		t.Fatal("invalidate aborted unexpectedly")
	}
	if snoops[1].invalCount != 1 || snoops[2].invalCount != 1 {
		t.Error("not all snoopers invalidated")
	}
	st := b.Stats()
	if st.TotalCycles != 2 || st.CountByPattern[PatInval] != 1 {
		t.Errorf("stats %+v", st)
	}
	// A locked word blocks the invalidation.
	locks[1].locked[base+8] = true
	if ok, _ := b.Invalidate(0, base+8, true); ok {
		t.Error("invalidate of locked word succeeded")
	}
	b.ForceInvalidate(0, base+8) // must not consult locks
}

func TestSwapOutWritesMemory(t *testing.T) {
	b, _, _ := newTestBus(t, 1)
	base := b.Memory().Bounds().HeapBase
	data := []word.Word{word.Int(1), word.Int(2), word.Int(3), word.Int(4)}
	b.SwapOut(0, base, data)
	if b.Memory().Read(base+3).IntVal() != 4 {
		t.Error("swap-out did not reach memory")
	}
	st := b.Stats()
	if st.CountByPattern[PatSwapOutOnly] != 1 || st.TotalCycles != 5 {
		t.Errorf("stats %+v", st)
	}
}

func TestUnlockBroadcast(t *testing.T) {
	b, _, locks := newTestBus(t, 3)
	base := b.Memory().Bounds().HeapBase
	b.Unlock(0, base+5)
	if len(locks[1].unlocked) != 1 || locks[1].unlocked[0] != base+5 {
		t.Error("UL not delivered to PE 1")
	}
	if len(locks[0].unlocked) != 0 {
		t.Error("UL delivered to the requester itself")
	}
	st := b.Stats()
	if st.Commands[CmdUL] != 1 || st.CountByPattern[PatUnlock] != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestMemBusyAccounting(t *testing.T) {
	b, snoops, _ := newTestBus(t, 2)
	base := b.Memory().Bounds().HeapBase
	b.Fetch(0, base, false, false, false) // memory fetch: 8
	if got := b.Stats().MemBusyCycles; got != 8 {
		t.Fatalf("mem busy after fetch = %d", got)
	}
	snoops[1].holds = true
	snoops[1].retainOnF = true
	b.Fetch(0, base+64, false, false, false) // c2c: memory idle
	if got := b.Stats().MemBusyCycles; got != 8 {
		t.Fatalf("c2c transfer occupied memory: %d", got)
	}
	b.MemoryWriteBack(base, make([]word.Word, 4)) // Illinois reflection: 8
	if got := b.Stats().MemBusyCycles; got != 16 {
		t.Fatalf("mem busy after write-back = %d", got)
	}
}

func TestRemoteHolder(t *testing.T) {
	b, snoops, _ := newTestBus(t, 3)
	base := b.Memory().Bounds().HeapBase
	if b.RemoteHolder(0, base) {
		t.Error("no one holds the block yet")
	}
	snoops[2].holds = true
	if !b.RemoteHolder(0, base) {
		t.Error("holder not seen")
	}
	if b.RemoteHolder(2, base) {
		t.Error("requester's own copy counted as remote")
	}
}

func TestAttachOutOfOrderPanics(t *testing.T) {
	b := New(Config{Timing: DefaultTiming(), BlockWords: 4}, testMemory())
	defer func() {
		if recover() == nil {
			t.Error("out-of-order attach did not panic")
		}
	}()
	b.Attach(1, &fakeSnooper{}, &fakeLockUnit{})
}

func TestStatsAdd(t *testing.T) {
	var a, b Stats
	a.TotalCycles = 5
	a.CyclesByArea[mem.AreaHeap] = 5
	a.Commands[CmdF] = 1
	b.TotalCycles = 7
	b.MemBusyCycles = 3
	a.Add(&b)
	if a.TotalCycles != 12 || a.MemBusyCycles != 3 || a.Commands[CmdF] != 1 {
		t.Errorf("merged stats %+v", a)
	}
}
