// Package bus models the common bus of the simulated PIM cluster: the
// single shared interconnect carrying block fetches, invalidations and
// lock traffic between the per-PE caches and the shared memory module.
//
// The model follows Section 4.2 of the paper: a one-word-wide bus (tag
// plus data) that is held for the duration of one memory operation, an
// eight-cycle shared-memory access, and six access patterns whose cycle
// counts — 13/13/10/7/5/2 for the paper's base parameters — are derived
// here from the block size, bus width, and memory latency so that the
// block-size and bus-width experiments (Figure 1, Section 4.4) can vary
// them.
package bus

import (
	"fmt"
	"math/bits"

	"pimcache/internal/kl1/word"
	"pimcache/internal/mem"
	"pimcache/internal/probe"
)

// Command enumerates the bus commands of Section 3.3.
type Command uint8

const (
	// CmdF fetches a block from another PE or shared memory.
	CmdF Command = iota
	// CmdFI fetches a block and invalidates all other copies.
	CmdFI
	// CmdI invalidates all other copies.
	CmdI
	// CmdH is the hit response to F and FI.
	CmdH
	// CmdLK announces that an address is being locked (rides with FI/I).
	CmdLK
	// CmdUL announces that an address with waiters has been unlocked.
	CmdUL
	// CmdLH is the lock-hit response; the requester busy-waits.
	CmdLH
	// CmdUP broadcasts one written word to every other holder of its
	// block (the write-update protocols' alternative to I). Memory is
	// NOT updated: the writer owns the eventual write-back.
	CmdUP

	NumCommands
)

var commandNames = [NumCommands]string{"F", "FI", "I", "H", "LK", "UL", "LH", "UP"}

func init() {
	// Register the authoritative name tables with the telemetry layer
	// (probe cannot import this package).
	probe.SetCmdNames(commandNames[:])
	probe.SetPatternNames(patternNames[:])
}

// String returns the paper's mnemonic for the command.
func (c Command) String() string {
	if int(c) < len(commandNames) {
		return commandNames[c]
	}
	return fmt.Sprintf("cmd(%d)", uint8(c))
}

// Pattern enumerates the bus access patterns of Section 4.2. Each bus
// transaction is accounted under exactly one pattern.
type Pattern uint8

const (
	// PatSwapInMem is a block fetch satisfied by shared memory with no
	// dirty victim.
	PatSwapInMem Pattern = iota
	// PatSwapInMemSwapOut is a memory fetch that also evicts a dirty
	// victim; the swap-out write is hidden behind the fetch, so it costs
	// the same as PatSwapInMem (the paper's "hidden by a subsequent
	// memory operation").
	PatSwapInMemSwapOut
	// PatC2C is a cache-to-cache transfer with no dirty victim.
	PatC2C
	// PatC2CSwapOut is a cache-to-cache transfer evicting a dirty victim.
	PatC2CSwapOut
	// PatSwapOutOnly is a lone dirty-victim write-back; it occurs only
	// under the DW command, which allocates without fetching.
	PatSwapOutOnly
	// PatInval is an invalidation of other PEs' copies.
	PatInval
	// PatUnlock is a UL broadcast waking busy-waiting PEs.
	PatUnlock
	// PatWordWrite is a single-word write to shared memory, used only by
	// the write-through baseline protocol (address cycle + one data
	// word; the memory module absorbs it).
	PatWordWrite
	// PatUpdate is a UP broadcast carrying one written word to the other
	// holders (address cycle + one data word; memory does not absorb it,
	// so unlike PatWordWrite it never occupies the memory module).
	PatUpdate

	NumPatterns
)

var patternNames = [NumPatterns]string{
	"swapin-mem", "swapin-mem+swapout", "c2c", "c2c+swapout",
	"swapout-only", "invalidate", "unlock", "word-write", "update",
}

// String names the pattern.
func (p Pattern) String() string {
	if int(p) < len(patternNames) {
		return patternNames[p]
	}
	return fmt.Sprintf("pattern(%d)", uint8(p))
}

// Timing holds the bus and memory timing parameters.
type Timing struct {
	// MemCycles is the shared-memory access latency (paper: 8).
	MemCycles int
	// WidthWords is the bus width in words (paper: 1).
	WidthWords int
}

// DefaultTiming returns the paper's base parameters.
func DefaultTiming() Timing { return Timing{MemCycles: 8, WidthWords: 1} }

// transferCycles is the time to move a block across the bus.
func (t Timing) transferCycles(blockWords int) int {
	return (blockWords + t.WidthWords - 1) / t.WidthWords
}

// Cycles returns the cost of one transaction of the given pattern for the
// given block size. For the paper's base parameters (four-word blocks,
// one-word bus, eight-cycle memory) this yields 13, 13, 7, 10, 5, 2, 2.
func (t Timing) Cycles(p Pattern, blockWords int) uint64 {
	tr := t.transferCycles(blockWords)
	switch p {
	case PatSwapInMem, PatSwapInMemSwapOut:
		// Address cycle, memory latency, block transfer. A dirty victim's
		// write-back overlaps the next operation and adds nothing.
		return uint64(1 + t.MemCycles + tr)
	case PatC2C:
		// Address cycle, snoop/H-response window, block transfer.
		return uint64(3 + tr)
	case PatC2CSwapOut:
		// The victim write-back partially overlaps the transfer; one word
		// of it is hidden behind the address/snoop cycles.
		return uint64(3 + tr + tr - 1)
	case PatSwapOutOnly:
		// Address cycle plus block transfer to memory.
		return uint64(1 + tr)
	case PatInval, PatUnlock:
		// Command and address broadcast.
		return 2
	case PatWordWrite, PatUpdate:
		// Address cycle plus one data word.
		return 2
	default:
		panic(fmt.Sprintf("bus: unknown pattern %d", p))
	}
}

// Stats accumulates bus activity. CyclesByArea attributes each
// transaction's cycles to the storage area of the address that caused it,
// which is how the paper's Table 2 "Bus Cyc." rows are computed.
type Stats struct {
	TotalCycles     uint64
	CyclesByArea    [mem.NumAreas]uint64
	CyclesByPattern [NumPatterns]uint64
	CountByPattern  [NumPatterns]uint64
	Commands        [NumCommands]uint64
	// MemBusyCycles counts shared-memory-module occupancy. The PIM
	// protocol's SM state exists precisely to keep this low relative to
	// Illinois-style copy-back-on-transfer (Section 3.1), so it is
	// tracked separately from bus occupancy.
	MemBusyCycles uint64
}

// Add merges other into s.
func (s *Stats) Add(other *Stats) {
	s.TotalCycles += other.TotalCycles
	for i := range s.CyclesByArea {
		s.CyclesByArea[i] += other.CyclesByArea[i]
	}
	for i := range s.CyclesByPattern {
		s.CyclesByPattern[i] += other.CyclesByPattern[i]
		s.CountByPattern[i] += other.CountByPattern[i]
	}
	for i := range s.Commands {
		s.Commands[i] += other.Commands[i]
	}
	s.MemBusyCycles += other.MemBusyCycles
}

// Snooper is the cache-side interface the bus uses to maintain coherence.
// Each PE's cache implements it; the bus never calls the requester's own
// snooper.
type Snooper interface {
	// SnoopFetch is invoked for F/FI on the block containing addr. If the
	// cache holds the block it must return its data and report whether
	// it supplies that data (under MOESI only a dirty owner supplies;
	// clean holders assert sharing and defer to memory) and whether its
	// copy was modified; when inval is true (FI) it must invalidate its
	// copy, and when false (F) it must downgrade per its protocol,
	// keeping write-back ownership if its copy was dirty (EM becomes
	// SM/O: the PIM family never copies back to memory on a transfer).
	// retained reports whether the snooper still holds a valid copy
	// afterwards, which tells the requester to install the block shared.
	SnoopFetch(addr word.Addr, inval bool) (data []word.Word, held, supplies, dirty, retained bool)
	// SnoopUpdate is invoked for UP: a remote writer broadcast one
	// written word of the block containing addr. A holder stores the
	// word into its copy and reports held; retained is false when the
	// holder discarded its copy instead (the adaptive protocol's
	// competitive self-invalidation), which lets a writer that finds no
	// retaining holders settle in an exclusive state.
	SnoopUpdate(addr word.Addr, w word.Word) (held, retained bool)
	// SnoopInvalidate is invoked for I; any copy is discarded. It
	// reports whether the discarded copy was modified, which rides the
	// snoop response so a requester upgrading a clean copy knows it
	// must assume write-back ownership (the dirty data now exists only
	// in its own copy).
	SnoopInvalidate(addr word.Addr) (wasDirty bool)
	// Holds reports, without side effects, whether the cache currently
	// holds a valid copy of the block containing addr. The cache
	// controller uses it to choose between the ER/RP sub-behaviours,
	// which the paper specifies in terms of whether "the block resides on
	// another PE".
	Holds(addr word.Addr) bool
}

// LockUnit is the lock-directory-side snoop interface.
type LockUnit interface {
	// CheckLocked reports whether this PE holds a lock on exactly addr.
	// When it does, the unit records that a waiter exists (LCK to LWAIT)
	// so the eventual unlock is broadcast.
	CheckLocked(addr word.Addr) bool
	// LocksInBlock reports whether this PE holds a lock on any word of
	// the block [base, base+words). Used to deny exclusive grants of
	// blocks containing locked words, which keeps later lock releases
	// visible on the bus.
	LocksInBlock(base word.Addr, words int) bool
	// ObserveUnlock delivers a UL broadcast so busy-waiting operations on
	// this PE can retry.
	ObserveUnlock(addr word.Addr)
}

// FetchResult describes the outcome of a Fetch transaction.
type FetchResult struct {
	// LockHit is true when a remote lock directory responded LH; the
	// transaction was aborted with no state changes and the requester
	// must busy-wait for the matching UL.
	LockHit bool
	// Data is the fetched block (nil when LockHit). It aliases a buffer
	// owned by the bus and is valid only until the start of the next bus
	// transaction: callers must copy out what they keep (which models
	// the hardware — the data exists on the bus wires only for the
	// transfer cycles). It DOES stay valid across the same transaction's
	// hidden victim write-back (SwapOutHidden), which models the fetched
	// block sitting latched on the bus while the victim drains behind
	// it. Config.PoisonFetchData enforces this contract by scribbling
	// the buffer at the start of every transaction.
	Data []word.Word
	// FromCache reports a cache-to-cache transfer.
	FromCache bool
	// SupplierDirty reports that the supplying cache's copy was modified;
	// under the PIM protocol the data is NOT written back to memory, so a
	// requester that receives dirty data exclusively becomes its owner.
	SupplierDirty bool
	// Shared reports that some other cache retains a copy (or that a lock
	// in the block forces a shared grant); the requester must install the
	// block in a shared state.
	Shared bool
}

// MaxPEs bounds the number of attachable PEs; the presence filter keys
// one bit per PE in a 64-bit holder mask.
const MaxPEs = 64

// Bus is the common bus. It serializes all transactions (the simulated
// machine is stepped deterministically, so no Go-level locking is needed)
// and owns cycle accounting.
//
// The bus also maintains two presence filters — a block-residency table
// (one holder PE bitmask per memory block, indexed by addr>>blockShift)
// kept current by the caches through BlockInstalled/BlockDropped, and
// per-PE held-lock counts kept current through LockAcquired/LockReleased.
// They make every snoop and lock poll O(actual holders) instead of
// O(PEs), which is a simulator-host acceleration only: filtered and
// unfiltered runs produce identical simulated statistics (the modelled
// hardware broadcasts either way, and cycle accounting never depended on
// the number of polled units). The table is a flat slice sized from the
// memory footprint — at 8 bytes per block it costs 1/4 word per memory
// word at 4-word blocks, and unlike the map it predates it is branch-free
// and never allocates on the install path.
type Bus struct {
	timing     Timing
	blockWords int
	memory     *mem.Memory
	// bounds is the memory's area map, copied in so account's
	// per-transaction area attribution is a static, inlinable call
	// instead of an indirect one through a func value.
	bounds mem.Bounds
	snoopers   []Snooper
	lockUnits  []LockUnit
	stats      Stats

	// Presence filters and the reusable fetch buffer (see type comment).
	noFilters  bool
	poison     bool
	statsOnly  bool
	// presence is the block-residency filter, paged: page p covers
	// blocks [p<<presencePageShift, (p+1)<<presencePageShift) and is
	// allocated on the first install within it. A nil page means no
	// holders anywhere in its range. Paging keeps construction from
	// zeroing a table proportional to the whole address space (the
	// dominant allocation of a short replay); every access is on the
	// miss path, so the extra indirection never taxes cache hits.
	presence       [][]uint64
	presenceBlocks int
	blockShift     uint
	lockCounts []uint32
	totalLocks int
	allMask    uint64
	blockBuf   []word.Word

	// cycleTab and memBusyTab are Timing.Cycles and the memory-module
	// occupancy precomputed per pattern at construction: account runs on
	// every bus transaction, and two table loads beat the switch and
	// transfer-width division.
	cycleTab   [NumPatterns]uint64
	memBusyTab [NumPatterns]uint64

	// probe, when non-nil, receives cycle-stamped telemetry events;
	// ticks is the probe clock's per-reference component (see
	// ProbeClock). Every emit site is guarded by a nil check so the
	// disabled path costs one branch and zero allocations.
	probe probe.Sink
	ticks uint64
}

// Config parameterizes a bus.
type Config struct {
	Timing     Timing
	BlockWords int
	// DisableFilters turns off the snoop and lock presence filters so
	// every transaction polls every attached unit, as real broadcast
	// hardware does. Simulated results are identical either way; the
	// unfiltered path exists as the equivalence oracle and benchmark
	// baseline.
	DisableFilters bool
	// PoisonFetchData scribbles the reusable fetch buffer with a
	// recognizable poison pattern at the start of every bus transaction.
	// Any caller that (illegally) retains FetchResult.Data across a
	// transaction then reads poison instead of silently stale data. A
	// debug/verification mode: it changes no statistics, only the bytes
	// a contract-violating reader would observe. The coherence checker
	// and the poison-equivalence tests enable it.
	PoisonFetchData bool
	// StatsOnly elides all data movement: fetches return nil Data,
	// write-backs and word writes touch no memory, and the fetch buffer
	// is never copied into. Every cycle, pattern, command and
	// memory-busy counter is accounted exactly as in the data-carrying
	// path (supply-source selection uses an explicit from-cache flag,
	// not Data presence). Pair with cache.Config.StatsOnly and a
	// mem.NewStatsOnly memory; machine.New wires all three together.
	StatsOnly bool
}

// New creates a bus over the given shared memory.
func New(cfg Config, memory *mem.Memory) *Bus {
	if cfg.BlockWords < 1 || cfg.BlockWords&(cfg.BlockWords-1) != 0 {
		// blockBase masks with blockWords-1; a non-power-of-two size
		// would silently mis-index instead of failing here.
		panic(fmt.Sprintf("bus: block size %d not a positive power of two", cfg.BlockWords))
	}
	if cfg.Timing.WidthWords < 1 || cfg.Timing.MemCycles < 1 {
		panic("bus: invalid timing")
	}
	shift := uint(bits.TrailingZeros(uint(cfg.BlockWords)))
	blocks := (memory.Size() + cfg.BlockWords - 1) / cfg.BlockWords
	var cycleTab, memBusyTab [NumPatterns]uint64
	for p := Pattern(0); p < NumPatterns; p++ {
		cycleTab[p] = cfg.Timing.Cycles(p, cfg.BlockWords)
		switch p {
		case PatSwapInMem, PatSwapInMemSwapOut, PatSwapOutOnly, PatWordWrite:
			memBusyTab[p] = uint64(cfg.Timing.MemCycles)
		}
	}
	return &Bus{
		timing:     cfg.Timing,
		blockWords: cfg.BlockWords,
		memory:     memory,
		bounds:     memory.Bounds(),
		noFilters:  cfg.DisableFilters,
		poison:     cfg.PoisonFetchData,
		statsOnly:  cfg.StatsOnly,
		presence:       make([][]uint64, (blocks+presencePageLen-1)/presencePageLen),
		presenceBlocks: blocks,
		blockShift:     shift,
		blockBuf:   make([]word.Word, cfg.BlockWords),
		cycleTab:   cycleTab,
		memBusyTab: memBusyTab,
	}
}

// StatsOnly reports whether the bus elides data movement.
func (b *Bus) StatsOnly() bool { return b.statsOnly }

// PoisonWord is the pattern PoisonFetchData scribbles into the fetch
// buffer (plus the word index in the low bits), chosen to be loud in
// memory dumps and never produced by the KL1 tagged-word encoding.
const PoisonWord word.Word = 0xBADBADBADBAD0000

// beginTransaction marks the start of a bus transaction: whatever the
// previous transaction left on the bus wires (the reusable fetch buffer
// aliased by FetchResult.Data) is dead from here on.
func (b *Bus) beginTransaction() {
	if b.poison {
		for i := range b.blockBuf {
			b.blockBuf[i] = PoisonWord | word.Word(i)
		}
	}
}

// Attach registers PE p's cache snooper and lock unit. PEs must be
// attached densely from zero.
func (b *Bus) Attach(p int, s Snooper, l LockUnit) {
	if p != len(b.snoopers) {
		panic(fmt.Sprintf("bus: PE %d attached out of order", p))
	}
	if p >= MaxPEs {
		panic(fmt.Sprintf("bus: PE %d exceeds the %d-PE presence-filter limit", p, MaxPEs))
	}
	b.snoopers = append(b.snoopers, s)
	b.lockUnits = append(b.lockUnits, l)
	b.lockCounts = append(b.lockCounts, 0)
	b.allMask |= 1 << uint(p)
}

// --- presence-filter notification API (called by the caches) ---

// presencePageLen is the presence-filter page size in blocks.
const (
	presencePageShift = 12
	presencePageLen   = 1 << presencePageShift
	presencePageMask  = presencePageLen - 1
)

// presenceAt reads the holder mask for block index idx (addr>>blockShift).
func (b *Bus) presenceAt(idx word.Addr) uint64 {
	pg := b.presence[idx>>presencePageShift]
	if pg == nil {
		return 0
	}
	return pg[idx&presencePageMask]
}

// BlockInstalled records that pe's cache now holds a valid copy of the
// block based at base. Caches must call it on every INV→valid transition
// (fetch install, direct-write allocation) with the block's base address.
func (b *Bus) BlockInstalled(pe int, base word.Addr) {
	idx := base >> b.blockShift
	pg := b.presence[idx>>presencePageShift]
	if pg == nil {
		pg = make([]uint64, presencePageLen)
		b.presence[idx>>presencePageShift] = pg
	}
	pg[idx&presencePageMask] |= 1 << uint(pe)
}

// BlockDropped records that pe's cache no longer holds the block based at
// base. Caches must call it on every valid→INV transition (eviction,
// remote invalidation, ER/RP purge, flush). A drop implies an earlier
// install, so the page exists; the nil check only keeps a spurious drop
// harmless.
func (b *Bus) BlockDropped(pe int, base word.Addr) {
	idx := base >> b.blockShift
	if pg := b.presence[idx>>presencePageShift]; pg != nil {
		pg[idx&presencePageMask] &^= 1 << uint(pe)
	}
}

// LockAcquired records that pe's lock directory registered one more held
// lock; LockReleased undoes it. The counts let lock polls skip PEs that
// hold no locks at all — the common case, since KL1 locks are brief and
// rare (Section 3.1).
func (b *Bus) LockAcquired(pe int) {
	b.lockCounts[pe]++
	b.totalLocks++
}

// LockReleased records that pe's lock directory released one held lock.
func (b *Bus) LockReleased(pe int) {
	if b.lockCounts[pe] == 0 {
		panic(fmt.Sprintf("bus: lock release underflow on PE %d", pe))
	}
	b.lockCounts[pe]--
	b.totalLocks--
}

// HolderMask returns the presence filter's holder bitmask for the block
// containing addr (bit i set = PE i holds a copy). Tests cross-check it
// against ScanHolders.
func (b *Bus) HolderMask(addr word.Addr) uint64 {
	return b.presenceAt(addr >> b.blockShift)
}

// ScanHolders polls every attached snooper's Holds for addr's block and
// returns the equivalent bitmask; it is the unfiltered ground truth the
// presence filter must always agree with.
func (b *Bus) ScanHolders(addr word.Addr) uint64 {
	var m uint64
	for i, s := range b.snoopers {
		if s != nil && s.Holds(addr) {
			m |= 1 << uint(i)
		}
	}
	return m
}

// LockCount reports the lock filter's held-lock count for PE pe.
func (b *Bus) LockCount(pe int) int { return int(b.lockCounts[pe]) }

// TotalLockCount reports the lock filter's global held-lock count.
func (b *Bus) TotalLockCount() int { return b.totalLocks }

// remoteMask returns the bitmask of PEs the bus must snoop for the block
// based at base on behalf of requester: every other attached PE when the
// filters are off, only the actual remote holders when they are on.
func (b *Bus) remoteMask(requester int, base word.Addr) uint64 {
	if b.noFilters {
		return b.allMask &^ (1 << uint(requester))
	}
	return b.presenceAt(base>>b.blockShift) &^ (1 << uint(requester))
}

// remoteLocks counts locks held by PEs other than requester.
func (b *Bus) remoteLocks(requester int) int {
	return b.totalLocks - int(b.lockCounts[requester])
}

// PEs reports the number of attached processors.
func (b *Bus) PEs() int { return len(b.snoopers) }

// BlockWords reports the configured block size.
func (b *Bus) BlockWords() int { return b.blockWords }

// Stats returns a snapshot of the accumulated statistics.
func (b *Bus) Stats() Stats { return b.stats }

// ResetStats zeroes the counters (used after warm-up phases).
func (b *Bus) ResetStats() { b.stats = Stats{} }

// Memory exposes the shared-memory module (for machine composition and
// verification; normal accesses flow through transactions).
func (b *Bus) Memory() *mem.Memory { return b.memory }

// blockBase returns the base address of the block containing a.
func (b *Bus) blockBase(a word.Addr) word.Addr {
	return a &^ word.Addr(b.blockWords-1)
}

// SetProbe attaches (or, with nil, detaches) the telemetry sink. The
// machine propagates one sink to the bus and every cache; attaching
// mid-run is allowed but events before the attach are simply absent.
func (b *Bus) SetProbe(s probe.Sink) { b.probe = s }

// Probe returns the attached telemetry sink (nil when disabled). The
// caches read it to share the bus's sink and clock.
func (b *Bus) Probe() probe.Sink { return b.probe }

// Tick advances the probe clock by one cycle. The caches call it once
// per memory reference — only while a probe is attached, so disabled
// runs never touch it and remain cycle-exact with prior behaviour.
func (b *Bus) Tick() { b.ticks++ }

// ProbeClock is the simulated clock events are stamped with: total
// bus cycles plus one cycle per memory reference issued while the
// probe was attached. The reference component keeps the clock moving
// through hit-only phases so per-interval bus utilization is
// meaningful; both components are pure functions of the reference
// stream, so live runs and trace replays agree.
func (b *Bus) ProbeClock() uint64 { return b.ticks + b.stats.TotalCycles }

// actualHolders is the remote-holder bitmask reported in bus events:
// the presence filter when it is on, the ground-truth scan when it is
// off. The two are identical by the filter-equivalence invariant, so
// event streams do not depend on the filter setting.
func (b *Bus) actualHolders(requester int, addr word.Addr) uint64 {
	if b.noFilters {
		return b.ScanHolders(addr) &^ (1 << uint(requester))
	}
	return b.presenceAt(addr>>b.blockShift) &^ (1 << uint(requester))
}

// emitBegin and emitEnd report a bus transaction; callers check
// b.probe != nil first. cmd is the Section 3.3 command byte or
// probe.CmdNone; holders is the remote-holder mask captured before
// any snooping mutated it.
func (b *Bus) emitBegin(requester int, addr word.Addr, cmd uint8, holders uint64, withLock bool) {
	var lk uint32
	if withLock {
		lk = 1
	}
	b.probe.Emit(probe.Event{
		Kind: probe.KindBusBegin, Cycle: b.ProbeClock(), PE: int16(requester),
		Addr: addr, A: cmd, Arg: holders, N: lk,
	})
}

func (b *Bus) emitEnd(requester int, addr word.Addr, cmd, pat uint8, holders, cy uint64) {
	b.probe.Emit(probe.Event{
		Kind: probe.KindBusEnd, Cycle: b.ProbeClock(), PE: int16(requester),
		Addr: addr, A: cmd, B: pat, Arg: holders, N: uint32(cy),
	})
}

// emitAborted reports a transaction that drew LH: begin, the lock
// conflict, and the end of the aborted (address-broadcast-only)
// transaction.
func (b *Bus) emitAborted(requester int, addr word.Addr, cmd uint8, withLock bool, holders, cy uint64) {
	b.emitBegin(requester, addr, cmd, holders, withLock)
	b.probe.Emit(probe.Event{
		Kind: probe.KindLockConflict, Cycle: b.ProbeClock(), PE: int16(requester), Addr: addr,
	})
	b.emitEnd(requester, addr, cmd, uint8(PatInval), holders, cy)
}

func (b *Bus) account(p Pattern, a word.Addr) uint64 {
	cy := b.cycleTab[p]
	b.stats.TotalCycles += cy
	b.stats.CyclesByArea[b.bounds.AreaOf(a)] += cy
	b.stats.CyclesByPattern[p] += cy
	b.stats.CountByPattern[p]++
	// The fetch or lone write-back occupies the memory module once
	// (nonzero only for the memory patterns); hidden victim write-backs
	// are charged by SwapOutHidden.
	b.stats.MemBusyCycles += b.memBusyTab[p]
	return cy
}

// lockHit polls remote lock directories for a lock on exactly addr,
// recording the waiter on a hit. With the lock filter on, the poll
// returns immediately when no remote PE holds any lock and otherwise
// visits only PEs with nonzero held-lock counts — a directory with no
// entries can neither hit nor change state, so skipping it is exact.
func (b *Bus) lockHit(requester int, addr word.Addr) bool {
	if !b.noFilters && b.remoteLocks(requester) == 0 {
		return false
	}
	hit := false
	for i, lu := range b.lockUnits {
		if i == requester || lu == nil {
			continue
		}
		if !b.noFilters && b.lockCounts[i] == 0 {
			continue
		}
		if lu.CheckLocked(addr) {
			hit = true
		}
	}
	if hit {
		b.stats.Commands[CmdLH]++
	}
	return hit
}

// lockedBlockElsewhere reports whether any remote PE holds a lock on any
// word of addr's block; such blocks are granted shared, never exclusive.
// Filtered the same way as lockHit (LocksInBlock has no side effects, so
// skipping lock-free PEs is trivially exact).
func (b *Bus) lockedBlockElsewhere(requester int, addr word.Addr) bool {
	if !b.noFilters && b.remoteLocks(requester) == 0 {
		return false
	}
	base := b.blockBase(addr)
	for i, lu := range b.lockUnits {
		if i == requester || lu == nil {
			continue
		}
		if !b.noFilters && b.lockCounts[i] == 0 {
			continue
		}
		if lu.LocksInBlock(base, b.blockWords) {
			return true
		}
	}
	return false
}

// Fetch performs an F (inval=false) or FI (inval=true) transaction for
// the block containing addr, on behalf of requester. victimDirty reports
// whether the requester must also write back a dirty victim, which
// selects the with-swap-out pattern. withLock adds an LK broadcast (the
// LR operation). The returned data aliases a bus-owned buffer valid only
// until the next transaction (see FetchResult.Data).
func (b *Bus) Fetch(requester int, addr word.Addr, inval, victimDirty, withLock bool) FetchResult {
	b.beginTransaction()
	if withLock {
		b.stats.Commands[CmdLK]++
	}
	if b.lockHit(requester, addr) {
		// Transaction aborted: LH response, requester busy-waits. The
		// address broadcast still consumed bus cycles.
		var holders uint64
		if b.probe != nil {
			holders = b.actualHolders(requester, addr)
		}
		cy := b.account(PatInval, addr)
		if b.probe != nil {
			cmd := CmdF
			if inval {
				cmd = CmdFI
			}
			b.emitAborted(requester, addr, uint8(cmd), withLock, holders, cy)
		}
		return FetchResult{LockHit: true}
	}
	return b.fetch(requester, addr, inval, victimDirty, withLock)
}

// FetchForced performs a fetch without polling remote lock directories.
// The cache uses it to complete a plain R/W whose first attempt drew LH:
// the busy wait has been accounted and the retry proceeds as it would
// after the unlock broadcast.
func (b *Bus) FetchForced(requester int, addr word.Addr, inval, victimDirty bool) FetchResult {
	b.beginTransaction()
	return b.fetch(requester, addr, inval, victimDirty, false)
}

func (b *Bus) fetch(requester int, addr word.Addr, inval, victimDirty, withLock bool) FetchResult {
	cmd := CmdF
	if inval {
		cmd = CmdFI
	}
	b.stats.Commands[cmd]++

	base := b.blockBase(addr)
	var holders uint64
	if b.probe != nil {
		// Captured before the snoop loop: FI snoops drop copies and
		// mutate the presence table.
		holders = b.actualHolders(requester, addr)
		b.emitBegin(requester, addr, uint8(cmd), holders, withLock)
	}
	var res FetchResult
	// Whether some cache supplied the block. Tracked explicitly — not as
	// res.Data != nil — so the stats-only mode, which never materializes
	// Data, selects the identical pattern and command counts.
	fromCache := false
	// Visit the (filtered) snoop set in ascending PE order — the same
	// order the unfiltered scan used, so supplier selection is identical.
	// Snoopers invalidated mid-loop mutate b.presence; m is a local copy,
	// so the iteration is unaffected.
	for m := b.remoteMask(requester, base); m != 0; m &= m - 1 {
		s := b.snoopers[bits.TrailingZeros64(m)]
		if s == nil {
			continue
		}
		data, held, supplies, dirty, retained := s.SnoopFetch(addr, inval)
		if !held {
			continue
		}
		b.stats.Commands[CmdH]++
		if supplies && !fromCache {
			fromCache = true
			res.FromCache = true
			if !b.statsOnly {
				res.Data = append(b.blockBuf[:0], data...)
			}
		}
		if dirty {
			// The dirty copy wins: at most one modified copy exists under
			// either protocol, and it is the authoritative one.
			res.SupplierDirty = true
			if !b.statsOnly {
				res.Data = append(res.Data[:0], data...)
			}
		}
		if retained {
			res.Shared = true
		}
	}
	var pat Pattern
	if !fromCache {
		// No cache held the block: shared memory supplies it.
		if !b.statsOnly {
			res.Data = b.blockBuf[:b.blockWords]
			b.memory.ReadBlock(base, res.Data)
		}
		if victimDirty {
			pat = PatSwapInMemSwapOut
		} else {
			pat = PatSwapInMem
		}
	} else {
		if victimDirty {
			pat = PatC2CSwapOut
		} else {
			pat = PatC2C
		}
	}
	cy := b.account(pat, addr)
	if b.probe != nil {
		b.emitEnd(requester, addr, uint8(cmd), uint8(pat), holders, cy)
	}
	if !res.Shared && b.lockedBlockElsewhere(requester, addr) {
		// A remote PE holds a lock on a (possibly swapped-out) word of
		// this block: deny exclusivity — even on FI — so that a later LR
		// to the locked word cannot hit an exclusive block and bypass the
		// bus, which would let two PEs hold the same lock.
		res.Shared = true
	}
	return res
}

// RemoteLockInBlock reports whether a PE other than requester holds a
// lock on any word of addr's block. Writers consult it to settle in SM
// rather than EM, preserving the no-exclusive-block-over-a-remote-lock
// invariant.
func (b *Bus) RemoteLockInBlock(requester int, addr word.Addr) bool {
	return b.lockedBlockElsewhere(requester, addr)
}

// RemoteHolder reports whether any cache other than requester holds a
// valid copy of the block containing addr. This is the snoop-result peek
// the cache controller uses to select among the ER and RP sub-behaviours
// before committing to a bus command. With the presence filter it is one
// table load; unfiltered it polls every snooper.
func (b *Bus) RemoteHolder(requester int, addr word.Addr) bool {
	if !b.noFilters {
		return b.presenceAt(addr>>b.blockShift)&^(1<<uint(requester)) != 0
	}
	for i, s := range b.snoopers {
		if i == requester || s == nil {
			continue
		}
		if s.Holds(addr) {
			return true
		}
	}
	return false
}

// Invalidate performs an I transaction for the block containing addr
// (write hit on a shared block, or LR taking ownership with LK). ok is
// false when a remote lock directory responded LH, in which case no
// copies were invalidated. dirtyKilled reports that an invalidated
// remote copy was modified: the requester's own copy is now the only
// one holding that data, so a requester that stays clean after the
// upgrade would silently lose it — it must take write-back ownership.
func (b *Bus) Invalidate(requester int, addr word.Addr, withLock bool) (ok, dirtyKilled bool) {
	b.beginTransaction()
	if withLock {
		b.stats.Commands[CmdLK]++
	}
	if b.lockHit(requester, addr) {
		var holders uint64
		if b.probe != nil {
			holders = b.actualHolders(requester, addr)
		}
		cy := b.account(PatInval, addr)
		if b.probe != nil {
			b.emitAborted(requester, addr, uint8(CmdI), withLock, holders, cy)
		}
		return false, false
	}
	return true, b.invalidate(requester, addr, withLock)
}

// ForceInvalidate invalidates without the lock poll; see FetchForced.
// Like Invalidate it reports whether a remote modified copy died.
func (b *Bus) ForceInvalidate(requester int, addr word.Addr) (dirtyKilled bool) {
	b.beginTransaction()
	return b.invalidate(requester, addr, false)
}

func (b *Bus) invalidate(requester int, addr word.Addr, withLock bool) (dirtyKilled bool) {
	b.stats.Commands[CmdI]++
	var holders uint64
	if b.probe != nil {
		holders = b.actualHolders(requester, addr)
		b.emitBegin(requester, addr, uint8(CmdI), holders, withLock)
	}
	cy := b.account(PatInval, addr)
	// SnoopInvalidate is a no-op on non-holders, so visiting only the
	// filtered holder set is exact.
	for m := b.remoteMask(requester, b.blockBase(addr)); m != 0; m &= m - 1 {
		if s := b.snoopers[bits.TrailingZeros64(m)]; s != nil {
			if s.SnoopInvalidate(addr) {
				dirtyKilled = true
			}
		}
	}
	if b.probe != nil {
		b.emitEnd(requester, addr, uint8(CmdI), uint8(PatInval), holders, cy)
	}
	return dirtyKilled
}

// Update performs a UP transaction for addr on behalf of requester: the
// written word w is broadcast to every other holder of addr's block (the
// write-update protocols' alternative to Invalidate). Memory is not
// written — the requester owns the eventual write-back. ok is false when
// a remote lock directory responded LH (locks keep their invalidate-era
// semantics: a store to a remotely locked word busy-waits), in which
// case no copies were updated. shared reports that at least one remote
// holder retained a copy after the broadcast, so the writer must settle
// in its dirty-shared state.
func (b *Bus) Update(requester int, addr word.Addr, w word.Word) (ok, shared bool) {
	b.beginTransaction()
	if b.lockHit(requester, addr) {
		var holders uint64
		if b.probe != nil {
			holders = b.actualHolders(requester, addr)
		}
		cy := b.account(PatInval, addr)
		if b.probe != nil {
			b.emitAborted(requester, addr, uint8(CmdUP), false, holders, cy)
		}
		return false, false
	}
	return true, b.update(requester, addr, w)
}

// ForceUpdate updates without the lock poll; see FetchForced.
func (b *Bus) ForceUpdate(requester int, addr word.Addr, w word.Word) (shared bool) {
	b.beginTransaction()
	return b.update(requester, addr, w)
}

func (b *Bus) update(requester int, addr word.Addr, w word.Word) (shared bool) {
	b.stats.Commands[CmdUP]++
	var holders uint64
	if b.probe != nil {
		holders = b.actualHolders(requester, addr)
		b.emitBegin(requester, addr, uint8(CmdUP), holders, false)
	}
	cy := b.account(PatUpdate, addr)
	// SnoopUpdate is a no-op on non-holders, so visiting only the
	// filtered holder set is exact. Holders self-invalidating mid-loop
	// (the adaptive protocol) mutate b.presence; m is a local copy, so
	// the iteration is unaffected.
	for m := b.remoteMask(requester, b.blockBase(addr)); m != 0; m &= m - 1 {
		if s := b.snoopers[bits.TrailingZeros64(m)]; s != nil {
			held, retained := s.SnoopUpdate(addr, w)
			if held {
				b.stats.Commands[CmdH]++
			}
			if retained {
				shared = true
			}
		}
	}
	if b.probe != nil {
		b.emitEnd(requester, addr, uint8(CmdUP), uint8(PatUpdate), holders, cy)
	}
	return shared
}

// SwapOut writes requester's dirty victim block back to shared memory
// as a lone transaction (the DW-only pattern; fetch-driven write-backs
// are costed inside Fetch).
func (b *Bus) SwapOut(requester int, base word.Addr, data []word.Word) {
	b.beginTransaction()
	if b.probe != nil {
		b.emitBegin(requester, base, probe.CmdNone, 0, false)
	}
	if !b.statsOnly {
		b.memory.WriteBlock(base, data)
	}
	cy := b.account(PatSwapOutOnly, base)
	if b.probe != nil {
		b.emitEnd(requester, base, probe.CmdNone, uint8(PatSwapOutOnly), 0, cy)
	}
}

// SwapOutHidden writes a dirty victim back to memory during a fetch; the
// bus cycles were already accounted by the with-swap-out fetch pattern,
// but the memory module is still occupied absorbing the write.
func (b *Bus) SwapOutHidden(base word.Addr, data []word.Word) {
	if !b.statsOnly {
		b.memory.WriteBlock(base, data)
	}
	b.stats.MemBusyCycles += uint64(b.timing.MemCycles)
}

// MemoryWriteBack writes a block to memory charging memory-module
// occupancy but no bus cycles. The Illinois baseline uses it for its
// copy-back-on-transfer (the reflection rides the bus transfer already
// accounted, but the memory module is busy absorbing it), and cache
// flushes outside measurement windows use it for correctness only.
func (b *Bus) MemoryWriteBack(base word.Addr, data []word.Word) {
	if !b.statsOnly {
		b.memory.WriteBlock(base, data)
	}
	b.stats.MemBusyCycles += uint64(b.timing.MemCycles)
}

// WordWrite performs a write-through store of one word to shared memory,
// invalidating all other cached copies (write-through-with-invalidate,
// the baseline the copy-back protocols are measured against).
func (b *Bus) WordWrite(requester int, addr word.Addr, w word.Word) {
	b.beginTransaction()
	var holders uint64
	if b.probe != nil {
		holders = b.actualHolders(requester, addr)
		b.emitBegin(requester, addr, probe.CmdNone, holders, false)
	}
	if !b.statsOnly {
		b.memory.Write(addr, w)
	}
	cy := b.account(PatWordWrite, addr)
	for m := b.remoteMask(requester, b.blockBase(addr)); m != 0; m &= m - 1 {
		if s := b.snoopers[bits.TrailingZeros64(m)]; s != nil {
			// Write-through blocks are never dirty, so the response is
			// unused here.
			s.SnoopInvalidate(addr)
		}
	}
	if b.probe != nil {
		b.emitEnd(requester, addr, probe.CmdNone, uint8(PatWordWrite), holders, cy)
	}
}

// Unlock broadcasts UL for addr, waking busy-waiting PEs. The paper's
// optimization — suppressing the broadcast when no PE waits — is decided
// by the caller (the lock directory), so every call here costs cycles.
// The broadcast is never filtered: the PEs that must observe it are the
// busy-waiters, which by definition hold no locks and no copy of the
// block, so neither presence filter can name them.
func (b *Bus) Unlock(requester int, addr word.Addr) {
	b.beginTransaction()
	b.stats.Commands[CmdUL]++
	if b.probe != nil {
		b.emitBegin(requester, addr, uint8(CmdUL), 0, false)
	}
	cy := b.account(PatUnlock, addr)
	for i, lu := range b.lockUnits {
		if i == requester || lu == nil {
			continue
		}
		lu.ObserveUnlock(addr)
	}
	if b.probe != nil {
		b.emitEnd(requester, addr, uint8(CmdUL), uint8(PatUnlock), 0, cy)
	}
}
