package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty cases")
	}
	// A single sample is not degenerate: its population deviation is a
	// genuine zero, whatever the value.
	for _, v := range []float64{0, 1, -3.5, 1e9} {
		if s := StdDev([]float64{v}); s != 0 {
			t.Errorf("StdDev([%v]) = %v, want 0", v, s)
		}
	}
}

func TestStdDevNonNegativeProperty(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		for _, v := range []float64{a, b, c, d} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		return StdDev([]float64{a, b, c, d}) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPctAndRatio(t *testing.T) {
	if Pct(1, 4) != 25 || Pct(0, 0) != 0 {
		t.Error("Pct")
	}
	if Ratio(1, 4) != 0.25 || Ratio(5, 0) != 0 {
		t.Error("Ratio")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:   "Demo",
		Columns: []string{"bench", "a", "bb"},
		Notes:   []string{"hello"},
	}
	tb.AddRow("Tri", "1.00", "0.52")
	tb.AddFloats("Semi", "%.2f", 1, 0.62)
	out := tb.String()
	for _, frag := range []string{"Demo", "bench", "bb", "Tri", "0.52", "Semi", "0.62", "note: hello"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
	// Columns align: every data line has the same rune count.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 5 {
		t.Fatalf("too few lines:\n%s", out)
	}
	headerLen := len(lines[2]) // header line after title+underline
	if len(lines[4]) != headerLen && len(lines[5-1]) != headerLen {
		t.Logf("alignment differs (header %d): ok if ragged label", headerLen)
	}
}

func TestTableEmptyRows(t *testing.T) {
	// A table with columns but no rows renders the header and rule only.
	tb := &Table{Title: "Empty", Columns: []string{"metric", "value"}}
	out := tb.String()
	for _, frag := range []string{"Empty", "metric", "value", "---"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, underline, header, rule — no data lines
		t.Errorf("empty table rendered %d lines, want 4:\n%s", len(lines), out)
	}
	// A completely empty table renders as the empty string, not a panic.
	if got := (&Table{}).String(); got != "" {
		t.Errorf("zero table = %q, want empty", got)
	}
}

func TestTableHandlesRaggedRows(t *testing.T) {
	tb := &Table{Columns: []string{"x", "y"}}
	tb.AddRow("long-row", "1", "2", "3")
	tb.AddRow("s")
	out := tb.String()
	if !strings.Contains(out, "long-row") || !strings.Contains(out, "3") {
		t.Errorf("ragged rows mishandled:\n%s", out)
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Title: "Fig", XLabel: "size", YNames: []string{"miss", "cycles"}}
	s.Add("512", 0.10, 12345)
	s.Add("1024", 0.05, 6789)
	out := s.String()
	for _, frag := range []string{"Fig", "size", "miss", "cycles", "512", "0.05"} {
		if !strings.Contains(out, frag) {
			t.Errorf("series output missing %q:\n%s", frag, out)
		}
	}
}

func TestBars(t *testing.T) {
	out := Bars("demo", []string{"a", "bb"}, []float64{2, 4}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 || lines[0] != "demo" {
		t.Fatalf("output %q", out)
	}
	if !strings.Contains(lines[2], "##########") {
		t.Errorf("max bar not full width: %q", lines[2])
	}
	if !strings.Contains(lines[1], "#####") || strings.Contains(lines[1], "######") {
		t.Errorf("half bar wrong: %q", lines[1])
	}
	// Zero values render without panic.
	if z := Bars("", []string{"x"}, []float64{0}, 10); !strings.Contains(z, "x") {
		t.Errorf("zero bar %q", z)
	}
}
