// Package stats provides the small statistics and table-formatting
// helpers used to reproduce the paper's tables and figures: means and
// standard deviations over benchmark sets, percentage vectors, and a
// fixed-width text table renderer.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs, matching the
// paper's σ rows. A single sample has zero deviation by definition;
// only the empty slice is undefined and reported as 0.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Pct returns 100*part/total, or 0 when total is zero.
func Pct(part, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(part) / float64(total)
}

// Ratio returns part/total, or 0 when total is zero.
func Ratio(part, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(part) / float64(total)
}

// Table is a labelled grid of pre-formatted cells.
type Table struct {
	Title   string
	Columns []string // first column is the row-label header
	Rows    []Row
	Notes   []string
}

// Row is one table line.
type Row struct {
	Label string
	Cells []string
}

// AddRow appends a row of cells formatted with the given verbs.
func (t *Table) AddRow(label string, cells ...string) {
	t.Rows = append(t.Rows, Row{Label: label, Cells: cells})
}

// AddFloats appends a row of float cells with the given format.
func (t *Table) AddFloats(label, format string, vals ...float64) {
	cells := make([]string, len(vals))
	for i, v := range vals {
		cells[i] = fmt.Sprintf(format, v)
	}
	t.AddRow(label, cells...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
		sb.WriteString(strings.Repeat("=", len(t.Title)))
		sb.WriteByte('\n')
	}
	ncols := len(t.Columns)
	for _, r := range t.Rows {
		if len(r.Cells)+1 > ncols {
			ncols = len(r.Cells) + 1
		}
	}
	widths := make([]int, ncols)
	cell := func(r Row, c int) string {
		if c == 0 {
			return r.Label
		}
		if c-1 < len(r.Cells) {
			return r.Cells[c-1]
		}
		return ""
	}
	for c := 0; c < ncols; c++ {
		if c < len(t.Columns) {
			widths[c] = len(t.Columns[c])
		}
		for _, r := range t.Rows {
			if n := len(cell(r, c)); n > widths[c] {
				widths[c] = n
			}
		}
	}
	writeLine := func(get func(c int) string) {
		for c := 0; c < ncols; c++ {
			if c > 0 {
				sb.WriteString("  ")
			}
			s := get(c)
			if c == 0 {
				sb.WriteString(s + strings.Repeat(" ", widths[c]-len(s)))
			} else {
				sb.WriteString(strings.Repeat(" ", widths[c]-len(s)) + s)
			}
		}
		sb.WriteByte('\n')
	}
	if len(t.Columns) > 0 {
		writeLine(func(c int) string {
			if c < len(t.Columns) {
				return t.Columns[c]
			}
			return ""
		})
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		sb.WriteString(strings.Repeat("-", total-2))
		sb.WriteByte('\n')
	}
	for _, r := range t.Rows {
		writeLine(func(c int) string { return cell(r, c) })
	}
	for _, n := range t.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	return sb.String()
}

// Series is a labelled (x, y...) point set for reproducing figures as
// text: one x column and one y column per named series.
type Series struct {
	Title  string
	XLabel string
	YNames []string
	Points []SeriesPoint
	Notes  []string
}

// SeriesPoint is one x with its y values.
type SeriesPoint struct {
	X  string
	Ys []float64
}

// Add appends a point.
func (s *Series) Add(x string, ys ...float64) {
	s.Points = append(s.Points, SeriesPoint{X: x, Ys: ys})
}

// Table renders the series as a table.
func (s *Series) Table(format string) *Table {
	t := &Table{Title: s.Title, Columns: append([]string{s.XLabel}, s.YNames...), Notes: s.Notes}
	for _, p := range s.Points {
		t.AddFloats(p.X, format, p.Ys...)
	}
	return t
}

// String renders the series with a default cell format.
func (s *Series) String() string { return s.Table("%.4g").String() }

// Bars renders a labelled horizontal ASCII bar chart, scaled so the
// largest value spans width characters. Used by the examples and
// pimbench to make the figures legible in a terminal.
func Bars(title string, labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 40
	}
	var max float64
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title + "\n")
	}
	for i, v := range values {
		n := 0
		if max > 0 {
			n = int(v / max * float64(width))
		}
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		sb.WriteString(label + strings.Repeat(" ", labelW-len(label)) + " |")
		sb.WriteString(strings.Repeat("#", n))
		fmt.Fprintf(&sb, " %.4g\n", v)
	}
	return sb.String()
}
