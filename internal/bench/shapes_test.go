package bench

import (
	"testing"

	"pimcache/internal/mem"
	"pimcache/internal/stats"
)

// fullQuickData collects the complete quick-scale evaluation (all four
// benchmarks, sweeps included) once.
var fullQuickData *Data

func quadDataset(t *testing.T) *Data {
	t.Helper()
	if testing.Short() {
		t.Skip("full quick evaluation takes ~10s")
	}
	if fullQuickData == nil {
		o := DefaultOptions()
		o.Quick = true
		d, err := Collect(o)
		if err != nil {
			t.Fatal(err)
		}
		fullQuickData = d
	}
	return fullQuickData
}

// TestShapeTable4 asserts the paper's headline: the optimized commands
// cut bus traffic substantially, and DW (the Heap column) contributes
// almost all of the savings.
func TestShapeTable4(t *testing.T) {
	d := quadDataset(t)
	for _, bd := range d.Benches {
		none := float64(bd.OptBus["None"].TotalCycles)
		all := float64(bd.OptBus["All"].TotalCycles)
		heap := float64(bd.OptBus["Heap"].TotalCycles)
		if all/none > 0.90 {
			t.Errorf("%s: All saves too little (%.2f)", bd.Name, all/none)
		}
		if bd.Name == "Semi" {
			// The reconstructed Semi is read-mostly, so its (small)
			// savings spread across the optimization sites; see
			// EXPERIMENTS.md.
			continue
		}
		heapSaving := none - heap
		totalSaving := none - all
		if heapSaving < 0.5*totalSaving {
			t.Errorf("%s: DW contributes only %.0f%% of the savings (paper: almost all)",
				bd.Name, 100*heapSaving/totalSaving)
		}
	}
}

// TestShapeBlockSize asserts Figure 1's trade-off: miss ratio improves
// with block size well past four words, but four-word blocks are at or
// near the bus-traffic minimum, and sixteen-word blocks are clearly
// worse.
func TestShapeBlockSize(t *testing.T) {
	d := quadDataset(t)
	for _, bd := range d.Benches {
		points := map[int]SweepPoint{}
		for _, p := range bd.BlockSweep {
			points[p.Param] = p
		}
		if points[4].MissRatio >= points[1].MissRatio {
			t.Errorf("%s: miss ratio did not improve from 1 to 4 word blocks", bd.Name)
		}
		best := points[4].BusCycles
		if float64(points[4].BusCycles) > 1.1*float64(minCycles(bd.BlockSweep)) {
			t.Errorf("%s: 4-word blocks (%d cycles) far from the traffic minimum (%d)",
				bd.Name, best, minCycles(bd.BlockSweep))
		}
		if points[16].BusCycles <= points[4].BusCycles {
			t.Errorf("%s: 16-word blocks did not increase traffic", bd.Name)
		}
	}
}

func minCycles(ps []SweepPoint) uint64 {
	m := ps[0].BusCycles
	for _, p := range ps {
		if p.BusCycles < m {
			m = p.BusCycles
		}
	}
	return m
}

// TestShapeCapacityKnee asserts Figure 2: traffic falls monotonically
// with capacity and most of the improvement is gone by 8K words.
func TestShapeCapacityKnee(t *testing.T) {
	d := quadDataset(t)
	for _, bd := range d.Benches {
		first := bd.CapSweep[0].BusCycles
		last := bd.CapSweep[len(bd.CapSweep)-1].BusCycles
		var at8k uint64
		prev := uint64(1) << 62
		for _, p := range bd.CapSweep {
			if p.BusCycles > prev {
				t.Errorf("%s: traffic rose at capacity %d", bd.Name, p.Param)
			}
			prev = p.BusCycles
			if p.Param == 8<<10 {
				at8k = p.BusCycles
			}
		}
		// At 8K words at least ~70% of the total 512->16K improvement is
		// realized.
		if first > last {
			gain := float64(first - last)
			got := float64(first - at8k)
			if got < 0.7*gain {
				t.Errorf("%s: knee after 8K (%.0f%% of gain realized)", bd.Name, 100*got/gain)
			}
		}
	}
}

// TestShapeCommunicationGrowth asserts Figure 3's in-text claim: the
// communication share of bus cycles grows with PEs while the heap share
// falls.
func TestShapeCommunicationGrowth(t *testing.T) {
	d := quadDataset(t)
	share := func(pes int, area mem.Area) float64 {
		var vals []float64
		for _, bd := range d.Benches {
			rd := bd.LiveByPEs[pes]
			vals = append(vals, stats.Pct(rd.Bus.CyclesByArea[area], rd.Bus.TotalCycles))
		}
		return stats.Mean(vals)
	}
	if c1, c8 := share(1, mem.AreaComm), share(8, mem.AreaComm); c8 <= c1 {
		t.Errorf("comm share did not grow: %.1f%% -> %.1f%%", c1, c8)
	}
	if h1, h8 := share(1, mem.AreaHeap), share(8, mem.AreaHeap); h8 >= h1 {
		t.Errorf("heap share did not fall: %.1f%% -> %.1f%%", h1, h8)
	}
}

// TestShapeLockProtocol asserts Table 5's conclusion: locking is almost
// free — unlocks essentially never broadcast, and (outside the
// reconstructed Semi, see EXPERIMENTS.md) most lock-reads hit exclusive
// blocks.
func TestShapeLockProtocol(t *testing.T) {
	d := quadDataset(t)
	for _, bd := range d.Benches {
		cs := bd.OptCache["None"]
		noWaiter := stats.Ratio(cs.UnlockNoWaiter, cs.UnlockNoWaiter+cs.UnlockWaiter)
		if noWaiter < 0.95 {
			t.Errorf("%s: only %.3f of unlocks found no waiter", bd.Name, noWaiter)
		}
		if bd.Name == "Semi" {
			continue
		}
		if excl := stats.Ratio(cs.LRHitExclusive, cs.LRTotal()); excl < 0.5 {
			t.Errorf("%s: LR hit-to-exclusive only %.3f", bd.Name, excl)
		}
	}
}

// TestShapeBusWidth asserts the Section 4.4 band: a two-word bus carries
// the workloads in 55-85% of the one-word-bus cycles.
func TestShapeBusWidth(t *testing.T) {
	d := quadDataset(t)
	for _, bd := range d.Benches {
		r := stats.Ratio(bd.Width2.TotalCycles, bd.OptBus["All"].TotalCycles)
		if r < 0.55 || r > 0.85 {
			t.Errorf("%s: two-word-bus ratio %.2f outside the plausible band", bd.Name, r)
		}
	}
}

// TestShapeIllinoisMemoryPressure asserts the Section 3.1 rationale for
// the SM state: Illinois occupies the memory module more than PIM on
// every benchmark, at essentially equal bus traffic.
func TestShapeIllinoisMemoryPressure(t *testing.T) {
	d := quadDataset(t)
	for _, bd := range d.Benches {
		pim, ill := bd.OptBus["None"], bd.Illinois
		if ill.MemBusyCycles <= pim.MemBusyCycles {
			t.Errorf("%s: Illinois mem busy %d not above PIM %d",
				bd.Name, ill.MemBusyCycles, pim.MemBusyCycles)
		}
		ratio := float64(ill.TotalCycles) / float64(pim.TotalCycles)
		if ratio < 0.95 || ratio > 1.05 {
			t.Errorf("%s: bus traffic should be nearly equal, ratio %.3f", bd.Name, ratio)
		}
	}
}

// TestShapeAssociativity asserts the Section 4.3 text: direct-mapped
// caches generate significantly more traffic than four-way; two-way
// falls between.
func TestShapeAssociativity(t *testing.T) {
	d := quadDataset(t)
	for _, bd := range d.Benches {
		byWays := map[int]uint64{}
		for _, p := range bd.WaySweep {
			byWays[p.Param] = p.BusCycles
		}
		if byWays[1] <= byWays[2] || byWays[2] < byWays[4] {
			t.Errorf("%s: associativity ordering broken: 1w=%d 2w=%d 4w=%d",
				bd.Name, byWays[1], byWays[2], byWays[4])
		}
		if float64(byWays[1]) < 1.1*float64(byWays[4]) {
			t.Errorf("%s: direct-mapped only %.2fx of 4-way (paper: significantly greater)",
				bd.Name, float64(byWays[1])/float64(byWays[4]))
		}
	}
}

// TestShapeWriteThrough asserts the Section 3 premise: write-through
// generates far more bus traffic than the copy-back protocols on these
// write-heavy workloads.
func TestShapeWriteThrough(t *testing.T) {
	d := quadDataset(t)
	for _, bd := range d.Benches {
		base := bd.OptBus["None"].TotalCycles
		// Write-no-allocate also skips fetch-on-write misses, so the gap
		// narrows on migration-heavy streams; it must still clearly lose.
		if float64(bd.WriteThrough.TotalCycles) < 1.2*float64(base) {
			t.Errorf("%s: write-through only %.2fx of copy-back (paper premise: more traffic)",
				bd.Name, float64(bd.WriteThrough.TotalCycles)/float64(base))
		}
	}
}
