package bench

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/par"
	"pimcache/internal/trace"

	"pimcache/internal/bench/programs"
)

// Parallel evaluation engine.
//
// The evaluation is embarrassingly parallel: every live run builds its
// own machine.Machine, and every replay builds its own machine and shares
// only a read-only *trace.Trace with its siblings. collectParallel turns
// Collect into an explicit job graph executed on a bounded worker pool:
//
//   - one live-run job per (benchmark, PE count) of the PE sweep;
//   - the live run at Options.PEs is the record job: it additionally
//     captures the benchmark's reference stream, and on completion
//     submits that benchmark's replay jobs (Table 4 variants, Figure 1/2
//     sweeps, associativity ablation, two-word bus, Illinois and
//     write-through baselines) — replay jobs are gated on the trace
//     existing, never blocked waiting for it inside a worker;
//   - each replay job writes its result into a slot addressed by job
//     identity (benchmark × configuration index), so the assembled Data
//     is deterministic and byte-identical to the serial path regardless
//     of completion order;
//   - a per-benchmark consumer count releases the trace as soon as its
//     last replay finishes, preserving the serial path's bounded-memory
//     property (traces do not accumulate for the whole run).
type benchState struct {
	bench programs.Benchmark
	scale int
	bd    *BenchData

	// live results, indexed by position in Options.PESweep.
	live []*RunData

	// opt replay results, indexed by position in OptVariants.
	optBus   []bus.Stats
	optCache []cache.Stats

	// trace lifetime management.
	mu        sync.Mutex
	tr        *trace.Trace
	consumers atomic.Int32

	// rep routes this benchmark's replays (cold or through a shared warm
	// cache); set by the record job before any replay is submitted.
	rep *replayer
}

// traceDone records one finished replay; the last consumer drops the
// trace so its memory can be reclaimed while other benchmarks still run.
func (st *benchState) traceDone() {
	if st.consumers.Add(-1) == 0 {
		st.mu.Lock()
		st.tr = nil
		st.mu.Unlock()
	}
}

func (st *benchState) trace() *trace.Trace {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.tr
}

// replayConsumers counts the replay jobs that will read a trace.
func replayConsumers(o Options) int {
	n := len(OptVariants)
	if !o.SkipSweeps {
		n += len(o.BlockSizes) + len(o.Capacities) + len(o.Associativities)
		n += 3 // two-word bus, Illinois, write-through
		n += len(altProtocols())
	}
	return n
}

// collectParallel executes the evaluation's job graph on a worker pool of
// par.Jobs(o.Jobs) simulations.
func collectParallel(o Options) (*Data, error) {
	pw := newProgressLog(o.Progress)
	selected := selectedBenchmarks(o)

	// The record job is the root of each benchmark's graph; without it no
	// replay can run, so reject the configuration upfront (the serial
	// path discovers this after the sweep; the error is the same).
	recordIdx := -1
	for i, pes := range o.PESweep {
		if pes == o.PEs {
			recordIdx = i
			break
		}
	}
	if recordIdx < 0 && len(selected) > 0 {
		return nil, fmt.Errorf("%s: PESweep %v does not include PEs=%d",
			selected[0].Name, o.PESweep, o.PEs)
	}

	data := &Data{Options: o}
	states := make([]*benchState, len(selected))
	pool := par.NewCtx(o.ctx(), o.Jobs)
	for i, b := range selected {
		st := &benchState{
			bench: b,
			scale: o.ScaleFor(b),
			bd: &BenchData{
				Name:      b.Name,
				Scale:     o.ScaleFor(b),
				Lines:     b.Lines(),
				LiveByPEs: map[int]*RunData{},
				OptBus:    map[string]bus.Stats{},
				OptCache:  map[string]cache.Stats{},
			},
			live:     make([]*RunData, len(o.PESweep)),
			optBus:   make([]bus.Stats, len(OptVariants)),
			optCache: make([]cache.Stats, len(OptVariants)),
		}
		if !o.SkipSweeps {
			st.bd.BlockSweep = make([]SweepPoint, len(o.BlockSizes))
			st.bd.CapSweep = make([]SweepPoint, len(o.Capacities))
			st.bd.WaySweep = make([]SweepPoint, len(o.Associativities))
			// One slot per extra protocol: jobs write by index, so the
			// assembled slice is deterministic and race-free.
			st.bd.AltBus = make([]ProtocolStats, len(altProtocols()))
		}
		st.consumers.Store(int32(replayConsumers(o)))
		states[i] = st
		data.Benches = append(data.Benches, st.bd)
		submitLiveJobs(pool, pw, o, st, recordIdx)
	}
	if err := pool.Wait(); err != nil {
		return nil, err
	}
	// Deterministic assembly: maps are populated in canonical order from
	// the per-job slots, never from completion order.
	for _, st := range states {
		for i, pes := range o.PESweep {
			st.bd.LiveByPEs[pes] = st.live[i]
		}
		for i, v := range OptVariants {
			st.bd.OptBus[v.Name] = st.optBus[i]
			st.bd.OptCache[v.Name] = st.optCache[i]
		}
	}
	return data, nil
}

// submitLiveJobs enqueues one live run per PE-sweep point. The record run
// (pes == Options.PEs) chains the benchmark's replay jobs.
func submitLiveJobs(pool *par.Pool, pw *progressLog, o Options, st *benchState, recordIdx int) {
	for i, pes := range o.PESweep {
		i, pes := i, pes
		record := i == recordIdx
		pool.Go(func() error {
			pw.Printf(st.bench.Name, "live run on %d PEs (scale %d)", pes, st.scale)
			sp := o.Phases.Start("live/" + st.bench.Name)
			rd, tr, err := RunLive(st.bench, st.scale, pes, o.baseCache(cache.OptionsAll()), record)
			sp.End()
			if err != nil {
				return err
			}
			o.Metrics.Counter("bench.live.runs").Inc()
			st.live[i] = rd
			if record {
				st.bd.Refs = rd.Cache
				st.mu.Lock()
				st.tr = tr
				st.mu.Unlock()
				st.rep = o.newReplayer(tr.Len())
				submitReplayJobs(pool, pw, o, st)
			}
			return nil
		})
	}
}

// submitReplayJobs fans a benchmark's replays out as independent jobs.
// Called from inside the record job, so the trace is already available;
// Pool.Go never blocks the calling worker.
func submitReplayJobs(pool *par.Pool, pw *progressLog, o Options, st *benchState) {
	name := st.bench.Name
	replay := func(label string, job func(tr *trace.Trace) error) {
		pool.Go(func() error {
			defer st.traceDone()
			tr := st.trace()
			if tr == nil {
				return fmt.Errorf("%s/%s: trace released early", name, label)
			}
			pw.Printf(name, "replay %s (%d refs)", label, tr.Len())
			sp := o.Phases.Start("replay/" + name)
			err := job(tr)
			sp.End()
			return err
		})
	}
	for i, v := range OptVariants {
		i, v := i, v
		replay(v.Name, func(tr *trace.Trace) error {
			bs, cs, err := st.rep.Replay(tr, o.baseCache(v.Opts), bus.DefaultTiming())
			if err != nil {
				return fmt.Errorf("%s/%s: %w", name, v.Name, err)
			}
			st.optBus[i], st.optCache[i] = bs, cs
			return nil
		})
	}
	if o.SkipSweeps {
		return
	}
	for i, bw := range o.BlockSizes {
		i, bw := i, bw
		replay(fmt.Sprintf("block=%d", bw), func(tr *trace.Trace) error {
			cfg := o.baseCache(cache.OptionsAll())
			cfg.BlockWords = bw
			bs, cs, err := st.rep.Replay(tr, cfg, bus.DefaultTiming())
			if err != nil {
				return fmt.Errorf("%s/block%d: %w", name, bw, err)
			}
			st.bd.BlockSweep[i] = SweepPoint{
				Param: bw, MissRatio: cs.MissRatio(), BusCycles: bs.TotalCycles,
				DirectoryBits: cfg.DirectoryBits(),
			}
			return nil
		})
	}
	for i, size := range o.Capacities {
		i, size := i, size
		replay(fmt.Sprintf("capacity=%d", size), func(tr *trace.Trace) error {
			cfg := o.baseCache(cache.OptionsAll())
			cfg.SizeWords = size
			bs, cs, err := st.rep.Replay(tr, cfg, bus.DefaultTiming())
			if err != nil {
				return fmt.Errorf("%s/size%d: %w", name, size, err)
			}
			st.bd.CapSweep[i] = SweepPoint{
				Param: size, MissRatio: cs.MissRatio(), BusCycles: bs.TotalCycles,
				DirectoryBits: cfg.DirectoryBits(),
			}
			return nil
		})
	}
	for i, ways := range o.Associativities {
		i, ways := i, ways
		replay(fmt.Sprintf("ways=%d", ways), func(tr *trace.Trace) error {
			cfg := o.baseCache(cache.OptionsAll())
			cfg.Ways = ways
			bs, cs, err := st.rep.Replay(tr, cfg, bus.DefaultTiming())
			if err != nil {
				return fmt.Errorf("%s/ways%d: %w", name, ways, err)
			}
			st.bd.WaySweep[i] = SweepPoint{
				Param: ways, MissRatio: cs.MissRatio(), BusCycles: bs.TotalCycles,
			}
			return nil
		})
	}
	replay("two-word bus", func(tr *trace.Trace) error {
		bs, _, err := st.rep.Replay(tr, o.baseCache(cache.OptionsAll()),
			bus.Timing{MemCycles: 8, WidthWords: 2})
		if err != nil {
			return err
		}
		st.bd.Width2 = bs
		return nil
	})
	replay("Illinois", func(tr *trace.Trace) error {
		cfg := o.baseCache(cache.OptionsNone())
		cfg.Protocol = cache.ProtocolIllinois
		bs, _, err := st.rep.Replay(tr, cfg, bus.DefaultTiming())
		if err != nil {
			return err
		}
		st.bd.Illinois = bs
		return nil
	})
	replay("write-through", func(tr *trace.Trace) error {
		cfg := o.baseCache(cache.OptionsNone())
		cfg.Protocol = cache.ProtocolWriteThrough
		bs, _, err := st.rep.Replay(tr, cfg, bus.DefaultTiming())
		if err != nil {
			return err
		}
		st.bd.WriteThrough = bs
		return nil
	})
	for i, ap := range altProtocols() {
		i, ap := i, ap
		replay(ap.String(), func(tr *trace.Trace) error {
			cfg := o.baseCache(cache.OptionsNone())
			cfg.Protocol = ap
			bs, _, err := st.rep.Replay(tr, cfg, bus.DefaultTiming())
			if err != nil {
				return fmt.Errorf("%s/%s: %w", name, ap, err)
			}
			st.bd.AltBus[i] = ProtocolStats{Name: ap.String(), Bus: bs}
			return nil
		})
	}
}
