// Package bench reproduces the paper's evaluation: it runs the four KL1
// benchmarks on the simulated PIM cluster and regenerates every table
// (1-5) and figure (1-3) of Section 4, plus the in-text experiments
// (two-word bus, optimization detail, Illinois comparison).
//
// The harness follows the paper's methodology: execution-driven emulation
// produces per-benchmark reference streams; configuration sweeps replay
// the recorded stream against different cache organizations (the stream
// is configuration-independent — see package trace).
package bench

import (
	"context"
	"fmt"
	"io"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/kl1/compile"
	"pimcache/internal/kl1/emulator"
	"pimcache/internal/kl1/parser"
	"pimcache/internal/kl1/word"
	"pimcache/internal/machine"
	"pimcache/internal/mem"
	"pimcache/internal/obs"
	"pimcache/internal/par"
	"pimcache/internal/probe"
	"pimcache/internal/trace"

	"pimcache/internal/bench/programs"
)

// Options configures a collection run.
type Options struct {
	// Quick selects reduced benchmark scales (seconds instead of
	// minutes).
	Quick bool
	// PEs is the cluster size for the main experiments (paper: 8).
	PEs int
	// PESweep lists the cluster sizes for Figure 3.
	PESweep []int
	// BlockSizes lists block sizes (words) for Figure 1.
	BlockSizes []int
	// Capacities lists cache sizes (words) for Figure 2.
	Capacities []int
	// Associativities lists way counts for the Section 4.3 ablation
	// (paper: two-way costs ~18% more traffic than four-way; direct
	// mapped significantly more).
	Associativities []int
	// SkipSweeps omits the Figure 1/2 sweeps and extras (for table-only
	// runs).
	SkipSweeps bool
	// Benchmarks restricts the set (nil = all four).
	Benchmarks []string
	// Progress, when non-nil, receives progress lines. Writes are
	// serialized and line-atomic even when jobs run concurrently.
	Progress io.Writer
	// Jobs bounds how many simulations (live runs and trace replays)
	// execute concurrently: 0 means runtime.NumCPU(), 1 selects the
	// serial legacy path. Every value produces identical results — jobs
	// share only read-only traces, and results are assembled by job
	// identity, never by completion order.
	Jobs int
	// DisableBusFilters runs every simulation with the bus presence
	// filters off (full broadcast polling). Results are identical either
	// way — the flag exists for the filter-equivalence oracle and as the
	// benchmark baseline.
	DisableBusFilters bool
	// WarmedSweeps lets replay jobs with identical (configuration,
	// timing) share a warmed machine checkpoint instead of each replaying
	// the common prefix — see WarmCache. Tables are byte-identical with
	// the flag on or off (the warmed-determinism oracle pins this); the
	// flag only removes redundant prefix work.
	WarmedSweeps bool
	// StatsOnly runs every replay job with the data plane compiled out
	// (cache.Config.StatsOnly): no cache data arrays, no memory words, no
	// fetch-buffer copies. Statistics and probe streams are bit-identical
	// to the data-carrying path (the stats-only equivalence oracle pins
	// this); the flag only removes data movement. Live runs are
	// unaffected — they record with a data-carrying configuration, since
	// program execution consumes the values.
	StatsOnly bool
	// Phases, when non-nil, collects per-phase wall times (live runs,
	// replays) for the run manifest. Nil disables timing at zero cost —
	// every obs handle is nil-safe.
	Phases *obs.Phases
	// Metrics, when non-nil, receives simulator self-metrics (replayed
	// references, jobs run) for the run manifest. Nil disables them.
	Metrics *obs.Registry
	// Context, when non-nil, bounds the run: once it is done, pending
	// jobs are dropped and Collect returns the context's error. Running
	// simulations finish their current unit first (a live run, or the
	// current replay), so cancellation is prompt but never leaves a
	// half-assembled result in Data — Collect either returns a complete
	// dataset or an error.
	Context context.Context
}

// ctx resolves the run context, never nil.
func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// DefaultOptions mirrors the paper's evaluation.
func DefaultOptions() Options {
	return Options{
		PEs:             8,
		PESweep:         []int{1, 2, 4, 8},
		BlockSizes:      []int{1, 2, 4, 8, 16},
		Capacities:      []int{512, 1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10},
		Associativities: []int{1, 2, 4, 8},
	}
}

// quickScales are reduced workloads for fast iterations.
var quickScales = map[string]int{"Tri": 7, "Semi": 128, "Puzzle": 4, "Pascal": 12, "BUP": 10, "PuzzleVec": 4}

// refHints are measured reference counts (8 PEs, all opts) at the scales
// the harness actually records at — each benchmark's quick, small and
// default scale — padded ~15% for PE-count and load-balance variation.
// They seed the trace recorder's capacity so recording a multi-million
// reference stream does not repeatedly regrow and copy its backing array.
var refHints = map[string]map[int]int{
	"Tri":       {6: 300_000, 7: 1_750_000, 8: 17_500_000},
	"Semi":      {64: 1_460_000, 128: 6_850_000, 256: 34_100_000},
	"Puzzle":    {2: 81_000, 4: 1_170_000, 5: 4_120_000},
	"Pascal":    {3: 201_000, 12: 548_000, 48: 2_110_000},
	"BUP":       {6: 118_000, 10: 489_000, 14: 1_390_000},
	"PuzzleVec": {2: 90_000, 4: 1_060_000, 5: 3_510_000},
}

// refHint estimates the reference-stream length for a benchmark run, or 0
// when the scale has no measurement (the recorder then grows on demand).
func refHint(name string, scale int) int {
	return refHints[name][scale]
}

// ScaleFor returns the scale a benchmark runs at under the options.
func (o Options) ScaleFor(b programs.Benchmark) int {
	if o.Quick {
		if s, ok := quickScales[b.Name]; ok {
			return s
		}
		return b.SmallScale
	}
	return b.DefaultScale
}

// Layout is the memory layout used by all benchmark runs.
func Layout() mem.Layout {
	return mem.Layout{
		InstWords: 64 << 10,
		HeapWords: 8 << 20,
		GoalWords: 1 << 20,
		SuspWords: 256 << 10,
		CommWords: 64 << 10,
	}
}

// BaseCache returns the paper's base cache (4Kword, 4-word blocks,
// 4-way) with the given optimized-command options.
func BaseCache(opts cache.Options) cache.Config {
	cfg := cache.DefaultConfig()
	cfg.Options = opts
	return cfg
}

// baseCache is BaseCache with the options' simulator knobs applied.
func (o Options) baseCache(opts cache.Options) cache.Config {
	cfg := BaseCache(opts)
	cfg.DisableBusFilters = o.DisableBusFilters
	return cfg
}

// RunData captures one live run.
type RunData struct {
	Bench  string
	PEs    int
	Scale  int
	Result emulator.Result
	Bus    bus.Stats
	Cache  cache.Stats
}

// RunLive compiles and runs benchmark b at the given scale/PE count under
// ccfg with the paper's base bus timing, optionally recording the
// reference stream. Output is verified against the benchmark's Go
// reference implementation.
func RunLive(b programs.Benchmark, scale, pes int, ccfg cache.Config, record bool) (*RunData, *trace.Trace, error) {
	return RunLiveTiming(b, scale, pes, ccfg, bus.DefaultTiming(), record)
}

// RunLiveProbed is RunLiveTiming with a telemetry sink attached to the
// whole cluster (bus, caches, machine, scheduler) for the duration of
// the run. The sink receives the full event stream, scheduler events
// included.
func RunLiveProbed(b programs.Benchmark, scale, pes int, ccfg cache.Config, timing bus.Timing, record bool, sink probe.Sink) (*RunData, *trace.Trace, error) {
	return runLive(b, scale, pes, ccfg, timing, record, sink)
}

// RunLiveTiming is RunLive with explicit bus timing.
func RunLiveTiming(b programs.Benchmark, scale, pes int, ccfg cache.Config, timing bus.Timing, record bool) (*RunData, *trace.Trace, error) {
	return runLive(b, scale, pes, ccfg, timing, record, nil)
}

func runLive(b programs.Benchmark, scale, pes int, ccfg cache.Config, timing bus.Timing, record bool, sink probe.Sink) (*RunData, *trace.Trace, error) {
	if ccfg.StatsOnly {
		// machine.Run would panic anyway; fail with a benchmark-labelled
		// error first so callers get a diagnosable message.
		return nil, nil, fmt.Errorf("%s: live run needs data values (unification reads them back): cache config is stats-only, which supports trace replay only", b.Name)
	}
	prog, err := parser.Parse(b.Source(scale))
	if err != nil {
		return nil, nil, fmt.Errorf("%s: parse: %w", b.Name, err)
	}
	im, err := compile.Compile(prog, word.NewTable())
	if err != nil {
		return nil, nil, fmt.Errorf("%s: compile: %w", b.Name, err)
	}
	mcfg := machine.Config{PEs: pes, Layout: Layout(), Cache: ccfg, Timing: timing}
	m := machine.New(mcfg)
	sh, err := emulator.NewShared(im, m.Memory(), pes, emulator.DefaultConfig())
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", b.Name, err)
	}
	if sink != nil {
		m.SetProbe(sink)
		sh.SetProbe(sink, m.Bus().ProbeClock)
	}
	var rec *trace.Recorder
	if record {
		rec = trace.NewRecorderHint(pes, Layout(), refHint(b.Name, scale))
	}
	cl := &emulator.Cluster{Machine: m, Shared: sh}
	for i := 0; i < pes; i++ {
		port := mem.Accessor(m.Port(i))
		if rec != nil {
			port = rec.Port(i, port)
		}
		e, err := emulator.NewEngine(sh, i, port)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		cl.Engines = append(cl.Engines, e)
		m.Attach(i, e)
	}
	res := cl.Run(0)
	if res.Failed {
		return nil, nil, fmt.Errorf("%s: program failed: %s", b.Name, res.FailReason)
	}
	if want := b.Expected(scale); res.Output != want {
		return nil, nil, fmt.Errorf("%s: wrong answer %q (want %q)", b.Name, res.Output, want)
	}
	data := &RunData{
		Bench:  b.Name,
		PEs:    pes,
		Scale:  scale,
		Result: res,
		Bus:    m.BusStats(),
		Cache:  m.CacheStats(),
	}
	var tr *trace.Trace
	if rec != nil {
		tr = rec.Trace()
	}
	return data, tr, nil
}

// ReplayConfig replays a recorded stream against a cache configuration
// and bus timing, returning the resulting statistics.
func ReplayConfig(tr *trace.Trace, ccfg cache.Config, timing bus.Timing) (bus.Stats, cache.Stats, error) {
	return ReplayConfigProbed(tr, ccfg, timing, nil)
}

// ReplayConfigProbed is ReplayConfig with a telemetry sink attached to
// the replay machine. The sink receives the memory-system event stream
// — identical, event for event, to a probed live run of the program the
// trace was recorded from under the same configuration (scheduler
// events excepted: a replay has no scheduler).
func ReplayConfigProbed(tr *trace.Trace, ccfg cache.Config, timing bus.Timing, sink probe.Sink) (bus.Stats, cache.Stats, error) {
	mcfg := machine.Config{PEs: tr.PEs, Layout: tr.Layout, Cache: ccfg, Timing: timing}
	m := machine.New(mcfg)
	if sink != nil {
		m.SetProbe(sink)
	}
	ports := make([]mem.Accessor, tr.PEs)
	for i := range ports {
		ports[i] = m.Port(i)
	}
	if err := trace.Replay(tr, ports); err != nil {
		return bus.Stats{}, cache.Stats{}, err
	}
	return m.BusStats(), m.CacheStats(), nil
}

// ReplayPacked replays a pre-decoded stream (trace.Pack) against a cache
// configuration and bus timing. Combined with a stats-only configuration
// this is the fastest replay path: the loop walks a flat word stream with
// the area class pre-resolved and never touches a data plane.
func ReplayPacked(p *trace.Packed, ccfg cache.Config, timing bus.Timing) (bus.Stats, cache.Stats, error) {
	mcfg := machine.Config{PEs: p.PEs, Layout: p.Layout, Cache: ccfg, Timing: timing}
	m := machine.New(mcfg)
	caches := make([]*cache.Cache, p.PEs)
	for i := range caches {
		caches[i] = m.Cache(i)
	}
	if err := p.Replay(caches); err != nil {
		return bus.Stats{}, cache.Stats{}, err
	}
	return m.BusStats(), m.CacheStats(), nil
}

// ReplayReader replays a serialized stream directly from its Reader in
// chunks, never materializing the reference slice — multi-gigabyte traces
// replay in constant memory. It returns the statistics plus how many
// references were replayed. A non-nil sink receives the memory-system
// event stream exactly as ReplayConfigProbed delivers it.
func ReplayReader(d *trace.Reader, ccfg cache.Config, timing bus.Timing, sink probe.Sink) (bus.Stats, cache.Stats, int, error) {
	mcfg := machine.Config{PEs: d.PEs(), Layout: d.Layout(), Cache: ccfg, Timing: timing}
	m := machine.New(mcfg)
	if sink != nil {
		m.SetProbe(sink)
	}
	ports := make([]mem.Accessor, d.PEs())
	for i := range ports {
		ports[i] = m.Port(i)
	}
	n, err := trace.ReplayStream(d, ports)
	if err != nil {
		return bus.Stats{}, cache.Stats{}, n, err
	}
	return m.BusStats(), m.CacheStats(), n, nil
}

// SweepPoint is one configuration point of a Figure 1/2 sweep.
type SweepPoint struct {
	// Param is the swept value (block words or capacity words).
	Param int
	// MissRatio over all data-accessing operations.
	MissRatio float64
	// BusCycles is total common-bus cycles.
	BusCycles uint64
	// DirectoryBits is the Figure 2 x-axis metric.
	DirectoryBits int
}

// OptVariants are the Table 4 columns in order.
var OptVariants = []struct {
	Name string
	Opts cache.Options
}{
	{"None", cache.OptionsNone()},
	{"Heap", cache.OptionsHeap()},
	{"Goal", cache.OptionsGoal()},
	{"Comm", cache.OptionsComm()},
	{"All", cache.OptionsAll()},
}

// BenchData aggregates everything measured for one benchmark.
type BenchData struct {
	Name  string
	Lines int
	Scale int

	// LiveByPEs are all-optimization live runs per cluster size
	// (Figure 3, Table 1).
	LiveByPEs map[int]*RunData

	// Refs (issued operations by area) from the PEs-sized run; identical
	// across cache configurations.
	Refs cache.Stats

	// OptBus/OptCache hold replayed statistics per Table 4 variant
	// ("None" is the paper's base configuration used by Tables 2 and 5).
	OptBus   map[string]bus.Stats
	OptCache map[string]cache.Stats

	// BlockSweep and CapSweep are the Figure 1/2 points (all opts);
	// WaySweep is the Section 4.3 associativity ablation.
	BlockSweep []SweepPoint
	CapSweep   []SweepPoint
	WaySweep   []SweepPoint

	// Width2 is the two-word-bus replay (Section 4.4), all opts.
	Width2 bus.Stats
	// Illinois is the Illinois-protocol replay (Section 3.1 comparison),
	// no optimized commands.
	Illinois bus.Stats
	// WriteThrough is the write-through baseline replay (the premise of
	// Section 3: copy-back reduces bus traffic, especially for
	// write-heavy logic programs).
	WriteThrough bus.Stats

	// AltBus holds one unoptimized replay per extra registered protocol
	// (everything beyond the paper's pim/illinois/writethrough trio,
	// which keep the dedicated fields above), in registry order. A
	// protocol registered with the cache package joins the ablation
	// table without any change here.
	AltBus []ProtocolStats
}

// ProtocolStats is one extra protocol's replay result for the
// protocol-comparison table.
type ProtocolStats struct {
	Name string
	Bus  bus.Stats
}

// altProtocols lists the registered protocols beyond the paper's three,
// in registry order. These get one unoptimized replay each (matching
// the illinois/write-through baseline configuration) so the protocol
// ablation covers the whole registry.
func altProtocols() []cache.Protocol {
	var out []cache.Protocol
	for _, p := range cache.Protocols() {
		switch p.ID() {
		case cache.ProtocolPIM, cache.ProtocolIllinois, cache.ProtocolWriteThrough:
		default:
			out = append(out, p.ID())
		}
	}
	return out
}

// Data is a full evaluation dataset.
type Data struct {
	Options Options
	Benches []*BenchData
}

// Collect runs the whole evaluation. Each benchmark's trace is recorded
// once (at Options.PEs) and replayed across configurations; a trace is
// released as soon as its last replay finishes, to bound memory.
//
// With Jobs != 1 the run is executed by the parallel evaluation engine
// (see parallel.go): live runs and replays fan out over a bounded worker
// pool, and the assembled Data is identical to the serial result.
func Collect(o Options) (*Data, error) {
	if o.PEs == 0 {
		o = mergeDefaults(o)
	}
	if par.Jobs(o.Jobs) > 1 {
		return collectParallel(o)
	}
	return collectSerial(o)
}

// selectedBenchmarks resolves the benchmark set an options value runs.
func selectedBenchmarks(o Options) []programs.Benchmark {
	pool := programs.All()
	if len(o.Benchmarks) > 0 {
		// Explicit selections may include the extra benchmarks (BUP,
		// PuzzleVec).
		pool = programs.AllWithExtras()
	}
	var sel []programs.Benchmark
	for _, b := range pool {
		if benchSelected(o, b.Name) {
			sel = append(sel, b)
		}
	}
	return sel
}

// collectSerial is the legacy single-core path (Jobs=1): one benchmark at
// a time, one configuration at a time, in a fixed order.
func collectSerial(o Options) (*Data, error) {
	pw := newProgressLog(o.Progress)
	ctx := o.ctx()
	data := &Data{Options: o}
	for _, b := range selectedBenchmarks(o) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		progress := func(format string, args ...interface{}) {
			pw.Printf(b.Name, format, args...)
		}
		scale := o.ScaleFor(b)
		bd := &BenchData{
			Name:      b.Name,
			Scale:     scale,
			Lines:     b.Lines(),
			LiveByPEs: map[int]*RunData{},
			OptBus:    map[string]bus.Stats{},
			OptCache:  map[string]cache.Stats{},
		}
		// Live PE sweep with all optimizations (Figure 3, Table 1).
		var tr *trace.Trace
		liveSpan := o.Phases.Start("live/" + b.Name)
		for _, pes := range o.PESweep {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			progress("live run on %d PEs (scale %d)", pes, scale)
			record := pes == o.PEs
			rd, t, err := RunLive(b, scale, pes, o.baseCache(cache.OptionsAll()), record)
			if err != nil {
				return nil, err
			}
			o.Metrics.Counter("bench.live.runs").Inc()
			bd.LiveByPEs[pes] = rd
			if record {
				tr = t
				bd.Refs = rd.Cache
			}
		}
		liveSpan.End()
		if tr == nil {
			return nil, fmt.Errorf("%s: PESweep %v does not include PEs=%d", b.Name, o.PESweep, o.PEs)
		}
		replaySpan := o.Phases.Start("replay/" + b.Name)
		rep := o.newReplayer(tr.Len())
		// Table 4 variants.
		for _, v := range OptVariants {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			progress("replay %s (%d refs)", v.Name, tr.Len())
			bs, cs, err := rep.Replay(tr, o.baseCache(v.Opts), bus.DefaultTiming())
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", b.Name, v.Name, err)
			}
			bd.OptBus[v.Name] = bs
			bd.OptCache[v.Name] = cs
		}
		if !o.SkipSweeps {
			// Figure 1: block sizes.
			for _, bw := range o.BlockSizes {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				progress("replay block=%d", bw)
				cfg := o.baseCache(cache.OptionsAll())
				cfg.BlockWords = bw
				bs, cs, err := rep.Replay(tr, cfg, bus.DefaultTiming())
				if err != nil {
					return nil, fmt.Errorf("%s/block%d: %w", b.Name, bw, err)
				}
				bd.BlockSweep = append(bd.BlockSweep, SweepPoint{
					Param: bw, MissRatio: cs.MissRatio(), BusCycles: bs.TotalCycles,
					DirectoryBits: cfg.DirectoryBits(),
				})
			}
			// Figure 2: capacities.
			for _, size := range o.Capacities {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				progress("replay capacity=%d", size)
				cfg := o.baseCache(cache.OptionsAll())
				cfg.SizeWords = size
				bs, cs, err := rep.Replay(tr, cfg, bus.DefaultTiming())
				if err != nil {
					return nil, fmt.Errorf("%s/size%d: %w", b.Name, size, err)
				}
				bd.CapSweep = append(bd.CapSweep, SweepPoint{
					Param: size, MissRatio: cs.MissRatio(), BusCycles: bs.TotalCycles,
					DirectoryBits: cfg.DirectoryBits(),
				})
			}
			// Associativity ablation (Section 4.3).
			for _, ways := range o.Associativities {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				progress("replay ways=%d", ways)
				cfg := o.baseCache(cache.OptionsAll())
				cfg.Ways = ways
				bs, cs, err := rep.Replay(tr, cfg, bus.DefaultTiming())
				if err != nil {
					return nil, fmt.Errorf("%s/ways%d: %w", b.Name, ways, err)
				}
				bd.WaySweep = append(bd.WaySweep, SweepPoint{
					Param: ways, MissRatio: cs.MissRatio(), BusCycles: bs.TotalCycles,
				})
			}
			// Two-word bus (Section 4.4).
			progress("replay two-word bus")
			w2, _, err := rep.Replay(tr, o.baseCache(cache.OptionsAll()),
				bus.Timing{MemCycles: 8, WidthWords: 2})
			if err != nil {
				return nil, err
			}
			bd.Width2 = w2
			// Illinois baseline (Section 3.1).
			progress("replay Illinois")
			ill := o.baseCache(cache.OptionsNone())
			ill.Protocol = cache.ProtocolIllinois
			ibs, _, err := rep.Replay(tr, ill, bus.DefaultTiming())
			if err != nil {
				return nil, err
			}
			bd.Illinois = ibs
			// Write-through baseline (Section 3 premise).
			progress("replay write-through")
			wt := o.baseCache(cache.OptionsNone())
			wt.Protocol = cache.ProtocolWriteThrough
			wbs, _, err := rep.Replay(tr, wt, bus.DefaultTiming())
			if err != nil {
				return nil, err
			}
			bd.WriteThrough = wbs
			// Extra registered protocols (moesi, dragon, adaptive, ...)
			// replay unoptimized like the baselines above.
			bd.AltBus = make([]ProtocolStats, len(altProtocols()))
			for i, ap := range altProtocols() {
				progress("replay %s", ap)
				acfg := o.baseCache(cache.OptionsNone())
				acfg.Protocol = ap
				abs, _, err := rep.Replay(tr, acfg, bus.DefaultTiming())
				if err != nil {
					return nil, fmt.Errorf("%s/%s: %w", b.Name, ap, err)
				}
				bd.AltBus[i] = ProtocolStats{Name: ap.String(), Bus: abs}
			}
		}
		replaySpan.End()
		data.Benches = append(data.Benches, bd)
	}
	return data, nil
}

func mergeDefaults(o Options) Options {
	d := DefaultOptions()
	d.Quick = o.Quick
	d.SkipSweeps = o.SkipSweeps
	d.Benchmarks = o.Benchmarks
	d.Progress = o.Progress
	d.Jobs = o.Jobs
	d.DisableBusFilters = o.DisableBusFilters
	d.WarmedSweeps = o.WarmedSweeps
	d.StatsOnly = o.StatsOnly
	d.Phases = o.Phases
	d.Metrics = o.Metrics
	d.Context = o.Context
	if o.PESweep != nil {
		d.PESweep = o.PESweep
	}
	if o.BlockSizes != nil {
		d.BlockSizes = o.BlockSizes
	}
	if o.Capacities != nil {
		d.Capacities = o.Capacities
	}
	if o.Associativities != nil {
		d.Associativities = o.Associativities
	}
	return d
}

func benchSelected(o Options, name string) bool {
	if len(o.Benchmarks) == 0 {
		return true
	}
	for _, b := range o.Benchmarks {
		if b == name {
			return true
		}
	}
	return false
}
