package bench

import (
	"fmt"
	"io"
	"sync"
)

// progressLog serializes progress output from concurrent jobs. Every line
// is rendered to a complete "label: message\n" string first and handed to
// the underlying writer in a single Write call under a mutex, so lines
// from racing jobs never interleave mid-line. A nil underlying writer
// turns every call into a no-op.
type progressLog struct {
	mu sync.Mutex
	w  io.Writer
}

func newProgressLog(w io.Writer) *progressLog {
	return &progressLog{w: w}
}

// Printf emits one labeled progress line. The label identifies the job
// (benchmark name, or benchmark/configuration in parallel runs).
func (p *progressLog) Printf(label, format string, args ...interface{}) {
	if p == nil || p.w == nil {
		return
	}
	line := label + ": " + fmt.Sprintf(format, args...) + "\n"
	p.mu.Lock()
	defer p.mu.Unlock()
	io.WriteString(p.w, line)
}
