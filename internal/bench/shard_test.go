package bench

import (
	"testing"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/synth"
	"pimcache/internal/trace"
)

func shardWorkload(pes int) *trace.Trace {
	c := synth.DefaultConfig()
	c.PEs = pes
	c.Events = 40_000
	return synth.ORParallel(c)
}

// TestReplayShardedEquivalence pins the sharding exactness argument:
// partitioning a trace by cache set index and merging per-shard
// statistics reproduces the unsharded replay bit for bit, for every
// protocol and several shard counts.
func TestReplayShardedEquivalence(t *testing.T) {
	tr := shardWorkload(8)
	for _, proto := range []cache.Protocol{
		cache.ProtocolPIM, cache.ProtocolIllinois, cache.ProtocolWriteThrough,
	} {
		ccfg := cache.DefaultConfig()
		ccfg.Options = cache.OptionsAll()
		ccfg.Protocol = proto
		wantBus, wantCache, err := ReplayConfig(tr, ccfg, bus.DefaultTiming())
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{2, 4, 8} {
			gotBus, gotCache, err := ReplayConfigSharded(tr, ccfg, bus.DefaultTiming(), shards)
			if err != nil {
				t.Fatalf("%v/%d shards: %v", proto, shards, err)
			}
			if gotBus != wantBus {
				t.Errorf("%v/%d shards: bus stats diverged:\nsharded %+v\nunsharded %+v",
					proto, shards, gotBus, wantBus)
			}
			if gotCache != wantCache {
				t.Errorf("%v/%d shards: cache stats diverged", proto, shards)
			}
		}
	}
}

// TestReplayShardedClamp: shard counts beyond the set count (or <= 1)
// must degrade gracefully to fewer shards / the unsharded path.
func TestReplayShardedClamp(t *testing.T) {
	tr := shardWorkload(2)
	ccfg := cache.DefaultConfig()
	ccfg.SizeWords = 64 // 4 sets at 4-word blocks, 4 ways
	wantBus, wantCache, err := ReplayConfig(tr, ccfg, bus.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{0, 1, 64} {
		gotBus, gotCache, err := ReplayConfigSharded(tr, ccfg, bus.DefaultTiming(), shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if gotBus != wantBus || gotCache != wantCache {
			t.Errorf("shards=%d: stats diverged from unsharded replay", shards)
		}
	}
}
