package programs

import (
	"fmt"
	"strings"
)

// PuzzleVec is the Puzzle benchmark with the board held in a KL1 vector
// instead of a list — closer to the original Baskett puzzle's arrays.
// Each placement still copies the whole board (set_vector_element is a
// functional update), but the copies are contiguous direct-write bursts
// rather than pointer-chasing list rebuilds, so the variant trades list
// traversal reads for block-friendly writes. Scale selects the board as
// in Puzzle. Extra benchmark: available via ByName/AllWithExtras.
func PuzzleVec() Benchmark {
	src := func(scale int) string {
		w, h := puzzleBoards(scale)
		cells := w * h
		var sb strings.Builder
		fmt.Fprintf(&sb, "main :- true | new_vector(%d, B), fill(B, 0), solve(B, %d, N), println(N).\n",
			cells, cells/2)
		fmt.Fprintf(&sb, "width(W) :- true | W = %d.\n", w)
		fmt.Fprintf(&sb, "cells(C) :- true | C = %d.\n", cells)
		sb.WriteString(`
fill(B, I) :- true | cells(C), fill2(I, C, B).
fill2(I, C, _) :- I >= C | true.
fill2(I, C, B) :- I < C |
    vector_element(B, I, E), E = 0, I1 := I + 1, fill2(I1, C, B).
solve(_, 0, N) :- true | N = 1.
solve(B, K, N) :- K > 0 |
    firstempty(B, 0, I),
    tryh(B, I, K, NH),
    tryv(B, I, K, NV),
    acc(NH, NV, N).
firstempty(B, I, R) :- true | vector_element(B, I, V), fe(V, B, I, R).
fe(0, _, I, R) :- true | R = I.
fe(1, B, I, R) :- true | I1 := I + 1, firstempty(B, I1, R).
tryh(B, I, K, N) :- wait(I) |
    width(W), C := I mod W, W1 := W - 1, J := I + 1,
    tryh2(C, W1, J, B, I, K, N).
tryh2(C, W1, J, B, I, K, N) :- C < W1 |
    vector_element(B, J, V), place2(V, I, J, B, K, N).
tryh2(C, W1, _, _, _, _, N) :- C >= W1 | N = 0.
tryv(B, I, K, N) :- wait(I) |
    width(W), cells(CL), J := I + W,
    tryv2(J, CL, B, I, K, N).
tryv2(J, CL, B, I, K, N) :- J < CL |
    vector_element(B, J, V), place2(V, I, J, B, K, N).
tryv2(J, CL, _, _, _, N) :- J >= CL | N = 0.
place2(0, I, J, B, K, N) :- true |
    set_vector_element(B, I, 1, B1),
    set_vector_element(B1, J, 1, B2),
    K1 := K - 1, solve(B2, K1, N).
place2(1, _, _, _, _, N) :- true | N = 0.
acc(A, B, N) :- wait(A), wait(B) | N := A + B.
`)
		return sb.String()
	}
	expected := func(scale int) string {
		w, h := puzzleBoards(scale)
		return fmt.Sprintf("%d\n", dominoTilings(w, h))
	}
	return Benchmark{
		Name:         "PuzzleVec",
		Description:  "domino packing with vector boards (contiguous copies)",
		Source:       src,
		Expected:     expected,
		DefaultScale: 5,
		SmallScale:   2,
	}
}
