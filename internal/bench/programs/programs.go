// Package programs holds the four KL1 benchmarks of the paper's Table 1 —
// Tri, Semi, Puzzle and Pascal — reconstructed in FGHC from the paper's
// structural descriptions (the original ICOT listings in Tick's TR-421
// are unavailable; see DESIGN.md). Each benchmark carries a scalable
// source generator and a Go reference implementation that computes the
// expected output, so every simulated run is checked for functional
// correctness end to end through the coherence protocol.
package programs

import (
	"fmt"
	"strings"
)

// Benchmark describes one workload.
type Benchmark struct {
	// Name as in the paper.
	Name string
	// Description of what it stresses.
	Description string
	// Source generates FGHC source at the given scale. Meaning of scale
	// differs per benchmark (see each constructor).
	Source func(scale int) string
	// Expected computes the program's correct output at the scale.
	Expected func(scale int) string
	// DefaultScale is used by the experiment harness: sized so the four
	// benchmarks run in seconds while exercising hundreds of thousands
	// of references each.
	DefaultScale int
	// SmallScale is a quick-test scale.
	SmallScale int
}

// Lines counts non-blank source lines at the benchmark's default scale
// (the paper's Table 1 "lines" column).
func (b Benchmark) Lines() int {
	n := 0
	for _, l := range strings.Split(b.Source(b.DefaultScale), "\n") {
		if strings.TrimSpace(l) != "" {
			n++
		}
	}
	return n
}

// All returns the paper's four benchmarks.
func All() []Benchmark {
	return []Benchmark{Tri(), Semi(), Puzzle(), Pascal()}
}

// ByName looks a benchmark up (case-insensitive), including the extras.
func ByName(name string) (Benchmark, bool) {
	for _, b := range AllWithExtras() {
		if strings.EqualFold(b.Name, name) {
			return b, true
		}
	}
	return Benchmark{}, false
}

// --- Tri: triangle peg solitaire -------------------------------------

// triMoves are the 36 legal jumps of 15-hole triangle solitaire (18 jump
// lines, each usable in both directions) — exactly the paper's "branch
// factor of 36 at each node".
var triMoves = [][3]int{
	{0, 1, 3}, {0, 2, 5}, {1, 3, 6}, {1, 4, 8}, {2, 4, 7}, {2, 5, 9},
	{3, 4, 5}, {3, 6, 10}, {3, 7, 12}, {4, 7, 11}, {4, 8, 13},
	{5, 8, 12}, {5, 9, 14}, {6, 7, 8}, {7, 8, 9}, {10, 11, 12},
	{11, 12, 13}, {12, 13, 14},
}

// triHoles returns the initially empty positions for a scale: scale is
// the number of pegs on the board (4..15); the rest of the 15 positions
// start empty. Fewer pegs give a shallower search tree.
func triHoles(scale int) []int {
	if scale < 2 {
		scale = 2
	}
	if scale > 15 {
		scale = 15
	}
	// Keep a contiguous cluster of pegs at the bottom rows, which keeps
	// the position solvable-ish and the tree bushy.
	var holes []int
	for p := 0; p < 15-scale; p++ {
		holes = append(holes, p)
	}
	return holes
}

// Tri builds the search benchmark: count all jump sequences that reduce
// the board to a single peg. Every node AND-parallel-spawns all 36 move
// attempts, whose counts are summed — the load-balancing stress test the
// paper discusses in Section 4.5.
func Tri() Benchmark {
	src := func(scale int) string {
		holes := triHoles(scale)
		empty := make(map[int]bool)
		for _, h := range holes {
			empty[h] = true
		}
		var board []string
		pegs := 0
		for p := 0; p < 15; p++ {
			if empty[p] {
				board = append(board, "0")
			} else {
				board = append(board, "1")
				pegs++
			}
		}
		var moves []string
		for _, m := range triMoves {
			moves = append(moves, fmt.Sprintf("m(%d,%d,%d)", m[0], m[1], m[2]))
			moves = append(moves, fmt.Sprintf("m(%d,%d,%d)", m[2], m[1], m[0]))
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "main :- true | solve([%s], %d, N), println(N).\n",
			strings.Join(board, ","), pegs)
		// The 72-entry move table is emitted as a chain of difference-list
		// clauses (mv0..mvN) so no single clause overflows the register
		// file.
		const perClause = 6
		var chunkNames []string
		for i := 0; i < len(moves); i += perClause {
			end := i + perClause
			if end > len(moves) {
				end = len(moves)
			}
			name := fmt.Sprintf("mv%d", i/perClause)
			chunkNames = append(chunkNames, name)
			fmt.Fprintf(&sb, "%s(L, T) :- true | L = [%s|T].\n",
				name, strings.Join(moves[i:end], ","))
		}
		sb.WriteString("moves(Ms) :- true | ")
		prev := "Ms"
		for i, name := range chunkNames {
			next := fmt.Sprintf("T%d", i)
			fmt.Fprintf(&sb, "%s(%s, %s), ", name, prev, next)
			prev = next
		}
		fmt.Fprintf(&sb, "%s = [].\n", prev)
		sb.WriteString(`
solve(_, 1, N) :- true | N = 1.
solve(B, P, N) :- P > 1 | moves(Ms), tryall(Ms, B, P, N).
tryall([], _, _, N) :- true | N = 0.
tryall([m(F,O,T)|Ms], B, P, N) :- true |
    getcell(F, B, VF), getcell(O, B, VO), getcell(T, B, VT),
    check(VF, VO, VT, F, O, T, B, P, C1),
    tryall(Ms, B, P, C2),
    acc(C1, C2, N).
check(1, 1, 0, F, O, T, B, P, C) :- true |
    setcell(F, B, 0, B1), setcell(O, B1, 0, B2), setcell(T, B2, 1, B3),
    P1 := P - 1, solve(B3, P1, C).
check(_, _, _, _, _, _, _, _, C) :- otherwise | C = 0.
getcell(0, [H|_], V) :- true | V = H.
getcell(I, [_|T], V) :- I > 0 | I1 := I - 1, getcell(I1, T, V).
setcell(0, [_|T], V, B) :- true | B = [V|T].
setcell(I, [H|T], V, B) :- I > 0 | I1 := I - 1, B = [H|B1], setcell(I1, T, V, B1).
acc(A, B, N) :- wait(A), wait(B) | N := A + B.
`)
		return sb.String()
	}
	expected := func(scale int) string {
		holes := triHoles(scale)
		board := 0
		pegs := 0
		for p := 0; p < 15; p++ {
			hole := false
			for _, h := range holes {
				if h == p {
					hole = true
				}
			}
			if !hole {
				board |= 1 << p
				pegs++
			}
		}
		return fmt.Sprintf("%d\n", triCount(board, pegs))
	}
	return Benchmark{
		Name:         "Tri",
		Description:  "triangle peg-solitaire search tree (branch factor 36)",
		Source:       src,
		Expected:     expected,
		DefaultScale: 8,
		SmallScale:   6,
	}
}

// triCount is the Go reference search.
func triCount(board, pegs int) int {
	if pegs == 1 {
		return 1
	}
	n := 0
	for _, m := range triMoves {
		for _, d := range [][3]int{m, {m[2], m[1], m[0]}} {
			f, o, t := d[0], d[1], d[2]
			if board&(1<<f) != 0 && board&(1<<o) != 0 && board&(1<<t) == 0 {
				n += triCount(board&^(1<<f)&^(1<<o)|1<<t, pegs-1)
			}
		}
	}
	return n
}

// --- Semi: semigroup closure ------------------------------------------

// Semi computes the closure of generators under multiplication modulo M
// (scale = M). A worklist algorithm whose membership tests scan the seen
// list: read-mostly with a small working set, matching the paper's Semi
// profile (93% reads, high LR hit ratios, tiny bus traffic).
func Semi() Benchmark {
	gens := []int{3, 5}
	src := func(scale int) string {
		var g []string
		for _, x := range gens {
			g = append(g, fmt.Sprintf("%d", x))
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "main :- true | closure([%s], [%s], %d, N), println(N).\n",
			strings.Join(g, ","), strings.Join(g, ","), scale)
		sb.WriteString(`
% closure(New, Seen, M, N): New are the elements added last round
% (New is a subset of Seen). Each round generates New x Seen products in
% AND-parallel, filters them with parallel membership scans over Seen,
% and recurses on the genuinely fresh elements until a fixpoint.
closure([], Seen, _, N) :- true | len(Seen, 0, N).
closure([E|Es], Seen, M, N) :- true |
    prodsall([E|Es], Seen, M, Ps),
    filter(Ps, Seen, [], Fresh),
    app(Fresh, Seen, Seen1),
    closure(Fresh, Seen1, M, N).
prodsall([], _, _, Ps) :- true | Ps = [].
prodsall([E|Es], Seen, M, Ps) :- true |
    prods(Seen, E, M, P1),
    prodsall(Es, Seen, M, P2),
    app(P1, P2, Ps).
prods([], _, _, Ps) :- true | Ps = [].
prods([S|T], E, M, Ps) :- integer(S), integer(E), integer(M) |
    P0 := S * E, P := P0 mod M, Ps = [P|Ps1], prods(T, E, M, Ps1).
% filter spawns one membership scan per candidate (they run in
% parallel); duplicates within the round are caught by a scan of the
% accumulating fresh list.
filter([], _, Acc, Out) :- true | Out = Acc.
filter([P|Ps], Seen, Acc, Out) :- true |
    member(P, Seen, F1),
    dedup(F1, P, Acc, F),
    addif(F, P, Acc, Acc1),
    filter(Ps, Seen, Acc1, Out).
dedup(true, _, _, F) :- true | F = true.
dedup(false, P, Acc, F) :- true | member(P, Acc, F).
member(_, [], F) :- true | F = false.
member(E, [S|T], F) :- E =:= S | F = true.
member(E, [S|T], F) :- E =\= S | member(E, T, F).
addif(true, _, Acc, A1) :- true | A1 = Acc.
addif(false, P, Acc, A1) :- true | A1 = [P|Acc].
app([], Y, Z) :- true | Z = Y.
app([H|T], Y, Z) :- true | Z = [H|Z1], app(T, Y, Z1).
len([], Acc, N) :- true | N = Acc.
len([_|T], Acc, N) :- integer(Acc) | A1 := Acc + 1, len(T, A1, N).
`)
		return sb.String()
	}
	expected := func(scale int) string {
		seen := map[int]bool{}
		work := append([]int(nil), gens...)
		for len(work) > 0 {
			e := work[0]
			work = work[1:]
			if seen[e] {
				continue
			}
			seen[e] = true
			for s := range seen {
				work = append(work, s*e%scale)
			}
			work = append(work, e*e%scale)
		}
		return fmt.Sprintf("%d\n", len(seen))
	}
	return Benchmark{
		Name:         "Semi",
		Description:  "semigroup closure under multiplication mod M (read-mostly)",
		Source:       src,
		Expected:     expected,
		DefaultScale: 256,
		SmallScale:   64,
	}
}

// --- Puzzle: domino packing --------------------------------------------

// Puzzle counts exact domino tilings of a WxH board; scale selects the
// board (see puzzleBoards). Every placement copies the board (lists), so
// the benchmark creates large dynamic structures and heavy heap traffic,
// matching the paper's Puzzle profile.
func puzzleBoards(scale int) (w, h int) {
	boards := [][2]int{{2, 2}, {2, 4}, {3, 4}, {4, 4}, {4, 5}, {4, 6}, {5, 6}}
	if scale < 0 {
		scale = 0
	}
	if scale >= len(boards) {
		scale = len(boards) - 1
	}
	return boards[scale][0], boards[scale][1]
}

// Puzzle builds the packing benchmark.
func Puzzle() Benchmark {
	src := func(scale int) string {
		w, h := puzzleBoards(scale)
		cells := w * h
		var board []string
		for i := 0; i < cells; i++ {
			board = append(board, "0")
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "main :- true | solve([%s], %d, N), println(N).\n",
			strings.Join(board, ","), cells/2)
		fmt.Fprintf(&sb, "width(W) :- true | W = %d.\n", w)
		fmt.Fprintf(&sb, "cells(C) :- true | C = %d.\n", cells)
		sb.WriteString(`
solve(_, 0, N) :- true | N = 1.
solve(B, K, N) :- K > 0 |
    firstempty(B, 0, I),
    tryh(B, I, K, NH),
    tryv(B, I, K, NV),
    acc(NH, NV, N).
firstempty([0|_], I, R) :- true | R = I.
firstempty([1|T], I, R) :- true | I1 := I + 1, firstempty(T, I1, R).
% horizontal domino at I, I+1: needs column < W-1 and cell I+1 empty.
tryh(B, I, K, N) :- wait(I) |
    width(W), C := I mod W, W1 := W - 1, J := I + 1,
    tryh2(C, W1, J, B, I, K, N).
tryh2(C, W1, J, B, I, K, N) :- C < W1 |
    getcell(J, B, V), place2(V, I, J, B, K, N).
tryh2(C, W1, _, _, _, _, N) :- C >= W1 | N = 0.
% vertical domino at I, I+W: needs row < H-1, i.e. I+W < cells.
tryv(B, I, K, N) :- wait(I) |
    width(W), cells(CL), J := I + W,
    tryv2(J, CL, B, I, K, N).
tryv2(J, CL, B, I, K, N) :- J < CL |
    getcell(J, B, V), place2(V, I, J, B, K, N).
tryv2(J, CL, _, _, _, N) :- J >= CL | N = 0.
% place both cells if the second is empty, then recurse.
place2(0, I, J, B, K, N) :- true |
    setcell(I, B, 1, B1), setcell(J, B1, 1, B2),
    K1 := K - 1, solve(B2, K1, N).
place2(1, _, _, _, _, N) :- true | N = 0.
getcell(0, [H|_], V) :- true | V = H.
getcell(I, [_|T], V) :- I > 0 | I1 := I - 1, getcell(I1, T, V).
setcell(0, [_|T], V, B) :- true | B = [V|T].
setcell(I, [H|T], V, B) :- I > 0 | I1 := I - 1, B = [H|B1], setcell(I1, T, V, B1).
acc(A, B, N) :- wait(A), wait(B) | N := A + B.
`)
		return sb.String()
	}
	expected := func(scale int) string {
		w, h := puzzleBoards(scale)
		return fmt.Sprintf("%d\n", dominoTilings(w, h))
	}
	return Benchmark{
		Name:         "Puzzle",
		Description:  "domino packing search with full board copies (heap-heavy)",
		Source:       src,
		Expected:     expected,
		DefaultScale: 5,
		SmallScale:   2,
	}
}

// dominoTilings is the Go reference counter.
func dominoTilings(w, h int) int {
	cells := w * h
	if cells%2 != 0 {
		return 0
	}
	var rec func(board uint64, left int) int
	rec = func(board uint64, left int) int {
		if left == 0 {
			return 1
		}
		i := 0
		for board&(1<<i) != 0 {
			i++
		}
		n := 0
		if i%w < w-1 && board&(1<<(i+1)) == 0 {
			n += rec(board|1<<i|1<<(i+1), left-1)
		}
		if i+w < cells && board&(1<<(i+w)) == 0 {
			n += rec(board|1<<i|1<<(i+w), left-1)
		}
		return n
	}
	return rec(0, cells/2)
}

// --- Pascal: binomial pipeline ------------------------------------------

// pascalRows is the depth of each triangle pipeline (the sum of the last
// row, 2^32, stays far inside the 56-bit integer payload even summed over
// many pipelines).
const pascalRows = 32

// Pascal computes rows of Pascal's triangle as chains of stream
// processes — each row is produced incrementally and consumed by the next
// stage before it is complete, giving the suspension-heavy stream
// AND-parallel profile of the paper's Pascal. Scale is the number of
// independent 32-row pipelines; the answer is scale * 2^32.
func Pascal() Benchmark {
	src := func(scale int) string {
		var sb strings.Builder
		fmt.Fprintf(&sb, "main :- true | spawnk(%d, 0, T), println(T).\n", scale)
		fmt.Fprintf(&sb, `
spawnk(0, Acc, T) :- true | T = Acc.
spawnk(K, Acc, T) :- K > 0 |
    pascal(%d, [1], Row), sum(Row, 0, S),
    acc(Acc, S, A1), K1 := K - 1, spawnk(K1, A1, T).
pascal(0, Row, Out) :- true | Out = Row.
pascal(N, Row, Out) :- N > 0 |
    nextrow(Row, Row1), N1 := N - 1, pascal(N1, Row1, Out).
nextrow(Row, Out) :- true | Out = [1|T], pairs(Row, T).
pairs([_], T) :- true | T = [1].
pairs([A,B|R], T) :- true | S := A + B, T = [S|T1], pairs([B|R], T1).
sum([], Acc, S) :- true | S = Acc.
sum([H|T], Acc, S) :- true | A1 := Acc + H, sum(T, A1, S).
acc(A, B, C) :- wait(A), wait(B) | C := A + B.
`, pascalRows)
		return sb.String()
	}
	expected := func(scale int) string {
		return fmt.Sprintf("%d\n", uint64(scale)<<pascalRows)
	}
	return Benchmark{
		Name:         "Pascal",
		Description:  "Pascal-triangle stream pipelines (suspension-heavy)",
		Source:       src,
		Expected:     expected,
		DefaultScale: 48,
		SmallScale:   3,
	}
}
