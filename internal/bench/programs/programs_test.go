package programs

import (
	"testing"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/kl1/emulator"
	"pimcache/internal/machine"
	"pimcache/internal/mem"
)

func benchMachineConfig(pes int) machine.Config {
	return machine.Config{
		PEs: pes,
		Layout: mem.Layout{
			InstWords: 32 << 10,
			HeapWords: 4 << 20,
			GoalWords: 256 << 10,
			SuspWords: 64 << 10,
			CommWords: 8 << 10,
		},
		Cache: cache.Config{
			SizeWords: 4 << 10, BlockWords: 4, Ways: 4, LockEntries: 4,
			Options:  cache.OptionsAll(),
			Protocol: cache.ProtocolPIM,
			VerifyDW: true,
		},
		Timing: bus.DefaultTiming(),
	}
}

// TestBenchmarksSmallScale runs every benchmark at its small scale on 1
// and 4 PEs and checks the output against the Go reference.
func TestBenchmarksSmallScale(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			want := b.Expected(b.SmallScale)
			for _, pes := range []int{1, 4} {
				_, res, err := emulator.RunSource(b.Source(b.SmallScale),
					benchMachineConfig(pes), emulator.DefaultConfig(), 200_000_000)
				if err != nil {
					t.Fatalf("%d PEs: %v", pes, err)
				}
				if res.Failed {
					t.Fatalf("%d PEs: failed: %s", pes, res.FailReason)
				}
				if res.HitStepLimit {
					t.Fatalf("%d PEs: step limit (%d steps)", pes, res.Steps)
				}
				if res.Output != want {
					t.Errorf("%d PEs: output %q, want %q", pes, res.Output, want)
				}
				if res.Floating != 0 {
					t.Errorf("%d PEs: %d floating goals", pes, res.Floating)
				}
			}
		})
	}
}

func TestBenchmarkMetadata(t *testing.T) {
	all := All()
	if len(all) != 4 {
		t.Fatalf("expected 4 benchmarks, got %d", len(all))
	}
	names := []string{"Tri", "Semi", "Puzzle", "Pascal"}
	for i, b := range all {
		if b.Name != names[i] {
			t.Errorf("benchmark %d = %s, want %s", i, b.Name, names[i])
		}
		if b.Lines() < 8 {
			t.Errorf("%s: implausibly few source lines (%d)", b.Name, b.Lines())
		}
		if b.Expected(b.SmallScale) == "" {
			t.Errorf("%s: empty expected output", b.Name)
		}
	}
	if _, ok := ByName("tri"); !ok {
		t.Error("ByName case-insensitive lookup failed")
	}
	if _, ok := ByName("nosuch"); ok {
		t.Error("phantom benchmark")
	}
}

func TestTriReferenceKnownValue(t *testing.T) {
	// Full 15-peg board with the top hole has 29760 completion sequences
	// ending at one peg — the classic triangle-solitaire count.
	full := 0
	for p := 1; p < 15; p++ {
		full |= 1 << p
	}
	if got := triCount(full, 14); got != 29760 {
		t.Errorf("triCount(full board) = %d, want 29760", got)
	}
}

func TestPuzzleReferenceKnownValues(t *testing.T) {
	// Known domino tiling counts.
	cases := map[[2]int]int{
		{2, 2}: 2, {2, 3}: 3, {2, 4}: 5, {3, 4}: 11, {4, 4}: 36, {4, 5}: 95, {4, 6}: 281,
	}
	for wh, want := range cases {
		if got := dominoTilings(wh[0], wh[1]); got != want {
			t.Errorf("dominoTilings(%d,%d) = %d, want %d", wh[0], wh[1], got, want)
		}
	}
}

func TestBUPSmallScale(t *testing.T) {
	b, ok := ByName("BUP")
	if !ok {
		t.Fatal("BUP missing")
	}
	want := b.Expected(b.SmallScale)
	for _, pes := range []int{1, 4} {
		_, res, err := emulator.RunSource(b.Source(b.SmallScale),
			benchMachineConfig(pes), emulator.DefaultConfig(), 400_000_000)
		if err != nil {
			t.Fatalf("%d PEs: %v", pes, err)
		}
		if res.Failed {
			t.Fatalf("%d PEs: %s", pes, res.FailReason)
		}
		if res.Output != want {
			t.Errorf("%d PEs: output %q, want %q", pes, res.Output, want)
		}
	}
}

func TestPuzzleVecSmallScale(t *testing.T) {
	b, ok := ByName("PuzzleVec")
	if !ok {
		t.Fatal("PuzzleVec missing")
	}
	want := b.Expected(b.SmallScale)
	for _, pes := range []int{1, 4} {
		_, res, err := emulator.RunSource(b.Source(b.SmallScale),
			benchMachineConfig(pes), emulator.DefaultConfig(), 400_000_000)
		if err != nil {
			t.Fatalf("%d PEs: %v", pes, err)
		}
		if res.Failed {
			t.Fatalf("%d PEs: %s", pes, res.FailReason)
		}
		if res.Output != want {
			t.Errorf("%d PEs: output %q, want %q", pes, res.Output, want)
		}
	}
}

func TestBUPReferenceKnownValues(t *testing.T) {
	// With the pure S -> S S grammar, the tree count over a^n is the
	// Catalan number C(n-1); verify the reference on that simpler
	// grammar before trusting it for the richer one.
	rules := [][3]int{{1, 1, 1}}
	terms := map[string][]int{"a": {1}}
	catalan := []int64{1, 1, 2, 5, 14, 42, 132}
	for n := 1; n <= 7; n++ {
		in := make([]string, n)
		for i := range in {
			in[i] = "a"
		}
		if got := cykCount(rules, terms, in, 1); got != catalan[n-1] {
			t.Errorf("catalan(%d): got %d, want %d", n-1, got, catalan[n-1])
		}
	}
}

func TestAllWithExtras(t *testing.T) {
	if len(All()) != 4 {
		t.Error("All must stay the paper's four benchmarks")
	}
	extras := AllWithExtras()
	if len(extras) != 6 || extras[4].Name != "BUP" || extras[5].Name != "PuzzleVec" {
		t.Errorf("extras %v", extras)
	}
}
