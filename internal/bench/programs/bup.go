package programs

import (
	"fmt"
	"strings"
)

// BUP is a fifth, extra benchmark after the bottom-up parser the paper's
// earlier study used ("over 80% of all shared memory for the BUP
// benchmark", Section 4.3, citing Matsumoto's TR-327). It is a CYK chart
// parser in FGHC over a small ambiguous CNF grammar: the chart is built
// row by row (span length 1..n), each cell combining pairs of shorter
// spans under the rule table — long list scans over a growing shared
// structure, the heap-dominant read-heavy profile of parsing workloads.
//
// Scale is the input length n (the string a^n); the answer is the number
// of parse trees of the start symbol over the whole input, checked
// against a native CYK counter.
//
// BUP is not part of the paper's four-benchmark tables (All()); it is
// available through ByName and AllWithExtras.
func BUP() Benchmark {
	// Grammar in CNF over integer-coded symbols.
	// Nonterminals: 1 = S (start), 2 = A. Terminal: the token 'a'.
	// Productions: S -> S S | A S ; A -> S S. Terminals: S -> a, A -> a.
	rules := [][3]int{{1, 1, 1}, {1, 2, 1}, {2, 1, 1}}
	termCells := map[string][]int{"a": {1, 2}} // token -> nonterminals
	src := func(scale int) string {
		if scale < 2 {
			scale = 2
		}
		var toks []string
		for i := 0; i < scale; i++ {
			toks = append(toks, "a")
		}
		var rs []string
		for _, r := range rules {
			rs = append(rs, fmt.Sprintf("r(%d,%d,%d)", r[0], r[1], r[2]))
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "main :- true | parse([%s], %d).\n", strings.Join(toks, ","), scale)
		fmt.Fprintf(&sb, "rules(Rs) :- true | Rs = [%s].\n", strings.Join(rs, ","))
		sb.WriteString(`
parse(Ws, N) :- true | base(Ws, Row1), grow(1, N, [Row1], Rows), answer(Rows, N).
% Row 1: terminal cells.
base([], R) :- true | R = [].
base([W|Ws], R) :- true | tcell(W, C), R = [C|R1], base(Ws, R1).
tcell(a, C) :- true | C = [p(1,1),p(2,1)].
tcell(_, C) :- otherwise | C = [].
% grow builds rows for span lengths 2..N; Rows holds rows 1..L in order.
grow(N, N, Rows, Out) :- true | Out = Rows.
grow(L, N, Rows, Out) :- L < N |
    L1 := L + 1, Last := N - L1,
    mkrow(0, Last, L1, Rows, Row),
    app(Rows, [Row], Rows1),
    grow(L1, N, Rows1, Out).
% mkrow fills the cells of the row for span length L.
mkrow(I, Last, _, _, Row) :- I > Last | Row = [].
mkrow(I, Last, L, Rows, Row) :- I =< Last |
    cellv(1, L, I, Rows, [], C),
    Row = [C|Row1],
    I1 := I + 1,
    mkrow(I1, Last, L, Rows, Row1).
% cellv combines split points K = 1..L-1.
cellv(K, L, _, _, Acc, C) :- K >= L | C = Acc.
cellv(K, L, I, Rows, Acc, C) :- K < L |
    K1 := K - 1, nth(K1, Rows, RowL),
    nth(I, RowL, Left),
    KR := L - K, KR1 := KR - 1, nth(KR1, Rows, RowR),
    IR := I + K, nth(IR, RowR, Right),
    pairs(Left, Right, Acc, Acc1),
    KN := K + 1,
    cellv(KN, L, I, Rows, Acc1, C).
% pairs crosses the left and right cell entries under the rule table.
pairs([], _, Acc, Out) :- true | Out = Acc.
pairs([p(B,CB)|Ls], Right, Acc, Out) :- true |
    pairs1(Right, B, CB, Acc, Acc1),
    pairs(Ls, Right, Acc1, Out).
pairs1([], _, _, Acc, Out) :- true | Out = Acc.
pairs1([p(C2,CC)|Rs], B, CB, Acc, Out) :- true |
    rules(Rules),
    scan(Rules, B, C2, CB, CC, Acc, Acc1),
    pairs1(Rs, B, CB, Acc1, Out).
scan([], _, _, _, _, Acc, Out) :- true | Out = Acc.
scan([r(A,B1,C1)|Rs], B, C, CB, CC, Acc, Out) :- B1 =:= B, C1 =:= C |
    Add := CB * CC, bump(A, Add, Acc, Acc1),
    scan(Rs, B, C, CB, CC, Acc1, Out).
scan([_|Rs], B, C, CB, CC, Acc, Out) :- otherwise |
    scan(Rs, B, C, CB, CC, Acc, Out).
% bump adds Add to nonterminal A's count in the association list.
bump(A, Add, [], Out) :- true | Out = [p(A, Add)].
bump(A, Add, [p(A1,C1)|T], Out) :- A1 =:= A |
    C2 := C1 + Add, Out = [p(A,C2)|T].
bump(A, Add, [p(A1,C1)|T], Out) :- A1 =\= A |
    Out = [p(A1,C1)|T1], bump(A, Add, T, T1).
% answer: the start symbol's count in the full-span cell.
answer(Rows, N) :- true |
    N1 := N - 1, nth(N1, Rows, RowN), nth(0, RowN, Cell),
    lookup(1, Cell, Ans), println(Ans).
lookup(_, [], Ans) :- true | Ans = 0.
lookup(A, [p(A1,C)|_], Ans) :- A1 =:= A | Ans = C.
lookup(A, [p(A1,_)|T], Ans) :- A1 =\= A | lookup(A, T, Ans).
nth(0, [H|_], X) :- true | X = H.
nth(I, [_|T], X) :- I > 0 | I1 := I - 1, nth(I1, T, X).
app([], Y, Z) :- true | Z = Y.
app([H|T], Y, Z) :- true | Z = [H|Z1], app(T, Y, Z1).
`)
		return sb.String()
	}
	expected := func(scale int) string {
		if scale < 2 {
			scale = 2
		}
		toks := make([]string, scale)
		for i := range toks {
			toks[i] = "a"
		}
		return fmt.Sprintf("%d\n", cykCount(rules, termCells, toks, 1))
	}
	return Benchmark{
		Name:         "BUP",
		Description:  "bottom-up CYK chart parser over an ambiguous grammar (heap-dominant)",
		Source:       src,
		Expected:     expected,
		DefaultScale: 14,
		SmallScale:   6,
	}
}

// cykCount is the native reference: the number of parse trees of `start`
// spanning the whole input under the CNF grammar.
func cykCount(rules [][3]int, terms map[string][]int, input []string, start int) int64 {
	n := len(input)
	// chart[l][i] maps nonterminal -> tree count for input[i:i+l].
	chart := make([][]map[int]int64, n+1)
	for l := 1; l <= n; l++ {
		chart[l] = make([]map[int]int64, n)
		for i := 0; i+l <= n; i++ {
			chart[l][i] = map[int]int64{}
		}
	}
	for i, w := range input {
		for _, nt := range terms[w] {
			chart[1][i][nt]++
		}
	}
	for l := 2; l <= n; l++ {
		for i := 0; i+l <= n; i++ {
			for k := 1; k < l; k++ {
				for b, cb := range chart[k][i] {
					for c, cc := range chart[l-k][i+k] {
						for _, r := range rules {
							if r[1] == b && r[2] == c {
								chart[l][i][r[0]] += cb * cc
							}
						}
					}
				}
			}
		}
	}
	return chart[n][0][start]
}

// AllWithExtras returns the paper's four benchmarks plus the extras
// (BUP, PuzzleVec).
func AllWithExtras() []Benchmark {
	return append(All(), BUP(), PuzzleVec())
}
