package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/kl1/word"
	"pimcache/internal/machine"
	"pimcache/internal/probe"
	"pimcache/internal/trace"

	"pimcache/internal/bench/programs"
)

// TestProbeDeterminism is the telemetry correctness oracle: for every
// benchmark program and PE count, (a) two identical live runs emit
// identical full event streams, scheduler events included, and (b) a
// live run and a replay of its recorded trace emit identical
// memory-system event streams. Any divergence means an emit site
// depends on something other than the reference stream and the cache
// configuration.
func TestProbeDeterminism(t *testing.T) {
	pesList := []int{1, 4, 8}
	if testing.Short() {
		pesList = []int{1, 8}
	}
	ccfg := BaseCache(cache.OptionsAll())
	timing := bus.DefaultTiming()
	for _, b := range programs.All() {
		b := b
		scale, ok := equivScales[b.Name]
		if !ok {
			scale = b.SmallScale
		}
		if testing.Short() && b.Name == "Semi" {
			continue // the largest stream; the other three cover every op
		}
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			for _, pes := range pesList {
				buf1, buf2 := &probe.Buffer{}, &probe.Buffer{}
				_, tr, err := RunLiveProbed(b, scale, pes, ccfg, timing, true, buf1)
				if err != nil {
					t.Fatalf("probed live run at %d PEs: %v", pes, err)
				}
				if _, _, err := RunLiveProbed(b, scale, pes, ccfg, timing, false, buf2); err != nil {
					t.Fatalf("second probed live run at %d PEs: %v", pes, err)
				}
				if len(buf1.Events) == 0 {
					t.Fatalf("%d PEs: live run emitted no events", pes)
				}
				if !eventsEqual(buf1.Events, buf2.Events) {
					t.Errorf("%d PEs: two identical live runs emitted different streams (%d vs %d events)",
						pes, len(buf1.Events), len(buf2.Events))
					continue
				}
				replay := &probe.Buffer{}
				if _, _, err := ReplayConfigProbed(tr, ccfg, timing, replay); err != nil {
					t.Fatalf("probed replay at %d PEs: %v", pes, err)
				}
				liveMem := buf1.MemoryEvents()
				if !eventsEqual(liveMem, replay.Events) {
					t.Errorf("%d PEs: live memory events (%d) diverge from replay events (%d)",
						pes, len(liveMem), len(replay.Events))
					for i := range liveMem {
						if i >= len(replay.Events) || liveMem[i] != replay.Events[i] {
							t.Errorf("first divergence at event %d:\nlive:   %+v\nreplay: %+v",
								i, liveMem[i], eventAt(replay.Events, i))
							break
						}
					}
				}
			}
		})
	}
}

func eventsEqual(a, b []probe.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func eventAt(es []probe.Event, i int) any {
	if i < len(es) {
		return es[i]
	}
	return "(stream ended)"
}

// TestPerfettoByteIdentity pins the export-level acceptance criterion:
// Tri at 8 PEs produces a Perfetto JSON that is byte-identical across
// repeated live runs, and — restricted to memory-system events —
// byte-identical between live execution and trace replay.
func TestPerfettoByteIdentity(t *testing.T) {
	const pes = 8
	b, _ := programs.ByName("Tri")
	scale := equivScales["Tri"]
	ccfg := BaseCache(cache.OptionsAll())
	timing := bus.DefaultTiming()

	export := func(record bool, memOnly bool) ([]byte, []byte) {
		var buf bytes.Buffer
		pf := probe.NewPerfetto(&buf, pes)
		var sink probe.Sink = pf
		if memOnly {
			sink = probe.MemoryOnly(pf)
		}
		_, tr, err := RunLiveProbed(b, scale, pes, ccfg, timing, record, sink)
		if err != nil {
			t.Fatal(err)
		}
		if err := pf.Close(); err != nil {
			t.Fatal(err)
		}
		var trBytes []byte
		if record {
			var tb bytes.Buffer
			if err := tr.Write(&tb); err != nil {
				t.Fatal(err)
			}
			trBytes = tb.Bytes()
		}
		return buf.Bytes(), trBytes
	}

	// Full export (scheduler events included): identical across runs.
	full1, trBytes := export(true, false)
	full2, _ := export(false, false)
	if !bytes.Equal(full1, full2) {
		t.Error("repeated live runs exported different Perfetto files")
	}
	if !json.Valid(full1) {
		t.Error("live export is not valid JSON")
	}

	// Memory-only export: identical between live and replay.
	live, _ := export(false, true)
	tr, err := trace.Read(bytes.NewReader(trBytes))
	if err != nil {
		t.Fatal(err)
	}
	var rbuf bytes.Buffer
	pf := probe.NewPerfetto(&rbuf, pes)
	if _, _, err := ReplayConfigProbed(tr, ccfg, timing, pf); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live, rbuf.Bytes()) {
		t.Errorf("live memory-only export (%d bytes) differs from replay export (%d bytes)",
			len(live), rbuf.Len())
	}
	if !json.Valid(rbuf.Bytes()) {
		t.Error("replay export is not valid JSON")
	}
}

// TestProbeDisabledZeroAlloc guards the zero-overhead-when-nil
// contract on the replay hot path: with no sink attached, steady-state
// reads, writes and lock traffic — hits and misses, private and
// shared — allocate nothing.
func TestProbeDisabledZeroAlloc(t *testing.T) {
	m := machine.New(machine.Config{
		PEs:    2,
		Layout: Layout(),
		Cache:  BaseCache(cache.OptionsAll()),
		Timing: bus.DefaultTiming(),
	})
	p0, p1 := m.Port(0), m.Port(1)
	heap := Layout().Bounds().HeapBase
	// Warm both caches and the lock directory.
	p0.Write(heap, word.Word(1))
	_ = p1.Read(heap)

	var addr word.Addr
	if avg := testing.AllocsPerRun(500, func() {
		// Ping-pong writes force c2c transfers and invalidations; the
		// stride forces misses and evictions as the set fills.
		p0.Write(heap+addr, word.Word(2))
		_ = p1.Read(heap + addr)
		if w, ok := p1.LockRead(heap + addr); ok {
			p1.UnlockWrite(heap+addr, w)
		}
		addr += 4
	}); avg != 0 {
		t.Errorf("disabled-probe hot path allocates %.2f per op, want 0", avg)
	}
}
