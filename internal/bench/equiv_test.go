package bench

import (
	"testing"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/trace"

	"pimcache/internal/bench/programs"
)

// equivScales are the smallest workloads that still touch every op and
// both lock outcomes; the equivalence oracle cares about exactness, not
// statistics.
var equivScales = map[string]int{"Tri": 6, "Semi": 64, "Puzzle": 2, "Pascal": 3}

// filterCfg returns the base cache config with the bus filters toggled.
func filterCfg(opts cache.Options, disable bool) cache.Config {
	cfg := BaseCache(opts)
	cfg.DisableBusFilters = disable
	return cfg
}

// TestFilterEquivalence is the presence-filter correctness oracle: for
// every benchmark program, live runs at 1–16 PEs and trace replays under
// all three protocols must produce bit-identical bus.Stats and
// cache.Stats with the filters on and off. Any divergence means a filter
// skipped a snoop or lock poll that had an observable effect.
func TestFilterEquivalence(t *testing.T) {
	pesList := []int{1, 2, 4, 8, 16}
	if testing.Short() {
		pesList = []int{1, 4, 16}
	}
	for _, b := range programs.All() {
		b := b
		scale, ok := equivScales[b.Name]
		if !ok {
			scale = b.SmallScale
		}
		if testing.Short() && b.Name == "Semi" {
			continue // the largest stream; the other three cover every op
		}
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			// Live runs: the machine drives caches directly, exercising
			// install/evict/purge/snoop notification on every path.
			recorded := -1
			var trFiltered *trace.Trace
			for _, pes := range pesList {
				record := trFiltered == nil && pes >= 4
				on, trOn, err := RunLive(b, scale, pes, filterCfg(cache.OptionsAll(), false), record)
				if err != nil {
					t.Fatalf("filtered live run at %d PEs: %v", pes, err)
				}
				off, _, err := RunLive(b, scale, pes, filterCfg(cache.OptionsAll(), true), false)
				if err != nil {
					t.Fatalf("unfiltered live run at %d PEs: %v", pes, err)
				}
				if on.Bus != off.Bus {
					t.Errorf("%d PEs: bus stats diverge\nfiltered:   %+v\nunfiltered: %+v", pes, on.Bus, off.Bus)
				}
				if on.Cache != off.Cache {
					t.Errorf("%d PEs: cache stats diverge\nfiltered:   %+v\nunfiltered: %+v", pes, on.Cache, off.Cache)
				}
				if record {
					trFiltered = trOn
					recorded = pes
				}
			}
			if trFiltered == nil {
				t.Fatal("no trace recorded")
			}
			// Replays: the same stream under every protocol, filters
			// toggled via the cache config only.
			protocols := []struct {
				name  string
				opts  cache.Options
				proto cache.Protocol
			}{
				{"pim", cache.OptionsAll(), cache.ProtocolPIM},
				{"illinois", cache.OptionsNone(), cache.ProtocolIllinois},
				{"writethrough", cache.OptionsNone(), cache.ProtocolWriteThrough},
			}
			for _, p := range protocols {
				cfgOn := filterCfg(p.opts, false)
				cfgOn.Protocol = p.proto
				cfgOff := filterCfg(p.opts, true)
				cfgOff.Protocol = p.proto
				bsOn, csOn, err := ReplayConfig(trFiltered, cfgOn, bus.DefaultTiming())
				if err != nil {
					t.Fatalf("%s filtered replay (%d PEs): %v", p.name, recorded, err)
				}
				bsOff, csOff, err := ReplayConfig(trFiltered, cfgOff, bus.DefaultTiming())
				if err != nil {
					t.Fatalf("%s unfiltered replay: %v", p.name, err)
				}
				if bsOn != bsOff {
					t.Errorf("%s: bus stats diverge\nfiltered:   %+v\nunfiltered: %+v", p.name, bsOn, bsOff)
				}
				if csOn != csOff {
					t.Errorf("%s: cache stats diverge\nfiltered:   %+v\nunfiltered: %+v", p.name, csOn, csOff)
				}
			}
		})
	}
}

// TestFilterEquivalenceRenderAll runs a reduced but structurally complete
// evaluation — live PE sweep, optimization variants, block/capacity/way
// sweeps, two-word bus, Illinois and write-through — with the filters on
// and off, and requires byte-identical rendered output.
func TestFilterEquivalenceRenderAll(t *testing.T) {
	old := quickScales["Puzzle"]
	quickScales["Puzzle"] = 2
	defer func() { quickScales["Puzzle"] = old }()

	o := Options{
		Quick:           true,
		PEs:             4,
		PESweep:         []int{1, 2, 4},
		BlockSizes:      []int{2, 4},
		Capacities:      []int{1 << 10, 4 << 10},
		Associativities: []int{1, 4},
		Benchmarks:      []string{"Puzzle"},
		Jobs:            1,
	}
	filtered, err := Collect(o)
	if err != nil {
		t.Fatal(err)
	}
	o.DisableBusFilters = true
	unfiltered, err := Collect(o)
	if err != nil {
		t.Fatal(err)
	}
	got, want := RenderAll(filtered), RenderAll(unfiltered)
	if len(want) == 0 {
		t.Fatal("rendered evaluation is empty")
	}
	// The Options line is not part of the rendered tables, so the two
	// runs must agree byte-for-byte.
	if got != want {
		t.Errorf("filtered evaluation differs from unfiltered\n--- filtered ---\n%s\n--- unfiltered ---\n%s", got, want)
	}
}
