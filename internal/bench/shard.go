package bench

import (
	"fmt"
	"sync"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/kl1/word"
	"pimcache/internal/trace"
)

// ReplayConfigSharded replays tr under ccfg/timing with the reference
// stream partitioned across up to shards concurrent worker machines,
// merging statistics deterministically. It returns the same bus and
// cache statistics, bit for bit, as ReplayConfig — the sharded
// equivalence test pins this — while using multiple host cores for one
// replay.
//
// Why partitioning is exact: references are assigned to shards by cache
// set index, so two references land in the same shard whenever they can
// interact. Every coherence interaction is block-local (snoop fetches,
// invalidations, lock checks all target one block, and a block maps to
// one set); LRU replacement compares only lines within one set, and the
// per-cache LRU clock preserves each set's touch order under any
// set-preserving partition; word locks live at addresses inside their
// block. Statistics are sums of per-event counters, so per-shard totals
// add back to the unsharded totals exactly. Two global couplings exist
// and neither affects results: the bus's total-lock-count fast path only
// short-circuits polls whose outcome is address-local, and the probe
// clock — which is why sharded replays do not support probes (cycle
// stamps would interleave differently; use ReplayConfigProbed for event
// streams).
//
// Shard count is clamped to the configuration's set count (fewer sets
// than shards would leave workers idle) and to the trace's PE-count-
// independent geometry; shards <= 1 falls back to ReplayConfig.
func ReplayConfigSharded(tr *trace.Trace, ccfg cache.Config, timing bus.Timing, shards int) (bus.Stats, cache.Stats, error) {
	if err := ccfg.Validate(); err != nil {
		return bus.Stats{}, cache.Stats{}, err
	}
	if sets := ccfg.Sets(); shards > sets {
		shards = sets
	}
	if shards <= 1 {
		return ReplayConfig(tr, ccfg, timing)
	}
	parts := partitionBySet(tr, ccfg, shards)

	type shardResult struct {
		bus   bus.Stats
		cache cache.Stats
		err   error
	}
	results := make([]shardResult, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			bs, cs, err := ReplayConfig(parts[s], ccfg, timing)
			results[s] = shardResult{bus: bs, cache: cs, err: err}
		}(s)
	}
	wg.Wait()

	var mergedBus bus.Stats
	var mergedCache cache.Stats
	for s := range results {
		if results[s].err != nil {
			return bus.Stats{}, cache.Stats{}, fmt.Errorf("shard %d: %w", s, results[s].err)
		}
		mergedBus.Add(&results[s].bus)
		mergedCache.Add(&results[s].cache)
	}
	return mergedBus, mergedCache, nil
}

// partitionBySet splits tr into shards sub-traces by cache set index,
// preserving reference order within each shard. Two passes: count, then
// fill exactly-sized slices (no append growth on multi-hundred-megabyte
// streams).
func partitionBySet(tr *trace.Trace, ccfg cache.Config, shards int) []*trace.Trace {
	blockW := word.Addr(ccfg.BlockWords)
	setMask := word.Addr(ccfg.Sets() - 1)
	shardOf := func(a word.Addr) int {
		return int(((a / blockW) & setMask) % word.Addr(shards))
	}
	counts := make([]int, shards)
	for i := range tr.Refs {
		counts[shardOf(tr.Refs[i].Addr)]++
	}
	parts := make([]*trace.Trace, shards)
	for s := range parts {
		parts[s] = &trace.Trace{
			PEs:    tr.PEs,
			Layout: tr.Layout,
			Refs:   make([]trace.Ref, 0, counts[s]),
		}
	}
	for i := range tr.Refs {
		r := &tr.Refs[i]
		s := shardOf(r.Addr)
		parts[s].Refs = append(parts[s].Refs, *r)
	}
	return parts
}
