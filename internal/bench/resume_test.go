package bench

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/chaos"
	"pimcache/internal/machine"
	"pimcache/internal/safeio"
	"pimcache/internal/synth"
	"pimcache/internal/trace"
)

// resumeWorkload is a lock-heavy multi-PE stream serialized in the
// current (checksummed) format.
func resumeWorkload(t testing.TB, events int) (*trace.Trace, []byte) {
	t.Helper()
	c := synth.DefaultConfig()
	c.PEs = 4
	c.Events = events
	tr := synth.ORParallel(c)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return tr, buf.Bytes()
}

func newStreamReader(t testing.TB, raw []byte) *trace.Reader {
	t.Helper()
	d, err := trace.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// resumeConfigs are the protocol × stats-only points the resume oracle
// and chaos matrix cover.
func resumeConfigs() []cache.Config {
	var cfgs []cache.Config
	for _, proto := range []cache.Protocol{
		cache.ProtocolPIM, cache.ProtocolIllinois, cache.ProtocolWriteThrough,
	} {
		for _, statsOnly := range []bool{false, true} {
			ccfg := cache.DefaultConfig()
			ccfg.Options = cache.OptionsAll()
			ccfg.Protocol = proto
			ccfg.StatsOnly = statsOnly
			cfgs = append(cfgs, ccfg)
		}
	}
	return cfgs
}

func configLabel(ccfg cache.Config) string {
	return fmt.Sprintf("%v/statsOnly=%v", ccfg.Protocol, ccfg.StatsOnly)
}

// TestResumeBitIdentical is the tentpole oracle: a replay killed at a
// checkpoint and resumed from the durable snapshot finishes with
// bus and cache statistics bit-identical to the uninterrupted run —
// across all three protocols, with and without the data plane.
func TestResumeBitIdentical(t *testing.T) {
	_, raw := resumeWorkload(t, 30_000)
	timing := bus.DefaultTiming()
	for _, ccfg := range resumeConfigs() {
		ccfg := ccfg
		t.Run(configLabel(ccfg), func(t *testing.T) {
			ref, err := ReplayReaderResumable(context.Background(), newStreamReader(t, raw),
				ccfg, timing, nil, CheckpointOptions{}, nil)
			if err != nil {
				t.Fatal(err)
			}

			// Interrupted run: checkpoint every 7000 refs to a real file,
			// die right after the second checkpoint.
			ckpt := filepath.Join(t.TempDir(), "resume.ckpt")
			kill := chaos.KillAfter(2)
			out, err := ReplayReaderResumable(context.Background(), newStreamReader(t, raw),
				ccfg, timing, nil,
				CheckpointOptions{Every: 7000, Path: ckpt, OnCheckpoint: func(uint64) error { return kill() }},
				nil)
			if !errors.Is(err, chaos.ErrKilled) {
				t.Fatalf("interrupted run: err=%v, want ErrKilled (outcome %+v)", err, out)
			}

			snap, err := machine.ReadSnapshotFile(ckpt)
			if err != nil {
				t.Fatalf("reading checkpoint: %v", err)
			}
			// Checkpoints land on chunk boundaries at or after the cadence:
			// two checkpoints of Every=7000 over 4096-ref chunks → 16384.
			if snap.RefsReplayed <= 7000 || uint64(snap.RefsReplayed) >= ref.Refs {
				t.Fatalf("checkpoint at ref %d, want inside (7000, %d)", snap.RefsReplayed, ref.Refs)
			}
			resumed, err := ReplayReaderResumable(context.Background(), newStreamReader(t, raw),
				ccfg, timing, nil, CheckpointOptions{}, snap)
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}

			if resumed.Refs != ref.Refs {
				t.Errorf("resumed run covered %d refs, uninterrupted %d", resumed.Refs, ref.Refs)
			}
			if resumed.Bus != ref.Bus {
				t.Errorf("bus stats diverged:\nresumed       %+v\nuninterrupted %+v", resumed.Bus, ref.Bus)
			}
			if resumed.Cache != ref.Cache {
				t.Errorf("cache stats diverged:\nresumed       %+v\nuninterrupted %+v", resumed.Cache, ref.Cache)
			}
		})
	}
}

// TestResumeCancellation pins prompt, labeled cancellation: a context
// canceled mid-replay stops the run with the replayed count in the
// error, and a checkpoint written before the cancel still resumes to
// bit-identical statistics.
func TestResumeCancellation(t *testing.T) {
	_, raw := resumeWorkload(t, 30_000)
	ccfg := cache.DefaultConfig()
	ccfg.Options = cache.OptionsAll()
	timing := bus.DefaultTiming()

	ref, err := ReplayReaderResumable(context.Background(), newStreamReader(t, raw),
		ccfg, timing, nil, CheckpointOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	ckpt := filepath.Join(t.TempDir(), "resume.ckpt")
	out, err := ReplayReaderResumable(ctx, newStreamReader(t, raw), ccfg, timing, nil,
		CheckpointOptions{Every: 5000, Path: ckpt, OnCheckpoint: func(refs uint64) error {
			if refs >= 10_000 {
				cancel() // next inter-chunk check sees it
			}
			return nil
		}}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled (outcome %+v)", err, out)
	}
	if !strings.Contains(err.Error(), "canceled after") {
		t.Errorf("cancellation error %q lacks replayed count", err)
	}

	snap, err := machine.ReadSnapshotFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ReplayReaderResumable(context.Background(), newStreamReader(t, raw),
		ccfg, timing, nil, CheckpointOptions{}, snap)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Bus != ref.Bus || resumed.Cache != ref.Cache {
		t.Error("resume after cancellation diverged from uninterrupted run")
	}
}

// TestResumeRejectsConfigMismatch: resuming under a different cache
// configuration than the checkpoint's must fail loudly.
func TestResumeRejectsConfigMismatch(t *testing.T) {
	_, raw := resumeWorkload(t, 10_000)
	ccfg := cache.DefaultConfig()
	timing := bus.DefaultTiming()
	var captured *machine.Snapshot
	_, err := ReplayReaderResumable(context.Background(), newStreamReader(t, raw), ccfg, timing, nil,
		CheckpointOptions{Every: 4000, Write: func(s *machine.Snapshot) error { captured = s; return nil },
			OnCheckpoint: func(uint64) error { return chaos.ErrKilled }}, nil)
	if !errors.Is(err, chaos.ErrKilled) {
		t.Fatal(err)
	}
	other := ccfg
	other.SizeWords *= 2
	if _, err := ReplayReaderResumable(context.Background(), newStreamReader(t, raw),
		other, timing, nil, CheckpointOptions{}, captured); err == nil {
		t.Fatal("resume into mismatched configuration succeeded")
	}
}

// TestChaosMatrixResume drives the full replay+checkpoint+resume path
// through planned faults on every I/O surface — the trace stream and
// the checkpoint writes — and asserts the robustness property: each
// seed ends in a clean labeled error or statistics bit-identical to
// the fault-free run. Never silence, never wrong numbers.
func TestChaosMatrixResume(t *testing.T) {
	_, raw := resumeWorkload(t, 20_000)
	timing := bus.DefaultTiming()
	ccfg := cache.DefaultConfig()
	ccfg.Options = cache.OptionsAll()

	ref, err := ReplayReaderResumable(context.Background(), newStreamReader(t, raw),
		ccfg, timing, nil, CheckpointOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	seeds := int64(60)
	if testing.Short() {
		seeds = 12
	}

	// Faulted trace stream: replay reads through a chaos reader.
	t.Run("trace-stream", func(t *testing.T) {
		var clean, faulted int
		for seed := int64(0); seed < seeds; seed++ {
			f := chaos.PlanReads(seed, int64(len(raw)))
			d, err := trace.NewReader(chaos.NewReader(bytes.NewReader(raw), f))
			if err != nil {
				faulted++
				continue
			}
			out, err := ReplayReaderResumable(context.Background(), d, ccfg, timing, nil, CheckpointOptions{}, nil)
			if err != nil {
				faulted++
				continue
			}
			if out.Refs != ref.Refs || out.Bus != ref.Bus || out.Cache != ref.Cache {
				t.Fatalf("seed %d (%s): silent divergence: %d refs (want %d)", seed, f, out.Refs, ref.Refs)
			}
			clean++
		}
		if clean == 0 || faulted == 0 {
			t.Fatalf("degenerate matrix: %d clean, %d faulted", clean, faulted)
		}
	})

	// Faulted checkpoint writes: every write goes through a chaos
	// writer inside the atomic-write seam. A failed checkpoint must
	// abort the run cleanly; whatever checkpoint file survives must
	// either not exist or resume to bit-identical stats.
	t.Run("checkpoint-writes", func(t *testing.T) {
		var snapSize int64
		{
			d := newStreamReader(t, raw)
			var buf bytes.Buffer
			_, err := ReplayReaderResumable(context.Background(), d, ccfg, timing, nil,
				CheckpointOptions{Every: 5000,
					Write: func(s *machine.Snapshot) error { buf.Reset(); return s.Encode(&buf) }}, nil)
			if err != nil {
				t.Fatal(err)
			}
			snapSize = int64(buf.Len())
		}
		for seed := int64(0); seed < seeds; seed++ {
			f := chaos.Plan(seed, snapSize)
			if f.Kind != chaos.WriteError && f.Kind != chaos.TornWrite {
				f.Kind = chaos.TornWrite
			}
			ckpt := filepath.Join(t.TempDir(), "resume.ckpt")
			armed := seed%3 == 0 // some seeds fault the first write, others a later one
			faultAt := 1 + int(seed%3)
			writes := 0
			out, err := ReplayReaderResumable(context.Background(), newStreamReader(t, raw),
				ccfg, timing, nil,
				CheckpointOptions{Every: 5000, Path: ckpt, Write: func(s *machine.Snapshot) error {
					writes++
					if writes == faultAt || armed && writes == 1 {
						return writeSnapshotFaulted(ckpt, s, f)
					}
					return s.WriteFile(ckpt)
				}}, nil)
			if err == nil {
				// The planned offset fell beyond that snapshot's actual
				// size, so the fault never fired — then the run must have
				// been a fully clean one.
				if out.Refs != ref.Refs || out.Bus != ref.Bus || out.Cache != ref.Cache {
					t.Fatalf("seed %d (%s): un-fired fault but diverged stats", seed, f)
				}
				continue
			}
			if !errors.Is(err, chaos.ErrInjected) {
				t.Fatalf("seed %d (%s): abort not labeled with the injected fault: %v", seed, f, err)
			}
			// Any surviving checkpoint must be a complete earlier one.
			snap, rerr := machine.ReadSnapshotFile(ckpt)
			if rerr != nil {
				continue // no durable checkpoint — a clean total failure
			}
			resumed, err := ReplayReaderResumable(context.Background(), newStreamReader(t, raw),
				ccfg, timing, nil, CheckpointOptions{}, snap)
			if err != nil {
				t.Fatalf("seed %d (%s): surviving checkpoint did not resume: %v", seed, f, err)
			}
			if resumed.Bus != ref.Bus || resumed.Cache != ref.Cache {
				t.Fatalf("seed %d (%s): resume from surviving checkpoint diverged", seed, f)
			}
		}
	})
}

// writeSnapshotFaulted writes s to path through the atomic seam with a
// chaos writer injected, as a crash mid-checkpoint does.
func writeSnapshotFaulted(path string, s *machine.Snapshot, f chaos.Fault) error {
	return safeio.WriteFile(path, func(w io.Writer) error {
		return s.Encode(chaos.NewWriter(w, f))
	})
}
