package bench

import (
	"context"
	"fmt"
	"io"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/machine"
	"pimcache/internal/mem"
	"pimcache/internal/probe"
	"pimcache/internal/trace"
)

// CheckpointOptions configures periodic durable checkpoints during a
// streaming replay.
type CheckpointOptions struct {
	// Every is the checkpoint cadence in replayed references; 0 disables
	// checkpointing.
	Every uint64
	// Path is where checkpoints land. Each write is atomic (temp +
	// fsync + rename), so a crash at any instant leaves either the
	// previous or the new checkpoint intact — never a torn one.
	Path string
	// Write overrides the checkpoint write (tests inject fault writers
	// here); nil means Snapshot.WriteFile(Path).
	Write func(*machine.Snapshot) error
	// OnCheckpoint runs after each checkpoint is durable, with the
	// absolute replayed-reference count it captured. A non-nil error
	// aborts the replay — the chaos harness returns chaos.ErrKilled
	// here to die at a reproducible point.
	OnCheckpoint func(refs uint64) error
}

// ReplayOutcome is the result of a (possibly resumed) streaming replay.
type ReplayOutcome struct {
	Bus   bus.Stats
	Cache cache.Stats
	// Refs is the absolute reference count the statistics reflect,
	// including references replayed before the resume point.
	Refs uint64
	// Checkpoints counts durable checkpoint writes this run performed.
	Checkpoints int
}

// ReplayReaderResumable is ReplayReader with cancellation, periodic
// durable checkpoints and crash resume.
//
// With resume nil it replays d from the top. With resume set (a
// snapshot a previous, interrupted run checkpointed) it restores the
// machine, seeks the reader to the recorded position — re-validating
// every skipped chunk's checksum on the way — and replays the rest.
// Either way the returned statistics are bit-identical to an
// uninterrupted replay of the whole stream: the resume protocol's
// core guarantee, pinned by TestResumeBitIdentical and the soak
// kill/resume oracle.
//
// The context is checked between chunks (a few thousand references),
// so cancellation latency is microseconds; a canceled replay returns
// ctx's error with the replayed count, and any checkpoint already
// written remains valid to resume from.
func ReplayReaderResumable(ctx context.Context, d *trace.Reader, ccfg cache.Config, timing bus.Timing, sink probe.Sink, ck CheckpointOptions, resume *machine.Snapshot) (*ReplayOutcome, error) {
	if ck.Every > 0 && ck.Path == "" && ck.Write == nil {
		return nil, fmt.Errorf("bench: checkpointing enabled (every %d refs) without a path", ck.Every)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	write := ck.Write
	if write == nil && ck.Every > 0 {
		write = func(s *machine.Snapshot) error { return s.WriteFile(ck.Path) }
	}

	mcfg := machine.Config{PEs: d.PEs(), Layout: d.Layout(), Cache: ccfg, Timing: timing}
	m := machine.New(mcfg)
	if sink != nil {
		m.SetProbe(sink)
	}
	ports := make([]mem.Accessor, d.PEs())
	for i := range ports {
		ports[i] = m.Port(i)
	}
	cr, err := trace.NewChunkReplayer(d.PEs(), ports)
	if err != nil {
		return nil, err
	}

	out := &ReplayOutcome{}
	if resume != nil {
		if resume.RefsReplayed < 0 {
			return nil, fmt.Errorf("bench: resume snapshot has negative replay position %d", resume.RefsReplayed)
		}
		if err := m.Restore(resume); err != nil {
			return nil, fmt.Errorf("bench: resume: %w", err)
		}
		if err := d.SkipTo(uint64(resume.RefsReplayed)); err != nil {
			return nil, fmt.Errorf("bench: resume seek: %w", err)
		}
		out.Refs = uint64(resume.RefsReplayed)
	}

	chunk := make([]trace.Ref, 4096)
	var sinceCkpt uint64
	for {
		if err := ctx.Err(); err != nil {
			return out, fmt.Errorf("bench: replay canceled after %d refs: %w", out.Refs, err)
		}
		n, rerr := d.Next(chunk)
		if n > 0 {
			if err := cr.Replay(chunk[:n], int(out.Refs)); err != nil {
				return out, err
			}
			out.Refs += uint64(n)
			sinceCkpt += uint64(n)
		}
		done := rerr == io.EOF
		if rerr != nil && !done {
			return out, rerr
		}
		if ck.Every > 0 && sinceCkpt >= ck.Every && !done {
			snap := m.Checkpoint()
			snap.RefsReplayed = int(out.Refs)
			if err := write(snap); err != nil {
				// The previous checkpoint (if any) is intact on disk; the
				// run aborts cleanly rather than continue without the
				// durability it was asked for.
				return out, fmt.Errorf("bench: writing checkpoint at ref %d: %w", out.Refs, err)
			}
			out.Checkpoints++
			sinceCkpt = 0
			if ck.OnCheckpoint != nil {
				if err := ck.OnCheckpoint(out.Refs); err != nil {
					return out, err
				}
			}
		}
		if done {
			break
		}
	}
	out.Bus = m.BusStats()
	out.Cache = m.CacheStats()
	return out, nil
}
