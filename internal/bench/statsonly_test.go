package bench

import (
	"bytes"
	"strings"
	"testing"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/probe"
	"pimcache/internal/synth"
	"pimcache/internal/trace"

	"pimcache/internal/bench/programs"
)

// eventLog is a probe sink that records the full event stream for
// bit-level comparison.
type eventLog struct{ events []probe.Event }

func (l *eventLog) Emit(e probe.Event) { l.events = append(l.events, e) }

// sameEvents compares two recorded streams event for event.
func sameEvents(t *testing.T, label string, data, statsOnly []probe.Event) {
	t.Helper()
	if len(data) != len(statsOnly) {
		t.Errorf("%s: %d events data-carrying, %d stats-only", label, len(data), len(statsOnly))
		return
	}
	for i := range data {
		if data[i] != statsOnly[i] {
			t.Errorf("%s: event %d diverges\ndata:       %+v\nstats-only: %+v",
				label, i, data[i], statsOnly[i])
			return
		}
	}
}

// statsOnlyProtocols is the replay matrix the stats-only oracle runs: the
// three protocols, each with the bus filters on and off.
var statsOnlyProtocols = []struct {
	name    string
	opts    cache.Options
	proto   cache.Protocol
	disable bool
}{
	{"pim", cache.OptionsAll(), cache.ProtocolPIM, false},
	{"pim/unfiltered", cache.OptionsAll(), cache.ProtocolPIM, true},
	{"illinois", cache.OptionsNone(), cache.ProtocolIllinois, false},
	{"illinois/unfiltered", cache.OptionsNone(), cache.ProtocolIllinois, true},
	{"writethrough", cache.OptionsNone(), cache.ProtocolWriteThrough, false},
	{"writethrough/unfiltered", cache.OptionsNone(), cache.ProtocolWriteThrough, true},
}

// statsOnlyTraces returns the oracle's workloads: one live-recorded
// stream (every op the real runtime issues, including locks) and the
// three synthetic generators.
func statsOnlyTraces(t *testing.T) map[string]*trace.Trace {
	t.Helper()
	b, _ := programs.ByName("Puzzle")
	_, tr, err := RunLive(b, 2, 4, BaseCache(cache.OptionsAll()), true)
	if err != nil {
		t.Fatal(err)
	}
	sc := synth.DefaultConfig()
	sc.PEs = 8
	sc.Events = 30_000
	return map[string]*trace.Trace{
		"puzzle":     tr,
		"orparallel": synth.ORParallel(sc),
		"seqprolog":  synth.SeqProlog(sc),
		"ring":       synth.MessageRing(sc),
	}
}

// TestStatsOnlyEquivalence is the tentpole oracle: replaying any stream
// with the data plane removed must yield bit-identical bus statistics,
// cache statistics, and probe event streams to the data-carrying replay,
// for every protocol with the filters on and off.
func TestStatsOnlyEquivalence(t *testing.T) {
	for trName, tr := range statsOnlyTraces(t) {
		tr := tr
		t.Run(trName, func(t *testing.T) {
			t.Parallel()
			for _, p := range statsOnlyProtocols {
				cfg := BaseCache(p.opts)
				cfg.Protocol = p.proto
				cfg.DisableBusFilters = p.disable

				var dataLog eventLog
				bsData, csData, err := ReplayConfigProbed(tr, cfg, bus.DefaultTiming(), &dataLog)
				if err != nil {
					t.Fatalf("%s: data-carrying replay: %v", p.name, err)
				}

				so := cfg
				so.StatsOnly = true
				var soLog eventLog
				bsSO, csSO, err := ReplayConfigProbed(tr, so, bus.DefaultTiming(), &soLog)
				if err != nil {
					t.Fatalf("%s: stats-only replay: %v", p.name, err)
				}

				if bsData != bsSO {
					t.Errorf("%s: bus stats diverge\ndata:       %+v\nstats-only: %+v", p.name, bsData, bsSO)
				}
				if csData != csSO {
					t.Errorf("%s: cache stats diverge\ndata:       %+v\nstats-only: %+v", p.name, csData, csSO)
				}
				sameEvents(t, p.name, dataLog.events, soLog.events)
			}
		})
	}
}

// TestStatsOnlyPackedEquivalence pins the pre-decoded fast path: packing
// a trace and replaying the flat word stream (stats-only or not) must
// match the data-carrying []Ref replay exactly.
func TestStatsOnlyPackedEquivalence(t *testing.T) {
	for trName, tr := range statsOnlyTraces(t) {
		tr := tr
		t.Run(trName, func(t *testing.T) {
			t.Parallel()
			p, err := trace.Pack(tr)
			if err != nil {
				t.Fatal(err)
			}
			if p.Len() != tr.Len() {
				t.Fatalf("packed %d refs, trace has %d", p.Len(), tr.Len())
			}
			cfg := BaseCache(cache.OptionsAll())
			bsData, csData, err := ReplayConfig(tr, cfg, bus.DefaultTiming())
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range []struct {
				name      string
				statsOnly bool
			}{{"data", false}, {"statsonly", true}} {
				mcfg := cfg
				mcfg.StatsOnly = mode.statsOnly
				bs, cs, err := ReplayPacked(p, mcfg, bus.DefaultTiming())
				if err != nil {
					t.Fatalf("%s: %v", mode.name, err)
				}
				if bs != bsData {
					t.Errorf("%s: bus stats diverge\nrefs:   %+v\npacked: %+v", mode.name, bsData, bs)
				}
				if cs != csData {
					t.Errorf("%s: cache stats diverge\nrefs:   %+v\npacked: %+v", mode.name, csData, cs)
				}
			}
		})
	}
}

// TestStatsOnlyReaderEquivalence pins the streaming path: serializing a
// trace and replaying it straight from the decoder — stats-only, with a
// probe attached — must reproduce the materialized data-carrying replay's
// statistics and event stream.
func TestStatsOnlyReaderEquivalence(t *testing.T) {
	sc := synth.DefaultConfig()
	sc.PEs = 8
	sc.Events = 30_000
	tr := synth.ORParallel(sc)
	cfg := BaseCache(cache.OptionsAll())

	var dataLog eventLog
	bsData, csData, err := ReplayConfigProbed(tr, cfg, bus.DefaultTiming(), &dataLog)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	so := cfg
	so.StatsOnly = true
	var soLog eventLog
	bs, cs, n, err := ReplayReader(d, so, bus.DefaultTiming(), &soLog)
	if err != nil {
		t.Fatal(err)
	}
	if n != tr.Len() {
		t.Errorf("streamed %d refs, trace has %d", n, tr.Len())
	}
	if bs != bsData {
		t.Errorf("bus stats diverge\nmaterialized: %+v\nstreamed:     %+v", bsData, bs)
	}
	if cs != csData {
		t.Errorf("cache stats diverge\nmaterialized: %+v\nstreamed:     %+v", csData, cs)
	}
	sameEvents(t, "streamed", dataLog.events, soLog.events)
}

// TestStatsOnlySharded pins the sharded replay path in stats-only mode
// against the unsharded data-carrying replay.
func TestStatsOnlySharded(t *testing.T) {
	sc := synth.DefaultConfig()
	sc.PEs = 8
	sc.Events = 30_000
	tr := synth.ORParallel(sc)
	cfg := BaseCache(cache.OptionsAll())
	bsData, csData, err := ReplayConfig(tr, cfg, bus.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	so := cfg
	so.StatsOnly = true
	bs, cs, err := ReplayConfigSharded(tr, so, bus.DefaultTiming(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if bs != bsData {
		t.Errorf("bus stats diverge\nunsharded data:    %+v\nsharded stats-only: %+v", bsData, bs)
	}
	if cs != csData {
		t.Errorf("cache stats diverge\nunsharded data:    %+v\nsharded stats-only: %+v", csData, cs)
	}
}

// TestStatsOnlyWarmed pins the warmed-checkpoint path in stats-only mode:
// a stats-only machine checkpointed mid-replay and resumed must land on
// the data-carrying cold replay's exact statistics.
func TestStatsOnlyWarmed(t *testing.T) {
	sc := synth.DefaultConfig()
	sc.PEs = 4
	sc.Events = 20_000
	tr := synth.ORParallel(sc)
	cfg := BaseCache(cache.OptionsAll())
	bsData, csData, err := ReplayConfig(tr, cfg, bus.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	so := cfg
	so.StatsOnly = true
	wc := NewWarmCache(tr.Len() / 2)
	wc.Register(so, bus.DefaultTiming())
	wc.Register(so, bus.DefaultTiming())
	for i := 0; i < 2; i++ {
		bs, cs, err := wc.Replay(tr, so, bus.DefaultTiming())
		if err != nil {
			t.Fatalf("warmed replay %d: %v", i, err)
		}
		if bs != bsData {
			t.Errorf("replay %d: bus stats diverge\ncold data: %+v\nwarmed:    %+v", i, bsData, bs)
		}
		if cs != csData {
			t.Errorf("replay %d: cache stats diverge\ncold data: %+v\nwarmed:    %+v", i, csData, cs)
		}
	}
}

// TestStatsOnlyCollectRenderAll runs a reduced but structurally complete
// evaluation (live sweep, variants, sweeps, baselines) with replays in
// stats-only warmed mode and requires byte-identical rendered tables:
// the flag must change memory use, never a number.
func TestStatsOnlyCollectRenderAll(t *testing.T) {
	old := quickScales["Puzzle"]
	quickScales["Puzzle"] = 2
	defer func() { quickScales["Puzzle"] = old }()

	o := Options{
		Quick:           true,
		PEs:             4,
		PESweep:         []int{1, 2, 4},
		BlockSizes:      []int{2, 4},
		Capacities:      []int{1 << 10, 4 << 10},
		Associativities: []int{1, 4},
		Benchmarks:      []string{"Puzzle"},
		Jobs:            1,
	}
	data, err := Collect(o)
	if err != nil {
		t.Fatal(err)
	}
	o.StatsOnly = true
	o.WarmedSweeps = true // exercise stats-only checkpoints too
	statsOnly, err := Collect(o)
	if err != nil {
		t.Fatal(err)
	}
	got, want := RenderAll(statsOnly), RenderAll(data)
	if len(want) == 0 {
		t.Fatal("rendered evaluation is empty")
	}
	if got != want {
		t.Errorf("stats-only evaluation differs from data-carrying\n--- data ---\n%s\n--- stats-only ---\n%s", want, got)
	}
}

// TestStatsOnlyLiveRefused pins the guard: a stats-only configuration
// handed to a live run must fail with a clear error, not silently feed
// the program zeros.
func TestStatsOnlyLiveRefused(t *testing.T) {
	b, _ := programs.ByName("Puzzle")
	cfg := BaseCache(cache.OptionsAll())
	cfg.StatsOnly = true
	_, _, err := RunLive(b, 2, 2, cfg, false)
	if err == nil {
		t.Fatal("live run on a stats-only config succeeded")
	}
	if !strings.Contains(err.Error(), "stats-only") {
		t.Errorf("error does not name the cause: %v", err)
	}
}
