package bench

import (
	"fmt"
	"strings"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/mem"
	"pimcache/internal/stats"
)

// paper op categories: the paper's Table 3 groups the nine operations as
// R (all reads), LR, W (all writes), UW+U.
func opR(s *cache.Stats, area mem.Area) uint64 {
	return s.Refs[area][cache.OpR] + s.Refs[area][cache.OpER] +
		s.Refs[area][cache.OpRP] + s.Refs[area][cache.OpRI]
}

func opW(s *cache.Stats, area mem.Area) uint64 {
	return s.Refs[area][cache.OpW] + s.Refs[area][cache.OpDW]
}

func opLR(s *cache.Stats, area mem.Area) uint64 { return s.Refs[area][cache.OpLR] }

func opUWU(s *cache.Stats, area mem.Area) uint64 {
	return s.Refs[area][cache.OpUW] + s.Refs[area][cache.OpU]
}

var dataAreas = []mem.Area{mem.AreaHeap, mem.AreaGoal, mem.AreaSusp, mem.AreaComm}

// Table1 reproduces the benchmark summary: lines, simulated time (machine
// rounds), speedup on PEs relative to one PE, reductions, suspensions,
// abstract instructions, and memory references.
func Table1(d *Data) *stats.Table {
	t := &stats.Table{
		Title:   "Table 1: Short Summary of Benchmarks on " + fmt.Sprint(d.Options.PEs) + " PEs",
		Columns: []string{"bench", "lines", "rounds", "su", "reduct", "susp", "instr", "ref"},
		Notes: []string{
			"rounds = machine round-robin sweeps (simulated-time proxy, replaces the paper's seconds)",
			"su = rounds(1 PE) / rounds(" + fmt.Sprint(d.Options.PEs) + " PEs)",
		},
	}
	for _, bd := range d.Benches {
		rd := bd.LiveByPEs[d.Options.PEs]
		su := "-"
		if one, ok := bd.LiveByPEs[1]; ok && rd.Result.Rounds > 0 {
			su = fmt.Sprintf("%.1f", float64(one.Result.Rounds)/float64(rd.Result.Rounds))
		}
		t.AddRow(bd.Name,
			fmt.Sprint(bd.Lines),
			fmt.Sprint(rd.Result.Rounds),
			su,
			fmt.Sprint(rd.Result.Emu.Reductions),
			fmt.Sprint(rd.Result.Emu.Suspensions),
			fmt.Sprintf("%.2fM", float64(rd.Result.Emu.Instructions)/1e6),
			fmt.Sprintf("%.2fM", float64(rd.Refs().TotalRefs())/1e6),
		)
	}
	return t
}

// Refs returns the run's issued-reference statistics.
func (r *RunData) Refs() *cache.Stats { return &r.Cache }

// areaPcts computes [inst, data, heap, goal, susp, comm] percentages of a
// per-area quantity.
func areaPcts(get func(mem.Area) uint64) []float64 {
	var total, data uint64
	inst := get(mem.AreaInst)
	total = inst
	for _, a := range dataAreas {
		v := get(a)
		total += v
		data += v
	}
	out := []float64{stats.Pct(inst, total), stats.Pct(data, total)}
	for _, a := range dataAreas {
		out = append(out, stats.Pct(get(a), total))
	}
	return out
}

// dataPcts computes [heap, goal, susp, comm] percentages of data-only.
func dataPcts(get func(mem.Area) uint64) []float64 {
	var data uint64
	for _, a := range dataAreas {
		data += get(a)
	}
	var out []float64
	for _, a := range dataAreas {
		out = append(out, stats.Pct(get(a), data))
	}
	return out
}

// dataRowCells formats an E(data) row: blanks under inst/data, then the
// four data-area percentages.
func dataRowCells(vals []float64) []string {
	cells := []string{"-", "-"}
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf("%.2f", v))
	}
	return cells
}

func meansAndDevs(rows [][]float64) (means, devs []float64) {
	if len(rows) == 0 {
		return nil, nil
	}
	n := len(rows[0])
	for c := 0; c < n; c++ {
		var col []float64
		for _, r := range rows {
			col = append(col, r[c])
		}
		means = append(means, stats.Mean(col))
		devs = append(devs, stats.StdDev(col))
	}
	return means, devs
}

// Table2 reproduces "% Memory References and Bus Cycles by Area". As in
// the paper, the bus-cycle side is measured on the base cache with no
// optimized commands.
func Table2(d *Data) *stats.Table {
	t := &stats.Table{
		Title:   "Table 2: % Memory References and Bus Cycles by Area",
		Columns: []string{"", "inst", "data", "heap", "goal", "susp", "comm"},
		Notes:   []string{"bus cycles measured with no optimized commands (paper base)"},
	}
	var refRows, busRows [][]float64
	for _, bd := range d.Benches {
		refs := bd.Refs
		refRows = append(refRows, areaPcts(func(a mem.Area) uint64 { return refs.RefsByArea(a) }))
		nb := bd.OptBus["None"]
		busRows = append(busRows, areaPcts(func(a mem.Area) uint64 { return nb.CyclesByArea[a] }))
	}
	m, s := meansAndDevs(refRows)
	t.AddRow("Mem Ref")
	t.AddFloats("E(inst+data)", "%.2f", m...)
	t.AddFloats("sigma(inst+data)", "%.2f", s...)
	var refDataRows [][]float64
	for _, bd := range d.Benches {
		refs := bd.Refs
		refDataRows = append(refDataRows, dataPcts(func(a mem.Area) uint64 { return refs.RefsByArea(a) }))
	}
	dm, _ := meansAndDevs(refDataRows)
	t.AddRow("E(data)", dataRowCells(dm)...)

	t.AddRow("Bus Cyc.")
	bm, bs := meansAndDevs(busRows)
	t.AddFloats("E(inst+data)", "%.2f", bm...)
	t.AddFloats("sigma(inst+data)", "%.2f", bs...)
	var busDataRows [][]float64
	for _, bd := range d.Benches {
		nb := bd.OptBus["None"]
		busDataRows = append(busDataRows, dataPcts(func(a mem.Area) uint64 { return nb.CyclesByArea[a] }))
	}
	bdm, _ := meansAndDevs(busDataRows)
	t.AddRow("E(data)", dataRowCells(bdm)...)
	for i, bd := range d.Benches {
		t.AddFloats(bd.Name, "%.2f", busRows[i]...)
	}
	return t
}

// Table3 reproduces "% Memory References by Operation".
func Table3(d *Data) *stats.Table {
	t := &stats.Table{
		Title:   "Table 3: Percentage of Memory References by Operation",
		Columns: []string{"operation", "R", "LR", "W", "UW+U"},
		Notes:   []string{"R includes ER/RP/RI, W includes DW (the paper's grouping)"},
	}
	sumOver := func(s *cache.Stats, areas []mem.Area) []uint64 {
		var r, lr, w, u uint64
		for _, a := range areas {
			r += opR(s, a)
			lr += opLR(s, a)
			w += opW(s, a)
			u += opUWU(s, a)
		}
		return []uint64{r, lr, w, u}
	}
	pcts := func(vals []uint64) []float64 {
		var total uint64
		for _, v := range vals {
			total += v
		}
		out := make([]float64, len(vals))
		for i, v := range vals {
			out[i] = stats.Pct(v, total)
		}
		return out
	}
	allAreas := append([]mem.Area{mem.AreaInst}, dataAreas...)
	var totalRows, dataRows, heapRows [][]float64
	for _, bd := range d.Benches {
		refs := bd.Refs
		totalRows = append(totalRows, pcts(sumOver(&refs, allAreas)))
		dataRows = append(dataRows, pcts(sumOver(&refs, dataAreas)))
		heapRows = append(heapRows, pcts(sumOver(&refs, []mem.Area{mem.AreaHeap})))
	}
	tm, ts := meansAndDevs(totalRows)
	dm, ds := meansAndDevs(dataRows)
	hm, hs := meansAndDevs(heapRows)
	t.AddFloats("E(inst+data)", "%.2f", tm...)
	t.AddFloats("sigma(inst+data)", "%.2f", ts...)
	t.AddFloats("E(data)", "%.2f", dm...)
	t.AddFloats("sigma(data)", "%.2f", ds...)
	t.AddFloats("E(heap)", "%.2f", hm...)
	t.AddFloats("sigma(heap)", "%.2f", hs...)
	for i, bd := range d.Benches {
		t.AddFloats(bd.Name, "%.2f", heapRows[i]...)
	}
	return t
}

// Table4 reproduces "Effect of Optimized Cache Commands in Reducing Bus
// Traffic": bus cycles relative to the unoptimized configuration.
func Table4(d *Data) *stats.Table {
	t := &stats.Table{
		Title:   "Table 4: Effect of Optimized Cache Commands (bus cycles relative to no-opt)",
		Columns: []string{"benchmark", "None", "Heap", "Goal", "Comm", "All"},
	}
	for _, bd := range d.Benches {
		none := bd.OptBus["None"].TotalCycles
		var cells []float64
		for _, v := range OptVariants {
			cells = append(cells, stats.Ratio(bd.OptBus[v.Name].TotalCycles, none))
		}
		t.AddFloats(bd.Name, "%.2f", cells...)
	}
	return t
}

// Table5 reproduces "Hit Ratios of No Cost Lock Operations".
func Table5(d *Data) *stats.Table {
	cols := []string{""}
	for _, bd := range d.Benches {
		cols = append(cols, bd.Name)
	}
	t := &stats.Table{
		Title:   "Table 5: Hit Ratios of No Cost Lock Operations",
		Columns: cols,
	}
	var hit, excl, now []float64
	for _, bd := range d.Benches {
		cs := bd.OptCache["None"]
		hit = append(hit, stats.Ratio(cs.LRHits(), cs.LRTotal()))
		excl = append(excl, stats.Ratio(cs.LRHitExclusive, cs.LRTotal()))
		now = append(now, stats.Ratio(cs.UnlockNoWaiter, cs.UnlockNoWaiter+cs.UnlockWaiter))
	}
	t.AddFloats("LR hit-ratio", "%.3f", hit...)
	t.AddFloats("LR hit-to-Exclusive", "%.3f", excl...)
	t.AddFloats("U, UW hit-to-No-waiter", "%.3f", now...)
	return t
}

// Figure1 reproduces "Cache Block Size vs. Cache Miss Ratio and Bus
// Traffic" as two series (all optimized commands enabled).
func Figure1(d *Data) (miss, traffic *stats.Series) {
	miss = &stats.Series{Title: "Figure 1a: Block Size vs Miss Ratio", XLabel: "block(words)"}
	traffic = &stats.Series{Title: "Figure 1b: Block Size vs Bus Traffic (cycles)", XLabel: "block(words)"}
	for _, bd := range d.Benches {
		miss.YNames = append(miss.YNames, bd.Name)
		traffic.YNames = append(traffic.YNames, bd.Name)
	}
	if len(d.Benches) == 0 || len(d.Benches[0].BlockSweep) == 0 {
		return miss, traffic
	}
	for i := range d.Benches[0].BlockSweep {
		var ms, ts []float64
		x := fmt.Sprint(d.Benches[0].BlockSweep[i].Param)
		for _, bd := range d.Benches {
			ms = append(ms, bd.BlockSweep[i].MissRatio)
			ts = append(ts, float64(bd.BlockSweep[i].BusCycles))
		}
		miss.Add(x, ms...)
		traffic.Add(x, ts...)
	}
	return miss, traffic
}

// Figure2 reproduces "Cache Capacity vs. Bus Traffic" (plus miss ratio),
// reporting both data words and the paper's directory-bits metric.
func Figure2(d *Data) (miss, traffic *stats.Series) {
	miss = &stats.Series{Title: "Figure 2a: Capacity vs Miss Ratio", XLabel: "words(bits)"}
	traffic = &stats.Series{Title: "Figure 2b: Capacity vs Bus Traffic (cycles)", XLabel: "words(bits)"}
	for _, bd := range d.Benches {
		miss.YNames = append(miss.YNames, bd.Name)
		traffic.YNames = append(traffic.YNames, bd.Name)
	}
	if len(d.Benches) == 0 || len(d.Benches[0].CapSweep) == 0 {
		return miss, traffic
	}
	for i := range d.Benches[0].CapSweep {
		p := d.Benches[0].CapSweep[i]
		x := fmt.Sprintf("%d(%dk)", p.Param, p.DirectoryBits/1000)
		var ms, ts []float64
		for _, bd := range d.Benches {
			ms = append(ms, bd.CapSweep[i].MissRatio)
			ts = append(ts, float64(bd.CapSweep[i].BusCycles))
		}
		miss.Add(x, ms...)
		traffic.Add(x, ts...)
	}
	return miss, traffic
}

// Figure3 reproduces "Number of PEs vs. Bus Traffic", plus the in-text
// area-share shift (communication rising, heap falling with more PEs).
func Figure3(d *Data) (traffic *stats.Series, shares *stats.Table) {
	traffic = &stats.Series{Title: "Figure 3: Number of PEs vs Bus Traffic (cycles)", XLabel: "PEs"}
	for _, bd := range d.Benches {
		traffic.YNames = append(traffic.YNames, bd.Name)
	}
	shares = &stats.Table{
		Title:   "Figure 3 companion: % of bus cycles by area vs PEs (benchmark average)",
		Columns: []string{"PEs", "heap", "goal", "susp", "comm"},
	}
	for _, pes := range d.Options.PESweep {
		var ts []float64
		var rows [][]float64
		for _, bd := range d.Benches {
			rd, ok := bd.LiveByPEs[pes]
			if !ok {
				continue
			}
			ts = append(ts, float64(rd.Bus.TotalCycles))
			rows = append(rows, dataPcts(func(a mem.Area) uint64 { return rd.Bus.CyclesByArea[a] }))
		}
		if len(ts) == 0 {
			continue
		}
		traffic.Add(fmt.Sprint(pes), ts...)
		m, _ := meansAndDevs(rows)
		shares.AddFloats(fmt.Sprint(pes), "%.1f", m...)
	}
	return traffic, shares
}

// ExtraBusWidth reports the Section 4.4 two-word-bus experiment: traffic
// as a fraction of the one-word-bus traffic (paper: 62-75%).
func ExtraBusWidth(d *Data) *stats.Table {
	t := &stats.Table{
		Title:   "Two-word bus traffic relative to one-word bus (Section 4.4; paper: 0.62-0.75)",
		Columns: []string{"benchmark", "1-word", "2-word", "ratio"},
	}
	for _, bd := range d.Benches {
		one := bd.OptBus["All"].TotalCycles
		two := bd.Width2.TotalCycles
		t.AddRow(bd.Name, fmt.Sprint(one), fmt.Sprint(two),
			fmt.Sprintf("%.2f", stats.Ratio(two, one)))
	}
	return t
}

// ExtraOptDetail reports the Section 4.6 in-text numbers: DW's reduction
// of heap swap-ins, and RI's elimination of invalidate commands.
func ExtraOptDetail(d *Data) *stats.Table {
	t := &stats.Table{
		Title: "Optimization detail (Section 4.6)",
		Columns: []string{"benchmark", "heap swap-in (Heap/None)",
			"I commands (Comm/None)", "goal cycles (Goal/None)"},
		Notes: []string{
			"paper: DW cuts heap swap-ins to 10-55%; RI avoids 60-70% of I commands",
		},
	}
	swapIns := func(s bus.Stats) uint64 {
		return s.CountByPattern[bus.PatSwapInMem] + s.CountByPattern[bus.PatSwapInMemSwapOut]
	}
	for _, bd := range d.Benches {
		none, heap := bd.OptBus["None"], bd.OptBus["Heap"]
		comm, goal := bd.OptBus["Comm"], bd.OptBus["Goal"]
		t.AddRow(bd.Name,
			fmt.Sprintf("%.2f", stats.Ratio(swapIns(heap), swapIns(none))),
			fmt.Sprintf("%.2f", stats.Ratio(comm.Commands[bus.CmdI], none.Commands[bus.CmdI])),
			fmt.Sprintf("%.2f", stats.Ratio(goal.CyclesByArea[mem.AreaGoal], none.CyclesByArea[mem.AreaGoal])),
		)
	}
	return t
}

// ExtraAssociativity reports the Section 4.3 in-text ablation: bus
// traffic by set associativity relative to the four-way base (paper:
// two-way costs ~18% more than four-way, direct-mapped far more).
func ExtraAssociativity(d *Data) *stats.Table {
	t := &stats.Table{
		Title:   "Set associativity vs bus traffic, relative to 4-way (Section 4.3)",
		Columns: []string{"benchmark", "1-way", "2-way", "4-way", "8-way"},
		Notes:   []string{"paper: 2-way is ~1.18x 4-way; direct mapped significantly greater"},
	}
	for _, bd := range d.Benches {
		var base uint64
		for _, p := range bd.WaySweep {
			if p.Param == 4 {
				base = p.BusCycles
			}
		}
		if base == 0 {
			continue
		}
		var cells []float64
		for _, p := range bd.WaySweep {
			cells = append(cells, stats.Ratio(p.BusCycles, base))
		}
		t.AddFloats(bd.Name, "%.2f", cells...)
	}
	return t
}

// ExtraProtocols compares total bus traffic across protocols: the
// write-through baseline, Illinois copy-back, the unoptimized PIM
// copy-back, and the full PIM cache. This is the Section 3 premise
// ("copyback cache protocols have been proved effective for reducing
// common bus traffic... AND-parallel Prolog benefits from copyback even
// more than procedural languages") plus the paper's contribution on top.
func ExtraProtocols(d *Data) *stats.Table {
	extra := altProtocols()
	cols := []string{"benchmark", "write-through", "illinois", "pim", "pim+opts"}
	for _, p := range extra {
		cols = append(cols, p.String())
	}
	t := &stats.Table{
		Title:   "Protocol comparison: bus cycles relative to the unoptimized PIM copy-back",
		Columns: cols,
		Notes: []string{
			"write-through pays one bus transaction per store (Section 3 premise)",
			"extra registered protocols replay unoptimized, like the illinois column",
		},
	}
	for _, bd := range d.Benches {
		base := bd.OptBus["None"].TotalCycles
		alt := map[string]bus.Stats{}
		for _, ps := range bd.AltBus {
			alt[ps.Name] = ps.Bus
		}
		cells := []float64{
			stats.Ratio(bd.WriteThrough.TotalCycles, base),
			stats.Ratio(bd.Illinois.TotalCycles, base),
			1.0,
			stats.Ratio(bd.OptBus["All"].TotalCycles, base),
		}
		for _, p := range extra {
			cells = append(cells, stats.Ratio(alt[p.String()].TotalCycles, base))
		}
		t.AddFloats(bd.Name, "%.2f", cells...)
	}
	return t
}

// RenderAll renders every table, figure and in-text experiment of the
// evaluation in canonical order. The output is a pure function of the
// dataset, so it doubles as the determinism oracle: Collect at any Jobs
// setting must render byte-identically to the serial run.
func RenderAll(d *Data) string {
	f1m, f1t := Figure1(d)
	f2m, f2t := Figure2(d)
	f3t, f3s := Figure3(d)
	parts := []string{
		Table1(d).String(), Table2(d).String(), Table3(d).String(),
		Table4(d).String(), Table5(d).String(),
		f1m.String(), f1t.String(),
		f2m.String(), f2t.String(),
		f3t.String(), f3s.String(),
		ExtraBusWidth(d).String(),
		ExtraAssociativity(d).String(),
		ExtraOptDetail(d).String(),
		ExtraProtocols(d).String(),
		ExtraIllinois(d).String(),
	}
	var sb strings.Builder
	for i, p := range parts {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(p)
	}
	return sb.String()
}

// ExtraIllinois reports the Section 3.1 SM-state rationale: shared-memory
// module occupancy under PIM vs the Illinois baseline.
func ExtraIllinois(d *Data) *stats.Table {
	t := &stats.Table{
		Title: "PIM (SM state) vs Illinois: shared-memory module busy cycles (Section 3.1)",
		Columns: []string{"benchmark", "PIM mem-busy", "Illinois mem-busy", "ratio",
			"PIM bus", "Illinois bus"},
		Notes: []string{"Illinois copies every supplied dirty block back to memory"},
	}
	for _, bd := range d.Benches {
		pim := bd.OptBus["None"]
		ill := bd.Illinois
		t.AddRow(bd.Name,
			fmt.Sprint(pim.MemBusyCycles), fmt.Sprint(ill.MemBusyCycles),
			fmt.Sprintf("%.2f", stats.Ratio(ill.MemBusyCycles, pim.MemBusyCycles)),
			fmt.Sprint(pim.TotalCycles), fmt.Sprint(ill.TotalCycles))
	}
	return t
}
