package bench

import (
	"sync"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/machine"
	"pimcache/internal/mem"
	"pimcache/internal/obs"
	"pimcache/internal/trace"
)

// warmKey identifies a replay's simulated outcome. The trace is fixed per
// WarmCache, so the cache configuration and bus timing determine every
// statistic; both types are comparable value types.
type warmKey struct {
	cfg    cache.Config
	timing bus.Timing
}

// WarmCache shares warmed checkpoints among replay jobs with identical
// cache configuration and bus timing. A sweep necessarily revisits its
// base configuration — the Table 4 "All" variant reappears as the
// block-size, capacity and associativity sweeps' base points — and cache
// state depends on the configuration from reference zero, so only
// identical configurations can share state. For each registered
// configuration requested more than once, the first replay runs the
// prefix [0, warmRefs), checkpoints the machine, publishes the snapshot
// and finishes its own suffix; later replays restore the checkpoint and
// replay only [warmRefs, n), skipping the shared prefix entirely.
//
// Concurrency: Replay never blocks waiting for another job's checkpoint —
// under the bounded worker pool that wait could deadlock (the producer's
// job may be queued behind the waiter). A job that finds the checkpoint
// still being computed replays cold instead; results are bit-identical
// either way (that is the checkpoint contract, pinned by
// TestCheckpointResume), so scheduling changes wall-clock only, never
// output.
type WarmCache struct {
	warmRefs int
	mu       sync.Mutex
	entries  map[warmKey]*warmEntry
}

type warmEntry struct {
	// expected counts registrations; snapshots are taken only for keys
	// expected more than once (a lone replay gains nothing and a
	// checkpoint costs a memory-image copy).
	expected int
	// remaining counts replays still to come; the snapshot is released
	// when it reaches zero so checkpoint memory is bounded by the live
	// duplicate groups, not the whole sweep.
	remaining int
	computing bool
	snap      *machine.Snapshot
}

// NewWarmCache makes a warm cache that checkpoints after warmRefs
// references of the trace it is used with. Callers register every replay
// they will request before the first Replay call.
func NewWarmCache(warmRefs int) *WarmCache {
	return &WarmCache{warmRefs: warmRefs, entries: map[warmKey]*warmEntry{}}
}

// Register announces an upcoming Replay with this configuration.
func (wc *WarmCache) Register(ccfg cache.Config, timing bus.Timing) {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	key := warmKey{ccfg, timing}
	e := wc.entries[key]
	if e == nil {
		e = &warmEntry{}
		wc.entries[key] = e
	}
	e.expected++
	e.remaining++
}

// Replay is ReplayConfig through the warm cache: configurations
// registered more than once share the warmed prefix. Safe for concurrent
// use by replay jobs.
func (wc *WarmCache) Replay(tr *trace.Trace, ccfg cache.Config, timing bus.Timing) (bus.Stats, cache.Stats, error) {
	key := warmKey{ccfg, timing}
	wc.mu.Lock()
	e := wc.entries[key]
	if e == nil || e.expected < 2 || wc.warmRefs <= 0 || wc.warmRefs >= tr.Len() {
		wc.mu.Unlock()
		return ReplayConfig(tr, ccfg, timing)
	}
	if e.snap != nil {
		snap := e.snap
		e.remaining--
		if e.remaining == 0 {
			e.snap = nil
		}
		wc.mu.Unlock()
		return replayFromSnapshot(tr, ccfg, timing, snap)
	}
	if e.computing {
		e.remaining--
		wc.mu.Unlock()
		return ReplayConfig(tr, ccfg, timing)
	}
	e.computing = true
	wc.mu.Unlock()

	m, ports := newReplayMachine(tr, ccfg, timing)
	if err := trace.ReplayRange(tr, ports, 0, wc.warmRefs); err != nil {
		return bus.Stats{}, cache.Stats{}, err
	}
	snap := m.Checkpoint()
	snap.RefsReplayed = wc.warmRefs
	wc.mu.Lock()
	e.remaining--
	if e.remaining > 0 {
		e.snap = snap
	}
	wc.mu.Unlock()
	if err := trace.ReplayRange(tr, ports, wc.warmRefs, tr.Len()); err != nil {
		return bus.Stats{}, cache.Stats{}, err
	}
	return m.BusStats(), m.CacheStats(), nil
}

// replayFromSnapshot resumes a replay from a warmed checkpoint.
func replayFromSnapshot(tr *trace.Trace, ccfg cache.Config, timing bus.Timing, snap *machine.Snapshot) (bus.Stats, cache.Stats, error) {
	m, ports := newReplayMachine(tr, ccfg, timing)
	if err := m.Restore(snap); err != nil {
		return bus.Stats{}, cache.Stats{}, err
	}
	if err := trace.ReplayRange(tr, ports, snap.RefsReplayed, tr.Len()); err != nil {
		return bus.Stats{}, cache.Stats{}, err
	}
	return m.BusStats(), m.CacheStats(), nil
}

// newReplayMachine builds the machine a replay of tr runs on, plus its
// ports.
func newReplayMachine(tr *trace.Trace, ccfg cache.Config, timing bus.Timing) (*machine.Machine, []mem.Accessor) {
	mcfg := machine.Config{PEs: tr.PEs, Layout: tr.Layout, Cache: ccfg, Timing: timing}
	m := machine.New(mcfg)
	ports := make([]mem.Accessor, tr.PEs)
	for i := range ports {
		ports[i] = m.Port(i)
	}
	return m, ports
}

// replayer routes a benchmark's replay jobs either cold (ReplayConfig) or
// through a shared WarmCache when Options.WarmedSweeps is set, and stamps
// Options.StatsOnly onto every job's configuration.
type replayer struct {
	warm      *WarmCache
	statsOnly bool
	metrics   *obs.Registry
}

// newReplayer builds the per-benchmark replayer: with warmed sweeps on it
// registers every replay configuration the sweep will request, so the
// warm cache knows which configurations recur and deserve a checkpoint.
// Registration applies the same StatsOnly stamp Replay does — warm keys
// are exact configuration matches, so the two must agree.
func (o Options) newReplayer(traceLen int) *replayer {
	r := &replayer{statsOnly: o.StatsOnly, metrics: o.Metrics}
	if !o.WarmedSweeps {
		return r
	}
	wc := NewWarmCache(traceLen / 2)
	for _, k := range o.replayKeys() {
		cfg := k.cfg
		if r.statsOnly {
			cfg.StatsOnly = true
		}
		wc.Register(cfg, k.timing)
	}
	r.warm = wc
	return r
}

// Replay dispatches one replay job.
func (r *replayer) Replay(tr *trace.Trace, ccfg cache.Config, timing bus.Timing) (bus.Stats, cache.Stats, error) {
	r.metrics.Counter("bench.replay.jobs").Inc()
	r.metrics.Counter("bench.replay.refs").Add(uint64(tr.Len()))
	if r.statsOnly {
		ccfg.StatsOnly = true
	}
	if r.warm != nil {
		return r.warm.Replay(tr, ccfg, timing)
	}
	return ReplayConfig(tr, ccfg, timing)
}

// replayKeys enumerates the (configuration, timing) of every replay job
// Collect issues per benchmark, in the serial path's order. It must stay
// in lockstep with collectSerial/submitReplayJobs; the warmed-determinism
// test would catch a drift as a cold (but still correct) replay, and the
// count is cross-checked against replayConsumers in tests.
func (o Options) replayKeys() []warmKey {
	var keys []warmKey
	dt := bus.DefaultTiming()
	for _, v := range OptVariants {
		keys = append(keys, warmKey{o.baseCache(v.Opts), dt})
	}
	if o.SkipSweeps {
		return keys
	}
	for _, bw := range o.BlockSizes {
		cfg := o.baseCache(cache.OptionsAll())
		cfg.BlockWords = bw
		keys = append(keys, warmKey{cfg, dt})
	}
	for _, size := range o.Capacities {
		cfg := o.baseCache(cache.OptionsAll())
		cfg.SizeWords = size
		keys = append(keys, warmKey{cfg, dt})
	}
	for _, ways := range o.Associativities {
		cfg := o.baseCache(cache.OptionsAll())
		cfg.Ways = ways
		keys = append(keys, warmKey{cfg, dt})
	}
	keys = append(keys, warmKey{o.baseCache(cache.OptionsAll()), bus.Timing{MemCycles: 8, WidthWords: 2}})
	ill := o.baseCache(cache.OptionsNone())
	ill.Protocol = cache.ProtocolIllinois
	keys = append(keys, warmKey{ill, dt})
	wt := o.baseCache(cache.OptionsNone())
	wt.Protocol = cache.ProtocolWriteThrough
	keys = append(keys, warmKey{wt, dt})
	for _, ap := range altProtocols() {
		cfg := o.baseCache(cache.OptionsNone())
		cfg.Protocol = ap
		keys = append(keys, warmKey{cfg, dt})
	}
	return keys
}
