package bench

import (
	"strings"
	"testing"

	"pimcache/internal/bench/programs"
	"pimcache/internal/bus"
	"pimcache/internal/cache"
)

// collectPuzzle gathers a one-benchmark dataset once (small but complete:
// sweeps included, reduced ranges).
var puzzleData *Data

func dataset(t *testing.T) *Data {
	t.Helper()
	if puzzleData != nil {
		return puzzleData
	}
	o := Options{
		Quick:      true,
		PEs:        4,
		PESweep:    []int{1, 2, 4},
		BlockSizes: []int{2, 4, 8},
		Capacities: []int{512, 2 << 10, 8 << 10},
		Benchmarks: []string{"Puzzle"},
	}
	d, err := Collect(o)
	if err != nil {
		t.Fatal(err)
	}
	puzzleData = d
	return d
}

func TestCollectStructure(t *testing.T) {
	d := dataset(t)
	if len(d.Benches) != 1 || d.Benches[0].Name != "Puzzle" {
		t.Fatalf("benches %+v", d.Benches)
	}
	bd := d.Benches[0]
	for _, pes := range []int{1, 2, 4} {
		if bd.LiveByPEs[pes] == nil {
			t.Errorf("missing live run for %d PEs", pes)
		}
	}
	for _, v := range OptVariants {
		if _, ok := bd.OptBus[v.Name]; !ok {
			t.Errorf("missing replay %s", v.Name)
		}
	}
	if len(bd.BlockSweep) != 3 || len(bd.CapSweep) != 3 {
		t.Errorf("sweep lengths %d/%d", len(bd.BlockSweep), len(bd.CapSweep))
	}
	if bd.Width2.TotalCycles == 0 || bd.Illinois.TotalCycles == 0 {
		t.Error("extras missing")
	}
}

func TestTable4Invariants(t *testing.T) {
	d := dataset(t)
	bd := d.Benches[0]
	none := bd.OptBus["None"].TotalCycles
	all := bd.OptBus["All"].TotalCycles
	if all >= none {
		t.Errorf("All (%d) did not beat None (%d)", all, none)
	}
	// Each single-site optimization can only help.
	for _, v := range OptVariants[1:4] {
		if bd.OptBus[v.Name].TotalCycles > none {
			t.Errorf("%s increased traffic: %d > %d", v.Name, bd.OptBus[v.Name].TotalCycles, none)
		}
	}
	tab := Table4(d)
	if tab.Rows[0].Cells[0] != "1.00" {
		t.Errorf("None column = %s, want 1.00", tab.Rows[0].Cells[0])
	}
}

func TestTablesRender(t *testing.T) {
	d := dataset(t)
	for name, s := range map[string]string{
		"t1": Table1(d).String(),
		"t2": Table2(d).String(),
		"t3": Table3(d).String(),
		"t4": Table4(d).String(),
		"t5": Table5(d).String(),
	} {
		if !strings.Contains(s, "Puzzle") {
			t.Errorf("%s missing benchmark row:\n%s", name, s)
		}
	}
	if !strings.Contains(Table1(d).String(), "su") {
		t.Error("table 1 missing speedup column")
	}
}

func TestFiguresRender(t *testing.T) {
	d := dataset(t)
	m1, t1 := Figure1(d)
	if len(m1.Points) != 3 || len(t1.Points) != 3 {
		t.Errorf("figure 1 points %d/%d", len(m1.Points), len(t1.Points))
	}
	m2, t2 := Figure2(d)
	if len(m2.Points) != 3 || len(t2.Points) != 3 {
		t.Errorf("figure 2 points %d/%d", len(m2.Points), len(t2.Points))
	}
	// Capacity sweep: bigger caches never increase traffic.
	prev := uint64(1 << 62)
	for _, p := range d.Benches[0].CapSweep {
		if p.BusCycles > prev {
			t.Errorf("capacity %d increased traffic: %d > %d", p.Param, p.BusCycles, prev)
		}
		prev = p.BusCycles
	}
	tr, sh := Figure3(d)
	if len(tr.Points) != 3 || len(sh.Rows) != 3 {
		t.Errorf("figure 3 %d/%d", len(tr.Points), len(sh.Rows))
	}
	for _, s := range []string{ExtraBusWidth(d).String(), ExtraOptDetail(d).String(), ExtraIllinois(d).String()} {
		if !strings.Contains(s, "Puzzle") {
			t.Error("extra table missing benchmark")
		}
	}
}

func TestWidth2WithinPaperBandDirection(t *testing.T) {
	d := dataset(t)
	bd := d.Benches[0]
	ratio := float64(bd.Width2.TotalCycles) / float64(bd.OptBus["All"].TotalCycles)
	if ratio >= 1 || ratio < 0.4 {
		t.Errorf("two-word bus ratio %.2f implausible", ratio)
	}
}

func TestIllinoisMemBusyHigher(t *testing.T) {
	d := dataset(t)
	bd := d.Benches[0]
	if bd.Illinois.MemBusyCycles <= bd.OptBus["None"].MemBusyCycles {
		t.Errorf("Illinois mem busy %d not above PIM %d",
			bd.Illinois.MemBusyCycles, bd.OptBus["None"].MemBusyCycles)
	}
}

func TestScaleFor(t *testing.T) {
	b, _ := programs.ByName("Tri")
	if (Options{Quick: false}).ScaleFor(b) != b.DefaultScale {
		t.Error("full scale wrong")
	}
	if (Options{Quick: true}).ScaleFor(b) != quickScales["Tri"] {
		t.Error("quick scale wrong")
	}
}

func TestRunLiveDetectsWrongAnswer(t *testing.T) {
	b, _ := programs.ByName("Puzzle")
	bad := b
	bad.Expected = func(int) string { return "not-the-answer\n" }
	if _, _, err := RunLive(bad, bad.SmallScale, 1, BaseCache(cache.OptionsAll()), false); err == nil {
		t.Error("wrong answer not detected")
	}
}

func TestReplayConfigMatchesLive(t *testing.T) {
	b, _ := programs.ByName("Pascal")
	live, tr, err := RunLive(b, 3, 2, BaseCache(cache.OptionsAll()), true)
	if err != nil {
		t.Fatal(err)
	}
	bs, _, err := ReplayConfig(tr, BaseCache(cache.OptionsAll()), bus.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	if bs.TotalCycles != live.Bus.TotalCycles {
		t.Errorf("replay %d != live %d", bs.TotalCycles, live.Bus.TotalCycles)
	}
}

func TestCollectRejectsMissingPEs(t *testing.T) {
	o := Options{PEs: 8, PESweep: []int{1, 2}, SkipSweeps: true,
		Quick: true, Benchmarks: []string{"Pascal"}}
	if _, err := Collect(o); err == nil {
		t.Error("PESweep without PEs accepted")
	}
}

// TestCollectParallelDeterminism is the parallel evaluation engine's
// regression oracle: a Collect with Jobs=8 must render every table and
// figure byte-identically to the serial Jobs=1 run. The workload is small
// (Puzzle at its smallest scale) but exercises the full job graph — live
// PE sweep, all five optimization replays, block/capacity/way sweeps, and
// the two-word-bus, Illinois and write-through extras.
func TestCollectParallelDeterminism(t *testing.T) {
	// Run Puzzle at its tiny scale: the test cares about assembly order,
	// not statistics.
	old := quickScales["Puzzle"]
	quickScales["Puzzle"] = 2
	defer func() { quickScales["Puzzle"] = old }()

	o := Options{
		Quick:           true,
		PEs:             2,
		PESweep:         []int{1, 2},
		BlockSizes:      []int{2, 4},
		Capacities:      []int{512, 2 << 10},
		Associativities: []int{1, 4},
		Benchmarks:      []string{"Puzzle"},
	}
	o.Jobs = 1
	serial, err := Collect(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Jobs = 8
	parallel, err := Collect(o)
	if err != nil {
		t.Fatal(err)
	}
	got, want := RenderAll(parallel), RenderAll(serial)
	if got != want {
		t.Errorf("parallel run is not byte-identical to serial run\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
	}
	if len(want) == 0 {
		t.Error("rendered evaluation is empty")
	}
}

// TestCollectParallelPropagatesError: a failing job must surface its error
// from Collect rather than hang or panic the pool.
func TestCollectParallelPropagatesError(t *testing.T) {
	o := Options{
		Quick: true, PEs: 8, PESweep: []int{1, 2}, SkipSweeps: true,
		Benchmarks: []string{"Pascal"}, Jobs: 4,
	}
	if _, err := Collect(o); err == nil {
		t.Error("PESweep without PEs accepted by parallel path")
	}
}
