package bench

import (
	"testing"

	"pimcache/internal/bench/programs"
	"pimcache/internal/cache"
)

// TestEveryProtocolLiveVerifyDW runs the Tri benchmark end-to-end on the
// real machine under every registered coherence protocol, with the DW
// software contract checked on every applied direct write and the answer
// checked against the Go reference implementation. It is the
// live-machine twin of internal/check's recycle wish: mem.FreeList's
// record recycling is exactly the pattern that broke the write-update
// protocols' DW (a remote copy kept alive by UP refreshes survived into
// the silent exclusive install and went permanently stale), and neither
// the facade registry smoke test (no recycling) nor replay-based
// benchmarks (no data plane checks) can see that class of bug.
func TestEveryProtocolLiveVerifyDW(t *testing.T) {
	b, ok := programs.ByName("Tri")
	if !ok {
		t.Fatal("Tri benchmark missing")
	}
	for _, p := range cache.Protocols() {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			t.Parallel()
			cfg := BaseCache(cache.OptionsAll())
			cfg.Protocol = p.ID()
			cfg.VerifyDW = true
			if _, _, err := RunLive(b, b.SmallScale, 8, cfg, false); err != nil {
				t.Fatalf("%s live run: %v", p.Name(), err)
			}
		})
	}
}
