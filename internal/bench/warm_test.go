package bench

import (
	"testing"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/synth"
)

// warmTestOptions builds a sweep whose base configuration recurs four
// times (Table 4 "All", block=4, capacity=4096, ways=4), so the warm
// cache has a real duplicate group to checkpoint for.
func warmTestOptions(jobs int, warmed bool) Options {
	return Options{
		Quick:           true,
		PEs:             2,
		PESweep:         []int{1, 2},
		BlockSizes:      []int{2, 4},
		Capacities:      []int{512, 4 << 10},
		Associativities: []int{1, 4},
		Benchmarks:      []string{"Pascal"},
		Jobs:            jobs,
		WarmedSweeps:    warmed,
	}
}

// TestCollectWarmedDeterminism is the warmed-sweep oracle: a sweep using
// warmed checkpoints must render byte-identical tables to a cold sweep,
// on both the serial and the parallel path.
func TestCollectWarmedDeterminism(t *testing.T) {
	cold, err := Collect(warmTestOptions(1, false))
	if err != nil {
		t.Fatal(err)
	}
	want := RenderAll(cold)
	if len(want) == 0 {
		t.Fatal("rendered evaluation is empty")
	}
	for _, jobs := range []int{1, 8} {
		warm, err := Collect(warmTestOptions(jobs, true))
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if got := RenderAll(warm); got != want {
			t.Errorf("jobs=%d: warmed sweep is not byte-identical to cold sweep\n--- cold ---\n%s\n--- warmed ---\n%s",
				jobs, want, got)
		}
	}
}

// TestReplayKeysMatchConsumers pins the lockstep between replayKeys (what
// the warm cache registers) and replayConsumers (how many replay jobs the
// parallel path submits): a drift would make warmed parallel sweeps leak
// or starve checkpoints.
func TestReplayKeysMatchConsumers(t *testing.T) {
	for _, o := range []Options{
		warmTestOptions(1, true),
		{SkipSweeps: true},
		DefaultOptions(),
	} {
		if got, want := len(o.replayKeys()), replayConsumers(o); got != want {
			t.Errorf("options %+v: %d replay keys, %d consumers", o, got, want)
		}
	}
}

// TestWarmCacheSharesPrefix checks the warm path end to end without the
// Collect harness: two registered replays of one configuration — the
// second restoring the first's checkpoint — must match a cold replay
// exactly.
func TestWarmCacheSharesPrefix(t *testing.T) {
	c := synth.DefaultConfig()
	c.PEs = 4
	c.Events = 20_000
	tr := synth.ORParallel(c)
	ccfg := cache.DefaultConfig()
	ccfg.Options = cache.OptionsAll()

	wantBus, wantCache, err := ReplayConfig(tr, ccfg, bus.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	wc := NewWarmCache(tr.Len() / 2)
	wc.Register(ccfg, bus.DefaultTiming())
	wc.Register(ccfg, bus.DefaultTiming())
	for i := 0; i < 2; i++ {
		gotBus, gotCache, err := wc.Replay(tr, ccfg, bus.DefaultTiming())
		if err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
		if gotBus != wantBus || gotCache != wantCache {
			t.Errorf("replay %d: warmed stats diverged from cold replay", i)
		}
	}
	// The second replay consumed the checkpoint: the entry must have
	// released it.
	wc.mu.Lock()
	e := wc.entries[warmKey{ccfg, bus.DefaultTiming()}]
	wc.mu.Unlock()
	if e.snap != nil {
		t.Error("checkpoint not released after its last consumer")
	}
	if e.remaining != 0 {
		t.Errorf("remaining = %d after all registered replays ran", e.remaining)
	}
}
