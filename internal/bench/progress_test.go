package bench

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// callWriter records every individual Write call it receives.
type callWriter struct {
	mu    sync.Mutex
	calls []string
}

func (w *callWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.calls = append(w.calls, string(p))
	return len(p), nil
}

// TestProgressLogLineAtomic races many writers against one progressLog and
// checks that every Write call the underlying writer sees is exactly one
// complete labeled line — the property that keeps -v output readable when
// jobs log concurrently.
func TestProgressLogLineAtomic(t *testing.T) {
	const writers, lines = 8, 50
	w := &callWriter{}
	pw := newProgressLog(w)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < lines; i++ {
				pw.Printf(fmt.Sprintf("job%d", g), "step %d of %d", i, lines)
			}
		}(g)
	}
	wg.Wait()
	if len(w.calls) != writers*lines {
		t.Fatalf("got %d Write calls, want %d", len(w.calls), writers*lines)
	}
	for _, c := range w.calls {
		if !strings.HasSuffix(c, "\n") || strings.Count(c, "\n") != 1 {
			t.Fatalf("write is not one complete line: %q", c)
		}
		if !strings.HasPrefix(c, "job") || !strings.Contains(c, ": step ") {
			t.Fatalf("line lost its label: %q", c)
		}
	}
}

// TestProgressLogNilSafe: a nil writer (progress disabled) must be a
// no-op, and so must a nil receiver.
func TestProgressLogNilSafe(t *testing.T) {
	newProgressLog(nil).Printf("x", "dropped")
	var pw *progressLog
	pw.Printf("x", "dropped")
}
