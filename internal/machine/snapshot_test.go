package machine_test

import (
	"bytes"
	"testing"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/machine"
	"pimcache/internal/mem"
	"pimcache/internal/probe"
	"pimcache/internal/synth"
	"pimcache/internal/trace"
)

// checkpointWorkload is a lock-heavy multi-PE stream small enough to
// replay many times but large enough to exercise evictions, snoops,
// busy-waits and every optimized command.
func checkpointWorkload() *trace.Trace {
	c := synth.DefaultConfig()
	c.PEs = 4
	c.Events = 30_000
	return synth.ORParallel(c)
}

func replayMachine(tr *trace.Trace, ccfg cache.Config) (*machine.Machine, []mem.Accessor) {
	m := machine.New(machine.Config{
		PEs: tr.PEs, Layout: tr.Layout, Cache: ccfg, Timing: bus.DefaultTiming(),
	})
	ports := make([]mem.Accessor, tr.PEs)
	for i := range ports {
		ports[i] = m.Port(i)
	}
	return m, ports
}

// TestCheckpointResume pins the checkpoint contract: restoring a
// mid-replay snapshot into a fresh machine and replaying the remaining
// references produces bit-identical bus statistics, per-PE cache
// statistics and probe event streams versus the uninterrupted replay —
// for all three protocols, and across a gob encode/decode of the
// snapshot.
func TestCheckpointResume(t *testing.T) {
	tr := checkpointWorkload()
	k := tr.Len() / 3
	for _, proto := range []cache.Protocol{
		cache.ProtocolPIM, cache.ProtocolIllinois, cache.ProtocolWriteThrough,
	} {
		t.Run(proto.String(), func(t *testing.T) {
			ccfg := cache.DefaultConfig()
			ccfg.Options = cache.OptionsAll()
			ccfg.Protocol = proto

			// Uninterrupted reference run.
			ref, refPorts := replayMachine(tr, ccfg)
			refProbe := &probe.Buffer{}
			ref.SetProbe(refProbe)
			if err := trace.Replay(tr, refPorts); err != nil {
				t.Fatal(err)
			}

			// Interrupted run: replay [0, k), checkpoint, serialize,
			// restore into a fresh machine, replay [k, n).
			a, aPorts := replayMachine(tr, ccfg)
			aProbe := &probe.Buffer{}
			a.SetProbe(aProbe)
			if err := trace.ReplayRange(tr, aPorts, 0, k); err != nil {
				t.Fatal(err)
			}
			snap := a.Checkpoint()
			snap.RefsReplayed = k

			var buf bytes.Buffer
			if err := snap.Encode(&buf); err != nil {
				t.Fatalf("encode: %v", err)
			}
			decoded, err := machine.DecodeSnapshot(&buf)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if decoded.RefsReplayed != k {
				t.Fatalf("decoded RefsReplayed = %d, want %d", decoded.RefsReplayed, k)
			}

			b, bPorts := replayMachine(tr, ccfg)
			bProbe := &probe.Buffer{}
			b.SetProbe(bProbe)
			if err := b.Restore(decoded); err != nil {
				t.Fatalf("restore: %v", err)
			}
			if err := trace.ReplayRange(tr, bPorts, decoded.RefsReplayed, tr.Len()); err != nil {
				t.Fatal(err)
			}

			if got, want := b.BusStats(), ref.BusStats(); got != want {
				t.Errorf("bus stats diverged:\nresumed %+v\nuninterrupted %+v", got, want)
			}
			for pe := 0; pe < tr.PEs; pe++ {
				if got, want := b.Cache(pe).Stats(), ref.Cache(pe).Stats(); got != want {
					t.Errorf("PE %d cache stats diverged", pe)
				}
			}

			events := append(append([]probe.Event(nil), aProbe.Events...), bProbe.Events...)
			if len(events) != len(refProbe.Events) {
				t.Fatalf("probe stream length %d, want %d", len(events), len(refProbe.Events))
			}
			for i := range events {
				if events[i] != refProbe.Events[i] {
					t.Fatalf("probe event %d diverged:\nresumed %+v\nuninterrupted %+v",
						i, events[i], refProbe.Events[i])
				}
			}
		})
	}
}

// TestRestoreRejectsMismatch: restoring into a differently configured
// machine must fail loudly, not misinterpret plane geometry.
func TestRestoreRejectsMismatch(t *testing.T) {
	tr := checkpointWorkload()
	ccfg := cache.DefaultConfig()
	m, ports := replayMachine(tr, ccfg)
	if err := trace.ReplayRange(tr, ports, 0, 1000); err != nil {
		t.Fatal(err)
	}
	snap := m.Checkpoint()

	other := cache.DefaultConfig()
	other.SizeWords = 2 << 10
	n, _ := replayMachine(tr, other)
	if err := n.Restore(snap); err == nil {
		t.Error("restore into mismatched cache geometry succeeded")
	}
}
