package machine_test

import (
	"bytes"
	"encoding/gob"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/chaos"
	"pimcache/internal/machine"
	"pimcache/internal/safeio"
	"pimcache/internal/trace"
)

// formatSnapshot builds a small real snapshot for format tests.
func formatSnapshot(t *testing.T) *machine.Snapshot {
	t.Helper()
	tr := checkpointWorkload()
	ccfg := cache.DefaultConfig()
	m, ports := replayMachine(tr, ccfg)
	if err := trace.ReplayRange(tr, ports, 0, 2000); err != nil {
		t.Fatal(err)
	}
	snap := m.Checkpoint()
	snap.RefsReplayed = 2000
	return snap
}

// restoreOK round-trips snap through a decode and a Restore into a
// fresh machine, failing the test on any mismatch.
func restoreOK(t *testing.T, snap *machine.Snapshot, raw []byte) {
	t.Helper()
	got, err := machine.DecodeSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.RefsReplayed != snap.RefsReplayed || got.Steps != snap.Steps || got.Config != snap.Config {
		t.Fatalf("decoded snapshot differs: %d/%d refs, %d/%d steps",
			got.RefsReplayed, snap.RefsReplayed, got.Steps, snap.Steps)
	}
	m := machine.New(machine.Config{
		PEs: snap.Config.PEs, Layout: snap.Config.Layout,
		Cache: snap.Config.Cache, Timing: bus.DefaultTiming(),
	})
	if err := m.Restore(got); err != nil {
		t.Fatalf("restore decoded snapshot: %v", err)
	}
}

// TestSnapshotV1StillReadable pins backward compatibility: a legacy
// PIMCKPT1 stream (magic + bare gob) still decodes.
func TestSnapshotV1StillReadable(t *testing.T) {
	snap := formatSnapshot(t)
	var buf bytes.Buffer
	buf.WriteString("PIMCKPT1\n")
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
	restoreOK(t, snap, buf.Bytes())
}

// TestSnapshotV2DetectsCorruption pins the integrity frame: any
// flipped payload bit, torn tail or mangled length fails with a
// labeled error instead of reaching gob.
func TestSnapshotV2DetectsCorruption(t *testing.T) {
	snap := formatSnapshot(t)
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if !bytes.HasPrefix(raw, []byte(machine.SnapshotMagic)) {
		t.Fatalf("Encode wrote magic %q, want %q", raw[:9], machine.SnapshotMagic)
	}
	restoreOK(t, snap, raw)

	for _, off := range []int{len(machine.SnapshotMagic) + 12, len(raw) / 2, len(raw) - 1} {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x20
		if _, err := machine.DecodeSnapshot(bytes.NewReader(bad)); err == nil ||
			!strings.Contains(err.Error(), "checksum mismatch") {
			t.Errorf("bit flip at %d: %v, want checksum mismatch", off, err)
		}
	}

	torn := raw[:len(raw)-37]
	if _, err := machine.DecodeSnapshot(bytes.NewReader(torn)); err == nil ||
		!strings.Contains(err.Error(), "torn") {
		t.Errorf("torn payload: %v, want torn error", err)
	}

	tornFrame := raw[:len(machine.SnapshotMagic)+5]
	if _, err := machine.DecodeSnapshot(bytes.NewReader(tornFrame)); err == nil ||
		!strings.Contains(err.Error(), "torn") {
		t.Errorf("torn frame: %v, want torn error", err)
	}

	hugeLen := append([]byte(nil), raw...)
	for i := 0; i < 8; i++ {
		hugeLen[len(machine.SnapshotMagic)+i] = 0xFF
	}
	if _, err := machine.DecodeSnapshot(bytes.NewReader(hugeLen)); err == nil ||
		!strings.Contains(err.Error(), "payload length") {
		t.Errorf("huge length: %v, want length error", err)
	}
}

// TestSnapshotWriteFileAtomic pins the crash-safety contract of the
// checkpoint file: a write that dies mid-stream leaves the previous
// checkpoint byte-identical and decodable.
func TestSnapshotWriteFileAtomic(t *testing.T) {
	snap := formatSnapshot(t)
	path := filepath.Join(t.TempDir(), "resume.ckpt")
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := machine.ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.RefsReplayed != snap.RefsReplayed {
		t.Fatalf("round trip lost RefsReplayed: %d != %d", got.RefsReplayed, snap.RefsReplayed)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A later checkpoint write that tears must not damage this one.
	snap2 := formatSnapshot(t)
	snap2.RefsReplayed = 9999
	err = writeSnapshotTorn(path, snap2)
	if err == nil {
		t.Fatal("torn write reported success")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("torn checkpoint write damaged the previous checkpoint")
	}
	if got, err := machine.ReadSnapshotFile(path); err != nil || got.RefsReplayed != snap.RefsReplayed {
		t.Fatalf("previous checkpoint unreadable after torn write: %v", err)
	}
}

// writeSnapshotTorn simulates a crash mid-checkpoint-write using the
// chaos writer inside the same atomic-write seam WriteFile uses.
func writeSnapshotTorn(path string, snap *machine.Snapshot) error {
	var full bytes.Buffer
	if err := snap.Encode(&full); err != nil {
		return err
	}
	tear := chaos.Fault{Kind: chaos.TornWrite, Offset: int64(full.Len() / 2)}
	return safeio.WriteFile(path, func(w io.Writer) error {
		return snap.Encode(chaos.NewWriter(w, tear))
	})
}
