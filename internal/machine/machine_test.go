package machine

import (
	"testing"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/kl1/word"
	"pimcache/internal/mem"
)

func smallConfig(pes int) Config {
	return Config{
		PEs:    pes,
		Layout: mem.Layout{InstWords: 64, HeapWords: 1024, GoalWords: 256, SuspWords: 64, CommWords: 64},
		Cache: cache.Config{
			SizeWords: 64, BlockWords: 4, Ways: 4, LockEntries: 4,
			Options: cache.OptionsAll(),
		},
		Timing: bus.DefaultTiming(),
	}
}

// scriptProc runs a fixed list of closures, one per step.
type scriptProc struct {
	steps []func()
	pos   int
	fail  bool
}

func (p *scriptProc) Step() Status {
	if p.fail {
		return StatusFailed
	}
	if p.pos >= len(p.steps) {
		return StatusHalted
	}
	p.steps[p.pos]()
	p.pos++
	return StatusRunning
}

func TestRunRoundRobinInterleaves(t *testing.T) {
	m := New(smallConfig(2))
	var order []int
	m.Attach(0, &scriptProc{steps: []func(){
		func() { order = append(order, 0) },
		func() { order = append(order, 0) },
	}})
	m.Attach(1, &scriptProc{steps: []func(){
		func() { order = append(order, 1) },
		func() { order = append(order, 1) },
	}})
	res := m.Run(0)
	if res.Failed || res.HitStepLimit {
		t.Fatalf("result %+v", res)
	}
	want := []int{0, 1, 0, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
	// Steps counts the two halting steps too.
	if res.Steps != 6 {
		t.Errorf("steps = %d, want 6", res.Steps)
	}
}

func TestRunFailureAborts(t *testing.T) {
	m := New(smallConfig(2))
	m.Attach(0, &scriptProc{fail: true})
	m.Attach(1, &scriptProc{steps: []func(){func() {}}})
	res := m.Run(0)
	if !res.Failed {
		t.Error("failure not reported")
	}
}

func TestRunStepLimit(t *testing.T) {
	m := New(smallConfig(1))
	forever := &scriptProc{}
	forever.steps = []func(){func() { forever.pos = -1 }} // loop forever
	m.Attach(0, forever)
	res := m.Run(10)
	if !res.HitStepLimit || res.Steps != 10 {
		t.Errorf("result %+v", res)
	}
}

func TestRunSkipsBusyWaitingPE(t *testing.T) {
	m := New(smallConfig(2))
	a := m.Memory().Bounds().HeapBase
	p0steps := 0
	// PE0 locks a, runs a while, unlocks.
	m.Attach(0, &scriptProc{steps: []func(){
		func() { m.Port(0).LockRead(a); p0steps++ },
		func() { p0steps++ },
		func() { m.Port(0).UnlockWrite(a, word.Int(7)); p0steps++ },
	}})
	// PE1 tries to lock a; its first attempt busy-waits, the machine
	// skips it until the UL arrives, then it retries successfully.
	got := word.Word(0)
	var p1 *scriptProc
	p1 = &scriptProc{steps: []func(){
		func() {
			w, ok := m.Port(1).LockRead(a)
			if !ok {
				p1.pos-- // retry this step when unblocked
				return
			}
			got = w
			m.Port(1).Unlock(a)
		},
	}}
	m.Attach(1, p1)
	res := m.Run(100)
	if res.Failed || res.HitStepLimit {
		t.Fatalf("result %+v", res)
	}
	if got.IntVal() != 7 {
		t.Errorf("PE1 read %v, want 7", got)
	}
	if m.Cache(1).Stats().BusyWaits == 0 {
		t.Error("no busy wait recorded")
	}
}

func TestRunDeadlockPanics(t *testing.T) {
	m := New(smallConfig(2))
	a := m.Memory().Bounds().HeapBase
	// PE0 takes the lock and then never unlocks; PE1 waits forever. When
	// PE0 halts, only the blocked PE1 remains: deadlock.
	m.Attach(0, &scriptProc{steps: []func(){
		func() { m.Port(0).LockRead(a) },
	}})
	var p1 *scriptProc
	p1 = &scriptProc{steps: []func(){
		func() {
			if _, ok := m.Port(1).LockRead(a); !ok {
				p1.pos--
			}
		},
	}}
	m.Attach(1, p1)
	defer func() {
		if recover() == nil {
			t.Error("deadlock did not panic")
		}
	}()
	m.Run(0)
}

func TestRunMissingProcessorPanics(t *testing.T) {
	m := New(smallConfig(2))
	m.Attach(0, &scriptProc{})
	defer func() {
		if recover() == nil {
			t.Error("missing processor did not panic")
		}
	}()
	m.Run(0)
}

func TestFlushAllAndVerifyCoherence(t *testing.T) {
	m := New(smallConfig(2))
	a := m.Memory().Bounds().HeapBase
	m.Attach(0, &scriptProc{steps: []func(){
		func() { m.Port(0).Write(a, word.Int(5)) },
	}})
	m.Attach(1, &scriptProc{steps: []func(){
		func() { _ = m.Port(1).Read(a) },
	}})
	m.Run(0)
	if err := m.VerifyCoherence([]word.Addr{a}); err != nil {
		t.Fatalf("coherence: %v", err)
	}
	m.FlushAll()
	if m.Memory().Read(a).IntVal() != 5 {
		t.Error("flush lost data")
	}
}

func TestStatsAggregation(t *testing.T) {
	m := New(smallConfig(2))
	a := m.Memory().Bounds().HeapBase
	m.Attach(0, &scriptProc{steps: []func(){
		func() { m.Port(0).Write(a, word.Int(1)) },
	}})
	m.Attach(1, &scriptProc{steps: []func(){
		func() { _ = m.Port(1).Read(a + 64) },
	}})
	m.Run(0)
	cs := m.CacheStats()
	if cs.RefsByOp(cache.OpW) != 1 || cs.RefsByOp(cache.OpR) != 1 {
		t.Errorf("aggregated refs: W=%d R=%d", cs.RefsByOp(cache.OpW), cs.RefsByOp(cache.OpR))
	}
	if m.BusStats().TotalCycles == 0 {
		t.Error("no bus cycles accounted")
	}
	m.ResetStats()
	after := m.CacheStats()
	if m.BusStats().TotalCycles != 0 || after.TotalRefs() != 0 {
		t.Error("reset incomplete")
	}
}

func TestDefaultConfigIsPaperBase(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.PEs != 8 || cfg.Cache.SizeWords != 4<<10 || cfg.Cache.BlockWords != 4 ||
		cfg.Cache.Ways != 4 || cfg.Timing.MemCycles != 8 || cfg.Timing.WidthWords != 1 {
		t.Errorf("default config deviates from the paper: %+v", cfg)
	}
}
