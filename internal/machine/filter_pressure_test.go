package machine

import (
	"fmt"
	"testing"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/kl1/word"
	"pimcache/internal/mem"
	"pimcache/internal/synth"
	"pimcache/internal/trace"
)

// smallSynthLayout keeps the synthetic streams inside a footprint a few
// hundred times the cache size, maximizing conflict misses in the tiny
// direct-mapped caches below.
func smallSynthLayout() mem.Layout {
	return mem.Layout{InstWords: 1 << 10, HeapWords: 16 << 10,
		GoalWords: 4 << 10, SuspWords: 1 << 10, CommWords: 1 << 10}
}

// applyRef drives one recorded reference through its PE's cache.
func applyRef(c *cache.Cache, r trace.Ref) error {
	switch r.Op {
	case cache.OpR:
		c.Read(r.Addr)
	case cache.OpW:
		c.Write(r.Addr, 0)
	case cache.OpLR:
		if _, ok := c.LockRead(r.Addr); !ok {
			return fmt.Errorf("LR %#x blocked", r.Addr)
		}
	case cache.OpUW:
		c.UnlockWrite(r.Addr, 0)
	case cache.OpU:
		c.Unlock(r.Addr)
	case cache.OpDW:
		c.DirectWrite(r.Addr, 0)
	case cache.OpER:
		c.ExclusiveRead(r.Addr)
	case cache.OpRP:
		c.ReadPurge(r.Addr)
	case cache.OpRI:
		c.ReadInvalidate(r.Addr)
	default:
		return fmt.Errorf("unknown op %d", r.Op)
	}
	return nil
}

// TestFilterBookkeepingUnderEvictionPressure replays conflict-heavy
// synthetic streams through tiny direct-mapped caches and cross-checks
// the bus presence filter against the unfiltered scan after every single
// operation: the holder mask of the touched block must always equal the
// ground-truth poll of every cache, and the per-PE lock counts must
// always equal each lock directory's in-use count. A periodic full sweep
// covers blocks evicted as conflict victims (which the touched-block
// check alone would miss going stale).
func TestFilterBookkeepingUnderEvictionPressure(t *testing.T) {
	sc := synth.Config{
		Layout: smallSynthLayout(),
		PEs:    8,
		Events: 40_000,
		Seed:   7,
	}
	if testing.Short() {
		sc.Events = 8_000
	}
	streams := []struct {
		name string
		gen  func(synth.Config) *trace.Trace
	}{
		{"ORParallel", synth.ORParallel},
		{"MessageRing", synth.MessageRing},
		{"SeqProlog", func(c synth.Config) *trace.Trace { c.PEs = 1; return synth.SeqProlog(c) }},
	}
	for _, s := range streams {
		s := s
		t.Run(s.name, func(t *testing.T) {
			t.Parallel()
			tr := s.gen(sc)
			m := New(Config{
				PEs:    sc.PEs,
				Layout: sc.Layout,
				Cache: cache.Config{
					SizeWords: 64, BlockWords: 4, Ways: 1, LockEntries: 4,
					Options: cache.OptionsAll(), VerifyDW: true,
				},
				Timing: bus.DefaultTiming(),
			})
			b := m.Bus()
			bases := map[word.Addr]struct{}{}
			for i, ref := range tr.Refs {
				if err := applyRef(m.Cache(int(ref.PE)), ref); err != nil {
					t.Fatalf("ref %d: %v", i, err)
				}
				base := ref.Addr &^ 3
				bases[base] = struct{}{}
				if got, want := b.HolderMask(base), b.ScanHolders(base); got != want {
					t.Fatalf("ref %d (%v %#x): HolderMask = %b, ScanHolders = %b",
						i, ref.Op, ref.Addr, got, want)
				}
				total := 0
				for pe := 0; pe < sc.PEs; pe++ {
					inUse := m.Cache(pe).LocksInUse()
					if got := b.LockCount(pe); got != inUse {
						t.Fatalf("ref %d: PE %d lock count %d, directory holds %d", i, pe, got, inUse)
					}
					total += inUse
				}
				if got := b.TotalLockCount(); got != total {
					t.Fatalf("ref %d: total lock count %d, directories hold %d", i, got, total)
				}
				// Conflict evictions drop blocks other than the touched
				// one; sweep every block the stream has ever referenced.
				if i%512 == 511 || i == len(tr.Refs)-1 {
					for bb := range bases {
						if got, want := b.HolderMask(bb), b.ScanHolders(bb); got != want {
							t.Fatalf("ref %d: sweep: HolderMask(%#x) = %b, ScanHolders = %b",
								i, bb, got, want)
						}
					}
				}
			}

			// The filters-off twin must land on identical statistics.
			twin := New(Config{
				PEs:    sc.PEs,
				Layout: sc.Layout,
				Cache: cache.Config{
					SizeWords: 64, BlockWords: 4, Ways: 1, LockEntries: 4,
					Options: cache.OptionsAll(), VerifyDW: true,
					DisableBusFilters: true,
				},
				Timing: bus.DefaultTiming(),
			})
			for i, ref := range tr.Refs {
				if err := applyRef(twin.Cache(int(ref.PE)), ref); err != nil {
					t.Fatalf("twin ref %d: %v", i, err)
				}
			}
			if m.BusStats() != twin.BusStats() {
				t.Errorf("bus stats diverge under eviction pressure\nfiltered:   %+v\nunfiltered: %+v",
					m.BusStats(), twin.BusStats())
			}
			if m.CacheStats() != twin.CacheStats() {
				t.Errorf("cache stats diverge under eviction pressure\nfiltered:   %+v\nunfiltered: %+v",
					m.CacheStats(), twin.CacheStats())
			}
		})
	}
}
