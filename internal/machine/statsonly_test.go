package machine

import (
	"bytes"
	"strings"
	"testing"

	"pimcache/internal/cache"
	"pimcache/internal/mem"
	"pimcache/internal/synth"
	"pimcache/internal/trace"
)

// statsOnlyConfig is the default machine with the data plane removed.
func statsOnlyConfig(pes int, layout mem.Layout) Config {
	cfg := DefaultConfig()
	cfg.PEs = pes
	cfg.Layout = layout
	cfg.Cache.StatsOnly = true
	return cfg
}

// nopProc satisfies Processor for the Run guard test.
type nopProc struct{}

func (nopProc) Step() Status { return StatusHalted }

// TestStatsOnlyRunRefused pins the guard: Run on a stats-only machine
// must panic with a message naming the cause, since live execution would
// silently read zeros.
func TestStatsOnlyRunRefused(t *testing.T) {
	m := New(statsOnlyConfig(1, mem.DefaultLayout()))
	m.Attach(0, nopProc{})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run on a stats-only machine did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "stats-only") {
			t.Errorf("panic does not name the cause: %v", r)
		}
	}()
	m.Run(0)
}

// TestStatsOnlyMismatchRefused pins the construction-time consistency
// check: a stats-only cache on a data-carrying bus (or vice versa) would
// copy nil snoop data as a zero block, so cache.New must refuse.
func TestStatsOnlyMismatchRefused(t *testing.T) {
	dataCfg := DefaultConfig()
	dataCfg.PEs = 1
	dm := New(dataCfg)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched StatsOnly between cache and bus did not panic")
		}
	}()
	soCache := dataCfg.Cache
	soCache.StatsOnly = true
	cache.New(soCache, 1, dm.Bus())
}

// TestStatsOnlyCheckpointRoundTrip replays a prefix on a stats-only
// machine, checkpoints it through the full gob encoding, restores into a
// fresh stats-only machine, finishes the trace, and requires the exact
// statistics of (a) an uninterrupted stats-only replay and (b) the
// data-carrying replay. Nil data planes must survive Encode/Decode.
func TestStatsOnlyCheckpointRoundTrip(t *testing.T) {
	sc := synth.DefaultConfig()
	sc.PEs = 4
	sc.Events = 20_000
	tr := synth.ORParallel(sc)

	replayAll := func(cfg Config) (busCycles, refs uint64) {
		m := New(cfg)
		ports := make([]mem.Accessor, cfg.PEs)
		for i := range ports {
			ports[i] = m.Port(i)
		}
		if err := trace.Replay(tr, ports); err != nil {
			t.Fatal(err)
		}
		cs := m.CacheStats()
		return m.BusStats().TotalCycles, cs.TotalRefs()
	}

	soCfg := statsOnlyConfig(tr.PEs, tr.Layout)
	wantCycles, wantRefs := replayAll(soCfg)
	dataCfg := soCfg
	dataCfg.Cache.StatsOnly = false
	dataCycles, dataRefs := replayAll(dataCfg)
	if wantCycles != dataCycles || wantRefs != dataRefs {
		t.Fatalf("stats-only replay (%d cycles, %d refs) diverges from data-carrying (%d, %d)",
			wantCycles, wantRefs, dataCycles, dataRefs)
	}

	// Interrupted run: replay half, checkpoint through the wire format,
	// restore, finish.
	m1 := New(soCfg)
	ports := make([]mem.Accessor, soCfg.PEs)
	for i := range ports {
		ports[i] = m1.Port(i)
	}
	half := tr.Len() / 2
	if err := trace.ReplayRange(tr, ports, 0, half); err != nil {
		t.Fatal(err)
	}
	snap := m1.Checkpoint()
	snap.RefsReplayed = half
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatalf("encoding stats-only checkpoint: %v", err)
	}
	decoded, err := DecodeSnapshot(&buf)
	if err != nil {
		t.Fatalf("decoding stats-only checkpoint: %v", err)
	}
	if len(decoded.Memory) != 0 {
		t.Errorf("stats-only checkpoint carries %d memory words", len(decoded.Memory))
	}

	m2 := New(soCfg)
	if err := m2.Restore(decoded); err != nil {
		t.Fatalf("restoring stats-only checkpoint: %v", err)
	}
	ports2 := make([]mem.Accessor, soCfg.PEs)
	for i := range ports2 {
		ports2[i] = m2.Port(i)
	}
	if err := trace.ReplayRange(tr, ports2, decoded.RefsReplayed, tr.Len()); err != nil {
		t.Fatal(err)
	}
	if got := m2.BusStats().TotalCycles; got != wantCycles {
		t.Errorf("resumed replay: %d bus cycles, uninterrupted: %d", got, wantCycles)
	}
	cs2 := m2.CacheStats()
	if got := cs2.TotalRefs(); got != wantRefs {
		t.Errorf("resumed replay: %d refs, uninterrupted: %d", got, wantRefs)
	}

	// A stats-only checkpoint must not restore into a data-carrying
	// machine (the config differs, and the memory image is absent).
	m3 := New(dataCfg)
	if err := m3.Restore(decoded); err == nil {
		t.Error("stats-only checkpoint restored into a data-carrying machine")
	}
}
