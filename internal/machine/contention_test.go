package machine

import (
	"testing"

	"pimcache/internal/kl1/word"
)

// contenderProc repeatedly lock-increments a shared counter word,
// exercising LH responses, LWAIT transitions, UL broadcasts, and machine
// skipping of busy-waiting PEs.
type contenderProc struct {
	m     *Machine
	pe    int
	addr  word.Addr
	left  int
	state int // 0 = want lock, 1 = have lock (write+unlock next step)
	val   word.Word
}

func (p *contenderProc) Step() Status {
	if p.left == 0 {
		return StatusHalted
	}
	port := p.m.Port(p.pe)
	switch p.state {
	case 0:
		w, ok := port.LockRead(p.addr)
		if !ok {
			return StatusRunning // busy-wait; machine will skip us
		}
		p.val = w
		p.state = 1
		return StatusRunning
	default:
		port.UnlockWrite(p.addr, word.Int(p.val.IntVal()+1))
		p.state = 0
		p.left--
		return StatusRunning
	}
}

// TestLockContentionStress has eight PEs perform 200 lock-increments each
// on one shared word: the final value proves every critical section was
// atomic, and lock statistics prove real contention happened.
func TestLockContentionStress(t *testing.T) {
	m := New(smallConfig(8))
	a := m.Memory().Bounds().HeapBase
	m.Memory().Write(a, word.Int(0))
	const per = 200
	for i := 0; i < 8; i++ {
		m.Attach(i, &contenderProc{m: m, pe: i, addr: a, left: per})
	}
	res := m.Run(0)
	if res.Failed || res.HitStepLimit {
		t.Fatalf("run failed: %+v", res)
	}
	m.FlushAll()
	if got := m.Memory().Read(a).IntVal(); got != 8*per {
		t.Fatalf("counter = %d, want %d (lost updates!)", got, 8*per)
	}
	cs := m.CacheStats()
	if cs.BusyWaits == 0 {
		t.Error("no lock contention observed")
	}
	if cs.UnlockWaiter == 0 {
		t.Error("no UL broadcasts despite contention")
	}
	if err := m.VerifyCoherence([]word.Addr{a}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if m.Cache(i).LocksInUse() != 0 {
			t.Errorf("PE %d leaked a lock", i)
		}
	}
}

// TestTwoLockOrdering interleaves two contended locks without deadlock
// (the machine panics on lock deadlock, so completion is the assertion).
func TestTwoLockOrdering(t *testing.T) {
	m := New(smallConfig(4))
	a := m.Memory().Bounds().HeapBase
	b := a + 64
	m.Memory().Write(a, word.Int(0))
	m.Memory().Write(b, word.Int(0))
	for i := 0; i < 4; i++ {
		addr := a
		if i%2 == 1 {
			addr = b
		}
		m.Attach(i, &contenderProc{m: m, pe: i, addr: addr, left: 100})
	}
	res := m.Run(0)
	if res.Failed {
		t.Fatal("failed")
	}
	m.FlushAll()
	if m.Memory().Read(a).IntVal() != 200 || m.Memory().Read(b).IntVal() != 200 {
		t.Errorf("counters %d/%d, want 200/200",
			m.Memory().Read(a).IntVal(), m.Memory().Read(b).IntVal())
	}
}
