package machine

import (
	"encoding/gob"
	"fmt"
	"io"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/kl1/word"
)

// Snapshot is a complete machine checkpoint: configuration, shared
// memory, bus state (statistics, presence filters, probe clock) and every
// cache's planes, lock directory and statistics. Restoring a snapshot
// into a machine of the same configuration and then continuing a trace
// replay produces bit-identical statistics and probe event streams to the
// uninterrupted run — the property TestCheckpointResume pins and the
// warmed-sweep harness in internal/bench relies on.
//
// Processor state (the KL1 reduction engines attached via Attach) is NOT
// captured: checkpoints exist for trace replay, where the reference
// stream itself is the program and the machine's processors are unused.
type Snapshot struct {
	// Config identifies the machine shape the snapshot was taken from;
	// Restore refuses a mismatch rather than silently misinterpreting
	// plane geometry.
	Config Config
	// RefsReplayed records how many references of the source trace had
	// been replayed at the checkpoint, so a resumer knows where to
	// continue. Purely advisory for non-replay uses (zero when the caller
	// never sets it).
	RefsReplayed int
	Steps        uint64
	Rounds       uint64
	Memory       []word.Word
	Bus          *bus.Snapshot
	Caches       []*cache.Snapshot
}

// Checkpoint captures the machine's complete simulated state.
func (m *Machine) Checkpoint() *Snapshot {
	s := &Snapshot{
		Config: m.cfg,
		Steps:  m.steps,
		Rounds: m.rounds,
		Memory: m.memory.Snapshot(),
		Bus:    m.bus.Snapshot(),
		Caches: make([]*cache.Snapshot, len(m.caches)),
	}
	for i, c := range m.caches {
		s.Caches[i] = c.Snapshot()
	}
	return s
}

// Restore overwrites the machine's simulated state from a snapshot taken
// on a machine with an identical configuration. Probe sinks and attached
// processors are wiring, not simulated state, and are left as they are.
func (m *Machine) Restore(s *Snapshot) error {
	if s.Config != m.cfg {
		return fmt.Errorf("machine: snapshot config %+v does not match machine %+v", s.Config, m.cfg)
	}
	if len(s.Caches) != len(m.caches) {
		return fmt.Errorf("machine: snapshot has %d caches, machine has %d", len(s.Caches), len(m.caches))
	}
	if err := m.memory.Restore(s.Memory); err != nil {
		return err
	}
	if err := m.bus.Restore(s.Bus); err != nil {
		return err
	}
	for i, c := range m.caches {
		if err := c.Restore(s.Caches[i]); err != nil {
			return fmt.Errorf("machine: PE %d: %w", i, err)
		}
	}
	m.steps = s.Steps
	m.rounds = s.Rounds
	return nil
}

// snapshotMagic versions the on-disk checkpoint format; bump it when the
// Snapshot schema changes incompatibly.
const snapshotMagic = "PIMCKPT1\n"

// Encode serializes the snapshot with encoding/gob behind a magic/version
// header. Checkpoints are host-internal artifacts (sweep caches, resume
// files), so a self-describing stdlib format beats a hand-rolled one.
func (s *Snapshot) Encode(w io.Writer) error {
	if _, err := io.WriteString(w, snapshotMagic); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(s)
}

// DecodeSnapshot reads a snapshot written by Encode.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	got := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(r, got); err != nil {
		return nil, err
	}
	if string(got) != snapshotMagic {
		return nil, fmt.Errorf("machine: bad checkpoint magic %q", got)
	}
	s := new(Snapshot)
	if err := gob.NewDecoder(r).Decode(s); err != nil {
		return nil, err
	}
	return s, nil
}
