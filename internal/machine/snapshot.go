package machine

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/kl1/word"
	"pimcache/internal/safeio"
)

// Snapshot is a complete machine checkpoint: configuration, shared
// memory, bus state (statistics, presence filters, probe clock) and every
// cache's planes, lock directory and statistics. Restoring a snapshot
// into a machine of the same configuration and then continuing a trace
// replay produces bit-identical statistics and probe event streams to the
// uninterrupted run — the property TestCheckpointResume pins and the
// warmed-sweep harness in internal/bench relies on.
//
// Processor state (the KL1 reduction engines attached via Attach) is NOT
// captured: checkpoints exist for trace replay, where the reference
// stream itself is the program and the machine's processors are unused.
type Snapshot struct {
	// Config identifies the machine shape the snapshot was taken from;
	// Restore refuses a mismatch rather than silently misinterpreting
	// plane geometry.
	Config Config
	// RefsReplayed records how many references of the source trace had
	// been replayed at the checkpoint, so a resumer knows where to
	// continue. Purely advisory for non-replay uses (zero when the caller
	// never sets it).
	RefsReplayed int
	Steps        uint64
	Rounds       uint64
	Memory       []word.Word
	Bus          *bus.Snapshot
	Caches       []*cache.Snapshot
}

// Checkpoint captures the machine's complete simulated state.
func (m *Machine) Checkpoint() *Snapshot {
	s := &Snapshot{
		Config: m.cfg,
		Steps:  m.steps,
		Rounds: m.rounds,
		Memory: m.memory.Snapshot(),
		Bus:    m.bus.Snapshot(),
		Caches: make([]*cache.Snapshot, len(m.caches)),
	}
	for i, c := range m.caches {
		s.Caches[i] = c.Snapshot()
	}
	return s
}

// Restore overwrites the machine's simulated state from a snapshot taken
// on a machine with an identical configuration. Probe sinks and attached
// processors are wiring, not simulated state, and are left as they are.
func (m *Machine) Restore(s *Snapshot) error {
	if s.Config != m.cfg {
		return fmt.Errorf("machine: snapshot config %+v does not match machine %+v", s.Config, m.cfg)
	}
	if len(s.Caches) != len(m.caches) {
		return fmt.Errorf("machine: snapshot has %d caches, machine has %d", len(s.Caches), len(m.caches))
	}
	if err := m.memory.Restore(s.Memory); err != nil {
		return err
	}
	if err := m.bus.Restore(s.Bus); err != nil {
		return err
	}
	for i, c := range m.caches {
		if err := c.Restore(s.Caches[i]); err != nil {
			return fmt.Errorf("machine: PE %d: %w", i, err)
		}
	}
	m.steps = s.Steps
	m.rounds = s.Rounds
	return nil
}

// The on-disk checkpoint format is versioned by its magic string:
//
//	PIMCKPT1: magic, then a bare gob payload. No integrity check — a
//	          torn or bit-flipped checkpoint surfaces as whatever gob
//	          makes of the damage.
//	PIMCKPT2: magic, u64 payload length, u32 CRC32C of the payload,
//	          then the gob payload. Torn files and flipped bits fail
//	          with a clean labeled error before gob sees a byte, which
//	          is what makes crash-time checkpoints trustworthy to
//	          resume from.
//
// Encode produces version 2; DecodeSnapshot accepts both.
const (
	snapshotMagicV1 = "PIMCKPT1\n"
	snapshotMagicV2 = "PIMCKPT2\n"
)

// SnapshotMagic is the magic prefix of checkpoints Encode writes,
// exported so artifact sniffers (pimtrace verify) can recognize the
// file type without importing format internals.
const SnapshotMagic = snapshotMagicV2

// snapshotFrameBytes is the v2 frame after the magic: u64 payload
// length, u32 payload CRC32C.
const snapshotFrameBytes = 12

// maxSnapshotBytes bounds the declared payload length DecodeSnapshot
// trusts. The largest legitimate snapshots (full memory images of the
// biggest sweep machines) are tens of megabytes; a corrupt length
// field must not demand an absurd allocation.
const maxSnapshotBytes = 16 << 30

var snapshotCRCTable = crc32.MakeTable(crc32.Castagnoli)

// Encode serializes the snapshot with encoding/gob behind a magic,
// payload length and CRC32C. Checkpoints are host-internal artifacts
// (sweep caches, resume files), so a self-describing stdlib payload
// beats a hand-rolled one; the frame adds the integrity check gob
// lacks.
func (s *Snapshot) Encode(w io.Writer) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(s); err != nil {
		return err
	}
	if _, err := io.WriteString(w, snapshotMagicV2); err != nil {
		return err
	}
	var frame [snapshotFrameBytes]byte
	binary.LittleEndian.PutUint64(frame[0:], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(frame[8:], crc32.Checksum(payload.Bytes(), snapshotCRCTable))
	if _, err := w.Write(frame[:]); err != nil {
		return err
	}
	_, err := w.Write(payload.Bytes())
	return err
}

// DecodeSnapshot reads a snapshot written by Encode (either format
// version). A v2 stream whose payload is torn or corrupt fails with a
// labeled error before any of it is interpreted.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	got := make([]byte, len(snapshotMagicV2))
	if _, err := io.ReadFull(r, got); err != nil {
		return nil, fmt.Errorf("machine: reading checkpoint magic: %w", err)
	}
	switch string(got) {
	case snapshotMagicV1:
		// Legacy: gob straight off the stream, no integrity check.
	case snapshotMagicV2:
		var frame [snapshotFrameBytes]byte
		if _, err := io.ReadFull(r, frame[:]); err != nil {
			return nil, fmt.Errorf("machine: checkpoint torn inside frame header: %w", err)
		}
		plen := binary.LittleEndian.Uint64(frame[0:])
		wantCRC := binary.LittleEndian.Uint32(frame[8:])
		if plen == 0 || plen > maxSnapshotBytes {
			return nil, fmt.Errorf("machine: corrupt checkpoint frame: payload length %d", plen)
		}
		// Read through a limited buffer so a corrupt length cannot demand
		// a giant upfront allocation: the buffer grows only as real bytes
		// arrive.
		var payload bytes.Buffer
		n, err := io.Copy(&payload, io.LimitReader(r, int64(plen)))
		if err != nil {
			return nil, fmt.Errorf("machine: reading checkpoint payload: %w", err)
		}
		if uint64(n) != plen {
			return nil, fmt.Errorf("machine: checkpoint torn at byte offset %d: %d of %d payload bytes",
				int64(len(snapshotMagicV2)+snapshotFrameBytes)+n, n, plen)
		}
		if got := crc32.Checksum(payload.Bytes(), snapshotCRCTable); got != wantCRC {
			return nil, fmt.Errorf("machine: checkpoint checksum mismatch (computed %#x, stored %#x)", got, wantCRC)
		}
		r = &payload
	default:
		return nil, fmt.Errorf("machine: bad checkpoint magic %q", got)
	}
	s := new(Snapshot)
	if err := gob.NewDecoder(r).Decode(s); err != nil {
		return nil, fmt.Errorf("machine: decoding checkpoint: %w", err)
	}
	return s, nil
}

// WriteFile atomically persists the snapshot: the bytes land in a
// temporary sibling, are fsynced, and replace path in one rename. A
// crash mid-write leaves the previous checkpoint intact — the property
// the resume protocol depends on.
func (s *Snapshot) WriteFile(path string) error {
	return safeio.WriteFile(path, s.Encode)
}

// ReadSnapshotFile reads a checkpoint file written by WriteFile.
func ReadSnapshotFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := DecodeSnapshot(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
