// Package machine composes the simulated PIM cluster: N processing
// elements, each behind a private PIM cache, sharing one bus and one
// global memory module.
//
// Execution is deterministic: the machine steps runnable PEs round-robin
// at abstract-instruction granularity, and the bus serializes coherence
// traffic in arrival order. The paper's simulator synchronized PEs at
// every bus request; instruction-level interleaving is at least that
// fine, so bus contention behaviour is preserved while every run of the
// same program and configuration produces identical cycle counts.
package machine

import (
	"fmt"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/kl1/word"
	"pimcache/internal/mem"
	"pimcache/internal/probe"
)

// Status is the result of one processor step.
type Status uint8

const (
	// StatusRunning: the PE did useful work and has more.
	StatusRunning Status = iota
	// StatusIdle: the PE has no local work right now but may receive
	// some (e.g. a stolen goal); it continues to be stepped so it can
	// poll its mailbox.
	StatusIdle
	// StatusHalted: the PE is permanently done (global termination).
	StatusHalted
	// StatusFailed: the program failed; the run aborts.
	StatusFailed
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusRunning:
		return "running"
	case StatusIdle:
		return "idle"
	case StatusHalted:
		return "halted"
	case StatusFailed:
		return "failed"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Processor is one PE's execution engine (the KL1 reduction engine, a
// trace replayer, or a synthetic workload). Step executes one abstract
// instruction; all of its simulated memory accesses flow through the
// cache port the processor was constructed with.
type Processor interface {
	Step() Status
}

// Config parameterizes a cluster.
type Config struct {
	PEs    int
	Layout mem.Layout
	Cache  cache.Config
	Timing bus.Timing
}

// DefaultConfig is the paper's base system: eight PEs, 4Kword 4-way
// caches with 4-word blocks, one-word bus, eight-cycle memory.
func DefaultConfig() Config {
	return Config{
		PEs:    8,
		Layout: mem.DefaultLayout(),
		Cache:  cache.DefaultConfig(),
		Timing: bus.DefaultTiming(),
	}
}

// Machine is the composed cluster.
type Machine struct {
	cfg    Config
	memory *mem.Memory
	bus    *bus.Bus
	caches []*cache.Cache
	procs  []Processor
	steps  uint64
	rounds uint64
	probe  probe.Sink
}

// New builds the memory, bus and caches. Processors attach afterwards.
func New(cfg Config) *Machine {
	if cfg.PEs < 1 {
		panic("machine: need at least one PE")
	}
	var m *mem.Memory
	if cfg.Cache.StatsOnly {
		// Stats-only replay: no data plane anywhere. The memory keeps its
		// layout and Size (the bus presence table is sized from it) but
		// stores nothing.
		m = mem.NewStatsOnly(cfg.Layout)
	} else {
		m = mem.New(cfg.Layout)
	}
	b := bus.New(bus.Config{
		Timing:          cfg.Timing,
		BlockWords:      cfg.Cache.BlockWords,
		DisableFilters:  cfg.Cache.DisableBusFilters,
		PoisonFetchData: cfg.Cache.PoisonBusData,
		StatsOnly:       cfg.Cache.StatsOnly,
	}, m)
	caches := make([]*cache.Cache, cfg.PEs)
	for i := range caches {
		caches[i] = cache.New(cfg.Cache, i, b)
	}
	return &Machine{
		cfg:    cfg,
		memory: m,
		bus:    b,
		caches: caches,
		procs:  make([]Processor, cfg.PEs),
	}
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Memory returns the shared memory module.
func (m *Machine) Memory() *mem.Memory { return m.memory }

// Bus returns the common bus.
func (m *Machine) Bus() *bus.Bus { return m.bus }

// Cache returns PE i's cache.
func (m *Machine) Cache(i int) *cache.Cache { return m.caches[i] }

// Port returns PE i's memory port (its cache).
func (m *Machine) Port(i int) mem.Accessor { return m.caches[i] }

// Attach installs PE i's processor.
func (m *Machine) Attach(i int, p Processor) { m.procs[i] = p }

// SetProbe attaches one telemetry sink to the whole cluster: the bus
// (transactions and the probe clock), every cache (references, misses,
// state transitions, locks) and the machine itself (PE scheduler
// status). Pass nil to detach; a nil sink restores the exact disabled
// behaviour everywhere.
func (m *Machine) SetProbe(s probe.Sink) {
	m.probe = s
	m.bus.SetProbe(s)
	for _, c := range m.caches {
		c.SetProbe(s)
	}
}

// Steps reports how many processor steps have executed.
func (m *Machine) Steps() uint64 { return m.steps }

// Rounds reports how many round-robin sweeps have executed. Because every
// runnable PE steps once per round, rounds approximate elapsed wall time
// on the simulated cluster and are the basis for speedup figures.
func (m *Machine) Rounds() uint64 { return m.rounds }

// RunResult summarizes a run.
type RunResult struct {
	// Steps is the number of processor steps executed.
	Steps uint64
	// Failed is true when a processor reported program failure.
	Failed bool
	// HitStepLimit is true when the run stopped at maxSteps without
	// reaching global termination.
	HitStepLimit bool
	// Rounds counts round-robin sweeps (a wall-clock proxy).
	Rounds uint64
}

// Run steps the processors round-robin until every one reports Halted,
// a processor reports Failed, or maxSteps is exceeded (0 means no
// limit). PEs busy-waiting on a remote lock are skipped, as the paper
// specifies that busy-wait cycles generate no bus traffic; if every
// non-halted PE is busy-waiting the lock protocol has deadlocked, which
// the KL1 runtime's address-ordered locking is supposed to prevent, so
// Run panics.
func (m *Machine) Run(maxSteps uint64) RunResult {
	if m.cfg.Cache.StatsOnly {
		// Live processors read values back (unification, dereferencing);
		// a stats-only machine would silently feed them zeros. Refuse
		// loudly — stats-only machines exist for trace replay, which
		// drives the cache ports directly and never calls Run.
		panic("machine: Run on a stats-only machine: live execution consumes data values; use a data-carrying config (stats-only supports trace replay only)")
	}
	for i, p := range m.procs {
		if p == nil {
			panic(fmt.Sprintf("machine: PE %d has no processor", i))
		}
	}
	halted := make([]bool, len(m.procs))
	nHalted := 0
	// Scheduler-status tracking for the probe: one last-reported status
	// per PE, emitted only on change. Live-only telemetry — a trace
	// replay has no scheduler — so it never affects replay identity.
	var pstat []uint8
	if m.probe != nil {
		pstat = make([]uint8, len(m.procs))
		for i := range pstat {
			pstat[i] = 0xFF
		}
	}
	var res RunResult
	for nHalted < len(m.procs) {
		m.rounds++
		res.Rounds++
		progressed := false
		for i, p := range m.procs {
			if halted[i] {
				continue
			}
			if m.caches[i].Blocked() {
				if pstat != nil {
					m.emitStatus(pstat, i, probe.StatusSpinning)
				}
				continue // busy-waiting: no bus traffic, no step
			}
			progressed = true
			m.steps++
			res.Steps++
			st := p.Step()
			if pstat != nil {
				// Status values mirror probe's numerically (asserted by
				// the cross-package name test).
				m.emitStatus(pstat, i, uint8(st))
			}
			switch st {
			case StatusHalted:
				halted[i] = true
				nHalted++
			case StatusFailed:
				res.Failed = true
				return res
			}
			if maxSteps > 0 && res.Steps >= maxSteps {
				res.HitStepLimit = true
				return res
			}
		}
		if !progressed {
			panic("machine: all non-halted PEs busy-waiting: lock deadlock")
		}
	}
	return res
}

// emitStatus reports PE i's scheduler status when it changed.
func (m *Machine) emitStatus(pstat []uint8, i int, s uint8) {
	if pstat[i] == s {
		return
	}
	pstat[i] = s
	m.probe.Emit(probe.Event{
		Kind: probe.KindPEStatus, Cycle: m.bus.ProbeClock(), PE: int16(i), A: s,
	})
}

// FlushAll writes every dirty cached block back to memory and empties all
// caches. Call after a run to verify results directly in memory, or
// around a garbage collection.
func (m *Machine) FlushAll() {
	for _, c := range m.caches {
		c.Flush()
	}
}

// BusStats returns the bus statistics.
func (m *Machine) BusStats() bus.Stats { return m.bus.Stats() }

// CacheStats aggregates all PE cache statistics.
func (m *Machine) CacheStats() cache.Stats {
	var total cache.Stats
	for _, c := range m.caches {
		st := c.Stats()
		total.Add(&st)
	}
	return total
}

// PerPECacheStats returns each PE cache's statistics individually
// (index = PE). The manifest determinism oracle uses it to pin that
// every replay engine produces identical per-PE stats, not merely an
// identical aggregate.
func (m *Machine) PerPECacheStats() []cache.Stats {
	out := make([]cache.Stats, len(m.caches))
	for i, c := range m.caches {
		out[i] = c.Stats()
	}
	return out
}

// ResetStats zeroes bus and cache statistics (e.g. after a warm-up).
func (m *Machine) ResetStats() {
	m.bus.ResetStats()
	for _, c := range m.caches {
		c.ResetStats()
	}
}

// VerifyCoherence checks the protocol invariants for the block containing
// each given address: at most one exclusive holder (and then no others),
// at most one dirty copy, and identical data in all valid copies. It
// returns the first violation found, or nil. Tests call it; it models
// nothing.
func (m *Machine) VerifyCoherence(addrs []word.Addr) error {
	bw := m.cfg.Cache.BlockWords
	for _, a := range addrs {
		base := a &^ word.Addr(bw-1)
		holders, exclusive, dirty := 0, 0, 0
		var ref []word.Word
		var refPE int
		for pe, c := range m.caches {
			st := c.StateOf(base)
			if !st.Valid() {
				continue
			}
			holders++
			if st.Exclusive() {
				exclusive++
			}
			if st.Dirty() {
				dirty++
			}
			data := make([]word.Word, bw)
			for i := 0; i < bw; i++ {
				data[i], _ = c.PeekWord(base + word.Addr(i))
			}
			if ref == nil {
				ref, refPE = data, pe
				continue
			}
			for i := range ref {
				if ref[i] != data[i] {
					return fmt.Errorf("block %#x word %d: PE%d has %v, PE%d has %v",
						base, i, refPE, ref[i], pe, data[i])
				}
			}
		}
		if exclusive > 0 && holders > 1 {
			return fmt.Errorf("block %#x: exclusive copy among %d holders", base, holders)
		}
		if dirty > 1 {
			return fmt.Errorf("block %#x: %d dirty copies", base, dirty)
		}
	}
	return nil
}
