package machine

import (
	"testing"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/kl1/word"
	"pimcache/internal/synth"
	"pimcache/internal/trace"
)

// TestPoisonModeIsObservationallyEquivalent replays full synthetic
// workloads on a poison-on and a poison-off machine and requires
// identical statistics and identical flushed memory. Poison mode
// scribbles the bus's reusable fetch buffer at the start of every
// transaction, so this equivalence proves no code path retains
// FetchResult.Data across a transaction boundary — the aliasing hazard
// the buffer's contract allows for. Any future violation shows up here
// as poison values in results or memory, rather than as a silent stale
// read.
func TestPoisonModeIsObservationallyEquivalent(t *testing.T) {
	sc := synth.Config{
		Layout: smallSynthLayout(),
		PEs:    8,
		Events: 30_000,
		Seed:   3,
	}
	if testing.Short() {
		sc.Events = 6_000
	}
	streams := []struct {
		name string
		gen  func(synth.Config) *trace.Trace
	}{
		{"ORParallel", synth.ORParallel},
		{"MessageRing", synth.MessageRing},
		{"SeqProlog", func(c synth.Config) *trace.Trace { c.PEs = 1; return synth.SeqProlog(c) }},
	}
	protocols := []cache.Protocol{
		cache.ProtocolPIM, cache.ProtocolIllinois, cache.ProtocolWriteThrough,
	}
	for _, s := range streams {
		s := s
		t.Run(s.name, func(t *testing.T) {
			t.Parallel()
			tr := s.gen(sc)
			for _, proto := range protocols {
				run := func(poison bool) (cache.Stats, bus.Stats, map[word.Addr]word.Word) {
					m := New(Config{
						PEs:    sc.PEs,
						Layout: sc.Layout,
						Cache: cache.Config{
							// Tiny direct-mapped caches: constant eviction
							// traffic maximizes fetch-buffer reuse.
							SizeWords: 64, BlockWords: 4, Ways: 1, LockEntries: 4,
							Options:  cache.OptionsAll(),
							Protocol: proto,
							VerifyDW: true, PoisonBusData: poison,
						},
						Timing: bus.DefaultTiming(),
					})
					for i, ref := range tr.Refs {
						if err := applyRef(m.Cache(int(ref.PE)), ref); err != nil {
							t.Fatalf("ref %d: %v", i, err)
						}
					}
					m.FlushAll()
					img := make(map[word.Addr]word.Word)
					for _, ref := range tr.Refs {
						base := ref.Addr &^ 3
						for i := word.Addr(0); i < 4; i++ {
							img[base+i] = m.Memory().Read(base + i)
						}
					}
					return m.CacheStats(), m.BusStats(), img
				}
				cOn, bOn, imgOn := run(true)
				cOff, bOff, imgOff := run(false)
				if cOn != cOff {
					t.Fatalf("%v: cache stats diverge with poison on:\non:  %+v\noff: %+v",
						proto, cOn, cOff)
				}
				if bOn != bOff {
					t.Fatalf("%v: bus stats diverge with poison on:\non:  %+v\noff: %+v",
						proto, bOn, bOff)
				}
				for a, v := range imgOff {
					if imgOn[a] != v {
						t.Fatalf("%v: memory[%#x] = %v with poison, %v without",
							proto, a, imgOn[a], v)
					}
					if imgOn[a]&^word.Word(0xFFFF) == bus.PoisonWord {
						t.Fatalf("%v: poison leaked into memory[%#x] = %v", proto, a, imgOn[a])
					}
				}
			}
		})
	}
}
