package obs

import (
	"testing"
)

// TestMetricsZeroAlloc pins the zero-overhead contract: the metric hot
// path allocates nothing, whether the handles are live or nil. This is
// the license for holding obs handles unconditionally in the replay
// loop.
func TestMetricsZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("refs")
	g := r.Gauge("inflight")
	h := r.Histogram("chunk_refs")

	var nilC *Counter
	var nilG *Gauge
	var nilH *Histogram
	var nilHB *Heartbeat

	cases := []struct {
		name string
		fn   func()
	}{
		{"counter", func() { c.Add(3); c.Inc() }},
		{"gauge", func() { g.Set(7); g.Add(-2) }},
		{"histogram", func() { h.Observe(1024) }},
		{"nil-counter", func() { nilC.Add(3); nilC.Inc() }},
		{"nil-gauge", func() { nilG.Set(7); nilG.Add(-2) }},
		{"nil-histogram", func() { nilH.Observe(1024) }},
		{"nil-heartbeat", func() { nilHB.Add(64); nilHB.SetBytes(4096) }},
		{"nil-span-end", func() { var s *Span; s.End() }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(200, tc.fn); n != 0 {
			t.Errorf("%s: %v allocs per run, want 0", tc.name, n)
		}
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Add(5)
	c.Inc()
	if got := c.Value(); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
	if r.Counter("a") != c {
		t.Fatal("Counter(name) not stable across calls")
	}
	g := r.Gauge("b")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}

	var nr *Registry
	if nr.Counter("x") != nil || nr.Gauge("x") != nil || nr.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	if nr.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
}

func TestHistogram(t *testing.T) {
	h := &Histogram{}
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", h.Count())
	}
	if h.Sum() != 500500 {
		t.Fatalf("sum = %d, want 500500", h.Sum())
	}
	if h.Max() != 1000 {
		t.Fatalf("max = %d, want 1000", h.Max())
	}
	// The median of 1..1000 is ~500; the power-of-two bucket answer is
	// the top of [256,512), i.e. 511.
	if q := h.Quantile(0.5); q != 511 {
		t.Fatalf("p50 = %d, want 511", q)
	}
	// p99 (~990) lands in [512,1024); clamped to the observed max 1000.
	if q := h.Quantile(0.99); q != 1000 {
		t.Fatalf("p99 = %d, want 1000 (bucket top clamped to max)", q)
	}
	if q := h.Quantile(1.0); q != 1000 {
		t.Fatalf("p100 = %d, want 1000", q)
	}

	var empty Histogram
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 || nilH.Count() != 0 || nilH.Sum() != 0 || nilH.Max() != 0 {
		t.Fatal("nil histogram reads must be 0")
	}
}

func TestHistogramZeroSample(t *testing.T) {
	h := &Histogram{}
	h.Observe(0)
	h.Observe(0)
	if h.Count() != 2 || h.Max() != 0 {
		t.Fatalf("count=%d max=%d, want 2,0", h.Count(), h.Max())
	}
	if q := h.Quantile(0.99); q != 0 {
		t.Fatalf("all-zero p99 = %d, want 0", q)
	}
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Gauge("z_gauge").Set(1)
	r.Counter("a_counter").Add(2)
	r.Histogram("m_hist").Observe(8)

	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d metrics, want 3", len(snap))
	}
	wantNames := []string{"a_counter", "m_hist", "z_gauge"}
	for i, m := range snap {
		if m.Name != wantNames[i] {
			t.Fatalf("snapshot[%d] = %q, want %q", i, m.Name, wantNames[i])
		}
	}
	if snap[0].Kind != "counter" || snap[0].Value != 2 {
		t.Fatalf("counter metric wrong: %+v", snap[0])
	}
	if snap[1].Kind != "histogram" || snap[1].Count != 1 || snap[1].Sum != 8 {
		t.Fatalf("histogram metric wrong: %+v", snap[1])
	}
	if snap[2].Kind != "gauge" || snap[2].Value != 1 {
		t.Fatalf("gauge metric wrong: %+v", snap[2])
	}
}
