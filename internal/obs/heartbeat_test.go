package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestHeartbeatDisabled(t *testing.T) {
	if h := NewHeartbeat(nil, "replay", time.Second, 0); h != nil {
		t.Fatal("nil writer must disable the heartbeat")
	}
	if h := NewHeartbeat(&bytes.Buffer{}, "replay", 0, 0); h != nil {
		t.Fatal("zero period must disable the heartbeat")
	}
	var h *Heartbeat
	h.Add(10)
	h.SetBytes(100)
	h.Stop() // all nil-safe
	if h.Start() != nil {
		t.Fatal("nil Start must return nil")
	}
}

func TestHeartbeatLine(t *testing.T) {
	var buf bytes.Buffer
	h := NewHeartbeat(&buf, "replay", time.Minute, 4_000_000)
	// Deterministic clock: 2s after start.
	base := time.Unix(100, 0)
	h.start = base
	h.now = func() time.Time { return base.Add(2 * time.Second) }

	h.Add(2_000_000)
	h.SetBytes(10_000_000)
	line := h.line()

	for _, want := range []string{
		"replay: 2.00 Mrefs",
		"(50.0%)",
		"1.0 Mrefs/s",
		"10.0 MB read",
		"ETA 2s",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
}

func TestHeartbeatUnknownTotal(t *testing.T) {
	h := NewHeartbeat(&bytes.Buffer{}, "replay", time.Minute, 0)
	base := time.Unix(100, 0)
	h.start = base
	h.now = func() time.Time { return base.Add(time.Second) }
	h.Add(500_000)
	line := h.line()
	if strings.Contains(line, "%") || strings.Contains(line, "ETA") {
		t.Errorf("unknown-total line should omit %%/ETA: %q", line)
	}
	if !strings.Contains(line, "0.50 Mrefs") {
		t.Errorf("line %q missing ref count", line)
	}
}

// TestHeartbeatStopWritesFinalLine: a replay shorter than the period
// still reports once, and Stop is idempotent.
func TestHeartbeatStopWritesFinalLine(t *testing.T) {
	var buf bytes.Buffer
	h := NewHeartbeat(&buf, "replay", time.Hour, 100).Start()
	h.Add(100)
	h.Stop()
	h.Stop()
	out := buf.String()
	if n := strings.Count(out, "replay:"); n != 1 {
		t.Fatalf("want exactly 1 final line, got %d: %q", n, out)
	}
	if !strings.Contains(out, "(100.0%)") {
		t.Errorf("final line should show completion: %q", out)
	}
}

func TestCountingReader(t *testing.T) {
	src := strings.NewReader(strings.Repeat("x", 1000))
	cr := &CountingReader{R: src}
	buf := make([]byte, 64)
	var total int
	for {
		n, err := cr.Read(buf)
		total += n
		if err != nil {
			break
		}
	}
	if total != 1000 || cr.Bytes() != 1000 {
		t.Fatalf("read %d, counted %d, want 1000", total, cr.Bytes())
	}
}
