package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer serializes writes so the watchdog goroutine and the test
// can share it under -race.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestWatchdogDumpsOnStall: no progress for a full window → exactly
// one dump containing the label, the phase timers and a stack trace;
// progress resuming re-arms it.
func TestWatchdogDumpsOnStall(t *testing.T) {
	var buf syncBuffer
	ph := NewPhases()
	sp := ph.Start("replay/test")
	sp.End()
	d := NewWatchdog(&buf, "replay", 40*time.Millisecond, ph).Start()
	defer d.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for d.Dumps() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if d.Dumps() != 1 {
		t.Fatalf("dumps = %d, want 1", d.Dumps())
	}
	out := buf.String()
	for _, want := range []string{"replay stalled", "replay/test", "goroutine"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump lacks %q:\n%s", want, out)
		}
	}

	// One stall episode → one dump, even well past the window.
	time.Sleep(100 * time.Millisecond)
	if d.Dumps() != 1 {
		t.Fatalf("dumps = %d after continued stall, want still 1", d.Dumps())
	}

	// Progress re-arms; a second stall dumps again.
	d.Pet()
	deadline = time.Now().Add(5 * time.Second)
	for d.Dumps() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if d.Dumps() != 2 {
		t.Fatalf("dumps = %d after re-arm and second stall, want 2", d.Dumps())
	}
}

// TestWatchdogQuietWhileProgressing: steady Pets → no dump.
func TestWatchdogQuietWhileProgressing(t *testing.T) {
	var buf syncBuffer
	d := NewWatchdog(&buf, "replay", 60*time.Millisecond, nil).Start()
	for i := 0; i < 20; i++ {
		d.Pet()
		time.Sleep(10 * time.Millisecond)
	}
	d.Stop()
	if d.Dumps() != 0 {
		t.Fatalf("dumps = %d under steady progress, want 0\n%s", d.Dumps(), buf.String())
	}
}

// TestWatchdogNil: the disabled watchdog is fully inert.
func TestWatchdogNil(t *testing.T) {
	var d *Watchdog
	d = d.Start()
	d.Pet()
	if d.Dumps() != 0 {
		t.Fatal("nil watchdog dumped")
	}
	d.Stop()
	if NewWatchdog(nil, "x", time.Second, nil) != nil {
		t.Fatal("nil writer must disable the watchdog")
	}
	if NewWatchdog(&syncBuffer{}, "x", 0, nil) != nil {
		t.Fatal("zero stall must disable the watchdog")
	}
}
