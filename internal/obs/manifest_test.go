package obs

import (
	"bytes"
	"path/filepath"
	"testing"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
)

func testManifest(mode string) *Manifest {
	m := NewManifest("pimtrace")
	m.Scenario = "replay-stream-8pe"
	ccfg := cache.Config{
		SizeWords: 4096, BlockWords: 4, Ways: 4, LockEntries: 4,
		Protocol: cache.ProtocolPIM,
	}
	m.Config = NewRunConfig(8, ccfg, bus.DefaultTiming(), "all", mode, 0)
	m.Trace = &TraceInfo{SHA256: "ab12", Refs: 1000, PEs: 8, LayoutWords: 65536}
	cs := cache.Stats{}
	bs := bus.Stats{}
	m.Stats = NewRunStats(1000, cs, bs)
	return m
}

// TestDeterministicJSONStripsTiming: two manifests for the same run,
// produced at different times on conceptually different hosts, render
// byte-identical deterministic JSON.
func TestDeterministicJSONStripsTiming(t *testing.T) {
	a := testManifest("stream")
	b := testManifest("stream")
	// Make the volatile halves maximally different.
	a.Timing.Host = "host-a"
	a.Timing.WallSeconds = 1.23
	a.Timing.MrefsPerSec = 20
	b.Timing.Host = "host-b"
	b.Timing.WallSeconds = 9.87
	b.Timing.Metrics = []Metric{{Name: "x", Kind: "counter", Value: 1}}

	aj, err := a.DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("deterministic JSON differs:\n%s\n----\n%s", aj, bj)
	}
	if bytes.Contains(aj, []byte("host-a")) {
		t.Fatal("deterministic JSON leaked a Timing field")
	}
}

// TestKeyAndStatsKey: Key distinguishes scenarios and engine modes;
// StatsKey erases exactly the knobs that cannot change statistics.
func TestKeyAndStatsKey(t *testing.T) {
	stream := testManifest("stream")
	packed := testManifest("packed")
	packed.Scenario = "replay-packed-8pe"
	packed.Config.StatsOnly = true

	if stream.Key() == packed.Key() {
		t.Fatal("different scenario/mode must produce different Keys")
	}
	if stream.StatsKey() != packed.StatsKey() {
		t.Fatal("mode/statsonly/scenario must not affect StatsKey")
	}

	// A genuinely different machine must split the StatsKey.
	other := testManifest("stream")
	other.Config.CacheWords = 8192
	if stream.StatsKey() == other.StatsKey() {
		t.Fatal("different cache size must change StatsKey")
	}
	// ...and a different trace too.
	tr := testManifest("stream")
	tr.Trace.SHA256 = "cd34"
	if stream.StatsKey() == tr.StatsKey() {
		t.Fatal("different trace must change StatsKey")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")

	m := testManifest("stream")
	m.FinishTiming(nil, nil, 1000, 0.5)
	if m.Timing.MrefsPerSec != 0.002 {
		t.Fatalf("MrefsPerSec = %v, want 0.002", m.Timing.MrefsPerSec)
	}
	if m.Timing.GC == nil {
		t.Fatal("FinishTiming must fill GC stats")
	}
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	got, err := ReadManifestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "pimtrace" || got.Scenario != m.Scenario {
		t.Fatalf("round trip lost identity: %+v", got)
	}
	if got.Key() != m.Key() || got.StatsKey() != m.StatsKey() {
		t.Fatal("round trip changed keys")
	}
	gj, _ := got.DeterministicJSON()
	mj, _ := m.DeterministicJSON()
	if !bytes.Equal(gj, mj) {
		t.Fatal("round trip changed deterministic JSON")
	}
}

func TestReadManifestRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	m := testManifest("stream")
	m.Schema = 999
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifestFile(path); err == nil {
		t.Fatal("wrong schema must be rejected")
	}
}

func TestFinishTimingWithPhasesAndMetrics(t *testing.T) {
	ph := NewPhases()
	ph.Start("replay").End()
	reg := NewRegistry()
	reg.Counter("refs").Add(1000)

	m := testManifest("stream")
	m.FinishTiming(ph, reg, 1000, 1.0)
	if len(m.Timing.Phases) != 1 || m.Timing.Phases[0].Path != "replay" {
		t.Fatalf("phases not captured: %+v", m.Timing.Phases)
	}
	if len(m.Timing.Metrics) != 1 || m.Timing.Metrics[0].Name != "refs" {
		t.Fatalf("metrics not captured: %+v", m.Timing.Metrics)
	}
}
