package obs

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/safeio"
)

// SchemaVersion is the manifest schema this package writes.
// cmd/pimreport refuses manifests from a different schema, so a gate
// never silently compares incompatible layouts.
const SchemaVersion = 1

// Manifest is a structured record of one simulator run: what was run
// (config, trace, workload — deterministic), what came out (the full
// cache and bus statistics — deterministic, bit-identical across runs
// and hosts), and how the run went on this host (the Timing block —
// wall times, throughput, GC, environment; everything volatile lives
// here and only here).
//
// The deterministic/timing split is the load-bearing invariant:
// DeterministicJSON strips Timing and the result is byte-identical for
// two runs of the same trace and configuration (the manifest
// determinism oracle pins this across protocols, filters and
// stats-only). pimreport's regression gate therefore checks the two
// halves differently — exact match for the deterministic sections, a
// tolerance band around a median for throughput.
type Manifest struct {
	Schema   int    `json:"schema"`
	Tool     string `json:"tool"`
	Scenario string `json:"scenario,omitempty"`

	Config   RunConfig         `json:"config"`
	Trace    *TraceInfo        `json:"trace,omitempty"`
	Workload *Workload         `json:"workload,omitempty"`
	Stats    *RunStats         `json:"stats,omitempty"`
	Benches  []BenchSection    `json:"benches,omitempty"`
	Extra    map[string]string `json:"extra,omitempty"`

	Timing Timing `json:"timing"`

	started time.Time
}

// RunConfig is the canonical simulated-machine configuration of a run.
// Everything here is deterministic and participates in the manifest
// key; Mode and Shards describe the replay engine path (stream,
// packed, sharded, live, bench, table), which changes throughput but
// never statistics.
type RunConfig struct {
	PEs           int    `json:"pes,omitempty"`
	CacheWords    int    `json:"cache_words,omitempty"`
	BlockWords    int    `json:"block_words,omitempty"`
	Ways          int    `json:"ways,omitempty"`
	LockEntries   int    `json:"lock_entries,omitempty"`
	Protocol      string `json:"protocol,omitempty"`
	Options       string `json:"options,omitempty"`
	BusWidthWords int    `json:"bus_width_words,omitempty"`
	MemCycles     int    `json:"mem_cycles,omitempty"`
	StatsOnly     bool   `json:"stats_only,omitempty"`
	FiltersOff    bool   `json:"filters_off,omitempty"`
	Mode          string `json:"mode,omitempty"`
	Shards        int    `json:"shards,omitempty"`
}

// NewRunConfig assembles a RunConfig from the shared CLI flag set.
// optsName is the -opts flag value (the Options bitmask has no unique
// name, so the flag string is the canonical spelling).
func NewRunConfig(pes int, ccfg cache.Config, timing bus.Timing, optsName, mode string, shards int) RunConfig {
	return RunConfig{
		PEs:           pes,
		CacheWords:    ccfg.SizeWords,
		BlockWords:    ccfg.BlockWords,
		Ways:          ccfg.Ways,
		LockEntries:   ccfg.LockEntries,
		Protocol:      ccfg.Protocol.String(),
		Options:       optsName,
		BusWidthWords: timing.WidthWords,
		MemCycles:     timing.MemCycles,
		StatsOnly:     ccfg.StatsOnly,
		FiltersOff:    ccfg.DisableBusFilters,
		Mode:          mode,
		Shards:        shards,
	}
}

// TraceInfo identifies the replayed reference stream by content, not
// by path: the SHA-256 of the serialized trace plus its header facts.
// Two hosts replaying the same trace file agree on every field.
type TraceInfo struct {
	SHA256      string `json:"sha256"`
	Refs        uint64 `json:"refs"`
	PEs         int    `json:"pes"`
	LayoutWords uint64 `json:"layout_words"`
}

// Workload identifies a live-run workload and its deterministic
// outcome (the simulator is deterministic, so the output digest and
// reduction counts are run-invariant).
type Workload struct {
	Bench        string `json:"bench"`
	Scale        int    `json:"scale"`
	OutputSHA256 string `json:"output_sha256,omitempty"`
	Reductions   uint64 `json:"reductions,omitempty"`
	Rounds       uint64 `json:"rounds,omitempty"`
}

// RunStats is the deterministic measurement core: the full cache and
// bus statistics of the run, bit-identical across runs, replay modes
// and hosts for the same trace and configuration.
type RunStats struct {
	Refs      uint64      `json:"refs"`
	MissRatio float64     `json:"miss_ratio"`
	Cache     cache.Stats `json:"cache"`
	Bus       bus.Stats   `json:"bus"`
}

// NewRunStats derives the manifest stats block from a run's outputs.
func NewRunStats(refs uint64, cs cache.Stats, bs bus.Stats) *RunStats {
	return &RunStats{Refs: refs, MissRatio: cs.MissRatio(), Cache: cs, Bus: bs}
}

// BenchSection is one benchmark's deterministic results inside a
// pimbench evaluation manifest.
type BenchSection struct {
	Name     string         `json:"name"`
	Scale    int            `json:"scale"`
	PEs      int            `json:"pes"`
	Refs     uint64         `json:"refs"`
	Variants []VariantStats `json:"variants,omitempty"`
}

// VariantStats is one Table-4 variant's replayed statistics.
type VariantStats struct {
	Variant string      `json:"variant"`
	Cache   cache.Stats `json:"cache"`
	Bus     bus.Stats   `json:"bus"`
}

// Timing is the volatile half of the manifest: host identity, wall
// times, throughput, phases, allocator behaviour. Nothing here
// participates in determinism checks; everything host- or
// run-specific must live here.
type Timing struct {
	Host        string   `json:"host,omitempty"`
	OS          string   `json:"os,omitempty"`
	Arch        string   `json:"arch,omitempty"`
	GoVersion   string   `json:"go_version,omitempty"`
	GitRevision string   `json:"git_revision,omitempty"`
	GitDirty    bool     `json:"git_dirty,omitempty"`
	GOMAXPROCS  int      `json:"gomaxprocs,omitempty"`
	NumCPU      int      `json:"num_cpu,omitempty"`
	Start       string   `json:"start,omitempty"`
	Args        []string `json:"args,omitempty"`
	TraceFile   string   `json:"trace_file,omitempty"`

	WallSeconds float64 `json:"wall_seconds,omitempty"`
	WorkSeconds float64 `json:"work_seconds,omitempty"`
	MrefsPerSec float64 `json:"mrefs_per_sec,omitempty"`
	MedianOf    int     `json:"median_of,omitempty"`

	Phases   []PhaseSummary    `json:"phases,omitempty"`
	Metrics  []Metric          `json:"metrics,omitempty"`
	GC       *GCStats          `json:"gc,omitempty"`
	Profiles map[string]string `json:"profiles,omitempty"`
}

// GCStats summarizes the Go runtime's allocator work during the run.
type GCStats struct {
	NumGC             uint32  `json:"num_gc"`
	PauseTotalSeconds float64 `json:"pause_total_seconds"`
	TotalAllocBytes   uint64  `json:"total_alloc_bytes"`
	Mallocs           uint64  `json:"mallocs"`
	HeapAllocBytes    uint64  `json:"heap_alloc_bytes"`
}

// NewManifest starts a manifest for the named tool, capturing the host
// environment and the start time into the Timing block.
func NewManifest(tool string) *Manifest {
	m := &Manifest{
		Schema:  SchemaVersion,
		Tool:    tool,
		started: time.Now(),
	}
	host, _ := os.Hostname()
	m.Timing = Timing{
		Host:       host,
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Start:      m.started.UTC().Format(time.RFC3339),
		Args:       os.Args[1:],
	}
	m.Timing.GitRevision, m.Timing.GitDirty = vcsRevision()
	return m
}

// vcsRevision reads the VCS stamp the Go toolchain embeds in binaries
// built from a checkout ("" when absent, e.g. under go test).
func vcsRevision() (rev string, dirty bool) {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "", false
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	return rev, dirty
}

// FinishTiming completes the Timing block: total wall time since
// NewManifest, the measured work phase (workSeconds, usually the
// replay span) and its throughput over refs, phase summaries, metric
// snapshot, and allocator statistics.
func (m *Manifest) FinishTiming(ph *Phases, reg *Registry, refs uint64, workSeconds float64) {
	m.Timing.WallSeconds = time.Since(m.started).Seconds()
	m.Timing.WorkSeconds = workSeconds
	if workSeconds > 0 && refs > 0 {
		m.Timing.MrefsPerSec = float64(refs) / workSeconds / 1e6
	}
	m.Timing.Phases = ph.Summary()
	m.Timing.Metrics = reg.Snapshot()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.Timing.GC = &GCStats{
		NumGC:             ms.NumGC,
		PauseTotalSeconds: float64(ms.PauseTotalNs) / 1e9,
		TotalAllocBytes:   ms.TotalAlloc,
		Mallocs:           ms.Mallocs,
		HeapAllocBytes:    ms.HeapAlloc,
	}
}

// keyFields are the sections a manifest key digests: everything
// deterministic that defines *what* was run (not what came out).
type keyFields struct {
	Scenario string     `json:"scenario,omitempty"`
	Config   RunConfig  `json:"config"`
	Trace    *TraceInfo `json:"trace,omitempty"`
	Workload *Workload  `json:"workload,omitempty"`
}

// Key identifies the run scenario: a digest of the scenario label,
// configuration, trace identity and workload. Two manifests with equal
// keys measured the same thing the same way, so their deterministic
// stats must match exactly and their throughputs are comparable.
func (m *Manifest) Key() string {
	return digestKey(keyFields{
		Scenario: m.Scenario, Config: m.Config, Trace: m.Trace, Workload: m.Workload,
	})
}

// StatsKey identifies the *simulated outcome*: like Key, but with the
// scenario label and the replay-engine knobs that provably do not
// change statistics (Mode, Shards, StatsOnly, FiltersOff) cleared.
// Manifests sharing a StatsKey must agree bit for bit on their Stats
// section even when they took different engine paths — the free
// cross-mode, cross-host determinism oracle.
func (m *Manifest) StatsKey() string {
	cfg := m.Config
	cfg.Mode = ""
	cfg.Shards = 0
	cfg.StatsOnly = false
	cfg.FiltersOff = false
	return digestKey(keyFields{Config: cfg, Trace: m.Trace, Workload: m.Workload})
}

func digestKey(k keyFields) string {
	b, err := json.Marshal(k)
	if err != nil {
		// keyFields contains only marshalable types; this is unreachable.
		panic(fmt.Sprintf("obs: marshal manifest key: %v", err))
	}
	sum := sha256.Sum256(b)
	return fmt.Sprintf("%x", sum[:8])
}

// DeterministicJSON renders the manifest with the Timing block
// stripped: the byte-identical-across-runs half. The manifest
// determinism oracle compares exactly these bytes.
func (m *Manifest) DeterministicJSON() ([]byte, error) {
	c := *m
	c.Timing = Timing{}
	return json.MarshalIndent(&c, "", "  ")
}

// MarshalIndent renders the full manifest as indented JSON with a
// trailing newline (the on-disk format).
func (m *Manifest) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the manifest to path atomically (temp + fsync +
// rename): a crash mid-write never leaves a torn manifest for a later
// gate to choke on.
func (m *Manifest) WriteFile(path string) error {
	b, err := m.MarshalIndent()
	if err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	if err := safeio.WriteFileBytes(path, b); err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	return nil
}

// ReadManifestFile loads a manifest and validates its schema.
func ReadManifestFile(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("manifest %s: %w", path, err)
	}
	if m.Schema != SchemaVersion {
		return nil, fmt.Errorf("manifest %s: schema %d, this build understands %d",
			path, m.Schema, SchemaVersion)
	}
	return &m, nil
}

// HexDigest renders a hash sum as lowercase hex (convenience for
// filling TraceInfo.SHA256 and Workload.OutputSHA256).
func HexDigest(sum []byte) string { return fmt.Sprintf("%x", sum) }
