package obs

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic time source whose reading advances by
// step on every call, so span durations are exact in tests.
type fakeClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.step)
	return c.t
}

func newTestPhases(step time.Duration) (*Phases, *fakeClock) {
	c := &fakeClock{t: time.Unix(0, 0), step: step}
	p := &Phases{now: c.now}
	p.t0 = p.now()
	return p, c
}

func TestPhasesSummary(t *testing.T) {
	p, _ := newTestPhases(time.Second)

	// Each Start+End pair consumes two clock ticks → 1s per span.
	p.Start("replay").End()
	p.Start("replay").End()
	p.Start("pack").End()

	sum := p.Summary()
	if len(sum) != 2 {
		t.Fatalf("summary has %d paths, want 2: %+v", len(sum), sum)
	}
	// Sorted by path: pack before replay.
	if sum[0].Path != "pack" || sum[0].Count != 1 || sum[0].Seconds != 1 {
		t.Fatalf("pack summary wrong: %+v", sum[0])
	}
	if sum[1].Path != "replay" || sum[1].Count != 2 || sum[1].Seconds != 2 {
		t.Fatalf("replay summary wrong: %+v", sum[1])
	}
}

func TestPhasesTime(t *testing.T) {
	p, _ := newTestPhases(time.Second)
	wantErr := errors.New("boom")
	if err := p.Time("warm", func() error { return wantErr }); err != wantErr {
		t.Fatalf("Time did not propagate error: %v", err)
	}
	sum := p.Summary()
	if len(sum) != 1 || sum[0].Path != "warm" || sum[0].Seconds != 1 {
		t.Fatalf("warm span not recorded: %+v", sum)
	}
}

func TestPhasesNil(t *testing.T) {
	var p *Phases
	p.Start("x").End() // must not panic
	ran := false
	if err := p.Time("y", func() error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("nil Phases.Time must still run fn")
	}
	if p.Summary() != nil {
		t.Fatal("nil Phases summary must be nil")
	}
	if p.Elapsed() != 0 {
		t.Fatal("nil Phases elapsed must be 0")
	}
}

func TestPhasesConcurrent(t *testing.T) {
	p := NewPhases()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				p.Start("worker").End()
			}
		}()
	}
	wg.Wait()
	sum := p.Summary()
	if len(sum) != 1 || sum[0].Count != 800 {
		t.Fatalf("concurrent spans lost: %+v", sum)
	}
}
