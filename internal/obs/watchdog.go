package obs

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Watchdog detects stalled runs. The driving loop calls Pet on every
// unit of progress (a replayed chunk, a finished job); if no Pet
// arrives for the stall window, the watchdog writes a diagnosis to w —
// every goroutine's stack plus the phase timers — so a hung run
// explains itself instead of sitting silent until someone kills it.
// One dump per stall episode: after dumping, the watchdog re-arms only
// once progress resumes.
//
// A nil *Watchdog discards everything, so callers wire it
// unconditionally: NewWatchdog returns nil when the writer is nil or
// the window is not positive.
type Watchdog struct {
	w      io.Writer
	label  string
	stall  time.Duration
	phases *Phases

	pets  atomic.Uint64
	dumps atomic.Uint64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewWatchdog makes a watchdog that dumps to w after stall without
// progress. phases may be nil (the dump then has no phase section).
// Returns nil — a disabled watchdog — when w is nil or stall is not
// positive.
func NewWatchdog(w io.Writer, label string, stall time.Duration, ph *Phases) *Watchdog {
	if w == nil || stall <= 0 {
		return nil
	}
	return &Watchdog{w: w, label: label, stall: stall, phases: ph, stop: make(chan struct{})}
}

// Pet records progress. Nil-safe, allocation-free — call it from hot
// loops.
func (d *Watchdog) Pet() {
	if d != nil {
		d.pets.Add(1)
	}
}

// Dumps reports how many stall dumps have fired. Nil-safe.
func (d *Watchdog) Dumps() uint64 {
	if d == nil {
		return 0
	}
	return d.dumps.Load()
}

// Start launches the monitoring goroutine and returns d for chaining.
// Nil-safe.
func (d *Watchdog) Start() *Watchdog {
	if d == nil {
		return nil
	}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		// Sample at a fraction of the window so a stall is detected
		// within ~1.25 windows worst case.
		period := d.stall / 4
		if period <= 0 {
			period = d.stall
		}
		t := time.NewTicker(period)
		defer t.Stop()
		var lastPets uint64
		var idle time.Duration
		armed := true
		for {
			select {
			case <-t.C:
				pets := d.pets.Load()
				if pets != lastPets {
					lastPets = pets
					idle = 0
					armed = true
					continue
				}
				idle += period
				if armed && idle >= d.stall {
					d.dump(idle)
					armed = false
				}
			case <-d.stop:
				return
			}
		}
	}()
	return d
}

// Stop halts the monitoring goroutine. Nil-safe and idempotent.
func (d *Watchdog) Stop() {
	if d == nil {
		return
	}
	d.stopOnce.Do(func() {
		close(d.stop)
		d.wg.Wait()
	})
}

// dump writes the stall diagnosis: what stalled, for how long, the
// phase timers so far, and every goroutine's stack.
func (d *Watchdog) dump(idle time.Duration) {
	d.dumps.Add(1)
	fmt.Fprintf(d.w, "\n=== watchdog: %s stalled for %s (no progress) ===\n", d.label, idle.Round(time.Millisecond))
	if sum := d.phases.Summary(); len(sum) > 0 {
		fmt.Fprintf(d.w, "--- phase timers ---\n")
		for _, p := range sum {
			fmt.Fprintf(d.w, "  %-24s %8.3fs ×%d\n", p.Path, p.Seconds, p.Count)
		}
	}
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	fmt.Fprintf(d.w, "--- goroutine stacks ---\n%s\n=== end watchdog dump ===\n", buf)
}
