package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Heartbeat periodically reports the progress of a long streaming
// replay on stderr: references done, throughput, bytes read and an
// ETA. The replay loop feeds it with Add/SetBytes from the hot path
// (both are one atomic each); a background goroutine formats and
// writes one line per period, so a multi-gigabyte replay is never
// silent and never slowed down by terminal I/O.
//
// A nil *Heartbeat discards everything, so callers wire it
// unconditionally: NewHeartbeat returns nil when the period is zero
// or the writer is nil.
type Heartbeat struct {
	w     io.Writer
	label string
	every time.Duration
	total uint64 // expected references (0: unknown, no percentage/ETA)

	now   func() time.Time // injectable clock for tests
	start time.Time

	done  atomic.Uint64
	bytes atomic.Uint64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewHeartbeat makes a heartbeat writing to w every period. total is
// the expected number of references (from the trace header), or 0
// when unknown. Returns nil — a disabled heartbeat — when w is nil or
// every is not positive.
func NewHeartbeat(w io.Writer, label string, every time.Duration, total uint64) *Heartbeat {
	if w == nil || every <= 0 {
		return nil
	}
	h := &Heartbeat{
		w: w, label: label, every: every, total: total,
		now:  time.Now,
		stop: make(chan struct{}),
	}
	h.start = h.now()
	return h
}

// Add records n more references done. Nil-safe, allocation-free.
func (h *Heartbeat) Add(n uint64) {
	if h != nil {
		h.done.Add(n)
	}
}

// SetBytes records the total bytes read so far. Nil-safe,
// allocation-free.
func (h *Heartbeat) SetBytes(n uint64) {
	if h != nil {
		h.bytes.Store(n)
	}
}

// Start launches the reporting goroutine and returns h for chaining.
// Nil-safe.
func (h *Heartbeat) Start() *Heartbeat {
	if h == nil {
		return nil
	}
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		t := time.NewTicker(h.every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fmt.Fprintln(h.w, h.line())
			case <-h.stop:
				return
			}
		}
	}()
	return h
}

// Stop halts the reporting goroutine and writes one final line (so a
// replay shorter than the period still reports once). Nil-safe and
// idempotent.
func (h *Heartbeat) Stop() {
	if h == nil {
		return
	}
	h.stopOnce.Do(func() {
		close(h.stop)
		h.wg.Wait()
		fmt.Fprintln(h.w, h.line())
	})
}

// line formats one progress report from the current counters.
func (h *Heartbeat) line() string {
	done := h.done.Load()
	bytes := h.bytes.Load()
	elapsed := h.now().Sub(h.start).Seconds()
	var rate float64 // refs per second
	if elapsed > 0 {
		rate = float64(done) / elapsed
	}
	s := fmt.Sprintf("%s: %.2f Mrefs", h.label, float64(done)/1e6)
	if h.total > 0 {
		s += fmt.Sprintf(" (%.1f%%)", 100*float64(done)/float64(h.total))
	}
	s += fmt.Sprintf(" · %.1f Mrefs/s", rate/1e6)
	if bytes > 0 {
		s += fmt.Sprintf(" · %.1f MB read", float64(bytes)/1e6)
	}
	if h.total > 0 && rate > 0 && done < h.total {
		eta := float64(h.total-done) / rate
		s += fmt.Sprintf(" · ETA %.0fs", eta)
	}
	return s
}

// CountingReader wraps an io.Reader, counting the bytes delivered so a
// streaming replay can report read progress. Safe for concurrent Bytes
// while one goroutine reads.
type CountingReader struct {
	R io.Reader
	n atomic.Uint64
}

// Read implements io.Reader.
func (c *CountingReader) Read(p []byte) (int, error) {
	n, err := c.R.Read(p)
	c.n.Add(uint64(n))
	return n, err
}

// Bytes reports how many bytes have been read.
func (c *CountingReader) Bytes() uint64 { return c.n.Load() }
