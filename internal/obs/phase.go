package obs

import (
	"sort"
	"sync"
	"time"
)

// Phases collects hierarchical wall-clock spans: record, pack, warm,
// replay, report. Hierarchy is encoded in the span path with slashes
// ("replay/Tri/block=8"), so concurrent jobs time themselves without
// sharing any nesting state — each Start returns an independent Span
// and End is safe from any goroutine. A nil *Phases disables timing
// (Start returns a nil Span whose End is a no-op).
type Phases struct {
	now func() time.Time // injectable clock for tests

	mu    sync.Mutex
	t0    time.Time
	spans []completedSpan
}

type completedSpan struct {
	path string
	dur  time.Duration
}

// NewPhases makes a phase collector whose epoch is now.
func NewPhases() *Phases {
	p := &Phases{now: time.Now}
	p.t0 = p.now()
	return p
}

// Span is one in-flight phase measurement.
type Span struct {
	p     *Phases
	path  string
	start time.Time
}

// Start opens a span at the given slash-separated path. Nil-safe.
func (p *Phases) Start(path string) *Span {
	if p == nil {
		return nil
	}
	return &Span{p: p, path: path, start: p.now()}
}

// End closes the span, recording its duration under its path. Nil-safe
// and idempotent-enough: calling End twice records the span twice, so
// don't.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := s.p.now().Sub(s.start)
	s.p.mu.Lock()
	s.p.spans = append(s.p.spans, completedSpan{path: s.path, dur: d})
	s.p.mu.Unlock()
}

// Time runs fn under a span at path and propagates its error. Nil-safe
// (fn still runs).
func (p *Phases) Time(path string, fn func() error) error {
	sp := p.Start(path)
	err := fn()
	sp.End()
	return err
}

// PhaseSummary aggregates every completed span sharing one path.
type PhaseSummary struct {
	Path    string  `json:"path"`
	Count   int     `json:"count"`
	Seconds float64 `json:"seconds"`
}

// Summary aggregates completed spans by path, sorted by path for a
// deterministic manifest layout. A nil collector summarizes to nil.
func (p *Phases) Summary() []PhaseSummary {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	agg := map[string]*PhaseSummary{}
	for _, s := range p.spans {
		ps := agg[s.path]
		if ps == nil {
			ps = &PhaseSummary{Path: s.path}
			agg[s.path] = ps
		}
		ps.Count++
		ps.Seconds += s.dur.Seconds()
	}
	out := make([]PhaseSummary, 0, len(agg))
	for _, ps := range agg {
		out = append(out, *ps)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Elapsed reports wall time since the collector was created (0 for
// nil).
func (p *Phases) Elapsed() time.Duration {
	if p == nil {
		return 0
	}
	return p.now().Sub(p.t0)
}
