// Package obs is the simulator's self-observability layer: metrics,
// phase timers, streaming-replay heartbeats, and structured run
// manifests for the *simulator itself* — the measurement infrastructure
// that packages probe and stats provide for the *simulated machine*.
//
// The paper's argument is quantitative, and so is this repository's:
// every PR's claim to a speedup or an equivalence rests on measured
// throughput and bit-identical statistics. obs makes those measurements
// first-class instead of hand-copied: commands emit run manifests
// (Manifest) whose deterministic sections are byte-identical across
// runs, cmd/pimreport diffs and gates them, and docs/baselines holds
// the blessed reference points.
//
// # Zero overhead when disabled
//
// Like package probe, every obs handle is nil-safe: a nil *Counter,
// *Gauge, *Histogram, *Registry, *Phases, *Span or *Heartbeat accepts
// every method as a no-op costing one branch and zero allocations
// (pinned by TestMetricsZeroAlloc). Components therefore hold obs
// handles unconditionally and never guard call sites; passing nil
// disables the instrumentation exactly.
//
// # Concurrency
//
// Counter, Gauge and Histogram are lock-free (atomic) and safe for
// concurrent use from simulation workers. Registry and Phases guard
// registration and span completion with a mutex; the per-event hot
// path (Add/Set/Observe, and a Span's End) stays allocation-free.
package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// ready to use; a nil Counter discards updates.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. Nil-safe.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value metric. The zero value is ready to use; a nil
// Gauge discards updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by d. Nil-safe.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value reads the gauge (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates a distribution of uint64 samples in
// power-of-two buckets: bucket i holds samples whose bit length is i,
// i.e. the range [2^(i-1), 2^i). Quantiles are therefore exact to a
// factor of two, which is the right resolution for latencies and sizes
// and keeps Observe allocation-free and lock-free. The zero value is
// ready to use; a nil Histogram discards samples.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [65]atomic.Uint64
}

// Observe records one sample. Nil-safe.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Count reports how many samples were observed (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of all samples (0 for nil).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max reports the largest observed sample (0 for nil).
func (h *Histogram) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1):
// the top of the power-of-two bucket in which the quantile sample
// falls, clamped to Max. Returns 0 for an empty or nil histogram.
func (h *Histogram) Quantile(q float64) uint64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	rank := uint64(q * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var seen uint64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen > rank {
			var top uint64
			if i == 0 {
				top = 0
			} else if i >= 64 {
				top = ^uint64(0)
			} else {
				top = 1<<uint(i) - 1
			}
			if m := h.Max(); top > m {
				top = m
			}
			return top
		}
	}
	return h.Max()
}

// Registry is a named collection of metrics. Handles are registered on
// first use and stable thereafter (Counter("x") always returns the
// same *Counter). A nil Registry returns nil handles, so a disabled
// registry costs one branch per metric operation and nothing else.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry makes an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns nil (a no-op handle).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. A
// nil registry returns nil.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Metric is one snapshotted metric value, in the shape the run
// manifest records (histograms carry their distribution summary).
type Metric struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"` // counter, gauge, histogram
	Value int64  `json:"value"`
	Count uint64 `json:"count,omitempty"`
	Sum   uint64 `json:"sum,omitempty"`
	P50   uint64 `json:"p50,omitempty"`
	P99   uint64 `json:"p99,omitempty"`
	Max   uint64 `json:"max,omitempty"`
}

// Snapshot returns every registered metric, sorted by name (a
// deterministic order regardless of registration interleaving). A nil
// registry snapshots to nil.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Kind: "counter", Value: int64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Kind: "gauge", Value: g.Value()})
	}
	for name, h := range r.hists {
		out = append(out, Metric{
			Name: name, Kind: "histogram",
			Value: int64(h.Count()),
			Count: h.Count(), Sum: h.Sum(),
			P50: h.Quantile(0.50), P99: h.Quantile(0.99), Max: h.Max(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// String renders a metric for logs.
func (m Metric) String() string {
	if m.Kind == "histogram" {
		return fmt.Sprintf("%s: n=%d sum=%d p50=%d p99=%d max=%d",
			m.Name, m.Count, m.Sum, m.P50, m.P99, m.Max)
	}
	return fmt.Sprintf("%s: %d", m.Name, m.Value)
}
