package report

import (
	"path/filepath"
	"strings"
	"testing"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/obs"
)

// mkManifest builds a manifest for scenario with the given engine mode
// and throughput; tweak mutates it after the deterministic core is set.
func mkManifest(scenario, mode string, mrefs float64, tweak func(*obs.Manifest)) *obs.Manifest {
	m := obs.NewManifest("pimtrace")
	m.Scenario = scenario
	ccfg := cache.Config{
		SizeWords: 4096, BlockWords: 4, Ways: 4, LockEntries: 4,
		Protocol: cache.ProtocolPIM,
	}
	m.Config = obs.NewRunConfig(8, ccfg, bus.DefaultTiming(), "all", mode, 0)
	m.Trace = &obs.TraceInfo{SHA256: "feed", Refs: 1000, PEs: 8, LayoutWords: 65536}
	cs := cache.Stats{}
	cs.Hits[0] = 700
	cs.Misses[0] = 300
	m.Stats = obs.NewRunStats(1000, cs, bus.Stats{})
	m.Timing.MrefsPerSec = mrefs
	if tweak != nil {
		tweak(m)
	}
	return m
}

func TestDiffIdentical(t *testing.T) {
	a := mkManifest("s", "stream", 20, nil)
	b := mkManifest("s", "stream", 22, nil)
	d, err := DiffManifests(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !d.SameKey || !d.SameStatsKey || !d.OK() {
		t.Fatalf("identical runs should be clean: %+v", d)
	}
	out := d.Format("a.json", "b.json")
	for _, want := range []string{
		"scenario: identical",
		"stats: identical",
		"20.00 -> 22.00 Mrefs/s (+10.0%)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
}

func TestDiffDeterminismViolation(t *testing.T) {
	a := mkManifest("s", "stream", 20, nil)
	b := mkManifest("s", "stream", 20, func(m *obs.Manifest) {
		m.Stats.Cache.Hits[0] = 701 // corrupt one deterministic stat
	})
	d, err := DiffManifests(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.OK() {
		t.Fatal("stat mismatch must fail the diff")
	}
	out := d.Format("a.json", "b.json")
	if !strings.Contains(out, "DETERMINISM VIOLATION") {
		t.Errorf("diff output missing violation banner:\n%s", out)
	}
	// The mismatch must name the field path and both values.
	found := false
	for _, m := range d.Mismatches {
		if strings.Contains(m.Path, "Hits") && m.A == "700" && m.B == "701" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a stats.*Hits 700 != 701 mismatch, got %+v", d.Mismatches)
	}
}

// TestDiffCrossMode: packed/stats-only runs share a StatsKey with the
// stream run, so their stats are compared (and must match); their Keys
// differ, so throughput is not gated between them.
func TestDiffCrossMode(t *testing.T) {
	a := mkManifest("s", "stream", 20, nil)
	b := mkManifest("s2", "packed", 30, func(m *obs.Manifest) {
		m.Config.StatsOnly = true
	})
	d, err := DiffManifests(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.SameKey {
		t.Fatal("different mode must split the Key")
	}
	if !d.SameStatsKey {
		t.Fatal("different mode must not split the StatsKey")
	}
	if !d.OK() {
		t.Fatalf("cross-mode stats should match: %+v", d.Mismatches)
	}
}

func TestMedianManifest(t *testing.T) {
	runs := []*obs.Manifest{
		mkManifest("s", "stream", 30, nil),
		mkManifest("s", "stream", 10, nil),
		mkManifest("s", "stream", 20, nil),
	}
	med, err := MedianManifest(runs)
	if err != nil {
		t.Fatal(err)
	}
	if med.Timing.MrefsPerSec != 20 {
		t.Fatalf("median = %v, want 20", med.Timing.MrefsPerSec)
	}
	if med.Timing.MedianOf != 3 {
		t.Fatalf("MedianOf = %d, want 3", med.Timing.MedianOf)
	}

	// Even count: mean of the middle two.
	runs = append(runs, mkManifest("s", "stream", 40, nil))
	med, err = MedianManifest(runs)
	if err != nil {
		t.Fatal(err)
	}
	if med.Timing.MrefsPerSec != 25 {
		t.Fatalf("even median = %v, want 25", med.Timing.MrefsPerSec)
	}
}

func TestMedianRejectsMixedScenarios(t *testing.T) {
	runs := []*obs.Manifest{
		mkManifest("s", "stream", 30, nil),
		mkManifest("s", "packed", 10, nil),
	}
	if _, err := MedianManifest(runs); err == nil {
		t.Fatal("mixed-mode runs must not merge")
	}
}

func TestMedianRejectsNondeterministicRepeats(t *testing.T) {
	runs := []*obs.Manifest{
		mkManifest("s", "stream", 30, nil),
		mkManifest("s", "stream", 30, func(m *obs.Manifest) {
			m.Stats.Cache.Hits[0] = 999
		}),
	}
	_, err := MedianManifest(runs)
	if err == nil || !strings.Contains(err.Error(), "DETERMINISM VIOLATION") {
		t.Fatalf("repeat-run stat drift must be a violation, got %v", err)
	}
}

func TestCheckPass(t *testing.T) {
	base := []*obs.Manifest{mkManifest("s", "stream", 20, nil)}
	runs := []*obs.Manifest{
		mkManifest("s", "stream", 19, nil),
		mkManifest("s", "stream", 17, nil),
		mkManifest("s", "stream", 18, nil),
	}
	res, err := Check(base, runs, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("median 18 vs floor 16 should pass:\n%s", res.Format())
	}
	out := res.Format()
	for _, want := range []string{"s", "18.00", "20.00", "16.00", "PASS",
		"all scenarios within tolerance"} {
		if !strings.Contains(out, want) {
			t.Errorf("check output missing %q:\n%s", want, out)
		}
	}
}

func TestCheckThroughputFail(t *testing.T) {
	base := []*obs.Manifest{mkManifest("s", "stream", 20, nil)}
	runs := []*obs.Manifest{
		mkManifest("s", "stream", 10, nil),
		mkManifest("s", "stream", 11, nil),
		mkManifest("s", "stream", 12, nil),
	}
	res, err := Check(base, runs, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("median 11 vs floor 16 must fail")
	}
	out := res.Format()
	if !strings.Contains(out, "FAIL s: median 11.00 Mrefs/s below floor 16.00") {
		t.Errorf("check output missing throughput failure line:\n%s", out)
	}
}

func TestCheckStatsViolationIsHardError(t *testing.T) {
	base := []*obs.Manifest{mkManifest("s", "stream", 20, nil)}
	// Throughput excellent, but stats drifted from the baseline.
	runs := []*obs.Manifest{
		mkManifest("s", "stream", 100, func(m *obs.Manifest) {
			m.Stats.Cache.Hits[0] = 999
		}),
	}
	res, err := Check(base, runs, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("stat drift must fail regardless of throughput")
	}
	if !strings.Contains(res.Format(), "DETERMINISM VIOLATION") {
		t.Errorf("check output missing violation:\n%s", res.Format())
	}
}

func TestCheckUnmatchedScenarios(t *testing.T) {
	base := []*obs.Manifest{
		mkManifest("covered", "stream", 20, nil),
		mkManifest("skipped", "packed", 20, nil),
	}
	runs := []*obs.Manifest{mkManifest("covered", "stream", 20, nil)}
	res, err := Check(base, runs, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("an unexercised baseline must fail the gate")
	}
	if !strings.Contains(res.Format(), "baseline skipped: no run matched") {
		t.Errorf("missing unused-baseline failure:\n%s", res.Format())
	}

	// And a run with no baseline fails too.
	runs = append(runs, mkManifest("novel", "stream", 20, func(m *obs.Manifest) {
		m.Config.PEs = 16
	}))
	res, err = Check(base, runs, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("a run without a baseline must fail the gate")
	}
	if !strings.Contains(res.Format(), "no baseline for this scenario") {
		t.Errorf("missing no-baseline failure:\n%s", res.Format())
	}
}

func TestLoadDirAndTable(t *testing.T) {
	dir := t.TempDir()
	m := mkManifest("s", "stream", 20, nil)
	m.Timing.MedianOf = 5
	if err := m.WriteFile(filepath.Join(dir, "s.json")); err != nil {
		t.Fatal(err)
	}
	ms, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("loaded %d manifests, want 1", len(ms))
	}
	out := Table(ms)
	for _, want := range []string{"Replay throughput", "s", "stream", "20.00", "1000", "5"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}

	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Fatal("empty baseline dir must error")
	}
}
