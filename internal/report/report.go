// Package report compares and aggregates run manifests (internal/obs):
// it backs cmd/pimreport, the tool that replaced the awk throughput
// gate in CI. The comparison rules mirror the manifest's two-part
// structure:
//
//   - Deterministic sections (config, trace digest, cache/bus stats)
//     are compared exactly. Two manifests with equal StatsKey that
//     disagree on any stat field is a determinism violation — a hard
//     error, never a tolerance question. This makes every CI run a
//     free cross-host determinism oracle.
//
//   - Throughput is noisy, so it is gated with a tolerance band around
//     the median of N runs: median(runs) >= baseline * (1 - tol).
package report

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"pimcache/internal/obs"
	"pimcache/internal/stats"
)

// Load reads one manifest per path.
func Load(paths []string) ([]*obs.Manifest, error) {
	ms := make([]*obs.Manifest, 0, len(paths))
	for _, p := range paths {
		m, err := obs.ReadManifestFile(p)
		if err != nil {
			return nil, err
		}
		ms = append(ms, m)
	}
	return ms, nil
}

// LoadDir reads every *.json manifest in dir, sorted by filename.
func LoadDir(dir string) ([]*obs.Manifest, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("report: no *.json manifests in %s", dir)
	}
	return Load(paths)
}

// StatMismatch is one deterministic field that differs between two
// manifests that should agree bit for bit.
type StatMismatch struct {
	Path string // JSON field path, e.g. "stats.cache.read_miss"
	A, B string // rendered values
}

// DiffStats compares the deterministic Stats sections of two manifests
// field by field, returning every mismatching path. Both sides are
// walked through their JSON rendering, so the comparison automatically
// tracks the cache.Stats/bus.Stats schema.
func DiffStats(a, b *obs.Manifest) ([]StatMismatch, error) {
	av, err := toJSONValue(a.Stats)
	if err != nil {
		return nil, err
	}
	bv, err := toJSONValue(b.Stats)
	if err != nil {
		return nil, err
	}
	var out []StatMismatch
	diffValue("stats", av, bv, &out)
	return out, nil
}

func toJSONValue(v any) (any, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	var out any
	if err := json.Unmarshal(b, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// diffValue walks two decoded JSON values in parallel, appending a
// mismatch for every leaf (or structurally absent subtree) that
// differs.
func diffValue(path string, a, b any, out *[]StatMismatch) {
	switch av := a.(type) {
	case map[string]any:
		bv, ok := b.(map[string]any)
		if !ok {
			*out = append(*out, StatMismatch{Path: path, A: render(a), B: render(b)})
			return
		}
		keys := map[string]bool{}
		for k := range av {
			keys[k] = true
		}
		for k := range bv {
			keys[k] = true
		}
		sorted := make([]string, 0, len(keys))
		for k := range keys {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)
		for _, k := range sorted {
			diffValue(path+"."+k, av[k], bv[k], out)
		}
	case []any:
		bv, ok := b.([]any)
		if !ok || len(av) != len(bv) {
			*out = append(*out, StatMismatch{Path: path, A: render(a), B: render(b)})
			return
		}
		for i := range av {
			diffValue(fmt.Sprintf("%s[%d]", path, i), av[i], bv[i], out)
		}
	default:
		if render(a) != render(b) {
			*out = append(*out, StatMismatch{Path: path, A: render(a), B: render(b)})
		}
	}
}

func render(v any) string {
	if v == nil {
		return "<absent>"
	}
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("%v", v)
	}
	return string(b)
}

// Diff is the result of comparing two manifests.
type Diff struct {
	SameKey      bool // identical scenario+config+trace (throughput comparable)
	SameStatsKey bool // identical simulated machine+input (stats must match)
	Mismatches   []StatMismatch
	AThroughput  float64
	BThroughput  float64
}

// DiffManifests compares a against b. Stats are compared whenever the
// StatsKeys match (same simulated machine and input, possibly via
// different engine modes); mismatches there are determinism
// violations.
func DiffManifests(a, b *obs.Manifest) (*Diff, error) {
	d := &Diff{
		SameKey:      a.Key() == b.Key(),
		SameStatsKey: a.StatsKey() == b.StatsKey(),
		AThroughput:  a.Timing.MrefsPerSec,
		BThroughput:  b.Timing.MrefsPerSec,
	}
	if d.SameStatsKey {
		mm, err := DiffStats(a, b)
		if err != nil {
			return nil, err
		}
		d.Mismatches = mm
	}
	return d, nil
}

// Format renders the diff for the terminal.
func (d *Diff) Format(aName, bName string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "diff %s %s\n", aName, bName)
	switch {
	case d.SameKey:
		sb.WriteString("  scenario: identical (throughput comparable)\n")
	case d.SameStatsKey:
		sb.WriteString("  scenario: same machine+input via different engine mode\n")
	default:
		sb.WriteString("  scenario: different machine or input (stats not compared)\n")
	}
	if d.SameStatsKey {
		if len(d.Mismatches) == 0 {
			sb.WriteString("  stats: identical (deterministic check passed)\n")
		} else {
			fmt.Fprintf(&sb, "  stats: DETERMINISM VIOLATION — %d field(s) differ:\n", len(d.Mismatches))
			for _, m := range d.Mismatches {
				fmt.Fprintf(&sb, "    %-40s %s != %s\n", m.Path, m.A, m.B)
			}
		}
	}
	if d.AThroughput > 0 && d.BThroughput > 0 {
		delta := 100 * (d.BThroughput - d.AThroughput) / d.AThroughput
		fmt.Fprintf(&sb, "  throughput: %.2f -> %.2f Mrefs/s (%+.1f%%)\n",
			d.AThroughput, d.BThroughput, delta)
	}
	return sb.String()
}

// OK reports whether the diff found no determinism violation.
func (d *Diff) OK() bool { return len(d.Mismatches) == 0 }

// MedianManifest merges N runs of the same scenario into one manifest
// carrying the median throughput (and median wall/work seconds), with
// Timing.MedianOf recording N. All runs must share a Key, and their
// deterministic stats must agree exactly — a disagreement between
// repeat runs on one host is the strongest possible determinism alarm.
func MedianManifest(runs []*obs.Manifest) (*obs.Manifest, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("report: median of zero manifests")
	}
	first := runs[0]
	for i, r := range runs[1:] {
		if r.Key() != first.Key() {
			return nil, fmt.Errorf("report: manifest %d has key %s, first has %s — not the same scenario",
				i+1, r.Key(), first.Key())
		}
		mm, err := DiffStats(first, r)
		if err != nil {
			return nil, err
		}
		if len(mm) != 0 {
			return nil, fmt.Errorf("report: DETERMINISM VIOLATION between repeat runs: %s (%s != %s)",
				mm[0].Path, mm[0].A, mm[0].B)
		}
	}
	out := *first
	out.Timing.MrefsPerSec = medianOf(runs, func(m *obs.Manifest) float64 { return m.Timing.MrefsPerSec })
	out.Timing.WallSeconds = medianOf(runs, func(m *obs.Manifest) float64 { return m.Timing.WallSeconds })
	out.Timing.WorkSeconds = medianOf(runs, func(m *obs.Manifest) float64 { return m.Timing.WorkSeconds })
	out.Timing.MedianOf = len(runs)
	return &out, nil
}

func medianOf(runs []*obs.Manifest, get func(*obs.Manifest) float64) float64 {
	vals := make([]float64, len(runs))
	for i, r := range runs {
		vals[i] = get(r)
	}
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

// GroupByKey buckets manifests by scenario key, preserving first-seen
// order of keys.
func GroupByKey(ms []*obs.Manifest) ([]string, map[string][]*obs.Manifest) {
	var order []string
	groups := map[string][]*obs.Manifest{}
	for _, m := range ms {
		k := m.Key()
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], m)
	}
	return order, groups
}

// CheckLine is one scenario's verdict in a regression check.
type CheckLine struct {
	Scenario   string
	Runs       int
	Median     float64 // Mrefs/s, median of runs
	Baseline   float64 // Mrefs/s from the baseline manifest
	Floor      float64 // baseline * (1 - tolerance)
	StatsOK    bool    // deterministic stats match the baseline
	Mismatches []StatMismatch
	Pass       bool
	Note       string // set when the line failed structurally (no baseline, etc.)
}

// CheckResult is the full verdict of a regression check.
type CheckResult struct {
	Lines []CheckLine
	// UnusedBaselines lists baseline scenarios no run matched — a
	// drifted CI script silently skipping a gate is itself a failure.
	UnusedBaselines []string
}

// OK reports whether every line passed and every baseline was
// exercised.
func (c *CheckResult) OK() bool {
	for _, l := range c.Lines {
		if !l.Pass {
			return false
		}
	}
	return len(c.UnusedBaselines) == 0
}

// Check gates runs against baselines: for each scenario (grouped by
// Key), the median run throughput must reach baseline*(1-tolerance),
// and the deterministic stats must equal the baseline's exactly. Runs
// with no matching baseline fail (the gate must never silently skip),
// as do baselines with no matching run.
func Check(baselines, runs []*obs.Manifest, tolerance float64) (*CheckResult, error) {
	if tolerance < 0 || tolerance >= 1 {
		return nil, fmt.Errorf("report: tolerance %.2f out of range [0,1)", tolerance)
	}
	baseByKey := map[string]*obs.Manifest{}
	for _, b := range baselines {
		if prev, dup := baseByKey[b.Key()]; dup {
			return nil, fmt.Errorf("report: two baselines share key %s (scenarios %q, %q)",
				b.Key(), prev.Scenario, b.Scenario)
		}
		baseByKey[b.Key()] = b
	}
	matched := map[string]bool{}

	res := &CheckResult{}
	order, groups := GroupByKey(runs)
	for _, key := range order {
		group := groups[key]
		line := CheckLine{
			Scenario: scenarioLabel(group[0]),
			Runs:     len(group),
		}
		med, err := MedianManifest(group)
		if err != nil {
			// Repeat-run determinism violation or key clash.
			line.Note = err.Error()
			res.Lines = append(res.Lines, line)
			continue
		}
		line.Median = med.Timing.MrefsPerSec

		base := baseByKey[key]
		if base == nil {
			line.Note = "no baseline for this scenario (key " + key + ")"
			res.Lines = append(res.Lines, line)
			continue
		}
		matched[key] = true
		line.Baseline = base.Timing.MrefsPerSec
		line.Floor = base.Timing.MrefsPerSec * (1 - tolerance)

		mm, err := DiffStats(base, med)
		if err != nil {
			return nil, err
		}
		line.Mismatches = mm
		line.StatsOK = len(mm) == 0
		line.Pass = line.StatsOK && line.Median >= line.Floor
		res.Lines = append(res.Lines, line)
	}
	for key, b := range baseByKey {
		if !matched[key] {
			res.UnusedBaselines = append(res.UnusedBaselines, scenarioLabel(b))
		}
	}
	sort.Strings(res.UnusedBaselines)
	return res, nil
}

func scenarioLabel(m *obs.Manifest) string {
	if m.Scenario != "" {
		return m.Scenario
	}
	return "key:" + m.Key()
}

// Format renders the check verdict for the terminal.
func (c *CheckResult) Format() string {
	var sb strings.Builder
	t := &stats.Table{
		Title:   "Perf-regression check",
		Columns: []string{"scenario", "runs", "median", "baseline", "floor", "stats", "verdict"},
	}
	for _, l := range c.Lines {
		verdict := "PASS"
		if !l.Pass {
			verdict = "FAIL"
		}
		statsCell := "ok"
		if len(l.Mismatches) > 0 {
			statsCell = fmt.Sprintf("%d mismatch", len(l.Mismatches))
		} else if l.Note != "" {
			statsCell = "-"
		}
		t.AddRow(l.Scenario,
			fmt.Sprintf("%d", l.Runs),
			fmt.Sprintf("%.2f", l.Median),
			fmt.Sprintf("%.2f", l.Baseline),
			fmt.Sprintf("%.2f", l.Floor),
			statsCell,
			verdict,
		)
	}
	sb.WriteString(t.String())
	for _, l := range c.Lines {
		if l.Note != "" {
			fmt.Fprintf(&sb, "FAIL %s: %s\n", l.Scenario, l.Note)
		}
		for _, m := range l.Mismatches {
			fmt.Fprintf(&sb, "FAIL %s: DETERMINISM VIOLATION %s: %s != %s\n",
				l.Scenario, m.Path, m.A, m.B)
		}
		if l.Note == "" && l.StatsOK && !l.Pass {
			fmt.Fprintf(&sb, "FAIL %s: median %.2f Mrefs/s below floor %.2f (baseline %.2f)\n",
				l.Scenario, l.Median, l.Floor, l.Baseline)
		}
	}
	for _, s := range c.UnusedBaselines {
		fmt.Fprintf(&sb, "FAIL baseline %s: no run matched it — gate did not run\n", s)
	}
	if c.OK() {
		sb.WriteString("all scenarios within tolerance; deterministic stats exact\n")
	}
	return sb.String()
}

// Table renders a replay-throughput table from manifests (one row per
// scenario), the format docs/eval_snapshot.txt embeds.
func Table(ms []*obs.Manifest) string {
	t := &stats.Table{
		Title:   "Replay throughput (median Mrefs/s)",
		Columns: []string{"scenario", "mode", "pes", "refs", "Mrefs/s", "runs"},
	}
	for _, m := range ms {
		var refs uint64
		if m.Stats != nil {
			refs = m.Stats.Refs
		}
		runs := m.Timing.MedianOf
		if runs == 0 {
			runs = 1
		}
		t.AddRow(scenarioLabel(m),
			m.Config.Mode,
			fmt.Sprintf("%d", m.Config.PEs),
			fmt.Sprintf("%d", refs),
			fmt.Sprintf("%.2f", m.Timing.MrefsPerSec),
			fmt.Sprintf("%d", runs),
		)
	}
	return t.String()
}

// WriteManifest writes m to path (pimreport median -o).
func WriteManifest(m *obs.Manifest, path string) error {
	if path == "-" || path == "" {
		b, err := m.MarshalIndent()
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(b)
		return err
	}
	return m.WriteFile(path)
}
