package word

import (
	"testing"
	"testing/quick"
)

func TestIntRoundTrip(t *testing.T) {
	cases := []int64{0, 1, -1, 42, -42, MaxInt, MinInt, 1 << 40, -(1 << 40)}
	for _, v := range cases {
		w := Int(v)
		if w.Tag() != TagInt {
			t.Fatalf("Int(%d).Tag() = %v, want TagInt", v, w.Tag())
		}
		if got := w.IntVal(); got != v {
			t.Errorf("Int(%d).IntVal() = %d", v, got)
		}
	}
}

func TestIntRoundTripProperty(t *testing.T) {
	f := func(v int64) bool {
		// Clamp to the representable range; quick generates full int64s.
		v %= MaxInt
		return Int(v).IntVal() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntOverflowPanics(t *testing.T) {
	for _, v := range []int64{MaxInt + 1, MinInt - 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Int(%d) did not panic", v)
				}
			}()
			Int(v)
		}()
	}
}

func TestAddrWords(t *testing.T) {
	a := Addr(0x12345678)
	for _, tc := range []struct {
		w    Word
		tag  Tag
		name string
	}{
		{Ref(a), TagRef, "Ref"},
		{Unbound(a), TagUnbound, "Unbound"},
		{Hook(a), TagHook, "Hook"},
		{List(a), TagList, "List"},
		{Struct(a), TagStruct, "Struct"},
		{Goal(a), TagGoal, "Goal"},
		{Susp(a), TagSusp, "Susp"},
		{Free(a), TagFree, "Free"},
	} {
		if tc.w.Tag() != tc.tag {
			t.Errorf("%s tag = %v, want %v", tc.name, tc.w.Tag(), tc.tag)
		}
		if tc.w.Addr() != a {
			t.Errorf("%s addr = %#x, want %#x", tc.name, tc.w.Addr(), a)
		}
	}
}

func TestFunctorPacking(t *testing.T) {
	f := Functor(AtomID(7), 3)
	if f.Tag() != TagFunctor {
		t.Fatalf("tag = %v", f.Tag())
	}
	if f.FunctorName() != 7 || f.FunctorArity() != 3 {
		t.Errorf("got %d/%d, want 7/3", f.FunctorName(), f.FunctorArity())
	}
	// Max arity and a big atom id must not interfere.
	g := Functor(AtomID(1<<30), 0xFFFF)
	if g.FunctorName() != 1<<30 || g.FunctorArity() != 0xFFFF {
		t.Errorf("got %d/%d", g.FunctorName(), g.FunctorArity())
	}
}

func TestFunctorArityOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Functor with arity 70000 did not panic")
		}
	}()
	Functor(1, 70000)
}

func TestIsVar(t *testing.T) {
	if !Unbound(5).IsVar() || !Hook(5).IsVar() {
		t.Error("Unbound/Hook should be vars")
	}
	if Ref(5).IsVar() || Int(5).IsVar() || Nil().IsVar() {
		t.Error("Ref/Int/Nil should not be vars")
	}
}

func TestIsAtomic(t *testing.T) {
	if !Int(1).IsAtomic() || !Atom(1).IsAtomic() || !Nil().IsAtomic() {
		t.Error("Int/Atom/Nil should be atomic")
	}
	if List(1).IsAtomic() || Struct(1).IsAtomic() || Unbound(1).IsAtomic() {
		t.Error("pointers should not be atomic")
	}
}

func TestTagString(t *testing.T) {
	if TagInt.String() != "int" || TagHook.String() != "hook" {
		t.Error("unexpected tag names")
	}
	if Tag(200).String() != "tag(200)" {
		t.Errorf("out-of-range tag rendered %q", Tag(200).String())
	}
}

func TestAtomTable(t *testing.T) {
	tb := NewTable()
	foo := tb.Intern("foo")
	bar := tb.Intern("bar")
	if foo == bar {
		t.Fatal("distinct names share an id")
	}
	if tb.Intern("foo") != foo {
		t.Error("re-interning foo changed its id")
	}
	if tb.Name(foo) != "foo" || tb.Name(bar) != "bar" {
		t.Error("Name round trip failed")
	}
	if tb.Len() != 2 {
		t.Errorf("Len = %d, want 2", tb.Len())
	}
	if tb.Name(AtomID(999)) != "#999" {
		t.Errorf("unknown atom rendered %q", tb.Name(999))
	}
}

func TestAtomTableConcurrent(t *testing.T) {
	tb := NewTable()
	done := make(chan AtomID)
	for i := 0; i < 8; i++ {
		go func() { done <- tb.Intern("same") }()
	}
	first := <-done
	for i := 1; i < 8; i++ {
		if id := <-done; id != first {
			t.Fatalf("concurrent Intern returned %d and %d", first, id)
		}
	}
}

func TestWordStringSymbolic(t *testing.T) {
	tb := NewTable()
	foo := tb.Intern("foo")
	if s := tb.WordString(Atom(foo)); s != "foo" {
		t.Errorf("atom rendered %q", s)
	}
	if s := tb.WordString(Functor(foo, 2)); s != "foo/2" {
		t.Errorf("functor rendered %q", s)
	}
	if s := tb.WordString(Int(9)); s != "int:9" {
		t.Errorf("int rendered %q", s)
	}
}
