// Package word defines the tagged-word data representation used by the
// simulated KL1 machine. Every cell of the simulated shared memory holds
// one Word: a 64-bit value carrying an 8-bit tag and a 56-bit payload.
//
// The representation follows the WAM-derived KL1 model described in the
// PIM cache paper (Goto, Matsumoto, Tick; ISCA 1989): logic variables,
// references, atoms, small integers, list cells, and structures all live
// in the heap as tagged words, while goal records, suspension records and
// communication messages reuse the same encoding in their own areas.
package word

import (
	"fmt"
	"sync"
)

// Addr is a simulated word address. The machine is word-addressed; block
// and area geometry are expressed in words throughout the simulator.
type Addr uint32

// NilAddr is the distinguished null address. Address 0 is reserved by the
// memory layout so that a zero payload never aliases a real cell.
const NilAddr Addr = 0

// Tag identifies the interpretation of a Word's payload.
type Tag uint8

// Word tags. The numeric values are part of the simulated machine's data
// format (they appear in instruction immediates and in memory dumps) and
// must not be reordered.
const (
	// TagInt is a signed 56-bit integer.
	TagInt Tag = iota
	// TagAtom is an interned symbolic constant; payload is the atom id.
	TagAtom
	// TagNil is the empty list; payload unused.
	TagNil
	// TagRef is a bound reference to another cell; payload is an Addr.
	TagRef
	// TagUnbound marks an unbound logic variable. The payload holds the
	// cell's own address, which lets unification code recover a variable's
	// location after it has been loaded into a register.
	TagUnbound
	// TagHook marks an unbound variable with waiting (suspended) goals;
	// payload is the address of the first suspension record.
	TagHook
	// TagList is a cons cell pointer; car at payload addr, cdr at addr+1.
	TagList
	// TagStruct points at a functor word; the args follow contiguously.
	TagStruct
	// TagFunctor encodes name/arity inside a structure: payload packs the
	// atom id (low 40 bits) and arity (next 16 bits).
	TagFunctor
	// TagCode is an encoded abstract-machine instruction word.
	TagCode
	// TagGoal points at a goal record in the goal area.
	TagGoal
	// TagSusp points at a suspension record in the suspension area.
	TagSusp
	// TagFree links free records inside a free-list managed area.
	TagFree

	numTags
)

var tagNames = [numTags]string{
	"int", "atom", "nil", "ref", "unb", "hook", "list", "struct",
	"functor", "code", "goal", "susp", "free",
}

// String returns the short mnemonic for the tag.
func (t Tag) String() string {
	if int(t) < len(tagNames) {
		return tagNames[t]
	}
	return fmt.Sprintf("tag(%d)", uint8(t))
}

// Word is one cell of simulated memory: tag in the top 8 bits, payload in
// the low 56.
type Word uint64

const (
	payloadBits = 56
	payloadMask = (Word(1) << payloadBits) - 1
	intSignBit  = Word(1) << (payloadBits - 1)
)

// MaxInt and MinInt bound the signed 56-bit integer payload range.
const (
	MaxInt = int64(1)<<(payloadBits-1) - 1
	MinInt = -int64(1) << (payloadBits - 1)
)

// make assembles a word from tag and raw payload.
func mk(t Tag, payload Word) Word {
	return Word(t)<<payloadBits | (payload & payloadMask)
}

// Tag extracts the word's tag.
func (w Word) Tag() Tag { return Tag(w >> payloadBits) }

// Payload returns the raw 56-bit payload.
func (w Word) Payload() uint64 { return uint64(w & payloadMask) }

// Addr interprets the payload as a simulated address.
func (w Word) Addr() Addr { return Addr(w & payloadMask) }

// Int constructs an integer word. Values outside the 56-bit range panic:
// the simulated machine has no bignums and the benchmarks are written to
// stay in range, so an overflow is a program bug, not a runtime condition.
func Int(v int64) Word {
	if v > MaxInt || v < MinInt {
		panic(fmt.Sprintf("word: integer %d outside 56-bit payload range", v))
	}
	return mk(TagInt, Word(v)&payloadMask)
}

// IntVal extracts the signed integer payload.
func (w Word) IntVal() int64 {
	p := w & payloadMask
	if p&intSignBit != 0 {
		return int64(p | ^payloadMask) // sign-extend
	}
	return int64(p)
}

// Atom constructs an atom word from an interned atom id.
func Atom(id AtomID) Word { return mk(TagAtom, Word(id)) }

// AtomVal extracts the atom id.
func (w Word) AtomVal() AtomID { return AtomID(w & payloadMask) }

// Nil is the empty-list constant.
func Nil() Word { return mk(TagNil, 0) }

// Ref constructs a bound reference to addr.
func Ref(a Addr) Word { return mk(TagRef, Word(a)) }

// Unbound constructs the self-referential unbound-variable word for the
// cell at addr.
func Unbound(a Addr) Word { return mk(TagUnbound, Word(a)) }

// Hook constructs an unbound variable whose suspension list starts at the
// given suspension-record address.
func Hook(susp Addr) Word { return mk(TagHook, Word(susp)) }

// List constructs a cons-cell pointer (car at a, cdr at a+1).
func List(a Addr) Word { return mk(TagList, Word(a)) }

// Struct constructs a structure pointer to the functor word at a.
func Struct(a Addr) Word { return mk(TagStruct, Word(a)) }

// Functor packs a name/arity pair. Arity is limited to 16 bits.
func Functor(name AtomID, arity int) Word {
	if arity < 0 || arity > 0xFFFF {
		panic(fmt.Sprintf("word: functor arity %d out of range", arity))
	}
	return mk(TagFunctor, Word(arity)<<40|Word(name)&((1<<40)-1))
}

// FunctorName extracts the functor's atom id.
func (w Word) FunctorName() AtomID { return AtomID(w & ((1 << 40) - 1)) }

// FunctorArity extracts the functor's arity.
func (w Word) FunctorArity() int { return int((w >> 40) & 0xFFFF) }

// Code wraps a raw encoded instruction payload.
func Code(payload uint64) Word { return mk(TagCode, Word(payload)) }

// Goal constructs a goal-record pointer.
func Goal(a Addr) Word { return mk(TagGoal, Word(a)) }

// Susp constructs a suspension-record pointer.
func Susp(a Addr) Word { return mk(TagSusp, Word(a)) }

// Free constructs a free-list link word.
func Free(next Addr) Word { return mk(TagFree, Word(next)) }

// IsVar reports whether the word is an unbound variable (with or without
// suspended goals hooked on it).
func (w Word) IsVar() bool {
	t := w.Tag()
	return t == TagUnbound || t == TagHook
}

// IsAtomic reports whether the word is a non-pointer constant.
func (w Word) IsAtomic() bool {
	switch w.Tag() {
	case TagInt, TagAtom, TagNil:
		return true
	}
	return false
}

// String renders the word for debugging without atom names. Use
// Table.WordString for symbolic output.
func (w Word) String() string {
	switch w.Tag() {
	case TagInt:
		return fmt.Sprintf("int:%d", w.IntVal())
	case TagAtom:
		return fmt.Sprintf("atom:#%d", w.AtomVal())
	case TagNil:
		return "[]"
	case TagFunctor:
		return fmt.Sprintf("functor:#%d/%d", w.FunctorName(), w.FunctorArity())
	default:
		return fmt.Sprintf("%s:%d", w.Tag(), w.Payload())
	}
}

// AtomID names an interned atom.
type AtomID uint32

// Table interns atom names. It lives outside simulated memory: atom names
// are compile-time constants of the emulated programs, mirroring the
// paper's assumption that symbolic metadata does not generate memory
// references.
//
// A Table is safe for concurrent use.
type Table struct {
	mu    sync.RWMutex
	ids   map[string]AtomID
	names []string
}

// NewTable returns an empty atom table.
func NewTable() *Table {
	return &Table{ids: make(map[string]AtomID)}
}

// Intern returns the id for name, creating it if needed.
func (tb *Table) Intern(name string) AtomID {
	tb.mu.RLock()
	id, ok := tb.ids[name]
	tb.mu.RUnlock()
	if ok {
		return id
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if id, ok := tb.ids[name]; ok {
		return id
	}
	id = AtomID(len(tb.names))
	tb.names = append(tb.names, name)
	tb.ids[name] = id
	return id
}

// Name returns the string for an atom id, or "#<id>" if unknown.
func (tb *Table) Name(id AtomID) string {
	tb.mu.RLock()
	defer tb.mu.RUnlock()
	if int(id) < len(tb.names) {
		return tb.names[id]
	}
	return fmt.Sprintf("#%d", uint32(id))
}

// Len reports the number of interned atoms.
func (tb *Table) Len() int {
	tb.mu.RLock()
	defer tb.mu.RUnlock()
	return len(tb.names)
}

// WordString renders a word using interned atom names.
func (tb *Table) WordString(w Word) string {
	switch w.Tag() {
	case TagAtom:
		return tb.Name(w.AtomVal())
	case TagFunctor:
		return fmt.Sprintf("%s/%d", tb.Name(w.FunctorName()), w.FunctorArity())
	default:
		return w.String()
	}
}
