package parser

import (
	"math/rand"
	"testing"
)

// TestClauseRoundTrip: rendering a parsed clause with String() and
// reparsing it yields an identical rendering (a fixpoint after one
// round, since rendering normalizes implicit true guards/bodies).
func TestClauseRoundTrip(t *testing.T) {
	sources := []string{
		"p.",
		"p(1, -2, foo).",
		"p(X, [H|T]) :- H > 0 | q(T, X).",
		"p(f(g(X), [a,b|C])) :- integer(X) | X1 := X * 2 + 1, r(X1, C).",
		"p(X, X) :- otherwise | true.",
		"p(X) :- X =< 3, X >= -3, X =\\= 0 | q(X).",
		"stream([H|T], O) :- wait(H) | O = [H|O1], stream(T, O1).",
	}
	for _, src := range sources {
		prog1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		c1 := prog1.Procedures[0].Clause[0]
		rendered := c1.String()
		prog2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", rendered, src, err)
		}
		c2 := prog2.Procedures[0].Clause[0]
		if c2.String() != rendered {
			t.Errorf("round trip not a fixpoint:\n  src  %q\n  one  %q\n  two  %q",
				src, rendered, c2.String())
		}
	}
}

// TestRandomTermRoundTrip generates random terms, renders them as the
// head argument of a clause, and checks the parse-render fixpoint.
func TestRandomTermRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var gen func(depth int) Term
	gen = func(depth int) Term {
		if depth <= 0 {
			switch rng.Intn(4) {
			case 0:
				return Int{Value: int64(rng.Intn(2000) - 1000)}
			case 1:
				return Atom{Name: string(rune('a' + rng.Intn(26)))}
			case 2:
				return Var{Name: "V" + string(rune('A'+rng.Intn(26)))}
			default:
				return NilList{}
			}
		}
		switch rng.Intn(3) {
		case 0:
			return Cons{Car: gen(depth - 1), Cdr: gen(depth - 1)}
		case 1:
			n := 1 + rng.Intn(3)
			s := Struct{Functor: "f" + string(rune('a'+rng.Intn(3)))}
			for i := 0; i < n; i++ {
				s.Args = append(s.Args, gen(depth-1))
			}
			return s
		default:
			return gen(0)
		}
	}
	for i := 0; i < 200; i++ {
		term := gen(3)
		src := "p(" + term.String() + ")."
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		got := prog.Procedures[0].Clause[0].Head.Args[0].String()
		if got != term.String() {
			t.Fatalf("term round trip: %q became %q", term.String(), got)
		}
	}
}
