package parser

import (
	"fmt"
)

// Parse parses an FGHC source text into a Program.
func Parse(src string) (*Program, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	prog := &Program{}
	for p.tok.kind != tokEOF {
		c, err := p.clause()
		if err != nil {
			return nil, err
		}
		prog.addClause(c)
	}
	return prog, nil
}

// MustParse parses or panics; for tests and embedded benchmark sources.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type parser struct {
	lex    *lexer
	tok    token
	anonID int
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("line %d: %s", p.tok.line, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(s string) error {
	if p.tok.kind != tokPunct || p.tok.text != s {
		return p.errorf("expected %q, found %v", s, p.tok)
	}
	return p.advance()
}

func (p *parser) isPunct(s string) bool {
	return p.tok.kind == tokPunct && p.tok.text == s
}

func (p *parser) isOp(s string) bool {
	return p.tok.kind == tokOp && p.tok.text == s
}

// clause := head [":-" items ["|" items]] "."
func (p *parser) clause() (*Clause, error) {
	line := p.tok.line
	head, err := p.head()
	if err != nil {
		return nil, err
	}
	c := &Clause{Head: head, Line: line}
	if p.isOp(":-") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		// Parse the pre-commit part; if a top-level "|" follows, it was
		// the guard, else it was the body with an implicit true guard.
		first, sawBar, err := p.items()
		if err != nil {
			return nil, err
		}
		if sawBar {
			for _, it := range first {
				g, err := itemToGuard(it)
				if err != nil {
					return nil, fmt.Errorf("line %d: %v", line, err)
				}
				if g.Kind != "true" {
					c.Guards = append(c.Guards, g)
				}
			}
			body, bar2, err := p.items()
			if err != nil {
				return nil, err
			}
			if bar2 {
				return nil, p.errorf("more than one commit bar in clause")
			}
			c.Body = filterTrue(body)
		} else {
			c.Body = filterTrue(first)
		}
	}
	if err := p.expectPunct("."); err != nil {
		return nil, err
	}
	return c, nil
}

func filterTrue(items []BodyGoal) []BodyGoal {
	out := items[:0]
	for _, it := range items {
		if it.Kind == "call" && it.Name == "true" && len(it.Args) == 0 {
			continue
		}
		out = append(out, it)
	}
	return out
}

// itemToGuard reinterprets a parsed body item as a guard.
func itemToGuard(it BodyGoal) (Guard, error) {
	switch it.Kind {
	case "cmp":
		return Guard{Kind: it.Name, Args: it.Args}, nil
	case "call":
		switch it.Name {
		case "true", "otherwise":
			if len(it.Args) != 0 {
				return Guard{}, fmt.Errorf("%s/0 takes no arguments", it.Name)
			}
			return Guard{Kind: it.Name}, nil
		case "wait", "integer", "atom", "list", "unbound":
			if len(it.Args) != 1 {
				return Guard{}, fmt.Errorf("%s expects one argument", it.Name)
			}
			return Guard{Kind: it.Name, Args: it.Args}, nil
		}
		return Guard{}, fmt.Errorf("goal %q is not a legal FGHC guard", it.Name)
	default:
		return Guard{}, fmt.Errorf("%s is not a legal FGHC guard", it.Kind)
	}
}

// head := atom ["(" term {"," term} ")"]
func (p *parser) head() (Struct, error) {
	if p.tok.kind != tokAtom {
		return Struct{}, p.errorf("expected clause head, found %v", p.tok)
	}
	name := p.tok.text
	if err := p.advance(); err != nil {
		return Struct{}, err
	}
	s := Struct{Functor: name}
	if p.isPunct("(") {
		args, err := p.argList()
		if err != nil {
			return Struct{}, err
		}
		s.Args = args
	}
	return s, nil
}

// items parses a comma-separated list of goals, stopping at "." or a
// top-level "|" (sawBar reports which).
func (p *parser) items() (items []BodyGoal, sawBar bool, err error) {
	for {
		it, err := p.item()
		if err != nil {
			return nil, false, err
		}
		items = append(items, it)
		switch {
		case p.isPunct(","):
			if err := p.advance(); err != nil {
				return nil, false, err
			}
		case p.isPunct("|"):
			return items, true, p.advance()
		case p.isPunct("."):
			return items, false, nil
		default:
			return nil, false, p.errorf("expected ',', '|' or '.', found %v", p.tok)
		}
	}
}

var comparisons = map[string]bool{
	"<": true, ">": true, "=<": true, ">=": true, "=:=": true, "=\\=": true,
}

// item parses one goal: a call, T1 = T2, V := Expr, or E1 cmp E2.
func (p *parser) item() (BodyGoal, error) {
	lhs, err := p.term()
	if err != nil {
		return BodyGoal{}, err
	}
	switch {
	case p.isOp("="):
		if err := p.advance(); err != nil {
			return BodyGoal{}, err
		}
		rhs, err := p.term()
		if err != nil {
			return BodyGoal{}, err
		}
		return BodyGoal{Kind: "unify", Args: []Term{lhs, rhs}}, nil
	case p.isOp(":="):
		if err := p.advance(); err != nil {
			return BodyGoal{}, err
		}
		e, err := p.expr()
		if err != nil {
			return BodyGoal{}, err
		}
		return BodyGoal{Kind: "assign", Args: []Term{lhs}, Expr: e}, nil
	case p.tok.kind == tokOp && comparisons[p.tok.text]:
		op := p.tok.text
		if err := p.advance(); err != nil {
			return BodyGoal{}, err
		}
		rhs, err := p.term()
		if err != nil {
			return BodyGoal{}, err
		}
		return BodyGoal{Kind: "cmp", Name: op, Args: []Term{lhs, rhs}}, nil
	}
	switch t := lhs.(type) {
	case Atom:
		return BodyGoal{Kind: "call", Name: t.Name}, nil
	case Struct:
		return BodyGoal{Kind: "call", Name: t.Functor, Args: t.Args}, nil
	default:
		return BodyGoal{}, p.errorf("term %s is not a goal", lhs)
	}
}

// argList := "(" term {"," term} ")"
func (p *parser) argList() ([]Term, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []Term
	for {
		t, err := p.term()
		if err != nil {
			return nil, err
		}
		args = append(args, t)
		if p.isPunct(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	return args, p.expectPunct(")")
}

// term := var | int | -int | atom[(args)] | list | "(" term ")"
func (p *parser) term() (Term, error) {
	switch {
	case p.tok.kind == tokVar:
		name := p.tok.text
		if name == "_" {
			p.anonID++
			name = fmt.Sprintf("_G%d", p.anonID)
		}
		return Var{Name: name}, p.advance()
	case p.tok.kind == tokInt:
		v := p.tok.ival
		return Int{Value: v}, p.advance()
	case p.isOp("-"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokInt {
			return nil, p.errorf("expected integer after unary minus, found %v", p.tok)
		}
		v := p.tok.ival
		return Int{Value: -v}, p.advance()
	case p.tok.kind == tokAtom:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.isPunct("(") {
			args, err := p.argList()
			if err != nil {
				return nil, err
			}
			return Struct{Functor: name, Args: args}, nil
		}
		return Atom{Name: name}, nil
	case p.isPunct("["):
		return p.list()
	case p.isPunct("("):
		if err := p.advance(); err != nil {
			return nil, err
		}
		t, err := p.term()
		if err != nil {
			return nil, err
		}
		return t, p.expectPunct(")")
	}
	return nil, p.errorf("expected term, found %v", p.tok)
}

// list := "[" "]" | "[" term {"," term} ["|" term] "]"
func (p *parser) list() (Term, error) {
	if err := p.expectPunct("["); err != nil {
		return nil, err
	}
	if p.isPunct("]") {
		return NilList{}, p.advance()
	}
	var elems []Term
	for {
		t, err := p.term()
		if err != nil {
			return nil, err
		}
		elems = append(elems, t)
		if p.isPunct(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	var tail Term = NilList{}
	if p.isPunct("|") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		t, err := p.term()
		if err != nil {
			return nil, err
		}
		tail = t
	}
	if err := p.expectPunct("]"); err != nil {
		return nil, err
	}
	for i := len(elems) - 1; i >= 0; i-- {
		tail = Cons{Car: elems[i], Cdr: tail}
	}
	return tail, nil
}

// expr := mul {("+"|"-") mul}
func (p *parser) expr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.isOp("+") || p.isOp("-") {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = ExprBin{Op: op, L: l, R: r}
	}
	return l, nil
}

// mulExpr := primary {("*"|"/"|"mod") primary}
func (p *parser) mulExpr() (Expr, error) {
	l, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for p.isOp("*") || p.isOp("/") || p.isOp("mod") {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.primaryExpr()
		if err != nil {
			return nil, err
		}
		l = ExprBin{Op: op, L: l, R: r}
	}
	return l, nil
}

// primaryExpr := int | -primary | var | "(" expr ")"
func (p *parser) primaryExpr() (Expr, error) {
	switch {
	case p.tok.kind == tokInt:
		v := p.tok.ival
		return ExprInt{Value: v}, p.advance()
	case p.isOp("-"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.primaryExpr()
		if err != nil {
			return nil, err
		}
		return ExprBin{Op: "-", L: ExprInt{Value: 0}, R: inner}, nil
	case p.tok.kind == tokVar:
		name := p.tok.text
		return ExprVar{Name: name}, p.advance()
	case p.isPunct("("):
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return e, p.expectPunct(")")
	}
	return nil, p.errorf("expected arithmetic expression, found %v", p.tok)
}
