package parser

import (
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) *Clause {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	if len(prog.Procedures) != 1 || len(prog.Procedures[0].Clause) != 1 {
		t.Fatalf("expected one clause, got %+v", prog)
	}
	return prog.Procedures[0].Clause[0]
}

func TestParseFact(t *testing.T) {
	c := parseOne(t, "main.")
	if c.Head.Functor != "main" || len(c.Head.Args) != 0 {
		t.Errorf("head %+v", c.Head)
	}
	if len(c.Guards) != 0 || len(c.Body) != 0 {
		t.Errorf("fact has guards/body: %+v", c)
	}
}

func TestParseFullClause(t *testing.T) {
	c := parseOne(t, "p(X, Y) :- X > 0 | Y1 := X - 1, p(Y1, Y).")
	if c.Head.Functor != "p" || len(c.Head.Args) != 2 {
		t.Fatalf("head %+v", c.Head)
	}
	if len(c.Guards) != 1 || c.Guards[0].Kind != ">" {
		t.Fatalf("guards %+v", c.Guards)
	}
	if len(c.Body) != 2 {
		t.Fatalf("body %+v", c.Body)
	}
	if c.Body[0].Kind != "assign" || c.Body[0].Expr.String() != "(X-1)" {
		t.Errorf("assign %+v", c.Body[0])
	}
	if c.Body[1].Kind != "call" || c.Body[1].Name != "p" || len(c.Body[1].Args) != 2 {
		t.Errorf("call %+v", c.Body[1])
	}
}

func TestParseClauseWithoutBar(t *testing.T) {
	c := parseOne(t, "p :- q, r(1).")
	if len(c.Guards) != 0 {
		t.Errorf("guards %+v", c.Guards)
	}
	if len(c.Body) != 2 || c.Body[0].Name != "q" || c.Body[1].Name != "r" {
		t.Errorf("body %+v", c.Body)
	}
}

func TestParseTrueGuardAndBodyDropped(t *testing.T) {
	c := parseOne(t, "p :- true | true.")
	if len(c.Guards) != 0 || len(c.Body) != 0 {
		t.Errorf("true not filtered: %+v", c)
	}
}

func TestParseLists(t *testing.T) {
	c := parseOne(t, "p([], [1,2|T], [a]) :- true | true.")
	if _, ok := c.Head.Args[0].(NilList); !ok {
		t.Errorf("arg0 %T", c.Head.Args[0])
	}
	if got := c.Head.Args[1].String(); got != "[1,2|T]" {
		t.Errorf("arg1 %s", got)
	}
	if got := c.Head.Args[2].String(); got != "[a]" {
		t.Errorf("arg2 %s", got)
	}
}

func TestParseStructsAndNegatives(t *testing.T) {
	c := parseOne(t, "p(f(X, g(-3)), -7) :- true | true.")
	if got := c.Head.Args[0].String(); got != "f(X,g(-3))" {
		t.Errorf("arg0 %s", got)
	}
	if got := c.Head.Args[1].(Int).Value; got != -7 {
		t.Errorf("arg1 %d", got)
	}
}

func TestParseGuards(t *testing.T) {
	c := parseOne(t, "p(X,Y) :- X >= 0, X =< 10, X =:= Y, X =\\= 3, wait(X), integer(Y) | true.")
	kinds := []string{">=", "=<", "=:=", "=\\=", "wait", "integer"}
	if len(c.Guards) != len(kinds) {
		t.Fatalf("guards %+v", c.Guards)
	}
	for i, k := range kinds {
		if c.Guards[i].Kind != k {
			t.Errorf("guard %d = %q, want %q", i, c.Guards[i].Kind, k)
		}
	}
}

func TestParseOtherwise(t *testing.T) {
	prog := MustParse(`
p(0) :- true | q.
p(X) :- otherwise | r(X).
`)
	proc := prog.Lookup("p", 1)
	if proc == nil || len(proc.Clause) != 2 {
		t.Fatalf("proc %+v", proc)
	}
	if len(proc.Clause[1].Guards) != 1 || proc.Clause[1].Guards[0].Kind != "otherwise" {
		t.Errorf("otherwise guard missing: %+v", proc.Clause[1].Guards)
	}
}

func TestParseUnifyBody(t *testing.T) {
	c := parseOne(t, "p(X) :- true | X = [1|T], T = [].")
	if c.Body[0].Kind != "unify" || c.Body[0].Args[1].String() != "[1|T]" {
		t.Errorf("unify %+v", c.Body[0])
	}
}

func TestParseExprPrecedence(t *testing.T) {
	c := parseOne(t, "p(X,Y) :- true | Z := X + Y * 2 - (X - 1) mod 3, q(Z).")
	want := "((X+(Y*2))-((X-1)mod3))"
	if got := c.Body[0].Expr.String(); got != want {
		t.Errorf("expr %s, want %s", got, want)
	}
}

func TestParseAnonymousVarsAreDistinct(t *testing.T) {
	c := parseOne(t, "p(_, _) :- true | true.")
	a := c.Head.Args[0].(Var).Name
	b := c.Head.Args[1].(Var).Name
	if a == b {
		t.Errorf("anonymous vars share a name %q", a)
	}
}

func TestParseMultipleProcedures(t *testing.T) {
	prog := MustParse(`
main :- true | p(1, R), q(R).
p(X, Y) :- true | Y = X.
p(X, Y) :- otherwise | Y = 0.
q(_).
`)
	if len(prog.Procedures) != 3 {
		t.Fatalf("procedures %d, want 3", len(prog.Procedures))
	}
	if prog.Lookup("p", 2) == nil || len(prog.Lookup("p", 2).Clause) != 2 {
		t.Error("p/2 clauses wrong")
	}
	if prog.Lookup("p", 3) != nil {
		t.Error("phantom p/3")
	}
	if prog.Lookup("p", 2).Key() != "p/2" {
		t.Error("key format")
	}
}

func TestParseComments(t *testing.T) {
	prog := MustParse(`
% a comment
main. % trailing comment
`)
	if len(prog.Procedures) != 1 {
		t.Errorf("comment parsing broke clause count")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"p :- q",                // missing period
		"p(",                    // unterminated args
		"p :- X | q.",           // variable as guard
		"p :- q | r | s.",       // two bars
		"P(x).",                 // variable head
		"p(X) :- true | X + 1.", // comparison-less expression as goal
		"p :- true(1) | q.",     // true with args
		"p @ q.",                // stray character
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestClauseString(t *testing.T) {
	c := parseOne(t, "p(X) :- X > 0 | q(X).")
	s := c.String()
	for _, frag := range []string{"p(X)", ":-", "X>0", "|", "q(X)", "."} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
	// A fact renders with explicit true parts.
	f := parseOne(t, "done.")
	if f.String() != "done :- true | true." {
		t.Errorf("fact rendered %q", f.String())
	}
}

func TestListStringForms(t *testing.T) {
	c := parseOne(t, "p([1,2,3], [H|T]) :- true | true.")
	if got := c.Head.Args[0].String(); got != "[1,2,3]" {
		t.Errorf("proper list %q", got)
	}
	if got := c.Head.Args[1].String(); got != "[H|T]" {
		t.Errorf("partial list %q", got)
	}
}
