package parser

import (
	"fmt"
	"strconv"
	"unicode"
)

// tokKind classifies tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokAtom
	tokVar
	tokInt
	tokPunct // ( ) [ ] , | .
	tokOp    // :- := = =:= =\= =< >= < > + - * / mod
)

type token struct {
	kind tokKind
	text string
	ival int64
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokInt:
		return fmt.Sprintf("%d", t.ival)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lexer tokenizes FGHC source.
type lexer struct {
	src  []rune
	pos  int
	line int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1}
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) at(i int) rune {
	if l.pos+i >= len(l.src) {
		return 0
	}
	return l.src[l.pos+i]
}

func (l *lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
	}
	return r
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		r := l.peek()
		if r == '%' { // comment to end of line
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
			continue
		}
		if unicode.IsSpace(r) {
			l.advance()
			continue
		}
		return
	}
}

func isAtomStart(r rune) bool { return unicode.IsLower(r) }
func isVarStart(r rune) bool  { return unicode.IsUpper(r) || r == '_' }
func isNameRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line}, nil
	}
	line := l.line
	r := l.peek()
	switch {
	case unicode.IsDigit(r):
		start := l.pos
		for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
			l.advance()
		}
		v, err := strconv.ParseInt(string(l.src[start:l.pos]), 10, 64)
		if err != nil {
			return token{}, fmt.Errorf("line %d: bad integer: %v", line, err)
		}
		return token{kind: tokInt, ival: v, line: line}, nil
	case isAtomStart(r):
		start := l.pos
		for l.pos < len(l.src) && isNameRune(l.peek()) {
			l.advance()
		}
		name := string(l.src[start:l.pos])
		if name == "mod" {
			return token{kind: tokOp, text: "mod", line: line}, nil
		}
		return token{kind: tokAtom, text: name, line: line}, nil
	case isVarStart(r):
		start := l.pos
		for l.pos < len(l.src) && isNameRune(l.peek()) {
			l.advance()
		}
		return token{kind: tokVar, text: string(l.src[start:l.pos]), line: line}, nil
	}
	// Multi-character operators, longest first.
	ops := []string{":-", ":=", "=:=", "=\\=", "=<", ">=", "=..", "<", ">", "=", "+", "-", "*", "/"}
	// Note: "=:=" and "=\\=" start with "=", so check three-char ops first.
	for _, op := range []string{"=:=", "=\\=", ":-", ":=", "=<", ">="} {
		if l.matches(op) {
			for range op {
				l.advance()
			}
			return token{kind: tokOp, text: op, line: line}, nil
		}
	}
	for _, op := range ops {
		if len(op) == 1 && l.matches(op) {
			l.advance()
			return token{kind: tokOp, text: op, line: line}, nil
		}
	}
	switch r {
	case '(', ')', '[', ']', ',', '|', '.':
		l.advance()
		return token{kind: tokPunct, text: string(r), line: line}, nil
	}
	return token{}, fmt.Errorf("line %d: unexpected character %q", line, r)
}

func (l *lexer) matches(s string) bool {
	for i, r := range s {
		if l.at(i) != r {
			return false
		}
	}
	return true
}
