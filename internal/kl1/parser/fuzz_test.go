package parser

import (
	"strings"
	"testing"
)

// FuzzParse checks the parser never panics and that anything it accepts
// re-renders to a parseable fixpoint. Seeds cover every syntactic form;
// `go test` runs the seeds, `go test -fuzz=FuzzParse` explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"main.",
		"p(X) :- X > 0 | q(X).",
		"p([H|T], f(A, -3)) :- integer(H) | Y := H * 2 + A, r(Y, T).",
		"p(X, X) :- otherwise | true.",
		"s([P|Q], O) :- wait(P) | O = [P|O1], s(Q, O1).",
		"p :- true | X = [a,b|C], println(X).",
		"p( :-",
		"p(1)) .",
		"p :- q | r | s.",
		"% only a comment",
		"p(" + strings.Repeat("[", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil || prog == nil || len(prog.Procedures) == 0 {
			return
		}
		for _, proc := range prog.Procedures {
			for _, c := range proc.Clause {
				rendered := c.String()
				if _, err := Parse(rendered); err != nil {
					t.Fatalf("accepted %q but rendered form %q fails: %v", src, rendered, err)
				}
			}
		}
	})
}
