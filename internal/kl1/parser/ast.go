// Package parser implements a lexer and parser for Flat Guarded Horn
// Clauses (FGHC), the base language of KL1. A program is a set of
// procedures, each a list of clauses of the form
//
//	Head :- Guard1, ..., Guardm | Body1, ..., Bodyn.
//
// The guard part is restricted to builtin tests (arithmetic comparison,
// type tests, wait/1, otherwise), as FGHC requires; the body may contain
// user goals, active unification (=), and arithmetic assignment (:=).
package parser

import (
	"fmt"
	"strings"
)

// Term is a parsed FGHC term.
type Term interface {
	String() string
	isTerm()
}

// Var is a logic variable. Anonymous variables ("_") get unique names of
// the form "_Gn" during parsing.
type Var struct{ Name string }

// Int is an integer constant.
type Int struct{ Value int64 }

// Atom is a symbolic constant.
type Atom struct{ Name string }

// NilList is the empty list [].
type NilList struct{}

// Cons is a list cell [Car|Cdr].
type Cons struct{ Car, Cdr Term }

// Struct is a compound term Functor(Args...).
type Struct struct {
	Functor string
	Args    []Term
}

func (Var) isTerm()     {}
func (Int) isTerm()     {}
func (Atom) isTerm()    {}
func (NilList) isTerm() {}
func (Cons) isTerm()    {}
func (Struct) isTerm()  {}

func (v Var) String() string  { return v.Name }
func (i Int) String() string  { return fmt.Sprintf("%d", i.Value) }
func (a Atom) String() string { return a.Name }
func (NilList) String() string {
	return "[]"
}

func (c Cons) String() string {
	var b strings.Builder
	b.WriteByte('[')
	b.WriteString(c.Car.String())
	rest := c.Cdr
	for {
		switch t := rest.(type) {
		case Cons:
			b.WriteByte(',')
			b.WriteString(t.Car.String())
			rest = t.Cdr
			continue
		case NilList:
			b.WriteByte(']')
			return b.String()
		default:
			b.WriteByte('|')
			b.WriteString(rest.String())
			b.WriteByte(']')
			return b.String()
		}
	}
}

func (s Struct) String() string {
	args := make([]string, len(s.Args))
	for i, a := range s.Args {
		args[i] = a.String()
	}
	return s.Functor + "(" + strings.Join(args, ",") + ")"
}

// Expr is an arithmetic expression (the right-hand side of :=).
type Expr interface {
	String() string
	isExpr()
}

// ExprInt is an integer literal.
type ExprInt struct{ Value int64 }

// ExprVar references a variable whose value must be an integer.
type ExprVar struct{ Name string }

// ExprBin is a binary arithmetic operation: + - * / mod.
type ExprBin struct {
	Op   string
	L, R Expr
}

func (ExprInt) isExpr() {}
func (ExprVar) isExpr() {}
func (ExprBin) isExpr() {}

func (e ExprInt) String() string { return fmt.Sprintf("%d", e.Value) }
func (e ExprVar) String() string { return e.Name }
func (e ExprBin) String() string {
	return "(" + e.L.String() + e.Op + e.R.String() + ")"
}

// Guard is one passive test in a clause's guard part.
type Guard struct {
	// Kind is one of: "true", "otherwise", "wait", "integer", "atom",
	// "list", or a comparison operator (<, >, =<, >=, =:=, =\=).
	Kind string
	// Args holds the operand terms (0 for true/otherwise, 1 for type
	// tests and wait, 2 for comparisons).
	Args []Term
}

func (g Guard) String() string {
	switch len(g.Args) {
	case 0:
		return g.Kind
	case 1:
		return g.Kind + "(" + g.Args[0].String() + ")"
	default:
		return g.Args[0].String() + g.Kind + g.Args[1].String()
	}
}

// BodyGoal is one goal in a clause's body.
type BodyGoal struct {
	// Kind is "call" (user goal), "unify" (=), "assign" (:=), or
	// "builtin" (print and friends).
	Kind string
	// Name is the procedure or builtin name for call/builtin kinds.
	Name string
	// Args holds call/builtin argument terms; for unify the two sides;
	// for assign the destination term (Args[0]).
	Args []Term
	// Expr is the arithmetic expression for assign.
	Expr Expr
}

func (b BodyGoal) String() string {
	switch b.Kind {
	case "unify":
		return b.Args[0].String() + "=" + b.Args[1].String()
	case "assign":
		return b.Args[0].String() + ":=" + b.Expr.String()
	case "cmp":
		return b.Args[0].String() + b.Name + b.Args[1].String()
	default:
		if len(b.Args) == 0 {
			return b.Name
		}
		args := make([]string, len(b.Args))
		for i, a := range b.Args {
			args[i] = a.String()
		}
		return b.Name + "(" + strings.Join(args, ",") + ")"
	}
}

// Clause is one guarded Horn clause.
type Clause struct {
	Head   Struct // zero-arity heads are Structs with empty Args
	Guards []Guard
	Body   []BodyGoal
	Line   int
}

func (c Clause) String() string {
	var b strings.Builder
	if len(c.Head.Args) == 0 {
		b.WriteString(c.Head.Functor)
	} else {
		b.WriteString(c.Head.String())
	}
	b.WriteString(" :- ")
	if len(c.Guards) == 0 {
		b.WriteString("true")
	} else {
		gs := make([]string, len(c.Guards))
		for i, g := range c.Guards {
			gs[i] = g.String()
		}
		b.WriteString(strings.Join(gs, ","))
	}
	b.WriteString(" | ")
	if len(c.Body) == 0 {
		b.WriteString("true")
	} else {
		bs := make([]string, len(c.Body))
		for i, g := range c.Body {
			bs[i] = g.String()
		}
		b.WriteString(strings.Join(bs, ","))
	}
	b.WriteByte('.')
	return b.String()
}

// Program is a parsed FGHC program: procedures keyed by name/arity in
// source order.
type Program struct {
	Procedures []*Procedure
	byKey      map[string]*Procedure
}

// Procedure groups the clauses sharing one name/arity.
type Procedure struct {
	Name   string
	Arity  int
	Clause []*Clause
}

// Key renders the conventional name/arity form.
func (p *Procedure) Key() string { return fmt.Sprintf("%s/%d", p.Name, p.Arity) }

// Lookup finds a procedure by name and arity.
func (p *Program) Lookup(name string, arity int) *Procedure {
	return p.byKey[fmt.Sprintf("%s/%d", name, arity)]
}

func (p *Program) addClause(c *Clause) {
	key := fmt.Sprintf("%s/%d", c.Head.Functor, len(c.Head.Args))
	if p.byKey == nil {
		p.byKey = make(map[string]*Procedure)
	}
	proc := p.byKey[key]
	if proc == nil {
		proc = &Procedure{Name: c.Head.Functor, Arity: len(c.Head.Args)}
		p.byKey[key] = proc
		p.Procedures = append(p.Procedures, proc)
	}
	proc.Clause = append(proc.Clause, c)
}
