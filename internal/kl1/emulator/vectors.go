package emulator

import (
	"fmt"

	"pimcache/internal/kl1/word"
)

// KL1 vectors: the language's array primitive, represented as ordinary
// heap structures with the reserved functor "vector"/N so that
// unification, printing and the garbage collector handle them without
// special cases. Elements are references to standalone variable cells
// (preserving the no-interior-pointer invariant the collector relies on).
//
// set_vector_element is a functional update — a full copy with one
// element replaced — matching KL1 semantics without the MRB in-place
// optimization; the copy's direct writes are exactly the fresh-structure
// traffic the DW command exists for.

// vectorAtom returns the interned functor name for vectors.
func (sh *Shared) vectorAtom() word.AtomID {
	return sh.Image.Atoms.Intern("vector")
}

// builtinNewVec implements new_vector(N, V).
func (e *Engine) builtinNewVec() {
	n, nc := e.deref(e.regs[0])
	if nc != 0 {
		e.suspendBuiltin(nc)
		return
	}
	if n.Tag() != word.TagInt || n.IntVal() < 0 || n.IntVal() > 0xFFFF {
		e.sh.fail(fmt.Sprintf("new_vector: bad size %v", n))
		return
	}
	size := int(n.IntVal())
	// One allocation for the vector and its element variable cells: a
	// collection inside a multi-allocation sequence would move or reclaim
	// partially built objects held only in locals.
	base, ok := e.allocHeap(1 + 2*size)
	if !ok {
		return
	}
	cells := base + 1 + word.Addr(size)
	e.acc.DirectWrite(base, word.Functor(e.sh.vectorAtom(), size))
	for i := 0; i < size; i++ {
		cell := cells + word.Addr(i)
		e.acc.DirectWrite(base+1+word.Addr(i), word.Ref(cell))
	}
	for i := 0; i < size; i++ {
		cell := cells + word.Addr(i)
		e.acc.DirectWrite(cell, word.Unbound(cell))
	}
	switch e.unify(e.regs[1], word.Struct(base)) {
	case unifyBlocked:
		return // retry the whole builtin; the garbage vector is collectable
	case unifyFailed:
		e.sh.fail("new_vector: result does not unify")
		return
	}
	e.finishBuiltin()
}

// vectorOf dereferences a register to a vector, reporting (base, size).
// ok=false means the builtin suspended or failed.
func (e *Engine) vectorOf(w word.Word, who string) (base word.Addr, size int, ok bool) {
	v, cell := e.deref(w)
	if cell != 0 {
		e.suspendBuiltin(cell)
		return 0, 0, false
	}
	if v.Tag() != word.TagStruct {
		e.sh.fail(fmt.Sprintf("%s: not a vector: %v", who, v))
		return 0, 0, false
	}
	f := e.acc.Read(v.Addr())
	if f.FunctorName() != e.sh.vectorAtom() {
		e.sh.fail(fmt.Sprintf("%s: not a vector", who))
		return 0, 0, false
	}
	return v.Addr(), f.FunctorArity(), true
}

// intArg dereferences an integer argument, suspending on unbound.
func (e *Engine) intArg(w word.Word, who string) (int64, bool) {
	v, cell := e.deref(w)
	if cell != 0 {
		e.suspendBuiltin(cell)
		return 0, false
	}
	if v.Tag() != word.TagInt {
		e.sh.fail(fmt.Sprintf("%s: index is not an integer: %v", who, v))
		return 0, false
	}
	return v.IntVal(), true
}

// builtinVecElem implements vector_element(V, I, E).
func (e *Engine) builtinVecElem() {
	base, size, ok := e.vectorOf(e.regs[0], "vector_element")
	if !ok {
		return
	}
	idx, ok := e.intArg(e.regs[1], "vector_element")
	if !ok {
		return
	}
	if idx < 0 || idx >= int64(size) {
		e.sh.fail(fmt.Sprintf("vector_element: index %d out of range [0,%d)", idx, size))
		return
	}
	elem := e.loadCell(base + 1 + word.Addr(idx))
	switch e.unify(e.regs[2], elem) {
	case unifyBlocked:
		return
	case unifyFailed:
		e.sh.fail("vector_element: element does not unify")
		return
	}
	e.finishBuiltin()
}

// builtinSetVec implements set_vector_element(V, I, X, V2).
func (e *Engine) builtinSetVec() {
	base, size, ok := e.vectorOf(e.regs[0], "set_vector_element")
	if !ok {
		return
	}
	idx, ok := e.intArg(e.regs[1], "set_vector_element")
	if !ok {
		return
	}
	if idx < 0 || idx >= int64(size) {
		e.sh.fail(fmt.Sprintf("set_vector_element: index %d out of range [0,%d)", idx, size))
		return
	}
	nbase, okAlloc := e.allocHeap(1 + size)
	if !okAlloc {
		return
	}
	// The allocation may have run the collector and moved the source
	// vector: re-derive its base from the (forwarded) register.
	base, size, ok = e.vectorOf(e.regs[0], "set_vector_element")
	if !ok {
		return
	}
	e.acc.DirectWrite(nbase, word.Functor(e.sh.vectorAtom(), size))
	for i := 0; i < size; i++ {
		var w word.Word
		if int64(i) == idx {
			w = e.regs[2]
		} else {
			w = e.loadCell(base + 1 + word.Addr(i))
		}
		e.acc.DirectWrite(nbase+1+word.Addr(i), w)
	}
	switch e.unify(e.regs[3], word.Struct(nbase)) {
	case unifyBlocked:
		return
	case unifyFailed:
		e.sh.fail("set_vector_element: result does not unify")
		return
	}
	e.finishBuiltin()
}
