package emulator

import (
	"strings"
	"testing"
)

func TestVectorCreateReadWrite(t *testing.T) {
	_, res := run(t, `
main :- true | new_vector(3, V),
               set_vector_element(V, 0, 10, V1),
               set_vector_element(V1, 2, 30, V2),
               vector_element(V2, 0, A), vector_element(V2, 2, C),
               sum(A, C).
sum(A, C) :- wait(A), wait(C) | S := A + C, println(S).
`, 1)
	if res.Output != "40\n" {
		t.Errorf("output %q", res.Output)
	}
}

func TestVectorElementsAreLogicVariables(t *testing.T) {
	// Fresh vector elements are unbound variables: binding one through
	// vector_element wakes a consumer suspended on it.
	_, res := run(t, `
main :- true | new_vector(2, V),
               vector_element(V, 1, X),
               usefn(X),
               vector_element(V, 1, Y), bindit(Y).
usefn(X) :- integer(X) | Z := X * 7, println(Z).
bindit(Y) :- true | Y = 6.
`, 2)
	if res.Output != "42\n" {
		t.Errorf("output %q", res.Output)
	}
}

func TestVectorFunctionalUpdateSharing(t *testing.T) {
	// A functional update must not disturb the original vector.
	_, res := run(t, `
main :- true | new_vector(2, V),
               vector_element(V, 0, E0), E0 = 1,
               vector_element(V, 1, E1), E1 = 2,
               set_vector_element(V, 0, 99, W),
               vector_element(V, 0, A),
               vector_element(W, 0, B),
               vector_element(W, 1, C),
               p3(A, B, C).
p3(A, B, C) :- integer(A), integer(B), integer(C) |
    println(A), println(B), println(C).
`, 1)
	if res.Output != "1\n99\n2\n" {
		t.Errorf("output %q", res.Output)
	}
}

func TestVectorSuspendsOnUnboundVectorAndIndex(t *testing.T) {
	_, res := run(t, `
main :- true | vector_element(V, I, E), show(E),
               mkv(V), mki(I).
mkv(V) :- true | new_vector(4, W), set_vector_element(W, 3, 77, W1), V = W1.
mki(I) :- true | I = 3.
show(E) :- integer(E) | println(E).
`, 2)
	if res.Output != "77\n" {
		t.Errorf("output %q", res.Output)
	}
	if res.Emu.Suspensions == 0 {
		t.Error("expected suspensions on the unbound vector/index")
	}
}

func TestVectorIndexOutOfRangeFails(t *testing.T) {
	_, res, err := RunSource(`
main :- true | new_vector(2, V), vector_element(V, 5, _).
`, testMachineConfig(1), DefaultConfig(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed || !strings.Contains(res.FailReason, "out of range") {
		t.Errorf("result %+v", res)
	}
}

func TestVectorOnNonVectorFails(t *testing.T) {
	_, res, err := RunSource(`
main :- true | vector_element(f(1), 0, _).
`, testMachineConfig(1), DefaultConfig(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed || !strings.Contains(res.FailReason, "not a vector") {
		t.Errorf("result %+v", res)
	}
}

func TestVectorPrintRendering(t *testing.T) {
	_, res := run(t, `
main :- true | new_vector(2, V),
               vector_element(V, 0, A), A = 1,
               vector_element(V, 1, B), B = two,
               println(V).
`, 1)
	if res.Output != "vector(1,two)\n" {
		t.Errorf("output %q", res.Output)
	}
}

func TestVectorSurvivesGC(t *testing.T) {
	// A vector stays intact across collections triggered by churn.
	ecfg := DefaultConfig()
	ecfg.EnableGC = true
	cl, res, err := RunSource(`
main :- true | new_vector(3, V), fill(V, 0), churn(40, D), fin(D, V).
fill(V, 3) :- true | true.
fill(V, I) :- I < 3 | vector_element(V, I, E), E = I, I1 := I + 1, fill(V, I1).
churn(0, D) :- true | D = done.
churn(N, D) :- N > 0 | mk(30, L), last(L, X), step(X, N, D).
step(X, N, D) :- wait(X) | N1 := N - 1, churn(N1, D).
mk(0, L) :- true | L = [0].
mk(N, L) :- N > 0 | L = [N|T], N1 := N - 1, mk(N1, T).
last([X], R) :- true | R = X.
last([_|T], R) :- true | last(T, R).
fin(done, V) :- true | println(V).
`, gcMachineConfig(1, 2048), ecfg, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("failed: %s", res.FailReason)
	}
	if res.Output != "vector(0,1,2)\n" {
		t.Errorf("output %q", res.Output)
	}
	if cl.Shared.GCStats().Collections == 0 {
		t.Error("collector never ran")
	}
}

func TestVectorCrossPE(t *testing.T) {
	// A vector created on one PE, updated on others via migrated goals.
	_, res := run(t, `
main :- true | new_vector(4, V), wr(V, 0, W0), wr(W0, 1, W1), wr(W1, 2, W2), wr(W2, 3, W3),
               total(W3, 0, 0, S), println(S).
wr(V, I, W) :- true | X := I * I, set_vector_element(V, I, X, W).
total(V, I, Acc, S) :- I >= 4 | S = Acc.
total(V, I, Acc, S) :- I < 4 |
    vector_element(V, I, E), add(E, Acc, A1), I1 := I + 1, total(V, I1, A1, S).
add(E, Acc, A1) :- integer(E), integer(Acc) | A1 := E + Acc.
`, 4)
	if res.Output != "14\n" { // 0+1+4+9
		t.Errorf("output %q", res.Output)
	}
}
