// Package emulator implements the parallel KL1 reduction engine of the
// paper's Section 2.2: per-PE goal lists reduced depth-first, logical
// variables with suspension/resumption, word-granular locking of shared
// bindings, and an on-demand scheduler that balances load by passing goal
// records through the communication area.
//
// Every simulated memory access an Engine makes flows through its PE's
// cache port, so running a program measures exactly the reference stream
// the paper instruments: instruction fetches from the instruction area,
// term accesses in the heap, write-once/read-once goal records consumed
// with ER/RP, suspension records, and two-word request/reply messages in
// the communication area read with RI.
package emulator

import (
	"fmt"
	"strings"

	"pimcache/internal/kl1/compile"
	"pimcache/internal/kl1/word"
	"pimcache/internal/mem"
	"pimcache/internal/probe"
)

// Record layouts. Goal records are fixed-size so that they are
// block-aligned under the paper's four-word blocks, which is what lets
// the runtime create them with DW and consume them with ER/RP.
const (
	// GoalRecordWords is the goal record size: link, header, status, and
	// up to MaxGoalArity argument words.
	GoalRecordWords = 16
	goalLinkOff     = 0
	goalHeaderOff   = 1
	goalStatusOff   = 2
	goalArgsOff     = 3

	// SuspRecordWords is the suspension record size: next, goal, two pad
	// words (one cache block).
	SuspRecordWords = 4
	suspNextOff     = 0
	suspGoalOff     = 1

	// SlotWords is a communication slot: a status/lock word and a payload
	// word padded to one block. Messages are "only two words and are
	// usually written once and read once" (Section 2.2).
	SlotWords     = 4
	slotStatusOff = 0
	slotValueOff  = 1
)

// Goal status values (the goalStatusOff word).
const (
	statusQueued   = 0 // linked into a goal list or being reduced
	statusFloating = 1 // suspended, reachable only via suspension records
)

// Config tunes the runtime.
type Config struct {
	// PollInterval is how many reductions pass between polls of one
	// incoming work-request slot (default 2).
	PollInterval int
	// MaxInstr aborts a runaway program after this many abstract
	// instructions per PE (0 = unlimited).
	MaxInstr uint64
	// EnableGC halves each PE's heap into semispaces and runs the
	// stop-and-copy collector when allocation fails. Off, allocation
	// failure aborts the program (the bundled benchmarks are sized to
	// fit without collecting).
	EnableGC bool
}

// DefaultConfig returns the standard runtime tuning.
func DefaultConfig() Config { return Config{PollInterval: 2} }

// Shared is the cluster-wide runtime state. The Go-level fields mirror
// what the paper treats as processor registers and system metadata
// (scheduler status flags, pointers, counters), which are explicitly not
// counted as memory references; everything the paper does count lives in
// the simulated memory areas.
type Shared struct {
	Image  *compile.Image
	Mem    *mem.Memory
	NumPEs int
	Cfg    Config

	bounds mem.Bounds

	// busy[i] reports PE i has queued goals (scheduler status flag).
	busy []bool
	// liveGoals counts goals queued, running, or in transit; zero means
	// global termination.
	liveGoals int64
	// floating counts suspended goals not yet resumed; nonzero at
	// termination means the program deadlocked on unbound variables.
	floating int64

	failed     bool
	failReason string

	gc gcState

	out strings.Builder

	// probe receives scheduler-level telemetry (goal steal / suspend /
	// resume); now supplies the probe clock, normally the cluster bus's
	// ProbeClock. Both nil unless SetProbe attached them.
	probe probe.Sink
	now   func() uint64
}

// SetProbe attaches the telemetry sink for scheduler events; now must
// supply the probe clock (pass the cluster bus's ProbeClock so the
// scheduler events share the memory system's timeline). Pass nil, nil
// to detach.
func (sh *Shared) SetProbe(s probe.Sink, now func() uint64) {
	sh.probe = s
	sh.now = now
}

// emitSched reports a scheduler event for pe; a no-op when no probe is
// attached.
func (sh *Shared) emitSched(kind probe.Kind, pe int, addr word.Addr, arg uint64) {
	if sh.probe == nil {
		return
	}
	sh.probe.Emit(probe.Event{Kind: kind, Cycle: sh.now(), PE: int16(pe), Addr: addr, Arg: arg})
}

// NewShared prepares the cluster state and loads the code image into the
// instruction area (system boot: written directly, not through a cache).
func NewShared(im *compile.Image, memory *mem.Memory, numPEs int, cfg Config) (*Shared, error) {
	b := memory.Bounds()
	instCap := int(b.HeapBase - b.InstBase)
	if len(im.Code) > instCap {
		return nil, fmt.Errorf("emulator: code (%d words) exceeds instruction area (%d words)",
			len(im.Code), instCap)
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 2
	}
	for i, w := range im.Code {
		memory.Write(b.InstBase+word.Addr(i), w)
	}
	sh := &Shared{
		Image:  im,
		Mem:    memory,
		NumPEs: numPEs,
		Cfg:    cfg,
		bounds: b,
		busy:   make([]bool, numPEs),
	}
	if _, ok := im.ProcIndexOf("main", 0); !ok {
		return nil, fmt.Errorf("emulator: program has no main/0")
	}
	return sh, nil
}

// entryAddr returns the absolute instruction address of a procedure.
func (sh *Shared) entryAddr(procIdx int) word.Addr {
	return sh.bounds.InstBase + word.Addr(sh.Image.Procs[procIdx].Entry)
}

// fail records a program failure.
func (sh *Shared) fail(reason string) {
	if !sh.failed {
		sh.failed = true
		sh.failReason = reason
	}
}

// Failed reports whether the program failed, and why.
func (sh *Shared) Failed() (bool, string) { return sh.failed, sh.failReason }

// Output returns everything printed so far.
func (sh *Shared) Output() string { return sh.out.String() }

// Floating reports suspended goals that were never resumed (nonzero at
// termination indicates the program deadlocked).
func (sh *Shared) Floating() int64 { return sh.floating }

// LiveGoals reports the queued/running/in-transit goal count.
func (sh *Shared) LiveGoals() int64 { return sh.liveGoals }

// --- per-PE area partitioning ---

// segment splits [base, limit) into n equal PE segments and returns the
// i-th, block-aligned.
func segment(base, limit word.Addr, n, i int) (word.Addr, word.Addr) {
	size := (int(limit-base) / n) &^ 15 // keep 16-word alignment
	lo := base + word.Addr(i*size)
	return lo, lo + word.Addr(size)
}

// heapSegment returns PE i's heap region.
func (sh *Shared) heapSegment(i int) (word.Addr, word.Addr) {
	return segment(sh.bounds.HeapBase, sh.bounds.GoalBase, sh.NumPEs, i)
}

// goalSegment returns PE i's goal-area region.
func (sh *Shared) goalSegment(i int) (word.Addr, word.Addr) {
	return segment(sh.bounds.GoalBase, sh.bounds.SuspBase, sh.NumPEs, i)
}

// suspSegment returns PE i's suspension-area region.
func (sh *Shared) suspSegment(i int) (word.Addr, word.Addr) {
	return segment(sh.bounds.SuspBase, sh.bounds.CommBase, sh.NumPEs, i)
}

// mailboxBase returns the base of PE i's mailbox in the communication
// area: NumPEs request slots (one per potential sender, so senders never
// contend for a slot) followed by one reply slot.
func (sh *Shared) mailboxBase(i int) word.Addr {
	need := word.Addr((sh.NumPEs + 1) * SlotWords)
	return sh.bounds.CommBase + word.Addr(i)*need
}

// requestSlot returns the slot through which sender asks receiver for
// work.
func (sh *Shared) requestSlot(receiver, sender int) word.Addr {
	return sh.mailboxBase(receiver) + word.Addr(sender*SlotWords)
}

// replySlot returns PE i's reply slot.
func (sh *Shared) replySlot(i int) word.Addr {
	return sh.mailboxBase(i) + word.Addr(sh.NumPEs*SlotWords)
}

// commCapacity verifies the communication area fits the mailboxes.
func (sh *Shared) commCapacity() error {
	need := word.Addr(sh.NumPEs * (sh.NumPEs + 1) * SlotWords)
	if sh.bounds.CommBase+need > sh.bounds.End {
		return fmt.Errorf("emulator: communication area too small: need %d words", need)
	}
	return nil
}
