package emulator

import (
	"fmt"
	"strconv"

	"pimcache/internal/kl1/compile"
	"pimcache/internal/kl1/word"
)

// execBuiltin runs the pending builtin goal whose arguments are in
// X0..Xarity-1. Builtins are atomic reductions: on unbound arguments they
// suspend through the ordinary goal-suspension machinery, and on a lock
// conflict they leave builtinProc set so the whole builtin retries.
func (e *Engine) execBuiltin() {
	proc := e.builtinProc
	switch {
	case proc >= compile.BuiltinArith && proc < compile.BuiltinArith+5:
		e.builtinArith(proc - compile.BuiltinArith)
	case proc == compile.BuiltinPrint || proc == compile.BuiltinPrintln:
		e.builtinPrint(proc == compile.BuiltinPrintln)
	case proc == compile.BuiltinUnify:
		switch e.unify(e.regs[0], e.regs[1]) {
		case unifyBlocked:
			return
		case unifyFailed:
			e.sh.fail("unification failed in $unify/2")
			return
		}
		e.finishBuiltin()
	case proc == compile.BuiltinNewVec:
		e.builtinNewVec()
	case proc == compile.BuiltinVecElem:
		e.builtinVecElem()
	case proc == compile.BuiltinSetVec:
		e.builtinSetVec()
	default:
		panic(fmt.Sprintf("emulator: unknown builtin %d", proc))
	}
}

// finishBuiltin completes the builtin reduction.
func (e *Engine) finishBuiltin() {
	e.builtinProc = 0
	e.stats.Reductions++
	e.sh.liveGoals--
}

// suspendBuiltin recreates the builtin goal as a floating record hooked
// on the given cells.
func (e *Engine) suspendBuiltin(cells ...word.Addr) {
	e.candidates = e.candidates[:0]
	for _, c := range cells {
		e.addCandidate(c)
	}
	e.curProc = e.builtinProc
	e.curArity = e.builtinArity
	e.builtinProc = 0
	e.startSuspend()
}

// builtinArith implements $arith(X, Y, Dest): wait for X and Y, compute,
// unify Dest with the result.
func (e *Engine) builtinArith(kind int) {
	l, lc := e.deref(e.regs[0])
	r, rc := e.deref(e.regs[1])
	if lc != 0 || rc != 0 {
		var cells []word.Addr
		if lc != 0 {
			cells = append(cells, lc)
		}
		if rc != 0 {
			cells = append(cells, rc)
		}
		e.suspendBuiltin(cells...)
		return
	}
	if l.Tag() != word.TagInt || r.Tag() != word.TagInt {
		e.sh.fail(fmt.Sprintf("arithmetic on non-integer in %s", e.procName(compile.BuiltinArith+kind)))
		return
	}
	v, err := evalArith(kind, l.IntVal(), r.IntVal())
	if err != nil {
		e.sh.fail(err.Error())
		return
	}
	switch e.unify(e.regs[2], word.Int(v)) {
	case unifyBlocked:
		return // retry the whole builtin
	case unifyFailed:
		e.sh.fail(fmt.Sprintf("result of %s does not unify", e.procName(compile.BuiltinArith+kind)))
		return
	}
	e.finishBuiltin()
}

// builtinPrint renders its argument once it is fully ground; otherwise it
// suspends on the first unbound sub-term found.
func (e *Engine) builtinPrint(newline bool) {
	if cell, ground := e.findUnbound(e.regs[0], 0); !ground {
		e.suspendBuiltin(cell)
		return
	}
	s := e.renderTerm(e.regs[0], 0)
	e.sh.out.WriteString(s)
	if newline {
		e.sh.out.WriteByte('\n')
	}
	e.finishBuiltin()
}

const maxTermDepth = 1 << 20

// findUnbound scans a term for an unbound variable; ground is false and
// cell names the first one found.
func (e *Engine) findUnbound(w word.Word, depth int) (cell word.Addr, ground bool) {
	if depth > maxTermDepth {
		e.sh.fail("print: term too deep (cyclic?)")
		return 0, true
	}
	v, c := e.deref(w)
	if c != 0 {
		return c, false
	}
	switch v.Tag() {
	case word.TagList:
		if c, g := e.findUnbound(e.loadCell(v.Addr()), depth+1); !g {
			return c, false
		}
		return e.findUnbound(e.loadCell(v.Addr()+1), depth+1)
	case word.TagStruct:
		f := e.acc.Read(v.Addr())
		for i := 0; i < f.FunctorArity(); i++ {
			if c, g := e.findUnbound(e.loadCell(v.Addr()+1+word.Addr(i)), depth+1); !g {
				return c, false
			}
		}
	}
	return 0, true
}

// renderTerm pretty-prints a ground term in FGHC syntax.
func (e *Engine) renderTerm(w word.Word, depth int) string {
	if depth > maxTermDepth {
		return "..."
	}
	v, c := e.deref(w)
	if c != 0 {
		return "_"
	}
	switch v.Tag() {
	case word.TagInt:
		return strconv.FormatInt(v.IntVal(), 10)
	case word.TagAtom:
		return e.sh.Image.Atoms.Name(v.AtomVal())
	case word.TagNil:
		return "[]"
	case word.TagList:
		s := "[" + e.renderTerm(e.loadCell(v.Addr()), depth+1)
		rest, rc := e.deref(e.loadCell(v.Addr() + 1))
		for rc == 0 && rest.Tag() == word.TagList {
			s += "," + e.renderTerm(e.loadCell(rest.Addr()), depth+1)
			rest, rc = e.deref(e.loadCell(rest.Addr() + 1))
		}
		if rc != 0 {
			s += "|_"
		} else if rest.Tag() != word.TagNil {
			s += "|" + e.renderTerm(rest, depth+1)
		}
		return s + "]"
	case word.TagStruct:
		f := e.acc.Read(v.Addr())
		s := e.sh.Image.Atoms.Name(f.FunctorName()) + "("
		for i := 0; i < f.FunctorArity(); i++ {
			if i > 0 {
				s += ","
			}
			s += e.renderTerm(e.loadCell(v.Addr()+1+word.Addr(i)), depth+1)
		}
		return s + ")"
	}
	return v.String()
}
