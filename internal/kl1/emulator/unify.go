package emulator

import (
	"fmt"

	"pimcache/internal/kl1/compile"
	"pimcache/internal/kl1/word"
	"pimcache/internal/probe"
)

// deref follows reference chains. It returns either (value, 0) for a
// bound term or (cellContent, cellAddr) when the chain ends at an unbound
// variable (with or without hooked suspensions).
func (e *Engine) deref(w word.Word) (word.Word, word.Addr) {
	for {
		switch w.Tag() {
		case word.TagRef:
			a := w.Addr()
			v := e.acc.Read(a)
			if v.IsVar() {
				return v, a
			}
			w = v
		case word.TagUnbound, word.TagHook:
			// Registers normally hold Ref views, but an Unbound word can
			// appear when a cell was read raw; its payload is the cell.
			return w, w.Addr()
		default:
			return w, 0
		}
	}
}

// loadCell reads a heap/record cell into register representation: unbound
// cells become Ref views so the variable's identity survives in the
// register file.
func (e *Engine) loadCell(a word.Addr) word.Word {
	w := e.acc.Read(a)
	if w.IsVar() {
		return word.Ref(a)
	}
	return w
}

// fixVar converts a raw cell word already read from memory into register
// representation (unbound cells become Ref views).
func (e *Engine) fixVar(a word.Addr, w word.Word) word.Word {
	if w.IsVar() {
		return word.Ref(a)
	}
	return w
}

// Match outcomes for passive equality.
type matchResult uint8

const (
	matchOK matchResult = iota
	matchFail
	matchSuspend
)

// passiveEqual implements input unification of two terms without
// exporting bindings (nonlinear clause heads). Any situation that would
// require a binding records suspension candidates and reports
// matchSuspend.
func (e *Engine) passiveEqual(a, b word.Word) matchResult {
	va, ca := e.deref(a)
	vb, cb := e.deref(b)
	if ca != 0 || cb != 0 {
		if ca != 0 && cb != 0 && ca == cb {
			return matchOK // the same variable
		}
		if ca != 0 {
			e.addCandidate(ca)
		}
		if cb != 0 {
			e.addCandidate(cb)
		}
		return matchSuspend
	}
	if va.Tag() != vb.Tag() {
		return matchFail
	}
	switch va.Tag() {
	case word.TagInt, word.TagAtom, word.TagNil:
		if va == vb {
			return matchOK
		}
		return matchFail
	case word.TagList:
		if r := e.passiveEqual(e.loadCell(va.Addr()), e.loadCell(vb.Addr())); r != matchOK {
			return r
		}
		return e.passiveEqual(e.loadCell(va.Addr()+1), e.loadCell(vb.Addr()+1))
	case word.TagStruct:
		fa := e.acc.Read(va.Addr())
		fb := e.acc.Read(vb.Addr())
		if fa != fb {
			return matchFail
		}
		for i := 0; i < fa.FunctorArity(); i++ {
			off := word.Addr(1 + i)
			if r := e.passiveEqual(e.loadCell(va.Addr()+off), e.loadCell(vb.Addr()+off)); r != matchOK {
				return r
			}
		}
		return matchOK
	}
	return matchFail
}

// Unification outcomes.
type unifyResult uint8

const (
	unifyOK unifyResult = iota
	unifyFailed
	// unifyBlocked: a variable lock is held by another PE; nothing was
	// modified. Retry the whole operation after the unlock broadcast.
	unifyBlocked
)

// unify performs active (output) unification. Variable bindings take the
// variable's word lock (LR) and release it with the binding write (UW),
// exactly the heap locking pattern the paper attributes to dependent
// AND-parallel execution. Binding a hooked variable runs the resumption
// routine, relinking every waiting goal to this PE's goal list.
func (e *Engine) unify(a, b word.Word) unifyResult {
	va, ca := e.deref(a)
	vb, cb := e.deref(b)
	switch {
	case ca != 0 && cb != 0:
		if ca == cb {
			return unifyOK
		}
		return e.bindVarVar(ca, cb)
	case ca != 0:
		return e.bindVarValue(ca, vb)
	case cb != 0:
		return e.bindVarValue(cb, va)
	}
	// Both bound: structural unification.
	if va.Tag() != vb.Tag() {
		return unifyFailed
	}
	switch va.Tag() {
	case word.TagInt, word.TagAtom, word.TagNil:
		if va == vb {
			return unifyOK
		}
		return unifyFailed
	case word.TagList:
		if r := e.unify(e.loadCell(va.Addr()), e.loadCell(vb.Addr())); r != unifyOK {
			return r
		}
		return e.unify(e.loadCell(va.Addr()+1), e.loadCell(vb.Addr()+1))
	case word.TagStruct:
		fa := e.acc.Read(va.Addr())
		fb := e.acc.Read(vb.Addr())
		if fa != fb {
			return unifyFailed
		}
		for i := 0; i < fa.FunctorArity(); i++ {
			off := word.Addr(1 + i)
			if r := e.unify(e.loadCell(va.Addr()+off), e.loadCell(vb.Addr()+off)); r != unifyOK {
				return r
			}
		}
		return unifyOK
	}
	return unifyFailed
}

// bindVarValue binds the variable at cell to value v (which is bound).
func (e *Engine) bindVarValue(cell word.Addr, v word.Word) unifyResult {
	cur, ok := e.acc.LockRead(cell)
	if !ok {
		return unifyBlocked
	}
	if !cur.IsVar() {
		// Bound by another PE between our deref and the lock: release
		// and unify against the new value.
		e.acc.Unlock(cell)
		return e.unify(word.Ref(cell), v)
	}
	hooks := word.NilAddr
	if cur.Tag() == word.TagHook {
		hooks = cur.Addr()
	}
	e.acc.UnlockWrite(cell, v)
	if hooks != word.NilAddr {
		e.wakeHooks(hooks)
	}
	return unifyOK
}

// bindVarVar links two unbound variables. Locks are taken in address
// order, which prevents deadlock among concurrent binders; hook lists are
// merged onto the surviving (lower-addressed) variable.
func (e *Engine) bindVarVar(ca, cb word.Addr) unifyResult {
	lo, hi := ca, cb
	if lo > hi {
		lo, hi = hi, lo
	}
	loVal, ok := e.acc.LockRead(lo)
	if !ok {
		return unifyBlocked
	}
	hiVal, ok := e.acc.LockRead(hi)
	if !ok {
		// Release the first lock and retry later: holding it while busy
		// waiting could deadlock with the other PE's binder.
		e.acc.Unlock(lo)
		return unifyBlocked
	}
	if !loVal.IsVar() || !hiVal.IsVar() {
		// One side got bound while we were locking: restart generally.
		e.acc.Unlock(hi)
		e.acc.Unlock(lo)
		return e.unify(word.Ref(ca), word.Ref(cb))
	}
	// Merge hi's hook list into lo, then point hi at lo.
	loHooks := word.NilAddr
	if loVal.Tag() == word.TagHook {
		loHooks = loVal.Addr()
	}
	if hiVal.Tag() == word.TagHook {
		merged := hiVal.Addr()
		if loHooks != word.NilAddr {
			// Append lo's chain after hi's (walking hi's chain).
			tail := merged
			for {
				next := e.acc.Read(tail + suspNextOff)
				if next.Tag() != word.TagSusp {
					break
				}
				tail = next.Addr()
			}
			e.acc.Write(tail+suspNextOff, word.Susp(loHooks))
		}
		loHooks = merged
	}
	if loHooks != word.NilAddr {
		e.acc.UnlockWrite(lo, word.Hook(loHooks))
	} else {
		e.acc.UnlockWrite(lo, word.Unbound(lo))
	}
	e.acc.UnlockWrite(hi, word.Ref(lo))
	return unifyOK
}

// wakeHooks runs the resumption routine over a suspension list: each
// waiting goal still floating is relinked to this PE's goal list, and the
// suspension records are reclaimed to this PE's free list. Goal status
// words are read and rewritten within one machine step, which makes the
// check-and-requeue atomic in the deterministic interleaving (hardware
// would hold the record's word lock).
func (e *Engine) wakeHooks(head word.Addr) {
	s := head
	for s != word.NilAddr {
		next := e.acc.ExclusiveRead(s + suspNextOff)
		goalW := e.acc.ReadPurge(s + suspGoalOff)
		if goalW.Tag() != word.TagGoal {
			panic(fmt.Sprintf("emulator: corrupt suspension record at %#x: %v", s, goalW))
		}
		g := goalW.Addr()
		status := e.acc.Read(g + goalStatusOff)
		if status.Tag() == word.TagInt && status.IntVal() == statusFloating {
			e.acc.Write(g+goalStatusOff, word.Int(statusQueued))
			e.acc.Write(g+goalLinkOff, e.goalLink())
			e.pushGoalAddr(g)
			e.sh.liveGoals++
			e.sh.floating--
			e.stats.Resumptions++
			e.sh.emitSched(probe.KindGoalResume, e.pe, g, 0)
		} else {
			// Stale suspension (the goal was already woken through
			// another variable): write the status back unchanged. The
			// write re-invalidates the shared copy this PE's read just
			// created, preserving the free list's direct-write contract —
			// a goal record's blocks must have no remote copies when the
			// record is recycled.
			e.acc.Write(g+goalStatusOff, status)
		}
		e.suspFL.Push(dwAccessor{e.acc}, s)
		if next.Tag() == word.TagSusp {
			s = next.Addr()
		} else {
			s = word.NilAddr
		}
	}
}

// --- suspension of the current goal ---

// startSuspend begins suspending the current goal on the collected
// candidate variables: the goal is recreated as a floating record, then
// hooked to each candidate (multi-step: each hook takes a variable lock).
func (e *Engine) startSuspend() {
	rec, ok := e.goalFL.Alloc(e.acc)
	if !ok {
		e.sh.fail(fmt.Sprintf("PE %d goal area exhausted", e.pe))
		return
	}
	e.acc.DirectWrite(rec+goalLinkOff, word.Nil())
	e.acc.DirectWrite(rec+goalHeaderOff, compile.EncodeGoalHeader(e.curProc, e.curArity))
	e.acc.DirectWrite(rec+goalStatusOff, word.Int(statusFloating))
	for i := 0; i < e.curArity; i++ {
		e.acc.DirectWrite(rec+goalArgsOff+word.Addr(i), e.regs[i])
	}
	e.suspRec = rec
	e.suspIdx = 0
	e.suspAny = false
	e.suspWake = false
	e.stats.Suspensions++
	e.sh.floating++
	e.sh.emitSched(probe.KindGoalSuspend, e.pe, rec, 0)
	e.continueSuspend()
}

// continueSuspend hooks the goal to the next candidate variable; it is
// re-entered after busy waits.
func (e *Engine) continueSuspend() {
	for e.suspIdx < len(e.candidates) {
		cell := e.candidates[e.suspIdx]
		cur, ok := e.acc.LockRead(cell)
		if !ok {
			return // busy wait; re-enter later
		}
		if !cur.IsVar() {
			// Already bound: the wake condition holds right now.
			e.acc.Unlock(cell)
			e.suspWake = true
			e.suspAny = true
			e.suspIdx++
			continue
		}
		s, ok := e.suspFL.Alloc(e.acc)
		if !ok {
			e.acc.Unlock(cell)
			e.sh.fail(fmt.Sprintf("PE %d suspension area exhausted", e.pe))
			return
		}
		if cur.Tag() == word.TagHook {
			e.acc.DirectWrite(s+suspNextOff, word.Susp(cur.Addr()))
		} else {
			e.acc.DirectWrite(s+suspNextOff, word.Nil())
		}
		e.acc.DirectWrite(s+suspGoalOff, word.Goal(e.suspRec))
		e.acc.UnlockWrite(cell, word.Hook(s))
		e.suspAny = true
		e.suspIdx++
	}
	rec := e.suspRec
	e.suspRec = 0
	e.pc = 0
	e.sh.liveGoals-- // floating goals are not live ...
	if e.suspWake || !e.suspAny {
		// ... but one of the variables was already bound (or every hook
		// raced with a binder): requeue immediately.
		status := e.acc.Read(rec + goalStatusOff)
		if status.Tag() == word.TagInt && status.IntVal() == statusFloating {
			e.acc.Write(rec+goalStatusOff, word.Int(statusQueued))
			e.acc.Write(rec+goalLinkOff, e.goalLink())
			e.pushGoalAddr(rec)
			e.sh.liveGoals++
			e.sh.floating--
		}
	}
}
