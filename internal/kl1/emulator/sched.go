package emulator

import (
	"fmt"

	"pimcache/internal/kl1/compile"
	"pimcache/internal/kl1/word"
	"pimcache/internal/machine"
	"pimcache/internal/mem"
	"pimcache/internal/probe"
)

// dwAccessor forwards to an Accessor but turns plain writes into direct
// writes: record free-list links are written into blocks whose contents
// are dead, so fetching them on write would be pure overhead. The cache
// degrades DW to W wherever it does not apply.
type dwAccessor struct{ mem.Accessor }

func (d dwAccessor) Write(a word.Addr, w word.Word) { d.DirectWrite(a, w) }

// goalLink renders the goal-list head as a record link word.
func (e *Engine) goalLink() word.Word {
	if e.goalHead == word.NilAddr {
		return word.Nil()
	}
	return word.Goal(e.goalHead)
}

// pushGoalAddr links an already-written record to the front of the goal
// list (the record's link word must already be set).
func (e *Engine) pushGoalAddr(rec word.Addr) {
	e.goalHead = rec
	e.goalCount++
	e.sh.busy[e.pe] = true
}

// spawnGoal creates a goal record for proc/arity with args at register
// base and pushes it. Goal records are written with DW: they are fresh,
// write-once data (Section 2.3).
func (e *Engine) spawnGoal(procIdx, arity, base int) bool {
	rec, ok := e.goalFL.Alloc(e.acc)
	if !ok {
		e.sh.fail(fmt.Sprintf("PE %d goal area exhausted", e.pe))
		return false
	}
	e.acc.DirectWrite(rec+goalLinkOff, e.goalLink())
	e.acc.DirectWrite(rec+goalHeaderOff, compile.EncodeGoalHeader(procIdx, arity))
	e.acc.DirectWrite(rec+goalStatusOff, word.Int(statusQueued))
	for i := 0; i < arity; i++ {
		e.acc.DirectWrite(rec+goalArgsOff+word.Addr(i), e.regs[base+i])
	}
	e.pushGoalAddr(rec)
	e.sh.liveGoals++
	e.stats.Spawns++
	return true
}

// recordRead reads words [0, n) of the record at rec using the
// write-once/read-once discipline of Section 3.2: ER for every word, with
// the final word read by RP when it does not fall on a block boundary (in
// which case ER's own last-word purge applies). After a full read no
// cache holds any of the record's touched blocks.
//
// skipStatus omits the status word (offset 2), which the dequeue path
// does not need; the purge behaviour is unaffected because the skipped
// word is never a block's last word here.
func (e *Engine) recordRead(rec word.Addr, n int, skipStatus bool) []word.Word {
	out := make([]word.Word, n)
	blockMask := word.Addr(3) // ER/RP semantics are defined against the
	// four-word block of the paper's base cache; the cache itself
	// re-checks block boundaries, so a different simulated block size
	// only shifts which reads degrade to plain R.
	for i := 0; i < n; i++ {
		a := rec + word.Addr(i)
		if skipStatus && i == goalStatusOff {
			continue
		}
		last := i == n-1
		switch {
		case last && a&blockMask != blockMask:
			out[i] = e.acc.ReadPurge(a)
		default:
			out[i] = e.acc.ExclusiveRead(a)
		}
	}
	return out
}

// dequeueGoal pops the front goal record, loads it into the register
// file, reclaims the record, and begins the reduction. Builtin goals set
// builtinProc instead of entering compiled code.
func (e *Engine) dequeueGoal() {
	rec := e.goalHead
	header := e.acc.ExclusiveRead(rec + goalHeaderOff)
	procIdx, arity := compile.DecodeGoalHeader(header)
	words := e.recordReadTail(rec, goalArgsOff+arity)
	link := words[goalLinkOff]
	if link.Tag() == word.TagGoal {
		e.goalHead = link.Addr()
	} else {
		e.goalHead = word.NilAddr
	}
	e.goalCount--
	e.sh.busy[e.pe] = e.goalCount > 0
	for i := 0; i < arity; i++ {
		e.regs[i] = e.fixVar(rec+goalArgsOff+word.Addr(i), words[goalArgsOff+i])
	}
	e.goalFL.Push(dwAccessor{e.acc}, rec)
	if compile.IsBuiltin(procIdx) {
		e.builtinProc = procIdx
		e.builtinArity = arity
		return
	}
	e.beginReduction(procIdx, arity)
}

// recordReadTail re-reads the record including the link and args after
// the header peek (the header word was already read; reading it again via
// the ER sequence keeps the purge discipline intact at the cost of one
// extra hit).
func (e *Engine) recordReadTail(rec word.Addr, n int) []word.Word {
	return e.recordRead(rec, n, true)
}

// --- communication-area messaging ---

// sendMessage writes a two-word message into a slot: the status word is
// the lock (LR/UW), the payload a single word. Returns false while the
// slot lock is busy (retry).
func (e *Engine) sendMessage(slot word.Addr, payload word.Word) bool {
	status, ok := e.acc.LockRead(slot + slotStatusOff)
	if !ok {
		return false
	}
	if status.Tag() == word.TagInt && status.IntVal() != 0 {
		// Receiver has not consumed the previous message; with one
		// outstanding request per PE and per-sender slots this cannot
		// happen.
		panic(fmt.Sprintf("emulator: PE %d: slot %#x still full", e.pe, slot))
	}
	e.acc.Write(slot+slotValueOff, payload)
	e.acc.UnlockWrite(slot+slotStatusOff, word.Int(1))
	return true
}

// pollSlot checks a slot with RI (the block will be rewritten immediately
// if a message is present, and polling an empty slot hits the
// exclusively-held block for free). ok reports a message was consumed.
func (e *Engine) pollSlot(slot word.Addr) (word.Word, bool) {
	status := e.acc.ReadInvalidate(slot + slotStatusOff)
	if status.Tag() != word.TagInt || status.IntVal() == 0 {
		return 0, false
	}
	payload := e.acc.Read(slot + slotValueOff)
	e.acc.Write(slot+slotStatusOff, word.Int(0))
	return payload, true
}

// pollRequests services at most one pending work request per call,
// rotating over the per-sender request slots. Called at reduction
// boundaries (the paper's on-demand scheduler).
func (e *Engine) pollRequests() {
	e.sincePoll++
	if e.sincePoll < e.sh.Cfg.PollInterval {
		return
	}
	e.sincePoll = 0
	e.pollCursor = (e.pollCursor + 1) % e.sh.NumPEs
	if e.pollCursor == e.pe {
		e.pollCursor = (e.pollCursor + 1) % e.sh.NumPEs
	}
	slot := e.sh.requestSlot(e.pe, e.pollCursor)
	payload, ok := e.pollSlot(slot)
	if !ok {
		return
	}
	requester := int(payload.IntVal())
	reply := e.sh.replySlot(requester)
	if rec, ok := e.unlinkDonation(); ok {
		if !e.sendMessage(reply, word.Goal(rec)) {
			// The reply slot lock is held briefly by the requester's
			// poll; spinning via the normal busy-wait path would
			// complicate the engine, so requeue the goal and drop the
			// request — the requester will ask again.
			e.acc.Write(rec+goalLinkOff, e.goalLink())
			e.pushGoalAddr(rec)
			return
		}
		e.stats.GoalsSent++
	} else {
		if !e.sendMessage(reply, word.Int(0)) {
			return // dropped; requester retries
		}
	}
}

// unlinkDonation removes the first user goal near the front of the goal
// list (builtin continuations such as $arith are too fine-grained to be
// worth a transfer, so a short prefix of them is skipped).
func (e *Engine) unlinkDonation() (word.Addr, bool) {
	const maxSkip = 4
	prev := word.NilAddr
	cur := e.goalHead
	for hops := 0; cur != word.NilAddr && hops < maxSkip; hops++ {
		header := e.acc.Read(cur + goalHeaderOff)
		procIdx, _ := compile.DecodeGoalHeader(header)
		link := e.acc.Read(cur + goalLinkOff)
		next := word.NilAddr
		if link.Tag() == word.TagGoal {
			next = link.Addr()
		}
		if !compile.IsBuiltin(procIdx) {
			if prev == word.NilAddr {
				e.goalHead = next
			} else {
				e.acc.Write(prev+goalLinkOff, link)
			}
			e.goalCount--
			e.sh.busy[e.pe] = e.goalCount > 0
			return cur, true
		}
		prev, cur = cur, next
	}
	return 0, false
}

// schedule is the between-reductions step: poll for work requests, then
// run the next local goal, or look for remote work, or detect global
// termination.
func (e *Engine) schedule() machine.Status {
	if !e.started {
		e.started = true
		if e.pe == 0 {
			idx, _ := e.sh.Image.ProcIndexOf("main", 0)
			e.beginReduction(idx, 0)
			return machine.StatusRunning
		}
	}
	e.pollRequests()
	if e.goalHead != word.NilAddr {
		e.dequeueGoal()
		return machine.StatusRunning
	}
	// No local work.
	if e.waitingOn >= 0 {
		payload, ok := e.pollSlot(e.sh.replySlot(e.pe))
		if !ok {
			if e.sh.liveGoals == 0 {
				// The system drained while we were waiting.
				return machine.StatusHalted
			}
			return machine.StatusIdle
		}
		victim := e.waitingOn
		e.waitingOn = -1
		if payload.Tag() == word.TagGoal {
			e.receiveGoal(payload.Addr())
			e.sh.emitSched(probe.KindGoalSteal, e.pe, payload.Addr(), uint64(victim))
			return machine.StatusRunning
		}
		return machine.StatusIdle // NOWORK: try another victim next step
	}
	if e.sh.liveGoals == 0 {
		return machine.StatusHalted
	}
	victim := e.pickVictim()
	if victim < 0 {
		return machine.StatusIdle
	}
	if e.sendMessage(e.sh.requestSlot(victim, e.pe), word.Int(int64(e.pe))) {
		e.waitingOn = victim
	}
	return machine.StatusIdle
}

// receiveGoal consumes a donated goal record (ER/RP cache-to-cache
// transfer), reclaims the record to this PE's free list, and runs it.
func (e *Engine) receiveGoal(rec word.Addr) {
	header := e.acc.ExclusiveRead(rec + goalHeaderOff)
	procIdx, arity := compile.DecodeGoalHeader(header)
	words := e.recordReadTail(rec, goalArgsOff+arity)
	for i := 0; i < arity; i++ {
		e.regs[i] = e.fixVar(rec+goalArgsOff+word.Addr(i), words[goalArgsOff+i])
	}
	e.goalFL.Push(dwAccessor{e.acc}, rec)
	e.stats.GoalsStolen++
	if compile.IsBuiltin(procIdx) {
		e.builtinProc = procIdx
		e.builtinArity = arity
		return
	}
	e.beginReduction(procIdx, arity)
}

// pickVictim chooses a busy PE round-robin; -1 if none.
func (e *Engine) pickVictim() int {
	for i := 1; i < e.sh.NumPEs; i++ {
		v := (e.pe + i) % e.sh.NumPEs
		if e.sh.busy[v] {
			return v
		}
	}
	return -1
}
