package emulator

import (
	"fmt"

	"pimcache/internal/kl1/word"
	"pimcache/internal/mem"
)

// Stop-and-copy garbage collection.
//
// The paper's system "uses stop-and-copy GC" (Section 4); this file
// implements it as a semispace Cheney collector over all PEs' heap
// segments. It runs when a PE's allocation fails, stopping the world —
// trivially sound here because the machine is deterministic and
// single-threaded, and heap allocation only happens at safe points where
// every live heap pointer is reachable from the root set:
//
//   - every engine's register file and suspension-candidate list,
//   - queued goal records (each PE's goal list),
//   - the floating record of an in-progress suspension,
//   - goal records in transit in communication-area reply slots,
//   - and, transitively, floating goal records hooked on live variables
//     (reached through TagHook cells during the copy).
//
// The object model needs no headers: a heap pointer's tag gives the
// object extent (Ref -> one cell, List -> two, Struct -> functor+arity),
// and the runtime never creates interior pointers — unbound variables
// are always standalone single-cell objects, never slots of a pair or
// structure (the compiler allocates fresh variables with put_var and
// stores references to them).
//
// GC reads and writes memory directly and flushes/invalidates every
// cache first, so it generates no simulated bus traffic; the paper's
// measurements likewise instrument mutator references only.

// GCStats counts collector activity.
type GCStats struct {
	Collections uint64
	WordsCopied uint64
}

// gcState is the cluster-wide collector state (in Shared).
type gcState struct {
	enabled bool
	// flushCaches writes back and invalidates every cache; wired by the
	// Cluster (the emulator does not know about the machine directly).
	flushCaches func()
	// checkLocks reports any held word lock (GC must see none).
	checkLocks func() error
	engines    []*Engine
	stats      GCStats

	// Per-collection working state.
	scanned map[word.Addr]bool // goal records already scanned
}

// EnableGC switches the cluster to semispace heaps (each PE's segment is
// halved) with stop-and-copy collection. Must be called before engines
// are created.
func (sh *Shared) EnableGC(flush func(), checkLocks func() error) {
	sh.gc.enabled = true
	sh.gc.flushCaches = flush
	sh.gc.checkLocks = checkLocks
}

// GCStats reports collector activity.
func (sh *Shared) GCStats() GCStats { return sh.gc.stats }

// register adds an engine to the root set.
func (sh *Shared) register(e *Engine) { sh.gc.engines = append(sh.gc.engines, e) }

// collectGarbage runs a full collection. It returns an error when live
// data does not fit the to-spaces.
func (sh *Shared) collectGarbage() error {
	gc := &sh.gc
	if !gc.enabled {
		return fmt.Errorf("heap exhausted (garbage collection disabled)")
	}
	if gc.checkLocks != nil {
		if err := gc.checkLocks(); err != nil {
			return err
		}
	}
	if gc.flushCaches != nil {
		gc.flushCaches()
	}
	gc.stats.Collections++
	gc.scanned = make(map[word.Addr]bool)

	// Flip every engine's semispace; allocation proceeds in to-space.
	for _, e := range gc.engines {
		e.heap.Flip()
	}
	// Roots: registers, candidates, in-progress suspension records,
	// queued goal records, in-transit reply payloads.
	for _, e := range gc.engines {
		for i := range e.regs {
			w, err := sh.forward(e.regs[i], e)
			if err != nil {
				return err
			}
			e.regs[i] = w
		}
		for i, cell := range e.candidates {
			nw, err := sh.forward(word.Ref(cell), e)
			if err != nil {
				return err
			}
			e.candidates[i] = nw.Addr()
		}
		if e.suspRec != 0 {
			if err := sh.scanGoalRecord(e.suspRec, e); err != nil {
				return err
			}
		}
		for rec := e.goalHead; rec != word.NilAddr; {
			if err := sh.scanGoalRecord(rec, e); err != nil {
				return err
			}
			link := sh.Mem.Read(rec + goalLinkOff)
			if link.Tag() != word.TagGoal {
				break
			}
			rec = link.Addr()
		}
	}
	for pe := 0; pe < sh.NumPEs; pe++ {
		slot := sh.replySlot(pe)
		payload := sh.Mem.Read(slot + slotValueOff)
		if payload.Tag() == word.TagGoal {
			if err := sh.scanGoalRecord(payload.Addr(), sh.gc.engines[pe]); err != nil {
				return err
			}
		}
	}
	// Cheney scan: drain every to-space until no gray cells remain.
	for {
		progress := false
		for _, e := range gc.engines {
			for e.heap.Scan < e.heap.Next {
				a := e.heap.Scan
				e.heap.Scan++
				progress = true
				w := sh.Mem.Read(a)
				if w.IsVar() {
					// Variable cells were fixed up at copy time (the
					// unbound self-reference or hook payload is already
					// correct); forwarding the raw word would turn it
					// into a self-referential Ref.
					continue
				}
				nw, err := sh.forward(w, e)
				if err != nil {
					return err
				}
				sh.Mem.Write(a, nw)
			}
		}
		if !progress {
			break
		}
	}
	gc.scanned = nil
	return nil
}

// forward copies the object w points at into to-space (if it is a
// from-space heap pointer) and returns the updated word. owner chooses
// whose to-space receives objects with no prior segment owner.
func (sh *Shared) forward(w word.Word, owner *Engine) (word.Word, error) {
	switch w.Tag() {
	case word.TagRef:
		na, err := sh.copyObject(w.Addr(), 1, owner)
		if err != nil {
			return 0, err
		}
		return word.Ref(na), nil
	case word.TagList:
		na, err := sh.copyObject(w.Addr(), 2, owner)
		if err != nil {
			return 0, err
		}
		return word.List(na), nil
	case word.TagStruct:
		f := sh.readForwardableFunctor(w.Addr())
		na, err := sh.copyObject(w.Addr(), 1+f.FunctorArity(), owner)
		if err != nil {
			return 0, err
		}
		return word.Struct(na), nil
	case word.TagUnbound:
		// A raw unbound cell word outside its cell (register view):
		// forward the cell it names.
		na, err := sh.copyObject(w.Addr(), 1, owner)
		if err != nil {
			return 0, err
		}
		return word.Ref(na), nil
	default:
		return w, nil
	}
}

// readForwardableFunctor reads a structure's functor even if the object
// was already evacuated (following the broken heart).
func (sh *Shared) readForwardableFunctor(a word.Addr) word.Word {
	w := sh.Mem.Read(a)
	if w.Tag() == word.TagFree { // broken heart: functor lives in to-space
		return sh.Mem.Read(w.Addr())
	}
	return w
}

// copyObject evacuates n cells starting at a into to-space, returning the
// new address. Already-moved objects are recognized by the broken-heart
// marker (a TagFree word, which never occurs in live heap data).
func (sh *Shared) copyObject(a word.Addr, n int, owner *Engine) (word.Addr, error) {
	if sh.bounds.AreaOf(a) != mem.AreaHeap {
		return a, nil // instruction/goal/susp/comm pointers do not move
	}
	dst := sh.heapOwner(a, owner)
	if a >= dst.heap.Base && a < dst.heap.Limit {
		return a, nil // already in to-space
	}
	first := sh.Mem.Read(a)
	if first.Tag() == word.TagFree {
		return first.Addr(), nil
	}
	na, ok := dst.heap.Alloc(n)
	if !ok {
		return 0, fmt.Errorf("PE %d to-space overflow during GC", dst.pe)
	}
	sh.gc.stats.WordsCopied += uint64(n)
	for i := 0; i < n; i++ {
		sh.Mem.Write(na+word.Addr(i), sh.Mem.Read(a+word.Addr(i)))
	}
	sh.Mem.Write(a, word.Free(na)) // broken heart
	// Self-referential unbound variables must keep naming their own cell;
	// hooked variables drag their suspended goals along.
	moved := sh.Mem.Read(na)
	switch moved.Tag() {
	case word.TagUnbound:
		sh.Mem.Write(na, word.Unbound(na))
	case word.TagHook:
		if err := sh.scanHooks(moved.Addr(), dst); err != nil {
			return 0, err
		}
	}
	return na, nil
}

// heapOwner returns the engine whose segment contains a (for locality,
// objects stay with their allocating PE), falling back to the requester.
func (sh *Shared) heapOwner(a word.Addr, fallback *Engine) *Engine {
	for _, e := range sh.gc.engines {
		if a >= e.heap.Base && a < e.heap.Limit {
			return e
		}
		if a >= e.heap.OtherBase() && a < e.heap.OtherLimit() {
			return e
		}
	}
	return fallback
}

// scanHooks walks a suspension chain, forwarding the argument words of
// every still-floating goal record it wakes up to keep alive.
func (sh *Shared) scanHooks(susp word.Addr, owner *Engine) error {
	for susp != word.NilAddr {
		goalW := sh.Mem.Read(susp + suspGoalOff)
		if goalW.Tag() == word.TagGoal {
			status := sh.Mem.Read(goalW.Addr() + goalStatusOff)
			if status.Tag() == word.TagInt && status.IntVal() == statusFloating {
				if err := sh.scanGoalRecord(goalW.Addr(), owner); err != nil {
					return err
				}
			}
		}
		next := sh.Mem.Read(susp + suspNextOff)
		if next.Tag() != word.TagSusp {
			break
		}
		susp = next.Addr()
	}
	return nil
}

// scanGoalRecord forwards a goal record's argument words in place.
func (sh *Shared) scanGoalRecord(rec word.Addr, owner *Engine) error {
	if sh.gc.scanned[rec] {
		return nil
	}
	sh.gc.scanned[rec] = true
	header := sh.Mem.Read(rec + goalHeaderOff)
	arity := int(header.Payload() & 0xFFFF)
	if arity > MaxRecordArity {
		return fmt.Errorf("gc: corrupt goal record at %#x (arity %d)", rec, arity)
	}
	for i := 0; i < arity; i++ {
		a := rec + goalArgsOff + word.Addr(i)
		w, err := sh.forward(sh.Mem.Read(a), owner)
		if err != nil {
			return err
		}
		sh.Mem.Write(a, w)
	}
	return nil
}

// MaxRecordArity bounds goal record argument counts (see the record
// layout).
const MaxRecordArity = GoalRecordWords - goalArgsOff
