package emulator

import (
	"fmt"

	"pimcache/internal/kl1/compile"
	"pimcache/internal/kl1/parser"
	"pimcache/internal/kl1/word"
	"pimcache/internal/machine"
)

// Cluster bundles a simulated machine with the KL1 runtime running on it.
type Cluster struct {
	Machine *machine.Machine
	Shared  *Shared
	Engines []*Engine
}

// NewCluster builds the machine, loads the image, and attaches one engine
// per PE.
func NewCluster(im *compile.Image, mcfg machine.Config, ecfg Config) (*Cluster, error) {
	m := machine.New(mcfg)
	sh, err := NewShared(im, m.Memory(), mcfg.PEs, ecfg)
	if err != nil {
		return nil, err
	}
	if ecfg.EnableGC {
		WireGC(sh, m)
	}
	engines := make([]*Engine, mcfg.PEs)
	for i := 0; i < mcfg.PEs; i++ {
		e, err := NewEngine(sh, i, m.Port(i))
		if err != nil {
			return nil, err
		}
		engines[i] = e
		m.Attach(i, e)
	}
	return &Cluster{Machine: m, Shared: sh, Engines: engines}, nil
}

// Result summarizes a program run.
type Result struct {
	Output     string
	Failed     bool
	FailReason string
	// Floating counts goals still suspended at termination (program
	// deadlock if nonzero).
	Floating int64
	// Steps is the machine-step count; HitStepLimit reports an aborted
	// run. Rounds counts round-robin sweeps, the simulated wall-clock
	// proxy used for speedup figures.
	Steps        uint64
	Rounds       uint64
	HitStepLimit bool
	// Emu aggregates the per-PE engine statistics.
	Emu Stats
	// PerPE holds each engine's statistics.
	PerPE []Stats
}

// Run drives the cluster to completion (or maxSteps) and collects
// results.
func (cl *Cluster) Run(maxSteps uint64) Result {
	mres := cl.Machine.Run(maxSteps)
	res := Result{
		Output:       cl.Shared.Output(),
		Floating:     cl.Shared.Floating(),
		Steps:        mres.Steps,
		Rounds:       mres.Rounds,
		HitStepLimit: mres.HitStepLimit,
	}
	res.Failed, res.FailReason = cl.Shared.Failed()
	for _, e := range cl.Engines {
		st := e.Stats()
		res.PerPE = append(res.PerPE, st)
		res.Emu.Instructions += st.Instructions
		res.Emu.Reductions += st.Reductions
		res.Emu.Suspensions += st.Suspensions
		res.Emu.Resumptions += st.Resumptions
		res.Emu.Spawns += st.Spawns
		res.Emu.GoalsSent += st.GoalsSent
		res.Emu.GoalsStolen += st.GoalsStolen
	}
	return res
}

// WireGC enables stop-and-copy collection on a shared state backed by
// the given machine: collections flush and invalidate every cache (the
// collector moves objects directly in memory) and assert that no word
// locks are held. Call before creating engines.
func WireGC(sh *Shared, m *machine.Machine) {
	sh.EnableGC(m.FlushAll, func() error {
		for i := 0; i < m.Config().PEs; i++ {
			if n := m.Cache(i).LocksInUse(); n != 0 {
				return fmt.Errorf("gc: PE %d holds %d locks", i, n)
			}
		}
		return nil
	})
}

// RunSource compiles and runs FGHC source on a fresh cluster; a
// convenience for tests, examples and the CLI.
func RunSource(src string, mcfg machine.Config, ecfg Config, maxSteps uint64) (*Cluster, Result, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, Result{}, fmt.Errorf("parse: %w", err)
	}
	im, err := compile.Compile(prog, word.NewTable())
	if err != nil {
		return nil, Result{}, fmt.Errorf("compile: %w", err)
	}
	cl, err := NewCluster(im, mcfg, ecfg)
	if err != nil {
		return nil, Result{}, err
	}
	res := cl.Run(maxSteps)
	return cl, res, nil
}
