package emulator

import (
	"strings"
	"testing"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/kl1/word"
	"pimcache/internal/machine"
	"pimcache/internal/mem"
)

// testMachineConfig builds a small but realistic cluster configuration.
func testMachineConfig(pes int) machine.Config {
	return machine.Config{
		PEs: pes,
		Layout: mem.Layout{
			InstWords: 16 << 10,
			HeapWords: 512 << 10,
			GoalWords: 64 << 10,
			SuspWords: 16 << 10,
			CommWords: 4 << 10,
		},
		Cache: cache.Config{
			SizeWords: 1 << 10, BlockWords: 4, Ways: 4, LockEntries: 4,
			Options:  cache.OptionsAll(),
			Protocol: cache.ProtocolPIM,
			VerifyDW: true,
		},
		Timing: bus.DefaultTiming(),
	}
}

// run executes src on pes PEs and returns the result, failing the test on
// compile errors, program failure, or step-limit overrun.
func run(t *testing.T, src string, pes int) (*Cluster, Result) {
	t.Helper()
	cl, res, err := RunSource(src, testMachineConfig(pes), DefaultConfig(), 50_000_000)
	if err != nil {
		t.Fatalf("RunSource: %v", err)
	}
	if res.Failed {
		t.Fatalf("program failed: %s (output %q)", res.FailReason, res.Output)
	}
	if res.HitStepLimit {
		t.Fatalf("step limit hit; output so far %q", res.Output)
	}
	return cl, res
}

func TestHelloConstant(t *testing.T) {
	_, res := run(t, "main :- true | println(42).", 1)
	if res.Output != "42\n" {
		t.Errorf("output %q", res.Output)
	}
	if res.Emu.Reductions == 0 || res.Emu.Instructions == 0 {
		t.Error("no work recorded")
	}
}

func TestAtomAndStructOutput(t *testing.T) {
	_, res := run(t, `
main :- true | X = f(hello, [1,2], g(3)), println(X).
`, 1)
	if res.Output != "f(hello,[1,2],g(3))\n" {
		t.Errorf("output %q", res.Output)
	}
}

func TestClauseSelectionByConstant(t *testing.T) {
	_, res := run(t, `
main :- true | p(2, R), println(R).
p(1, R) :- true | R = one.
p(2, R) :- true | R = two.
p(3, R) :- true | R = three.
`, 1)
	if res.Output != "two\n" {
		t.Errorf("output %q", res.Output)
	}
}

func TestGuardComparisonSelection(t *testing.T) {
	_, res := run(t, `
main :- true | classify(-5, A), classify(0, B), classify(7, C),
               println(A), println(B), println(C).
classify(X, R) :- X < 0 | R = neg.
classify(X, R) :- X =:= 0 | R = zero.
classify(X, R) :- X > 0 | R = pos.
`, 1)
	if res.Output != "neg\nzero\npos\n" {
		t.Errorf("output %q", res.Output)
	}
}

func TestRecursionSum(t *testing.T) {
	// sum(N) = N + ... + 1 computed with an accumulator.
	_, res := run(t, `
main :- true | sum(100, 0, R), println(R).
sum(0, Acc, R) :- true | R = Acc.
sum(N, Acc, R) :- N > 0 | A1 := Acc + N, N1 := N - 1, sum(N1, A1, R).
`, 1)
	if res.Output != "5050\n" {
		t.Errorf("output %q", res.Output)
	}
}

func TestListAppendAndLength(t *testing.T) {
	_, res := run(t, `
main :- true | mklist(5, L), app(L, [9,8], M), len(M, 0, N), println(M), println(N).
mklist(0, L) :- true | L = [].
mklist(N, L) :- N > 0 | N1 := N - 1, L = [N|T], mklist(N1, T).
app([], Y, Z) :- true | Z = Y.
app([H|T], Y, Z) :- true | Z = [H|Z1], app(T, Y, Z1).
len([], Acc, N) :- true | N = Acc.
len([_|T], Acc, N) :- true | A1 := Acc + 1, len(T, A1, N).
`, 1)
	if res.Output != "[5,4,3,2,1,9,8]\n7\n" {
		t.Errorf("output %q", res.Output)
	}
}

func TestOtherwiseClause(t *testing.T) {
	_, res := run(t, `
main :- true | p(5, A), p(0, B), println(A), println(B).
p(0, R) :- true | R = zero.
p(X, R) :- otherwise | R = other.
`, 1)
	if res.Output != "other\nzero\n" {
		t.Errorf("output %q", res.Output)
	}
}

func TestNonlinearHead(t *testing.T) {
	_, res := run(t, `
main :- true | eq(3, 3, A), eq(3, 4, B), println(A), println(B).
eq(X, X, R) :- true | R = same.
eq(_, _, R) :- otherwise | R = diff.
`, 1)
	if res.Output != "same\ndiff\n" {
		t.Errorf("output %q", res.Output)
	}
}

func TestSuspensionProducerConsumer(t *testing.T) {
	// The consumer suspends on the unbound stream tail; the producer
	// resumes it. Stream AND-parallelism per Section 2.1.
	for _, pes := range []int{1, 2, 4} {
		_, res := run(t, `
main :- true | produce(10, S), consume(S, 0, R), println(R).
produce(0, S) :- true | S = [].
produce(N, S) :- N > 0 | S = [N|S1], N1 := N - 1, produce(N1, S1).
consume([], Acc, R) :- true | R = Acc.
consume([H|T], Acc, R) :- true | A1 := Acc + H, consume(T, A1, R).
`, pes)
		if res.Output != "55\n" {
			t.Errorf("%d PEs: output %q", pes, res.Output)
		}
		if res.Floating != 0 {
			t.Errorf("%d PEs: %d goals still floating", pes, res.Floating)
		}
	}
}

func TestSuspensionOnGuard(t *testing.T) {
	// p suspends in its guard until the producer binds X.
	_, res := run(t, `
main :- true | p(X, R), q(X), println(R).
p(X, R) :- X > 10 | R = big.
p(X, R) :- X =< 10 | R = small.
q(X) :- true | X = 42.
`, 2)
	if res.Output != "big\n" {
		t.Errorf("output %q", res.Output)
	}
	if res.Emu.Suspensions == 0 {
		t.Error("expected at least one suspension")
	}
	if res.Emu.Resumptions == 0 {
		t.Error("expected at least one resumption")
	}
}

func TestSpawnedArithmeticSuspends(t *testing.T) {
	// H comes from a stream, so Y := H*2 must spawn a suspending $arith.
	_, res := run(t, `
main :- true | gen(S), double(S, D), println(D).
gen(S) :- true | S = [1,2,3].
double([], D) :- true | D = [].
double([H|T], D) :- true | Y := H * 2, D = [Y|D1], double(T, D1).
`, 2)
	if res.Output != "[2,4,6]\n" {
		t.Errorf("output %q", res.Output)
	}
}

func TestParallelTreeSum(t *testing.T) {
	// Divide-and-conquer sum: spawns a tree of goals that load-balances
	// across PEs via the on-demand scheduler.
	src := `
main :- true | tsum(1, 64, R), println(R).
tsum(L, H, R) :- L =:= H | R = L.
tsum(L, H, R) :- L < H |
    M := (L + H) / 2, M1 := M + 1,
    tsum(L, M, A), tsum(M1, H, B), add(A, B, R).
add(A, B, R) :- wait(A), wait(B) | R := A + B.
`
	for _, pes := range []int{1, 2, 4, 8} {
		cl, res := run(t, src, pes)
		if res.Output != "2080\n" {
			t.Fatalf("%d PEs: output %q", pes, res.Output)
		}
		if pes > 1 && res.Emu.GoalsStolen == 0 {
			t.Errorf("%d PEs: no load balancing happened", pes)
		}
		// Coherence must hold over the goal area after the run.
		b := cl.Machine.Memory().Bounds()
		var addrs []word.Addr
		for a := b.GoalBase; a < b.GoalBase+4096; a += 4 {
			addrs = append(addrs, a)
		}
		if err := cl.Machine.VerifyCoherence(addrs); err != nil {
			t.Fatalf("%d PEs: coherence: %v", pes, err)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	src := `
main :- true | tsum(1, 32, R), println(R).
tsum(L, H, R) :- L =:= H | R = L.
tsum(L, H, R) :- L < H |
    M := (L + H) / 2, M1 := M + 1,
    tsum(L, M, A), tsum(M1, H, B), add(A, B, R).
add(A, B, R) :- wait(A), wait(B) | R := A + B.
`
	_, res1 := run(t, src, 4)
	cl2, res2 := run(t, src, 4)
	if res1.Steps != res2.Steps || res1.Emu.Reductions != res2.Emu.Reductions {
		t.Errorf("nondeterministic: %+v vs %+v", res1.Emu, res2.Emu)
	}
	if cl2.Machine.BusStats().TotalCycles == 0 {
		t.Error("no bus traffic at all?")
	}
}

func TestProgramFailureReported(t *testing.T) {
	_, res, err := RunSource("main :- true | p(5).\np(0) :- true | true.",
		testMachineConfig(1), DefaultConfig(), 1_000_000)
	if err != nil {
		t.Fatalf("RunSource: %v", err)
	}
	if !res.Failed || !strings.Contains(res.FailReason, "no clause applies") {
		t.Errorf("result %+v", res)
	}
}

func TestUnificationFailureReported(t *testing.T) {
	_, res, err := RunSource("main :- true | X = 1, X = 2.",
		testMachineConfig(1), DefaultConfig(), 1_000_000)
	if err != nil {
		t.Fatalf("RunSource: %v", err)
	}
	if !res.Failed || !strings.Contains(res.FailReason, "unification failed") {
		t.Errorf("result %+v", res)
	}
}

func TestPerpetualSuspensionDetected(t *testing.T) {
	// q never binds X, so p floats forever: the run terminates with a
	// floating goal (program deadlock).
	_, res, err := RunSource(`
main :- true | p(X).
p(1) :- true | true.
`, testMachineConfig(1), DefaultConfig(), 1_000_000)
	if err != nil {
		t.Fatalf("RunSource: %v", err)
	}
	if res.Failed {
		t.Fatalf("unexpected failure %s", res.FailReason)
	}
	if res.Floating != 1 {
		t.Errorf("floating = %d, want 1", res.Floating)
	}
}

func TestStatsPlausibility(t *testing.T) {
	cl, res := run(t, `
main :- true | produce(50, S), consume(S, 0, R), println(R).
produce(0, S) :- true | S = [].
produce(N, S) :- N > 0 | S = [N|S1], N1 := N - 1, produce(N1, S1).
consume([], Acc, R) :- true | R = Acc.
consume([H|T], Acc, R) :- true | A1 := Acc + H, consume(T, A1, R).
`, 2)
	if res.Output != "1275\n" {
		t.Fatalf("output %q", res.Output)
	}
	cs := cl.Machine.CacheStats()
	// Instruction references must exist and dominate plausibly.
	if cs.RefsByArea(mem.AreaInst) == 0 {
		t.Error("no instruction fetches recorded")
	}
	if cs.RefsByArea(mem.AreaHeap) == 0 || cs.RefsByArea(mem.AreaGoal) == 0 {
		t.Error("missing heap/goal references")
	}
	if cs.RefsByOp(cache.OpLR) == 0 {
		t.Error("no lock operations (bindings must lock)")
	}
	if cs.RefsByOp(cache.OpDW) == 0 || cs.RefsByOp(cache.OpER) == 0 {
		t.Error("optimized commands never issued")
	}
	// Every lock acquired was released.
	for i := 0; i < 2; i++ {
		if cl.Machine.Cache(i).LocksInUse() != 0 {
			t.Errorf("PE %d leaked %d locks", i, cl.Machine.Cache(i).LocksInUse())
		}
	}
}

func TestCoherenceAfterRun(t *testing.T) {
	cl, _ := run(t, `
main :- true | tsum(1, 40, R), println(R).
tsum(L, H, R) :- L =:= H | R = L.
tsum(L, H, R) :- L < H |
    M := (L + H) / 2, M1 := M + 1,
    tsum(L, M, A), tsum(M1, H, B), add(A, B, R).
add(A, B, R) :- wait(A), wait(B) | R := A + B.
`, 4)
	b := cl.Machine.Memory().Bounds()
	var addrs []word.Addr
	for a := b.HeapBase; a < b.HeapBase+8192; a += 4 {
		addrs = append(addrs, a)
	}
	for a := b.GoalBase; a < b.GoalBase+4096; a += 4 {
		addrs = append(addrs, a)
	}
	for a := b.CommBase; a < b.End; a += 4 {
		addrs = append(addrs, a)
	}
	if err := cl.Machine.VerifyCoherence(addrs); err != nil {
		t.Errorf("coherence: %v", err)
	}
}
