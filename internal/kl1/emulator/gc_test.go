package emulator

import (
	"testing"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/machine"
	"pimcache/internal/mem"
)

// gcMachineConfig builds a cluster with a deliberately tiny heap so the
// collector must run.
func gcMachineConfig(pes, heapWords int) machine.Config {
	return machine.Config{
		PEs: pes,
		Layout: mem.Layout{
			InstWords: 16 << 10,
			HeapWords: heapWords,
			GoalWords: 64 << 10,
			SuspWords: 16 << 10,
			CommWords: 4 << 10,
		},
		Cache: cache.Config{
			SizeWords: 1 << 10, BlockWords: 4, Ways: 4, LockEntries: 4,
			Options:  cache.OptionsAll(),
			Protocol: cache.ProtocolPIM,
			VerifyDW: true,
		},
		Timing: bus.DefaultTiming(),
	}
}

// runGC executes src under a tiny semispace heap and returns the result
// plus collector statistics.
func runGC(t *testing.T, src string, pes, heapWords int) (Result, GCStats) {
	t.Helper()
	ecfg := DefaultConfig()
	ecfg.EnableGC = true
	cl, res, err := RunSource(src, gcMachineConfig(pes, heapWords), ecfg, 80_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("program failed: %s", res.FailReason)
	}
	if res.HitStepLimit {
		t.Fatal("step limit")
	}
	return res, cl.Shared.GCStats()
}

// churn builds and discards a K-element list N times, keeping only the
// running total: nearly everything allocated is garbage.
const churn = `
main :- true | loop(60, 0, R), println(R).
loop(0, Acc, R) :- true | R = Acc.
loop(N, Acc, R) :- N > 0 |
    mk(40, L), sum(L, 0, S),
    step(S, N, Acc, R).
step(S, N, Acc, R) :- wait(S) |
    A1 := Acc + S, N1 := N - 1, loop(N1, A1, R).
mk(0, L) :- true | L = [].
mk(N, L) :- N > 0 | L = [N|T], N1 := N - 1, mk(N1, T).
sum([], A, S) :- true | S = A.
sum([H|T], A, S) :- true | A1 := A + H, sum(T, A1, S).
`

func TestGCCollectsGarbage(t *testing.T) {
	// 60 iterations x 40-element lists: each list needs ~200 heap words;
	// a 2048-word heap (1024-word semispaces split over 1 PE) cannot hold
	// them all without collecting.
	res, gcs := runGC(t, churn, 1, 2048)
	if res.Output != "49200\n" { // 60 * sum(1..40)
		t.Errorf("output %q", res.Output)
	}
	if gcs.Collections == 0 {
		t.Fatal("collector never ran despite tiny heap")
	}
	if gcs.WordsCopied == 0 {
		t.Error("no words copied")
	}
	t.Logf("collections=%d copied=%d", gcs.Collections, gcs.WordsCopied)
}

func TestGCSameAnswerAsBigHeap(t *testing.T) {
	small, gcs := runGC(t, churn, 1, 2048)
	big, _ := runGC(t, churn, 1, 1<<20)
	if small.Output != big.Output {
		t.Errorf("GC changed the answer: %q vs %q", small.Output, big.Output)
	}
	if gcs.Collections == 0 {
		t.Error("small-heap run never collected")
	}
}

func TestGCMultiPEWithSuspensions(t *testing.T) {
	// Parallel tree sum with garbage churn per node: collections happen
	// while goals are suspended on unbound variables across PEs, so hook
	// chains and floating records must be traced correctly.
	src := `
main :- true | tsum(1, 48, R), println(R).
tsum(L, H, R) :- L =:= H | mk(12, Junk), sum(Junk, 0, S), use(S, L, R).
tsum(L, H, R) :- L < H |
    M := (L + H) / 2, M1 := M + 1,
    tsum(L, M, A), tsum(M1, H, B), add(A, B, R).
use(S, L, R) :- wait(S) | R := L + S - S.
add(A, B, R) :- wait(A), wait(B) | R := A + B.
mk(0, L) :- true | L = [].
mk(N, L) :- N > 0 | L = [N|T], N1 := N - 1, mk(N1, T).
sum([], A, S) :- true | S = A.
sum([H|T], A, S) :- true | A1 := A + H, sum(T, A1, S).
`
	res, gcs := runGC(t, src, 4, 4096)
	if res.Output != "1176\n" { // sum(1..48)
		t.Errorf("output %q", res.Output)
	}
	if res.Floating != 0 {
		t.Errorf("floating goals: %d", res.Floating)
	}
	if gcs.Collections == 0 {
		t.Error("collector never ran")
	}
	t.Logf("collections=%d copied=%d", gcs.Collections, gcs.WordsCopied)
}

func TestGCPreservesSharedStructures(t *testing.T) {
	// A structure built on one PE, consumed on others, surviving multiple
	// collections triggered by unrelated garbage.
	src := `
main :- true | mk(20, Keep), churn(30, D), fin(D, Keep).
fin(done, Keep) :- true | sum(Keep, 0, S), println(S).
churn(0, D) :- true | D = done.
churn(N, D) :- N > 0 | mk(30, L), sum(L, 0, S), next(S, N, D).
next(S, N, D) :- wait(S) | N1 := N - 1, churn(N1, D).
mk(0, L) :- true | L = [].
mk(N, L) :- N > 0 | L = [N|T], N1 := N - 1, mk(N1, T).
sum([], A, S) :- true | S = A.
sum([H|T], A, S) :- true | A1 := A + H, sum(T, A1, S).
`
	res, gcs := runGC(t, src, 2, 2048)
	if res.Output != "210\n" { // sum(1..20), alive across all collections
		t.Errorf("output %q", res.Output)
	}
	if gcs.Collections == 0 {
		t.Error("collector never ran")
	}
}

func TestGCDisabledFailsCleanly(t *testing.T) {
	ecfg := DefaultConfig() // GC off
	_, res, err := RunSource(churn, gcMachineConfig(1, 2048), ecfg, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed {
		t.Fatal("tiny heap without GC should fail")
	}
}

func TestGCHeapTrulyExhausted(t *testing.T) {
	// Live data exceeding the semispace must produce a clean failure, not
	// corruption: keep every list alive via an accumulator of lists.
	src := `
main :- true | keep(40, [], R), println(R).
keep(0, Ls, R) :- true | count(Ls, 0, R).
keep(N, Ls, R) :- N > 0 | mk(30, L), N1 := N - 1, keep(N1, [L|Ls], R).
count([], A, R) :- true | R = A.
count([_|T], A, R) :- true | A1 := A + 1, count(T, A1, R).
mk(0, L) :- true | L = [].
mk(N, L) :- N > 0 | L = [N|T], N1 := N - 1, mk(N1, T).
`
	ecfg := DefaultConfig()
	ecfg.EnableGC = true
	_, res, err := RunSource(src, gcMachineConfig(1, 1024), ecfg, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed {
		t.Fatal("over-live heap should fail")
	}
}
