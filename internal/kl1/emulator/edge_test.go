package emulator

import (
	"strings"
	"testing"
)

// TestVarVarUnificationMergesHooks: two consumers suspend on two
// different variables, then the variables are unified with each other
// (merging hook lists), and finally the merged variable is bound — both
// consumers must wake.
func TestVarVarUnificationMergesHooks(t *testing.T) {
	_, res := run(t, `
main :- true | p(X, A), q(Y, B), link(X, Y), feed(X),
               done(A, B).
p(V, A) :- integer(V) | A := V + 1.
q(V, B) :- integer(V) | B := V + 2.
link(X, Y) :- true | X = Y.
feed(X) :- true | X = 10.
done(A, B) :- wait(A), wait(B) | S := A + B, println(S).
`, 2)
	if res.Output != "23\n" { // (10+1) + (10+2)
		t.Errorf("output %q", res.Output)
	}
}

// TestMultiVariableSuspension: a goal suspends on two variables at once
// and must wake exactly once no matter which is bound first.
func TestMultiVariableSuspension(t *testing.T) {
	_, res := run(t, `
main :- true | both(X, Y, R), bindy(Y), bindx(X), println(R).
both(X, Y, R) :- X < Y | R = less.
both(X, Y, R) :- X >= Y | R = notless.
bindx(X) :- true | X = 1.
bindy(Y) :- true | Y = 5.
`, 2)
	if res.Output != "less\n" {
		t.Errorf("output %q", res.Output)
	}
}

// TestChainedSuspensionsOnOneVariable: many goals hooked on the same
// variable all resume on a single binding.
func TestChainedSuspensionsOnOneVariable(t *testing.T) {
	_, res := run(t, `
main :- true | w(X, A1), w(X, A2), w(X, A3), w(X, A4),
               bindx(X),
               s4(A1, A2, A3, A4).
bindx(X) :- true | X = 7.
w(X, A) :- integer(X) | A := X * 2.
s4(A, B, C, D) :- wait(A), wait(B), wait(C), wait(D) |
    S1 := A + B, S2 := C + D, fin(S1, S2).
fin(S1, S2) :- wait(S1), wait(S2) | S := S1 + S2, println(S).
`, 4)
	if res.Output != "56\n" { // 4 * 14
		t.Errorf("output %q", res.Output)
	}
	// All four w/2 goals suspended and resumed.
	if res.Emu.Resumptions < 4 {
		t.Errorf("resumptions %d < 4", res.Emu.Resumptions)
	}
}

// TestLockContention: many PEs repeatedly bind cells of a shared
// structure; the word locks must serialize without deadlock, and every
// binding must survive.
func TestLockContention(t *testing.T) {
	cl, res := run(t, `
main :- true | mkvars(16, Vs), fill(Vs, 1), check(Vs, 0, S), println(S).
mkvars(0, Vs) :- true | Vs = [].
mkvars(N, Vs) :- N > 0 | Vs = [_|T], N1 := N - 1, mkvars(N1, T).
fill([], _) :- true | true.
fill([V|T], N) :- true | V = N, N1 := N + 1, fill(T, N1).
check([], Acc, S) :- true | S = Acc.
check([V|T], Acc, S) :- integer(V) | A1 := Acc + V, check(T, A1, S).
`, 8)
	if res.Output != "136\n" { // 1+..+16
		t.Errorf("output %q", res.Output)
	}
	for i := 0; i < 8; i++ {
		if cl.Machine.Cache(i).LocksInUse() != 0 {
			t.Errorf("PE %d leaked locks", i)
		}
	}
}

// TestDeepStructureUnification: active unification of two large nested
// structures (one built on each side).
func TestDeepStructureUnification(t *testing.T) {
	_, res := run(t, `
main :- true | build(6, A), build(6, B), A = B, probe(A).
build(0, T) :- true | T = leaf.
build(N, T) :- N > 0 | N1 := N - 1, T = node(N, L, R), build(N1, L), build(N1, R).
probe(node(N, _, _)) :- true | println(N).
`, 2)
	if res.Output != "6\n" {
		t.Errorf("output %q", res.Output)
	}
}

// TestUnificationFailureOnDeepMismatch: structures differing deep inside
// must fail the program.
func TestUnificationFailureOnDeepMismatch(t *testing.T) {
	_, res, err := RunSource(`
main :- true | X = f(g(h(1)), 2), Y = f(g(h(9)), 2), X = Y.
`, testMachineConfig(1), DefaultConfig(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed || !strings.Contains(res.FailReason, "unification failed") {
		t.Errorf("result %+v", res)
	}
}

// TestPassiveEqualDeep: nonlinear heads compare whole structures without
// binding.
func TestPassiveEqualDeep(t *testing.T) {
	_, res := run(t, `
main :- true | same(f([1,2],g(3)), f([1,2],g(3)), A),
               same(f([1,2],g(3)), f([1,2],g(4)), B),
               println(A), println(B).
same(X, X, R) :- true | R = yes.
same(_, _, R) :- otherwise | R = no.
`, 1)
	if res.Output != "yes\nno\n" {
		t.Errorf("output %q", res.Output)
	}
}

// TestPassiveEqualSuspendsOnVars: comparing a bound against an unbound
// component suspends rather than failing, and resumes correctly.
func TestPassiveEqualSuspendsOnVars(t *testing.T) {
	_, res := run(t, `
main :- true | same(f(X), f(1), A), bind(X), println(A).
same(Y, Y, R) :- true | R = eq.
same(_, _, R) :- otherwise | R = ne.
bind(X) :- true | X = 1.
`, 2)
	if res.Output != "eq\n" {
		t.Errorf("output %q", res.Output)
	}
	if res.Emu.Suspensions == 0 {
		t.Error("expected the nonlinear match to suspend")
	}
}

// TestPrintSuspendsUntilGround: println of a partially built list waits
// for the producer to finish.
func TestPrintSuspendsUntilGround(t *testing.T) {
	_, res := run(t, `
main :- true | println(L), gen(3, L).
gen(0, L) :- true | L = [].
gen(N, L) :- N > 0 | L = [N|T], N1 := N - 1, gen(N1, T).
`, 2)
	if res.Output != "[3,2,1]\n" {
		t.Errorf("output %q", res.Output)
	}
}

// TestSchedulerSpreadsWork: with enough independent goals, every PE
// executes some reductions.
func TestSchedulerSpreadsWork(t *testing.T) {
	cl, res := run(t, `
main :- true | spawn(40, 0, T), println(T).
spawn(0, Acc, T) :- true | T = Acc.
spawn(N, Acc, T) :- N > 0 |
    work(N, W), join(W, Acc, A1), N1 := N - 1, spawn(N1, A1, T).
work(N, W) :- true | mk(N, L), sum(L, 0, W).
join(W, Acc, A1) :- wait(W), integer(Acc) | A1 := Acc + W.
mk(0, L) :- true | L = [].
mk(N, L) :- N > 0 | L = [N|T], N1 := N - 1, mk(N1, T).
sum([], A, S) :- true | S = A.
sum([H|T], A, S) :- true | A1 := A + H, sum(T, A1, S).
`, 4)
	if res.Output != "11480\n" { // sum over N=1..40 of N(N+1)/2
		t.Fatalf("output %q", res.Output)
	}
	busyPEs := 0
	for _, st := range res.PerPE {
		if st.Reductions > 0 {
			busyPEs++
		}
	}
	if busyPEs < 3 {
		t.Errorf("only %d of 4 PEs did work", busyPEs)
	}
	_ = cl
}

// TestDeepTailRecursion: an EXEC chain hundreds of thousands of
// reductions long must run in constant goal-area space.
func TestDeepTailRecursion(t *testing.T) {
	cl, res := run(t, `
main :- true | count(30000, R), println(R).
count(0, R) :- true | R = done.
count(N, R) :- N > 0 | N1 := N - 1, count(N1, R).
`, 1)
	if res.Output != "done\n" {
		t.Errorf("output %q", res.Output)
	}
	_ = cl
}

// TestGuardTypeTests exercises integer/1, atom/1 and list/1.
func TestGuardTypeTests(t *testing.T) {
	_, res := run(t, `
main :- true | k(5, A), k(foo, B), k([1], C), k([], D),
               println(A), println(B), println(C), println(D).
k(X, R) :- integer(X) | R = int.
k(X, R) :- atom(X) | R = atm.
k(X, R) :- list(X) | R = lst.
`, 1)
	if res.Output != "int\natm\nlst\nlst\n" {
		t.Errorf("output %q", res.Output)
	}
}

// TestArithmeticOperators covers every operator and division semantics.
func TestArithmeticOperators(t *testing.T) {
	_, res := run(t, `
main :- true | A := 7 + 5, B := 7 - 5, C := 7 * 5, D := 7 / 5, E := 7 mod 5,
               F := (0 - 7) / 2,
               println(A), println(B), println(C), println(D), println(E), println(F).
`, 1)
	if res.Output != "12\n2\n35\n1\n2\n-3\n" {
		t.Errorf("output %q", res.Output)
	}
}

// TestDivisionByZeroFails reports a clean program failure.
func TestDivisionByZeroFails(t *testing.T) {
	_, res, err := RunSource("main :- true | X := 1 / 0, println(X).",
		testMachineConfig(1), DefaultConfig(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed || !strings.Contains(res.FailReason, "division by zero") {
		t.Errorf("result %+v", res)
	}
}

// TestSuspendedArithDivisionByZero: the spawned $arith builtin hits the
// zero after suspension.
func TestSuspendedArithDivisionByZero(t *testing.T) {
	_, res, err := RunSource(`
main :- true | gen(D), use(D).
gen(D) :- true | D = 0.
use(D) :- true | X := 10 / D, println(X).
`, testMachineConfig(2), DefaultConfig(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed {
		t.Errorf("result %+v", res)
	}
}
