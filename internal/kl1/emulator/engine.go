package emulator

import (
	"fmt"

	"pimcache/internal/kl1/compile"
	"pimcache/internal/kl1/word"
	"pimcache/internal/machine"
	"pimcache/internal/mem"
)

// Stats counts one engine's high-level events (the paper's Table 1
// metrics).
type Stats struct {
	Instructions uint64 // abstract instructions executed
	Reductions   uint64 // committed goal reductions (incl. builtins)
	Suspensions  uint64 // goals suspended on unbound variables
	Resumptions  uint64 // goals woken by bindings
	Spawns       uint64 // goal records created
	GoalsSent    uint64 // goals donated to other PEs
	GoalsStolen  uint64 // goals received from other PEs
}

// Engine is one PE's reduction engine. It implements machine.Processor;
// each Step executes one abstract instruction (or one scheduler action),
// which is the interleaving granularity of the deterministic machine.
type Engine struct {
	pe  int
	sh  *Shared
	acc mem.Accessor

	heap   *mem.Bump
	goalFL *mem.FreeList
	suspFL *mem.FreeList

	regs [compile.NumRegs]word.Word

	// goalHead is the goal-list head register; goalCount mirrors the
	// list length for the scheduler.
	goalHead  word.Addr
	goalCount int

	// Reduction state. pc==0 means "between reductions".
	pc       word.Addr
	failPC   word.Addr
	curProc  int
	curArity int
	// candidates are the suspension-candidate variable cells collected
	// during the passive part of the current reduction.
	candidates []word.Addr

	// Suspension in progress (multi-step because hooking each variable
	// takes its lock, which can busy-wait).
	suspRec  word.Addr // goal record being suspended; 0 = none
	suspIdx  int       // next candidate to hook
	suspAny  bool      // at least one candidate was hooked or found bound
	suspWake bool      // a candidate was already bound: requeue the goal

	// Builtin goal being executed (retried as a unit if a lock blocks).
	builtinProc  int // 0 = none
	builtinArity int

	// Scheduler state.
	started     bool
	waitingOn   int // PE a work request was sent to; -1 = none
	pollCursor  int
	sincePoll   int
	stats       Stats
	maxInstrHit bool
}

// NewEngine builds PE pe's engine over its cache port and attaches per-PE
// allocators (free lists are initialized directly in memory: boot time).
func NewEngine(sh *Shared, pe int, acc mem.Accessor) (*Engine, error) {
	if err := sh.commCapacity(); err != nil {
		return nil, err
	}
	hLo, hHi := sh.heapSegment(pe)
	gLo, gHi := sh.goalSegment(pe)
	sLo, sHi := sh.suspSegment(pe)
	heap := mem.NewBump(hLo, hHi)
	if sh.gc.enabled {
		heap = mem.NewSemispace(hLo, hHi)
	}
	e := &Engine{
		pe:        pe,
		sh:        sh,
		acc:       acc,
		heap:      heap,
		goalFL:    mem.NewFreeList(sh.Mem, gLo, gHi, GoalRecordWords),
		suspFL:    mem.NewFreeList(sh.Mem, sLo, sHi, SuspRecordWords),
		goalHead:  word.NilAddr,
		waitingOn: -1,
	}
	if e.goalFL.Capacity() == 0 || e.suspFL.Capacity() == 0 {
		return nil, fmt.Errorf("emulator: PE %d record areas too small", pe)
	}
	if pe == 0 {
		// The initial query: main/0 starts on PE 0.
		sh.liveGoals++
	}
	sh.register(e)
	return e, nil
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats { return e.stats }

// HeapUsed reports heap words allocated by this PE.
func (e *Engine) HeapUsed() int { return e.heap.Used() }

// Step implements machine.Processor.
func (e *Engine) Step() machine.Status {
	if e.sh.failed {
		return machine.StatusFailed
	}
	if e.sh.Cfg.MaxInstr > 0 && e.stats.Instructions > e.sh.Cfg.MaxInstr {
		e.sh.fail(fmt.Sprintf("PE %d exceeded instruction limit", e.pe))
		return machine.StatusFailed
	}
	switch {
	case e.suspRec != 0:
		e.continueSuspend()
	case e.builtinProc != 0:
		e.execBuiltin()
	case e.pc == 0:
		return e.schedule()
	default:
		e.execInstruction()
	}
	if e.sh.failed {
		return machine.StatusFailed
	}
	return machine.StatusRunning
}

// beginReduction enters a procedure with arguments already in X0..
func (e *Engine) beginReduction(procIdx, arity int) {
	e.curProc, e.curArity = procIdx, arity
	e.pc = e.sh.entryAddr(procIdx)
	e.candidates = e.candidates[:0]
}

// endReductionChain finishes the current goal's chain of reductions.
func (e *Engine) endReductionChain() {
	e.pc = 0
	e.sh.liveGoals--
}

// fetch reads the instruction word at a (a simulated instruction-area
// reference).
func (e *Engine) fetch(a word.Addr) word.Word { return e.acc.Read(a) }

// execInstruction runs the instruction at pc. Instructions that block on
// a remote lock return with pc unchanged; the machine skips this PE until
// the unlock broadcast arrives, and the instruction re-executes from
// scratch (blocking always happens before any destructive effect).
func (e *Engine) execInstruction() {
	w := e.fetch(e.pc)
	op, a, b, c := compile.Decode(w)
	e.stats.Instructions++
	next := e.pc + 1
	if op.HasImmediate() {
		next++
	}
	switch op {
	case compile.OpNop:

	case compile.OpTry:
		e.failPC = e.sh.bounds.InstBase + word.Addr(a<<16|b)

	case compile.OpOtherwise:
		if len(e.candidates) > 0 {
			e.startSuspend()
			return
		}

	case compile.OpCommit:
		e.candidates = e.candidates[:0]
		e.stats.Reductions++
		e.pollRequests()

	case compile.OpProceed:
		e.endReductionChain()
		return

	case compile.OpExec:
		copy(e.regs[0:b], e.regs[c:c+b])
		e.beginReduction(a, b)
		return

	case compile.OpSpawn:
		if !e.spawnGoal(a, b, c) {
			return // blocked or failed
		}

	case compile.OpSuspend:
		if len(e.candidates) == 0 {
			e.sh.fail(fmt.Sprintf("goal %s failed: no clause applies",
				e.procName(e.curProc)))
			return
		}
		e.startSuspend()
		return

	case compile.OpWaitConst:
		imm := e.fetch(e.pc + 1)
		v, cell := e.deref(e.regs[a])
		switch {
		case cell != 0:
			e.failMatch(cell)
			return
		case v != imm:
			e.failClause()
			return
		}

	case compile.OpWaitList:
		v, cell := e.deref(e.regs[a])
		switch {
		case cell != 0:
			e.failMatch(cell)
			return
		case v.Tag() != word.TagList:
			e.failClause()
			return
		default:
			e.regs[b] = e.loadCell(v.Addr())
			e.regs[c] = e.loadCell(v.Addr() + 1)
		}

	case compile.OpWaitStruct:
		imm := e.fetch(e.pc + 1)
		v, cell := e.deref(e.regs[a])
		switch {
		case cell != 0:
			e.failMatch(cell)
			return
		case v.Tag() != word.TagStruct:
			e.failClause()
			return
		default:
			f := e.acc.Read(v.Addr())
			if f != imm {
				e.failClause()
				return
			}
			for i := 0; i < f.FunctorArity(); i++ {
				e.regs[b+i] = e.loadCell(v.Addr() + 1 + word.Addr(i))
			}
		}

	case compile.OpWaitVar:
		if _, cell := e.deref(e.regs[a]); cell != 0 {
			e.failMatch(cell)
			return
		}

	case compile.OpMatchEq:
		switch e.passiveEqual(e.regs[a], e.regs[b]) {
		case matchFail:
			e.failClause()
			return
		case matchSuspend:
			e.failClause() // candidates were recorded by passiveEqual
			return
		}

	case compile.OpGuardCmp:
		l, lc := e.deref(e.regs[b])
		r, rc := e.deref(e.regs[c])
		if lc != 0 || rc != 0 {
			if lc != 0 {
				e.addCandidate(lc)
			}
			if rc != 0 {
				e.addCandidate(rc)
			}
			e.failClause()
			return
		}
		if l.Tag() != word.TagInt || r.Tag() != word.TagInt {
			e.failClause()
			return
		}
		if !compareInts(a, l.IntVal(), r.IntVal()) {
			e.failClause()
			return
		}

	case compile.OpGuardType:
		v, cell := e.deref(e.regs[b])
		if cell != 0 {
			e.failMatch(cell)
			return
		}
		ok := false
		switch a {
		case compile.TypeInteger:
			ok = v.Tag() == word.TagInt
		case compile.TypeAtom:
			ok = v.Tag() == word.TagAtom
		case compile.TypeList:
			ok = v.Tag() == word.TagList || v.Tag() == word.TagNil
		}
		if !ok {
			e.failClause()
			return
		}

	case compile.OpPutConst:
		e.regs[a] = e.fetch(e.pc + 1)

	case compile.OpPutVar:
		cell, ok := e.allocHeap(1)
		if !ok {
			return
		}
		e.acc.DirectWrite(cell, word.Unbound(cell))
		e.regs[a] = word.Ref(cell)

	case compile.OpPutList:
		addr, ok := e.allocHeap(2)
		if !ok {
			return
		}
		e.acc.DirectWrite(addr, e.regs[b])
		e.acc.DirectWrite(addr+1, e.regs[c])
		e.regs[a] = word.List(addr)

	case compile.OpPutStruct:
		f := e.fetch(e.pc + 1)
		n := f.FunctorArity()
		addr, ok := e.allocHeap(1 + n)
		if !ok {
			return
		}
		e.acc.DirectWrite(addr, f)
		for i := 0; i < n; i++ {
			e.acc.DirectWrite(addr+1+word.Addr(i), e.regs[b+i])
		}
		e.regs[a] = word.Struct(addr)

	case compile.OpMove:
		e.regs[a] = e.regs[b]

	case compile.OpUnify:
		switch e.unify(e.regs[a], e.regs[b]) {
		case unifyBlocked:
			return // retry this instruction after the unlock
		case unifyFailed:
			e.sh.fail(fmt.Sprintf("unification failed in %s", e.procName(e.curProc)))
			return
		}

	case compile.OpArith:
		xs, xt := c>>8, c&0xFF
		l, lc := e.deref(e.regs[xs])
		r, rc := e.deref(e.regs[xt])
		if lc != 0 || rc != 0 || l.Tag() != word.TagInt || r.Tag() != word.TagInt {
			e.sh.fail(fmt.Sprintf("arithmetic on non-integer in %s", e.procName(e.curProc)))
			return
		}
		v, err := evalArith(a, l.IntVal(), r.IntVal())
		if err != nil {
			e.sh.fail(fmt.Sprintf("%v in %s", err, e.procName(e.curProc)))
			return
		}
		e.regs[b] = word.Int(v)

	default:
		panic(fmt.Sprintf("emulator: PE %d: bad opcode %v at %#x", e.pe, op, e.pc))
	}
	e.pc = next
}

// failMatch records a suspension candidate and fails the clause.
func (e *Engine) failMatch(cell word.Addr) {
	e.addCandidate(cell)
	e.failClause()
}

// failClause jumps to the next clause (or the procedure's suspend point).
func (e *Engine) failClause() { e.pc = e.failPC }

func (e *Engine) addCandidate(cell word.Addr) {
	for _, c := range e.candidates {
		if c == cell {
			return
		}
	}
	e.candidates = append(e.candidates, cell)
}

// allocHeap bump-allocates n heap words. On exhaustion it runs the
// stop-and-copy collector (when enabled) and retries; a second failure
// means live data genuinely exceeds the heap and the program aborts.
// Allocation sites are GC safe points: every live heap pointer is in a
// register, a candidate list, or a reachable record.
func (e *Engine) allocHeap(n int) (word.Addr, bool) {
	if a, ok := e.heap.Alloc(n); ok {
		return a, true
	}
	if err := e.sh.collectGarbage(); err != nil {
		e.sh.fail(fmt.Sprintf("PE %d heap exhausted: %v", e.pe, err))
		return 0, false
	}
	a, ok := e.heap.Alloc(n)
	if !ok {
		e.sh.fail(fmt.Sprintf("PE %d heap exhausted even after GC", e.pe))
		return 0, false
	}
	return a, true
}

func (e *Engine) procName(idx int) string {
	if compile.IsBuiltin(idx) {
		switch {
		case idx >= compile.BuiltinArith && idx < compile.BuiltinArith+5:
			return "$arith(" + compile.ArithName(idx-compile.BuiltinArith) + ")/3"
		case idx == compile.BuiltinPrint:
			return "print/1"
		case idx == compile.BuiltinPrintln:
			return "println/1"
		case idx == compile.BuiltinUnify:
			return "$unify/2"
		case idx == compile.BuiltinNewVec:
			return "new_vector/2"
		case idx == compile.BuiltinVecElem:
			return "vector_element/3"
		case idx == compile.BuiltinSetVec:
			return "set_vector_element/4"
		}
		return fmt.Sprintf("$builtin(%d)", idx)
	}
	return e.sh.Image.Procs[idx].Key()
}

func compareInts(kind int, l, r int64) bool {
	switch kind {
	case compile.CmpLt:
		return l < r
	case compile.CmpGt:
		return l > r
	case compile.CmpLe:
		return l <= r
	case compile.CmpGe:
		return l >= r
	case compile.CmpEq:
		return l == r
	case compile.CmpNe:
		return l != r
	}
	panic(fmt.Sprintf("emulator: bad comparison kind %d", kind))
}

func evalArith(kind int, l, r int64) (int64, error) {
	switch kind {
	case compile.ArithAdd:
		return l + r, nil
	case compile.ArithSub:
		return l - r, nil
	case compile.ArithMul:
		return l * r, nil
	case compile.ArithDiv:
		if r == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return l / r, nil
	case compile.ArithMod:
		if r == 0 {
			return 0, fmt.Errorf("mod by zero")
		}
		return l % r, nil
	}
	panic(fmt.Sprintf("emulator: bad arith kind %d", kind))
}
