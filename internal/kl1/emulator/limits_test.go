package emulator

import (
	"strings"
	"testing"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/machine"
	"pimcache/internal/mem"
)

// tinyAreaConfig shrinks one record area to force exhaustion.
func tinyAreaConfig(goalWords, suspWords int) machine.Config {
	return machine.Config{
		PEs: 1,
		Layout: mem.Layout{InstWords: 16 << 10, HeapWords: 64 << 10,
			GoalWords: goalWords, SuspWords: suspWords, CommWords: 4 << 10},
		Cache: cache.Config{SizeWords: 1 << 10, BlockWords: 4, Ways: 4,
			LockEntries: 4, Options: cache.OptionsAll()},
		Timing: bus.DefaultTiming(),
	}
}

func TestGoalAreaExhaustion(t *testing.T) {
	// Spawning faster than consuming: a wide fan-out overflows a tiny
	// goal area and must fail cleanly.
	src := `
main :- true | fan(200, R), println(R).
fan(0, R) :- true | R = 0.
fan(N, R) :- N > 0 | N1 := N - 1, fan(N1, R1), bump(R1, R).
bump(R1, R) :- wait(R1) | R := R1 + 1.
`
	_, res, err := RunSource(src, tinyAreaConfig(256, 16<<10), DefaultConfig(), 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed || !strings.Contains(res.FailReason, "goal area exhausted") {
		t.Errorf("result %+v", res)
	}
}

func TestSuspensionAreaExhaustion(t *testing.T) {
	// Hundreds of goals suspended on one never-bound variable overflow a
	// tiny suspension area.
	src := `
main :- true | hang(300, X).
hang(0, _) :- true | true.
hang(N, X) :- N > 0 | wait1(X), N1 := N - 1, hang(N1, X).
wait1(X) :- integer(X) | true.
`
	_, res, err := RunSource(src, tinyAreaConfig(64<<10, 64), DefaultConfig(), 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed || !strings.Contains(res.FailReason, "suspension area exhausted") {
		t.Errorf("result %+v", res)
	}
}

func TestInstructionLimit(t *testing.T) {
	ecfg := DefaultConfig()
	ecfg.MaxInstr = 5000
	_, res, err := RunSource(`
main :- true | spin(0).
spin(N) :- N >= 0 | N1 := N + 1, spin(N1).
`, tinyAreaConfig(64<<10, 16<<10), ecfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed || !strings.Contains(res.FailReason, "instruction limit") {
		t.Errorf("result %+v", res)
	}
}
