// Package compile translates parsed FGHC clauses into the abstract
// instruction set of the simulated KL1 machine (a KL1-B-style encoding).
// The emitted code image is loaded into the instruction area of the
// simulated shared memory, so instruction fetches during emulation are
// real simulated memory references, as in the paper's measurements.
package compile

import (
	"fmt"

	"pimcache/internal/kl1/word"
)

// Op is an abstract-machine opcode.
type Op uint8

// The instruction set. Passive (head/guard) instructions fail to the
// current clause's fail label, possibly recording suspension candidates;
// active (body) instructions construct terms and spawn goals.
const (
	OpNop Op = iota
	// OpTry starts a clause attempt; A<<16|B is the fail address
	// (absolute instruction-area offset of the next clause or of the
	// procedure's OpSuspend).
	OpTry
	// OpOtherwise commits only when no earlier clause suspended: if
	// suspension candidates exist, suspend immediately.
	OpOtherwise
	// OpCommit marks the commit bar: the clause's body follows.
	OpCommit
	// OpProceed ends a reduction with an empty continuation.
	OpProceed
	// OpExec tail-calls procedure A with arity B, args at registers C...
	OpExec
	// OpSpawn creates a goal record for procedure A, arity B, args at C.
	OpSpawn
	// OpSuspend ends a procedure's clause list: suspend the goal (proc A,
	// arity B, args in X0..) on the recorded candidates, or fail the
	// program if there are none.
	OpSuspend

	// OpWaitConst matches register A against the constant in the
	// following immediate word.
	OpWaitConst
	// OpWaitList matches register A against a list cell, loading car into
	// register B and cdr into register C.
	OpWaitList
	// OpWaitStruct matches register A against the functor in the
	// immediate word, loading the arguments into registers B, B+1, ...
	OpWaitStruct
	// OpWaitVar requires register A to be bound (the wait/1 guard).
	OpWaitVar
	// OpMatchEq passively unifies registers A and B (nonlinear heads).
	OpMatchEq
	// OpGuardCmp compares registers B and C under comparison kind A.
	OpGuardCmp
	// OpGuardType tests register B against type kind A.
	OpGuardType

	// OpPutConst loads the immediate constant into register A.
	OpPutConst
	// OpPutVar allocates a fresh unbound heap variable; register A gets a
	// reference to it.
	OpPutVar
	// OpPutList allocates a cons cell from registers B (car) and C (cdr);
	// register A receives the list pointer.
	OpPutList
	// OpPutStruct allocates a structure with the functor in the immediate
	// word and arguments from registers B, B+1, ...; register A receives
	// the structure pointer.
	OpPutStruct
	// OpMove copies register B to register A.
	OpMove
	// OpUnify actively unifies registers A and B; failure fails the
	// program.
	OpUnify
	// OpArith computes kind A over registers (C>>8) and (C&0xff) into
	// register B. All operands must be bound integers (the compiler only
	// emits inline arithmetic over known-bound values).
	OpArith

	numOps
)

var opNames = [numOps]string{
	"nop", "try", "otherwise", "commit", "proceed", "exec", "spawn",
	"suspend", "wait_const", "wait_list", "wait_struct", "wait_var",
	"match_eq", "guard_cmp", "guard_type", "put_const", "put_var",
	"put_list", "put_struct", "move", "unify", "arith",
}

// String names the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// HasImmediate reports whether the opcode is followed by an immediate
// word.
func (o Op) HasImmediate() bool {
	switch o {
	case OpWaitConst, OpWaitStruct, OpPutConst, OpPutStruct:
		return true
	}
	return false
}

// Comparison kinds for OpGuardCmp (field A).
const (
	CmpLt = iota // <
	CmpGt        // >
	CmpLe        // =<
	CmpGe        // >=
	CmpEq        // =:=
	CmpNe        // =\=
)

// Type-test kinds for OpGuardType (field A).
const (
	TypeInteger = iota
	TypeAtom
	TypeList
)

// Arithmetic kinds for OpArith (field A) and the spawned arithmetic
// builtins.
const (
	ArithAdd = iota
	ArithSub
	ArithMul
	ArithDiv
	ArithMod
)

// ArithName renders an arithmetic kind.
func ArithName(kind int) string {
	return [...]string{"+", "-", "*", "/", "mod"}[kind]
}

// Builtin procedure indices (values of the proc field at and above
// BuiltinBase denote builtins rather than user procedures). Builtin goals
// are spawned like user goals and may suspend on unbound arguments.
const (
	// BuiltinBase is the first builtin index.
	BuiltinBase = 0x8000
	// BuiltinArith..BuiltinArith+4 are $add/$sub/$mul/$div/$mod with
	// arguments (X, Y, Dest): Dest is unified with X op Y once both are
	// bound integers.
	BuiltinArith = BuiltinBase
	// BuiltinPrint renders its argument (suspending until bound) to the
	// machine's output stream.
	BuiltinPrint = BuiltinBase + 8
	// BuiltinPrintln is BuiltinPrint plus a newline.
	BuiltinPrintln = BuiltinBase + 9
	// BuiltinUnify actively unifies its two arguments.
	BuiltinUnify = BuiltinBase + 10
	// BuiltinNewVec is new_vector(N, V): V is unified with a fresh
	// vector of N unbound elements (KL1's array primitive).
	BuiltinNewVec = BuiltinBase + 16
	// BuiltinVecElem is vector_element(V, I, E): E is unified with
	// element I of vector V (0-based).
	BuiltinVecElem = BuiltinBase + 17
	// BuiltinSetVec is set_vector_element(V, I, X, V2): V2 is unified
	// with a copy of V whose element I is X (functional update, as in
	// KL1 without the MRB in-place optimization).
	BuiltinSetVec = BuiltinBase + 18
)

// IsBuiltin reports whether a proc index denotes a builtin.
func IsBuiltin(idx int) bool { return idx >= BuiltinBase }

// Encode packs an instruction word. Operand fields are 16 bits each.
func Encode(op Op, a, b, c int) word.Word {
	if a < 0 || a > 0xFFFF || b < 0 || b > 0xFFFF || c < 0 || c > 0xFFFF {
		panic(fmt.Sprintf("compile: operand out of range: %v %d %d %d", op, a, b, c))
	}
	return word.Code(uint64(op)<<48 | uint64(a)<<32 | uint64(b)<<16 | uint64(c))
}

// Decode unpacks an instruction word.
func Decode(w word.Word) (op Op, a, b, c int) {
	p := w.Payload()
	return Op(p >> 48), int(p >> 32 & 0xFFFF), int(p >> 16 & 0xFFFF), int(p & 0xFFFF)
}

// EncodeGoalHeader packs a goal record's procedure/arity word (word 1 of
// a goal record).
func EncodeGoalHeader(procIdx, arity int) word.Word {
	return word.Code(uint64(procIdx)<<16 | uint64(arity))
}

// DecodeGoalHeader unpacks a goal record header.
func DecodeGoalHeader(w word.Word) (procIdx, arity int) {
	p := w.Payload()
	return int(p >> 16 & 0xFFFF), int(p & 0xFFFF)
}
