package compile

import (
	"strings"
	"testing"

	"pimcache/internal/kl1/parser"
	"pimcache/internal/kl1/word"
)

func mustCompile(t *testing.T, src string) *Image {
	t.Helper()
	im, err := Compile(parser.MustParse(src), word.NewTable())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return im
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, tc := range []struct{ a, b, c int }{
		{0, 0, 0}, {1, 2, 3}, {0xFFFF, 0xFFFF, 0xFFFF}, {0x1234, 0, 0x8000},
	} {
		w := Encode(OpSpawn, tc.a, tc.b, tc.c)
		op, a, b, c := Decode(w)
		if op != OpSpawn || a != tc.a || b != tc.b || c != tc.c {
			t.Errorf("round trip %v: got %v %d %d %d", tc, op, a, b, c)
		}
	}
}

func TestEncodeRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized operand did not panic")
		}
	}()
	Encode(OpMove, 0x10000, 0, 0)
}

func TestGoalHeaderRoundTrip(t *testing.T) {
	w := EncodeGoalHeader(BuiltinPrint, 1)
	p, a := DecodeGoalHeader(w)
	if p != BuiltinPrint || a != 1 {
		t.Errorf("got %d/%d", p, a)
	}
}

func TestCompileSimpleProgram(t *testing.T) {
	im := mustCompile(t, `
main :- true | p(1, R), println(R).
p(X, Y) :- X > 0 | Y = X.
p(X, Y) :- otherwise | Y = 0.
`)
	if len(im.Procs) != 2 {
		t.Fatalf("procs %d", len(im.Procs))
	}
	if i, ok := im.ProcIndexOf("main", 0); !ok || im.Procs[i].Key() != "main/0" {
		t.Error("main/0 missing")
	}
	if _, ok := im.ProcIndexOf("p", 2); !ok {
		t.Error("p/2 missing")
	}
	if len(im.Code) == 0 {
		t.Error("empty code image")
	}
	// Every procedure must end with OpSuspend and entries must be within
	// the image.
	for _, pi := range im.Procs {
		if pi.Entry < 0 || pi.Entry >= len(im.Code) {
			t.Errorf("%s entry %d out of image", pi.Key(), pi.Entry)
		}
		op, _, _, _ := Decode(im.Code[pi.Entry])
		if op != OpTry {
			t.Errorf("%s does not start with try: %v", pi.Key(), op)
		}
	}
}

func TestCompileUndefinedProcedure(t *testing.T) {
	_, err := Compile(parser.MustParse("main :- true | nosuch(1)."), word.NewTable())
	if err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Errorf("err = %v", err)
	}
}

func TestCompileGuardVarNotInHead(t *testing.T) {
	_, err := Compile(parser.MustParse("p(X) :- Y > 0 | q(X).\nq(_)."), word.NewTable())
	if err == nil || !strings.Contains(err.Error(), "does not occur in the head") {
		t.Errorf("err = %v", err)
	}
}

func TestCompileTryFailChain(t *testing.T) {
	im := mustCompile(t, `
p(0) :- true | true.
p(1) :- true | true.
`)
	entry := im.Procs[0].Entry
	op, hi, lo, _ := Decode(im.Code[entry])
	if op != OpTry {
		t.Fatalf("entry op %v", op)
	}
	fail1 := hi<<16 | lo
	op2, hi2, lo2, _ := Decode(im.Code[fail1])
	if op2 != OpTry {
		t.Fatalf("fail target op %v, want try of clause 2", op2)
	}
	fail2 := hi2<<16 | lo2
	opS, a, b, _ := Decode(im.Code[fail2])
	if opS != OpSuspend || a != 0 || b != 1 {
		t.Errorf("second fail target %v %d %d, want suspend p/1", opS, a, b)
	}
}

func TestCompileInlineVsSpawnedArith(t *testing.T) {
	// N is guard-checked: inline. H comes from a list cell: spawned.
	im := mustCompile(t, `
p(N, Y) :- N > 0 | Y := N - 1.
q([H|T], Y) :- true | Y := H + 1, q(T, Y).
`)
	counts := opCounts(im)
	if counts[OpArith] == 0 {
		t.Error("no inline arith for guard-bound operand")
	}
	if counts[OpSpawn] == 0 {
		t.Error("no spawned arith builtin for list-component operand")
	}
}

func TestCompileOtherwiseEmitsBarrier(t *testing.T) {
	im := mustCompile(t, `
p(0) :- true | true.
p(X) :- otherwise | true.
`)
	if opCounts(im)[OpOtherwise] != 1 {
		t.Error("otherwise barrier missing")
	}
}

func TestCompileNonlinearHeadUsesMatchEq(t *testing.T) {
	im := mustCompile(t, "same(X, X) :- true | true.")
	if opCounts(im)[OpMatchEq] != 1 {
		t.Error("nonlinear head did not emit match_eq")
	}
}

func TestCompileNestedPatterns(t *testing.T) {
	im := mustCompile(t, "p(f([a|T], 3)) :- true | q(T).\nq(_).")
	c := opCounts(im)
	if c[OpWaitStruct] != 1 || c[OpWaitList] != 1 || c[OpWaitConst] != 2 {
		t.Errorf("counts %v", c)
	}
}

func TestCompileArityLimit(t *testing.T) {
	src := "p(A1,A2,A3,A4,A5,A6,A7,A8,A9,A10,A11,A12,A13,A14) :- true | true."
	if _, err := Compile(parser.MustParse(src), word.NewTable()); err == nil {
		t.Error("arity 14 accepted; goal records only hold 13 args")
	}
}

func TestCompileBodyComparisonRejected(t *testing.T) {
	_, err := Compile(parser.MustParse("p(X) :- true | X > 1."), word.NewTable())
	if err == nil {
		t.Error("comparison in body accepted")
	}
}

func TestOpStringAndImmediates(t *testing.T) {
	if OpSpawn.String() != "spawn" || OpWaitConst.String() != "wait_const" {
		t.Error("op names")
	}
	if !OpWaitConst.HasImmediate() || !OpPutStruct.HasImmediate() || OpMove.HasImmediate() {
		t.Error("immediate classification")
	}
	if ArithName(ArithMod) != "mod" {
		t.Error("arith name")
	}
}

func opCounts(im *Image) map[Op]int {
	counts := map[Op]int{}
	for i := 0; i < len(im.Code); i++ {
		op, _, _, _ := Decode(im.Code[i])
		counts[op]++
		if op.HasImmediate() {
			i++
		}
	}
	return counts
}
