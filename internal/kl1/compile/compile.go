package compile

import (
	"fmt"

	"pimcache/internal/kl1/parser"
	"pimcache/internal/kl1/word"
)

// NumRegs is the size of the abstract machine's register file.
const NumRegs = 128

// MaxGoalArity bounds goal arity so records fit the fixed goal-record
// size (see the emulator's record layout: 16 words, 3 of header).
const MaxGoalArity = 13

// ProcInfo describes one compiled procedure.
type ProcInfo struct {
	Name  string
	Arity int
	// Entry is the procedure's code offset within the image.
	Entry int
}

// Key renders name/arity.
func (p ProcInfo) Key() string { return fmt.Sprintf("%s/%d", p.Name, p.Arity) }

// Image is a compiled program: a flat code vector to be loaded at the
// base of the instruction area, plus the procedure table (which models
// the machine's symbol table and is not itself simulated memory).
type Image struct {
	Code    []word.Word
	Procs   []ProcInfo
	Atoms   *word.Table
	procIdx map[string]int
}

// ProcIndexOf resolves a name/arity to a procedure index.
func (im *Image) ProcIndexOf(name string, arity int) (int, bool) {
	i, ok := im.procIdx[fmt.Sprintf("%s/%d", name, arity)]
	return i, ok
}

// Compile translates a parsed program. Atom names are interned into
// atoms, which the emulator shares for rendering output.
func Compile(prog *parser.Program, atoms *word.Table) (*Image, error) {
	im := &Image{Atoms: atoms, procIdx: make(map[string]int)}
	for i, proc := range prog.Procedures {
		if proc.Arity > MaxGoalArity {
			return nil, fmt.Errorf("%s: arity exceeds goal record capacity (%d)", proc.Key(), MaxGoalArity)
		}
		im.procIdx[proc.Key()] = i
		im.Procs = append(im.Procs, ProcInfo{Name: proc.Name, Arity: proc.Arity})
	}
	for i, proc := range prog.Procedures {
		im.Procs[i].Entry = len(im.Code)
		for _, cl := range proc.Clause {
			cc := &clauseCtx{im: im, procIdx: i, clause: cl,
				venv: map[string]int{}, bound: map[string]bool{}, nextReg: proc.Arity}
			if err := cc.compile(); err != nil {
				return nil, fmt.Errorf("%s (line %d): %v", proc.Key(), cl.Line, err)
			}
		}
		im.emit(OpSuspend, i, proc.Arity, 0)
	}
	return im, nil
}

func (im *Image) emit(op Op, a, b, c int) int {
	pos := len(im.Code)
	im.Code = append(im.Code, Encode(op, a, b, c))
	return pos
}

func (im *Image) emitImm(op Op, a, b, c int, imm word.Word) int {
	pos := im.emit(op, a, b, c)
	im.Code = append(im.Code, imm)
	return pos
}

// clauseCtx compiles one clause.
type clauseCtx struct {
	im      *Image
	procIdx int
	clause  *parser.Clause
	venv    map[string]int  // variable -> register
	bound   map[string]bool // known bound after the passive part
	nextReg int

	// Deferred body work, flushed at the end of the body in the order
	// builtins-last (so they sit at the goal-list front and run first).
	spawnCalls    []pendingSpawn // user goals g2..gk in source order
	spawnBuiltins []pendingSpawn
	execGoal      *pendingSpawn // leftmost user goal, tail-executed
}

type pendingSpawn struct {
	procIdx int
	arity   int
	base    int
}

func (cc *clauseCtx) allocReg(n int) (int, error) {
	if cc.nextReg+n > NumRegs {
		return 0, fmt.Errorf("clause too complex: more than %d registers needed", NumRegs)
	}
	r := cc.nextReg
	cc.nextReg += n
	return r, nil
}

func (cc *clauseCtx) compile() error {
	im := cc.im
	tryPos := im.emit(OpTry, 0, 0, 0)
	if cc.hasOtherwise() {
		im.emit(OpOtherwise, 0, 0, 0)
	}
	// Passive part: head matching then guards.
	for i, arg := range cc.clause.Head.Args {
		if err := cc.matchArg(i, arg); err != nil {
			return err
		}
	}
	for _, g := range cc.clause.Guards {
		if err := cc.compileGuard(g); err != nil {
			return err
		}
	}
	im.emit(OpCommit, 0, 0, 0)
	// Active part.
	if err := cc.compileBody(); err != nil {
		return err
	}
	// Patch the fail target to the next clause (or the OpSuspend).
	fail := len(im.Code)
	im.Code[tryPos] = Encode(OpTry, fail>>16, fail&0xFFFF, 0)
	return nil
}

func (cc *clauseCtx) hasOtherwise() bool {
	for _, g := range cc.clause.Guards {
		if g.Kind == "otherwise" {
			return true
		}
	}
	return false
}

// matchArg compiles passive matching of head argument i.
func (cc *clauseCtx) matchArg(reg int, t parser.Term) error {
	switch t := t.(type) {
	case parser.Var:
		if prev, ok := cc.venv[t.Name]; ok {
			cc.im.emit(OpMatchEq, prev, reg, 0)
			return nil
		}
		cc.venv[t.Name] = reg
		return nil
	default:
		return cc.matchPattern(reg, t)
	}
}

func (cc *clauseCtx) constWord(t parser.Term) (word.Word, bool) {
	switch t := t.(type) {
	case parser.Int:
		return word.Int(t.Value), true
	case parser.Atom:
		return word.Atom(cc.im.Atoms.Intern(t.Name)), true
	case parser.NilList:
		return word.Nil(), true
	}
	return 0, false
}

func (cc *clauseCtx) matchPattern(reg int, t parser.Term) error {
	im := cc.im
	if cw, ok := cc.constWord(t); ok {
		im.emitImm(OpWaitConst, reg, 0, 0, cw)
		return nil
	}
	switch t := t.(type) {
	case parser.Var:
		return cc.matchArg(reg, t)
	case parser.Cons:
		rc, err := cc.allocReg(2)
		if err != nil {
			return err
		}
		im.emit(OpWaitList, reg, rc, rc+1)
		if err := cc.matchArg(rc, t.Car); err != nil {
			return err
		}
		return cc.matchArg(rc+1, t.Cdr)
	case parser.Struct:
		base, err := cc.allocReg(len(t.Args))
		if err != nil {
			return err
		}
		f := word.Functor(cc.im.Atoms.Intern(t.Functor), len(t.Args))
		im.emitImm(OpWaitStruct, reg, base, 0, f)
		for i, a := range t.Args {
			if err := cc.matchArg(base+i, a); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("cannot match term %s", t)
}

var cmpKinds = map[string]int{
	"<": CmpLt, ">": CmpGt, "=<": CmpLe, ">=": CmpGe, "=:=": CmpEq, "=\\=": CmpNe,
}

var typeKinds = map[string]int{
	"integer": TypeInteger, "atom": TypeAtom, "list": TypeList,
}

// guardOperand yields the register holding a guard operand (loading
// integer constants into a temporary).
func (cc *clauseCtx) guardOperand(t parser.Term) (int, error) {
	switch t := t.(type) {
	case parser.Var:
		r, ok := cc.venv[t.Name]
		if !ok {
			return 0, fmt.Errorf("guard variable %s does not occur in the head", t.Name)
		}
		cc.bound[t.Name] = true
		return r, nil
	case parser.Int:
		r, err := cc.allocReg(1)
		if err != nil {
			return 0, err
		}
		cc.im.emitImm(OpPutConst, r, 0, 0, word.Int(t.Value))
		return r, nil
	}
	return 0, fmt.Errorf("guard operand %s must be a variable or integer", t)
}

func (cc *clauseCtx) compileGuard(g parser.Guard) error {
	im := cc.im
	switch {
	case g.Kind == "true" || g.Kind == "otherwise":
		return nil // otherwise handled at clause start
	case cmpKinds[g.Kind] != 0 || g.Kind == "<":
		l, err := cc.guardOperand(g.Args[0])
		if err != nil {
			return err
		}
		r, err := cc.guardOperand(g.Args[1])
		if err != nil {
			return err
		}
		im.emit(OpGuardCmp, cmpKinds[g.Kind], l, r)
		return nil
	case g.Kind == "wait":
		v, ok := g.Args[0].(parser.Var)
		if !ok {
			return fmt.Errorf("wait/1 needs a variable")
		}
		r, ok := cc.venv[v.Name]
		if !ok {
			return fmt.Errorf("wait variable %s does not occur in the head", v.Name)
		}
		im.emit(OpWaitVar, r, 0, 0)
		cc.bound[v.Name] = true
		return nil
	default:
		if k, ok := typeKinds[g.Kind]; ok {
			v, isVar := g.Args[0].(parser.Var)
			if !isVar {
				return fmt.Errorf("%s/1 needs a variable", g.Kind)
			}
			r, found := cc.venv[v.Name]
			if !found {
				return fmt.Errorf("guard variable %s does not occur in the head", v.Name)
			}
			im.emit(OpGuardType, k, r, 0)
			cc.bound[v.Name] = true
			return nil
		}
	}
	return fmt.Errorf("unsupported guard %q", g.Kind)
}

// --- body ---

func (cc *clauseCtx) compileBody() error {
	for _, goal := range cc.clause.Body {
		var err error
		switch goal.Kind {
		case "unify":
			err = cc.compileUnify(goal.Args[0], goal.Args[1])
		case "assign":
			err = cc.compileAssign(goal.Args[0], goal.Expr)
		case "call":
			err = cc.compileCall(goal)
		case "cmp":
			err = fmt.Errorf("comparison %s is only legal in a guard", goal.Name)
		default:
			err = fmt.Errorf("unsupported body goal kind %q", goal.Kind)
		}
		if err != nil {
			return err
		}
	}
	im := cc.im
	// Spawn order: user goals gk..g2, then builtins (reverse), so the
	// goal-list front reads: builtins, g2, ..., gk — depth-first leftmost
	// once the tail-executed g1 chain completes.
	for i := len(cc.spawnCalls) - 1; i >= 0; i-- {
		s := cc.spawnCalls[i]
		im.emit(OpSpawn, s.procIdx, s.arity, s.base)
	}
	for i := len(cc.spawnBuiltins) - 1; i >= 0; i-- {
		s := cc.spawnBuiltins[i]
		im.emit(OpSpawn, s.procIdx, s.arity, s.base)
	}
	if cc.execGoal != nil {
		im.emit(OpExec, cc.execGoal.procIdx, cc.execGoal.arity, cc.execGoal.base)
	} else {
		im.emit(OpProceed, 0, 0, 0)
	}
	return nil
}

// buildTerm materializes t and returns the register holding it.
func (cc *clauseCtx) buildTerm(t parser.Term) (int, error) {
	im := cc.im
	if cw, ok := cc.constWord(t); ok {
		r, err := cc.allocReg(1)
		if err != nil {
			return 0, err
		}
		im.emitImm(OpPutConst, r, 0, 0, cw)
		return r, nil
	}
	switch t := t.(type) {
	case parser.Var:
		if r, ok := cc.venv[t.Name]; ok {
			return r, nil
		}
		r, err := cc.allocReg(1)
		if err != nil {
			return 0, err
		}
		im.emit(OpPutVar, r, 0, 0)
		cc.venv[t.Name] = r
		return r, nil
	case parser.Cons:
		rc, err := cc.buildTerm(t.Car)
		if err != nil {
			return 0, err
		}
		rd, err := cc.buildTerm(t.Cdr)
		if err != nil {
			return 0, err
		}
		r, err := cc.allocReg(1)
		if err != nil {
			return 0, err
		}
		im.emit(OpPutList, r, rc, rd)
		return r, nil
	case parser.Struct:
		regs := make([]int, len(t.Args))
		for i, a := range t.Args {
			r, err := cc.buildTerm(a)
			if err != nil {
				return 0, err
			}
			regs[i] = r
		}
		base, err := cc.allocReg(len(t.Args))
		if err != nil {
			return 0, err
		}
		for i, r := range regs {
			im.emit(OpMove, base+i, r, 0)
		}
		dst, err := cc.allocReg(1)
		if err != nil {
			return 0, err
		}
		f := word.Functor(cc.im.Atoms.Intern(t.Functor), len(t.Args))
		im.emitImm(OpPutStruct, dst, base, 0, f)
		return dst, nil
	}
	return 0, fmt.Errorf("cannot build term %s", t)
}

func (cc *clauseCtx) compileUnify(a, b parser.Term) error {
	ra, err := cc.buildTerm(a)
	if err != nil {
		return err
	}
	rb, err := cc.buildTerm(b)
	if err != nil {
		return err
	}
	cc.im.emit(OpUnify, ra, rb, 0)
	return nil
}

var arithKinds = map[string]int{
	"+": ArithAdd, "-": ArithSub, "*": ArithMul, "/": ArithDiv, "mod": ArithMod,
}

// exprBound reports whether every variable in e is known bound, allowing
// inline arithmetic.
func (cc *clauseCtx) exprBound(e parser.Expr) bool {
	switch e := e.(type) {
	case parser.ExprInt:
		return true
	case parser.ExprVar:
		return cc.bound[e.Name]
	case parser.ExprBin:
		return cc.exprBound(e.L) && cc.exprBound(e.R)
	}
	return false
}

// buildExprInline emits ARITH instructions computing e into a register.
func (cc *clauseCtx) buildExprInline(e parser.Expr) (int, error) {
	im := cc.im
	switch e := e.(type) {
	case parser.ExprInt:
		r, err := cc.allocReg(1)
		if err != nil {
			return 0, err
		}
		im.emitImm(OpPutConst, r, 0, 0, word.Int(e.Value))
		return r, nil
	case parser.ExprVar:
		r, ok := cc.venv[e.Name]
		if !ok {
			return 0, fmt.Errorf("arithmetic variable %s is unbound", e.Name)
		}
		return r, nil
	case parser.ExprBin:
		l, err := cc.buildExprInline(e.L)
		if err != nil {
			return 0, err
		}
		r, err := cc.buildExprInline(e.R)
		if err != nil {
			return 0, err
		}
		d, err := cc.allocReg(1)
		if err != nil {
			return 0, err
		}
		im.emit(OpArith, arithKinds[e.Op], d, l<<8|r)
		return d, nil
	}
	return 0, fmt.Errorf("cannot compile expression %s", e)
}

// buildExprAsGoals decomposes e into spawned arithmetic builtin goals
// connected by fresh channel variables, returning the register holding
// the (possibly yet unbound) result.
func (cc *clauseCtx) buildExprAsGoals(e parser.Expr) (int, error) {
	im := cc.im
	switch e := e.(type) {
	case parser.ExprInt:
		r, err := cc.allocReg(1)
		if err != nil {
			return 0, err
		}
		im.emitImm(OpPutConst, r, 0, 0, word.Int(e.Value))
		return r, nil
	case parser.ExprVar:
		return cc.buildTerm(parser.Var{Name: e.Name})
	case parser.ExprBin:
		l, err := cc.buildExprAsGoals(e.L)
		if err != nil {
			return 0, err
		}
		r, err := cc.buildExprAsGoals(e.R)
		if err != nil {
			return 0, err
		}
		// Fresh result cell; $arith(l, r, cell) binds it when ready.
		dest, err := cc.allocReg(1)
		if err != nil {
			return 0, err
		}
		im.emit(OpPutVar, dest, 0, 0)
		base, err := cc.allocReg(3)
		if err != nil {
			return 0, err
		}
		im.emit(OpMove, base, l, 0)
		im.emit(OpMove, base+1, r, 0)
		im.emit(OpMove, base+2, dest, 0)
		cc.spawnBuiltins = append(cc.spawnBuiltins,
			pendingSpawn{procIdx: BuiltinArith + arithKinds[e.Op], arity: 3, base: base})
		return dest, nil
	}
	return 0, fmt.Errorf("cannot compile expression %s", e)
}

func (cc *clauseCtx) compileAssign(dest parser.Term, e parser.Expr) error {
	var res int
	var err error
	inline := cc.exprBound(e)
	if inline {
		res, err = cc.buildExprInline(e)
	} else {
		res, err = cc.buildExprAsGoals(e)
	}
	if err != nil {
		return err
	}
	if v, ok := dest.(parser.Var); ok {
		if _, exists := cc.venv[v.Name]; !exists {
			cc.venv[v.Name] = res
			if inline {
				cc.bound[v.Name] = true
			}
			return nil
		}
	}
	rd, err := cc.buildTerm(dest)
	if err != nil {
		return err
	}
	cc.im.emit(OpUnify, rd, res, 0)
	return nil
}

func (cc *clauseCtx) compileCall(g parser.BodyGoal) error {
	im := cc.im
	var procIdx, arity int
	switch g.Name {
	case "print", "println":
		if len(g.Args) != 1 {
			return fmt.Errorf("%s/1 expects one argument", g.Name)
		}
		procIdx, arity = BuiltinPrint, 1
		if g.Name == "println" {
			procIdx = BuiltinPrintln
		}
	case "new_vector":
		if len(g.Args) != 2 {
			return fmt.Errorf("new_vector/2 expects two arguments")
		}
		procIdx, arity = BuiltinNewVec, 2
	case "vector_element":
		if len(g.Args) != 3 {
			return fmt.Errorf("vector_element/3 expects three arguments")
		}
		procIdx, arity = BuiltinVecElem, 3
	case "set_vector_element":
		if len(g.Args) != 4 {
			return fmt.Errorf("set_vector_element/4 expects four arguments")
		}
		procIdx, arity = BuiltinSetVec, 4
	default:
		idx, ok := cc.im.ProcIndexOf(g.Name, len(g.Args))
		if !ok {
			return fmt.Errorf("undefined procedure %s/%d", g.Name, len(g.Args))
		}
		procIdx, arity = idx, len(g.Args)
	}
	regs := make([]int, len(g.Args))
	for i, a := range g.Args {
		r, err := cc.buildTerm(a)
		if err != nil {
			return err
		}
		regs[i] = r
	}
	base, err := cc.allocReg(arity)
	if err != nil {
		return err
	}
	for i, r := range regs {
		im.emit(OpMove, base+i, r, 0)
	}
	s := pendingSpawn{procIdx: procIdx, arity: arity, base: base}
	if IsBuiltin(procIdx) {
		cc.spawnBuiltins = append(cc.spawnBuiltins, s)
	} else if cc.execGoal == nil {
		cc.execGoal = &s
	} else {
		cc.spawnCalls = append(cc.spawnCalls, s)
	}
	return nil
}
