package compile

import (
	"fmt"
	"strings"

	"pimcache/internal/kl1/word"
)

// Disassemble renders the whole image as readable assembly, one
// procedure per block, with code offsets. Useful for compiler debugging
// and for understanding what the emulator fetches from the instruction
// area.
func (im *Image) Disassemble() string {
	var sb strings.Builder
	entries := make(map[int]string)
	for _, p := range im.Procs {
		entries[p.Entry] = p.Key()
	}
	for pc := 0; pc < len(im.Code); {
		if name, ok := entries[pc]; ok {
			fmt.Fprintf(&sb, "\n%s:\n", name)
		}
		text, size := im.DisasmAt(pc)
		fmt.Fprintf(&sb, "%5d  %s\n", pc, text)
		pc += size
	}
	return strings.TrimLeft(sb.String(), "\n")
}

// DisasmAt renders the instruction at code offset pc and reports its
// size in words (1, or 2 with an immediate).
func (im *Image) DisasmAt(pc int) (string, int) {
	op, a, b, c := Decode(im.Code[pc])
	imm := word.Word(0)
	size := 1
	if op.HasImmediate() {
		imm = im.Code[pc+1]
		size = 2
	}
	return im.renderInstr(op, a, b, c, imm), size
}

func (im *Image) procRef(idx int) string {
	if IsBuiltin(idx) {
		switch {
		case idx >= BuiltinArith && idx < BuiltinArith+5:
			return "$arith(" + ArithName(idx-BuiltinArith) + ")/3"
		case idx == BuiltinPrint:
			return "print/1"
		case idx == BuiltinPrintln:
			return "println/1"
		case idx == BuiltinUnify:
			return "$unify/2"
		case idx == BuiltinNewVec:
			return "new_vector/2"
		case idx == BuiltinVecElem:
			return "vector_element/3"
		case idx == BuiltinSetVec:
			return "set_vector_element/4"
		}
		return fmt.Sprintf("$builtin(%d)", idx)
	}
	if idx >= 0 && idx < len(im.Procs) {
		return im.Procs[idx].Key()
	}
	return fmt.Sprintf("proc(%d)", idx)
}

func (im *Image) immString(imm word.Word) string {
	if im.Atoms != nil {
		return im.Atoms.WordString(imm)
	}
	return imm.String()
}

func (im *Image) renderInstr(op Op, a, b, c int, imm word.Word) string {
	switch op {
	case OpNop, OpOtherwise, OpCommit, OpProceed:
		return op.String()
	case OpTry:
		return fmt.Sprintf("try        fail=%d", a<<16|b)
	case OpExec:
		return fmt.Sprintf("exec       %s, args=X%d..", im.procRef(a), c)
	case OpSpawn:
		return fmt.Sprintf("spawn      %s, args=X%d..", im.procRef(a), c)
	case OpSuspend:
		return fmt.Sprintf("suspend    %s", im.procRef(a))
	case OpWaitConst:
		return fmt.Sprintf("wait_const X%d, %s", a, im.immString(imm))
	case OpWaitList:
		return fmt.Sprintf("wait_list  X%d -> X%d, X%d", a, b, c)
	case OpWaitStruct:
		return fmt.Sprintf("wait_struct X%d, %s -> X%d..", a, im.immString(imm), b)
	case OpWaitVar:
		return fmt.Sprintf("wait_var   X%d", a)
	case OpMatchEq:
		return fmt.Sprintf("match_eq   X%d, X%d", a, b)
	case OpGuardCmp:
		return fmt.Sprintf("guard      X%d %s X%d", b, cmpName(a), c)
	case OpGuardType:
		return fmt.Sprintf("guard      %s(X%d)", typeName(a), b)
	case OpPutConst:
		return fmt.Sprintf("put_const  X%d, %s", a, im.immString(imm))
	case OpPutVar:
		return fmt.Sprintf("put_var    X%d", a)
	case OpPutList:
		return fmt.Sprintf("put_list   X%d = [X%d|X%d]", a, b, c)
	case OpPutStruct:
		return fmt.Sprintf("put_struct X%d = %s(X%d..)", a, im.immString(imm), b)
	case OpMove:
		return fmt.Sprintf("move       X%d, X%d", a, b)
	case OpUnify:
		return fmt.Sprintf("unify      X%d, X%d", a, b)
	case OpArith:
		return fmt.Sprintf("arith      X%d = X%d %s X%d", b, c>>8, ArithName(a), c&0xFF)
	default:
		return fmt.Sprintf("%v %d %d %d", op, a, b, c)
	}
}

func cmpName(kind int) string {
	return [...]string{"<", ">", "=<", ">=", "=:=", "=\\="}[kind]
}

func typeName(kind int) string {
	return [...]string{"integer", "atom", "list"}[kind]
}
