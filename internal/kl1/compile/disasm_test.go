package compile

import (
	"strings"
	"testing"
)

func TestDisassembleCoversProgram(t *testing.T) {
	im := mustCompile(t, `
main :- true | p([1|T], R), q(T), println(R).
p([H|T], R) :- H > 0, integer(H) | R := H + 1.
p(X, R) :- otherwise | R = X.
q(_).
`)
	out := im.Disassemble()
	for _, frag := range []string{
		"main/0:", "p/2:", "q/1:",
		"try", "commit", "suspend",
		"wait_list", "guard      X", "integer(X",
		"put_list", "exec", "spawn",
		"println/1", "otherwise",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("disassembly missing %q:\n%s", frag, out)
		}
	}
}

func TestDisassembleRoundTripsAllOffsets(t *testing.T) {
	// Every word of the image must be covered exactly once by walking
	// DisasmAt from offset 0 (no overlapping or skipped words).
	im := mustCompile(t, `
main :- true | t(f(1, [a, B]), B).
t(X, Y) :- wait(Y) | Z := Y * 2 - 1, u(X, Z).
u(_, _).
`)
	covered := 0
	for pc := 0; pc < len(im.Code); {
		text, size := im.DisasmAt(pc)
		if text == "" || size < 1 || size > 2 {
			t.Fatalf("bad instruction at %d: %q size %d", pc, text, size)
		}
		covered += size
		pc += size
	}
	if covered != len(im.Code) {
		t.Errorf("covered %d of %d words", covered, len(im.Code))
	}
}

func TestDisasmBuiltinNames(t *testing.T) {
	im := mustCompile(t, `
main :- true | gen(S), d(S).
gen(S) :- true | S = [1].
d([H|_]) :- true | Y := H * 2, println(Y).
`)
	out := im.Disassemble()
	if !strings.Contains(out, "$arith(*)/3") {
		t.Errorf("spawned arith builtin not named:\n%s", out)
	}
}
