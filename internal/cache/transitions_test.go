package cache

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func findRow(rows []TransitionRow, start State, remote, op string) (TransitionRow, bool) {
	for _, r := range rows {
		if r.Start == start && r.Remote == remote && r.Op == op {
			return r, true
		}
	}
	return TransitionRow{}, false
}

// TestPIMTransitionGolden pins the protocol's signature transitions — the
// rows that define the PIM design against Illinois and the optimized
// commands' zero-cost paths.
func TestPIMTransitionGolden(t *testing.T) {
	rows := DeriveTransitions(ProtocolPIM)
	want := []struct {
		start   State
		remote  string
		op      string
		end     State
		remote2 string
		bus     string
		cycles  uint64
	}{
		// Plain protocol: memory fill grants exclusivity; c2c shares.
		{INV, "-", "R", EC, "-", "F", 13},
		{INV, "EC", "R", S, "S", "F+H", 7},
		// The SM state: a dirty supplier keeps write-back ownership and
		// memory is NOT updated (Illinois would go S/S via copy-back).
		{INV, "EM", "R", S, "SM", "F+H", 7},
		// Write paths: fetch-on-write, invalidation on shared hits, free
		// upgrades on exclusives.
		{INV, "-", "W", EM, "-", "FI", 13},
		{S, "S", "W", EM, "-", "I", 2},
		{EC, "-", "W", EM, "-", "-", 0},
		{EM, "-", "W", EM, "-", "-", 0},
		// Direct write: allocation without fetch, zero bus cycles.
		{INV, "-", "DW", EM, "-", "-", 0},
		// Exclusive read at a block's last word: the local copy is purged
		// for free (dead data is never swapped out).
		{EM, "-", "ER", INV, "-", "-", 0},
		{S, "S", "ER", INV, "S", "-", 0},
		// Read invalidate takes a remote copy exclusively in one
		// transfer, pre-empting the later I.
		{INV, "EM", "RI", EM, "-", "FI+H", 7},
		{INV, "S", "RI", EC, "-", "FI+H", 7},
		// Lock read: free on exclusive hits; LK rides FI/I otherwise.
		{EM, "-", "LR", EM, "-", "-", 0},
		{EC, "-", "LR", EC, "-", "-", 0},
		{S, "S", "LR", EC, "-", "I+LK", 2},
		{INV, "-", "LR", EC, "-", "FI+LK", 13},
		{INV, "EM", "LR", EM, "-", "FI+H+LK", 7},
	}
	for _, w := range want {
		r, ok := findRow(rows, w.start, w.remote, w.op)
		if !ok {
			t.Errorf("missing transition %v/%s + %s", w.start, w.remote, w.op)
			continue
		}
		got := fmt.Sprintf("%v/%s %s %d", r.End, r.RemoteEnd, r.BusOps, r.Cycles)
		exp := fmt.Sprintf("%v/%s %s %d", w.end, w.remote2, w.bus, w.cycles)
		if got != exp {
			t.Errorf("%v/%s + %s: got %s, want %s", w.start, w.remote, w.op, got, exp)
		}
	}
	if len(rows) < 60 {
		t.Errorf("only %d transitions derived", len(rows))
	}
}

// TestIllinoisTransitionDiffers pins the defining difference: under
// Illinois a dirty supplier goes S (after copying back), never SM.
func TestIllinoisTransitionDiffers(t *testing.T) {
	rows := DeriveTransitions(ProtocolIllinois)
	r, ok := findRow(rows, INV, "EM", "R")
	if !ok {
		t.Fatal("missing INV/EM + R")
	}
	if r.End != S || r.RemoteEnd != "S" {
		t.Errorf("Illinois dirty transfer: got %v/%s, want S/S", r.End, r.RemoteEnd)
	}
	for _, row := range rows {
		if row.End == SM || row.RemoteEnd == "SM" {
			t.Errorf("Illinois reached SM: %+v", row)
		}
	}
}

// TestWriteThroughTransitions: stores always hit the bus and nothing is
// ever dirty.
func TestWriteThroughTransitions(t *testing.T) {
	rows := DeriveTransitions(ProtocolWriteThrough)
	for _, r := range rows {
		if r.End == EM || r.End == SM {
			t.Errorf("write-through produced a dirty state: %+v", r)
		}
		if r.Op == "W" && !strings.Contains(r.BusOps, "WT") {
			t.Errorf("write-through store without bus write: %+v", r)
		}
	}
}

// TestTransitionsFormatAndNoSilentBusCost: rendering covers every row,
// and zero-cycle rows really issued no commands.
func TestTransitionsFormat(t *testing.T) {
	rows := DeriveTransitions(ProtocolPIM)
	out := FormatTransitions(rows)
	if n := strings.Count(out, "\n"); n != len(rows)+2 {
		t.Errorf("rendered %d lines for %d rows", n, len(rows))
	}
	for _, r := range rows {
		if r.Cycles == 0 && r.BusOps != "-" {
			t.Errorf("zero cycles but bus ops %q: %+v", r.BusOps, r)
		}
		if r.Cycles > 0 && r.BusOps == "-" {
			t.Errorf("cycles %d with no bus ops: %+v", r.Cycles, r)
		}
	}
}

// TestMOESITransitionGolden pins the rows that define MOESI against PIM:
// the dirty supplier keeps ownership as O (not SM), and clean holders do
// NOT supply — a read hitting a remote clean copy pays the memory-fill
// cost, unlike PIM/Illinois cache-to-cache transfer.
func TestMOESITransitionGolden(t *testing.T) {
	rows := DeriveTransitions(ProtocolMOESI)
	want := []struct {
		start   State
		remote  string
		op      string
		end     State
		remote2 string
		bus     string
		cycles  uint64
	}{
		// Dirty supplier becomes Owned, memory not updated.
		{INV, "EM", "R", S, "O", "F+H", 7},
		// Clean holder asserts H but memory supplies: full fill cost.
		{INV, "EC", "R", S, "S", "F+H", 13},
		{INV, "S", "R", S, "S", "F+H", 13},
		// The owner keeps supplying on later fills.
		{INV, "O", "R", S, "O", "F+H", 7},
		// Writing an owned block invalidates the sharers for 2 cycles.
		{O, "S", "W", EM, "-", "I", 2},
	}
	for _, w := range want {
		r, ok := findRow(rows, w.start, w.remote, w.op)
		if !ok {
			t.Errorf("missing transition %v/%s + %s", w.start, w.remote, w.op)
			continue
		}
		got := fmt.Sprintf("%v/%s %s %d", r.End, r.RemoteEnd, r.BusOps, r.Cycles)
		exp := fmt.Sprintf("%v/%s %s %d", w.end, w.remote2, w.bus, w.cycles)
		if got != exp {
			t.Errorf("%v/%s + %s: got %s, want %s", w.start, w.remote, w.op, got, exp)
		}
	}
	for _, r := range rows {
		if r.Start == SM || r.End == SM || r.Remote == "SM" || r.RemoteEnd == "SM" {
			t.Errorf("MOESI reached SM: %+v", r)
		}
	}
}

// TestDragonTransitionGolden pins the write-update signature: a write to
// a shared block broadcasts UP and keeps every copy valid (the writer
// becomes the dirty-shared owner, the sharer stays S) where PIM would
// invalidate.
func TestDragonTransitionGolden(t *testing.T) {
	rows := DeriveTransitions(ProtocolDragon)
	r, ok := findRow(rows, S, "S", "W")
	if !ok {
		t.Fatal("missing S/S + W")
	}
	if r.End != SM || r.RemoteEnd != "S" || !strings.Contains(r.BusOps, "UP") {
		t.Errorf("Dragon shared write: got %v/%s %s, want SM/S with UP", r.End, r.RemoteEnd, r.BusOps)
	}
	// A former owner receiving the update hands ownership to the writer.
	r, ok = findRow(rows, S, "SM", "W")
	if !ok {
		t.Fatal("missing S/SM + W")
	}
	if r.End != SM || r.RemoteEnd != "S" || !strings.Contains(r.BusOps, "UP") {
		t.Errorf("Dragon write under remote owner: got %v/%s %s, want SM/S with UP", r.End, r.RemoteEnd, r.BusOps)
	}
	// Exclusive writes stay silent, exactly as under PIM.
	r, ok = findRow(rows, EM, "-", "W")
	if !ok {
		t.Fatal("missing EM/- + W")
	}
	if r.BusOps != "-" || r.Cycles != 0 {
		t.Errorf("Dragon exclusive write: got %s %d, want silent", r.BusOps, r.Cycles)
	}
	// Locks still invalidate: LR on a shared block must not broadcast UP.
	r, ok = findRow(rows, S, "S", "LR")
	if !ok {
		t.Fatal("missing S/S + LR")
	}
	if strings.Contains(r.BusOps, "UP") || r.RemoteEnd != "-" {
		t.Errorf("Dragon lock read: got %s remote %s, want invalidation", r.BusOps, r.RemoteEnd)
	}
}

// TestDeriveTransitionsJobsIdentical checks that the parallel derivation
// produces exactly the serial table for every registered protocol: rows
// are slotted by scenario index before the canonical sort, so worker
// scheduling can never reorder or drop a transition.
func TestDeriveTransitionsJobsIdentical(t *testing.T) {
	for _, p := range Protocols() {
		serial := DeriveTransitions(p.ID())
		parallel := DeriveTransitionsJobs(p.ID(), 8)
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("%v: parallel derivation differs\nserial:\n%s\nparallel:\n%s",
				p.ID(), FormatTransitions(serial), FormatTransitions(parallel))
		}
	}
}
