// Package cache implements the PIM coherent cache of Section 3 of the
// paper: a copy-back, write-allocate, snooping cache with five block
// states (EM, EC, SM, S, INV), a separate word-granular lock directory
// with three states (LCK, LWAIT, EMP), and the four software-controlled
// optimized memory commands — direct write (DW), exclusive read (ER),
// read purge (RP) and read invalidate (RI) — that degrade to plain
// read/write exactly as specified when their preconditions fail or when
// they are disabled for a storage area.
//
// An Illinois-protocol baseline (four states, copy-back to memory on
// every dirty transfer) is selectable through Config.Protocol for the
// Section 3.1 comparison.
package cache

import (
	"fmt"

	"pimcache/internal/probe"
)

func init() {
	// Register the authoritative name tables with the telemetry layer
	// (probe cannot import this package).
	probe.SetStateNames(stateNames[:])
	probe.SetOpNames(opNames[:])
}

// State is a cache block state.
type State uint8

const (
	// INV: the block is invalid.
	INV State = iota
	// S: the block is clean and perhaps shared; no swap-out needed.
	S
	// SM: the block is modified and perhaps shared; this cache owns the
	// eventual swap-out. This is the state the PIM protocol adds over
	// Illinois: a dirty block can be passed around without updating
	// shared memory.
	SM
	// EC: the block is exclusive and clean.
	EC
	// EM: the block is exclusive and modified.
	EM
	// O: the block is modified and perhaps shared, and this cache owns
	// the eventual swap-out — MOESI's Owned state. It plays the same
	// dirty-shared role SM does for the PIM protocol; MOESI keeps it
	// distinct because only the owner supplies data on a snoop fetch
	// (clean holders defer to memory), where any PIM holder supplies.
	O

	numStates
)

var stateNames = [numStates]string{"INV", "S", "SM", "EC", "EM", "O"}

// String names the state as in the paper.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Dirty reports whether the state obliges a swap-out on eviction.
func (s State) Dirty() bool { return s == EM || s == SM || s == O }

// Exclusive reports whether no other cache can hold the block.
func (s State) Exclusive() bool { return s == EC || s == EM }

// Valid reports whether the block holds usable data.
func (s State) Valid() bool { return s != INV }

// Op is a software memory operation (Section 3.2).
type Op uint8

const (
	// OpR is a normal read.
	OpR Op = iota
	// OpW is a normal write (fetch-on-write allocation).
	OpW
	// OpLR locks a word and reads it.
	OpLR
	// OpUW writes a word and unlocks it.
	OpUW
	// OpU unlocks a word.
	OpU
	// OpDW writes without fetching (fresh memory only).
	OpDW
	// OpER reads write-once/read-once data, purging dead copies.
	OpER
	// OpRP reads and forcibly purges the block.
	OpRP
	// OpRI reads taking the block exclusively for an imminent rewrite.
	OpRI

	// NumOps sizes per-op statistics arrays.
	NumOps
)

var opNames = [NumOps]string{"R", "W", "LR", "UW", "U", "DW", "ER", "RP", "RI"}

// String returns the paper's mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsWrite reports whether the operation stores to memory.
func (o Op) IsWrite() bool { return o == OpW || o == OpUW || o == OpDW }

// IsLockOp reports whether the operation touches the lock directory.
func (o Op) IsLockOp() bool { return o == OpLR || o == OpUW || o == OpU }

// LockState is a lock-directory entry state (Section 3.1).
type LockState uint8

const (
	// EMP: the entry is empty (not locked).
	EMP LockState = iota
	// LCK: the address is locked by this PE with no waiters.
	LCK
	// LWAIT: the address is locked by this PE and at least one other PE
	// is busy-waiting for the unlock broadcast.
	LWAIT
)

// String names the lock state as in the paper.
func (s LockState) String() string {
	switch s {
	case EMP:
		return "EMP"
	case LCK:
		return "LCK"
	case LWAIT:
		return "LWAIT"
	}
	return fmt.Sprintf("lockstate(%d)", uint8(s))
}
