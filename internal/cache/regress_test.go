package cache

import (
	"testing"

	"pimcache/internal/bus"
	"pimcache/internal/kl1/word"
	"pimcache/internal/mem"
)

// rig1 builds n direct-mapped caches (16 data words, 4-word blocks ->
// 4 sets, one way), so any two blocks 16 words apart collide.
func rig1(t *testing.T, n int, opts Options, proto Protocol) (*mem.Memory, *bus.Bus, []*Cache) {
	t.Helper()
	m := mem.New(mem.Layout{InstWords: 64, HeapWords: 1024, GoalWords: 256, SuspWords: 64, CommWords: 64})
	b := bus.New(bus.Config{Timing: bus.DefaultTiming(), BlockWords: 4}, m)
	caches := make([]*Cache, n)
	for i := range caches {
		caches[i] = New(Config{
			SizeWords:   16,
			BlockWords:  4,
			Ways:        1,
			LockEntries: 4,
			Options:     opts,
			Protocol:    proto,
			VerifyDW:    true,
		}, i, b)
	}
	return m, b, caches
}

// TestLockReadUpgradeTakesDirtyOwnership pins the fix for a data-loss
// bug found by the internal/check differential fuzzer (see
// internal/check/testdata/repro/lr-upgrade-dirty-loss.txt): when a
// LockRead upgrades a clean shared copy with LK+I and the invalidation
// kills a remote dirty (SM) owner, the upgrading cache holds the only
// copy of the modified data and must take it over as EM. Granting EC
// let a later eviction silently revert the block to stale memory.
func TestLockReadUpgradeTakesDirtyOwnership(t *testing.T) {
	m, _, cs := rig(t, 2, OptionsNone(), ProtocolPIM)
	a := heapBase(m)

	cs[0].Write(a, word.Int(19)) // PE0: EM, memory stale
	if got := cs[1].Read(a); got.IntVal() != 19 {
		t.Fatalf("read %v, want 19", got)
	}
	// PE0 supplied dirty: PE0 SM (owner), PE1 S.
	if st := cs[0].StateOf(a); st != SM {
		t.Fatalf("PE0 state = %v, want SM", st)
	}
	if st := cs[1].StateOf(a); st != S {
		t.Fatalf("PE1 state = %v, want S", st)
	}

	v, ok := cs[1].LockRead(a)
	if !ok || v.IntVal() != 19 {
		t.Fatalf("LockRead = %v, %v", v, ok)
	}
	// The upgrade killed PE0's SM copy; PE1 must own the data now.
	if st := cs[1].StateOf(a); st != EM {
		t.Fatalf("PE1 state after LR upgrade = %v, want EM (dirty ownership)", st)
	}
	cs[1].Unlock(a) // release without writing: the block stays as-is

	// The modified data must survive PE1 giving up the block.
	cs[1].Flush()
	if got := m.Read(a); got.IntVal() != 19 {
		t.Fatalf("memory after flush = %v, want 19 (dirty data lost)", got)
	}
}

// TestLockReadUpgradeUnderRemoteLockTakesSM is the same scenario with a
// remote lock elsewhere in the block: exclusivity is denied, so the
// upgrading cache must settle in SM — still dirty, still the owner.
func TestLockReadUpgradeUnderRemoteLockTakesSM(t *testing.T) {
	m, _, cs := rig(t, 3, OptionsNone(), ProtocolPIM)
	a := heapBase(m)

	// PE2 locks another word of the block, denying exclusivity to all.
	if _, ok := cs[2].LockRead(a + 1); !ok {
		t.Fatal("PE2 lock denied")
	}
	cs[0].Write(a, word.Int(31)) // PE0 dirty owner (SM: remote lock in block)
	if st := cs[0].StateOf(a); st != SM {
		t.Fatalf("PE0 state = %v, want SM", st)
	}
	if got := cs[1].Read(a); got.IntVal() != 31 {
		t.Fatalf("read %v, want 31", got)
	}
	if _, ok := cs[1].LockRead(a); !ok {
		t.Fatal("PE1 lock denied")
	}
	if st := cs[1].StateOf(a); st != SM {
		t.Fatalf("PE1 state after LR upgrade = %v, want SM (remote lock denies EM)", st)
	}
	cs[1].Unlock(a)
	cs[2].Unlock(a + 1)
	cs[1].Flush()
	if got := m.Read(a); got.IntVal() != 31 {
		t.Fatalf("memory after flush = %v, want 31", got)
	}
}

// TestFetchEvictsVictimBeforeFill pins the write-back-vs-fill ordering
// in fetchInto for a same-set collision: the dirty victim's data must
// reach memory before the incoming block is copied into the line
// buffer. Filling first would write the NEW block's words back to the
// OLD block's address.
func TestFetchEvictsVictimBeforeFill(t *testing.T) {
	m, _, cs := rig1(t, 1, OptionsNone(), ProtocolPIM)
	a := heapBase(m)
	b := a + 16 // same set, different tag (4 sets x 4-word blocks)
	m.Write(b+2, word.Int(55))

	cs[0].Write(a, word.Int(7)) // dirty in the only way of its set
	if got := cs[0].Read(b + 2); got.IntVal() != 55 {
		t.Fatalf("read %v, want 55", got)
	}
	// The fetch of b evicted dirty a through the hidden write-back.
	if got := m.Read(a); got.IntVal() != 7 {
		t.Fatalf("memory[a] = %v after eviction, want 7 (victim written after fill?)", got)
	}
	if st := cs[0].StateOf(a); st != INV {
		t.Fatalf("victim state = %v, want INV", st)
	}
	// And the refetch sees the written-back value, not block b's data.
	if got := cs[0].Read(a); got.IntVal() != 7 {
		t.Fatalf("refetched a = %v, want 7", got)
	}
}

// TestDirectWriteEvictsVictimBeforeZeroFill covers the same hazard on
// the DW allocation path, which zero-fills the line instead of
// fetching: the dirty victim must be swapped out before the zeroing.
func TestDirectWriteEvictsVictimBeforeZeroFill(t *testing.T) {
	m, _, cs := rig1(t, 1, OptionsHeap(), ProtocolPIM)
	a := heapBase(m)
	b := a + 16 // same set

	cs[0].Write(a, word.Int(9))       // dirty victim
	cs[0].DirectWrite(b, word.Int(1)) // fresh-block DW: evicts a, zero-fills
	if got := m.Read(a); got.IntVal() != 9 {
		t.Fatalf("memory[a] = %v after DW eviction, want 9", got)
	}
	if got, _ := cs[0].PeekWord(b); got.IntVal() != 1 {
		t.Fatalf("DW word = %v, want 1", got)
	}
	if got, _ := cs[0].PeekWord(b + 1); got != 0 {
		t.Fatalf("DW block word 1 = %v, want 0 (zero-filled)", got)
	}
	cs[0].Flush()
	if got := m.Read(b); got.IntVal() != 1 {
		t.Fatalf("memory[b] = %v after flush, want 1", got)
	}
}
