package cache

import (
	"testing"

	"pimcache/internal/bus"
	"pimcache/internal/kl1/word"
	"pimcache/internal/mem"
)

// rig builds a memory, bus and n small caches (64 data words, 4-way,
// 4-word blocks -> 4 sets) so that evictions are easy to force.
func rig(t *testing.T, n int, opts Options, proto Protocol) (*mem.Memory, *bus.Bus, []*Cache) {
	t.Helper()
	m := mem.New(mem.Layout{InstWords: 64, HeapWords: 1024, GoalWords: 256, SuspWords: 64, CommWords: 64})
	b := bus.New(bus.Config{Timing: bus.DefaultTiming(), BlockWords: 4}, m)
	caches := make([]*Cache, n)
	for i := range caches {
		caches[i] = New(Config{
			SizeWords:   64,
			BlockWords:  4,
			Ways:        4,
			LockEntries: 4,
			Options:     opts,
			Protocol:    proto,
			VerifyDW:    true,
		}, i, b)
	}
	return m, b, caches
}

func heapBase(m *mem.Memory) word.Addr { return m.Bounds().HeapBase }

func TestReadMissFromMemoryBecomesEC(t *testing.T) {
	m, b, cs := rig(t, 2, OptionsNone(), ProtocolPIM)
	a := heapBase(m)
	m.Write(a, word.Int(11))
	if got := cs[0].Read(a); got.IntVal() != 11 {
		t.Fatalf("read %v", got)
	}
	if st := cs[0].StateOf(a); st != EC {
		t.Errorf("state = %v, want EC", st)
	}
	if b.Stats().TotalCycles != 13 {
		t.Errorf("cycles = %d, want 13", b.Stats().TotalCycles)
	}
	// A hit costs nothing.
	cs[0].Read(a)
	if b.Stats().TotalCycles != 13 {
		t.Error("read hit generated bus traffic")
	}
	st := cs[0].Stats()
	if st.Hits[OpR] != 1 || st.Misses[OpR] != 1 || st.Refs[mem.AreaHeap][OpR] != 2 {
		t.Errorf("stats %+v", st)
	}
}

func TestReadSharingDowngradesToS(t *testing.T) {
	m, b, cs := rig(t, 2, OptionsNone(), ProtocolPIM)
	a := heapBase(m)
	m.Write(a, word.Int(5))
	cs[0].Read(a) // EC
	pre := b.Stats().TotalCycles
	if got := cs[1].Read(a); got.IntVal() != 5 {
		t.Fatalf("read %v", got)
	}
	if b.Stats().TotalCycles-pre != 7 {
		t.Errorf("c2c cost = %d, want 7", b.Stats().TotalCycles-pre)
	}
	if cs[0].StateOf(a) != S || cs[1].StateOf(a) != S {
		t.Errorf("states %v/%v, want S/S", cs[0].StateOf(a), cs[1].StateOf(a))
	}
}

func TestDirtyTransferEntersSM(t *testing.T) {
	m, b, cs := rig(t, 2, OptionsNone(), ProtocolPIM)
	a := heapBase(m)
	cs[0].Write(a, word.Int(42)) // miss -> FI -> EM
	if cs[0].StateOf(a) != EM {
		t.Fatalf("writer state %v", cs[0].StateOf(a))
	}
	if got := cs[1].Read(a); got.IntVal() != 42 {
		t.Fatalf("reader got %v", got)
	}
	// PIM keeps write-back ownership at the supplier: EM -> SM, and the
	// dirty data must NOT have been copied back to memory.
	if cs[0].StateOf(a) != SM {
		t.Errorf("supplier state %v, want SM", cs[0].StateOf(a))
	}
	if cs[1].StateOf(a) != S {
		t.Errorf("requester state %v, want S", cs[1].StateOf(a))
	}
	if m.Read(a).IntVal() == 42 {
		t.Error("transfer updated shared memory (Illinois behaviour, not PIM)")
	}
	if b.Stats().MemBusyCycles != 13-13+8 { // only PE0's original FI fetch
		t.Errorf("mem busy = %d", b.Stats().MemBusyCycles)
	}
}

func TestIllinoisCopiesBackOnTransfer(t *testing.T) {
	m, _, cs := rig(t, 2, OptionsNone(), ProtocolIllinois)
	a := heapBase(m)
	cs[0].Write(a, word.Int(42))
	cs[1].Read(a)
	if m.Read(a).IntVal() != 42 {
		t.Error("Illinois transfer must update shared memory")
	}
	if cs[0].StateOf(a) != S || cs[1].StateOf(a) != S {
		t.Errorf("states %v/%v, want S/S", cs[0].StateOf(a), cs[1].StateOf(a))
	}
}

func TestIllinoisMemBusyExceedsPIM(t *testing.T) {
	run := func(proto Protocol) uint64 {
		m, b, cs := rig(t, 2, OptionsNone(), proto)
		a := heapBase(m)
		// Ping-pong a dirty block: writes alternate between PEs.
		for i := 0; i < 10; i++ {
			cs[i%2].Write(a, word.Int(int64(i)))
		}
		_ = m
		return b.Stats().MemBusyCycles
	}
	pim, ill := run(ProtocolPIM), run(ProtocolIllinois)
	if ill <= pim {
		t.Errorf("Illinois mem busy %d should exceed PIM %d", ill, pim)
	}
}

func TestWriteHitSharedInvalidates(t *testing.T) {
	m, b, cs := rig(t, 3, OptionsNone(), ProtocolPIM)
	a := heapBase(m)
	m.Write(a, word.Int(1))
	cs[0].Read(a)
	cs[1].Read(a)
	cs[2].Read(a) // all S
	pre := b.Stats().TotalCycles
	cs[0].Write(a, word.Int(2))
	if b.Stats().TotalCycles-pre != 2 {
		t.Errorf("write-hit-shared cost %d, want 2 (I)", b.Stats().TotalCycles-pre)
	}
	if cs[0].StateOf(a) != EM {
		t.Errorf("writer %v, want EM", cs[0].StateOf(a))
	}
	if cs[1].StateOf(a) != INV || cs[2].StateOf(a) != INV {
		t.Error("other copies survived the invalidation")
	}
	if got := cs[1].Read(a); got.IntVal() != 2 {
		t.Errorf("stale read %v after invalidation", got)
	}
}

func TestWriteHitExclusiveIsFree(t *testing.T) {
	m, b, cs := rig(t, 2, OptionsNone(), ProtocolPIM)
	a := heapBase(m)
	cs[0].Read(a) // EC
	pre := b.Stats().TotalCycles
	cs[0].Write(a, word.Int(9))
	if b.Stats().TotalCycles != pre {
		t.Error("write hit to EC generated bus traffic")
	}
	if cs[0].StateOf(a) != EM {
		t.Errorf("state %v, want EM", cs[0].StateOf(a))
	}
}

func TestWriteMissInvalidatesDirtyRemote(t *testing.T) {
	m, _, cs := rig(t, 2, OptionsNone(), ProtocolPIM)
	a := heapBase(m)
	cs[0].Write(a, word.Int(1))
	cs[0].Write(a+1, word.Int(2))
	cs[1].Write(a, word.Int(3)) // FI: PE0's dirty copy supplies then dies
	if cs[0].StateOf(a) != INV {
		t.Error("supplier not invalidated by FI")
	}
	if cs[1].StateOf(a) != EM {
		t.Errorf("requester %v, want EM", cs[1].StateOf(a))
	}
	// The non-written word must have travelled with the dirty block.
	if got := cs[1].Read(a + 1); got.IntVal() != 2 {
		t.Errorf("word 1 = %v, want 2 (dirty data lost in transfer)", got)
	}
}

// fillSet evicts the block containing a from c by reading enough
// conflicting blocks to exhaust the set.
func fillSet(c *Cache, m *mem.Memory, a word.Addr) {
	sets := word.Addr(c.Config().Sets())
	bw := word.Addr(c.Config().BlockWords)
	stride := sets * bw
	for i := word.Addr(1); i <= word.Addr(c.Config().Ways); i++ {
		c.Read(a + i*stride)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	m, b, cs := rig(t, 1, OptionsNone(), ProtocolPIM)
	a := heapBase(m)
	cs[0].Write(a, word.Int(77)) // EM
	fillSet(cs[0], m, a)
	if cs[0].StateOf(a) != INV {
		t.Fatal("block not evicted; widen fillSet")
	}
	if m.Read(a).IntVal() != 77 {
		t.Error("dirty eviction lost the data")
	}
	if b.Stats().CountByPattern[bus.PatSwapInMemSwapOut] == 0 {
		t.Error("with-swap-out pattern never used")
	}
	if cs[0].Stats().SwapOuts == 0 {
		t.Error("swap-out not counted")
	}
}

func TestCleanEvictionSilent(t *testing.T) {
	m, b, cs := rig(t, 1, OptionsNone(), ProtocolPIM)
	a := heapBase(m)
	cs[0].Read(a) // EC, clean
	fillSet(cs[0], m, a)
	if b.Stats().CountByPattern[bus.PatSwapInMemSwapOut] != 0 {
		t.Error("clean eviction used the swap-out pattern")
	}
	if cs[0].Stats().SwapOuts != 0 {
		t.Error("clean eviction counted as swap-out")
	}
}

func TestLRUReplacement(t *testing.T) {
	m, _, cs := rig(t, 1, OptionsNone(), ProtocolPIM)
	a := heapBase(m)
	stride := word.Addr(cs[0].Config().Sets() * cs[0].Config().BlockWords)
	// Fill the set: blocks 0..3.
	for i := word.Addr(0); i < 4; i++ {
		cs[0].Read(a + i*stride)
	}
	cs[0].Read(a) // touch block 0: block 1 is now LRU
	cs[0].Read(a + 4*stride)
	if cs[0].StateOf(a) == INV {
		t.Error("most-recently-used block was evicted")
	}
	if cs[0].StateOf(a+1*stride) != INV {
		t.Error("LRU block survived")
	}
}

// --- DW ---

func TestDirectWriteFresh(t *testing.T) {
	m, b, cs := rig(t, 2, OptionsAll(), ProtocolPIM)
	a := heapBase(m) // block boundary
	pre := b.Stats().TotalCycles
	cs[0].DirectWrite(a, word.Int(1))
	if b.Stats().TotalCycles != pre {
		t.Errorf("fresh DW cost %d bus cycles, want 0", b.Stats().TotalCycles-pre)
	}
	if cs[0].StateOf(a) != EM {
		t.Errorf("state %v, want EM", cs[0].StateOf(a))
	}
	st := cs[0].Stats()
	if st.DWApplied != 1 || st.DWDegraded != 0 {
		t.Errorf("DW stats %+v", st)
	}
	// Subsequent writes to the same block are hits (degraded DW).
	cs[0].DirectWrite(a+1, word.Int(2))
	cs[0].DirectWrite(a+2, word.Int(3))
	if b.Stats().TotalCycles != pre {
		t.Error("in-block DWs generated traffic")
	}
	if got := cs[0].Read(a + 2); got.IntVal() != 3 {
		t.Errorf("read back %v", got)
	}
}

func TestDirectWriteMidBlockDegrades(t *testing.T) {
	m, b, cs := rig(t, 1, OptionsAll(), ProtocolPIM)
	a := heapBase(m) + 2 // not a boundary
	cs[0].DirectWrite(a, word.Int(5))
	if cs[0].Stats().DWDegraded != 1 || cs[0].Stats().DWApplied != 0 {
		t.Errorf("stats %+v", cs[0].Stats())
	}
	// Degraded DW is a W: fetch-on-write (13 cycles).
	if b.Stats().TotalCycles != 13 {
		t.Errorf("cycles %d, want 13", b.Stats().TotalCycles)
	}
}

func TestDirectWriteDisabledDegrades(t *testing.T) {
	m, _, cs := rig(t, 1, OptionsNone(), ProtocolPIM)
	a := heapBase(m)
	cs[0].DirectWrite(a, word.Int(5))
	if cs[0].Stats().DWApplied != 0 || cs[0].Stats().DWDegraded != 1 {
		t.Errorf("stats %+v", cs[0].Stats())
	}
}

func TestDirectWriteDirtyVictimSwapOutOnly(t *testing.T) {
	m, b, cs := rig(t, 1, OptionsAll(), ProtocolPIM)
	a := heapBase(m)
	stride := word.Addr(cs[0].Config().Sets() * cs[0].Config().BlockWords)
	// Dirty the whole set.
	for i := word.Addr(0); i < 4; i++ {
		cs[0].DirectWrite(a+i*stride, word.Int(int64(i)))
	}
	pre := b.Stats()
	cs[0].DirectWrite(a+4*stride, word.Int(99))
	st := b.Stats()
	if st.CountByPattern[bus.PatSwapOutOnly]-pre.CountByPattern[bus.PatSwapOutOnly] != 1 {
		t.Error("DW eviction did not use the swap-out-only pattern")
	}
	if st.TotalCycles-pre.TotalCycles != 5 {
		t.Errorf("cost %d, want 5", st.TotalCycles-pre.TotalCycles)
	}
	// The evicted block's data must be in memory.
	if m.Read(a).IntVal() != 0 {
		t.Errorf("victim word = %v, want 0", m.Read(a))
	}
}

func TestDirectWriteContractViolationPanics(t *testing.T) {
	m, _, cs := rig(t, 2, OptionsAll(), ProtocolPIM)
	a := heapBase(m)
	cs[1].Read(a) // remote copy exists
	defer func() {
		if recover() == nil {
			t.Error("DW over a remote copy did not panic under VerifyDW")
		}
	}()
	cs[0].DirectWrite(a, word.Int(1))
}

// --- ER / RP / RI ---

func TestExclusiveReadPurgesOnLastWord(t *testing.T) {
	m, b, cs := rig(t, 1, OptionsAll(), ProtocolPIM)
	// Goal area enables ER.
	g := m.Bounds().GoalBase
	for i := word.Addr(0); i < 4; i++ {
		cs[0].DirectWrite(g+i, word.Int(int64(i+1)))
	}
	pre := b.Stats().TotalCycles
	for i := word.Addr(0); i < 4; i++ {
		if got := cs[0].ExclusiveRead(g + i); got.IntVal() != int64(i+1) {
			t.Fatalf("word %d = %v", i, got)
		}
	}
	if b.Stats().TotalCycles != pre {
		t.Error("ER hits generated traffic")
	}
	if cs[0].StateOf(g) != INV {
		t.Error("block not purged after last-word ER")
	}
	st := cs[0].Stats()
	if st.ERPurge != 1 || st.ERDegraded != 3 {
		t.Errorf("ER stats purge=%d degraded=%d", st.ERPurge, st.ERDegraded)
	}
	if st.PurgedDirty != 1 {
		t.Errorf("dirty purge not counted: %+v", st)
	}
	// The purge avoided the swap-out: memory never saw the data, and no
	// swap-out was counted.
	if st.SwapOuts != 0 {
		t.Error("purged block was swapped out")
	}
}

func TestExclusiveReadActsAsReadInvalidate(t *testing.T) {
	m, b, cs := rig(t, 2, OptionsAll(), ProtocolPIM)
	g := m.Bounds().GoalBase
	for i := word.Addr(0); i < 4; i++ {
		cs[0].DirectWrite(g+i, word.Int(int64(i+10)))
	}
	pre := b.Stats().TotalCycles
	// PE1 consumes the record with ER: first word is a miss to a remote
	// dirty block -> read-invalidate (case i), 7 cycles.
	if got := cs[1].ExclusiveRead(g); got.IntVal() != 10 {
		t.Fatalf("got %v", got)
	}
	if b.Stats().TotalCycles-pre != 7 {
		t.Errorf("case-i cost %d, want 7", b.Stats().TotalCycles-pre)
	}
	if cs[0].StateOf(g) != INV {
		t.Error("supplier not invalidated")
	}
	if cs[1].StateOf(g) != EM {
		t.Errorf("receiver %v, want EM (dirty supply, no copy-back)", cs[1].StateOf(g))
	}
	// Middle words hit; last word purges. Total extra traffic: zero.
	for i := word.Addr(1); i < 4; i++ {
		cs[1].ExclusiveRead(g + i)
	}
	if b.Stats().TotalCycles-pre != 7 {
		t.Error("record consumption cost more than one transfer")
	}
	if cs[1].StateOf(g) != INV {
		t.Error("receiver copy not purged")
	}
	if cs[1].Stats().ERInval != 1 {
		t.Errorf("ERInval = %d", cs[1].Stats().ERInval)
	}
	// After a full ER consumption NO cache holds the block: DW may reuse
	// the record without violating its contract.
	cs[1].DirectWrite(g, word.Int(1)) // would panic under VerifyDW otherwise
}

func TestExclusiveReadDisabledIsPlainRead(t *testing.T) {
	m, _, cs := rig(t, 2, OptionsNone(), ProtocolPIM)
	g := m.Bounds().GoalBase
	m.Write(g+3, word.Int(8))
	if got := cs[0].ExclusiveRead(g + 3); got.IntVal() != 8 {
		t.Fatalf("got %v", got)
	}
	if cs[0].StateOf(g) == INV {
		t.Error("disabled ER purged the block")
	}
	if cs[0].Stats().ERDegraded != 1 {
		t.Error("degradation not counted")
	}
}

func TestReadPurgeHit(t *testing.T) {
	m, _, cs := rig(t, 1, OptionsAll(), ProtocolPIM)
	g := m.Bounds().GoalBase
	cs[0].DirectWrite(g, word.Int(4))
	if got := cs[0].ReadPurge(g); got.IntVal() != 4 {
		t.Fatalf("got %v", got)
	}
	if cs[0].StateOf(g) != INV {
		t.Error("RP hit did not purge")
	}
	if cs[0].Stats().RPApplied != 1 {
		t.Error("RPApplied not counted")
	}
}

func TestReadPurgeMissRemoteNoInstall(t *testing.T) {
	m, b, cs := rig(t, 2, OptionsAll(), ProtocolPIM)
	g := m.Bounds().GoalBase
	cs[0].DirectWrite(g, word.Int(6))
	pre := b.Stats().TotalCycles
	if got := cs[1].ReadPurge(g); got.IntVal() != 6 {
		t.Fatalf("got %v", got)
	}
	if b.Stats().TotalCycles-pre != 7 {
		t.Errorf("cost %d, want 7 (c2c, no victim)", b.Stats().TotalCycles-pre)
	}
	if cs[0].StateOf(g) != INV {
		t.Error("supplier not invalidated")
	}
	if cs[1].Holds(g) {
		t.Error("RP installed the block")
	}
}

func TestReadPurgeMissFromMemoryDegrades(t *testing.T) {
	m, _, cs := rig(t, 1, OptionsAll(), ProtocolPIM)
	g := m.Bounds().GoalBase
	m.Write(g, word.Int(3))
	if got := cs[0].ReadPurge(g); got.IntVal() != 3 {
		t.Fatalf("got %v", got)
	}
	if !cs[0].Holds(g) {
		t.Error("memory-sourced RP should install like R")
	}
	if cs[0].Stats().RPDegraded != 1 {
		t.Error("degradation not counted")
	}
}

func TestReadInvalidateAvoidsLaterInvalidation(t *testing.T) {
	m, b, cs := rig(t, 2, OptionsAll(), ProtocolPIM)
	c := m.Bounds().CommBase
	cs[0].Write(c, word.Int(1)) // message written by PE0
	pre := b.Stats()
	if got := cs[1].ReadInvalidate(c); got.IntVal() != 1 {
		t.Fatalf("got %v", got)
	}
	if cs[1].StateOf(c) != EM {
		t.Errorf("RI state %v, want EM", cs[1].StateOf(c))
	}
	// The rewrite is now bus-free.
	cs[1].Write(c, word.Int(2))
	post := b.Stats()
	if post.Commands[bus.CmdI] != pre.Commands[bus.CmdI] {
		t.Error("RI failed to avoid the invalidate command")
	}
	if cs[1].Stats().RIApplied != 1 {
		t.Error("RIApplied not counted")
	}
}

func TestReadInvalidateDisabledCostsInvalidation(t *testing.T) {
	m, b, cs := rig(t, 2, OptionsNone(), ProtocolPIM)
	c := m.Bounds().CommBase
	cs[0].Write(c, word.Int(1))
	cs[1].ReadInvalidate(c) // degrades to R: PE0 retains SM
	pre := b.Stats().Commands[bus.CmdI]
	cs[1].Write(c, word.Int(2)) // hit shared: needs I
	if b.Stats().Commands[bus.CmdI] != pre+1 {
		t.Error("expected an invalidate command without RI")
	}
}

// --- locks ---

func TestLockReadMissAcquires(t *testing.T) {
	m, b, cs := rig(t, 2, OptionsNone(), ProtocolPIM)
	a := heapBase(m)
	m.Write(a, word.Int(30))
	w, ok := cs[0].LockRead(a)
	if !ok || w.IntVal() != 30 {
		t.Fatalf("LR = %v,%v", w, ok)
	}
	if !cs[0].HeldLock(a) {
		t.Error("lock not registered")
	}
	if cs[0].StateOf(a) != EC {
		t.Errorf("state %v, want EC", cs[0].StateOf(a))
	}
	if b.Stats().Commands[bus.CmdLK] != 1 {
		t.Error("LK not broadcast with the FI")
	}
}

func TestLockReadHitExclusiveIsFree(t *testing.T) {
	m, b, cs := rig(t, 2, OptionsNone(), ProtocolPIM)
	a := heapBase(m)
	cs[0].Write(a, word.Int(2)) // EM
	pre := b.Stats().TotalCycles
	w, ok := cs[0].LockRead(a)
	if !ok || w.IntVal() != 2 {
		t.Fatal("LR failed")
	}
	if b.Stats().TotalCycles != pre {
		t.Error("LR hit-to-exclusive used the bus")
	}
	if cs[0].Stats().LRHitExclusive != 1 {
		t.Error("LRHitExclusive not counted")
	}
	cs[0].Unlock(a)
	if b.Stats().TotalCycles != pre {
		t.Error("U with no waiter used the bus")
	}
	if cs[0].Stats().UnlockNoWaiter != 1 {
		t.Error("UnlockNoWaiter not counted")
	}
}

func TestLockReadSharedHitTakesOwnership(t *testing.T) {
	m, b, cs := rig(t, 2, OptionsNone(), ProtocolPIM)
	a := heapBase(m)
	m.Write(a, word.Int(1))
	cs[0].Read(a)
	cs[1].Read(a) // both S
	w, ok := cs[0].LockRead(a)
	if !ok || w.IntVal() != 1 {
		t.Fatal("LR failed")
	}
	if cs[0].StateOf(a) != EC {
		t.Errorf("state %v, want EC", cs[0].StateOf(a))
	}
	if cs[1].StateOf(a) != INV {
		t.Error("peer copy survived the LK+I")
	}
	if b.Stats().Commands[bus.CmdLK] != 1 || b.Stats().Commands[bus.CmdI] != 1 {
		t.Error("LK+I not issued")
	}
}

func TestLockConflictBusyWaitAndUnlockBroadcast(t *testing.T) {
	m, b, cs := rig(t, 2, OptionsNone(), ProtocolPIM)
	a := heapBase(m)
	m.Write(a, word.Int(1))
	if _, ok := cs[0].LockRead(a); !ok {
		t.Fatal("PE0 LR failed")
	}
	// PE1 tries: miss -> FI+LK -> LH.
	if _, ok := cs[1].LockRead(a); ok {
		t.Fatal("conflicting LR succeeded")
	}
	if !cs[1].Blocked() || cs[1].BlockedOn() != a {
		t.Error("PE1 not busy-waiting")
	}
	if cs[1].HeldLock(a) {
		t.Error("failed LR registered a lock")
	}
	// PE0 unlocks: waiter exists -> UL broadcast, PE1 wakes.
	pre := b.Stats().Commands[bus.CmdUL]
	cs[0].UnlockWrite(a, word.Int(2))
	if b.Stats().Commands[bus.CmdUL] != pre+1 {
		t.Error("UL not broadcast despite waiter")
	}
	if cs[0].Stats().UnlockWaiter != 1 {
		t.Error("UnlockWaiter not counted")
	}
	if cs[1].Blocked() {
		t.Error("UL did not wake PE1")
	}
	// Retry succeeds and sees the unlocked value.
	w, ok := cs[1].LockRead(a)
	if !ok || w.IntVal() != 2 {
		t.Fatalf("retry LR = %v,%v", w, ok)
	}
	cs[1].Unlock(a)
}

func TestUnlockWriteStoresValue(t *testing.T) {
	m, _, cs := rig(t, 2, OptionsNone(), ProtocolPIM)
	a := heapBase(m)
	cs[0].LockRead(a)
	cs[0].UnlockWrite(a, word.Int(123))
	if got := cs[1].Read(a); got.IntVal() != 123 {
		t.Errorf("peer read %v", got)
	}
	if cs[0].HeldLock(a) {
		t.Error("lock survived UW")
	}
}

func TestUnlockWriteAfterEviction(t *testing.T) {
	// A lock outlives its block's residency: UW must refetch and still
	// release correctly.
	m, _, cs := rig(t, 1, OptionsNone(), ProtocolPIM)
	a := heapBase(m)
	cs[0].LockRead(a)
	fillSet(cs[0], m, a)
	if cs[0].Holds(a) {
		t.Fatal("block not evicted")
	}
	if !cs[0].HeldLock(a) {
		t.Fatal("lock lost with the block")
	}
	cs[0].UnlockWrite(a, word.Int(55))
	if got := cs[0].Read(a); got.IntVal() != 55 {
		t.Errorf("got %v", got)
	}
}

func TestLockedWordDeniesExclusiveGrantEndToEnd(t *testing.T) {
	// PE0 locks a word, loses the block to eviction; PE1 fetches the
	// block for a different word. PE1 must not get it exclusively, so
	// PE1's later LR on the locked word goes to the bus and busy-waits.
	m, _, cs := rig(t, 2, OptionsNone(), ProtocolPIM)
	a := heapBase(m)
	cs[0].LockRead(a)
	fillSet(cs[0], m, a)
	cs[1].Read(a + 1)
	if st := cs[1].StateOf(a + 1); st.Exclusive() {
		t.Fatalf("PE1 granted %v over a remote lock", st)
	}
	if _, ok := cs[1].LockRead(a); ok {
		t.Fatal("double lock acquired")
	}
	if !cs[1].Blocked() {
		t.Error("PE1 should busy-wait")
	}
	cs[0].Unlock(a)
	if cs[1].Blocked() {
		t.Error("UL did not unblock PE1")
	}
	if _, ok := cs[1].LockRead(a); !ok {
		t.Error("retry failed after unlock")
	}
}

func TestWriterOverRemoteLockStaysSM(t *testing.T) {
	// A write miss into a block with a remote lock on another word must
	// settle in SM, never EM.
	m, _, cs := rig(t, 2, OptionsNone(), ProtocolPIM)
	a := heapBase(m)
	cs[0].LockRead(a)
	fillSet(cs[0], m, a)
	cs[1].Write(a+1, word.Int(5))
	if st := cs[1].StateOf(a + 1); st != SM {
		t.Errorf("writer state %v, want SM", st)
	}
	cs[0].Unlock(a)
}

func TestDoubleLockPanics(t *testing.T) {
	m, _, cs := rig(t, 1, OptionsNone(), ProtocolPIM)
	a := heapBase(m)
	cs[0].LockRead(a)
	defer func() {
		if recover() == nil {
			t.Error("re-lock did not panic")
		}
	}()
	cs[0].LockRead(a)
}

func TestUnlockUnheldPanics(t *testing.T) {
	m, _, cs := rig(t, 1, OptionsNone(), ProtocolPIM)
	defer func() {
		if recover() == nil {
			t.Error("unmatched unlock did not panic")
		}
	}()
	cs[0].Unlock(heapBase(m))
}

// --- misc ---

func TestFlushWritesDirtyBlocks(t *testing.T) {
	m, _, cs := rig(t, 1, OptionsNone(), ProtocolPIM)
	a := heapBase(m)
	cs[0].Write(a, word.Int(64))
	cs[0].Flush()
	if m.Read(a).IntVal() != 64 {
		t.Error("flush lost dirty data")
	}
	if cs[0].Holds(a) {
		t.Error("flush left a valid line")
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if good.Sets() != 256 {
		t.Errorf("default sets = %d, want 256 (paper: 256 columns)", good.Sets())
	}
	bad := good
	bad.BlockWords = 3
	if bad.Validate() == nil {
		t.Error("non-power-of-two block accepted")
	}
	bad = good
	bad.SizeWords = 1000
	if bad.Validate() == nil {
		t.Error("non-divisible size accepted")
	}
}

func TestDirectoryBitsMatchesPaper(t *testing.T) {
	// "a four-Kword cache is 190000 bits" (Section 4.4).
	bits := DefaultConfig().DirectoryBits()
	if bits < 180000 || bits > 200000 {
		t.Errorf("4Kword cache = %d bits, paper says ~190000", bits)
	}
}

func TestOptionsTable4Columns(t *testing.T) {
	h := OptionsHeap()
	if !h.Enabled(mem.AreaHeap, OptDW) || h.Enabled(mem.AreaGoal, OptDW) {
		t.Error("Heap column wrong")
	}
	g := OptionsGoal()
	if !g.Enabled(mem.AreaGoal, OptER) || !g.Enabled(mem.AreaGoal, OptRP) ||
		!g.Enabled(mem.AreaGoal, OptDW) || g.Enabled(mem.AreaHeap, OptDW) {
		t.Error("Goal column wrong")
	}
	c := OptionsComm()
	if !c.Enabled(mem.AreaComm, OptRI) || c.Enabled(mem.AreaComm, OptDW) {
		t.Error("Comm column wrong")
	}
	a := OptionsAll()
	if !a.Enabled(mem.AreaHeap, OptDW) || !a.Enabled(mem.AreaGoal, OptER) || !a.Enabled(mem.AreaComm, OptRI) {
		t.Error("All column wrong")
	}
}

func TestStateStrings(t *testing.T) {
	if EM.String() != "EM" || SM.String() != "SM" || INV.String() != "INV" {
		t.Error("state names")
	}
	if !EM.Dirty() || !SM.Dirty() || EC.Dirty() || S.Dirty() {
		t.Error("Dirty classification")
	}
	if !EM.Exclusive() || !EC.Exclusive() || SM.Exclusive() || S.Exclusive() {
		t.Error("Exclusive classification")
	}
	if OpLR.String() != "LR" || OpDW.String() != "DW" {
		t.Error("op names")
	}
	if LCK.String() != "LCK" || LWAIT.String() != "LWAIT" || EMP.String() != "EMP" {
		t.Error("lock state names")
	}
}

func TestWriteThroughProtocol(t *testing.T) {
	m, b, cs := rig(t, 2, OptionsAll(), ProtocolWriteThrough)
	a := heapBase(m)
	cs[0].Write(a, word.Int(5))
	// The store reached memory immediately.
	if m.Read(a).IntVal() != 5 {
		t.Fatal("write-through store did not reach memory")
	}
	if b.Stats().CountByPattern[bus.PatWordWrite] != 1 {
		t.Error("word-write pattern not used")
	}
	// Reads fill the cache; a second write updates both copies and
	// invalidates the peer.
	cs[0].Read(a)
	cs[1].Read(a)
	cs[0].Write(a, word.Int(6))
	if cs[1].Holds(a) {
		t.Error("peer copy survived a write-through store")
	}
	if got := cs[1].Read(a); got.IntVal() != 6 {
		t.Errorf("peer read %v", got)
	}
	// No block is ever dirty: evictions are silent.
	if cs[0].Stats().SwapOuts != 0 {
		t.Error("write-through cache swapped out")
	}
	// Optimized commands degrade.
	cs[0].DirectWrite(a+64, word.Int(1))
	cs[0].ExclusiveRead(a + 64)
	st := cs[0].Stats()
	if st.DWApplied != 0 || st.ERPurge != 0 {
		t.Error("optimized commands applied under write-through")
	}
}

func TestWriteThroughTrafficExceedsCopyBack(t *testing.T) {
	run := func(proto Protocol) uint64 {
		m, b, cs := rig(t, 2, OptionsNone(), proto)
		a := heapBase(m)
		// A write-heavy loop with locality: the copy-back cache absorbs
		// it; write-through pays the bus for every store.
		for i := 0; i < 200; i++ {
			cs[0].Write(a+word.Addr(i%16), word.Int(int64(i)))
		}
		_ = m
		return b.Stats().TotalCycles
	}
	wt, cb := run(ProtocolWriteThrough), run(ProtocolPIM)
	if wt <= 2*cb {
		t.Errorf("write-through (%d) should far exceed copy-back (%d)", wt, cb)
	}
}
