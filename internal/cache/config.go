package cache

import (
	"fmt"
	"math/bits"

	"pimcache/internal/mem"
)

// Protocol selects the coherence protocol.
type Protocol uint8

const (
	// ProtocolPIM is the paper's five-state protocol: dirty blocks
	// transfer cache-to-cache without updating shared memory (SM state).
	ProtocolPIM Protocol = iota
	// ProtocolIllinois is the four-state baseline: a dirty block supplied
	// to another cache is simultaneously copied back to memory, so both
	// copies become clean and SM is never entered.
	ProtocolIllinois
	// ProtocolWriteThrough is the classic baseline the copy-back designs
	// are measured against: every store goes straight to shared memory
	// (one bus transaction per write) and invalidates other copies;
	// blocks are never dirty, so evictions are free — and so is every
	// optimized command, which all degrade to R/W.
	ProtocolWriteThrough

	// ProtocolMOESI, ProtocolDragon and ProtocolAdaptive continue the
	// enumeration in protocol.go, next to their FSM implementations.
)

// String names the protocol (the registry key).
func (p Protocol) String() string {
	if int(p) < len(protocolRegistry) {
		return protocolRegistry[p].Name()
	}
	return "pim"
}

// Opt is a bitmask of the optimized memory commands.
type Opt uint8

const (
	// OptDW enables direct write.
	OptDW Opt = 1 << iota
	// OptER enables exclusive read.
	OptER
	// OptRP enables read purge.
	OptRP
	// OptRI enables read invalidate.
	OptRI

	// OptNone disables every optimized command (they degrade to R/W).
	OptNone Opt = 0
	// OptAll enables every optimized command.
	OptAll = OptDW | OptER | OptRP | OptRI
)

// Options enables optimized commands per storage area. The paper's
// Table 4 columns are particular Options values (see the convenience
// constructors below).
type Options struct {
	PerArea [mem.NumAreas]Opt
}

// OptionsNone is the unoptimized cache (Table 4 column "None").
func OptionsNone() Options { return Options{} }

// OptionsHeap enables DW in the heap area only (column "Heap").
func OptionsHeap() Options {
	var o Options
	o.PerArea[mem.AreaHeap] = OptDW
	return o
}

// OptionsGoal enables ER, RP and DW in the goal area only (column
// "Goal").
func OptionsGoal() Options {
	var o Options
	o.PerArea[mem.AreaGoal] = OptER | OptRP | OptDW
	return o
}

// OptionsComm enables RI in the communication area only (column "Comm").
func OptionsComm() Options {
	var o Options
	o.PerArea[mem.AreaComm] = OptRI
	return o
}

// OptionsAll enables each optimization in the area the KL1 runtime uses
// it (column "All"): DW in the heap, ER+RP+DW in the goal area, RI in
// the communication area.
func OptionsAll() Options {
	var o Options
	o.PerArea[mem.AreaHeap] = OptDW
	o.PerArea[mem.AreaGoal] = OptER | OptRP | OptDW
	o.PerArea[mem.AreaComm] = OptRI
	return o
}

// Enabled reports whether opt is enabled for area.
func (o Options) Enabled(area mem.Area, opt Opt) bool {
	return o.PerArea[area]&opt != 0
}

// Config describes one PE's cache.
type Config struct {
	// SizeWords is the total data capacity in words (paper base: 4K).
	SizeWords int
	// BlockWords is the block size in words (paper base: 4). Must match
	// the bus's configured block size.
	BlockWords int
	// Ways is the set associativity (paper base: 4).
	Ways int
	// LockEntries sizes the lock directory (paper: "one or two entries
	// per directory is needed"; we default to 4 to leave headroom for
	// nested unification locks).
	LockEntries int
	// Options enables the optimized commands per area.
	Options Options
	// Protocol selects PIM or the Illinois baseline.
	Protocol Protocol
	// VerifyDW, when set, checks the direct-write software contract (no
	// remote cache holds the target block) on every applied DW and
	// panics on violation. Tests enable it; it models nothing.
	VerifyDW bool
	// DisableBusFilters, when set, makes the bus fall back to polling
	// every attached snooper and lock unit instead of consulting its
	// presence filters. The filters are a simulator-level acceleration
	// with identical observable results, so like VerifyDW this knob
	// models nothing; the equivalence tests and baseline benchmarks
	// enable it.
	DisableBusFilters bool
	// PoisonBusData, when set, makes the bus scribble its reusable
	// fetch buffer at the start of every transaction (see
	// bus.Config.PoisonFetchData), so any code that illegally retains
	// FetchResult.Data across a transaction reads poison instead of
	// silently stale data. A debug knob that models nothing; the
	// coherence checker and the poison-equivalence tests enable it.
	PoisonBusData bool
	// StatsOnly, when set, runs the cache (and, through machine.New,
	// the bus and memory) without a data plane: no block data is stored,
	// copied or zero-filled, and every value-returning operation yields
	// zero. Coherence decisions in this simulator depend only on
	// addresses, directory states and lock state — never on stored
	// values (DESIGN.md §11) — so cache.Stats, bus.Stats and probe event
	// streams are bit-identical to the data-carrying path. Trace replay
	// writes zeros and discards reads anyway, which makes stats-only the
	// natural replay mode; machines that must return real values (live
	// FGHC runs) refuse to run with it set.
	StatsOnly bool
}

// DefaultConfig is the paper's base cache: 4Kword data, 4-word blocks,
// 4-way set-associative (256 sets), all optimizations off.
func DefaultConfig() Config {
	return Config{
		SizeWords:   4 << 10,
		BlockWords:  4,
		Ways:        4,
		LockEntries: 4,
	}
}

// Sets derives the number of sets.
func (c Config) Sets() int { return c.SizeWords / (c.BlockWords * c.Ways) }

// Validate checks the geometry.
func (c Config) Validate() error {
	if c.SizeWords <= 0 || c.BlockWords <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if bits.OnesCount(uint(c.BlockWords)) != 1 {
		return fmt.Errorf("cache: block size %d not a power of two", c.BlockWords)
	}
	sets := c.Sets()
	if sets <= 0 || sets*c.BlockWords*c.Ways != c.SizeWords {
		return fmt.Errorf("cache: size %d not divisible into %d-way sets of %d-word blocks",
			c.SizeWords, c.Ways, c.BlockWords)
	}
	if bits.OnesCount(uint(sets)) != 1 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	if c.LockEntries <= 0 {
		return fmt.Errorf("cache: need at least one lock entry")
	}
	if int(c.Protocol) >= len(protocolRegistry) {
		return fmt.Errorf("cache: unregistered protocol %d", c.Protocol)
	}
	return nil
}

// DirectoryBits estimates the cache's total storage in bits the way the
// paper's Figure 2 x-axis does: a five-byte data word (40 bits) plus the
// address-array overhead of tags and state per block. With these
// assumptions the paper's "four-Kword cache is 190000 bits".
func (c Config) DirectoryBits() int {
	const wordBits = 40 // 5-byte word
	dataBits := c.SizeWords * wordBits
	blocks := c.SizeWords / c.BlockWords
	// Tag: 32-bit word address minus set index and block offset bits,
	// plus 3 state bits per block.
	setBits := bits.TrailingZeros(uint(c.Sets()))
	offBits := bits.TrailingZeros(uint(c.BlockWords))
	tagBits := 32 - setBits - offBits + 3
	return dataBits + blocks*tagBits
}
