package cache

// CoherenceProtocol is the coherence FSM of one protocol, factored out
// of the cache body. The Cache owns the mechanics every snooping
// protocol shares — directory lookup, LRU, the lock directory, bus
// transactions, the presence-filter bookkeeping — and delegates every
// protocol *decision* (which state a block enters, who supplies data,
// whether a transfer updates memory) to these hooks. Implementations
// are stateless singletons: per-block protocol state lives in the
// cache's state plane (and, for the adaptive protocol, the per-frame
// update counters), never in the protocol value, so one instance
// serves every cache.
//
// The hot read/write hit paths never call through the interface: the
// Cache caches WriteThrough/WriteUpdate/UpdateSelfInvalidate as plain
// fields at construction, so interface dispatch happens only on
// misses, snoops and upgrades — paths that already pay for a bus
// transaction.
type CoherenceProtocol interface {
	// Name is the registry key (the -protocol flag value).
	Name() string
	// ID is the protocol's Config.Protocol enum value.
	ID() Protocol
	// States lists the block states this protocol can enter, in State
	// order and including INV. pimtable derives its scenario grid from
	// it and the probe name-table tests check every entry renders.
	States() []State

	// WriteThrough selects the store-through, write-no-allocate write
	// path (every store is one bus word-write; blocks are never dirty;
	// the optimized commands degrade to R/W).
	WriteThrough() bool
	// WriteUpdate selects the write-update write path: a write to a
	// shared block broadcasts the word (bus UP command) instead of
	// invalidating the other copies.
	WriteUpdate() bool
	// UpdateSelfInvalidate returns the competitive-update threshold: a
	// holder that receives this many consecutive UP broadcasts for a
	// block without any local access in between drops its copy,
	// converting a migratory block back to invalidate behaviour. Zero
	// means never (pure write-update).
	UpdateSelfInvalidate() int

	// FetchState maps a fetch outcome to the state the requester
	// installs. inval distinguishes FI from F; fromCache, supplierDirty
	// and shared mirror FetchResult (shared includes the lock-forced
	// shared grant, which is why an FI can still install non-exclusive).
	FetchState(inval, fromCache, supplierDirty, shared bool) State
	// WriteOwnState is the state a writer settles in after taking
	// ownership of a block (shared-hit upgrade or write-miss fetch).
	// remoteLocked reports that a remote lock in the block denies
	// exclusivity: the writer must stay in its dirty-shared state.
	WriteOwnState(remoteLocked bool) State
	// LockUpgradeState is the state after an LR's shared-hit I upgrade.
	// cur is the block's current state; dirtyKilled reports that the I
	// killed a remote modified copy (this cache must take over
	// write-back ownership); remoteLocked as in WriteOwnState. Return
	// cur to leave the state unchanged.
	LockUpgradeState(cur State, dirtyKilled, remoteLocked bool) State

	// SnoopShareState is the supplier-side downgrade for a remote F:
	// the next state, whether the block is simultaneously copied back
	// to memory (Illinois), and whether the supplier reports its copy
	// dirty to the requester (after any copy-back).
	SnoopShareState(cur State) (next State, copyBack, reportDirty bool)
	// SnoopInvalTransfer is the supplier-side policy for a remote
	// FI/I that kills a copy that was dirty (wasDirty): whether the
	// requester is told the data is dirty (it inherits write-back
	// ownership) and whether the dying copy is written back to memory
	// instead.
	SnoopInvalTransfer(wasDirty bool) (reportDirty, copyBack bool)
	// CleanSupplies reports whether a clean holder supplies data on a
	// snoop fetch. True for the PIM family (any holder answers H with
	// data); false under MOESI, where only the owner of a dirty block
	// supplies and memory serves requests for clean blocks.
	CleanSupplies() bool
}

const (
	// ProtocolMOESI is the five-state invalidate protocol with a
	// distinct Owned state: a dirty block downgraded by a remote read
	// enters O (dirty, shared, owns the write-back) and only the owner
	// supplies data — clean holders assert sharing but shared memory
	// serves the block.
	ProtocolMOESI Protocol = iota + 3 // continue after ProtocolWriteThrough
	// ProtocolDragon is the write-update protocol: a write to a shared
	// block broadcasts the written word (UP) to the other copies
	// instead of invalidating them, so producer-consumer blocks stay
	// resident in every consumer. Memory is not updated by UP; the
	// writer owns the eventual write-back (Sm, reusing the SM state).
	ProtocolDragon
	// ProtocolAdaptive is Dragon with competitive self-invalidation:
	// each holder counts consecutive received updates per block and
	// drops its copy at the threshold, so migratory blocks degenerate
	// to invalidate behaviour while producer-consumer blocks keep the
	// update behaviour.
	ProtocolAdaptive
)

// adaptiveUpdateLimit is ProtocolAdaptive's competitive threshold: a
// holder that receives this many consecutive updates for a block with
// no local access in between self-invalidates. Three keeps migratory
// write bursts cheap while letting a steady producer-consumer pair
// stay in update mode (the consumer's read resets the count).
const adaptiveUpdateLimit = 3

// protocolRegistry indexes every registered protocol by its Protocol
// enum value. cliutil, pimtable, internal/check and the bench ablation
// enumerate it instead of hardcoding protocol lists, so a protocol
// added here automatically joins the flag parsers, the differential
// matrix, the transition-table derivation and the probe name tables.
var protocolRegistry = []CoherenceProtocol{
	ProtocolPIM:          pimProtocol{},
	ProtocolIllinois:     illinoisProtocol{},
	ProtocolWriteThrough: wtProtocol{},
	ProtocolMOESI:        moesiProtocol{},
	ProtocolDragon:       dragonProtocol{},
	ProtocolAdaptive:     adaptiveProtocol{},
}

// Protocols returns every registered protocol in enum order.
func Protocols() []CoherenceProtocol {
	return append([]CoherenceProtocol(nil), protocolRegistry...)
}

// ProtocolNames returns the registered protocol names in enum order.
func ProtocolNames() []string {
	names := make([]string, len(protocolRegistry))
	for i, p := range protocolRegistry {
		names[i] = p.Name()
	}
	return names
}

// ProtocolByName resolves a registered protocol name.
func ProtocolByName(name string) (Protocol, bool) {
	for _, p := range protocolRegistry {
		if p.Name() == name {
			return p.ID(), true
		}
	}
	return 0, false
}

// Impl returns the protocol's registered FSM implementation.
func (p Protocol) Impl() CoherenceProtocol {
	if int(p) < len(protocolRegistry) {
		return protocolRegistry[p]
	}
	panic("cache: unregistered protocol")
}

// --- PIM (Section 3 of the paper) ---

// pimProtocol is the paper's five-state protocol: dirty blocks move
// cache-to-cache without updating memory (the SM owner carries the
// write-back), and any holder supplies data.
type pimProtocol struct{}

func (pimProtocol) Name() string              { return "pim" }
func (pimProtocol) ID() Protocol              { return ProtocolPIM }
func (pimProtocol) States() []State           { return []State{INV, S, SM, EC, EM} }
func (pimProtocol) WriteThrough() bool        { return false }
func (pimProtocol) WriteUpdate() bool         { return false }
func (pimProtocol) UpdateSelfInvalidate() int { return 0 }

func (pimProtocol) FetchState(inval, fromCache, supplierDirty, shared bool) State {
	switch {
	case inval && shared:
		// A remote lock in the block denies exclusivity (see
		// Bus.RemoteLockInBlock); a dirty supply still transfers
		// write-back ownership.
		if supplierDirty {
			return SM
		}
		return S
	case inval && supplierDirty:
		return EM
	case inval:
		return EC
	case fromCache || shared:
		return S
	default:
		return EC
	}
}

func (pimProtocol) WriteOwnState(remoteLocked bool) State {
	if remoteLocked {
		return SM
	}
	return EM
}

func (pimProtocol) LockUpgradeState(cur State, dirtyKilled, remoteLocked bool) State {
	switch {
	case remoteLocked:
		if dirtyKilled && cur == S {
			return SM
		}
		return cur
	case cur == SM || dirtyKilled:
		return EM
	default:
		return EC
	}
}

func (pimProtocol) SnoopShareState(cur State) (State, bool, bool) {
	// No copy-back on transfer: a modified supplier keeps write-back
	// ownership in SM; clean exclusives downgrade to S.
	switch cur {
	case EM, SM:
		return SM, false, true
	default:
		return S, false, false
	}
}

func (pimProtocol) SnoopInvalTransfer(wasDirty bool) (reportDirty, copyBack bool) {
	return wasDirty, false
}

func (pimProtocol) CleanSupplies() bool { return true }

// --- Illinois baseline ---

// illinoisProtocol copies a dirty block back to shared memory whenever
// it is supplied, so every copy ends up clean — exactly the
// memory-module pressure the PIM SM state avoids. (SM is still listed
// in States: a remote lock can force a dirty writer to stay shared.)
type illinoisProtocol struct{ pimProtocol }

func (illinoisProtocol) Name() string    { return "illinois" }
func (illinoisProtocol) ID() Protocol    { return ProtocolIllinois }
func (illinoisProtocol) States() []State { return []State{INV, S, SM, EC, EM} }

func (illinoisProtocol) SnoopShareState(cur State) (State, bool, bool) {
	if cur.Dirty() {
		return S, true, false
	}
	return S, false, false
}

func (illinoisProtocol) SnoopInvalTransfer(wasDirty bool) (reportDirty, copyBack bool) {
	return false, wasDirty
}

// --- write-through baseline ---

// wtProtocol is write-through with invalidation, write-no-allocate:
// the cache body short-circuits its write path (WriteThrough), so the
// remaining hooks only ever see the read and lock paths — blocks are
// never dirty and EM/SM are unreachable.
type wtProtocol struct{ pimProtocol }

func (wtProtocol) Name() string       { return "writethrough" }
func (wtProtocol) ID() Protocol       { return ProtocolWriteThrough }
func (wtProtocol) States() []State    { return []State{INV, S, EC} }
func (wtProtocol) WriteThrough() bool { return true }

// --- MOESI ---

// moesiProtocol adds the distinct Owned state: a dirty supplier
// downgrades EM→O (not SM) and keeps the write-back, and only a dirty
// owner ever supplies data — clean holders answer H to assert sharing
// but shared memory serves the block. The PIM protocol's SM plays the
// same dirty-shared role; the observable differences are the
// clean-supply policy and the memory-sourced pattern mix.
type moesiProtocol struct{}

func (moesiProtocol) Name() string              { return "moesi" }
func (moesiProtocol) ID() Protocol              { return ProtocolMOESI }
func (moesiProtocol) States() []State           { return []State{INV, S, EC, EM, O} }
func (moesiProtocol) WriteThrough() bool        { return false }
func (moesiProtocol) WriteUpdate() bool         { return false }
func (moesiProtocol) UpdateSelfInvalidate() int { return 0 }

func (moesiProtocol) FetchState(inval, fromCache, supplierDirty, shared bool) State {
	switch {
	case inval && shared:
		if supplierDirty {
			return O
		}
		return S
	case inval && supplierDirty:
		return EM
	case inval:
		return EC
	case fromCache || shared:
		return S
	default:
		return EC
	}
}

func (moesiProtocol) WriteOwnState(remoteLocked bool) State {
	if remoteLocked {
		return O
	}
	return EM
}

func (moesiProtocol) LockUpgradeState(cur State, dirtyKilled, remoteLocked bool) State {
	switch {
	case remoteLocked:
		if dirtyKilled && cur == S {
			return O
		}
		return cur
	case cur == O || dirtyKilled:
		return EM
	default:
		return EC
	}
}

func (moesiProtocol) SnoopShareState(cur State) (State, bool, bool) {
	switch cur {
	case EM, O:
		return O, false, true
	default:
		return S, false, false
	}
}

func (moesiProtocol) SnoopInvalTransfer(wasDirty bool) (reportDirty, copyBack bool) {
	return wasDirty, false
}

func (moesiProtocol) CleanSupplies() bool { return false }

// --- Dragon write-update ---

// dragonProtocol reuses the PIM state plane with Dragon's reading: S
// is Sc (shared clean), SM is Sm (shared dirty, owns the write-back),
// EC is E, EM is M. Reads, fetch installs, snoops and lock upgrades
// are exactly the PIM transitions; only the write path differs — a
// write to a shared block broadcasts the word (UP) instead of
// invalidating, and a write miss fetches with F (non-invalidating)
// and then updates if the grant was shared. Lock acquisition stays
// invalidate-based: a lock needs exclusivity, not freshness.
type dragonProtocol struct{ pimProtocol }

func (dragonProtocol) Name() string      { return "dragon" }
func (dragonProtocol) ID() Protocol      { return ProtocolDragon }
func (dragonProtocol) WriteUpdate() bool { return true }

// --- adaptive write-update/write-invalidate ---

// adaptiveProtocol is Dragon plus competitive self-invalidation: each
// holder counts consecutive received updates per frame (reset by any
// local access) and drops its copy at the threshold. Producer-consumer
// blocks — the comm area's write-once/read-once messages — keep update
// behaviour because the consumer's read resets its counter; migratory
// blocks stop paying an update per write after the threshold, from
// which point the writer's next update finds no holders and it settles
// in M, exactly as under an invalidate protocol.
type adaptiveProtocol struct{ dragonProtocol }

func (adaptiveProtocol) Name() string              { return "adaptive" }
func (adaptiveProtocol) ID() Protocol              { return ProtocolAdaptive }
func (adaptiveProtocol) UpdateSelfInvalidate() int { return adaptiveUpdateLimit }
