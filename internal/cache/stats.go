package cache

import "pimcache/internal/mem"

// Stats accumulates one cache's activity. References are recorded under
// the operation the software issued (so Table 3 can be produced whether
// or not optimizations are enabled) and the area of the address; the
// degradation counters record how the optimized commands actually acted.
type Stats struct {
	// Refs counts issued memory references by area and software op.
	Refs [mem.NumAreas][NumOps]uint64
	// Hits and Misses count block-directory lookups for operations that
	// access data (everything except U). A degraded optimized op counts
	// under its issued op.
	Hits   [NumOps]uint64
	Misses [NumOps]uint64

	// Lock protocol effectiveness (Table 5).
	LRHitExclusive uint64 // LR hits to EC/EM blocks: zero bus cost
	UnlockNoWaiter uint64 // U/UW releases in LCK state: no UL broadcast
	UnlockWaiter   uint64 // U/UW releases in LWAIT state: UL broadcast
	BusyWaits      uint64 // operations that received LH and busy-waited

	// Optimized-command outcomes.
	DWApplied  uint64 // fresh block allocated without fetch
	DWDegraded uint64 // DW treated as W (disabled, mid-block, or hit)
	ERInval    uint64 // ER acted as read-invalidate (case i)
	ERPurge    uint64 // ER purged own block after last-word read (case ii)
	ERDegraded uint64 // ER treated as R (case iii or disabled)
	RPApplied  uint64 // RP purged (hit) or fetched-without-install (miss)
	RPDegraded uint64 // RP treated as R (disabled or clean miss to memory)
	RIApplied  uint64 // RI took the block exclusively from a remote cache
	RIDegraded uint64 // RI treated as R (disabled, hit, or memory-sourced)

	// Evictions and purges.
	SwapOuts      uint64 // dirty victims written back
	PurgedDirty   uint64 // modified blocks discarded by ER/RP (dead data)
	Invalidations uint64 // copies lost to remote invalidations

	// Write-update protocol activity (zero under invalidate protocols,
	// so manifests and baselines for those are unchanged).
	UpdatesReceived uint64 // UP broadcasts applied to a resident copy
	AdaptiveDrops   uint64 // copies self-invalidated at the update threshold
	DWUpdateInvals  uint64 // applied DWs that had to invalidate live remote copies
}

// DataRefs sums non-instruction references (all areas but inst).
func (s *Stats) DataRefs() uint64 {
	var n uint64
	for a := mem.AreaHeap; a <= mem.AreaComm; a++ {
		for op := Op(0); op < NumOps; op++ {
			n += s.Refs[a][op]
		}
	}
	return n
}

// TotalRefs sums all references including instruction fetches.
func (s *Stats) TotalRefs() uint64 {
	var n uint64
	for a := 0; a < int(mem.NumAreas); a++ {
		for op := Op(0); op < NumOps; op++ {
			n += s.Refs[a][op]
		}
	}
	return n
}

// RefsByOp sums references of one op across areas.
func (s *Stats) RefsByOp(op Op) uint64 {
	var n uint64
	for a := 0; a < int(mem.NumAreas); a++ {
		n += s.Refs[a][op]
	}
	return n
}

// RefsByArea sums references to one area across ops.
func (s *Stats) RefsByArea(area mem.Area) uint64 {
	var n uint64
	for op := Op(0); op < NumOps; op++ {
		n += s.Refs[area][op]
	}
	return n
}

// LRTotal counts lock-read operations.
func (s *Stats) LRTotal() uint64 { return s.RefsByOp(OpLR) }

// LRHits counts lock-reads that hit in the cache.
func (s *Stats) LRHits() uint64 { return s.Hits[OpLR] }

// MissRatio is misses over lookups for all data-accessing ops.
func (s *Stats) MissRatio() float64 {
	var h, m uint64
	for op := Op(0); op < NumOps; op++ {
		h += s.Hits[op]
		m += s.Misses[op]
	}
	if h+m == 0 {
		return 0
	}
	return float64(m) / float64(h+m)
}

// Add merges other into s.
func (s *Stats) Add(o *Stats) {
	for a := range s.Refs {
		for op := range s.Refs[a] {
			s.Refs[a][op] += o.Refs[a][op]
		}
	}
	for op := range s.Hits {
		s.Hits[op] += o.Hits[op]
		s.Misses[op] += o.Misses[op]
	}
	s.LRHitExclusive += o.LRHitExclusive
	s.UnlockNoWaiter += o.UnlockNoWaiter
	s.UnlockWaiter += o.UnlockWaiter
	s.BusyWaits += o.BusyWaits
	s.DWApplied += o.DWApplied
	s.DWDegraded += o.DWDegraded
	s.ERInval += o.ERInval
	s.ERPurge += o.ERPurge
	s.ERDegraded += o.ERDegraded
	s.RPApplied += o.RPApplied
	s.RPDegraded += o.RPDegraded
	s.RIApplied += o.RIApplied
	s.RIDegraded += o.RIDegraded
	s.SwapOuts += o.SwapOuts
	s.PurgedDirty += o.PurgedDirty
	s.Invalidations += o.Invalidations
	s.UpdatesReceived += o.UpdatesReceived
	s.AdaptiveDrops += o.AdaptiveDrops
	s.DWUpdateInvals += o.DWUpdateInvals
}
