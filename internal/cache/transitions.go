package cache

import (
	"fmt"
	"sort"
	"strings"

	"pimcache/internal/bus"
	"pimcache/internal/kl1/word"
	"pimcache/internal/mem"
	"pimcache/internal/par"
	"pimcache/internal/probe"
)

// Transition-table derivation.
//
// The paper refers to Matsumoto's ICOT TR-327 for "the complete state
// transition tables of the PIM cache protocol". This file reconstructs
// those tables empirically: it drives a small two-cache system into every
// reachable local state under every remote-context scenario, applies each
// processor operation, and records the resulting local state and bus
// commands. The result is both documentation (cmd/pimtable prints it) and
// a regression artifact (a golden test pins every row).

// TransitionRow is one derived protocol transition.
type TransitionRow struct {
	// Start is the local cache's state for the block before the access.
	Start State
	// Remote describes the other cache's copy: "-" none, or a state name.
	Remote string
	// Op is the processor operation applied (with its applicability
	// conditions satisfied; DW at a fresh block boundary, ER at a
	// non-final word on miss etc. are exercised by dedicated scenarios).
	Op string
	// End is the local state afterwards.
	End State
	// RemoteEnd is the other cache's state afterwards.
	RemoteEnd string
	// BusOps summarizes the bus commands issued ("-" for none).
	BusOps string
	// Cycles is the bus cost of the access at base parameters.
	Cycles uint64
}

// DeriveTransitions computes the protocol transition table for the given
// protocol by direct experiment.
func DeriveTransitions(proto Protocol) []TransitionRow {
	return DeriveTransitionsJobs(proto, 1)
}

// DeriveTransitionsJobs is DeriveTransitions with the derivation
// experiments fanned out over a worker pool (each scenario builds its own
// two-cache system, so they are independent). The returned table is
// identical for every job count: results are collected by scenario index,
// not completion order, before the canonical sort.
func DeriveTransitionsJobs(proto Protocol, jobs int) []TransitionRow {
	// The scenario grid is the cross product of the protocol's registered
	// state set with itself ("-" meaning no remote copy), so a protocol's
	// table automatically covers exactly the states it declares (MOESI's
	// O, write-through's clean subset, ...). Combinations the protocol
	// cannot actually reach are weeded out by construct-and-verify in
	// deriveOne: the scenario builder re-checks the states it produced
	// and drops the cell when the protocol refuses the configuration.
	type scenario struct {
		local  State
		remote string // "-" for no remote copy, or a state name
	}
	states := proto.Impl().States()
	var scenarios []scenario
	for _, l := range states {
		scenarios = append(scenarios, scenario{l, "-"})
		for _, r := range states {
			if r != INV {
				scenarios = append(scenarios, scenario{l, r.String()})
			}
		}
	}
	ops := []string{"R", "W", "DW", "ER", "RP", "RI", "LR"}

	// Flatten the scenario×op grid so each cell is one independent
	// experiment with a fixed slot; the pool fills slots in any order.
	type cell struct {
		local  State
		remote string
		op     string
	}
	var cells []cell
	for _, sc := range scenarios {
		for _, op := range ops {
			cells = append(cells, cell{sc.local, sc.remote, op})
		}
	}
	derived := make([]TransitionRow, len(cells))
	ok := make([]bool, len(cells))
	if par.Jobs(jobs) <= 1 {
		for i, c := range cells {
			derived[i], ok[i] = deriveOne(proto, c.local, c.remote, c.op)
		}
	} else {
		pool := par.New(jobs)
		for i, c := range cells {
			i, c := i, c
			pool.Go(func() error {
				derived[i], ok[i] = deriveOne(proto, c.local, c.remote, c.op)
				return nil
			})
		}
		pool.Wait()
	}
	var rows []TransitionRow
	for i := range cells {
		if ok[i] {
			rows = append(rows, derived[i])
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Start != rows[j].Start {
			return rows[i].Start < rows[j].Start
		}
		if rows[i].Remote != rows[j].Remote {
			return rows[i].Remote < rows[j].Remote
		}
		return rows[i].Op < rows[j].Op
	})
	return rows
}

// deriveOne prepares the scenario and applies the op on PE0.
func deriveOne(proto Protocol, local State, remote, op string) (TransitionRow, bool) {
	layout := mem.Layout{InstWords: 64, HeapWords: 4096, GoalWords: 256, SuspWords: 64, CommWords: 64}
	m := mem.New(layout)
	b := bus.New(bus.Config{Timing: bus.DefaultTiming(), BlockWords: 4}, m)
	var opts Options
	// Enable every optimized command in the heap area so the table shows
	// their genuine transitions.
	opts.PerArea[mem.AreaHeap] = OptAll
	cfg := Config{SizeWords: 64, BlockWords: 4, Ways: 4, LockEntries: 2,
		Options: opts, Protocol: proto}
	c0 := New(cfg, 0, b)
	c1 := New(cfg, 1, b)
	a := m.Bounds().HeapBase
	m.Write(a, word.Int(1))

	// Recipes are written in terms of the PIM state names; protocols that
	// rename the dirty-shared owner state (MOESI's O) reuse the SM
	// recipes, and the final verification below still checks the literal
	// requested states, so a recipe that lands elsewhere drops the cell.
	normLocal := local
	if normLocal == O {
		normLocal = SM
	}
	normRemote := remote
	if normRemote == "O" {
		normRemote = "SM"
	}

	// Build the starting configuration. Orders of operations are chosen
	// so the last action leaves exactly the desired states.
	set := func() bool {
		switch {
		case normLocal == INV && normRemote == "-":
		case normLocal == INV && normRemote == "S":
			c1.Read(a)
			c0.Read(a)
			c0.SnoopInvalidateSelf(a) // drop only the local copy
			if c1.StateOf(a) != S {
				// Reading downgraded c1 to S; keep it.
				return c1.StateOf(a) == S
			}
		case normLocal == INV && normRemote == "EC":
			c1.Read(a)
		case normLocal == INV && normRemote == "EM":
			c1.Write(a, word.Int(2))
		case normLocal == INV && normRemote == "SM":
			c1.Write(a, word.Int(2))
			c0.Read(a) // c1 -> SM, c0 -> S
			c0.SnoopInvalidateSelf(a)
		case normLocal == S && normRemote == "-":
			c1.Read(a)
			c0.Read(a) // both S
			c1.SnoopInvalidateSelf(a)
		case normLocal == S && normRemote == "S":
			c1.Read(a)
			c0.Read(a)
		case normLocal == S && normRemote == "SM":
			c1.Write(a, word.Int(2))
			c0.Read(a)
		case normLocal == SM && normRemote == "-":
			c0.Write(a, word.Int(2))
			c1.Read(a) // c0 SM, c1 S
			c1.SnoopInvalidateSelf(a)
		case normLocal == SM && normRemote == "S":
			c0.Write(a, word.Int(2))
			c1.Read(a)
		case normLocal == EC && normRemote == "-":
			c0.Read(a)
		case normLocal == EM && normRemote == "-":
			c0.Write(a, word.Int(2))
		default:
			return false
		}
		return c0.StateOf(a) == local && remoteName(c1, a) == remote
	}
	if !set() {
		return TransitionRow{}, false
	}
	b.ResetStats()
	pre := b.Stats()

	switch op {
	case "R":
		c0.Read(a)
	case "W":
		c0.Write(a, word.Int(9))
	case "DW":
		// DW's genuine form needs a fresh block; in-place it degrades, so
		// only the INV/- scenario shows the allocation-without-fetch.
		if local != INV || remote != "-" {
			return TransitionRow{}, false
		}
		c0.DirectWrite(a, word.Int(9))
	case "ER":
		c0.ExclusiveRead(a + 3) // last word of the block: the purge case
	case "RP":
		c0.ReadPurge(a)
	case "RI":
		c0.ReadInvalidate(a)
	case "LR":
		if _, ok := c0.LockRead(a); ok {
			defer c0.Unlock(a)
		}
	}
	post := b.Stats()
	return TransitionRow{
		Start:     local,
		Remote:    remote,
		Op:        op,
		End:       c0.StateOf(a),
		RemoteEnd: remoteName(c1, a),
		BusOps:    busOps(&pre, &post),
		Cycles:    post.TotalCycles - pre.TotalCycles,
	}, true
}

func remoteName(c *Cache, a word.Addr) string {
	st := c.StateOf(a)
	if st == INV {
		return "-"
	}
	return st.String()
}

func busOps(pre, post *bus.Stats) string {
	var parts []string
	for cmd := bus.Command(0); cmd < bus.NumCommands; cmd++ {
		if n := post.Commands[cmd] - pre.Commands[cmd]; n > 0 {
			if n == 1 {
				parts = append(parts, cmd.String())
			} else {
				parts = append(parts, fmt.Sprintf("%s x%d", cmd, n))
			}
		}
	}
	if post.CountByPattern[bus.PatWordWrite] > pre.CountByPattern[bus.PatWordWrite] {
		parts = append(parts, "WT")
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, "+")
}

// SnoopInvalidateSelf drops this cache's copy of a block without touching
// the rest of the system; used only to construct transition-table
// scenarios and tests.
func (c *Cache) SnoopInvalidateSelf(a word.Addr) {
	if f := c.lookup(a); f >= 0 {
		c.drop(f, probe.ReasonSnoopInval)
	}
}

// FormatTransitions renders the derived table.
func FormatTransitions(rows []TransitionRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s %-7s %-4s %-6s %-7s %-12s %s\n",
		"state", "remote", "op", "state'", "remote'", "bus", "cycles")
	sb.WriteString(strings.Repeat("-", 56) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-6s %-7s %-4s %-6s %-7s %-12s %d\n",
			r.Start, r.Remote, r.Op, r.End, r.RemoteEnd, r.BusOps, r.Cycles)
	}
	return sb.String()
}
