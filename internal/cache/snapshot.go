package cache

import (
	"fmt"

	"pimcache/internal/kl1/word"
)

// LockEntrySnapshot is one serialized lock-directory entry. Empty entries
// are kept in place so that Restore reproduces the directory's exact slot
// layout (acquire fills the first empty slot, so slot positions are
// observable through later behaviour).
type LockEntrySnapshot struct {
	Addr  word.Addr
	State LockState
}

// Snapshot is a complete, self-contained copy of a cache's mutable state:
// the four SoA planes, the LRU clock, the lock directory, the busy-wait
// latch and the statistics. It contains everything needed to make Restore
// followed by replaying refs [k, n) bit-identical to an uninterrupted
// replay of refs [0, n) — including probe event streams, because the
// probe clock lives on the bus and is captured by bus.Snapshot.
//
// All fields are exported and of serializable types so the machine-level
// checkpoint can gob-encode snapshots directly.
type Snapshot struct {
	States   []State
	Bases    []word.Addr
	LRU      []uint64
	Data     []word.Word
	LRUClock uint64
	// UpdCounts is the adaptive protocol's per-frame received-update
	// counter plane; nil for every other protocol, so their encoded
	// checkpoints are unchanged.
	UpdCounts []uint8

	Locks     []LockEntrySnapshot
	Blocked   bool
	BlockedOn word.Addr

	Stats Stats
}

// Snapshot captures the cache's mutable state. The configuration is not
// included: a snapshot may only be restored into a cache with the same
// Config (the machine-level checkpoint records and checks it).
func (c *Cache) Snapshot() *Snapshot {
	s := &Snapshot{
		States:    append([]State(nil), c.states...),
		Bases:     append([]word.Addr(nil), c.bases...),
		LRU:       append([]uint64(nil), c.lru...),
		Data:      append([]word.Word(nil), c.data...),
		LRUClock:  c.lruClock,
		UpdCounts: append([]uint8(nil), c.updCounts...),
		Locks:     make([]LockEntrySnapshot, len(c.dir.entries)),
		Blocked:   c.blocked,
		BlockedOn: c.blockedOn,
		Stats:     c.stats,
	}
	for i, e := range c.dir.entries {
		s.Locks[i] = LockEntrySnapshot{Addr: e.addr, State: e.state}
	}
	return s
}

// Restore overwrites the cache's mutable state from a snapshot taken on a
// cache with the same configuration. The bus presence filter is NOT
// updated here — the filter is bus state, and a machine-level restore
// reinstates it through bus.(*Bus).Restore; restoring a lone cache
// outside a machine checkpoint would desynchronize the filter.
func (c *Cache) Restore(s *Snapshot) error {
	if len(s.States) != len(c.states) || len(s.Data) != len(c.data) {
		return fmt.Errorf("cache: snapshot geometry %d frames/%d words does not match cache %d/%d",
			len(s.States), len(s.Data), len(c.states), len(c.data))
	}
	if len(s.Locks) != len(c.dir.entries) {
		return fmt.Errorf("cache: snapshot has %d lock entries, cache has %d",
			len(s.Locks), len(c.dir.entries))
	}
	copy(c.states, s.States)
	copy(c.bases, s.Bases)
	for f, st := range c.states {
		if st == INV {
			c.tags[f] = invalidTag
		} else {
			c.tags[f] = frameTag(c.bases[f], st)
		}
	}
	copy(c.lru, s.LRU)
	copy(c.data, s.Data)
	c.lruClock = s.LRUClock
	if c.updCounts != nil {
		if len(s.UpdCounts) != len(c.updCounts) {
			return fmt.Errorf("cache: snapshot has %d update counters, cache has %d",
				len(s.UpdCounts), len(c.updCounts))
		}
		copy(c.updCounts, s.UpdCounts)
	}
	for i, e := range s.Locks {
		c.dir.entries[i] = lockEntry{addr: e.Addr, state: e.State}
	}
	c.blocked = s.Blocked
	c.blockedOn = s.BlockedOn
	c.stats = s.Stats
	return nil
}
