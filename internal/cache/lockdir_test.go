package cache

import (
	"testing"

	"pimcache/internal/kl1/word"
)

func TestLockDirAcquireRelease(t *testing.T) {
	d := newLockDir(2)
	d.acquire(100)
	if !d.held(100) || d.held(101) {
		t.Error("held() wrong")
	}
	if d.inUse() != 1 {
		t.Errorf("inUse = %d", d.inUse())
	}
	if d.release(100) {
		t.Error("release reported a waiter without one")
	}
	if d.held(100) || d.inUse() != 0 {
		t.Error("release incomplete")
	}
}

func TestLockDirWaiterTransition(t *testing.T) {
	d := newLockDir(2)
	d.acquire(50)
	if !d.snoop(50) {
		t.Fatal("snoop missed the lock")
	}
	// LCK -> LWAIT: the release must now report a waiter.
	if !d.release(50) {
		t.Error("waiter lost")
	}
}

func TestLockDirSnoopMiss(t *testing.T) {
	d := newLockDir(2)
	d.acquire(50)
	if d.snoop(51) {
		t.Error("snoop matched the wrong word")
	}
}

func TestLockDirTwoEntries(t *testing.T) {
	d := newLockDir(2)
	d.acquire(10)
	d.acquire(20)
	if d.inUse() != 2 {
		t.Errorf("inUse = %d", d.inUse())
	}
	d.release(10)
	d.acquire(30) // reuses the freed entry
	if !d.held(20) || !d.held(30) || d.held(10) {
		t.Error("entry reuse broken")
	}
}

func TestLockDirOverflowPanics(t *testing.T) {
	d := newLockDir(1)
	d.acquire(1)
	defer func() {
		if recover() == nil {
			t.Error("overflow did not panic")
		}
	}()
	d.acquire(2)
}

func TestLockDirDoubleAcquirePanics(t *testing.T) {
	d := newLockDir(2)
	d.acquire(1)
	defer func() {
		if recover() == nil {
			t.Error("double acquire did not panic")
		}
	}()
	d.acquire(1)
}

func TestLockDirReleaseUnheldPanics(t *testing.T) {
	d := newLockDir(2)
	defer func() {
		if recover() == nil {
			t.Error("release of unheld lock did not panic")
		}
	}()
	d.release(9)
}

func TestLockDirLocksInBlock(t *testing.T) {
	d := newLockDir(4)
	d.acquire(102)
	cases := []struct {
		base word.Addr
		n    int
		want bool
	}{
		{100, 4, true},
		{102, 1, true},
		{103, 4, false},
		{96, 4, false},
		{100, 2, false},
	}
	for _, tc := range cases {
		if got := d.locksInBlock(tc.base, tc.n); got != tc.want {
			t.Errorf("locksInBlock(%d,%d) = %v, want %v", tc.base, tc.n, got, tc.want)
		}
	}
}
