package cache

import (
	"fmt"

	"pimcache/internal/kl1/word"
)

// lockEntry is one word-granular lock held by this PE.
type lockEntry struct {
	addr  word.Addr
	state LockState
}

// lockDir is the PE's lock directory (Section 3.1): a handful of entries,
// separate from the cache directory, that register the word addresses
// this PE has locked with LR. The directory snoops the bus: a remote
// command touching a locked word gets the LH response and the entry moves
// LCK -> LWAIT so that the eventual unlock is broadcast.
type lockDir struct {
	entries []lockEntry
}

func newLockDir(n int) *lockDir {
	return &lockDir{entries: make([]lockEntry, n)}
}

// find returns the index of the entry for addr, or -1.
func (d *lockDir) find(addr word.Addr) int {
	for i := range d.entries {
		if d.entries[i].state != EMP && d.entries[i].addr == addr {
			return i
		}
	}
	return -1
}

// held reports whether this PE holds a lock on addr.
func (d *lockDir) held(addr word.Addr) bool { return d.find(addr) >= 0 }

// acquire registers a lock on addr in the LCK state. It panics if the
// address is already locked by this PE (KL1 locks are not reentrant; a
// double LR is a runtime bug) or if the directory is full (the paper
// argues one or two entries suffice; overflow means the runtime holds
// more simultaneous locks than the hardware provides).
func (d *lockDir) acquire(addr word.Addr) {
	if d.find(addr) >= 0 {
		panic(fmt.Sprintf("cache: double lock of %#x", addr))
	}
	for i := range d.entries {
		if d.entries[i].state == EMP {
			d.entries[i] = lockEntry{addr: addr, state: LCK}
			return
		}
	}
	panic(fmt.Sprintf("cache: lock directory overflow locking %#x", addr))
}

// release frees the entry for addr and reports whether any PE was
// waiting (LWAIT), in which case the caller must broadcast UL. It panics
// on unlocking an address this PE does not hold — an unmatched U/UW is a
// runtime bug.
func (d *lockDir) release(addr word.Addr) (hadWaiter bool) {
	i := d.find(addr)
	if i < 0 {
		panic(fmt.Sprintf("cache: unlock of unheld address %#x", addr))
	}
	hadWaiter = d.entries[i].state == LWAIT
	d.entries[i] = lockEntry{}
	return hadWaiter
}

// snoop is the bus-side check: if addr is locked here, record the waiter
// and report a lock hit.
func (d *lockDir) snoop(addr word.Addr) bool {
	i := d.find(addr)
	if i < 0 {
		return false
	}
	d.entries[i].state = LWAIT
	return true
}

// locksInBlock reports whether any entry falls within [base, base+words).
func (d *lockDir) locksInBlock(base word.Addr, words int) bool {
	for i := range d.entries {
		e := &d.entries[i]
		if e.state != EMP && e.addr >= base && e.addr < base+word.Addr(words) {
			return true
		}
	}
	return false
}

// inUse counts active entries.
func (d *lockDir) inUse() int {
	n := 0
	for i := range d.entries {
		if d.entries[i].state != EMP {
			n++
		}
	}
	return n
}
