package cache

// FaultInjection holds deliberate protocol mutations used by the
// coherence model checker (internal/check) to verify its own power: each
// field flips exactly one protocol decision that the checker's invariant
// oracles or differential runs must detect and shrink to a small repro.
//
// The knobs exist only for that self-test. They model nothing, default
// to off, and must never be set outside tests; the zero value is the
// correct protocol.
type FaultInjection struct {
	// GrantEMOverRemoteLock makes writeInternal grant EM even when a
	// remote PE holds a lock on a word of the block, breaking the
	// no-exclusive-block-over-a-remote-lock invariant (a later LR can
	// then hit the exclusive block and acquire the same lock twice).
	GrantEMOverRemoteLock bool
	// SkipSnoopInvalidate makes SnoopInvalidate ignore the I command,
	// leaving a stale copy alive beside the writer's modified one.
	SkipSnoopInvalidate bool
	// SkipFilterDrop makes drop forget to notify the bus presence
	// filter, leaving a stale holder bit in the snoop-filter mask.
	SkipFilterDrop bool
}

// Faults is the package-wide fault-injection state. Tests that set a
// field must restore the zero value before finishing (and must not run
// in parallel with other cache users).
var Faults FaultInjection
