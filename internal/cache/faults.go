package cache

// FaultInjection holds deliberate protocol mutations used by the
// coherence model checker (internal/check) to verify its own power: each
// field flips exactly one protocol decision that the checker's invariant
// oracles or differential runs must detect and shrink to a small repro.
//
// The knobs exist only for that self-test. They model nothing, default
// to off, and must never be set outside tests; the zero value is the
// correct protocol.
type FaultInjection struct {
	// GrantEMOverRemoteLock makes writeInternal grant EM even when a
	// remote PE holds a lock on a word of the block, breaking the
	// no-exclusive-block-over-a-remote-lock invariant (a later LR can
	// then hit the exclusive block and acquire the same lock twice).
	GrantEMOverRemoteLock bool
	// SkipSnoopInvalidate makes SnoopInvalidate ignore the I command,
	// leaving a stale copy alive beside the writer's modified one.
	SkipSnoopInvalidate bool
	// SkipFilterDrop makes drop forget to notify the bus presence
	// filter, leaving a stale holder bit in the snoop-filter mask.
	SkipFilterDrop bool
	// MOESIDropOwnedWriteBack makes eviction treat a MOESI Owned block
	// as clean: the dirty-shared data this cache owned the write-back
	// for silently reverts to stale memory once every copy is gone.
	MOESIDropOwnedWriteBack bool
	// SkipSnoopUpdate makes SnoopUpdate acknowledge a received UP
	// broadcast without storing the word, leaving this holder's copy
	// stale beside the writer's — the lost-update bug write-update
	// protocols exist to prevent.
	SkipSnoopUpdate bool
	// AdaptiveDropSkipFilter makes the adaptive protocol's competitive
	// self-invalidation forget to notify the bus presence filter,
	// leaving a stale holder bit behind the drop.
	AdaptiveDropSkipFilter bool
	// SkipDWUpdateInval makes an applied DW under a write-update
	// protocol skip the remote-copy invalidate, reintroducing the
	// free-list recycling bug the fix in directWrite exists for: a
	// reader's copy from the record's previous life — kept alive by UP
	// refreshes where an invalidate protocol would have killed it —
	// survives the silent exclusive install and goes permanently stale.
	SkipDWUpdateInval bool
}

// Faults is the package-wide fault-injection state. Tests that set a
// field must restore the zero value before finishing (and must not run
// in parallel with other cache users).
var Faults FaultInjection
