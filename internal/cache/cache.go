package cache

import (
	"fmt"
	"math/bits"

	"pimcache/internal/bus"
	"pimcache/internal/kl1/word"
	"pimcache/internal/mem"
	"pimcache/internal/probe"
)

// Cache is one PE's coherent cache plus its lock directory. It implements
// mem.Accessor on the processor side and bus.Snooper/bus.LockUnit on the
// bus side.
//
// Storage is struct-of-arrays: instead of a slice-of-slices of line
// structs, the directory lives in flat planes indexed by frame number
// (set*ways + way). The hot path — lookup, LRU touch, victim choice —
// scans a packed tag plane where a default-geometry set is half a host
// cache line, so a reference costs one or two lines of host memory
// instead of chasing pointers into per-line structs. The state and
// base planes back the coherence bookkeeping, and the data plane is
// one flat word slice (frame f's block at f*BlockWords).
//
// A Cache is not safe for concurrent use; the machine steps PEs
// deterministically and the bus serializes all coherence activity.
type Cache struct {
	cfg    Config
	pe     int
	bus    *bus.Bus
	// bounds is the shared memory's area map, copied in so the
	// per-reference area classification is a static, inlinable call
	// instead of an indirect one through a func value.
	bounds mem.Bounds

	// SoA planes, indexed by frame = setIndex*ways + way. data is nil
	// when the cache runs stats-only (noData): coherence never reads it,
	// so dropping it removes the block copies and DW zero-fills from the
	// replay hot path without changing any statistic.
	states []State
	bases  []word.Addr
	data   []word.Word
	noData bool

	// tags is the hot directory plane: frame f's packed tag is
	// base<<8|state for a valid frame, invalidTag (zero) otherwise, so a
	// lookup compares one word per way and a whole default-geometry set
	// is half a host cache line. The entries mirror states+bases; the
	// three mutation points (install, setState, drop) keep them
	// coherent. LRU clocks live in their own plane, touched only on
	// hits, installs and victim search.
	tags []uint64
	lru  []uint64

	// proto is the coherence FSM (a stateless singleton from the
	// registry). The three capability fields cache its mode answers so
	// the hit paths and the write-path dispatch never make an interface
	// call; proto itself is consulted only on miss/snoop/upgrade paths.
	proto    CoherenceProtocol
	isWT     bool // proto.WriteThrough()
	isUpdate bool // proto.WriteUpdate()
	updLimit int  // proto.UpdateSelfInvalidate()
	// updCounts is the adaptive protocol's per-frame consecutive
	// received-update counter plane (nil otherwise): bumped by each
	// applied UP broadcast, reset by any local touch, and the frame is
	// dropped when a count reaches updLimit.
	updCounts []uint8

	ways     int
	bw       int // block words (frame stride in the data plane)
	setMask  word.Addr
	offMask  word.Addr
	blockW   word.Addr
	// blockShift is log2(blockW): the set-index computation runs on
	// every reference, and a shift beats the divide the compiler would
	// otherwise emit for the variable block size.
	blockShift uint
	lruClock uint64
	dir      *lockDir
	stats    Stats

	// Busy-wait state: set when an LR received the LH response; cleared
	// by the matching UL broadcast. While set the PE spins without bus
	// traffic and the machine does not step it.
	blocked   bool
	blockedOn word.Addr

	// probe, when non-nil, receives per-reference, state-transition and
	// lock telemetry (bus-level events are emitted by the bus itself).
	// Kept as a direct field so the per-reference hot path pays one nil
	// check, not a bus method call.
	probe probe.Sink
}

// New builds a cache for PE pe and attaches it to b.
func New(cfg Config, pe int, b *bus.Bus) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.BlockWords != b.BlockWords() {
		panic(fmt.Sprintf("cache: block size %d differs from bus block size %d",
			cfg.BlockWords, b.BlockWords()))
	}
	if cfg.StatsOnly != b.StatsOnly() {
		// A stats-only cache supplies nil snoop data; a data-carrying bus
		// would copy it as a zero block and corrupt other caches. The two
		// sides must agree (machine.New wires them together).
		panic(fmt.Sprintf("cache: StatsOnly=%v but bus StatsOnly=%v",
			cfg.StatsOnly, b.StatsOnly()))
	}
	sets := cfg.Sets()
	frames := sets * cfg.Ways
	var data []word.Word
	if !cfg.StatsOnly {
		data = make([]word.Word, frames*cfg.BlockWords)
	}
	c := &Cache{
		cfg:     cfg,
		pe:      pe,
		bus:     b,
		bounds:  b.Memory().Bounds(),
		states:  make([]State, frames),
		bases:   make([]word.Addr, frames),
		tags:    make([]uint64, frames),
		lru:     make([]uint64, frames),
		data:    data,
		noData:  cfg.StatsOnly,
		ways:    cfg.Ways,
		bw:      cfg.BlockWords,
		setMask:    word.Addr(sets - 1),
		offMask:    word.Addr(cfg.BlockWords - 1),
		blockW:     word.Addr(cfg.BlockWords),
		blockShift: uint(bits.TrailingZeros(uint(cfg.BlockWords))),
		dir:        newLockDir(cfg.LockEntries),
	}
	c.proto = cfg.Protocol.Impl()
	c.isWT = c.proto.WriteThrough()
	c.isUpdate = c.proto.WriteUpdate()
	c.updLimit = c.proto.UpdateSelfInvalidate()
	if c.updLimit > 0 {
		c.updCounts = make([]uint8, frames)
	}
	b.Attach(pe, c, c)
	return c
}

// Protocol returns the coherence FSM this cache runs.
func (c *Cache) Protocol() CoherenceProtocol { return c.proto }

// PE returns the processor index.
func (c *Cache) PE() int { return c.pe }

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// SetProbe attaches (or, with nil, detaches) the telemetry sink. Use
// machine.SetProbe to wire a whole cluster; standalone caches (trace
// replay) are wired by their driver. The bus must carry the same sink
// so the shared probe clock advances.
func (c *Cache) SetProbe(s probe.Sink) { c.probe = s }

// Blocked reports whether the PE is busy-waiting on a remote lock.
func (c *Cache) Blocked() bool { return c.blocked }

// BlockedOn returns the address being waited for (valid when Blocked).
func (c *Cache) BlockedOn() word.Addr { return c.blockedOn }

func (c *Cache) blockBase(a word.Addr) word.Addr { return a &^ c.offMask }

// frameData returns frame f's block in the data plane, or nil when the
// cache runs stats-only (copies from/to a nil block are no-ops; the bus
// never dereferences snoop data in stats-only mode).
func (c *Cache) frameData(f int) []word.Word {
	if c.noData {
		return nil
	}
	o := f * c.bw
	return c.data[o : o+c.bw : o+c.bw]
}

// loadWord returns the cached word at a in frame f (zero when
// stats-only; replay discards read values).
func (c *Cache) loadWord(f int, a word.Addr) word.Word {
	if c.noData {
		return 0
	}
	return c.data[f*c.bw+int(a&c.offMask)]
}

// storeWord stores w at a in frame f (no-op when stats-only).
func (c *Cache) storeWord(f int, a word.Addr, w word.Word) {
	if c.noData {
		return
	}
	c.data[f*c.bw+int(a&c.offMask)] = w
}

// invalidTag marks an INV frame in the tag plane. Zero is free: a valid
// frame's tag carries a nonzero state byte (the valid states are
// 1..numStates-1),
// so no valid tag collides with it, and a fresh plane needs no fill pass
// beyond make's zeroing.
const invalidTag = uint64(0)

// frameTag packs a valid frame's identity for the tag plane.
func frameTag(base word.Addr, st State) uint64 {
	return uint64(base)<<8 | uint64(st)
}

// lookup returns the frame holding a, or -1. This is the hot path: it
// scans the ways of one set through the packed tag plane only. A frame
// matches iff tag^want is a valid (nonzero) state, i.e. in 1..numStates-1
// — one XOR and one unsigned compare per way.
func (c *Cache) lookup(a word.Addr) int {
	want := uint64(a&^c.offMask) << 8
	f := int((a>>c.blockShift)&c.setMask) * c.ways
	d := c.tags[f : f+c.ways]
	for i := range d {
		if (d[i]^want)-1 < uint64(numStates)-1 {
			return f + i
		}
	}
	return -1
}

func (c *Cache) touch(f int) {
	c.lruClock++
	c.lru[f] = c.lruClock
	if c.updCounts != nil {
		// Any local access resets the adaptive protocol's competitive
		// counter: the block is not migratory from this PE's view.
		c.updCounts[f] = 0
	}
}

// victimFor picks the replacement frame for a block that will be
// installed at a: an invalid frame if one exists, else the LRU frame.
func (c *Cache) victimFor(a word.Addr) int {
	f := int((a>>c.blockShift)&c.setMask) * c.ways
	d := c.tags[f : f+c.ways]
	victim := f
	for i := range d {
		if d[i] == invalidTag {
			return f + i
		}
		if c.lru[f+i] < c.lru[victim] {
			victim = f + i
		}
	}
	return victim
}

// emitState reports a state transition on the block based at base;
// callers check c.probe != nil.
func (c *Cache) emitState(base word.Addr, from, to State, reason uint64) {
	c.probe.Emit(probe.Event{
		Kind: probe.KindCacheState, Cycle: c.bus.ProbeClock(), PE: int16(c.pe),
		Addr: base, A: uint8(from), B: uint8(to), Arg: reason,
	})
}

// setState changes frame f's state in place, reporting the transition.
// Only valid→valid transitions go through it; INV crossings use install
// and drop, which also maintain the bus presence filter.
func (c *Cache) setState(f int, to State, reason uint64) {
	if c.probe != nil && c.states[f] != to {
		c.emitState(c.bases[f], c.states[f], to, reason)
	}
	c.states[f] = to
	c.tags[f] = frameTag(c.bases[f], to)
}

// install marks frame f as holding the block based at base in state st
// and notifies the bus presence filter. Every INV→valid transition must
// go through it (the filter's exactness is what makes filtered snooping
// equivalent to the full scan).
func (c *Cache) install(f int, base word.Addr, st State, reason uint64) {
	c.bases[f] = base
	c.states[f] = st
	c.tags[f] = frameTag(base, st)
	c.bus.BlockInstalled(c.pe, base)
	if c.probe != nil {
		c.emitState(base, INV, st, reason)
	}
}

// drop invalidates frame f, notifying the bus presence filter. It is a
// no-op on an already-invalid frame.
func (c *Cache) drop(f int, reason uint64) {
	if c.states[f] != INV {
		skipFilter := Faults.SkipFilterDrop ||
			(Faults.AdaptiveDropSkipFilter && reason == probe.ReasonAdaptiveDrop)
		if !skipFilter {
			c.bus.BlockDropped(c.pe, c.bases[f])
		}
		if c.probe != nil {
			c.emitState(c.bases[f], c.states[f], INV, reason)
		}
		c.states[f] = INV
		c.tags[f] = invalidTag
	}
}

// evictHidden writes back a dirty victim through the hidden path (its
// bus cost is folded into the with-swap-out fetch pattern chosen by the
// caller).
func (c *Cache) evictHidden(f int) {
	if c.states[f].Dirty() && !(Faults.MOESIDropOwnedWriteBack && c.states[f] == O) {
		c.bus.SwapOutHidden(c.bases[f], c.frameData(f))
		c.stats.SwapOuts++
	}
	c.drop(f, probe.ReasonEvict)
}

// miss records a miss under op and reports it to the probe.
func (c *Cache) miss(a word.Addr, op Op) {
	c.stats.Misses[op]++
	if c.probe != nil {
		c.probe.Emit(probe.Event{
			Kind: probe.KindMiss, Cycle: c.bus.ProbeClock(), PE: int16(c.pe),
			Addr: a, A: uint8(op),
		})
	}
}

// fetchInto performs the bus fetch for a (F when inval is false, FI when
// true), handling the victim write-back and the busy-wait-then-proceed
// simplification for non-lock operations, and installs the block. It
// returns the installed frame.
//
// Plain R/W operations that hit a remotely locked word are modelled as
// one aborted (LH) attempt followed by the post-unlock retry: the retry's
// traffic is the fetch we issue here. This is safe functionally because
// KL1 data is single-assignment — the value observable before the lock's
// UW is the consistent pre-state.
func (c *Cache) fetchInto(a word.Addr, inval bool) int {
	victim := c.victimFor(a)
	vdirty := c.states[victim].Dirty()
	res := c.bus.Fetch(c.pe, a, inval, vdirty, false)
	if res.LockHit {
		c.stats.BusyWaits++
		res = c.bus.FetchForced(c.pe, a, inval, vdirty)
	}
	c.evictHidden(victim)
	copy(c.frameData(victim), res.Data)
	st := c.proto.FetchState(inval, res.FromCache, res.SupplierDirty, res.Shared)
	c.install(victim, c.blockBase(a), st, probe.ReasonFetch)
	c.touch(victim)
	return victim
}

// readInternal is the plain-read path shared by R and the degraded forms
// of ER/RP/RI. It records hit/miss under op.
func (c *Cache) readInternal(a word.Addr, op Op) word.Word {
	if f := c.lookup(a); f >= 0 {
		c.stats.Hits[op]++
		c.touch(f)
		return c.loadWord(f, a)
	}
	c.miss(a, op)
	f := c.fetchInto(a, false)
	return c.loadWord(f, a)
}

// writeInternal is the plain-write path shared by W, UW and degraded DW.
// It records hit/miss under op.
func (c *Cache) writeInternal(a word.Addr, w word.Word, op Op) {
	if c.isWT {
		// Write-through with invalidation, write-no-allocate: the store
		// goes straight to memory (one bus transaction per write), other
		// copies die, a present local copy is updated in place, and no
		// block is ever dirty.
		if f := c.lookup(a); f >= 0 {
			c.stats.Hits[op]++
			c.touch(f)
			c.storeWord(f, a, w)
		} else {
			c.miss(a, op)
		}
		c.bus.WordWrite(c.pe, a, w)
		return
	}
	if f := c.lookup(a); f >= 0 {
		c.stats.Hits[op]++
		c.touch(f)
		switch st := c.states[f]; {
		case st == EC:
			c.setState(f, EM, probe.ReasonWrite)
		case !st.Exclusive():
			// Writing a shared block. Invalidate protocols kill the other
			// copies; the block stays non-exclusive if a remote PE holds
			// a lock on one of its words (see Bus.RemoteLockInBlock), and
			// a killed remote dirty copy needs no special handling here:
			// the writer's copy becomes modified either way. Update
			// protocols broadcast the word to the other copies instead.
			if c.isUpdate {
				c.updateShared(f, a, w)
				break
			}
			if ok, _ := c.bus.Invalidate(c.pe, a, false); !ok {
				c.stats.BusyWaits++
				c.bus.ForceInvalidate(c.pe, a)
			}
			locked := c.bus.RemoteLockInBlock(c.pe, a) && !Faults.GrantEMOverRemoteLock
			c.setState(f, c.proto.WriteOwnState(locked), probe.ReasonWrite)
		}
		c.storeWord(f, a, w)
		return
	}
	c.miss(a, op)
	if c.isUpdate {
		// Write-update miss: fetch without invalidating; if the grant
		// was shared, broadcast the word to the other holders.
		f := c.fetchInto(a, false)
		if !c.states[f].Exclusive() {
			c.updateShared(f, a, w)
		} else {
			c.setState(f, EM, probe.ReasonWrite)
		}
		c.storeWord(f, a, w)
		return
	}
	f := c.fetchInto(a, true) // fetch-on-write, invalidating other copies
	// A lock-forced non-exclusive grant keeps the writer dirty-shared.
	locked := !c.states[f].Exclusive() && !Faults.GrantEMOverRemoteLock
	c.setState(f, c.proto.WriteOwnState(locked), probe.ReasonWrite)
	c.storeWord(f, a, w)
}

// updateShared performs the write-update protocols' shared-block write:
// a UP broadcast carrying the word to every other holder. The writer
// becomes the block's dirty owner — Sm (stored as SM) while any holder
// retains a copy or a remote lock denies exclusivity, M (stored as EM)
// once it is alone. Memory is NOT updated: the owner carries the
// write-back, which preserves the clean-copies-match-memory invariant
// the differential checker pins.
func (c *Cache) updateShared(f int, a word.Addr, w word.Word) {
	ok, shared := c.bus.Update(c.pe, a, w)
	if !ok {
		c.stats.BusyWaits++
		shared = c.bus.ForceUpdate(c.pe, a, w)
	}
	if shared || c.bus.RemoteLockInBlock(c.pe, a) {
		c.setState(f, SM, probe.ReasonWrite)
	} else {
		c.setState(f, EM, probe.ReasonWrite)
	}
}

func (c *Cache) countRef(a word.Addr, op Op) mem.Area {
	area := c.bounds.AreaOf(a)
	c.countRefIn(a, area, op)
	return area
}

// countRefIn is countRef with the area already classified — the packed
// pre-decoded replay path computes each ref's area once per trace and
// skips the per-reference AreaOf branch chain.
func (c *Cache) countRefIn(a word.Addr, area mem.Area, op Op) {
	c.stats.Refs[area][op]++
	if c.probe != nil {
		// The reference advances the probe clock by one cycle (the cache
		// access itself), so the clock keeps moving through hit-only
		// phases; disabled runs never tick.
		c.bus.Tick()
		c.probe.Emit(probe.Event{
			Kind: probe.KindRef, Cycle: c.bus.ProbeClock(), PE: int16(c.pe),
			Addr: a, A: uint8(op),
		})
	}
}

// Read implements the R operation.
func (c *Cache) Read(a word.Addr) word.Word {
	c.countRef(a, OpR)
	return c.readInternal(a, OpR)
}

// Write implements the W operation (copy-back, fetch-on-write).
func (c *Cache) Write(a word.Addr, w word.Word) {
	c.countRef(a, OpW)
	c.writeInternal(a, w, OpW)
}

// DirectWrite implements DW: when the address opens a fresh cache block
// (block-boundary miss) the block is allocated without fetching from
// shared memory; otherwise the controller automatically replaces DW with
// W, exactly as in Section 3.2(1). Software guarantees no remote cache
// holds the target block; Config.VerifyDW checks that contract.
func (c *Cache) DirectWrite(a word.Addr, w word.Word) {
	area := c.countRef(a, OpDW)
	c.directWrite(a, w, area)
}

func (c *Cache) directWrite(a word.Addr, w word.Word, area mem.Area) {
	if c.isWT {
		// DW exists to avoid the fetch-on-write of a copy-back cache;
		// write-through has no fetch-on-write to avoid.
		c.stats.DWDegraded++
		c.writeInternal(a, w, OpDW)
		return
	}
	if !c.cfg.Options.Enabled(area, OptDW) || a&c.offMask != 0 {
		c.stats.DWDegraded++
		c.writeInternal(a, w, OpDW)
		return
	}
	if c.lookup(a) >= 0 {
		// Already resident (a previous DW to this block): a plain hit.
		c.stats.DWDegraded++
		c.writeInternal(a, w, OpDW)
		return
	}
	if c.isUpdate && !Faults.SkipDWUpdateInval && c.bus.RemoteHolder(c.pe, a) {
		// The DW software contract ("no remote cache holds the block")
		// is free under invalidation-based coherence: the last store the
		// block's previous owner made killed every other copy, so by the
		// time software recycles the record with DW nothing remote can
		// hold it. Write-update protocols break that reasoning — their
		// stores refresh remote copies instead of killing them, so a
		// reader's copy from the record's previous life survives into
		// the DW, and the silent exclusive install below would leave it
		// stale forever (no later UP reaches a block the writer never
		// broadcast for). Buy the premise back with an explicit I
		// transaction, exactly as locks do (locks stay invalidate-based
		// under the update protocols too). A killed dirty copy needs no
		// ownership hand-off: DW replaces the whole block's content.
		c.stats.DWUpdateInvals++
		if ok, _ := c.bus.Invalidate(c.pe, a, false); !ok {
			c.stats.BusyWaits++
			c.bus.ForceInvalidate(c.pe, a)
		}
	}
	if c.cfg.VerifyDW && c.bus.RemoteHolder(c.pe, a) {
		panic(fmt.Sprintf("cache: DW contract violation at %#x: remote copy exists", a))
	}
	c.stats.DWApplied++
	c.miss(a, OpDW)
	victim := c.victimFor(a)
	if c.states[victim].Dirty() {
		// The only bus activity a direct write can cause: the lone
		// swap-out pattern (five cycles at base parameters).
		c.bus.SwapOut(c.pe, c.bases[victim], c.frameData(victim))
		c.stats.SwapOuts++
	}
	c.drop(victim, probe.ReasonEvict)
	if !c.noData {
		vd := c.frameData(victim)
		for i := range vd {
			vd[i] = 0
		}
		vd[a&c.offMask] = w
	}
	c.install(victim, c.blockBase(a), EM, probe.ReasonDirectWrite)
	c.touch(victim)
}

// ExclusiveRead implements ER per Section 3.2(2): (i) on a miss to a
// block held remotely, when the address is not the block's last word, it
// acts as read-invalidate; (ii) on a hit to the block's last word it
// purges the local copy after reading (read-purge); (iii) otherwise it is
// a plain R.
func (c *Cache) ExclusiveRead(a word.Addr) word.Word {
	area := c.countRef(a, OpER)
	return c.exclusiveRead(a, area)
}

func (c *Cache) exclusiveRead(a word.Addr, area mem.Area) word.Word {
	if c.isWT {
		c.stats.ERDegraded++
		return c.readInternal(a, OpER)
	}
	if !c.cfg.Options.Enabled(area, OptER) {
		c.stats.ERDegraded++
		return c.readInternal(a, OpER)
	}
	last := a&c.offMask == c.offMask
	if f := c.lookup(a); f >= 0 {
		c.stats.Hits[OpER]++
		c.touch(f)
		v := c.loadWord(f, a)
		if last {
			// Case (ii): the block is dead after this read; discard it
			// even if modified — that is the whole point (the data is
			// write-once/read-once, so the swap-out would be useless).
			if c.states[f].Dirty() {
				c.stats.PurgedDirty++
			}
			c.drop(f, probe.ReasonPurge)
			c.stats.ERPurge++
		} else {
			c.stats.ERDegraded++
		}
		return v
	}
	c.miss(a, OpER)
	if !last && c.bus.RemoteHolder(c.pe, a) {
		// Case (i): fetch with invalidation of the supplier.
		c.stats.ERInval++
		f := c.fetchInto(a, true)
		return c.loadWord(f, a)
	}
	// Case (iii).
	c.stats.ERDegraded++
	f := c.fetchInto(a, false)
	return c.loadWord(f, a)
}

// ReadPurge implements RP per Section 3.2(3): on a hit the block is
// purged after the read; on a miss to a remotely held block the data is
// transferred, the supplier invalidated, and nothing is installed locally
// (the fetched block is "forcibly purged after the RP operation").
func (c *Cache) ReadPurge(a word.Addr) word.Word {
	area := c.countRef(a, OpRP)
	return c.readPurge(a, area)
}

func (c *Cache) readPurge(a word.Addr, area mem.Area) word.Word {
	if c.isWT {
		c.stats.RPDegraded++
		return c.readInternal(a, OpRP)
	}
	if !c.cfg.Options.Enabled(area, OptRP) {
		c.stats.RPDegraded++
		return c.readInternal(a, OpRP)
	}
	if f := c.lookup(a); f >= 0 {
		c.stats.Hits[OpRP]++
		v := c.loadWord(f, a)
		if c.states[f].Dirty() {
			c.stats.PurgedDirty++
		}
		c.drop(f, probe.ReasonPurge)
		c.stats.RPApplied++
		return v
	}
	c.miss(a, OpRP)
	if c.bus.RemoteHolder(c.pe, a) {
		res := c.bus.Fetch(c.pe, a, true, false, false)
		if res.LockHit {
			c.stats.BusyWaits++
			res = c.bus.FetchForced(c.pe, a, true, false)
		}
		c.stats.RPApplied++
		if c.noData {
			return 0
		}
		return res.Data[a&c.offMask]
	}
	// Memory-resident block: a plain read (the paper defines the purge
	// behaviour only for hits and remote suppliers).
	c.stats.RPDegraded++
	f := c.fetchInto(a, false)
	return c.loadWord(f, a)
}

// ReadInvalidate implements RI per Section 3.2(4): a read that takes the
// block exclusively when it is supplied by another cache, so that the
// rewrite that immediately follows needs no invalidate bus command.
func (c *Cache) ReadInvalidate(a word.Addr) word.Word {
	area := c.countRef(a, OpRI)
	return c.readInvalidate(a, area)
}

func (c *Cache) readInvalidate(a word.Addr, area mem.Area) word.Word {
	if c.isWT {
		c.stats.RIDegraded++
		return c.readInternal(a, OpRI)
	}
	if !c.cfg.Options.Enabled(area, OptRI) {
		c.stats.RIDegraded++
		return c.readInternal(a, OpRI)
	}
	if c.lookup(a) >= 0 {
		c.stats.RIDegraded++
		return c.readInternal(a, OpRI)
	}
	c.miss(a, OpRI)
	if c.bus.RemoteHolder(c.pe, a) {
		c.stats.RIApplied++
		f := c.fetchInto(a, true)
		return c.loadWord(f, a)
	}
	// Memory supplies with no sharers: the plain fetch already grants
	// exclusivity (EC), so RI adds nothing.
	c.stats.RIDegraded++
	f := c.fetchInto(a, false)
	return c.loadWord(f, a)
}

// LockRead implements LR per Section 3.1/3.3. On a hit to an exclusive
// block no bus command is needed (the no-cost case Table 5 measures).
// Otherwise LK rides with I (shared hit) or FI (miss); if a remote lock
// directory answers LH, ok is false: the caller must drop any locks it
// holds and retry after the machine unblocks this PE on the UL broadcast.
func (c *Cache) LockRead(a word.Addr) (word.Word, bool) {
	c.countRef(a, OpLR)
	return c.lockRead(a)
}

func (c *Cache) lockRead(a word.Addr) (word.Word, bool) {
	if c.dir.held(a) {
		panic(fmt.Sprintf("cache: PE %d re-locking %#x", c.pe, a))
	}
	if f := c.lookup(a); f >= 0 {
		c.stats.Hits[OpLR]++
		c.touch(f)
		if c.states[f].Exclusive() {
			// No other cache can hold the block, hence no other PE can
			// hold a lock on it: acquire with zero bus cycles.
			c.stats.LRHitExclusive++
			c.acquireLock(a)
			return c.loadWord(f, a), true
		}
		// Shared hit: LK + I to take ownership (locks stay
		// invalidate-based even under the write-update protocols — an
		// update broadcast cannot grant the exclusivity a lock needs).
		// The block upgrades to an exclusive state unless a remote lock
		// on another of its words forbids exclusivity. If the I killed a
		// remote modified copy (this clean S copy was supplied by a
		// dirty owner), this cache now holds the only copy of that data
		// and must take over write-back ownership — upgrading to EC here
		// would silently revert the block to stale memory on eviction.
		// Found by the internal/check differential fuzzer.
		ok, dirtyKilled := c.bus.Invalidate(c.pe, a, true)
		if !ok {
			c.beginBusyWait(a)
			return 0, false
		}
		locked := c.bus.RemoteLockInBlock(c.pe, a)
		if st := c.proto.LockUpgradeState(c.states[f], dirtyKilled, locked); st != c.states[f] {
			c.setState(f, st, probe.ReasonLock)
		}
		c.acquireLock(a)
		return c.loadWord(f, a), true
	}
	c.miss(a, OpLR)
	victim := c.victimFor(a)
	vdirty := c.states[victim].Dirty()
	res := c.bus.Fetch(c.pe, a, true, vdirty, true)
	if res.LockHit {
		c.beginBusyWait(a)
		return 0, false
	}
	c.evictHidden(victim)
	copy(c.frameData(victim), res.Data)
	// res.Shared here means a remote lock elsewhere in the block denied
	// exclusivity; the install states are exactly the invalidating-fetch
	// grant states.
	st := c.proto.FetchState(true, res.FromCache, res.SupplierDirty, res.Shared)
	c.install(victim, c.blockBase(a), st, probe.ReasonLock)
	c.touch(victim)
	c.acquireLock(a)
	return c.loadWord(victim, a), true
}

// acquireLock registers a lock on a and updates the bus lock filter.
func (c *Cache) acquireLock(a word.Addr) {
	c.dir.acquire(a)
	c.bus.LockAcquired(c.pe)
	if c.probe != nil {
		c.probe.Emit(probe.Event{
			Kind: probe.KindLockAcquire, Cycle: c.bus.ProbeClock(), PE: int16(c.pe), Addr: a,
		})
	}
}

func (c *Cache) beginBusyWait(a word.Addr) {
	c.stats.BusyWaits++
	c.blocked = true
	c.blockedOn = a
	if c.probe != nil {
		c.probe.Emit(probe.Event{
			Kind: probe.KindLockSpin, Cycle: c.bus.ProbeClock(), PE: int16(c.pe), Addr: a,
		})
	}
}

// UnlockWrite implements UW: store the word and release the lock. The UL
// broadcast is issued only when another PE is waiting (LWAIT), which is
// the bandwidth optimization Table 5's bottom row measures.
func (c *Cache) UnlockWrite(a word.Addr, w word.Word) {
	c.countRef(a, OpUW)
	c.writeInternal(a, w, OpUW)
	c.releaseLock(a)
}

// Unlock implements U: release without writing.
func (c *Cache) Unlock(a word.Addr) {
	c.countRef(a, OpU)
	c.releaseLock(a)
}

// Apply performs op at a with the address's area class already computed
// (callers must pass exactly what c's areaOf would return — the packed
// pre-decoded replay computes it once per trace). It behaves identically
// to the corresponding Accessor method with the written value 0 and the
// read value discarded, which is precisely what trace replay does. ok is
// false only when an LR blocked on a remote lock.
func (c *Cache) Apply(op Op, a word.Addr, area mem.Area) (ok bool) {
	c.countRefIn(a, area, op)
	switch op {
	case OpR:
		c.readInternal(a, OpR)
	case OpW:
		c.writeInternal(a, 0, OpW)
	case OpLR:
		_, ok := c.lockRead(a)
		return ok
	case OpUW:
		c.writeInternal(a, 0, OpUW)
		c.releaseLock(a)
	case OpU:
		c.releaseLock(a)
	case OpDW:
		c.directWrite(a, 0, area)
	case OpER:
		c.exclusiveRead(a, area)
	case OpRP:
		c.readPurge(a, area)
	case OpRI:
		c.readInvalidate(a, area)
	default:
		panic(fmt.Sprintf("cache: Apply: unknown op %d", op))
	}
	return true
}

func (c *Cache) releaseLock(a word.Addr) {
	hadWaiter := c.dir.release(a)
	c.bus.LockReleased(c.pe)
	if c.probe != nil {
		var waiter uint64
		if hadWaiter {
			waiter = 1
		}
		c.probe.Emit(probe.Event{
			Kind: probe.KindLockRelease, Cycle: c.bus.ProbeClock(), PE: int16(c.pe),
			Addr: a, Arg: waiter,
		})
	}
	if hadWaiter {
		c.stats.UnlockWaiter++
		c.bus.Unlock(c.pe, a)
	} else {
		c.stats.UnlockNoWaiter++
	}
}

// HeldLock reports whether this PE currently holds a lock on a (used by
// runtime assertions and tests).
func (c *Cache) HeldLock(a word.Addr) bool { return c.dir.held(a) }

// LocksInUse counts currently held locks.
func (c *Cache) LocksInUse() int { return c.dir.inUse() }

// --- bus.Snooper ---

// SnoopFetch implements bus.Snooper. The protocol hooks decide whether
// this holder supplies the data (MOESI clean holders assert H but defer
// to memory), whether the supply is simultaneously copied back to shared
// memory (Illinois), what the holder's next state is, and whether the
// requester must take over write-back ownership (dirty).
func (c *Cache) SnoopFetch(a word.Addr, inval bool) (data []word.Word, held, supplies, dirty, retained bool) {
	f := c.lookup(a)
	if f < 0 {
		return nil, false, false, false, false
	}
	data = c.frameData(f)
	wasDirty := c.states[f].Dirty()
	supplies = wasDirty || c.proto.CleanSupplies()
	if inval {
		reportDirty, copyBack := c.proto.SnoopInvalTransfer(wasDirty)
		if copyBack {
			c.bus.MemoryWriteBack(c.bases[f], data)
		}
		c.drop(f, probe.ReasonSnoopInval)
		c.stats.Invalidations++
		return data, true, supplies, reportDirty, false
	}
	st, copyBack, reportDirty := c.proto.SnoopShareState(c.states[f])
	if copyBack {
		c.bus.MemoryWriteBack(c.bases[f], data)
	}
	if st != c.states[f] {
		c.setState(f, st, probe.ReasonSnoopShare)
	}
	return data, true, supplies, reportDirty, true
}

// SnoopUpdate implements bus.Snooper: a remote writer's UP broadcast
// carrying one word of a block this cache may hold. A holder stores the
// word in place (the lost-update hazard Faults.SkipSnoopUpdate models
// dropping) and normally retains its copy; under the adaptive protocol a
// copy that has received updLimit consecutive broadcasts with no local
// touch looks migratory and is self-invalidated instead, letting the
// writer settle into an exclusive state.
func (c *Cache) SnoopUpdate(a word.Addr, w word.Word) (held, retained bool) {
	f := c.lookup(a)
	if f < 0 {
		return false, false
	}
	c.stats.UpdatesReceived++
	if !Faults.SkipSnoopUpdate {
		c.storeWord(f, a, w)
	}
	if c.states[f].Dirty() {
		// The broadcasting writer becomes the block's dirty owner; this
		// previous owner's copy — now identical to the writer's —
		// downgrades to plain shared, keeping write-back ownership
		// unique (Dragon's Sm→Sc on a snooped update).
		c.setState(f, S, probe.ReasonSnoopShare)
	}
	if c.updLimit > 0 {
		c.updCounts[f]++
		if int(c.updCounts[f]) >= c.updLimit {
			c.stats.AdaptiveDrops++
			c.drop(f, probe.ReasonAdaptiveDrop)
			return true, false
		}
	}
	return true, true
}

// SnoopInvalidate implements bus.Snooper. It reports whether the
// discarded copy was modified: the requester's copy holds the same base
// content (it was supplied from this one), so the data itself survives,
// but the requester must take over write-back ownership or memory never
// sees it — see the dirtyKilled handling in writeInternal and LockRead.
func (c *Cache) SnoopInvalidate(a word.Addr) bool {
	if Faults.SkipSnoopInvalidate {
		return false
	}
	f := c.lookup(a)
	if f < 0 {
		return false
	}
	dirty := c.states[f].Dirty()
	c.drop(f, probe.ReasonSnoopInval)
	c.stats.Invalidations++
	return dirty
}

// Holds implements bus.Snooper.
func (c *Cache) Holds(a word.Addr) bool { return c.lookup(a) >= 0 }

// --- bus.LockUnit ---

// CheckLocked implements bus.LockUnit.
func (c *Cache) CheckLocked(a word.Addr) bool { return c.dir.snoop(a) }

// LocksInBlock implements bus.LockUnit.
func (c *Cache) LocksInBlock(base word.Addr, words int) bool {
	return c.dir.locksInBlock(base, words)
}

// ObserveUnlock implements bus.LockUnit.
func (c *Cache) ObserveUnlock(a word.Addr) {
	if c.blocked && c.blockedOn == a {
		c.blocked = false
	}
}

// --- maintenance ---

// Flush writes every dirty block back to memory and invalidates the whole
// cache. It is used around garbage collection and for end-of-run
// verification; it costs no simulated cycles.
func (c *Cache) Flush() {
	for f := range c.states {
		if c.states[f].Dirty() && !c.noData {
			c.bus.Memory().WriteBlock(c.bases[f], c.frameData(f))
		}
		c.drop(f, probe.ReasonFlush)
	}
}

// StateOf returns the state of the block containing a (INV when absent).
// Exposed for tests and the protocol-walkthrough example.
func (c *Cache) StateOf(a word.Addr) State {
	if f := c.lookup(a); f >= 0 {
		return c.states[f]
	}
	return INV
}

// PeekWord returns the cached copy of a, for tests; ok is false on miss.
// Stats-only caches report zero for every resident word.
func (c *Cache) PeekWord(a word.Addr) (word.Word, bool) {
	if f := c.lookup(a); f >= 0 {
		return c.loadWord(f, a), true
	}
	return 0, false
}
