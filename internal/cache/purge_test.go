package cache

import (
	"math/rand"
	"testing"

	"pimcache/internal/bus"
	"pimcache/internal/kl1/word"
	"pimcache/internal/mem"
)

// TestRandomizedCoherenceWithPurges extends the randomized protocol test
// to the destructive commands (ER/RP) using the goal area's
// write-once/read-once discipline: per-record lifecycles of
// DW-create -> ER/RP-consume -> recycle, interleaved across PEs, with the
// inter-cache coherence invariants checked throughout. The shadow model
// tracks which records are "live" (written, unread): live records must
// read back their written values; consumed records are dead until
// rewritten.
func TestRandomizedCoherenceWithPurges(t *testing.T) {
	const (
		pes     = 4
		records = 24
		recSize = 8 // two 4-word blocks
		steps   = 8000
	)
	m := mem.New(mem.Layout{InstWords: 64, HeapWords: 256,
		GoalWords: records * recSize, SuspWords: 64, CommWords: 64})
	b := bus.New(bus.Config{Timing: bus.DefaultTiming(), BlockWords: 4}, m)
	caches := make([]*Cache, pes)
	for i := range caches {
		caches[i] = New(Config{
			SizeWords: 64, BlockWords: 4, Ways: 4, LockEntries: 4,
			Options: OptionsGoal(), Protocol: ProtocolPIM, VerifyDW: true,
		}, i, b)
	}
	base := m.Bounds().GoalBase
	rng := rand.New(rand.NewSource(11))

	type recState struct {
		live   bool
		values [recSize]int64
	}
	state := make([]recState, records)
	recAddr := func(i int) word.Addr { return base + word.Addr(i*recSize) }

	// consume reads a record with the ER/RP discipline (RP on a final
	// word that is not block-last; here recSize is a block multiple, so
	// every block's last word goes through ER's purge case).
	consume := func(c *Cache, rec int, upto int) {
		a := recAddr(rec)
		for i := 0; i < upto; i++ {
			w := a + word.Addr(i)
			var got word.Word
			if i == upto-1 && w&3 != 3 {
				got = c.ReadPurge(w)
			} else {
				got = c.ExclusiveRead(w)
			}
			if want := state[rec].values[i]; got.IntVal() != want {
				t.Fatalf("record %d word %d: read %v, want %d", rec, i, got, want)
			}
		}
	}

	for step := 0; step < steps; step++ {
		pe := rng.Intn(pes)
		c := caches[pe]
		rec := rng.Intn(records)
		if !state[rec].live {
			// Produce: DW the whole record.
			a := recAddr(rec)
			for i := 0; i < recSize; i++ {
				v := int64(step*100 + i)
				c.DirectWrite(a+word.Addr(i), word.Int(v))
				state[rec].values[i] = v
			}
			state[rec].live = true
		} else {
			// Consume fully (any PE: models migration).
			consume(c, rec, recSize)
			state[rec].live = false
		}
		if step%13 == 0 {
			for r := 0; r < records; r++ {
				for blk := word.Addr(0); blk < recSize; blk += 4 {
					checkCoherence(t, m, caches, recAddr(r)+blk, 4)
				}
			}
		}
	}
	// Drain: every live record must still read back correctly.
	for rec := range state {
		if state[rec].live {
			consume(caches[rng.Intn(pes)], rec, recSize)
		}
	}
}

// TestPartialConsumeWithRP covers the paper's RP rationale: a reading
// area that is NOT a multiple of the block size ends with RP, purging the
// partially-read block, so the record can be recycled with DW.
func TestPartialConsumeWithRP(t *testing.T) {
	m := mem.New(mem.Layout{InstWords: 64, HeapWords: 256, GoalWords: 64, SuspWords: 32, CommWords: 32})
	b := bus.New(bus.Config{Timing: bus.DefaultTiming(), BlockWords: 4}, m)
	c0 := New(Config{SizeWords: 64, BlockWords: 4, Ways: 4, LockEntries: 2,
		Options: OptionsGoal(), VerifyDW: true}, 0, b)
	c1 := New(Config{SizeWords: 64, BlockWords: 4, Ways: 4, LockEntries: 2,
		Options: OptionsGoal(), VerifyDW: true}, 1, b)
	rec := m.Bounds().GoalBase

	for round := 0; round < 6; round++ {
		producer, consumer := c0, c1
		if round%2 == 1 {
			producer, consumer = c1, c0
		}
		// Write 6 of 8 words (1.5 blocks).
		for i := 0; i < 6; i++ {
			producer.DirectWrite(rec+word.Addr(i), word.Int(int64(round*10+i)))
		}
		// Read 6 words: words 0..4 with ER (word 3 purges block 0), word
		// 5 with RP (purges block 1 mid-block).
		for i := 0; i < 6; i++ {
			a := rec + word.Addr(i)
			var got word.Word
			if i == 5 {
				got = consumer.ReadPurge(a)
			} else {
				got = consumer.ExclusiveRead(a)
			}
			if got.IntVal() != int64(round*10+i) {
				t.Fatalf("round %d word %d: %v", round, i, got)
			}
		}
		// Both blocks must be gone from both caches so the next round's
		// DW is legal (VerifyDW enforces it).
		for _, c := range []*Cache{c0, c1} {
			if c.Holds(rec) || c.Holds(rec+4) {
				t.Fatalf("round %d: record block still cached", round)
			}
		}
	}
}
