package cache

import (
	"math/rand"
	"testing"

	"pimcache/internal/bus"
	"pimcache/internal/kl1/word"
	"pimcache/internal/mem"
)

// checkCoherence verifies the protocol's global invariants over a block:
//   - at most one cache holds the block in an exclusive state, and then no
//     other cache holds it at all;
//   - at most one cache holds a modified (dirty) copy;
//   - all valid copies contain identical data;
//   - if no dirty copy exists, every copy matches shared memory.
func checkCoherence(t *testing.T, m *mem.Memory, caches []*Cache, base word.Addr, bw int) {
	t.Helper()
	var exclusive, dirty, holders int
	var ref []word.Word
	for _, c := range caches {
		st := c.StateOf(base)
		if !st.Valid() {
			continue
		}
		holders++
		if st.Exclusive() {
			exclusive++
		}
		if st.Dirty() {
			dirty++
		}
		data := make([]word.Word, bw)
		for i := 0; i < bw; i++ {
			w, _ := c.PeekWord(base + word.Addr(i))
			data[i] = w
		}
		if ref == nil {
			ref = data
		} else {
			for i := range ref {
				if ref[i] != data[i] {
					t.Fatalf("block %#x: divergent copies at word %d: %v vs %v",
						base, i, ref[i], data[i])
				}
			}
		}
	}
	if exclusive > 0 && holders > 1 {
		t.Fatalf("block %#x: exclusive copy coexists with %d holders", base, holders)
	}
	if dirty > 1 {
		t.Fatalf("block %#x: %d dirty copies", base, dirty)
	}
	if dirty == 0 && ref != nil {
		for i := range ref {
			if got := m.Read(base + word.Addr(i)); got != ref[i] {
				t.Fatalf("block %#x word %d: clean copies (%v) disagree with memory (%v)",
					base, i, ref[i], got)
			}
		}
	}
}

// TestRandomizedCoherence drives four caches with a random mix of reads,
// writes, direct writes, read-invalidates and lock/unlock pairs over a
// small address range, checking the shadow model and the coherence
// invariants after every operation. ER/RP are excluded because their
// deliberate dirty-purge breaks the shadow model (covered by targeted
// tests instead).
func TestRandomizedCoherence(t *testing.T) {
	const (
		pes   = 4
		steps = 6000
		span  = 96 // words of heap exercised: 24 blocks over 4-set caches
	)
	m := mem.New(mem.Layout{InstWords: 64, HeapWords: 4096, GoalWords: 256, SuspWords: 64, CommWords: 64})
	b := bus.New(bus.Config{Timing: bus.DefaultTiming(), BlockWords: 4}, m)
	caches := make([]*Cache, pes)
	opts := OptionsAll()
	opts.PerArea[mem.AreaHeap] |= OptRI
	for i := range caches {
		caches[i] = New(Config{
			SizeWords: 64, BlockWords: 4, Ways: 4, LockEntries: 4,
			Options: opts, Protocol: ProtocolPIM,
		}, i, b)
	}
	base := m.Bounds().HeapBase
	shadow := make(map[word.Addr]word.Word)
	rng := rand.New(rand.NewSource(9))
	freshTop := base + span // DW is only legal on fresh (never-shared) blocks

	for step := 0; step < steps; step++ {
		pe := rng.Intn(pes)
		c := caches[pe]
		a := base + word.Addr(rng.Intn(span))
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // read
			got := c.Read(a)
			if want, ok := shadow[a]; ok && got != want {
				t.Fatalf("step %d: PE%d read %#x = %v, want %v", step, pe, a, got, want)
			}
		case 4, 5, 6: // write
			w := word.Int(int64(step))
			c.Write(a, w)
			shadow[a] = w
		case 7: // read-invalidate then rewrite
			got := c.ReadInvalidate(a)
			if want, ok := shadow[a]; ok && got != want {
				t.Fatalf("step %d: PE%d RI %#x = %v, want %v", step, pe, a, got, want)
			}
			w := word.Int(int64(step))
			c.Write(a, w)
			shadow[a] = w
		case 8: // lock / unlock-write pair (conflict-free: same PE)
			w, ok := c.LockRead(a)
			if !ok {
				t.Fatalf("step %d: single-threaded LR blocked", step)
			}
			if want, seen := shadow[a]; seen && w != want {
				t.Fatalf("step %d: LR %#x = %v, want %v", step, a, w, want)
			}
			nw := word.Int(int64(-step - 1))
			c.UnlockWrite(a, nw)
			shadow[a] = nw
		case 9: // direct write to a genuinely fresh block
			fa := freshTop
			freshTop += 4
			w := word.Int(int64(step))
			c.DirectWrite(fa, w)
			shadow[fa] = w
		}
		if step%17 == 0 {
			for blk := word.Addr(0); blk < span; blk += 4 {
				checkCoherence(t, m, caches, base+blk, 4)
			}
		}
	}
	// Final full sweep: every shadowed word must be readable with its
	// last-written value from every PE.
	for a, want := range shadow {
		if got := caches[0].Read(a); got != want {
			t.Fatalf("final read %#x = %v, want %v", a, got, want)
		}
	}
	for _, c := range caches {
		if c.LocksInUse() != 0 {
			t.Error("locks leaked")
		}
	}
}

// TestRandomizedCoherenceIllinois runs the same workload under the
// Illinois baseline.
func TestRandomizedCoherenceIllinois(t *testing.T) {
	const pes = 3
	m := mem.New(mem.Layout{InstWords: 64, HeapWords: 4096, GoalWords: 256, SuspWords: 64, CommWords: 64})
	b := bus.New(bus.Config{Timing: bus.DefaultTiming(), BlockWords: 4}, m)
	caches := make([]*Cache, pes)
	for i := range caches {
		caches[i] = New(Config{
			SizeWords: 64, BlockWords: 4, Ways: 4, LockEntries: 4,
			Protocol: ProtocolIllinois,
		}, i, b)
	}
	base := m.Bounds().HeapBase
	shadow := make(map[word.Addr]word.Word)
	rng := rand.New(rand.NewSource(4))
	for step := 0; step < 4000; step++ {
		pe := rng.Intn(pes)
		a := base + word.Addr(rng.Intn(64))
		if rng.Intn(2) == 0 {
			got := caches[pe].Read(a)
			if want, ok := shadow[a]; ok && got != want {
				t.Fatalf("step %d: read %#x = %v, want %v", step, a, got, want)
			}
		} else {
			w := word.Int(int64(step))
			caches[pe].Write(a, w)
			shadow[a] = w
		}
		if step%23 == 0 {
			for blk := word.Addr(0); blk < 64; blk += 4 {
				checkCoherence(t, m, caches, base+blk, 4)
			}
		}
	}
	// Under Illinois, SM must never appear.
	for _, c := range caches {
		for a := base; a < base+64; a++ {
			if c.StateOf(a) == SM {
				t.Fatal("Illinois cache entered SM")
			}
		}
	}
}
