// Command pimprof replays a recorded memory-reference trace (see
// pimtrace) against a cache configuration with the probe layer
// attached, turning the replay into telemetry: a Perfetto timeline,
// per-interval metrics, and per-block hot-spot rankings.
//
// Usage:
//
//	pimprof -events tri.json tri.trc              # Perfetto timeline
//	pimprof -intervals 1000 tri.trc               # interval metrics table
//	pimprof -intervals 1000 -csv iv.csv tri.trc   # ... and a CSV for plotting
//	pimprof -hotspots 10 tri.trc                  # most contended blocks
//	pimprof -block 8 -ways 2 -events x.json tri.trc
//
// Because the memory-system event stream of a replay is identical to
// that of the live run the trace was recorded from (scheduler events
// excepted), pimprof profiles any configuration against a workload
// recorded once — no re-emulation.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pimcache/internal/bench"
	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/cliutil"
	"pimcache/internal/obs"
	"pimcache/internal/probe"
	"pimcache/internal/trace"
)

func main() {
	var (
		size      = flag.Int("cache", 4<<10, "cache size in data words")
		block     = flag.Int("block", 4, "cache block size in words")
		ways      = flag.Int("ways", 4, "set associativity")
		optsName  = flag.String("opts", "all", "optimized commands: none, heap, goal, comm, all")
		protocol  = flag.String("protocol", "pim", cliutil.ProtocolFlagHelp())
		width     = flag.Int("buswidth", 1, "bus width in words")
		events    = flag.String("events", "", "write a Perfetto trace-event JSON timeline to this file")
		intervals = flag.Uint64("intervals", 0, "print interval metrics every N simulated cycles")
		csvOut    = flag.String("csv", "", "write the interval metrics as CSV to this file (needs -intervals)")
		hotspots  = flag.Int("hotspots", 0, "print the top-K most contended blocks")
		statsOnly = flag.Bool("statsonly", false, "replay without a data plane (identical statistics and events, less memory and time)")
		manifest  = flag.String("manifest", "", "write a structured run manifest (JSON) to this file")
		scenario  = flag.String("scenario", "", "scenario label recorded in the manifest (pimreport baseline key)")
		heartbeat = flag.Duration("heartbeat", 0, "report replay progress on stderr at this interval (0 disables)")
	)
	prof := cliutil.ProfileFlags(flag.CommandLine)
	run := cliutil.TimeoutFlags(flag.CommandLine)
	flag.Parse()

	if err := cliutil.ValidateBlock(*block); err != nil {
		fatal2(err)
	}
	if flag.NArg() != 1 {
		fatal2(fmt.Errorf("one trace file expected (record one with pimtrace)"))
	}
	if *csvOut != "" && *intervals == 0 {
		fatal2(fmt.Errorf("-csv needs -intervals to set the window width"))
	}
	if *events == "" && *intervals == 0 && *hotspots == 0 {
		fatal2(fmt.Errorf("nothing to do: pass -events, -intervals, or -hotspots"))
	}

	ccfg, err := cliutil.BuildCacheConfig(*size, *block, *ways, *optsName, *protocol)
	if err != nil {
		fatal2(err)
	}
	ccfg.StatsOnly = *statsOnly
	stopProfiles, err = cliutil.StartProfiles(*prof)
	if err != nil {
		fatal2(err)
	}
	man := obs.NewManifest("pimprof")
	man.Scenario = *scenario
	ph := obs.NewPhases()
	reg := obs.NewRegistry()
	wantManifest := *manifest != ""
	ctx, stopSignals := run.Context()
	defer stopSignals()
	cliutil.AbortOnDone(ctx, 30*time.Second, os.Stderr)

	// The trace streams through the validating decoder during the replay
	// itself — the reference slice is never materialized, so multi-
	// gigabyte traces profile in constant memory.
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	cr := &obs.CountingReader{R: f}
	digest := sha256.New()
	var src io.Reader = cr
	if wantManifest {
		src = io.TeeReader(cr, digest)
	}
	d, err := trace.NewReader(src)
	if err != nil {
		fatal(err)
	}

	var sinks []probe.Sink
	var pf *probe.Perfetto
	var eventsFile *os.File
	if *events != "" {
		ef, err := os.Create(*events)
		if err != nil {
			fatal(err)
		}
		eventsFile = ef
		pf = probe.NewPerfetto(ef, d.PEs())
		sinks = append(sinks, pf)
	}
	var iv *probe.Intervals
	if *intervals > 0 {
		iv = probe.NewIntervals(*intervals)
		sinks = append(sinks, iv)
	}
	var hs *probe.HotSpots
	if *hotspots > 0 {
		hs = probe.NewHotSpots(ccfg.BlockWords, d.Layout().Bounds().AreaOf)
		sinks = append(sinks, hs)
	}

	timing := bus.Timing{MemCycles: 8, WidthWords: *width}
	hb := obs.NewHeartbeat(os.Stderr, "replay", *heartbeat, d.Len()).Start()
	wd := run.Watchdog("pimprof replay "+flag.Arg(0), ph)
	defer wd.Stop()
	d.SetProgress(func(n int) {
		hb.Add(uint64(n))
		hb.SetBytes(cr.Bytes())
		wd.Pet()
	})
	t0 := time.Now()
	var bs bus.Stats
	var cs cache.Stats
	var refs int
	err = ph.Time("replay/probed", func() error {
		out, err := bench.ReplayReaderResumable(ctx, d, ccfg, timing, probe.Multi(sinks...), bench.CheckpointOptions{}, nil)
		if err != nil {
			return err
		}
		bs, cs, refs = out.Bus, out.Cache, int(out.Refs)
		return nil
	})
	workSeconds := time.Since(t0).Seconds()
	hb.Stop()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replayed %d references (%d PEs): %d bus cycles, miss ratio %.4f\n",
		refs, d.PEs(), bs.TotalCycles, cs.MissRatio())

	if iv != nil {
		fmt.Println(iv.Table())
		if *csvOut != "" {
			cf, err := os.Create(*csvOut)
			if err != nil {
				fatal(err)
			}
			if err := iv.WriteCSV(cf); err != nil {
				cf.Close()
				fatal(err)
			}
			if err := cf.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *csvOut)
		}
	}
	if hs != nil {
		for _, t := range hs.Table(*hotspots) {
			fmt.Println(t)
		}
	}
	if pf != nil {
		if err := pf.Close(); err != nil {
			fatal(fmt.Errorf("writing %s: %w", *events, err))
		}
		if err := eventsFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s — open it at https://ui.perfetto.dev\n", *events)
	}
	if err := stopProfiles(); err != nil {
		fatal(err)
	}
	if wantManifest {
		man.Config = obs.NewRunConfig(d.PEs(), ccfg, timing, *optsName, "probed", 0)
		man.Trace = &obs.TraceInfo{
			SHA256:      obs.HexDigest(digest.Sum(nil)),
			Refs:        uint64(refs),
			PEs:         d.PEs(),
			LayoutWords: uint64(d.Layout().TotalWords()),
		}
		man.Stats = obs.NewRunStats(uint64(refs), cs, bs)
		man.Timing.TraceFile = flag.Arg(0)
		man.Timing.Profiles = prof.Paths()
		man.FinishTiming(ph, reg, uint64(refs), workSeconds)
		if err := man.WriteFile(*manifest); err != nil {
			fatal(err)
		}
	}
}

// stopProfiles finalizes -cpuprofile/-memprofile; fatal exits go through
// it too, so an aborted replay still leaves a usable CPU profile.
var stopProfiles = func() error { return nil }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pimprof:", err)
	stopProfiles()
	os.Exit(1)
}

func fatal2(err error) {
	fmt.Fprintln(os.Stderr, "pimprof:", err)
	os.Exit(2)
}
