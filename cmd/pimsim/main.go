// Command pimsim runs KL1 benchmarks on the simulated PIM cluster under
// one cache configuration and prints the full statistics: the workload
// summary, references by area and operation, bus cycles by area and
// access pattern, cache hit ratios, and lock-protocol effectiveness.
//
// Usage:
//
//	pimsim -bench Tri                      # paper base configuration
//	pimsim -bench Puzzle -pes 4 -opts none
//	pimsim -bench Semi -scale 128 -cache 8192 -block 8 -ways 2
//	pimsim -bench Pascal -protocol illinois
//	pimsim -bench Tri,Semi,Puzzle,Pascal   # several, simulated in parallel
//	pimsim -bench Tri -events tri.json -intervals 1000 -hotspots 10
//
// With a comma-separated -bench list the simulations fan out over -jobs
// worker goroutines (every run owns a private simulated machine); the
// reports print in list order regardless of completion order.
//
// The telemetry flags attach the probe layer (package probe) to the
// run: -events writes a Perfetto/Chrome trace-event JSON timeline
// (open it at ui.perfetto.dev), -intervals prints per-window bus
// utilization / miss ratio / lock-wait metrics, and -hotspots prints
// the top-K most contended blocks. They require a single -bench entry
// (one machine, one timeline).
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"pimcache/internal/bench"
	"pimcache/internal/bench/programs"
	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/cliutil"
	"pimcache/internal/mem"
	"pimcache/internal/obs"
	"pimcache/internal/par"
	"pimcache/internal/probe"
	"pimcache/internal/stats"
)

func main() {
	var (
		benchList = flag.String("bench", "Tri", "comma-separated benchmarks: Tri, Semi, Puzzle, Pascal, BUP, PuzzleVec")
		scale     = flag.Int("scale", 0, "benchmark scale (0 = default)")
		pes       = flag.Int("pes", 8, "number of processing elements")
		size      = flag.Int("cache", 4<<10, "cache size in data words")
		block     = flag.Int("block", 4, "cache block size in words")
		ways      = flag.Int("ways", 4, "set associativity")
		optsName  = flag.String("opts", "all", "optimized commands: none, heap, goal, comm, all")
		protocol  = flag.String("protocol", "pim", cliutil.ProtocolFlagHelp())
		width     = flag.Int("buswidth", 1, "bus width in words")
		jobs      = flag.Int("jobs", 0, "concurrent simulations (0 = all CPU cores)")
		events    = flag.String("events", "", "write a Perfetto trace-event JSON timeline to this file")
		intervals = flag.Uint64("intervals", 0, "print interval metrics every N simulated cycles")
		hotspots  = flag.Int("hotspots", 0, "print the top-K most contended blocks")
		manifest  = flag.String("manifest", "", "write a structured run manifest (JSON) to this file (single -bench entry)")
		scenario  = flag.String("scenario", "", "scenario label recorded in the manifest (pimreport baseline key)")
	)
	run := cliutil.TimeoutFlags(flag.CommandLine)
	flag.Parse()
	ctx, stopSignals := run.Context()
	defer stopSignals()
	cliutil.AbortOnDone(ctx, 30*time.Second, os.Stderr)

	man := obs.NewManifest("pimsim")
	man.Scenario = *scenario
	ph := obs.NewPhases()

	if err := cliutil.FirstError(
		cliutil.ValidatePEs(*pes),
		cliutil.ValidateJobs(*jobs),
		cliutil.ValidateBlock(*block),
	); err != nil {
		fmt.Fprintln(os.Stderr, "pimsim:", err)
		os.Exit(2)
	}

	var benches []programs.Benchmark
	for _, name := range strings.Split(*benchList, ",") {
		b, ok := programs.ByName(strings.TrimSpace(name))
		if !ok {
			fmt.Fprintf(os.Stderr, "pimsim: unknown benchmark %q\n", name)
			os.Exit(2)
		}
		benches = append(benches, b)
	}
	ccfg, cfgErr := cliutil.BuildCacheConfig(*size, *block, *ways, *optsName, *protocol)
	if cfgErr != nil {
		fmt.Fprintln(os.Stderr, "pimsim:", cfgErr)
		os.Exit(2)
	}

	if *manifest != "" && len(benches) > 1 {
		fmt.Fprintln(os.Stderr, "pimsim: -manifest needs a single -bench entry (one machine, one manifest)")
		os.Exit(2)
	}

	timing := bus.Timing{MemCycles: 8, WidthWords: *width}
	probing := *events != "" || *intervals > 0 || *hotspots > 0
	if probing {
		if len(benches) > 1 {
			fmt.Fprintln(os.Stderr, "pimsim: -events/-intervals/-hotspots need a single -bench entry (one machine, one timeline)")
			os.Exit(2)
		}
		rd, err := runProbed(benches[0], *scale, *pes, ccfg, timing,
			*events, *intervals, *hotspots, ph)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pimsim:", err)
			os.Exit(1)
		}
		writeManifest(man, *manifest, rd, ccfg, timing, *optsName, ph)
		return
	}

	// Fan the runs out, but buffer each report and print in list order.
	reports := make([]strings.Builder, len(benches))
	results := make([]*bench.RunData, len(benches))
	pool := par.NewCtx(ctx, *jobs)
	for i, b := range benches {
		i, b := i, b
		pool.Go(func() error {
			runScale := *scale
			if runScale == 0 {
				runScale = b.DefaultScale
			}
			sp := ph.Start("live/" + b.Name)
			rd, _, err := bench.RunLiveTiming(b, runScale, *pes, ccfg, timing, false)
			sp.End()
			if err != nil {
				return err
			}
			results[i] = rd
			printReport(&reports[i], b, rd, ccfg)
			return nil
		})
	}
	err := pool.Wait()
	for i := range reports {
		if reports[i].Len() > 0 {
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(reports[i].String())
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimsim:", err)
		os.Exit(1)
	}
	writeManifest(man, *manifest, results[0], ccfg, timing, *optsName, ph)
}

// writeManifest records a single-benchmark run: the configuration, the
// deterministic workload outcome (output digest, reductions, rounds)
// and the full cache/bus statistics. No-op when path is empty.
func writeManifest(man *obs.Manifest, path string, rd *bench.RunData, ccfg cache.Config, timing bus.Timing, optsName string, ph *obs.Phases) {
	if path == "" || rd == nil {
		return
	}
	man.Config = obs.NewRunConfig(rd.PEs, ccfg, timing, optsName, "live", 0)
	out := sha256.Sum256([]byte(rd.Result.Output))
	man.Workload = &obs.Workload{
		Bench:        rd.Bench,
		Scale:        rd.Scale,
		OutputSHA256: obs.HexDigest(out[:]),
		Reductions:   rd.Result.Emu.Reductions,
		Rounds:       rd.Result.Rounds,
	}
	refs := rd.Cache.TotalRefs()
	man.Stats = obs.NewRunStats(refs, rd.Cache, rd.Bus)
	man.FinishTiming(ph, nil, refs, ph.Elapsed().Seconds())
	if err := man.WriteFile(path); err != nil {
		fmt.Fprintln(os.Stderr, "pimsim:", err)
		os.Exit(1)
	}
}

// runProbed executes one benchmark with the probe layer attached,
// prints the usual report plus the requested telemetry tables, and
// writes the Perfetto export.
func runProbed(b programs.Benchmark, scale, pes int, ccfg cache.Config, timing bus.Timing, events string, intervals uint64, hotspots int, ph *obs.Phases) (*bench.RunData, error) {
	runScale := scale
	if runScale == 0 {
		runScale = b.DefaultScale
	}

	var sinks []probe.Sink
	var pf *probe.Perfetto
	var eventsFile *os.File
	if events != "" {
		f, err := os.Create(events)
		if err != nil {
			return nil, err
		}
		eventsFile = f
		pf = probe.NewPerfetto(f, pes)
		sinks = append(sinks, pf)
	}
	var iv *probe.Intervals
	if intervals > 0 {
		iv = probe.NewIntervals(intervals)
		sinks = append(sinks, iv)
	}
	var hs *probe.HotSpots
	if hotspots > 0 {
		hs = probe.NewHotSpots(ccfg.BlockWords, bench.Layout().Bounds().AreaOf)
		sinks = append(sinks, hs)
	}

	sp := ph.Start("live/" + b.Name)
	rd, _, err := bench.RunLiveProbed(b, runScale, pes, ccfg, timing, false, probe.Multi(sinks...))
	sp.End()
	if err != nil {
		return nil, err
	}
	printReport(os.Stdout, b, rd, ccfg)
	if iv != nil {
		fmt.Println(iv.Table())
	}
	if hs != nil {
		for _, t := range hs.Table(hotspots) {
			fmt.Println(t)
		}
	}
	if pf != nil {
		if err := pf.Close(); err != nil {
			return nil, fmt.Errorf("writing %s: %w", events, err)
		}
		if err := eventsFile.Close(); err != nil {
			return nil, err
		}
		fmt.Printf("wrote %s — open it at https://ui.perfetto.dev\n", events)
	}
	return rd, nil
}

func printReport(w io.Writer, b programs.Benchmark, rd *bench.RunData, ccfg cache.Config) {
	res := rd.Result
	fmt.Fprintf(w, "%s (scale %d) on %d PEs — %s\n", rd.Bench, rd.Scale, rd.PEs, b.Description)
	fmt.Fprintf(w, "cache: %d words, %d-word blocks, %d-way, protocol %s\n\n",
		ccfg.SizeWords, ccfg.BlockWords, ccfg.Ways, ccfg.Protocol)

	sum := &stats.Table{Title: "Run summary", Columns: []string{"metric", "value"}}
	sum.AddRow("output", fmt.Sprintf("%q", res.Output))
	sum.AddRow("reductions", fmt.Sprint(res.Emu.Reductions))
	sum.AddRow("suspensions", fmt.Sprint(res.Emu.Suspensions))
	sum.AddRow("resumptions", fmt.Sprint(res.Emu.Resumptions))
	sum.AddRow("goals spawned", fmt.Sprint(res.Emu.Spawns))
	sum.AddRow("goals migrated", fmt.Sprint(res.Emu.GoalsStolen))
	sum.AddRow("instructions", fmt.Sprint(res.Emu.Instructions))
	sum.AddRow("memory references", fmt.Sprint(rd.Cache.TotalRefs()))
	sum.AddRow("machine rounds", fmt.Sprint(res.Rounds))
	fmt.Fprintln(w, sum)

	cs := rd.Cache
	areas := &stats.Table{Title: "Memory references by area and operation",
		Columns: []string{"area", "R", "W", "LR", "UW", "U", "DW", "ER", "RP", "RI", "total"}}
	for a := mem.AreaInst; a <= mem.AreaComm; a++ {
		row := make([]string, 0, 10)
		for op := cache.Op(0); op < cache.NumOps; op++ {
			row = append(row, fmt.Sprint(cs.Refs[a][op]))
		}
		row = append(row, fmt.Sprint(cs.RefsByArea(a)))
		areas.AddRow(a.String(), row...)
	}
	fmt.Fprintln(w, areas)

	bs := rd.Bus
	busT := &stats.Table{Title: "Common bus", Columns: []string{"metric", "value"}}
	busT.AddRow("total cycles", fmt.Sprint(bs.TotalCycles))
	for a := mem.AreaInst; a <= mem.AreaComm; a++ {
		busT.AddRow("cycles in "+a.String(),
			fmt.Sprintf("%d (%.1f%%)", bs.CyclesByArea[a], stats.Pct(bs.CyclesByArea[a], bs.TotalCycles)))
	}
	for p := bus.Pattern(0); p < bus.NumPatterns; p++ {
		busT.AddRow(p.String(),
			fmt.Sprintf("%d ops, %d cycles", bs.CountByPattern[p], bs.CyclesByPattern[p]))
	}
	for c := bus.Command(0); c < bus.NumCommands; c++ {
		busT.AddRow(c.String()+" commands", fmt.Sprint(bs.Commands[c]))
	}
	busT.AddRow("memory-module busy cycles", fmt.Sprint(bs.MemBusyCycles))
	fmt.Fprintln(w, busT)

	ct := &stats.Table{Title: "Cache behaviour", Columns: []string{"metric", "value"}}
	ct.AddRow("miss ratio", fmt.Sprintf("%.4f", cs.MissRatio()))
	ct.AddRow("DW applied/degraded", fmt.Sprintf("%d/%d", cs.DWApplied, cs.DWDegraded))
	ct.AddRow("ER invalidate/purge/degraded", fmt.Sprintf("%d/%d/%d", cs.ERInval, cs.ERPurge, cs.ERDegraded))
	ct.AddRow("RP applied/degraded", fmt.Sprintf("%d/%d", cs.RPApplied, cs.RPDegraded))
	ct.AddRow("RI applied/degraded", fmt.Sprintf("%d/%d", cs.RIApplied, cs.RIDegraded))
	ct.AddRow("dirty blocks purged (dead data)", fmt.Sprint(cs.PurgedDirty))
	ct.AddRow("swap-outs", fmt.Sprint(cs.SwapOuts))
	ct.AddRow("LR hit ratio", fmt.Sprintf("%.3f", stats.Ratio(cs.LRHits(), cs.LRTotal())))
	ct.AddRow("LR hit-to-exclusive", fmt.Sprintf("%.3f", stats.Ratio(cs.LRHitExclusive, cs.LRTotal())))
	ct.AddRow("unlocks with no waiter", fmt.Sprintf("%.3f",
		stats.Ratio(cs.UnlockNoWaiter, cs.UnlockNoWaiter+cs.UnlockWaiter)))
	ct.AddRow("busy waits", fmt.Sprint(cs.BusyWaits))
	fmt.Fprintln(w, ct)

	bal := &stats.Table{Title: "Per-PE balance",
		Columns: []string{"PE", "reductions", "suspensions", "sent", "stolen"}}
	for i, st := range res.PerPE {
		bal.AddRow(fmt.Sprint(i), fmt.Sprint(st.Reductions),
			fmt.Sprint(st.Suspensions), fmt.Sprint(st.GoalsSent), fmt.Sprint(st.GoalsStolen))
	}
	fmt.Fprintln(w, bal)
}
