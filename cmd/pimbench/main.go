// Command pimbench regenerates the paper's evaluation: Tables 1-5,
// Figures 1-3, and the in-text experiments (two-word bus, optimization
// detail, the Illinois comparison).
//
// Usage:
//
//	pimbench                     # everything, paper scales, all cores
//	pimbench -quick              # everything, reduced scales
//	pimbench -table 4            # one table
//	pimbench -figure 2           # one figure
//	pimbench -extra buswidth     # one in-text experiment
//	pimbench -bench Tri          # restrict to one benchmark
//	pimbench -jobs 1             # serial (legacy) evaluation
//
// Live runs and trace replays fan out over -jobs worker goroutines; the
// produced tables are byte-identical for every job count.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pimcache/internal/bench"
	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/cliutil"
	"pimcache/internal/obs"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "use reduced benchmark scales")
		table    = flag.Int("table", 0, "regenerate only table N (1-5)")
		figure   = flag.Int("figure", 0, "regenerate only figure N (1-3)")
		extra    = flag.String("extra", "", "in-text experiment: buswidth, assoc, optdetail, protocols, illinois")
		benches  = flag.String("bench", "", "comma-separated benchmark subset (Tri,Semi,Puzzle,Pascal)")
		verbose  = flag.Bool("v", false, "print progress")
		jobs     = flag.Int("jobs", 0, "concurrent simulations (0 = all CPU cores, 1 = serial)")
		warm     = flag.Bool("warm", false, "share warmed checkpoints among replays with identical configs")
		sOnly    = flag.Bool("statsonly", false, "run replays without a data plane (identical tables, less memory and time)")
		manifest = flag.String("manifest", "", "write a structured run manifest (JSON) to this file")
		scenario = flag.String("scenario", "", "scenario label recorded in the manifest (pimreport baseline key)")
	)
	prof := cliutil.ProfileFlags(flag.CommandLine)
	run := cliutil.TimeoutFlags(flag.CommandLine)
	flag.Parse()
	if err := cliutil.ValidateJobs(*jobs); err != nil {
		fmt.Fprintln(os.Stderr, "pimbench:", err)
		os.Exit(2)
	}
	ctx, stopSignals := run.Context()
	defer stopSignals()
	cliutil.AbortOnDone(ctx, 30*time.Second, os.Stderr)
	stopProfiles, err := cliutil.StartProfiles(*prof)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimbench:", err)
		os.Exit(2)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "pimbench:", err)
		}
	}()

	man := obs.NewManifest("pimbench")
	man.Scenario = *scenario
	ph := obs.NewPhases()
	reg := obs.NewRegistry()

	o := bench.DefaultOptions()
	o.Context = ctx
	o.Quick = *quick
	o.Jobs = *jobs
	o.WarmedSweeps = *warm
	o.StatsOnly = *sOnly
	o.Phases = ph
	o.Metrics = reg
	if *benches != "" {
		o.Benchmarks = strings.Split(*benches, ",")
	}
	if *verbose {
		o.Progress = os.Stderr
	}
	// Sweeps are only needed for the figures and extras.
	wantAll := *table == 0 && *figure == 0 && *extra == ""
	if *table != 0 && *figure == 0 && *extra == "" {
		o.SkipSweeps = true
	}
	if *figure == 3 && *table == 0 && *extra == "" {
		o.SkipSweeps = true // figure 3 uses the live PE sweep only
	}

	d, err := bench.Collect(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimbench:", err)
		stopProfiles()
		os.Exit(1)
	}

	show := func(cond bool, s fmt.Stringer) {
		if cond {
			fmt.Println(s)
		}
	}
	show(wantAll || *table == 1, bench.Table1(d))
	show(wantAll || *table == 2, bench.Table2(d))
	show(wantAll || *table == 3, bench.Table3(d))
	show(wantAll || *table == 4, bench.Table4(d))
	show(wantAll || *table == 5, bench.Table5(d))
	if wantAll || *figure == 1 {
		m, t := bench.Figure1(d)
		fmt.Println(m)
		fmt.Println(t)
	}
	if wantAll || *figure == 2 {
		m, t := bench.Figure2(d)
		fmt.Println(m)
		fmt.Println(t)
	}
	if wantAll || *figure == 3 {
		tr, sh := bench.Figure3(d)
		fmt.Println(tr)
		fmt.Println(sh)
	}
	show(wantAll || *extra == "buswidth", bench.ExtraBusWidth(d))
	show(wantAll || *extra == "assoc", bench.ExtraAssociativity(d))
	show(wantAll || *extra == "optdetail", bench.ExtraOptDetail(d))
	show(wantAll || *extra == "protocols", bench.ExtraProtocols(d))
	show(wantAll || *extra == "illinois", bench.ExtraIllinois(d))

	if *manifest != "" {
		writeManifest(man, *manifest, d, o, ph, reg, prof.Paths())
	}
}

// writeManifest records the evaluation run: configuration, per-
// benchmark deterministic statistics (every Table-4 variant), and the
// timing block. Replayed references across all jobs drive the
// throughput figure.
func writeManifest(man *obs.Manifest, path string, d *bench.Data, o bench.Options, ph *obs.Phases, reg *obs.Registry, profiles map[string]string) {
	ccfg := bench.BaseCache(cache.OptionsAll())
	ccfg.StatsOnly = o.StatsOnly
	ccfg.DisableBusFilters = o.DisableBusFilters
	man.Config = obs.NewRunConfig(o.PEs, ccfg, bus.DefaultTiming(), "all", "bench", 0)
	var totalRefs uint64
	for _, bd := range d.Benches {
		sec := obs.BenchSection{
			Name:  bd.Name,
			Scale: bd.Scale,
			PEs:   o.PEs,
			Refs:  bd.Refs.TotalRefs(),
		}
		for _, v := range bench.OptVariants {
			sec.Variants = append(sec.Variants, obs.VariantStats{
				Variant: v.Name,
				Cache:   bd.OptCache[v.Name],
				Bus:     bd.OptBus[v.Name],
			})
		}
		man.Benches = append(man.Benches, sec)
		totalRefs += sec.Refs
	}
	replayed := reg.Counter("bench.replay.refs").Value()
	man.Timing.Profiles = profiles
	man.FinishTiming(ph, reg, replayed, ph.Elapsed().Seconds())
	if totalRefs == 0 {
		man.Timing.MrefsPerSec = 0
	}
	if err := man.WriteFile(path); err != nil {
		fmt.Fprintln(os.Stderr, "pimbench:", err)
		os.Exit(1)
	}
}
