// Command fghc compiles and runs a Flat Guarded Horn Clauses program on
// the simulated PIM cluster. The program must define main/0; its output
// (print/1, println/1) goes to stdout.
//
// Usage:
//
//	fghc program.fghc
//	fghc -pes 4 -stats program.fghc
//	echo 'main :- true | println(hello).' | fghc -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/kl1/compile"
	"pimcache/internal/kl1/emulator"
	"pimcache/internal/kl1/parser"
	"pimcache/internal/kl1/word"
	"pimcache/internal/machine"
	"pimcache/internal/mem"
)

func main() {
	var (
		pes       = flag.Int("pes", 8, "number of processing elements")
		showStats = flag.Bool("stats", false, "print execution and bus statistics")
		maxSteps  = flag.Uint64("maxsteps", 0, "abort after N machine steps (0 = unlimited)")
		heapWords = flag.Int("heap", 8<<20, "heap area size in words")
		dumpAsm   = flag.Bool("S", false, "print the compiled abstract-machine code and exit")
		useGC     = flag.Bool("gc", false, "enable stop-and-copy garbage collection (semispace heap)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fghc [flags] program.fghc  (use - for stdin)")
		os.Exit(2)
	}
	var src []byte
	var err error
	if flag.Arg(0) == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fghc:", err)
		os.Exit(1)
	}

	if *dumpAsm {
		prog, err := parser.Parse(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "fghc:", err)
			os.Exit(1)
		}
		im, err := compile.Compile(prog, word.NewTable())
		if err != nil {
			fmt.Fprintln(os.Stderr, "fghc:", err)
			os.Exit(1)
		}
		fmt.Print(im.Disassemble())
		return
	}

	mcfg := machine.Config{
		PEs: *pes,
		Layout: mem.Layout{
			InstWords: 64 << 10,
			HeapWords: *heapWords,
			GoalWords: 1 << 20,
			SuspWords: 256 << 10,
			CommWords: 64 << 10,
		},
		Cache:  cacheConfig(),
		Timing: bus.DefaultTiming(),
	}
	ecfg := emulator.DefaultConfig()
	ecfg.EnableGC = *useGC
	cl, res, err := emulator.RunSource(string(src), mcfg, ecfg, *maxSteps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fghc:", err)
		os.Exit(1)
	}
	fmt.Print(res.Output)
	if res.Failed {
		fmt.Fprintln(os.Stderr, "fghc: program failed:", res.FailReason)
		os.Exit(1)
	}
	if res.HitStepLimit {
		fmt.Fprintln(os.Stderr, "fghc: step limit exceeded")
		os.Exit(1)
	}
	if res.Floating > 0 {
		fmt.Fprintf(os.Stderr, "fghc: warning: %d goals still suspended (deadlock)\n", res.Floating)
	}
	if *showStats {
		bs := cl.Machine.BusStats()
		cs := cl.Machine.CacheStats()
		fmt.Fprintf(os.Stderr,
			"reductions %d, suspensions %d, instructions %d, refs %d, bus cycles %d, miss ratio %.4f\n",
			res.Emu.Reductions, res.Emu.Suspensions, res.Emu.Instructions,
			cs.TotalRefs(), bs.TotalCycles, cs.MissRatio())
		if *useGC {
			g := cl.Shared.GCStats()
			fmt.Fprintf(os.Stderr, "gc: %d collections, %d words copied\n",
				g.Collections, g.WordsCopied)
		}
	}
}

func cacheConfig() cache.Config {
	cfg := cache.DefaultConfig()
	cfg.Options = cache.OptionsAll()
	return cfg
}
