// Command pimreport diffs, aggregates and gates run manifests — the
// analysis half of the simulator's self-observability layer
// (internal/obs). Every replay-capable command emits a manifest with
// -manifest out.json; pimreport turns piles of them into verdicts:
//
//	pimreport diff a.json b.json              # field-level comparison
//	pimreport median -o base.json run*.json   # merge repeats (baselines)
//	pimreport check -baseline docs/baselines -tolerance 20% run*.json
//	pimreport table docs/baselines/*.json     # eval_snapshot table
//
// check is CI's perf-regression gate: per scenario, the median run
// throughput must reach baseline*(1-tolerance), and the deterministic
// cache/bus statistics must equal the baseline's bit for bit — any
// stat mismatch between same-config manifests is a determinism
// violation and a hard error regardless of tolerance.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pimcache/internal/report"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "diff":
		diff(os.Args[2:])
	case "median":
		median(os.Args[2:])
	case "check":
		check(os.Args[2:])
	case "table":
		table(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pimreport {diff|median|check|table} [flags] manifests...")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pimreport:", err)
	os.Exit(1)
}

func diff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		fatal(fmt.Errorf("diff: want exactly two manifests, got %d", fs.NArg()))
	}
	ms, err := report.Load(fs.Args())
	if err != nil {
		fatal(err)
	}
	d, err := report.DiffManifests(ms[0], ms[1])
	if err != nil {
		fatal(err)
	}
	fmt.Print(d.Format(fs.Arg(0), fs.Arg(1)))
	if !d.OK() {
		os.Exit(1)
	}
}

func median(args []string) {
	fs := flag.NewFlagSet("median", flag.ExitOnError)
	out := fs.String("o", "-", "output manifest path (- for stdout)")
	fs.Parse(args)
	if fs.NArg() == 0 {
		fatal(fmt.Errorf("median: no input manifests"))
	}
	ms, err := report.Load(fs.Args())
	if err != nil {
		fatal(err)
	}
	med, err := report.MedianManifest(ms)
	if err != nil {
		fatal(err)
	}
	if err := report.WriteManifest(med, *out); err != nil {
		fatal(err)
	}
}

func check(args []string) {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	baseDir := fs.String("baseline", "docs/baselines", "directory of baseline manifests")
	tolStr := fs.String("tolerance", "20%", "allowed throughput regression (e.g. 20%)")
	fs.Parse(args)
	if fs.NArg() == 0 {
		fatal(fmt.Errorf("check: no run manifests"))
	}
	tol, err := parseTolerance(*tolStr)
	if err != nil {
		fatal(err)
	}
	baselines, err := report.LoadDir(*baseDir)
	if err != nil {
		fatal(err)
	}
	runs, err := report.Load(fs.Args())
	if err != nil {
		fatal(err)
	}
	res, err := report.Check(baselines, runs, tol)
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Format())
	if !res.OK() {
		os.Exit(1)
	}
}

func table(args []string) {
	fs := flag.NewFlagSet("table", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() == 0 {
		fatal(fmt.Errorf("table: no input manifests"))
	}
	ms, err := report.Load(fs.Args())
	if err != nil {
		fatal(err)
	}
	fmt.Print(report.Table(ms))
}

// parseTolerance accepts "20%", "20", or "0.2".
func parseTolerance(s string) (float64, error) {
	s = strings.TrimSpace(s)
	pct := strings.HasSuffix(s, "%")
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("tolerance %q: %w", s, err)
	}
	if pct || v > 1 {
		v /= 100
	}
	if v < 0 || v >= 1 {
		return 0, fmt.Errorf("tolerance %q out of range", s)
	}
	return v, nil
}
