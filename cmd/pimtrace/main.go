// Command pimtrace records, inspects, generates, and replays memory-
// reference traces — the trace-driven half of the paper's methodology.
//
// Usage:
//
//	pimtrace record -bench Tri -o tri.trc         # emulate + record
//	pimtrace synth -kind orparallel -o or.trc     # synthetic workload
//	pimtrace info tri.trc                         # header + op histogram
//	pimtrace replay -cache 8192 -block 8 tri.trc  # replay vs a config
package main

import (
	"flag"
	"fmt"
	"os"

	"pimcache/internal/bench"
	"pimcache/internal/bench/programs"
	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/cliutil"
	"pimcache/internal/machine"
	"pimcache/internal/mem"
	"pimcache/internal/stats"
	"pimcache/internal/synth"
	"pimcache/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "synth":
		synthesize(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pimtrace {record|synth|info|replay} [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pimtrace:", err)
	os.Exit(1)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	benchName := fs.String("bench", "Tri", "benchmark to record")
	scale := fs.Int("scale", 0, "benchmark scale (0 = default)")
	pes := fs.Int("pes", 8, "processing elements")
	out := fs.String("o", "", "output file (required)")
	fs.Parse(args)
	if *out == "" {
		fatal(fmt.Errorf("record: -o required"))
	}
	b, ok := programs.ByName(*benchName)
	if !ok {
		fatal(fmt.Errorf("unknown benchmark %q", *benchName))
	}
	if *scale == 0 {
		*scale = b.DefaultScale
	}
	_, tr, err := bench.RunLive(b, *scale, *pes, bench.BaseCache(cache.OptionsAll()), true)
	if err != nil {
		fatal(err)
	}
	writeTrace(tr, *out)
	fmt.Printf("recorded %d references from %s (scale %d, %d PEs) to %s\n",
		tr.Len(), b.Name, *scale, *pes, *out)
}

func synthesize(args []string) {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	kind := fs.String("kind", "orparallel", "seqprolog, orparallel, or ring")
	pes := fs.Int("pes", 8, "processing elements")
	events := fs.Int("events", 200_000, "approximate reference count")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("o", "", "output file (required)")
	fs.Parse(args)
	if *out == "" {
		fatal(fmt.Errorf("synth: -o required"))
	}
	c := synth.DefaultConfig()
	c.PEs, c.Events, c.Seed = *pes, *events, *seed
	var tr *trace.Trace
	switch *kind {
	case "seqprolog":
		tr = synth.SeqProlog(c)
	case "orparallel":
		tr = synth.ORParallel(c)
	case "ring":
		tr = synth.MessageRing(c)
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
	writeTrace(tr, *out)
	fmt.Printf("generated %d %s references to %s\n", tr.Len(), *kind, *out)
}

func info(args []string) {
	if len(args) != 1 {
		fatal(fmt.Errorf("info: one trace file expected"))
	}
	tr := readTrace(args[0])
	var byOp [cache.NumOps]uint64
	var byPE [256]uint64
	for _, r := range tr.Refs {
		byOp[r.Op]++
		byPE[r.PE]++
	}
	fmt.Printf("%s: %d references, %d PEs\n", args[0], tr.Len(), tr.PEs)
	t := &stats.Table{Columns: []string{"op", "count", "%"}}
	for op := cache.Op(0); op < cache.NumOps; op++ {
		t.AddRow(op.String(), fmt.Sprint(byOp[op]),
			fmt.Sprintf("%.2f", stats.Pct(byOp[op], uint64(tr.Len()))))
	}
	fmt.Println(t)
	t2 := &stats.Table{Columns: []string{"PE", "refs"}}
	for pe := 0; pe < tr.PEs; pe++ {
		t2.AddRow(fmt.Sprint(pe), fmt.Sprint(byPE[pe]))
	}
	fmt.Println(t2)
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	size := fs.Int("cache", 4<<10, "cache size in data words")
	block := fs.Int("block", 4, "block size in words")
	ways := fs.Int("ways", 4, "associativity")
	optsName := fs.String("opts", "all", "none, heap, goal, comm, all")
	width := fs.Int("buswidth", 1, "bus width in words")
	shards := fs.Int("shards", 1, "partition the replay across N cores by cache set (identical statistics)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("replay: one trace file expected"))
	}
	if *shards < 0 {
		fatal(fmt.Errorf("replay: -shards must be non-negative (got %d)", *shards))
	}
	tr := readTrace(fs.Arg(0))
	ccfg, err := cliutil.BuildCacheConfig(*size, *block, *ways, *optsName, "pim")
	if err != nil {
		fatal(err)
	}
	timing := bus.Timing{MemCycles: 8, WidthWords: *width}
	var bs bus.Stats
	var cs cache.Stats
	if *shards > 1 {
		bs, cs, err = bench.ReplayConfigSharded(tr, ccfg, timing, *shards)
		if err != nil {
			fatal(err)
		}
	} else {
		m := machine.New(machine.Config{
			PEs: tr.PEs, Layout: tr.Layout, Cache: ccfg, Timing: timing,
		})
		ports := make([]mem.Accessor, tr.PEs)
		for i := range ports {
			ports[i] = m.Port(i)
		}
		if err := trace.Replay(tr, ports); err != nil {
			fatal(err)
		}
		bs, cs = m.BusStats(), m.CacheStats()
	}
	fmt.Printf("replayed %d references: %d bus cycles, miss ratio %.4f, mem busy %d\n",
		tr.Len(), bs.TotalCycles, cs.MissRatio(), bs.MemBusyCycles)
	for p := bus.Pattern(0); p < bus.NumPatterns; p++ {
		if bs.CountByPattern[p] > 0 {
			fmt.Printf("  %-20s %8d ops %10d cycles\n", p, bs.CountByPattern[p], bs.CyclesByPattern[p])
		}
	}
}

func writeTrace(tr *trace.Trace, path string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := tr.Write(f); err != nil {
		fatal(err)
	}
}

func readTrace(path string) *trace.Trace {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		fatal(err)
	}
	return tr
}
