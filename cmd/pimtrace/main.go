// Command pimtrace records, inspects, generates, and replays memory-
// reference traces — the trace-driven half of the paper's methodology.
//
// Usage:
//
//	pimtrace record -bench Tri -o tri.trc         # emulate + record
//	pimtrace synth -kind orparallel -o or.trc     # synthetic workload
//	pimtrace info tri.trc                         # header + op histogram
//	pimtrace replay -cache 8192 -block 8 tri.trc  # replay vs a config
//	pimtrace verify tri.trc resume.ckpt run.json  # checksum-validate artifacts
package main

import (
	"bufio"
	"crypto/sha256"
	"flag"
	"fmt"
	"hash"
	"io"
	"os"
	"strings"
	"time"

	"pimcache/internal/bench"
	"pimcache/internal/bench/programs"
	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/cliutil"
	"pimcache/internal/machine"
	"pimcache/internal/obs"
	"pimcache/internal/safeio"
	"pimcache/internal/stats"
	"pimcache/internal/synth"
	"pimcache/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "synth":
		synthesize(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "verify":
		verify(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pimtrace {record|synth|info|replay|verify} [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pimtrace:", err)
	os.Exit(1)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	benchName := fs.String("bench", "Tri", "benchmark to record")
	scale := fs.Int("scale", 0, "benchmark scale (0 = default)")
	pes := fs.Int("pes", 8, "processing elements")
	out := fs.String("o", "", "output file (required)")
	fs.Parse(args)
	if *out == "" {
		fatal(fmt.Errorf("record: -o required"))
	}
	b, ok := programs.ByName(*benchName)
	if !ok {
		fatal(fmt.Errorf("unknown benchmark %q", *benchName))
	}
	if *scale == 0 {
		*scale = b.DefaultScale
	}
	_, tr, err := bench.RunLive(b, *scale, *pes, bench.BaseCache(cache.OptionsAll()), true)
	if err != nil {
		fatal(err)
	}
	writeTrace(tr, *out)
	fmt.Printf("recorded %d references from %s (scale %d, %d PEs) to %s\n",
		tr.Len(), b.Name, *scale, *pes, *out)
}

func synthesize(args []string) {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	kind := fs.String("kind", "orparallel", "seqprolog, orparallel, or ring")
	pes := fs.Int("pes", 8, "processing elements")
	events := fs.Int("events", 200_000, "approximate reference count")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("o", "", "output file (required)")
	fs.Parse(args)
	if *out == "" {
		fatal(fmt.Errorf("synth: -o required"))
	}
	c := synth.DefaultConfig()
	c.PEs, c.Events, c.Seed = *pes, *events, *seed
	var tr *trace.Trace
	switch *kind {
	case "seqprolog":
		tr = synth.SeqProlog(c)
	case "orparallel":
		tr = synth.ORParallel(c)
	case "ring":
		tr = synth.MessageRing(c)
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
	writeTrace(tr, *out)
	fmt.Printf("generated %d %s references to %s\n", tr.Len(), *kind, *out)
}

// info prints the header and per-op/per-PE histograms without replaying.
// It streams the file through the validating decoder in chunks, so a
// multi-gigabyte trace is summarized in constant memory.
func info(args []string) {
	if len(args) != 1 {
		fatal(fmt.Errorf("info: one trace file expected"))
	}
	f, err := os.Open(args[0])
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	d, err := trace.NewReader(f)
	if err != nil {
		fatal(err)
	}
	var byOp [cache.NumOps]uint64
	byPE := make([]uint64, d.PEs())
	buf := make([]trace.Ref, 4096)
	var total uint64
	for {
		n, err := d.Next(buf)
		for _, r := range buf[:n] {
			byOp[r.Op]++
			byPE[r.PE]++
		}
		total += uint64(n)
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
	}
	lay := d.Layout()
	fmt.Printf("%s: %d references, %d PEs, layout %d words\n",
		args[0], total, d.PEs(), lay.TotalWords())
	t := &stats.Table{Columns: []string{"op", "count", "%"}}
	for op := cache.Op(0); op < cache.NumOps; op++ {
		t.AddRow(op.String(), fmt.Sprint(byOp[op]),
			fmt.Sprintf("%.2f", stats.Pct(byOp[op], total)))
	}
	fmt.Println(t)
	t2 := &stats.Table{Columns: []string{"PE", "refs"}}
	for pe := 0; pe < d.PEs(); pe++ {
		t2.AddRow(fmt.Sprint(pe), fmt.Sprint(byPE[pe]))
	}
	fmt.Println(t2)
}

// verify stream-validates artifacts without replaying: traces (both
// format versions — framing, checksums, every reference), checkpoints
// (frame, checksum, decodability) and run manifests (JSON + schema).
// The file type is sniffed from its magic. Exit status 1 with the
// first bad offset on any damage; success prints one summary line per
// file.
func verify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	quiet := fs.Bool("q", false, "suppress per-file summaries (errors still print)")
	fs.Parse(args)
	if fs.NArg() == 0 {
		fatal(fmt.Errorf("verify: at least one artifact file expected"))
	}
	failed := false
	for _, path := range fs.Args() {
		line, err := verifyFile(path)
		if err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "pimtrace: verify %s: %v\n", path, err)
			continue
		}
		if !*quiet {
			fmt.Printf("%s: %s\n", path, line)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func verifyFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	sniff, err := br.Peek(10)
	if err != nil && len(sniff) == 0 {
		return "", fmt.Errorf("reading magic: %w", err)
	}
	switch {
	case strings.HasPrefix(string(sniff), "PIMTRACE"):
		info, err := trace.Verify(br)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("ok trace v%d: %d refs, %d PEs, %d chunks, %d bytes",
			info.Version, info.Refs, info.PEs, info.Chunks, info.Bytes), nil
	case strings.HasPrefix(string(sniff), "PIMCKPT"):
		s, err := machine.DecodeSnapshot(br)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("ok checkpoint: %d PEs, replay position %d, %d memory words",
			s.Config.PEs, s.RefsReplayed, len(s.Memory)), nil
	case len(sniff) > 0 && (sniff[0] == '{' || sniff[0] == ' ' || sniff[0] == '\n'):
		m, err := obs.ReadManifestFile(path)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("ok manifest: tool %s, schema %d, key %s, stats-key %s",
			m.Tool, m.Schema, m.Key(), m.StatsKey()), nil
	}
	return "", fmt.Errorf("unrecognized artifact (magic %q)", sniff)
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	size := fs.Int("cache", 4<<10, "cache size in data words")
	block := fs.Int("block", 4, "block size in words")
	ways := fs.Int("ways", 4, "associativity")
	optsName := fs.String("opts", "all", "none, heap, goal, comm, all")
	protocolName := fs.String("protocol", "pim", cliutil.ProtocolFlagHelp())
	width := fs.Int("buswidth", 1, "bus width in words")
	shards := fs.Int("shards", 1, "partition the replay across N cores by cache set (identical statistics; materializes the trace)")
	statsOnly := fs.Bool("statsonly", false, "replay without a data plane (identical statistics, less memory and time)")
	packed := fs.Bool("packed", false, "pre-decode into a packed stream before replaying (identical statistics; materializes the trace)")
	manifestPath := fs.String("manifest", "", "write a structured run manifest (JSON) to this file")
	scenario := fs.String("scenario", "", "scenario label recorded in the manifest (pimreport baseline key)")
	heartbeat := fs.Duration("heartbeat", 0, "report streaming progress on stderr at this interval (e.g. 10s; 0 disables)")
	ckptEvery := fs.Uint64("checkpoint-every", 0, "write a durable checkpoint every N replayed references (streaming replay only; 0 disables)")
	ckptPath := fs.String("checkpoint", "", "checkpoint file for -checkpoint-every and -resume")
	resume := fs.Bool("resume", false, "resume from the -checkpoint file if it exists (fresh start otherwise)")
	chaosExitAfter := fs.Int("chaos-exit-after", 0, "exit with status 3 after N checkpoint writes (crash-injection hook for the resume tests; 0 disables)")
	run := cliutil.TimeoutFlags(fs)
	prof := cliutil.ProfileFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("replay: one trace file expected"))
	}
	if *shards < 0 {
		fatal(fmt.Errorf("replay: -shards must be non-negative (got %d)", *shards))
	}
	if *packed && *shards > 1 {
		fatal(fmt.Errorf("replay: -packed and -shards are mutually exclusive"))
	}
	checkpointing := *ckptEvery > 0 || *resume
	if checkpointing && (*packed || *shards > 1) {
		fatal(fmt.Errorf("replay: checkpoint/resume works on the streaming path only (drop -packed/-shards)"))
	}
	if checkpointing && *ckptPath == "" {
		fatal(fmt.Errorf("replay: -checkpoint-every/-resume need -checkpoint <file>"))
	}
	if *chaosExitAfter > 0 && *ckptEvery == 0 {
		fatal(fmt.Errorf("replay: -chaos-exit-after needs -checkpoint-every"))
	}
	ctx, stopSignals := run.Context()
	defer stopSignals()
	cliutil.AbortOnDone(ctx, 30*time.Second, os.Stderr)
	ccfg, err := cliutil.BuildCacheConfig(*size, *block, *ways, *optsName, *protocolName)
	if err != nil {
		fatal(err)
	}
	ccfg.StatsOnly = *statsOnly
	timing := bus.Timing{MemCycles: 8, WidthWords: *width}

	// Observability: the manifest is assembled from the start (it
	// captures host identity and wall time), but written only when
	// -manifest was given. Hashing the trace is skipped otherwise.
	man := obs.NewManifest("pimtrace")
	man.Scenario = *scenario
	ph := obs.NewPhases()
	reg := obs.NewRegistry()
	wantManifest := *manifestPath != ""
	stopProfiles, err := cliutil.StartProfiles(*prof)
	if err != nil {
		fatal(err)
	}

	mode := "stream"
	switch {
	case *shards > 1:
		mode = "sharded"
	case *packed:
		mode = "packed"
	}

	var bs bus.Stats
	var cs cache.Stats
	var refs int
	var pes int
	var layoutWords uint64
	digest := sha256.New()
	var workSeconds float64
	if mode != "stream" {
		// Sharding and packing need the whole stream in memory; the
		// stream path below replays in constant memory instead.
		var tr *trace.Trace
		err := ph.Time("decode", func() error {
			var err error
			tr, err = readTraceHashed(fs.Arg(0), digestIf(wantManifest, digest))
			return err
		})
		if err != nil {
			fatal(err)
		}
		pes, layoutWords = tr.PEs, uint64(tr.Layout.TotalWords())
		refs = tr.Len()
		t0 := time.Now()
		if mode == "sharded" {
			err = ph.Time("replay/sharded", func() error {
				bs, cs, err = bench.ReplayConfigSharded(tr, ccfg, timing, *shards)
				return err
			})
		} else {
			err = ph.Time("replay/packed", func() error {
				p, err := trace.Pack(tr)
				if err != nil {
					return err
				}
				bs, cs, err = bench.ReplayPacked(p, ccfg, timing)
				return err
			})
		}
		workSeconds = time.Since(t0).Seconds()
		if err != nil {
			fatal(err)
		}
	} else {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		cr := &obs.CountingReader{R: f}
		var src io.Reader = cr
		if wantManifest {
			// The resume seek decodes (and so tees) every skipped byte,
			// so a resumed run's trace digest equals the uninterrupted
			// run's — their manifests stay comparable.
			src = io.TeeReader(cr, digest)
		}
		d, err := trace.NewReader(bufio.NewReaderSize(src, 1<<20))
		if err != nil {
			fatal(err)
		}
		pes, layoutWords = d.PEs(), uint64(d.Layout().TotalWords())

		// Resume: restore the checkpointed machine and seek, when the
		// checkpoint file exists; a missing file is a fresh start so one
		// command line works for both the first attempt and every retry.
		var snap *machine.Snapshot
		if *resume {
			switch s, err := machine.ReadSnapshotFile(*ckptPath); {
			case err == nil:
				snap = s
				mode = "resume"
				fmt.Fprintf(os.Stderr, "pimtrace: resuming from %s at ref %d\n", *ckptPath, s.RefsReplayed)
			case os.IsNotExist(err):
				fmt.Fprintf(os.Stderr, "pimtrace: no checkpoint at %s, starting fresh\n", *ckptPath)
			default:
				fatal(err)
			}
		}

		hb := obs.NewHeartbeat(os.Stderr, "replay", *heartbeat, d.Len()).Start()
		wd := run.Watchdog("replay "+fs.Arg(0), ph)
		defer wd.Stop()
		chunks := reg.Counter("trace.chunks")
		d.SetProgress(func(n int) {
			chunks.Inc()
			hb.Add(uint64(n))
			hb.SetBytes(cr.Bytes())
			wd.Pet()
		})
		ckptWrites := reg.Counter("replay.checkpoints")
		ck := bench.CheckpointOptions{Every: *ckptEvery, Path: *ckptPath}
		if *ckptEvery > 0 {
			ck.OnCheckpoint = func(at uint64) error {
				ckptWrites.Inc()
				wd.Pet()
				if *chaosExitAfter > 0 && ckptWrites.Value() >= uint64(*chaosExitAfter) {
					hb.Stop()
					fmt.Fprintf(os.Stderr, "pimtrace: chaos exit after %d checkpoints (at ref %d)\n",
						*chaosExitAfter, at)
					os.Exit(3)
				}
				return nil
			}
		}
		t0 := time.Now()
		var out *bench.ReplayOutcome
		err = ph.Time("replay/stream", func() error {
			out, err = bench.ReplayReaderResumable(ctx, d, ccfg, timing, nil, ck, snap)
			return err
		})
		workSeconds = time.Since(t0).Seconds()
		hb.Stop()
		if err != nil {
			fatal(err)
		}
		bs, cs, refs = out.Bus, out.Cache, int(out.Refs)
	}
	if err := stopProfiles(); err != nil {
		fatal(err)
	}
	fmt.Printf("replayed %d references: %d bus cycles, miss ratio %.4f, mem busy %d\n",
		refs, bs.TotalCycles, cs.MissRatio(), bs.MemBusyCycles)
	for p := bus.Pattern(0); p < bus.NumPatterns; p++ {
		if bs.CountByPattern[p] > 0 {
			fmt.Printf("  %-20s %8d ops %10d cycles\n", p, bs.CountByPattern[p], bs.CyclesByPattern[p])
		}
	}
	if wantManifest {
		man.Config = obs.NewRunConfig(pes, ccfg, timing, *optsName, mode, *shards)
		man.Trace = &obs.TraceInfo{
			SHA256:      obs.HexDigest(digest.Sum(nil)),
			Refs:        uint64(refs),
			PEs:         pes,
			LayoutWords: layoutWords,
		}
		man.Stats = obs.NewRunStats(uint64(refs), cs, bs)
		man.Timing.TraceFile = fs.Arg(0)
		man.Timing.Profiles = prof.Paths()
		man.FinishTiming(ph, reg, uint64(refs), workSeconds)
		if err := man.WriteFile(*manifestPath); err != nil {
			fatal(err)
		}
	}
}

// digestIf returns h when cond is set, nil otherwise (hashing the
// trace is pure overhead when no manifest will record it).
func digestIf(cond bool, h hash.Hash) hash.Hash {
	if cond {
		return h
	}
	return nil
}

func writeTrace(tr *trace.Trace, path string) {
	// Atomic: a crash mid-write can never leave a torn trace under the
	// final name.
	if err := safeio.WriteFile(path, tr.Write); err != nil {
		fatal(err)
	}
}

// readTraceHashed materializes a trace, feeding the raw bytes through
// h (when non-nil) so the caller gets the file's content digest for
// free.
func readTraceHashed(path string, h hash.Hash) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var src io.Reader = f
	if h != nil {
		src = io.TeeReader(f, h)
	}
	return trace.Read(src)
}
