package main

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"pimcache/internal/cache"
	"pimcache/internal/obs"
)

const goldenPath = "testdata/ablation.golden"

// TestAblationGolden pins the complete -protocol all output byte for
// byte: every row of every registered protocol's transition table. Any
// change to a state machine, to the bus cost model, or to the registry
// itself shows up as a diff here. Regenerate after an intentional change
// with:
//
//	PIMTABLE_GEN_GOLDEN=1 go test ./cmd/pimtable
func TestAblationGolden(t *testing.T) {
	got, transitions := renderAll(obs.NewPhases(), 0)
	if os.Getenv("PIMTABLE_GEN_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d transitions)", goldenPath, transitions)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with PIMTABLE_GEN_GOLDEN=1): %v", err)
	}
	if got != string(want) {
		t.Errorf("ablation output diverged from %s (regenerate with PIMTABLE_GEN_GOLDEN=1 if intended)\n%s",
			goldenPath, firstDiff(string(want), got))
	}
}

// firstDiff reports the first differing line, so a table change reads as
// a protocol row rather than a wall of text.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("line %d:\n  want: %q\n  got:  %q", i+1, w, g)
		}
	}
	return "outputs identical"
}

// TestAblationCoversRegistry checks the ablation is registry-driven: the
// golden output has one section header per registered protocol, so a new
// protocol cannot be registered without joining (and re-pinning) the
// ablation.
func TestAblationCoversRegistry(t *testing.T) {
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with PIMTABLE_GEN_GOLDEN=1): %v", err)
	}
	for _, p := range cache.Protocols() {
		header := p.Name() + " protocol: "
		if !strings.Contains(string(want), header) {
			t.Errorf("golden ablation has no section for %q", p.Name())
		}
	}
	if n := strings.Count(string(want), " protocol: "); n != len(cache.Protocols()) {
		t.Errorf("golden ablation has %d sections for %d registered protocols",
			n, len(cache.Protocols()))
	}
}
