// Command pimtable derives and prints the complete state transition
// tables of the PIM cache protocol (the tables the paper defers to
// Matsumoto's ICOT TR-327), reconstructed empirically by driving the
// implementation through every reachable state under every remote
// context.
//
// Usage:
//
//	pimtable                  # PIM protocol
//	pimtable -protocol illinois
//	pimtable -jobs 1          # derive serially
//
// Each transition is derived by an independent two-cache experiment, so
// the derivation fans out over -jobs workers; the table is identical for
// every job count.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"time"

	"pimcache/internal/cache"
	"pimcache/internal/cliutil"
	"pimcache/internal/obs"
)

func main() {
	proto := flag.String("protocol", "pim", "pim, illinois, or writethrough")
	jobs := flag.Int("jobs", 0, "concurrent derivation experiments (0 = all CPU cores)")
	manifest := flag.String("manifest", "", "write a structured run manifest (JSON) to this file")
	run := cliutil.TimeoutFlags(flag.CommandLine)
	flag.Parse()
	ctx, stopSignals := run.Context()
	defer stopSignals()
	cliutil.AbortOnDone(ctx, 30*time.Second, os.Stderr)
	man := obs.NewManifest("pimtable")
	ph := obs.NewPhases()
	if err := cliutil.ValidateJobs(*jobs); err != nil {
		fmt.Fprintln(os.Stderr, "pimtable:", err)
		os.Exit(2)
	}
	p, err := cliutil.ParseProtocol(*proto)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimtable:", err)
		os.Exit(2)
	}
	sp := ph.Start("derive/" + *proto)
	rows := cache.DeriveTransitionsJobs(p, *jobs)
	sp.End()
	fmt.Printf("%s protocol: %d derived transitions\n", *proto, len(rows))
	fmt.Println("(local PE0 state x remote PE1 context x processor op; base timing)")
	fmt.Println()
	table := cache.FormatTransitions(rows)
	fmt.Print(table)
	if *manifest != "" {
		// The derived table is a deterministic protocol fingerprint:
		// its digest in Extra makes any cross-host divergence in the
		// state machine itself visible to pimreport diff.
		man.Config.Protocol = p.String()
		man.Config.Mode = "derive"
		sum := sha256.Sum256([]byte(table))
		man.Extra = map[string]string{
			"transitions":  fmt.Sprint(len(rows)),
			"table_sha256": obs.HexDigest(sum[:]),
		}
		man.FinishTiming(ph, nil, 0, ph.Elapsed().Seconds())
		if err := man.WriteFile(*manifest); err != nil {
			fmt.Fprintln(os.Stderr, "pimtable:", err)
			os.Exit(1)
		}
	}
}
