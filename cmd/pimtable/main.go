// Command pimtable derives and prints the complete state transition
// tables of the PIM cache protocol (the tables the paper defers to
// Matsumoto's ICOT TR-327), reconstructed empirically by driving the
// implementation through every reachable state under every remote
// context.
//
// Usage:
//
//	pimtable                  # PIM protocol
//	pimtable -protocol illinois
//	pimtable -jobs 1          # derive serially
//
// Each transition is derived by an independent two-cache experiment, so
// the derivation fans out over -jobs workers; the table is identical for
// every job count.
package main

import (
	"flag"
	"fmt"
	"os"

	"pimcache/internal/cache"
	"pimcache/internal/cliutil"
)

func main() {
	proto := flag.String("protocol", "pim", "pim, illinois, or writethrough")
	jobs := flag.Int("jobs", 0, "concurrent derivation experiments (0 = all CPU cores)")
	flag.Parse()
	if err := cliutil.ValidateJobs(*jobs); err != nil {
		fmt.Fprintln(os.Stderr, "pimtable:", err)
		os.Exit(2)
	}
	p, err := cliutil.ParseProtocol(*proto)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimtable:", err)
		os.Exit(2)
	}
	rows := cache.DeriveTransitionsJobs(p, *jobs)
	fmt.Printf("%s protocol: %d derived transitions\n", *proto, len(rows))
	fmt.Println("(local PE0 state x remote PE1 context x processor op; base timing)")
	fmt.Println()
	fmt.Print(cache.FormatTransitions(rows))
}
