// Command pimtable derives and prints the complete state transition
// tables of the PIM cache protocol (the tables the paper defers to
// Matsumoto's ICOT TR-327), reconstructed empirically by driving the
// implementation through every reachable state under every remote
// context.
//
// Usage:
//
//	pimtable                  # PIM protocol
//	pimtable -protocol illinois
//	pimtable -protocol all    # every registered protocol (the ablation)
//	pimtable -jobs 1          # derive serially
//
// Each transition is derived by an independent two-cache experiment, so
// the derivation fans out over -jobs workers; the table is identical for
// every job count.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pimcache/internal/cache"
	"pimcache/internal/cliutil"
	"pimcache/internal/obs"
)

// renderAll renders the transition-table ablation: one section per
// registered protocol, in registry (enum) order, so a protocol added to
// the cache package automatically appears here. ph gets one derivation
// phase per protocol for the manifest timing breakdown.
func renderAll(ph *obs.Phases, jobs int) (string, int) {
	var sb strings.Builder
	total := 0
	for i, p := range cache.Protocols() {
		sp := ph.Start("derive/" + p.Name())
		rows := cache.DeriveTransitionsJobs(p.ID(), jobs)
		sp.End()
		if i > 0 {
			sb.WriteString("\n")
		}
		fmt.Fprintf(&sb, "%s protocol: %d derived transitions\n", p.Name(), len(rows))
		sb.WriteString(cache.FormatTransitions(rows))
		total += len(rows)
	}
	return sb.String(), total
}

func main() {
	proto := flag.String("protocol", "pim",
		cliutil.ProtocolFlagHelp()+"; or 'all' for every registered protocol")
	jobs := flag.Int("jobs", 0, "concurrent derivation experiments (0 = all CPU cores)")
	manifest := flag.String("manifest", "", "write a structured run manifest (JSON) to this file")
	run := cliutil.TimeoutFlags(flag.CommandLine)
	flag.Parse()
	ctx, stopSignals := run.Context()
	defer stopSignals()
	cliutil.AbortOnDone(ctx, 30*time.Second, os.Stderr)
	man := obs.NewManifest("pimtable")
	ph := obs.NewPhases()
	if err := cliutil.ValidateJobs(*jobs); err != nil {
		fmt.Fprintln(os.Stderr, "pimtable:", err)
		os.Exit(2)
	}
	var table string
	var transitions int
	if *proto == "all" {
		table, transitions = renderAll(ph, *jobs)
		fmt.Printf("transition-table ablation: %d registered protocols, %d transitions\n",
			len(cache.Protocols()), transitions)
		fmt.Println("(local PE0 state x remote PE1 context x processor op; base timing)")
		fmt.Println()
		fmt.Print(table)
	} else {
		p, err := cliutil.ParseProtocol(*proto)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pimtable:", err)
			os.Exit(2)
		}
		sp := ph.Start("derive/" + *proto)
		rows := cache.DeriveTransitionsJobs(p, *jobs)
		sp.End()
		transitions = len(rows)
		fmt.Printf("%s protocol: %d derived transitions\n", *proto, transitions)
		fmt.Println("(local PE0 state x remote PE1 context x processor op; base timing)")
		fmt.Println()
		table = cache.FormatTransitions(rows)
		fmt.Print(table)
	}
	if *manifest != "" {
		// The derived table is a deterministic protocol fingerprint:
		// its digest in Extra makes any cross-host divergence in the
		// state machine itself visible to pimreport diff.
		man.Config.Protocol = *proto
		man.Config.Mode = "derive"
		sum := sha256.Sum256([]byte(table))
		man.Extra = map[string]string{
			"transitions":  fmt.Sprint(transitions),
			"table_sha256": obs.HexDigest(sum[:]),
		}
		man.FinishTiming(ph, nil, 0, ph.Elapsed().Seconds())
		if err := man.WriteFile(*manifest); err != nil {
			fmt.Fprintln(os.Stderr, "pimtable:", err)
			os.Exit(1)
		}
	}
}
