// Quickstart: run one of the paper's KL1 benchmarks on the simulated
// eight-PE PIM cluster with the optimized cache, verify the computed
// answer, and print the headline cache metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pimcache/internal/bench"
	"pimcache/internal/bench/programs"
	"pimcache/internal/cache"
)

func main() {
	// Pick the Pascal benchmark at a small scale: a chain of stream
	// processes computing rows of Pascal's triangle.
	b, _ := programs.ByName("Pascal")
	scale := 12

	// Run it twice: once on the unoptimized cache, once with the paper's
	// optimized memory commands (DW in the heap, ER/RP/DW in the goal
	// area, RI in the communication area).
	plain, _, err := bench.RunLive(b, scale, 8, bench.BaseCache(cache.OptionsNone()), false)
	if err != nil {
		log.Fatal(err)
	}
	optimized, _, err := bench.RunLive(b, scale, 8, bench.BaseCache(cache.OptionsAll()), false)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark: %s (scale %d) on 8 PEs\n", b.Name, scale)
	fmt.Printf("answer:    %s", optimized.Result.Output)
	fmt.Printf("reductions: %d, suspensions: %d, goal migrations: %d\n\n",
		optimized.Result.Emu.Reductions,
		optimized.Result.Emu.Suspensions,
		optimized.Result.Emu.GoalsStolen)

	p, o := plain.Bus.TotalCycles, optimized.Bus.TotalCycles
	fmt.Printf("bus cycles, unoptimized cache: %d\n", p)
	fmt.Printf("bus cycles, optimized cache:   %d (%.0f%% of unoptimized)\n",
		o, 100*float64(o)/float64(p))
	fmt.Printf("direct writes applied:         %d (swap-ins avoided)\n",
		optimized.Cache.DWApplied)
	fmt.Printf("dirty blocks purged by ER/RP:  %d (swap-outs avoided)\n",
		optimized.Cache.PurgedDirty)
}
