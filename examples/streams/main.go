// Streams: a stream AND-parallel FGHC program — a prime sieve built from
// chained filter processes communicating through incomplete lists — run
// on the simulated cluster. Demonstrates writing and running your own
// FGHC programs, and how suspension/resumption implements dataflow
// synchronization through the coherent cache.
//
//	go run ./examples/streams
package main

import (
	"fmt"
	"log"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/kl1/emulator"
	"pimcache/internal/machine"
	"pimcache/internal/mem"
)

// A classic stream program: integers(2..N) flows through a growing chain
// of prime filters; every element a filter cannot divide is passed
// downstream, and each new chain head is a prime.
const sieve = `
main :- true | ints(2, 100, S), sift(S, Ps), println(Ps).

% ints(I, N, S): S = [I, I+1, ..., N]
ints(I, N, S) :- I > N  | S = [].
ints(I, N, S) :- I =< N | S = [I|S1], I1 := I + 1, ints(I1, N, S1).

% sift([P|S], Ps): P is prime; filter multiples of P out of S.
sift([], Ps) :- true | Ps = [].
sift([P|S], Ps) :- true | Ps = [P|Ps1], filter(S, P, S1), sift(S1, Ps1).

% filter(S, P, Out): drop multiples of P.
filter([], _, Out) :- true | Out = [].
filter([H|T], P, Out) :- integer(H), integer(P) |
    M := H mod P, keep(M, H, T, P, Out).
keep(0, _, T, P, Out) :- true | filter(T, P, Out).
keep(M, H, T, P, Out) :- M > 0 | Out = [H|Out1], filter(T, P, Out1).
`

func main() {
	mcfg := machine.Config{
		PEs: 4,
		Layout: mem.Layout{
			InstWords: 16 << 10, HeapWords: 1 << 20,
			GoalWords: 128 << 10, SuspWords: 32 << 10, CommWords: 8 << 10,
		},
		Cache:  optimized(),
		Timing: bus.DefaultTiming(),
	}
	cl, res, err := emulator.RunSource(sieve, mcfg, emulator.DefaultConfig(), 0)
	if err != nil {
		log.Fatal(err)
	}
	if res.Failed {
		log.Fatalf("program failed: %s", res.FailReason)
	}
	fmt.Printf("primes up to 100:\n%s\n", res.Output)
	fmt.Printf("the filter chain ran as %d parallel processes:\n", res.Emu.Spawns)
	fmt.Printf("  reductions   %d\n", res.Emu.Reductions)
	fmt.Printf("  suspensions  %d (consumers waiting on unbound stream tails)\n", res.Emu.Suspensions)
	fmt.Printf("  resumptions  %d (producers waking them by binding)\n", res.Emu.Resumptions)
	fmt.Printf("  migrations   %d (goals balanced across 4 PEs)\n", res.Emu.GoalsStolen)
	cs := cl.Machine.CacheStats()
	fmt.Printf("  lock ops     %d LR, all releases bus-free: %v\n",
		cs.LRTotal(), cs.UnlockWaiter == 0)
	fmt.Printf("  bus cycles   %d\n", cl.Machine.BusStats().TotalCycles)
}

func optimized() cache.Config {
	cfg := cache.DefaultConfig()
	cfg.Options = cache.OptionsAll()
	return cfg
}
