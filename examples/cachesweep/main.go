// Cachesweep: record one workload's memory-reference trace and replay it
// across cache geometries — the trace-driven methodology behind the
// paper's Figures 1 and 2. Shows how block size and capacity trade miss
// ratio against bus traffic for logic-programming reference streams.
//
//	go run ./examples/cachesweep
package main

import (
	"fmt"
	"log"

	"pimcache/internal/bench"
	"pimcache/internal/bench/programs"
	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/stats"
)

func main() {
	b, _ := programs.ByName("Tri")
	scale := 7
	fmt.Printf("recording %s (scale %d) on 8 PEs...\n", b.Name, scale)
	_, tr, err := bench.RunLive(b, scale, 8, bench.BaseCache(cache.OptionsAll()), true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d references\n\n", tr.Len())

	blocks := &stats.Table{
		Title:   "Block size sweep (4Kword, 4-way, all optimized commands)",
		Columns: []string{"block(words)", "miss ratio", "bus cycles"},
	}
	for _, bw := range []int{1, 2, 4, 8, 16} {
		cfg := bench.BaseCache(cache.OptionsAll())
		cfg.BlockWords = bw
		busStats, cacheStats, err := bench.ReplayConfig(tr, cfg, bus.DefaultTiming())
		if err != nil {
			log.Fatal(err)
		}
		blocks.AddRow(fmt.Sprint(bw),
			fmt.Sprintf("%.4f", cacheStats.MissRatio()),
			fmt.Sprint(busStats.TotalCycles))
	}
	fmt.Println(blocks)

	caps := &stats.Table{
		Title:   "Capacity sweep (4-word blocks, 4-way, all optimized commands)",
		Columns: []string{"capacity(words)", "directory bits", "miss ratio", "bus cycles"},
	}
	for _, size := range []int{512, 1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10} {
		cfg := bench.BaseCache(cache.OptionsAll())
		cfg.SizeWords = size
		busStats, cacheStats, err := bench.ReplayConfig(tr, cfg, bus.DefaultTiming())
		if err != nil {
			log.Fatal(err)
		}
		caps.AddRow(fmt.Sprint(size),
			fmt.Sprint(cfg.DirectoryBits()),
			fmt.Sprintf("%.4f", cacheStats.MissRatio()),
			fmt.Sprint(busStats.TotalCycles))
	}
	fmt.Println(caps)
	fmt.Println("note: four-word blocks minimize traffic, and the capacity")
	fmt.Println("knee sits near 4-8Kwords — the shapes of Figures 1 and 2.")
}
