// Loadbalance: the Figure 3 experiment on one benchmark — run Tri on 1,
// 2, 4 and 8 PEs, chart the speedup and the bus traffic, and show how
// communication traffic (load-balancing messages and migrated goal
// records) comes to dominate as processors are added.
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"

	"pimcache/internal/bench"
	"pimcache/internal/bench/programs"
	"pimcache/internal/cache"
	"pimcache/internal/mem"
	"pimcache/internal/stats"
)

func main() {
	b, _ := programs.ByName("Tri")
	scale := 7
	pesList := []int{1, 2, 4, 8}

	var labels []string
	var speedups, cycles, commShare []float64
	var migrations []uint64
	var baseRounds uint64

	for _, pes := range pesList {
		rd, _, err := bench.RunLive(b, scale, pes, bench.BaseCache(cache.OptionsAll()), false)
		if err != nil {
			log.Fatal(err)
		}
		if pes == 1 {
			baseRounds = rd.Result.Rounds
		}
		labels = append(labels, fmt.Sprintf("%d PEs", pes))
		speedups = append(speedups, float64(baseRounds)/float64(rd.Result.Rounds))
		cycles = append(cycles, float64(rd.Bus.TotalCycles))
		commShare = append(commShare,
			stats.Pct(rd.Bus.CyclesByArea[mem.AreaComm], rd.Bus.TotalCycles))
		migrations = append(migrations, rd.Result.Emu.GoalsStolen)
	}

	fmt.Printf("benchmark: %s (scale %d) — a search tree whose many small\n", b.Name, scale)
	fmt.Println("tasks must be distributed on demand, the paper's Section 4.5 case.")
	fmt.Println()
	fmt.Print(stats.Bars("speedup (vs 1 PE)", labels, speedups, 40))
	fmt.Println()
	fmt.Print(stats.Bars("total bus cycles", labels, cycles, 40))
	fmt.Println()
	fmt.Print(stats.Bars("communication share of bus cycles (%)", labels, commShare, 40))
	fmt.Println()
	for i, pes := range pesList {
		fmt.Printf("%d PEs: %d goal migrations\n", pes, migrations[i])
	}
	fmt.Println("\nthe paper's conclusion: \"the most critical bottleneck of parallel")
	fmt.Println("logic programming architectures is the high communication cost of")
	fmt.Println("load balancing\" — visible above as the rising comm share.")
}
