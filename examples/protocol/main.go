// Protocol walkthrough: drive two caches by hand through the PIM
// coherence protocol and print each block-state transition, including the
// SM state that distinguishes PIM from Illinois, the optimized commands
// (DW, ER, RI), and the lock directory's busy-wait path.
//
//	go run ./examples/protocol
package main

import (
	"fmt"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/kl1/word"
	"pimcache/internal/mem"
)

func main() {
	layout := mem.Layout{InstWords: 64, HeapWords: 4096, GoalWords: 256, SuspWords: 64, CommWords: 64}
	memory := mem.New(layout)
	b := bus.New(bus.Config{Timing: bus.DefaultTiming(), BlockWords: 4}, memory)
	cfg := cache.Config{
		SizeWords: 64, BlockWords: 4, Ways: 4, LockEntries: 2,
		Options: cache.OptionsAll(),
	}
	c0 := cache.New(cfg, 0, b)
	c1 := cache.New(cfg, 1, b)
	heap := memory.Bounds().HeapBase
	goal := memory.Bounds().GoalBase

	show := func(what string, a word.Addr) {
		st := b.Stats()
		fmt.Printf("%-46s PE0=%-3v PE1=%-3v bus=%d cycles\n",
			what, c0.StateOf(a), c1.StateOf(a), st.TotalCycles)
	}

	fmt.Println("--- plain reads and writes (the five states) ---")
	memory.Write(heap, word.Int(7))
	c0.Read(heap)
	show("PE0 R (miss from memory)", heap)
	c1.Read(heap)
	show("PE1 R (cache-to-cache, both shared)", heap)
	c0.Write(heap, word.Int(8))
	show("PE0 W (invalidates PE1)", heap)
	c1.Read(heap)
	show("PE1 R (dirty transfer: PE0 keeps ownership as SM)", heap)
	fmt.Println()

	fmt.Println("--- direct write: allocation without fetch ---")
	before := b.Stats().TotalCycles
	c0.DirectWrite(heap+64, word.Int(1))
	c0.DirectWrite(heap+65, word.Int(2))
	after := b.Stats().TotalCycles
	show(fmt.Sprintf("PE0 DW x2 (cost %d cycles)", after-before), heap+64)
	fmt.Println()

	fmt.Println("--- exclusive read: write-once/read-once goal records ---")
	for i := word.Addr(0); i < 4; i++ {
		c0.DirectWrite(goal+i, word.Int(int64(i)))
	}
	show("PE0 DW goal record", goal)
	for i := word.Addr(0); i < 4; i++ {
		c1.ExclusiveRead(goal + i)
	}
	show("PE1 ER record (supplier invalidated, copy purged)", goal)
	fmt.Println()

	fmt.Println("--- read invalidate: message buffers ---")
	comm := memory.Bounds().CommBase
	c0.Write(comm, word.Int(42))
	show("PE0 W message", comm)
	c1.ReadInvalidate(comm)
	show("PE1 RI (takes block exclusively)", comm)
	preI := b.Stats().Commands[bus.CmdI]
	c1.Write(comm, word.Int(0))
	show(fmt.Sprintf("PE1 W reply (invalidate commands: %d, unchanged)",
		b.Stats().Commands[bus.CmdI]-preI), comm)
	fmt.Println()

	fmt.Println("--- lock directory: LR/UW and busy waiting ---")
	v := heap + 128
	memory.Write(v, word.Unbound(v))
	if _, ok := c0.LockRead(v); !ok {
		panic("unexpected conflict")
	}
	show("PE0 LR (lock registered, block exclusive)", v)
	if _, ok := c1.LockRead(v); ok {
		panic("lock conflict not detected")
	}
	fmt.Printf("PE1 LR -> LH response, busy-waiting on %#x\n", v)
	c0.UnlockWrite(v, word.Int(99))
	fmt.Printf("PE0 UW -> UL broadcast (PE1 blocked: %v)\n", c1.Blocked())
	if w, ok := c1.LockRead(v); ok {
		fmt.Printf("PE1 LR retry succeeds, reads %v\n", w)
		c1.Unlock(v)
	}
	lockStats := c0.Stats()
	fmt.Printf("PE0 no-cost unlocks: %d of %d\n",
		lockStats.UnlockNoWaiter, lockStats.UnlockNoWaiter+lockStats.UnlockWaiter)
}
