module pimcache

go 1.22
