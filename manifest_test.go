package pimcache

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"testing"

	"pimcache/internal/bus"
	"pimcache/internal/cache"
	"pimcache/internal/machine"
	"pimcache/internal/mem"
	"pimcache/internal/obs"
	"pimcache/internal/synth"
	"pimcache/internal/trace"
)

// manifestTrace builds one small synthetic trace and its serialized
// bytes + digest, shared by the manifest determinism tests.
func manifestTrace(t testing.TB) (*trace.Trace, []byte, string) {
	t.Helper()
	sc := synth.DefaultConfig()
	sc.PEs = 8
	sc.Events = 20_000
	sc.Seed = 7
	tr := synth.ORParallel(sc)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return tr, buf.Bytes(), obs.HexDigest(sum[:])
}

// replayToManifest replays the serialized trace in streaming mode under
// ccfg and assembles a manifest exactly the way pimtrace replay does.
func replayToManifest(t *testing.T, data []byte, digest string, ccfg cache.Config, mode string) *obs.Manifest {
	t.Helper()
	d, err := trace.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	timing := bus.DefaultTiming()
	m := machine.New(machine.Config{PEs: d.PEs(), Layout: d.Layout(), Cache: ccfg, Timing: timing})
	ports := make([]mem.Accessor, d.PEs())
	for i := range ports {
		ports[i] = m.Port(i)
	}
	refs, err := trace.ReplayStream(d, ports)
	if err != nil {
		t.Fatal(err)
	}

	man := obs.NewManifest("pimtrace")
	man.Scenario = "matrix"
	man.Config = obs.NewRunConfig(d.PEs(), ccfg, timing, "all", mode, 0)
	man.Trace = &obs.TraceInfo{
		SHA256: digest, Refs: uint64(refs), PEs: d.PEs(),
		LayoutWords: uint64(d.Layout().TotalWords()),
	}
	man.Stats = obs.NewRunStats(uint64(refs), m.CacheStats(), m.BusStats())
	man.Timing.TraceFile = "matrix.trc"
	man.FinishTiming(obs.NewPhases(), obs.NewRegistry(), uint64(refs), 0.1)
	return man
}

// TestManifestDeterminismMatrix is the manifest determinism oracle: two
// replays of the same trace and configuration produce byte-identical
// manifests once the timing block is stripped — across every protocol,
// with bus filters on or off, with and without a data plane.
func TestManifestDeterminismMatrix(t *testing.T) {
	_, data, digest := manifestTrace(t)
	protocols := []struct {
		proto cache.Protocol
		opts  cache.Options
	}{
		{cache.ProtocolPIM, cache.OptionsAll()},
		{cache.ProtocolIllinois, cache.OptionsNone()},
		{cache.ProtocolWriteThrough, cache.OptionsNone()},
	}
	for _, pc := range protocols {
		for _, filtersOff := range []bool{false, true} {
			for _, statsOnly := range []bool{false, true} {
				name := fmt.Sprintf("%s/filtersOff=%v/statsOnly=%v", pc.proto, filtersOff, statsOnly)
				t.Run(name, func(t *testing.T) {
					ccfg := cache.DefaultConfig()
					ccfg.Options = pc.opts
					ccfg.Protocol = pc.proto
					ccfg.DisableBusFilters = filtersOff
					ccfg.StatsOnly = statsOnly

					a := replayToManifest(t, data, digest, ccfg, "stream")
					b := replayToManifest(t, data, digest, ccfg, "stream")
					aj, err := a.DeterministicJSON()
					if err != nil {
						t.Fatal(err)
					}
					bj, err := b.DeterministicJSON()
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(aj, bj) {
						t.Errorf("two replays produced different deterministic manifests:\n%s\n----\n%s", aj, bj)
					}
					if a.Key() != b.Key() || a.StatsKey() != b.StatsKey() {
						t.Error("repeat runs disagree on manifest keys")
					}
				})
			}
		}
	}
}

// TestManifestStatsKeyAcrossEngineKnobs: the engine knobs that provably
// do not change statistics (filters, stats-only) share a StatsKey with
// the plain configuration, and their Stats sections agree — so
// pimreport's determinism check binds all engine modes together.
func TestManifestStatsKeyAcrossEngineKnobs(t *testing.T) {
	_, data, digest := manifestTrace(t)
	base := cache.DefaultConfig()
	base.Options = cache.OptionsAll()

	plain := replayToManifest(t, data, digest, base, "stream")

	variants := map[string]cache.Config{}
	noFilters := base
	noFilters.DisableBusFilters = true
	variants["filtersOff"] = noFilters
	so := base
	so.StatsOnly = true
	variants["statsOnly"] = so

	pj, err := plain.DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	for name, cfg := range variants {
		m := replayToManifest(t, data, digest, cfg, "stream")
		if m.StatsKey() != plain.StatsKey() {
			t.Errorf("%s: StatsKey differs from plain run", name)
		}
		if m.Key() == plain.Key() {
			t.Errorf("%s: Key should differ from plain run (different engine knobs)", name)
		}
		mj, err := m.DeterministicJSON()
		if err != nil {
			t.Fatal(err)
		}
		// The deterministic JSON differs only in the config knobs; the
		// stats must agree. Compare the stats sections via fresh
		// manifests with normalized configs.
		if !bytes.Equal(statsSection(t, m), statsSection(t, plain)) {
			t.Errorf("%s: stats differ from plain run\nplain: %s\n%s: %s", name, pj, name, mj)
		}
	}
}

func statsSection(t *testing.T, m *obs.Manifest) []byte {
	t.Helper()
	c := *m
	c.Config = obs.RunConfig{}
	c.Timing = obs.Timing{}
	b, err := c.DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestPerPEStatsAcrossReplayModes pins per-PE equivalence, stronger
// than the aggregate oracles: every replay engine (streaming, packed,
// stats-only) leaves each individual PE cache with identical
// statistics, via machine.PerPECacheStats.
func TestPerPEStatsAcrossReplayModes(t *testing.T) {
	tr, data, _ := manifestTrace(t)
	timing := bus.DefaultTiming()
	base := cache.DefaultConfig()
	base.Options = cache.OptionsAll()

	newMachine := func(ccfg cache.Config) (*machine.Machine, []mem.Accessor) {
		m := machine.New(machine.Config{PEs: tr.PEs, Layout: tr.Layout, Cache: ccfg, Timing: timing})
		ports := make([]mem.Accessor, tr.PEs)
		for i := range ports {
			ports[i] = m.Port(i)
		}
		return m, ports
	}

	// Reference: streaming replay with the data plane.
	mStream, ports := newMachine(base)
	d, err := trace.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.ReplayStream(d, ports); err != nil {
		t.Fatal(err)
	}
	want := mStream.PerPECacheStats()
	if len(want) != tr.PEs {
		t.Fatalf("PerPECacheStats returned %d entries, want %d", len(want), tr.PEs)
	}
	var aggregate cache.Stats
	for i := range want {
		aggregate.Add(&want[i])
	}
	if aggregate != mStream.CacheStats() {
		t.Fatal("PerPECacheStats does not sum to CacheStats")
	}

	// Packed replay.
	mPacked, _ := newMachine(base)
	p, err := trace.Pack(tr)
	if err != nil {
		t.Fatal(err)
	}
	caches := make([]*cache.Cache, tr.PEs)
	for i := range caches {
		caches[i] = mPacked.Cache(i)
	}
	if err := p.Replay(caches); err != nil {
		t.Fatal(err)
	}

	// Stats-only replay (no data plane).
	soCfg := base
	soCfg.StatsOnly = true
	mSO, soPorts := newMachine(soCfg)
	if err := trace.Replay(tr, soPorts); err != nil {
		t.Fatal(err)
	}

	for name, m := range map[string]*machine.Machine{"packed": mPacked, "statsonly": mSO} {
		got := m.PerPECacheStats()
		for pe := range want {
			if got[pe] != want[pe] {
				t.Errorf("%s: PE %d stats differ from streaming replay", name, pe)
			}
		}
		if m.BusStats() != mStream.BusStats() {
			t.Errorf("%s: bus stats differ from streaming replay", name)
		}
	}
}
